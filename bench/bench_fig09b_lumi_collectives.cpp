// Figure 9b: per-collective box plots of Bine's improvement over the best
// state-of-the-art algorithm on LUMI, restricted to winning configurations.
#include "bench_common.hpp"

int main() {
  bine::harness::Runner runner(bine::net::lumi_profile());
  bine::bench::run_sota_boxplots(runner, {16, 64, 256, 1024},
                                 bine::harness::paper_vector_sizes(false),
                                 bine::coll::all_collectives());
  return 0;
}
