// Figure 9b: per-collective box plots of Bine's improvement over the best
// state-of-the-art algorithm on LUMI, restricted to winning configurations.
//
// Plan: exp::paper::sota_boxplots run through the sweep engine.
#include "coll/registry.hpp"
#include "exp/paper_plans.hpp"
#include "exp/report.hpp"
#include "net/profiles.hpp"

int main() {
  using namespace bine;
  const exp::SweepResult result = exp::run(exp::paper::sota_boxplots(
      net::lumi_profile(), {16, 64, 256, 1024}, harness::paper_vector_sizes(false),
      coll::all_collectives()));
  exp::print_sota_boxplots(result);
  return 0;
}
