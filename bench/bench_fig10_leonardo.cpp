// Figure 10: allreduce heatmap (a) and per-collective box plots (b) against
// the state of the art on Leonardo (Dragonfly+).
//
// Plans: exp::paper::sota_heatmap + exp::paper::sota_boxplots, both run
// through the sweep engine.
#include <cstdio>

#include "coll/registry.hpp"
#include "exp/paper_plans.hpp"
#include "exp/report.hpp"
#include "net/profiles.hpp"

int main() {
  using namespace bine;
  exp::print_sota_heatmap(exp::run(exp::paper::sota_heatmap(
      net::leonardo_profile(), sched::Collective::allreduce,
      {16, 32, 64, 128, 256, 512, 1024}, harness::paper_vector_sizes(false))));
  std::printf("\n");
  exp::print_sota_boxplots(exp::run(exp::paper::sota_boxplots(
      net::leonardo_profile(), {16, 64, 256}, harness::paper_vector_sizes(false),
      coll::all_collectives())));
  return 0;
}
