// Figure 10: allreduce heatmap (a) and per-collective box plots (b) against
// the state of the art on Leonardo (Dragonfly+).
#include "bench_common.hpp"

int main() {
  bine::harness::Runner runner(bine::net::leonardo_profile());
  bine::bench::run_sota_heatmap(runner, bine::sched::Collective::allreduce,
                                {16, 32, 64, 128, 256, 512, 1024},
                                bine::harness::paper_vector_sizes(false));
  std::printf("\n");
  bine::bench::run_sota_boxplots(runner, {16, 64, 256},
                                 bine::harness::paper_vector_sizes(false),
                                 bine::coll::all_collectives());
  return 0;
}
