// Micro-benchmarks of the core primitives (google-benchmark): the negabinary
// conversions, partner computations, schedule generation, routing, and the
// in-process executor.
#include <benchmark/benchmark.h>

#include "coll/registry.hpp"
#include "core/butterfly.hpp"
#include "core/negabinary.hpp"
#include "core/nu.hpp"
#include "core/tree.hpp"
#include "net/profiles.hpp"
#include "net/simulate.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/executor.hpp"

using namespace bine;

namespace {

void BM_Rank2Nb(benchmark::State& state) {
  const i64 p = state.range(0);
  i64 r = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rank2nb(r, p));
    r = (r + 7) & (p - 1);
  }
}
BENCHMARK(BM_Rank2Nb)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_Nb2Rank(benchmark::State& state) {
  const i64 p = state.range(0);
  u64 nb = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::nb2rank(nb, p));
    nb = (nb + 5) & static_cast<u64>(p - 1);
  }
}
BENCHMARK(BM_Nb2Rank)->Arg(64)->Arg(1 << 20);

void BM_NuInverse(benchmark::State& state) {
  const i64 p = state.range(0);
  u64 v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::nu_inverse(v, p));
    v = (v + 3) & static_cast<u64>(p - 1);
  }
}
BENCHMARK(BM_NuInverse)->Arg(4096);

void BM_ButterflyPartner(benchmark::State& state) {
  const i64 p = state.range(0);
  const int s = log2_exact(p);
  Rank r = 0;
  int step = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::butterfly_partner(core::ButterflyVariant::bine_dd, r, step, p));
    r = (r + 1) & (p - 1);
    step = (step + 1) % s;
  }
}
BENCHMARK(BM_ButterflyPartner)->Arg(4096);

void BM_BuildTree(benchmark::State& state) {
  const i64 p = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::build_tree(core::TreeVariant::bine_dh, p, 0));
}
BENCHMARK(BM_BuildTree)->Arg(256)->Arg(4096);

void BM_GenerateAllreduce(benchmark::State& state) {
  coll::Config cfg;
  cfg.p = state.range(0);
  cfg.elem_count = 1 << 16;
  const auto& entry = coll::find_algorithm(sched::Collective::allreduce, "bine_send");
  for (auto _ : state) benchmark::DoNotOptimize(entry.make(cfg));
}
BENCHMARK(BM_GenerateAllreduce)->Arg(64)->Arg(512);

void BM_SimulateAllreduce(benchmark::State& state) {
  coll::Config cfg;
  cfg.p = state.range(0);
  cfg.elem_count = 1 << 16;
  const auto sch =
      coll::find_algorithm(sched::Collective::allreduce, "bine_send").make(cfg);
  const auto profile = net::lumi_profile();
  const auto topo = profile.build(cfg.p);
  const auto pl = net::Placement::identity(cfg.p);
  // Route cache and lowering are hoisted, as in the harness hot loop; this
  // times the compiled engine itself.
  const net::RouteCache rc(*topo, pl);
  const auto lowered = sched::CompiledSchedule::lower(sch);
  for (auto _ : state)
    benchmark::DoNotOptimize(net::simulate(lowered, rc, profile.cost));
}
BENCHMARK(BM_SimulateAllreduce)->Arg(64)->Arg(512);

void BM_LowerAllreduce(benchmark::State& state) {
  coll::Config cfg;
  cfg.p = state.range(0);
  cfg.elem_count = 1 << 16;
  const auto sch =
      coll::find_algorithm(sched::Collective::allreduce, "bine_send").make(cfg);
  sched::CompiledSchedule scratch;
  for (auto _ : state) {
    sched::CompiledSchedule::lower_into(sch, scratch);
    benchmark::DoNotOptimize(scratch.num_ops());
  }
}
BENCHMARK(BM_LowerAllreduce)->Arg(64)->Arg(512);

void BM_ExecuteAllreduce(benchmark::State& state) {
  coll::Config cfg;
  cfg.p = state.range(0);
  cfg.elem_count = 4 * cfg.p;
  cfg.elem_size = 8;
  const auto sch =
      coll::find_algorithm(sched::Collective::allreduce, "bine_send").make(cfg);
  std::vector<std::vector<u64>> inputs(static_cast<size_t>(cfg.p));
  for (i64 r = 0; r < cfg.p; ++r)
    inputs[static_cast<size_t>(r)].assign(static_cast<size_t>(cfg.elem_count),
                                          static_cast<u64>(r));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        runtime::execute_reference<u64>(sch, runtime::ReduceOp::sum, inputs));
}
BENCHMARK(BM_ExecuteAllreduce)->Arg(16)->Arg(64);

void BM_ExecuteAllreduceCompiled(benchmark::State& state) {
  coll::Config cfg;
  cfg.p = state.range(0);
  cfg.elem_count = 4 * cfg.p;
  cfg.elem_size = 8;
  const auto sch =
      coll::find_algorithm(sched::Collective::allreduce, "bine_send").make(cfg);
  const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
  std::vector<std::vector<u64>> inputs(static_cast<size_t>(cfg.p));
  for (i64 r = 0; r < cfg.p; ++r)
    inputs[static_cast<size_t>(r)].assign(static_cast<size_t>(cfg.elem_count),
                                          static_cast<u64>(r));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        runtime::execute<u64>(plan, runtime::ReduceOp::sum, inputs));
}
BENCHMARK(BM_ExecuteAllreduceCompiled)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
