// Micro-benchmarks of the core primitives: the negabinary conversions,
// partner computations, schedule generation, lowering, routing, and the
// in-process executors.
//
// Plan: a Backend::custom sweep -- series are the primitives, the node axis
// is the argument grid, the metric times one (primitive, arg) cell with a
// fixed budget and reports ns/op. This replaces the google-benchmark
// registration loops (and the optional libbenchmark dependency) with the
// same declarative engine every other bench runs on; timing runs on one
// shard (plan.threads = 1) so cells never contend.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "coll/registry.hpp"
#include "core/butterfly.hpp"
#include "core/negabinary.hpp"
#include "core/nu.hpp"
#include "core/tree.hpp"
#include "exp/sweep.hpp"
#include "net/profiles.hpp"
#include "net/simulate.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/executor.hpp"
#include "sched/compiled.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-3 rounds of a fixed time budget; returns ns per body() call.
double time_ns_per_op(const std::function<void()>& body) {
  const double budget = 0.005;
  double best = std::numeric_limits<double>::infinity();
  for (int round = 0; round < 3; ++round) {
    i64 n = 0;
    const auto t0 = Clock::now();
    while (seconds_since(t0) < budget) {
      body();
      ++n;
    }
    best = std::min(best, seconds_since(t0) / static_cast<double>(n));
  }
  return 1e9 * best;
}

struct Micro {
  const char* name;
  std::vector<i64> args;
  /// Returns the per-op body for one argument (setup hoisted, as the
  /// google-benchmark fixtures did).
  std::function<std::function<void()>(i64)> make;
};

volatile u64 sink;  ///< keeps the measured work observable

std::vector<Micro> micro_benches() {
  std::vector<Micro> list;
  list.push_back({"rank2nb", {64, 4096, i64{1} << 20}, [](i64 p) {
                    return [p, r = i64{1}]() mutable {
                      sink = core::rank2nb(r, p);
                      r = (r + 7) & (p - 1);
                    };
                  }});
  list.push_back({"nb2rank", {64, i64{1} << 20}, [](i64 p) {
                    return [p, nb = u64{1}]() mutable {
                      sink = static_cast<u64>(core::nb2rank(nb, p));
                      nb = (nb + 5) & static_cast<u64>(p - 1);
                    };
                  }});
  list.push_back({"nu_inverse", {4096}, [](i64 p) {
                    return [p, v = u64{1}]() mutable {
                      sink = core::nu_inverse(v, p);
                      v = (v + 3) & static_cast<u64>(p - 1);
                    };
                  }});
  list.push_back({"butterfly_partner", {4096}, [](i64 p) {
                    const int s = log2_exact(p);
                    return [p, s, r = Rank{0}, step = 0]() mutable {
                      sink = static_cast<u64>(core::butterfly_partner(
                          core::ButterflyVariant::bine_dd, r, step, p));
                      r = (r + 1) & (p - 1);
                      step = (step + 1) % s;
                    };
                  }});
  list.push_back({"build_tree", {256, 4096}, [](i64 p) {
                    return [p] { sink = core::build_tree(core::TreeVariant::bine_dh, p, 0).parent.size(); };
                  }});
  list.push_back({"generate_allreduce", {64, 512}, [](i64 p) {
                    coll::Config cfg;
                    cfg.p = p;
                    cfg.elem_count = 1 << 16;
                    const auto& entry =
                        coll::find_algorithm(sched::Collective::allreduce, "bine_send");
                    return [cfg, &entry] { sink = entry.make(cfg).num_steps(); };
                  }});
  list.push_back({"lower_allreduce", {64, 512}, [](i64 p) {
                    coll::Config cfg;
                    cfg.p = p;
                    cfg.elem_count = 1 << 16;
                    auto sch = std::make_shared<sched::Schedule>(
                        coll::find_algorithm(sched::Collective::allreduce, "bine_send")
                            .make(cfg));
                    auto scratch = std::make_shared<sched::CompiledSchedule>();
                    return [sch, scratch] {
                      sched::CompiledSchedule::lower_into(*sch, *scratch);
                      sink = scratch->num_ops();
                    };
                  }});
  list.push_back({"simulate_allreduce", {64, 512}, [](i64 p) {
                    coll::Config cfg;
                    cfg.p = p;
                    cfg.elem_count = 1 << 16;
                    const auto sch =
                        coll::find_algorithm(sched::Collective::allreduce, "bine_send")
                            .make(cfg);
                    const auto profile = net::lumi_profile();
                    auto topo = std::shared_ptr<net::Topology>(profile.build(p));
                    const auto pl = net::Placement::identity(p);
                    // Route cache and lowering are hoisted, as in the harness
                    // hot loop; this times the compiled engine itself.
                    auto rc = std::make_shared<net::RouteCache>(*topo, pl);
                    auto lowered = std::make_shared<sched::CompiledSchedule>(
                        sched::CompiledSchedule::lower(sch));
                    const net::CostParams cost = profile.cost;
                    return [topo, rc, lowered, cost] {
                      sink = static_cast<u64>(net::simulate(*lowered, *rc, cost).steps);
                    };
                  }});
  list.push_back({"execute_allreduce", {16, 64}, [](i64 p) {
                    coll::Config cfg;
                    cfg.p = p;
                    cfg.elem_count = 4 * p;
                    cfg.elem_size = 8;
                    auto sch = std::make_shared<sched::Schedule>(
                        coll::find_algorithm(sched::Collective::allreduce, "bine_send")
                            .make(cfg));
                    auto inputs = std::make_shared<std::vector<std::vector<u64>>>(
                        static_cast<size_t>(p));
                    for (i64 r = 0; r < p; ++r)
                      (*inputs)[static_cast<size_t>(r)].assign(
                          static_cast<size_t>(cfg.elem_count), static_cast<u64>(r));
                    return [sch, inputs] {
                      sink = static_cast<u64>(
                          runtime::execute_reference<u64>(*sch, runtime::ReduceOp::sum,
                                                          *inputs)
                              .messages);
                    };
                  }});
  list.push_back({"execute_allreduce_compiled", {16, 64}, [](i64 p) {
                    coll::Config cfg;
                    cfg.p = p;
                    cfg.elem_count = 4 * p;
                    cfg.elem_size = 8;
                    const auto sch =
                        coll::find_algorithm(sched::Collective::allreduce, "bine_send")
                            .make(cfg);
                    auto plan = std::make_shared<runtime::ExecPlan>(
                        runtime::ExecPlan::lower(sch));
                    auto inputs = std::make_shared<std::vector<std::vector<u64>>>(
                        static_cast<size_t>(p));
                    for (i64 r = 0; r < p; ++r)
                      (*inputs)[static_cast<size_t>(r)].assign(
                          static_cast<size_t>(cfg.elem_count), static_cast<u64>(r));
                    return [plan, inputs] {
                      sink = static_cast<u64>(
                          runtime::execute<u64>(*plan, runtime::ReduceOp::sum, *inputs)
                              .messages);
                    };
                  }});
  return list;
}

}  // namespace

int main() {
  const std::vector<Micro> micros = micro_benches();

  exp::SweepPlan plan;
  plan.name = "micro_core";
  plan.backend = exp::Backend::custom;
  plan.threads = 1;  // timing: one shard, no contention
  std::vector<i64> args;
  for (const Micro& m : micros) {
    plan.series.push_back(exp::Series::best_of(m.name, {}));
    for (const i64 a : m.args)
      if (std::find(args.begin(), args.end(), a) == args.end()) args.push_back(a);
  }
  std::sort(args.begin(), args.end());
  plan.nodes.counts = args;
  plan.metric = [&](const exp::CellCtx& ctx) {
    const Micro& micro = micros[ctx.series];
    exp::Metrics m;
    if (std::find(micro.args.begin(), micro.args.end(), ctx.nodes) ==
        micro.args.end()) {
      m.skipped = true;  // this primitive has no such argument
      return m;
    }
    m.value = time_ns_per_op(micro.make(ctx.nodes));
    return m;
  };
  const exp::SweepResult result = exp::run(plan);

  std::printf("=== core primitive micro-benchmarks (ns/op, best of 3 rounds) ===\n");
  std::printf("%-28s %12s %14s\n", "primitive", "arg", "ns/op");
  for (const exp::Row& row : result.rows) {
    if (row.m.skipped) continue;
    std::printf("%-28s %12lld %14.1f\n", result.series_labels[row.series].c_str(),
                static_cast<long long>(row.nodes), row.m.value);
  }
  return 0;
}
