// Table 4: Bine vs binomial trees on Leonardo (Dragonfly+), 16-2048 nodes.
//
// Plan: exp::paper::binomial_table with the Leonardo methodology encoded in
// the node axis (counts beyond the user cap extend allreduce/allgather
// only, Sec. 5.2.1); the sweep engine runs it, this driver formats it.
#include "exp/paper_plans.hpp"
#include "exp/report.hpp"
#include "net/profiles.hpp"

int main() {
  using namespace bine;
  const exp::SweepResult result = exp::run(exp::paper::binomial_table(
      net::leonardo_profile(), {16, 64, 256}, harness::paper_vector_sizes(false),
      /*allreduce/allgather only:*/ {1024, 2048}));
  exp::print_binomial_table(result);
  return 0;
}
