// Table 4: Bine vs binomial trees on Leonardo (Dragonfly+), 16-2048 nodes.
#include "bench_common.hpp"

int main() {
  bine::harness::Runner runner(bine::net::leonardo_profile());
  bine::bench::run_binomial_table(runner, {16, 64, 256},
                                  bine::harness::paper_vector_sizes(false),
                                  /*allreduce/allgather only:*/ {1024, 2048});
  return 0;
}
