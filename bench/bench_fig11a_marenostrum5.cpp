// Figure 11a: per-collective box plots against the state of the art on
// MareNostrum 5 (2:1 oversubscribed fat tree), up to 64 nodes.
//
// Plan: exp::paper::sota_boxplots run through the sweep engine.
#include "coll/registry.hpp"
#include "exp/paper_plans.hpp"
#include "exp/report.hpp"
#include "net/profiles.hpp"

int main() {
  using namespace bine;
  const exp::SweepResult result = exp::run(exp::paper::sota_boxplots(
      net::mn5_profile(), {4, 8, 16, 32, 64}, harness::paper_vector_sizes(false),
      coll::all_collectives()));
  exp::print_sota_boxplots(result);
  return 0;
}
