// Figure 11a: per-collective box plots against the state of the art on
// MareNostrum 5 (2:1 oversubscribed fat tree), up to 64 nodes.
#include "bench_common.hpp"

int main() {
  bine::harness::Runner runner(bine::net::mn5_profile());
  bine::bench::run_sota_boxplots(runner, {4, 8, 16, 32, 64},
                                 bine::harness::paper_vector_sizes(false),
                                 bine::coll::all_collectives());
  return 0;
}
