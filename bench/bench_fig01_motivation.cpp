// Figure 1: global-link traffic of a broadcast over an 8-node 2:1
// oversubscribed fat tree (2 nodes per leaf switch). Distance-doubling
// binomial forwards 6n bytes over global links, distance-halving only 3n.
#include <cstdio>

#include "coll/registry.hpp"
#include "net/simulate.hpp"
#include "net/topology.hpp"

using namespace bine;

int main() {
  std::printf("=== Fig. 1: broadcast global-link traffic, 8 nodes, 2:1 fat tree ===\n");
  const i64 n = 1 << 20;  // 1 MiB vector
  net::FatTree topo(/*num_leaves=*/4, /*nodes_per_leaf=*/2, /*oversub=*/2, 25e9);
  const net::Placement pl = net::Placement::identity(8);

  coll::Config cfg;
  cfg.p = 8;
  cfg.elem_count = n / 4;
  cfg.elem_size = 4;

  std::printf("%-28s %14s %14s\n", "Algorithm", "GlobalBytes/n", "LocalMsgs");
  for (const char* name : {"binomial", "binomial_dh", "bine"}) {
    const auto& entry = coll::find_algorithm(sched::Collective::bcast, name);
    const sched::Schedule sch = entry.make(cfg);
    const net::TrafficStats t = net::measure_traffic(sch, topo, pl);
    // Each inter-leaf message crosses one uplink and one downlink; report the
    // per-direction global volume in units of the vector size n, as Fig. 1.
    std::printf("%-28s %14.1f %14lld\n", sch.algorithm.c_str(),
                static_cast<double>(t.global_bytes) / 2.0 / static_cast<double>(n),
                static_cast<long long>(t.messages));
  }
  std::printf("\nExpected from the paper: distance-doubling = 6n, distance-halving = 3n.\n"
              "Bine matches the distance-halving bound while also shortening the\n"
              "modular distances used at every step.\n");
  return 0;
}
