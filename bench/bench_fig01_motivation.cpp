// Figure 1: global-link traffic of a broadcast over an 8-node 2:1
// oversubscribed fat tree (2 nodes per leaf switch). Distance-doubling
// binomial forwards 6n bytes over global links, distance-halving only 3n.
//
// Plan: a Backend::traffic sweep over the three tree algorithms on an
// ad-hoc fat-tree SystemSpec with identity placement; the per-direction
// global volume is formatted from the rows' traffic accounting.
#include <cstdio>
#include <memory>

#include "coll/registry.hpp"
#include "exp/sweep.hpp"
#include "net/topology.hpp"

using namespace bine;

int main() {
  std::printf("=== Fig. 1: broadcast global-link traffic, 8 nodes, 2:1 fat tree ===\n");
  const i64 n = 1 << 20;  // 1 MiB vector

  exp::SweepPlan plan;
  plan.name = "fig01_motivation";
  exp::SystemSpec spec;
  spec.profile.name = "fat_tree_8";
  spec.profile.description = "2:1 fat tree, 4 leaves x 2 nodes";
  spec.profile.build = [](i64) -> std::unique_ptr<net::Topology> {
    return std::make_unique<net::FatTree>(/*num_leaves=*/4, /*nodes_per_leaf=*/2,
                                          /*oversub=*/2, 25e9);
  };
  spec.spread_placement = false;  // identity placement, as the figure assumes
  plan.systems = {std::move(spec)};
  plan.colls = {sched::Collective::bcast};
  plan.series = {exp::Series::single("binomial"), exp::Series::single("binomial_dh"),
                 exp::Series::single("bine")};
  plan.nodes.counts = {8};
  plan.sizes = {n};
  plan.backend = exp::Backend::traffic;
  const exp::SweepResult result = exp::run(plan);

  std::printf("%-28s %14s %14s\n", "Algorithm", "GlobalBytes/n", "LocalMsgs");
  for (size_t k = 0; k < result.series_labels.size(); ++k) {
    const exp::Metrics& m = result.at(0, 0, 0, 0, k);
    // Label rows with the schedule-level algorithm name (e.g.
    // "bcast_binomial_dd_tree"), as the figure always has; regenerating the
    // 8-rank schedule for its name is free.
    coll::Config cfg;
    cfg.p = 8;
    cfg.elem_count = 8;
    const std::string label =
        coll::find_algorithm(sched::Collective::bcast, m.algorithm).make(cfg).algorithm;
    // Each inter-leaf message crosses one uplink and one downlink; report the
    // per-direction global volume in units of the vector size n, as Fig. 1.
    std::printf("%-28s %14.1f %14lld\n", label.c_str(),
                static_cast<double>(m.global_bytes) / 2.0 / static_cast<double>(n),
                static_cast<long long>(m.messages));
  }
  std::printf("\nExpected from the paper: distance-doubling = 6n, distance-halving = 3n.\n"
              "Bine matches the distance-halving bound while also shortening the\n"
              "modular distances used at every step.\n");
  return 0;
}
