// Sweep-engine benchmark: the sharded-vs-serial payoff of running the paper
// benches through exp::run. Times one table bench plan (Table 3), one
// figure bench plan (Fig. 9a) and a cross-system plan (the boxplot series
// over all three main systems -- the fan-out axis the table/figure benches
// never had before the engine) at 1 worker vs 4 workers, with a prewarm
// pass so the process-wide schedule cache is shared state and the timing
// isolates the sharding axis, exactly as BENCH_tune.json does.
//
// Determinism gate: the sharded rows must be byte-identical to the serial
// rows for every plan. Emits BENCH_sweep.json (hardware_threads recorded --
// the >= 2x sharded speedup shows on multi-core CI runners, not the 1-core
// dev container).
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "coll/registry.hpp"
#include "exp/paper_plans.hpp"
#include "fault/fault.hpp"
#include "net/profiles.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool identical(const exp::SweepResult& a, const exp::SweepResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    const exp::Metrics& x = a.rows[i].m;
    const exp::Metrics& y = b.rows[i].m;
    if (x.algorithm != y.algorithm || x.seconds != y.seconds ||
        x.global_bytes != y.global_bytes || x.total_bytes != y.total_bytes ||
        x.messages != y.messages || x.steps != y.steps)
      return false;
  }
  return a.to_json() == b.to_json();
}

/// The cross-system fan-out plan: every main system's bine-vs-sota series in
/// ONE sweep, cells of different systems running concurrently.
exp::SweepPlan cross_system_plan() {
  exp::SweepPlan plan;
  plan.name = "cross_system_boxplots";
  for (const auto& profile : net::main_profiles())
    plan.systems.push_back(exp::SystemSpec{profile});
  plan.colls = {sched::Collective::allreduce, sched::Collective::allgather,
                sched::Collective::bcast};
  plan.series = {exp::Series::best_bine(false), exp::Series::best_sota()};
  plan.nodes.counts = {16, 64};
  plan.sizes = harness::paper_vector_sizes(false);
  return plan;
}

struct PlanTiming {
  std::string name;
  size_t cells = 0;
  size_t rows = 0;
  double serial_ms = 0;
  double sharded_ms = 0;
  bool sharded_equals_serial = false;
  [[nodiscard]] double speedup() const { return serial_ms / sharded_ms; }
};

PlanTiming time_plan(exp::SweepPlan plan) {
  PlanTiming t;
  t.name = plan.name;
  t.cells = exp::enumerate_cells(plan).size();

  // Prewarm: populate the shared schedule cache so the timed rounds isolate
  // the sharding axis, not cold-cache generation.
  plan.threads = 1;
  const exp::SweepResult serial = exp::run(plan);
  t.rows = serial.rows.size();

  const auto time_mode = [&](i64 threads) {
    plan.threads = threads;
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const auto t0 = Clock::now();
      const exp::SweepResult r = exp::run(plan);
      best = std::min(best, seconds_since(t0));
      if (r.rows.size() != t.rows) std::abort();
    }
    return 1e3 * best;
  };
  t.serial_ms = time_mode(1);
  t.sharded_ms = time_mode(4);

  plan.threads = 4;
  t.sharded_equals_serial = identical(serial, exp::run(plan));
  return t;
}

}  // namespace

int main() {
  std::vector<PlanTiming> timings;
  timings.push_back(time_plan(exp::paper::binomial_table(
      net::lumi_profile(), {16, 64, 256, 1024}, harness::paper_vector_sizes(false))));
  timings.push_back(time_plan(exp::paper::sota_heatmap(
      net::lumi_profile(), sched::Collective::allreduce,
      {16, 32, 64, 128, 256, 512, 1024}, harness::paper_vector_sizes(false))));
  timings.push_back(time_plan(cross_system_plan()));

  const unsigned cores = std::thread::hardware_concurrency();
  bool all_equal = true;
  for (const PlanTiming& t : timings) {
    all_equal &= t.sharded_equals_serial;
    std::printf("%-28s %4zu cells %5zu rows   serial %8.2f ms   sharded(4) %8.2f ms"
                "   %.2fx   (%s)\n",
                t.name.c_str(), t.cells, t.rows, t.serial_ms, t.sharded_ms, t.speedup(),
                t.sharded_equals_serial ? "bit-exact" : "DIVERGED");
  }
  std::printf("(%u hardware threads; the sharded speedup is only meaningful on "
              "multi-core runners)\n",
              cores);

  if (fault::AtomicFile out("BENCH_sweep.json"); std::FILE* f = out.handle()) {
    std::string plans_json;
    for (size_t i = 0; i < timings.size(); ++i) {
      const PlanTiming& t = timings[i];
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"plan\": \"%s\", \"cells\": %zu, \"rows\": %zu, "
                    "\"serial_ms\": %.3f, \"sharded_ms\": %.3f, \"speedup\": %.2f, "
                    "\"sharded_equals_serial\": %s}",
                    i ? ",\n" : "", t.name.c_str(), t.cells, t.rows, t.serial_ms,
                    t.sharded_ms, t.speedup(),
                    t.sharded_equals_serial ? "true" : "false");
      plans_json += buf;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"sweep_engine\",\n"
                 "  \"sharded_threads\": 4,\n"
                 "  \"plans\": [\n%s\n  ],\n"
                 "  \"hardware_threads\": %u\n"
                 "}\n",
                 plans_json.c_str(), cores);
    if (out.commit()) std::printf("wrote BENCH_sweep.json\n");
  }
  return all_equal ? 0 : 1;
}
