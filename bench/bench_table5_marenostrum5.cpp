// Table 5: Bine vs binomial trees on MareNostrum 5 (2:1 oversubscribed fat
// tree), 4-64 nodes (the maximum allowed on the real system).
#include "bench_common.hpp"

int main() {
  bine::harness::Runner runner(bine::net::mn5_profile());
  bine::bench::run_binomial_table(runner, {4, 8, 16, 32, 64},
                                  bine::harness::paper_vector_sizes(false));
  return 0;
}
