// Table 5: Bine vs binomial trees on MareNostrum 5 (2:1 oversubscribed fat
// tree), 4-64 nodes (the maximum allowed on the real system).
//
// Plan: exp::paper::binomial_table run through the sweep engine; this
// driver only formats the result rows.
#include "exp/paper_plans.hpp"
#include "exp/report.hpp"
#include "net/profiles.hpp"

int main() {
  using namespace bine;
  const exp::SweepResult result = exp::run(exp::paper::binomial_table(
      net::mn5_profile(), {4, 8, 16, 32, 64}, harness::paper_vector_sizes(false)));
  exp::print_binomial_table(result);
  return 0;
}
