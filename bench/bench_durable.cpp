// Durable-execution overhead and kill-resume benchmark.
//
// The journal's contract is "pay only for what you keep": per completed cell
// it costs one encode + one fsync'd append, amortized over cells that each
// simulate a full candidate sweep -- so a journaled run must stay within 3%
// of the journal-off run on the same plan, and the journal-off path must stay
// BYTE-identical to the pre-journal engine output.
//
// Overhead is measured as two separately-robust components rather than one
// wall-clock ratio: identical back-to-back sweeps on a shared CI box jitter
// by +-10% wall (measured), which would drown a 3% gate in noise no matter
// the protocol. Instead:
//   * compute overhead -- process-CPU time of journal-on vs journal-off
//     sweeps (cleanest paired round). CPU time is blind to preemption and
//     neighbour noise, and captures everything the journal burns cycles on
//     (fingerprinting, encoding, record framing, syscall entry).
//   * sync-wall share -- the blocking fdatasync/open cost the CPU clock
//     cannot see, timed directly against a real journal with the run's own
//     record count and payload sizes, as a fraction of the sweep's wall floor.
// The gate is their sum; both components are snapshotted.
//
// Default mode measures and gates exactly that, then proves the resume
// machinery in-process (cancel mid-sweep, resume, compare bytes) and
// snapshots everything to BENCH_durable.json. Exit 1 on identity breach,
// overhead >= 3%, or a resume hit rate below 100%.
//
// Two extra modes drive the CI kill-and-resume job, which needs a REAL
// SIGKILL across process boundaries rather than a cooperative token:
//
//   bench_durable --reference <out.json>
//       journal-off run of the canonical plan; writes the golden artifact.
//   bench_durable --journaled <out.json> <journal> [--stall-after K]
//       journaled run of the same plan (threads=1). With --stall-after K it
//       touches <journal>.stalled once K cells are journaled and then sleeps
//       forever -- a deterministic SIGKILL window. Re-run without the flag to
//       resume; the artifact must compare equal to the reference.
#include <ctime>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "exp/journal.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "harness/cancel.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Process-CPU seconds: immune to preemption and neighbour noise, which on a
/// shared box swamp sub-3% wall-clock differences.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

// The canonical plan: two systems x two collectives x three node counts =
// 12 cells, every cell a full three-series candidate sweep over the paper's
// reduced size vector. Private (cold) schedule caches: the workload a durable
// sweep actually protects is first-run generation + simulation, and it is
// that per-cell cost the fsync'd append must amortize against -- a warm-cache
// replay of microsecond cells is not the scenario anyone journals.
exp::SweepPlan canonical_plan() {
  exp::SweepPlan plan;
  plan.name = "durable_canonical";
  plan.systems = {exp::SystemSpec{net::lumi_profile()},
                  exp::SystemSpec{net::leonardo_profile()}};
  for (exp::SystemSpec& spec : plan.systems) spec.private_cache = true;
  plan.colls = {sched::Collective::allreduce, sched::Collective::allgather};
  plan.series = {exp::Series::best_bine(false), exp::Series::best_binomial(),
                 exp::Series::best_sota()};
  plan.nodes.counts = {64, 128, 256};
  plan.sizes = harness::paper_vector_sizes(false);
  plan.threads = 1;
  return plan;
}

void remove_journal(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
}

int run_reference(const std::string& out_path) {
  exp::run(canonical_plan()).save_json(out_path);
  std::printf("wrote reference %s\n", out_path.c_str());
  return 0;
}

int run_journaled(const std::string& out_path, const std::string& journal,
                  i64 stall_after) {
  exp::SweepPlan plan = canonical_plan();
  plan.journal_path = journal;
  if (stall_after > 0) {
    // Deterministic SIGKILL window for the CI job: once `stall_after` cells
    // are durably journaled, signal readiness via a marker file and wedge.
    // The kill is the point -- this process never finishes.
    plan.progress = [&journal, stall_after](size_t done, size_t) {
      if (static_cast<i64>(done) < stall_after) return;
      if (std::FILE* marker = std::fopen((journal + ".stalled").c_str(), "wb"))
        std::fclose(marker);
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
    };
  }
  const exp::SweepResult res = exp::run(plan);
  std::printf("journaled run: %lld replayed, %lld executed, %lld dropped\n",
              static_cast<long long>(res.journal.replayed),
              static_cast<long long>(res.journal.executed),
              static_cast<long long>(res.journal.dropped_records));
  res.save_json(out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int run_default() {
  const std::string journal = "BENCH_durable.journal";
  const exp::SweepPlan base = canonical_plan();
  const size_t cells = exp::enumerate_cells(base).size();

  // Warm the process-wide schedule cache once so both timed variants pay
  // generation equally (round 1 would otherwise bill it to journal-off).
  const exp::SweepResult warm = exp::run(base);
  const std::string reference = warm.to_json();
  std::printf("workload: %zu cells, %zu rows\n", cells, warm.rows.size());

  // Compute overhead: paired journal-off/journal-on rounds on the CPU clock,
  // median ratio. Order alternates per round so neither variant always sits
  // in the cooler first slot.
  bool identical = true;
  double off_s = std::numeric_limits<double>::infinity();
  double on_s = std::numeric_limits<double>::infinity();
  std::vector<double> ratios;
  const auto run_off = [&]() -> double {
    const auto w0 = Clock::now();
    const double c0 = cpu_seconds();
    const exp::SweepResult r = exp::run(base);
    const double c = cpu_seconds() - c0;
    if (!r.rows.empty()) off_s = std::min(off_s, seconds_since(w0));
    return c;
  };
  const auto run_on = [&]() -> double {
    remove_journal(journal);  // fresh journal each round: every cell appends
    exp::SweepPlan plan = base;
    plan.journal_path = journal;
    const auto w0 = Clock::now();
    const double c0 = cpu_seconds();
    const exp::SweepResult r = exp::run(plan);
    const double c = cpu_seconds() - c0;
    on_s = std::min(on_s, seconds_since(w0));
    identical = identical && r.to_json() == reference &&
                r.journal.executed == static_cast<i64>(cells);
    return c;
  };
  for (int round = 0; round < 5; ++round) {
    double off_cpu = 0, on_cpu = 0;
    if (round % 2 == 0) {
      off_cpu = run_off();
      on_cpu = run_on();
    } else {
      on_cpu = run_on();
      off_cpu = run_off();
    }
    ratios.push_back(on_cpu / off_cpu);
  }
  // Min, not median: the compute delta is deterministic, while CPU-clock
  // noise (frequency scaling mid-round) is one-sided per sample and several
  // times larger -- the cleanest paired round is the measurement. The
  // blocking I/O cost the minimum could hide is exactly what the sync-wall
  // component measures independently below.
  const double cpu_overhead_pct = std::max(
      0.0, 100.0 * (*std::min_element(ratios.begin(), ratios.end()) - 1.0));

  // Sync-wall share: the blocking open + fdatasync-per-append cost the CPU
  // clock cannot see, timed directly against a real journal with this run's
  // own record count and payload sizes (min of rounds: I/O noise only adds).
  std::vector<std::string> payloads;
  {
    remove_journal(journal);
    exp::SweepPlan plan = base;
    plan.journal_path = journal;
    (void)exp::run(plan);
    const auto j = exp::Journal::open(journal, exp::plan_fingerprint(plan));
    for (size_t i = 0; i < cells; ++i) {
      const std::string* p = j ? j->lookup(exp::cell_key(
                                     exp::enumerate_cells(plan)[i]))
                               : nullptr;
      payloads.push_back(p ? *p : std::string(2048, 'x'));
    }
  }
  double sync_s = std::numeric_limits<double>::infinity();
  for (int round = 0; round < 5; ++round) {
    remove_journal(journal);
    const auto t0 = Clock::now();
    const auto j = exp::Journal::open(journal, 0xbe11c4);
    bool ok = j != nullptr;
    for (size_t i = 0; ok && i < payloads.size(); ++i)
      ok = j->append("s0.bench.p" + std::to_string(i), payloads[i]);
    if (ok) sync_s = std::min(sync_s, seconds_since(t0));
  }
  const double sync_share_pct = 100.0 * sync_s / off_s;
  const double overhead_pct = cpu_overhead_pct + sync_share_pct;
  remove_journal(journal);

  // Kill-resume in process: cancel after 4 cells, resume, compare bytes.
  remove_journal(journal);
  harness::CancelToken token;
  exp::SweepPlan interrupted = base;
  interrupted.journal_path = journal;
  interrupted.cancel = &token;
  interrupted.progress = [&token](size_t done, size_t) {
    if (done >= 4) token.cancel();
  };
  const exp::SweepResult partial = exp::run(interrupted);

  exp::SweepPlan resume = base;
  resume.journal_path = journal;
  const auto t0 = Clock::now();
  const exp::SweepResult resumed = exp::run(resume);
  const double resume_s = seconds_since(t0);
  const bool resume_identical =
      partial.cancelled && resumed.to_json() == reference;

  // Replay-only pass: every cell must now be answered from the journal.
  const exp::SweepResult replay = exp::run(resume);
  const double hit_rate =
      100.0 * static_cast<double>(replay.journal.replayed) /
      static_cast<double>(cells);
  const bool replay_identical = replay.to_json() == reference;
  remove_journal(journal);

  std::printf("journal off: %8.3f s/sweep\n", off_s);
  std::printf("journal on:  %8.3f s/sweep\n", on_s);
  std::printf("overhead:    cpu %.2f%% + sync-wall %.2f%% = %.2f%%\n",
              cpu_overhead_pct, sync_share_pct, overhead_pct);
  std::printf("resume:      %8.3f s (cancelled at %lld cells, hit rate %.0f%%)\n",
              resume_s, static_cast<long long>(partial.journal.executed), hit_rate);
  std::printf("byte-identity: journal-on %s, resumed %s, replay %s\n",
              identical ? "ok" : "FAILED", resume_identical ? "ok" : "FAILED",
              replay_identical ? "ok" : "FAILED");

  const bool overhead_ok = overhead_pct < 3.0;
  const bool hit_ok = replay.journal.replayed == static_cast<i64>(cells);
  if (!overhead_ok)
    std::fprintf(stderr, "FAIL: journal overhead %.2f%% >= 3%%\n", overhead_pct);
  if (!hit_ok)
    std::fprintf(stderr, "FAIL: replay hit rate %.0f%% != 100%%\n", hit_rate);

  if (fault::AtomicFile out("BENCH_durable.json"); std::FILE* f = out.handle()) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"durable\",\n"
                 "  \"cells\": %zu,\n"
                 "  \"rows\": %zu,\n"
                 "  \"journal_off_ms\": %.2f,\n"
                 "  \"journal_on_ms\": %.2f,\n"
                 "  \"cpu_overhead_pct\": %.2f,\n"
                 "  \"sync_wall_share_pct\": %.2f,\n"
                 "  \"overhead_pct\": %.2f,\n"
                 "  \"resume_ms\": %.2f,\n"
                 "  \"resume_hit_rate_pct\": %.1f,\n"
                 "  \"journal_on_byte_identical\": %s,\n"
                 "  \"cancel_resume_byte_identical\": %s,\n"
                 "  \"hardware_threads\": %u\n"
                 "}\n",
                 cells, warm.rows.size(), off_s * 1e3, on_s * 1e3,
                 cpu_overhead_pct, sync_share_pct, overhead_pct, resume_s * 1e3,
                 hit_rate, identical ? "true" : "false",
                 (resume_identical && replay_identical) ? "true" : "false",
                 std::thread::hardware_concurrency());
    if (out.commit()) std::printf("wrote BENCH_durable.json\n");
  }
  return (identical && resume_identical && replay_identical && overhead_ok && hit_ok)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // The byte-identity gates need a healthy baseline; an inherited CI fault
  // spec would perturb every simulated time.
  unsetenv("BINE_FAULT_SPEC");

  if (argc >= 3 && std::strcmp(argv[1], "--reference") == 0)
    return run_reference(argv[2]);
  if (argc >= 4 && std::strcmp(argv[1], "--journaled") == 0) {
    i64 stall_after = 0;
    for (int i = 4; i + 1 < argc; ++i)
      if (std::strcmp(argv[i], "--stall-after") == 0)
        stall_after = std::atoll(argv[i + 1]);
    return run_journaled(argv[2], argv[3], stall_after);
  }
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s [--reference out.json | --journaled out.json journal "
                 "[--stall-after K]]\n",
                 argv[0]);
    return 2;
  }
  return run_default();
}
