// Table 3: Bine vs binomial trees on LUMI (Dragonfly), 16-1024 nodes,
// 32 B - 512 MiB vectors, all eight collectives.
#include "bench_common.hpp"

int main() {
  bine::harness::Runner runner(bine::net::lumi_profile());
  bine::bench::run_binomial_table(runner, {16, 64, 256, 1024},
                                  bine::harness::paper_vector_sizes(false));
  return 0;
}
