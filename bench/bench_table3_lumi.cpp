// Table 3: Bine vs binomial trees on LUMI (Dragonfly), 16-1024 nodes,
// 32 B - 512 MiB vectors, all eight collectives.
//
// Plan: exp::paper::binomial_table (src/exp/paper_plans.cpp) -- the sweep
// engine fans the (system, collective, p) cells out and batches the
// bine/binomial candidates of each cell; this driver only formats the rows.
#include "exp/paper_plans.hpp"
#include "exp/report.hpp"
#include "net/profiles.hpp"

int main() {
  using namespace bine;
  const exp::SweepResult result = exp::run(exp::paper::binomial_table(
      net::lumi_profile(), {16, 64, 256, 1024}, harness::paper_vector_sizes(false)));
  exp::print_binomial_table(result);
  return 0;
}
