// Before/after benchmark of the simulation engine: the naive reference
// (virtual route() per message, hash-map link accumulators, double routing
// via measure_traffic) vs the compiled path (RouteCache + flat IR lowered
// into reused buffers, one pass).
//
// Plan: a Backend::custom sweep -- series are the non-specialized allreduce
// algorithms, the size axis the paper's vector sizes, on a Torus(4x4x4).
// Each cell generates its schedule (untimed, identical for both engines),
// asserts engine parity, then times each engine; the per-cell engine times
// ride in the row's extra field. plan.threads = 1: timing cells never
// contend. Emits BENCH_sim.json as before.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "net/route_cache.hpp"
#include "net/simulate.hpp"
#include "net/topology.hpp"
#include "sched/compiled.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  const net::Torus topo({4, 4, 4}, 6.8e9);
  const net::Placement pl = net::Placement::identity(topo.num_nodes());
  net::CostParams cp;
  cp.alpha_local = cp.alpha_global = 1.0e-6;  // torus: no separate global tier

  exp::SweepPlan plan;
  plan.name = "sim_engine";
  plan.backend = exp::Backend::custom;
  plan.threads = 1;
  plan.nodes.counts = {topo.num_nodes()};
  plan.sizes = {32, 256, 2048, 16384, 131072, 1048576, 8388608};
  for (const auto& entry : coll::algorithms_for(sched::Collective::allreduce)) {
    if (entry.specialized) continue;
    if (entry.pow2_only && !is_pow2(topo.num_nodes())) continue;
    plan.series.push_back(exp::Series::best_of(entry.name, {}));
  }
  std::printf("sweep: %zu allreduce schedules on torus 4x4x4 (%lld ranks)\n",
              plan.series.size() * plan.sizes.size(),
              static_cast<long long>(topo.num_nodes()));

  const net::RouteCache rc(topo, pl);
  sched::CompiledSchedule lowered;  // reused across cells, as the harness does
  const double per_cell_budget = 0.01;
  bool parity_failed = false;

  plan.metric = [&](const exp::CellCtx& ctx) -> exp::Metrics {
    if (parity_failed) return {};  // fail fast: skip the remaining timings
    coll::Config cfg;
    cfg.p = topo.num_nodes();
    cfg.elem_count = std::max<i64>(cfg.p, ctx.size_bytes / cfg.elem_size);
    const std::string& algorithm =
        ctx.plan->series[ctx.series].label;
    const sched::Schedule sch =
        coll::find_algorithm(sched::Collective::allreduce, algorithm).make(cfg);

    exp::Metrics m;
    m.algorithm = algorithm;

    // Parity gate: the two engines must agree before timing means anything.
    const net::SimResult ref = net::simulate_reference(sch, topo, pl, cp);
    sched::CompiledSchedule::lower_into(sch, lowered);
    const net::SimResult fast = net::simulate(lowered, rc, cp);
    if (ref.traffic.local_bytes != fast.traffic.local_bytes ||
        ref.traffic.global_bytes != fast.traffic.global_bytes ||
        ref.traffic.intra_node_bytes != fast.traffic.intra_node_bytes ||
        ref.traffic.messages != fast.traffic.messages) {
      std::fprintf(stderr, "FAIL: traffic mismatch on %s\n", algorithm.c_str());
      parity_failed = true;
      return m;
    }
    const double rel = std::abs(fast.seconds - ref.seconds) / std::abs(ref.seconds);
    if (rel > 1e-12) {
      std::fprintf(stderr, "FAIL: seconds diverge on %s (rel err %.3g > 1e-12)\n",
                   algorithm.c_str(), rel);
      parity_failed = true;
      return m;
    }

    // Best of three rounds per engine: noise on a shared machine only ever
    // adds time, so the min is the most faithful per-cell cost.
    double checksum = 0;
    auto time_engine = [&](auto&& body) {
      double best = std::numeric_limits<double>::infinity();
      for (int round = 0; round < 3; ++round) {
        i64 n = 0;
        const auto t0 = Clock::now();
        while (seconds_since(t0) < per_cell_budget) {
          body();
          ++n;
        }
        best = std::min(best, seconds_since(t0) / static_cast<double>(n));
      }
      return best;
    };
    const double naive = time_engine(
        [&] { checksum += net::simulate_reference(sch, topo, pl, cp).seconds; });
    const double compiled = time_engine([&] {
      sched::CompiledSchedule::lower_into(sch, lowered);
      checksum += net::simulate(lowered, rc, cp).seconds;
    });
    (void)checksum;
    m.extra = {naive, compiled, rel};
    return m;
  };

  const exp::SweepResult result = exp::run(plan);
  if (parity_failed) return 1;

  double naive_total = 0, compiled_total = 0, max_rel_err = 0;
  for (const exp::Row& row : result.rows) {
    naive_total += row.m.extra[0];
    compiled_total += row.m.extra[1];
    max_rel_err = std::max(max_rel_err, row.m.extra[2]);
  }
  const size_t cells = result.rows.size();
  const double naive_rate = static_cast<double>(cells) / naive_total;
  const double compiled_rate = static_cast<double>(cells) / compiled_total;
  const double speedup = compiled_rate / naive_rate;
  std::printf("naive:    %10.1f schedules/sec (%.2f ms per sweep pass)\n", naive_rate,
              1e3 * naive_total);
  std::printf("compiled: %10.1f schedules/sec (%.2f ms per sweep pass)\n", compiled_rate,
              1e3 * compiled_total);
  std::printf("speedup:  %10.2fx   (parity rel err %.3g)\n", speedup, max_rel_err);

  if (fault::AtomicFile out("BENCH_sim.json"); std::FILE* f = out.handle()) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"sim_engine\",\n"
                 "  \"topology\": \"torus_4x4x4\",\n"
                 "  \"collective\": \"allreduce\",\n"
                 "  \"num_schedules\": %zu,\n"
                 "  \"naive_schedules_per_sec\": %.1f,\n"
                 "  \"compiled_schedules_per_sec\": %.1f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"parity_max_rel_err\": %.3g\n"
                 "}\n",
                 cells, naive_rate, compiled_rate, speedup, max_rel_err);
    if (out.commit()) std::printf("wrote BENCH_sim.json\n");
  }
  return 0;
}
