// Before/after benchmark of the simulation engine: the naive reference
// (virtual route() per message, hash-map link accumulators, double routing
// via measure_traffic) vs the compiled path (RouteCache + flat IR lowered
// into reused buffers, one pass).
//
// Plan: a Backend::custom sweep -- series are the non-specialized allreduce
// algorithms, the size axis the paper's vector sizes, on a Torus(4x4x4).
// Each cell generates its schedule (untimed, identical for both engines),
// asserts engine parity, then times each engine; the per-cell engine times
// ride in the row's extra field. plan.threads = 1: timing cells never
// contend. Emits BENCH_sim.json as before.
//
// A second section times the SIZE-BATCHED engine (net::simulate_sizes: one
// structural pass per schedule across the whole size axis) against the
// per-size compiled loop on the same cell set, asserting bit-identical
// output -- on the torus (dense accumulators) AND on a Dragonfly large
// enough to take the sparse touched-link path, so both accumulator regimes
// sit in the perf snapshot.
//
// A third section times the CANDIDATE-BATCHED engine
// (net::simulate_candidates: the whole registry pool of one cell through a
// shared union pair table and a warm PairRouteMemo) against the
// per-candidate simulate_sizes loop it replaces, bit-identical, on the same
// two topologies. Exit code gates the >= 1.5x amortization claim.
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "net/pair_route_memo.hpp"
#include "net/route_cache.hpp"
#include "net/simulate.hpp"
#include "net/topology.hpp"
#include "sched/compiled.hpp"
#include "sched/schedule_cache.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Batched-vs-per-size comparison on one topology: every non-specialized
/// allreduce schedule, the paper size axis, compiled per-size loop
/// (resolve_into + simulate, the Runner hit path) vs ONE simulate_sizes
/// call. Output must match bitwise; rates are per (schedule, size) cell.
struct BatchedReport {
  size_t cells = 0;
  double compiled_rate = 0;  ///< per-size compiled engine, schedules/sec
  double batched_rate = 0;   ///< size-batched engine, schedules/sec
  double speedup = 0;
  bool bit_identical = true;
  i64 num_links = 0;
};

BatchedReport bench_batched(const net::Topology& topo, const net::CostParams& cp,
                            const std::vector<i64>& sizes, double per_cell_budget) {
  const net::Placement pl = net::Placement::identity(topo.num_nodes());
  const net::RouteCache rc(topo, pl);
  BatchedReport rep;
  rep.num_links = rc.num_links();

  coll::Config cfg;
  cfg.p = topo.num_nodes();
  std::vector<i64> elem_counts(sizes.size());
  for (size_t s = 0; s < sizes.size(); ++s)
    elem_counts[s] = std::max<i64>(cfg.p, sizes[s] / cfg.elem_size);

  double compiled_total = 0, batched_total = 0;
  sched::CompiledSchedule lowered;
  for (const auto& entry : coll::algorithms_for(sched::Collective::allreduce)) {
    if (entry.specialized) continue;
    if (entry.pow2_only && !is_pow2(cfg.p)) continue;
    cfg.elem_count = elem_counts.back();
    auto sf = std::make_shared<const sched::SizeFreeSchedule>(
        sched::SizeFreeSchedule::from(entry.make(cfg)));
    if (!sf->size_independent) continue;

    // Parity gate, bitwise: timing means nothing if the engines diverge.
    const auto batched = net::simulate_sizes(*sf, elem_counts, cfg.elem_size, rc, cp);
    for (size_t s = 0; s < elem_counts.size(); ++s) {
      sched::SizeFreeSchedule::resolve_into(sf, elem_counts[s], cfg.elem_size, lowered);
      const net::SimResult oracle = net::simulate(lowered, rc, cp);
      if (std::bit_cast<u64>(batched[s].seconds) != std::bit_cast<u64>(oracle.seconds) ||
          batched[s].traffic.total() != oracle.traffic.total() ||
          batched[s].traffic.messages != oracle.traffic.messages) {
        std::fprintf(stderr, "FAIL: batched engine diverges on %s/%s n=%lld\n",
                     topo.name().c_str(), entry.name.c_str(),
                     static_cast<long long>(elem_counts[s]));
        rep.bit_identical = false;
      }
    }

    // Best of three rounds per engine; the budget covers the whole size axis.
    double checksum = 0;
    auto time_engine = [&](auto&& body) {
      double best = std::numeric_limits<double>::infinity();
      for (int round = 0; round < 3; ++round) {
        i64 n = 0;
        const auto t0 = Clock::now();
        while (seconds_since(t0) < per_cell_budget) {
          body();
          ++n;
        }
        best = std::min(best, seconds_since(t0) / static_cast<double>(n));
      }
      return best;
    };
    compiled_total += time_engine([&] {
      for (const i64 n : elem_counts) {
        sched::SizeFreeSchedule::resolve_into(sf, n, cfg.elem_size, lowered);
        checksum += net::simulate(lowered, rc, cp).seconds;
      }
    });
    batched_total += time_engine([&] {
      checksum +=
          net::simulate_sizes(*sf, elem_counts, cfg.elem_size, rc, cp).back().seconds;
    });
    (void)checksum;
    rep.cells += elem_counts.size();
  }
  rep.compiled_rate = static_cast<double>(rep.cells) / compiled_total;
  rep.batched_rate = static_cast<double>(rep.cells) / batched_total;
  rep.speedup = rep.batched_rate / rep.compiled_rate;
  return rep;
}

/// Candidate-batched comparison on one topology: the full size-independent
/// allreduce pool of the cell, per-candidate simulate_sizes loop vs ONE
/// simulate_candidates call through a warm PairRouteMemo (the production
/// shape: the process memo persists across cells). Output must match
/// bitwise; rates are per (candidate, size) cell.
struct CandidateReport {
  size_t pool = 0;
  size_t cells = 0;          ///< pool x size axis
  double per_candidate_rate = 0;  ///< simulate_sizes loop, cells/sec
  double candidate_rate = 0;      ///< one simulate_candidates call, cells/sec
  double speedup = 0;
  bool bit_identical = true;
  i64 num_links = 0;
};

CandidateReport bench_candidates(const net::Topology& topo, const net::CostParams& cp,
                                 const std::vector<i64>& sizes, double pool_budget) {
  const net::Placement pl = net::Placement::identity(topo.num_nodes());
  const net::RouteCache rc(topo, pl);
  CandidateReport rep;
  rep.num_links = rc.num_links();

  coll::Config cfg;
  cfg.p = topo.num_nodes();
  std::vector<i64> elem_counts(sizes.size());
  for (size_t s = 0; s < sizes.size(); ++s)
    elem_counts[s] = std::max<i64>(cfg.p, sizes[s] / cfg.elem_size);

  std::vector<std::shared_ptr<const sched::SizeFreeSchedule>> own;
  std::vector<const sched::SizeFreeSchedule*> pool;
  for (const auto& entry : coll::algorithms_for(sched::Collective::allreduce)) {
    if (entry.specialized) continue;
    if (entry.pow2_only && !is_pow2(cfg.p)) continue;
    cfg.elem_count = elem_counts.back();
    auto sf = std::make_shared<const sched::SizeFreeSchedule>(
        sched::SizeFreeSchedule::from(entry.make(cfg)));
    if (!sf->size_independent) continue;
    own.push_back(std::move(sf));
    pool.push_back(own.back().get());
  }
  rep.pool = pool.size();
  rep.cells = pool.size() * elem_counts.size();

  // Parity gate, bitwise, against the exact loop being replaced.
  net::PairRouteMemo memo;
  const auto batched =
      net::simulate_candidates(pool, elem_counts, cfg.elem_size, rc, cp, &memo);
  for (size_t k = 0; k < pool.size(); ++k) {
    const auto oracle = net::simulate_sizes(*pool[k], elem_counts, cfg.elem_size, rc, cp);
    for (size_t s = 0; s < elem_counts.size(); ++s)
      if (std::bit_cast<u64>(batched[k][s].seconds) !=
              std::bit_cast<u64>(oracle[s].seconds) ||
          batched[k][s].traffic.total() != oracle[s].traffic.total() ||
          batched[k][s].traffic.messages != oracle[s].traffic.messages) {
        std::fprintf(stderr, "FAIL: candidate engine diverges on %s cand=%zu n=%lld\n",
                     topo.name().c_str(), k, static_cast<long long>(elem_counts[s]));
        rep.bit_identical = false;
      }
  }

  // Best of three rounds per engine; the budget covers the whole pool pass.
  double checksum = 0;
  auto time_engine = [&](auto&& body) {
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      i64 n = 0;
      const auto t0 = Clock::now();
      while (seconds_since(t0) < pool_budget) {
        body();
        ++n;
      }
      best = std::min(best, seconds_since(t0) / static_cast<double>(n));
    }
    return best;
  };
  const double loop_total = time_engine([&] {
    for (const auto* sf : pool)
      checksum +=
          net::simulate_sizes(*sf, elem_counts, cfg.elem_size, rc, cp).back().seconds;
  });
  const double cand_total = time_engine([&] {
    checksum += net::simulate_candidates(pool, elem_counts, cfg.elem_size, rc, cp, &memo)
                    .back()
                    .back()
                    .seconds;
  });
  (void)checksum;
  rep.per_candidate_rate = static_cast<double>(rep.cells) / loop_total;
  rep.candidate_rate = static_cast<double>(rep.cells) / cand_total;
  rep.speedup = rep.candidate_rate / rep.per_candidate_rate;
  return rep;
}

}  // namespace

int main() {
  const net::Torus topo({4, 4, 4}, 6.8e9);
  const net::Placement pl = net::Placement::identity(topo.num_nodes());
  net::CostParams cp;
  cp.alpha_local = cp.alpha_global = 1.0e-6;  // torus: no separate global tier

  exp::SweepPlan plan;
  plan.name = "sim_engine";
  plan.backend = exp::Backend::custom;
  plan.threads = 1;
  plan.nodes.counts = {topo.num_nodes()};
  plan.sizes = {32, 256, 2048, 16384, 131072, 1048576, 8388608};
  for (const auto& entry : coll::algorithms_for(sched::Collective::allreduce)) {
    if (entry.specialized) continue;
    if (entry.pow2_only && !is_pow2(topo.num_nodes())) continue;
    plan.series.push_back(exp::Series::best_of(entry.name, {}));
  }
  std::printf("sweep: %zu allreduce schedules on torus 4x4x4 (%lld ranks)\n",
              plan.series.size() * plan.sizes.size(),
              static_cast<long long>(topo.num_nodes()));

  const net::RouteCache rc(topo, pl);
  sched::CompiledSchedule lowered;  // reused across cells, as the harness does
  const double per_cell_budget = 0.01;
  bool parity_failed = false;

  plan.metric = [&](const exp::CellCtx& ctx) -> exp::Metrics {
    if (parity_failed) return {};  // fail fast: skip the remaining timings
    coll::Config cfg;
    cfg.p = topo.num_nodes();
    cfg.elem_count = std::max<i64>(cfg.p, ctx.size_bytes / cfg.elem_size);
    const std::string& algorithm =
        ctx.plan->series[ctx.series].label;
    const sched::Schedule sch =
        coll::find_algorithm(sched::Collective::allreduce, algorithm).make(cfg);

    exp::Metrics m;
    m.algorithm = algorithm;

    // Parity gate: the two engines must agree before timing means anything.
    const net::SimResult ref = net::simulate_reference(sch, topo, pl, cp);
    sched::CompiledSchedule::lower_into(sch, lowered);
    const net::SimResult fast = net::simulate(lowered, rc, cp);
    if (ref.traffic.local_bytes != fast.traffic.local_bytes ||
        ref.traffic.global_bytes != fast.traffic.global_bytes ||
        ref.traffic.intra_node_bytes != fast.traffic.intra_node_bytes ||
        ref.traffic.messages != fast.traffic.messages) {
      std::fprintf(stderr, "FAIL: traffic mismatch on %s\n", algorithm.c_str());
      parity_failed = true;
      return m;
    }
    const double rel = std::abs(fast.seconds - ref.seconds) / std::abs(ref.seconds);
    if (rel > 1e-12) {
      std::fprintf(stderr, "FAIL: seconds diverge on %s (rel err %.3g > 1e-12)\n",
                   algorithm.c_str(), rel);
      parity_failed = true;
      return m;
    }

    // Best of three rounds per engine: noise on a shared machine only ever
    // adds time, so the min is the most faithful per-cell cost.
    double checksum = 0;
    auto time_engine = [&](auto&& body) {
      double best = std::numeric_limits<double>::infinity();
      for (int round = 0; round < 3; ++round) {
        i64 n = 0;
        const auto t0 = Clock::now();
        while (seconds_since(t0) < per_cell_budget) {
          body();
          ++n;
        }
        best = std::min(best, seconds_since(t0) / static_cast<double>(n));
      }
      return best;
    };
    const double naive = time_engine(
        [&] { checksum += net::simulate_reference(sch, topo, pl, cp).seconds; });
    const double compiled = time_engine([&] {
      sched::CompiledSchedule::lower_into(sch, lowered);
      checksum += net::simulate(lowered, rc, cp).seconds;
    });
    (void)checksum;
    m.extra = {naive, compiled, rel};
    return m;
  };

  const exp::SweepResult result = exp::run(plan);
  if (parity_failed) return 1;

  double naive_total = 0, compiled_total = 0, max_rel_err = 0;
  for (const exp::Row& row : result.rows) {
    naive_total += row.m.extra[0];
    compiled_total += row.m.extra[1];
    max_rel_err = std::max(max_rel_err, row.m.extra[2]);
  }
  const size_t cells = result.rows.size();
  const double naive_rate = static_cast<double>(cells) / naive_total;
  const double compiled_rate = static_cast<double>(cells) / compiled_total;
  const double speedup = compiled_rate / naive_rate;
  std::printf("naive:    %10.1f schedules/sec (%.2f ms per sweep pass)\n", naive_rate,
              1e3 * naive_total);
  std::printf("compiled: %10.1f schedules/sec (%.2f ms per sweep pass)\n", compiled_rate,
              1e3 * compiled_total);
  std::printf("speedup:  %10.2fx   (parity rel err %.3g)\n", speedup, max_rel_err);

  // Size-batched engine (one structural pass per schedule across the whole
  // size axis) vs the per-size compiled loop, on the dense-accumulator torus
  // and on a dragonfly large enough for the sparse touched-link path. The
  // compiled baseline here is resolve_into + simulate -- the schedule-cache
  // hit path, i.e. the strictest version of "the current compiled engine".
  const BatchedReport torus_batched = bench_batched(topo, cp, plan.sizes, 0.01);
  // 384 ranks, 1320 links: past the scalar engine's 1024-link dense-scan
  // threshold, so the sparse touched-link path is what gets compared. The
  // larger budget keeps several reps inside each round even for the ring
  // schedule (~20 ms per batched pass at 384 ranks).
  const net::Dragonfly dragonfly(24, 16, 1, 25e9, 25e9);
  const net::CostParams dragonfly_cp;  // default alphas: a real global tier
  const BatchedReport dragonfly_batched =
      bench_batched(dragonfly, dragonfly_cp, plan.sizes, 0.05);
  std::printf("batched (torus, %lld links):     %10.1f schedules/sec  "
              "(%.2fx vs per-size compiled, %s)\n",
              static_cast<long long>(torus_batched.num_links),
              torus_batched.batched_rate, torus_batched.speedup,
              torus_batched.bit_identical ? "bit-identical" : "DIVERGED");
  std::printf("batched (dragonfly, %lld links): %10.1f schedules/sec  "
              "(%.2fx vs per-size compiled, %s)\n",
              static_cast<long long>(dragonfly_batched.num_links),
              dragonfly_batched.batched_rate, dragonfly_batched.speedup,
              dragonfly_batched.bit_identical ? "bit-identical" : "DIVERGED");
  if (!torus_batched.bit_identical || !dragonfly_batched.bit_identical) return 1;

  // Candidate-batched engine (the whole registry pool of one cell in one
  // structural pass, routes through a warm PairRouteMemo) vs the
  // per-candidate simulate_sizes loop, same two topologies.
  const CandidateReport torus_cand = bench_candidates(topo, cp, plan.sizes, 0.05);
  const CandidateReport dragonfly_cand =
      bench_candidates(dragonfly, dragonfly_cp, plan.sizes, 0.25);
  std::printf("candidates (torus, pool %zu):     %10.1f cells/sec  "
              "(%.2fx vs per-candidate simulate_sizes, %s)\n",
              torus_cand.pool, torus_cand.candidate_rate, torus_cand.speedup,
              torus_cand.bit_identical ? "bit-identical" : "DIVERGED");
  std::printf("candidates (dragonfly, pool %zu): %10.1f cells/sec  "
              "(%.2fx vs per-candidate simulate_sizes, %s)\n",
              dragonfly_cand.pool, dragonfly_cand.candidate_rate,
              dragonfly_cand.speedup,
              dragonfly_cand.bit_identical ? "bit-identical" : "DIVERGED");
  const bool candidate_gate = torus_cand.bit_identical && dragonfly_cand.bit_identical &&
                              torus_cand.speedup >= 1.5 && dragonfly_cand.speedup >= 1.5;
  if (!candidate_gate)
    std::fprintf(stderr, "FAIL: candidate-batched gate (>= 1.5x, bit-identical) "
                         "not met: torus %.2fx, dragonfly %.2fx\n",
                 torus_cand.speedup, dragonfly_cand.speedup);

  if (fault::AtomicFile out("BENCH_sim.json"); std::FILE* f = out.handle()) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"sim_engine\",\n"
                 "  \"topology\": \"torus_4x4x4\",\n"
                 "  \"collective\": \"allreduce\",\n"
                 "  \"num_schedules\": %zu,\n"
                 "  \"naive_schedules_per_sec\": %.1f,\n"
                 "  \"compiled_schedules_per_sec\": %.1f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"parity_max_rel_err\": %.3g,\n"
                 "  \"per_size_compiled_schedules_per_sec\": %.1f,\n"
                 "  \"per_schedule_rate_batched\": %.1f,\n"
                 "  \"batched_speedup\": %.2f,\n"
                 "  \"batched_bit_identical\": %s,\n"
                 "  \"dragonfly_num_links\": %lld,\n"
                 "  \"dragonfly_per_size_compiled_schedules_per_sec\": %.1f,\n"
                 "  \"dragonfly_per_schedule_rate_batched\": %.1f,\n"
                 "  \"dragonfly_batched_speedup\": %.2f,\n"
                 "  \"dragonfly_batched_bit_identical\": %s,\n"
                 "  \"candidate_pool\": %zu,\n"
                 "  \"candidate_loop_cells_per_sec\": %.1f,\n"
                 "  \"candidate_batched_cells_per_sec\": %.1f,\n"
                 "  \"candidate_batched_speedup\": %.2f,\n"
                 "  \"dragonfly_candidate_pool\": %zu,\n"
                 "  \"dragonfly_candidate_loop_cells_per_sec\": %.1f,\n"
                 "  \"dragonfly_candidate_batched_cells_per_sec\": %.1f,\n"
                 "  \"dragonfly_candidate_batched_speedup\": %.2f,\n"
                 "  \"candidate_batched_bit_identical\": %s\n"
                 "}\n",
                 cells, naive_rate, compiled_rate, speedup, max_rel_err,
                 torus_batched.compiled_rate, torus_batched.batched_rate,
                 torus_batched.speedup, torus_batched.bit_identical ? "true" : "false",
                 static_cast<long long>(dragonfly_batched.num_links),
                 dragonfly_batched.compiled_rate, dragonfly_batched.batched_rate,
                 dragonfly_batched.speedup,
                 dragonfly_batched.bit_identical ? "true" : "false",
                 torus_cand.pool, torus_cand.per_candidate_rate,
                 torus_cand.candidate_rate, torus_cand.speedup,
                 dragonfly_cand.pool, dragonfly_cand.per_candidate_rate,
                 dragonfly_cand.candidate_rate, dragonfly_cand.speedup,
                 torus_cand.bit_identical && dragonfly_cand.bit_identical ? "true"
                                                                          : "false");
    if (out.commit()) std::printf("wrote BENCH_sim.json\n");
  }
  return candidate_gate ? 0 : 1;
}
