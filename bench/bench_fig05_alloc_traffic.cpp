// Figure 5: distribution of the global (inter-group) traffic reduction of a
// Bine allreduce vs the standard butterfly allreduce, across synthetic
// scheduler allocations on Leonardo-like and LUMI-like machines, grouped by
// job size. The theoretical 33% bound must never be exceeded.
//
// Plan: one Backend::custom sweep per machine -- the node axis is the job
// size, the size axis the sample index. Jobs are pre-sampled serially (the
// synthetic scheduler's RNG stream is sequential state), then the expensive
// part -- the tree-traffic accounting per sampled job -- runs as sweep
// cells, bit-identical to the old serial loop.
#include <cstdio>
#include <map>
#include <vector>

#include "alloc/allocation.hpp"
#include "coll/tree_colls.hpp"
#include "core/tree.hpp"
#include "exp/sweep.hpp"
#include "harness/tables.hpp"
#include "net/simulate.hpp"

using namespace bine;

namespace {

void study(const char* label, alloc::Machine machine, const std::vector<i64>& job_sizes,
           int jobs_per_size) {
  std::printf("--- %s: %lld groups x %lld nodes, %d jobs per size ---\n", label,
              static_cast<long long>(machine.num_groups),
              static_cast<long long>(machine.nodes_per_group), jobs_per_size);
  harness::BoxStats::print_header("Global traffic reduction of Bine allreduce", "red.");

  // Pre-sample every job in the exact order the old serial loop drew them
  // (the scheduler RNG is one sequential stream; sampling inside sharded
  // cells would reorder it).
  alloc::SyntheticScheduler scheduler(machine, /*busy_fraction=*/0.4, /*seed=*/7);
  std::map<std::pair<i64, i64>, alloc::JobAllocation> jobs;
  std::vector<i64> sizes_used;
  for (const i64 size : job_sizes) {
    if (size > machine.num_nodes()) continue;
    sizes_used.push_back(size);
    for (int j = 0; j < jobs_per_size; ++j)
      jobs.emplace(std::make_pair(size, i64{j}), scheduler.sample_job(size));
  }

  exp::SweepPlan plan;
  plan.name = std::string("fig05_alloc_") + label;
  plan.backend = exp::Backend::custom;
  plan.nodes.counts = sizes_used;  // the job-size axis
  for (int j = 0; j < jobs_per_size; ++j) plan.sizes.push_back(j);  // sample index
  plan.metric = [&](const exp::CellCtx& ctx) {
    const alloc::JobAllocation& job = jobs.at({ctx.nodes, ctx.size_bytes});
    const std::vector<i64> groups = job.groups_on(machine);

    // The paper estimates the allreduce as tree-based (reduce + broadcast
    // over binomial vs Bine trees), where every edge carries the full
    // vector -- the regime the 33% bound of Eq. 2 applies to.
    coll::Config cfg;
    cfg.p = ctx.nodes;
    cfg.elem_count = 1 << 16;
    cfg.elem_size = 4;
    const i64 bine =
        net::inter_group_bytes(coll::reduce_tree(cfg, core::TreeVariant::bine_dh),
                               groups) +
        net::inter_group_bytes(coll::bcast_tree(cfg, core::TreeVariant::bine_dh),
                               groups);
    const i64 binom =
        net::inter_group_bytes(coll::reduce_tree(cfg, core::TreeVariant::binomial_dh),
                               groups) +
        net::inter_group_bytes(coll::bcast_tree(cfg, core::TreeVariant::binomial_dh),
                               groups);
    exp::Metrics m;
    if (binom == 0) {
      m.skipped = true;  // job fits one group: nothing to reduce
    } else {
      m.value = 100.0 * (1.0 - static_cast<double>(bine) / static_cast<double>(binom));
    }
    return m;
  };
  const exp::SweepResult result = exp::run(plan);

  double observed_max = 0;
  for (size_t ni = 0; ni < sizes_used.size(); ++ni) {
    std::vector<double> reductions;
    for (size_t si = 0; si < result.sizes.size(); ++si) {
      const exp::Metrics& m = result.at(0, 0, ni, si, 0);
      if (m.skipped) continue;
      reductions.push_back(m.value);
      observed_max = std::max(observed_max, m.value);
    }
    const harness::BoxStats st = harness::BoxStats::of(std::move(reductions));
    std::printf("%s\n", st.row(std::to_string(sizes_used[ni]) + " nodes").c_str());
  }
  std::printf("Largest observed reduction: %.1f%% (theoretical bound: 33.3%%)\n\n",
              observed_max);
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: inter-group traffic reduction across job allocations ===\n");
  // Leonardo: 23 groups x 180 nodes, jobs up to 256 nodes (the user cap).
  study("leonardo", alloc::Machine{23, 180}, {8, 16, 32, 64, 128, 256}, 40);
  // LUMI: 24 groups x 124 nodes, jobs up to 2048 nodes.
  study("lumi", alloc::Machine{24, 124}, {8, 16, 32, 64, 128, 256, 512, 1024, 2048}, 25);
  return 0;
}
