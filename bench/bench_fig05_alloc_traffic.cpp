// Figure 5: distribution of the global (inter-group) traffic reduction of a
// Bine allreduce vs the standard butterfly allreduce, across synthetic
// scheduler allocations on Leonardo-like and LUMI-like machines, grouped by
// job size. The theoretical 33% bound must never be exceeded.
#include <cstdio>
#include <vector>

#include "alloc/allocation.hpp"
#include "coll/tree_colls.hpp"
#include "core/tree.hpp"
#include "harness/tables.hpp"
#include "net/simulate.hpp"

using namespace bine;

namespace {

void study(const char* label, alloc::Machine machine, const std::vector<i64>& job_sizes,
           int jobs_per_size) {
  std::printf("--- %s: %lld groups x %lld nodes, %d jobs per size ---\n", label,
              static_cast<long long>(machine.num_groups),
              static_cast<long long>(machine.nodes_per_group), jobs_per_size);
  harness::BoxStats::print_header("Global traffic reduction of Bine allreduce", "red.");
  alloc::SyntheticScheduler scheduler(machine, /*busy_fraction=*/0.4, /*seed=*/7);
  double observed_max = 0;
  for (const i64 size : job_sizes) {
    if (size > machine.num_nodes()) continue;
    std::vector<double> reductions;
    for (int j = 0; j < jobs_per_size; ++j) {
      const alloc::JobAllocation job = scheduler.sample_job(size);
      const std::vector<i64> groups = job.groups_on(machine);

      // The paper estimates the allreduce as tree-based (reduce + broadcast
      // over binomial vs Bine trees), where every edge carries the full
      // vector -- the regime the 33% bound of Eq. 2 applies to.
      coll::Config cfg;
      cfg.p = size;
      cfg.elem_count = 1 << 16;
      cfg.elem_size = 4;
      const i64 bine =
          net::inter_group_bytes(coll::reduce_tree(cfg, core::TreeVariant::bine_dh),
                                 groups) +
          net::inter_group_bytes(coll::bcast_tree(cfg, core::TreeVariant::bine_dh),
                                 groups);
      const i64 binom =
          net::inter_group_bytes(coll::reduce_tree(cfg, core::TreeVariant::binomial_dh),
                                 groups) +
          net::inter_group_bytes(coll::bcast_tree(cfg, core::TreeVariant::binomial_dh),
                                 groups);
      if (binom == 0) continue;  // job fits one group: nothing to reduce
      const double red =
          100.0 * (1.0 - static_cast<double>(bine) / static_cast<double>(binom));
      reductions.push_back(red);
      observed_max = std::max(observed_max, red);
    }
    const harness::BoxStats st = harness::BoxStats::of(std::move(reductions));
    std::printf("%s\n", st.row(std::to_string(size) + " nodes").c_str());
  }
  std::printf("Largest observed reduction: %.1f%% (theoretical bound: 33.3%%)\n\n",
              observed_max);
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: inter-group traffic reduction across job allocations ===\n");
  // Leonardo: 23 groups x 180 nodes, jobs up to 256 nodes (the user cap).
  study("leonardo", alloc::Machine{23, 180}, {8, 16, 32, 64, 128, 256}, 40);
  // LUMI: 24 groups x 124 nodes, jobs up to 2048 nodes.
  study("lumi", alloc::Machine{24, 124}, {8, 16, 32, 64, 128, 256, 512, 1024, 2048}, 25);
  return 0;
}
