// Figure 14 / Appendix B: which non-contiguous-data strategy (B = block-by-
// block, P = permute, S = send, T = two transmissions) wins for the Bine
// allgather on a LUMI-like system, per (nodes, vector size) cell, and its
// gain over the standard recursive-doubling butterfly.
//
// Plan: one explicit-series sweep (best-of the four strategies + the
// recursive-doubling baseline); the letter grid is formatted from the rows.
#include <cstdio>
#include <map>

#include "exp/sweep.hpp"
#include "net/profiles.hpp"

using namespace bine;

int main() {
  std::printf("=== Fig. 14: allgather non-contiguous strategies on LUMI ===\n");
  const std::map<std::string, char> letters = {{"bine_block", 'B'},
                                               {"bine_permute", 'P'},
                                               {"bine_send", 'S'},
                                               {"bine_two_trans", 'T'}};

  exp::SweepPlan plan;
  plan.name = "fig14_noncontig";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {sched::Collective::allgather};
  plan.series = {exp::Series::best_of("strategy", {"bine_block", "bine_permute",
                                                   "bine_send", "bine_two_trans"}),
                 exp::Series::single("recursive_doubling")};
  plan.nodes.counts = {8, 16, 32, 64, 128, 256, 512, 1024};
  plan.sizes = harness::paper_vector_sizes(false);
  const exp::SweepResult result = exp::run(plan);

  std::printf("%-10s", "");
  for (const i64 n : plan.nodes.counts) std::printf(" %9lld", static_cast<long long>(n));
  std::printf("\n");
  for (size_t si = 0; si < result.sizes.size(); ++si) {
    std::printf("%-10s", harness::size_label(result.sizes[si]).c_str());
    for (size_t ni = 0; ni < plan.nodes.counts.size(); ++ni) {
      const exp::Metrics& best = result.at(0, 0, ni, si, 0);
      const exp::Metrics& baseline = result.at(0, 0, ni, si, 1);
      std::printf("  %c %5.2fx", letters.at(best.algorithm),
                  baseline.seconds / best.seconds);
    }
    std::printf("\n");
  }
  std::printf("(B=block-by-block, P=permute, S=send, T=two transmissions; the factor is "
              "the gain over the standard binomial butterfly)\n");
  return 0;
}
