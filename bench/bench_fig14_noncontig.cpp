// Figure 14 / Appendix B: which non-contiguous-data strategy (B = block-by-
// block, P = permute, S = send, T = two transmissions) wins for the Bine
// allgather on a LUMI-like system, per (nodes, vector size) cell, and its
// gain over the standard recursive-doubling butterfly.
#include <cstdio>

#include "bench_common.hpp"

using namespace bine;

int main() {
  std::printf("=== Fig. 14: allgather non-contiguous strategies on LUMI ===\n");
  harness::Runner runner(net::lumi_profile());
  const std::vector<i64> nodes = {8, 16, 32, 64, 128, 256, 512, 1024};
  const std::vector<i64> sizes = harness::paper_vector_sizes(false);
  const std::vector<std::pair<const char*, char>> strategies = {
      {"bine_block", 'B'}, {"bine_permute", 'P'}, {"bine_send", 'S'},
      {"bine_two_trans", 'T'}};

  std::printf("%-10s", "");
  for (const i64 n : nodes) std::printf(" %9lld", static_cast<long long>(n));
  std::printf("\n");
  for (const i64 size : sizes) {
    std::printf("%-10s", harness::size_label(size).c_str());
    for (const i64 n : nodes) {
      char best = '?';
      double best_time = 1e300;
      for (const auto& [name, letter] : strategies) {
        const auto& entry = coll::find_algorithm(sched::Collective::allgather, name);
        if (entry.pow2_only && !is_pow2(n)) continue;
        const double t = runner.run(sched::Collective::allgather, entry, n, size).seconds;
        if (t < best_time) {
          best_time = t;
          best = letter;
        }
      }
      const double baseline =
          runner
              .run(sched::Collective::allgather,
                   coll::find_algorithm(sched::Collective::allgather, "recursive_doubling"),
                   n, size)
              .seconds;
      std::printf("  %c %5.2fx", best, baseline / best_time);
    }
    std::printf("\n");
  }
  std::printf("(B=block-by-block, P=permute, S=send, T=two transmissions; the factor is "
              "the gain over the standard binomial butterfly)\n");
  return 0;
}
