// Figure 11b / Sec. 5.4: torus-optimized collectives on Fugaku-like 3D
// sub-tori (2x2x2, 4x4x4, 8x8x8). Compares the multi-port Bine allreduce
// against the Bucket (multi-dimensional ring) baseline, the single-port
// torus Bine, and the topology-agnostic algorithms Fujitsu MPI would fall
// back to.
#include <cstdio>

#include "bench_common.hpp"

using namespace bine;

int main() {
  std::printf("=== Fig. 11b: torus collectives on Fugaku-like sub-tori ===\n");
  const std::vector<std::vector<i64>> shapes = {{2, 2, 2}, {4, 4, 4}, {8, 8, 8}};
  for (const auto& dims : shapes) {
    i64 p = 1;
    for (const i64 d : dims) p *= d;
    harness::Runner runner(net::fugaku_profile(dims), /*spread_placement=*/false);
    runner.torus_dims = dims;
    std::printf("\n--- %lldx%lldx%lld (%lld nodes) ---\n",
                static_cast<long long>(dims[0]), static_cast<long long>(dims[1]),
                static_cast<long long>(dims[2]), static_cast<long long>(p));
    std::printf("%-10s %24s %14s %14s\n", "size", "winner", "bine_torus_mp",
                "vs bucket");
    for (const i64 size : harness::paper_vector_sizes(false)) {
      const auto multiport = runner.run(
          sched::Collective::allreduce,
          coll::find_algorithm(sched::Collective::allreduce, "bine_torus_multiport"), p,
          size);
      const auto bucket = runner.run(
          sched::Collective::allreduce,
          coll::find_algorithm(sched::Collective::allreduce, "bucket"), p, size);
      const auto flat = runner.best_of(sched::Collective::allreduce,
                                       {"recursive_doubling", "rabenseifner", "ring"}, p,
                                       size);
      const double best_other = std::min(bucket.seconds, flat.second.seconds);
      const char* winner = multiport.seconds < best_other ? "bine_torus_multiport"
                           : (bucket.seconds < flat.second.seconds ? "bucket"
                                                                   : flat.first.c_str());
      std::printf("%-10s %24s %13.1fx %13.2fx\n", harness::size_label(size).c_str(),
                  winner, best_other / multiport.seconds,
                  bucket.seconds / multiport.seconds);
    }
  }
  std::printf("\nBox-plot summaries (allreduce/reduce-scatter/allgather vs all "
              "non-Bine algorithms) on the 8x8x8 torus:\n");
  harness::Runner runner(net::fugaku_profile({8, 8, 8}), false);
  runner.torus_dims = {8, 8, 8};
  bench::run_sota_boxplots(runner, {512}, harness::paper_vector_sizes(false),
                           {sched::Collective::allreduce,
                            sched::Collective::reduce_scatter,
                            sched::Collective::allgather});
  return 0;
}
