// Figure 11b / Sec. 5.4: torus-optimized collectives on Fugaku-like 3D
// sub-tori (2x2x2, 4x4x4, 8x8x8). Compares the multi-port Bine allreduce
// against the Bucket (multi-dimensional ring) baseline, the single-port
// torus Bine, and the topology-agnostic algorithms Fujitsu MPI would fall
// back to.
//
// Plans: one explicit-series sweep per sub-torus (series = bine_torus_multiport /
// bucket / best flat algorithm) plus exp::paper::sota_boxplots on the 8x8x8
// shape -- the torus shape and identity placement live on the plan's
// SystemSpec, not in driver loops.
#include <algorithm>
#include <cstdio>

#include "exp/paper_plans.hpp"
#include "exp/report.hpp"
#include "net/profiles.hpp"

using namespace bine;

namespace {

exp::SweepPlan torus_plan(const std::vector<i64>& dims, i64 p) {
  exp::SweepPlan plan;
  plan.name = "fig11b_torus";
  exp::SystemSpec spec;
  spec.profile = net::fugaku_profile(dims);
  spec.spread_placement = false;
  spec.torus_dims = dims;
  plan.systems = {std::move(spec)};
  plan.colls = {sched::Collective::allreduce};
  plan.series = {exp::Series::single("bine_torus_multiport"),
                 exp::Series::single("bucket"),
                 exp::Series::best_of("flat", {"recursive_doubling", "rabenseifner",
                                              "ring"})};
  plan.nodes.counts = {p};
  plan.sizes = harness::paper_vector_sizes(false);
  return plan;
}

}  // namespace

int main() {
  std::printf("=== Fig. 11b: torus collectives on Fugaku-like sub-tori ===\n");
  const std::vector<std::vector<i64>> shapes = {{2, 2, 2}, {4, 4, 4}, {8, 8, 8}};
  for (const auto& dims : shapes) {
    i64 p = 1;
    for (const i64 d : dims) p *= d;
    const exp::SweepResult result = exp::run(torus_plan(dims, p));
    std::printf("\n--- %lldx%lldx%lld (%lld nodes) ---\n",
                static_cast<long long>(dims[0]), static_cast<long long>(dims[1]),
                static_cast<long long>(dims[2]), static_cast<long long>(p));
    std::printf("%-10s %24s %14s %14s\n", "size", "winner", "bine_torus_mp",
                "vs bucket");
    for (size_t si = 0; si < result.sizes.size(); ++si) {
      const exp::Metrics& multiport = result.at(0, 0, 0, si, 0);
      const exp::Metrics& bucket = result.at(0, 0, 0, si, 1);
      const exp::Metrics& flat = result.at(0, 0, 0, si, 2);
      const double best_other = std::min(bucket.seconds, flat.seconds);
      const char* winner = multiport.seconds < best_other ? "bine_torus_multiport"
                           : (bucket.seconds < flat.seconds ? "bucket"
                                                            : flat.algorithm.c_str());
      std::printf("%-10s %24s %13.1fx %13.2fx\n",
                  harness::size_label(result.sizes[si]).c_str(), winner,
                  best_other / multiport.seconds, bucket.seconds / multiport.seconds);
    }
  }
  std::printf("\nBox-plot summaries (allreduce/reduce-scatter/allgather vs all "
              "non-Bine algorithms) on the 8x8x8 torus:\n");
  exp::SweepPlan box = exp::paper::sota_boxplots(
      net::fugaku_profile({8, 8, 8}), {512}, harness::paper_vector_sizes(false),
      {sched::Collective::allreduce, sched::Collective::reduce_scatter,
       sched::Collective::allgather});
  box.systems[0].spread_placement = false;
  box.systems[0].torus_dims = {8, 8, 8};
  exp::print_sota_boxplots(exp::run(box));
  return 0;
}
