// Sec. 6.2: hierarchical Bine allreduce vs an NCCL-like ring allreduce on a
// multi-GPU cluster (4 GPUs per node, fast intra-node all-to-all links).
//
// Plan: two single-algorithm series over the GPU-count x size grid; the
// identity placement (consecutive GPUs) lives on the plan's SystemSpec.
#include <cstdio>

#include "exp/sweep.hpp"
#include "net/profiles.hpp"

using namespace bine;

int main() {
  std::printf("=== Sec. 6.2: multi-GPU allreduce, 4 GPUs/node ===\n");
  exp::SweepPlan plan;
  plan.name = "sec6_multigpu";
  exp::SystemSpec spec;
  spec.profile = net::multigpu_profile();
  spec.spread_placement = false;
  plan.systems = {std::move(spec)};
  plan.colls = {sched::Collective::allreduce};
  plan.series = {exp::Series::single("bine_hierarchical"), exp::Series::single("ring")};
  plan.nodes.counts = {16, 64, 256, 512};
  plan.sizes = {i64{1} << 22, i64{1} << 24, i64{1} << 26};  // >= 4 MiB
  const exp::SweepResult result = exp::run(plan);

  std::printf("%-8s %-10s %16s %16s %10s\n", "GPUs", "size", "bine_hier (s)",
              "nccl_ring (s)", "speedup");
  for (size_t ni = 0; ni < plan.nodes.counts.size(); ++ni)
    for (size_t si = 0; si < result.sizes.size(); ++si) {
      const exp::Metrics& hier = result.at(0, 0, ni, si, 0);
      const exp::Metrics& ring = result.at(0, 0, ni, si, 1);
      std::printf("%-8lld %-10s %16.6f %16.6f %9.2fx\n",
                  static_cast<long long>(plan.nodes.counts[ni]),
                  harness::size_label(result.sizes[si]).c_str(), hier.seconds,
                  ring.seconds, ring.seconds / hier.seconds);
    }
  std::printf("\nPaper: Bine surpasses NCCL's best algorithm for vectors > 4 MiB from\n"
              "16 to 256 GPUs (avg +5%%, up to +24%% at 256 GPUs).\n");
  return 0;
}
