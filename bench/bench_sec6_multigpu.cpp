// Sec. 6.2: hierarchical Bine allreduce vs an NCCL-like ring allreduce on a
// multi-GPU cluster (4 GPUs per node, fast intra-node all-to-all links).
#include <cstdio>

#include "bench_common.hpp"

using namespace bine;

int main() {
  std::printf("=== Sec. 6.2: multi-GPU allreduce, 4 GPUs/node ===\n");
  harness::Runner runner(net::multigpu_profile(), /*spread_placement=*/false);
  std::printf("%-8s %-10s %16s %16s %10s\n", "GPUs", "size", "bine_hier (s)",
              "nccl_ring (s)", "speedup");
  for (const i64 gpus : {16, 64, 256, 512}) {
    for (const i64 size : {i64{1} << 22, i64{1} << 24, i64{1} << 26}) {  // >= 4 MiB
      const auto hier = runner.run(
          sched::Collective::allreduce,
          coll::find_algorithm(sched::Collective::allreduce, "bine_hierarchical"), gpus,
          size);
      const auto ring =
          runner.run(sched::Collective::allreduce,
                     coll::find_algorithm(sched::Collective::allreduce, "ring"), gpus,
                     size);
      std::printf("%-8lld %-10s %16.6f %16.6f %9.2fx\n", static_cast<long long>(gpus),
                  harness::size_label(size).c_str(), hier.seconds, ring.seconds,
                  ring.seconds / hier.seconds);
    }
  }
  std::printf("\nPaper: Bine surpasses NCCL's best algorithm for vectors > 4 MiB from\n"
              "16 to 256 GPUs (avg +5%%, up to +24%% at 256 GPUs).\n");
  return 0;
}
