// Before/after benchmark of the schedule-generation fast path: every cell
// regenerating its BlockSet-heavy schedule from scratch (the pre-cache
// behaviour; generation dominates sweep wall time now that simulation is
// compiled -- see BENCH_sim.json) vs the size-independent ScheduleCache +
// arena-backed BlockSets, where one cached structure serves a whole
// message-size sweep and each cell only resolves bytes and simulates.
//
// Sweep: the bine/binomial/sota best-variant queries of one evaluation-table
// column family -- six collectives x every power-of-two vector size from
// 32 B to 1 GiB on a Torus(4x4x4) system -- i.e. a generation-dominated
// tuning grid in the shape of Tables 3-5 (the tables sample nine of these
// sizes; autotuning sweeps the dense grid, which is exactly the workload the
// size-independent cache exists for). Both modes run the identical batched
// Runner::sweep on one
// worker thread; each timing round constructs a fresh Runner, so the cached
// mode pays its per-(algorithm, p) generation miss once per round and
// amortizes it across the 26 sizes, exactly as a real sweep does.
// Emits BENCH_gen.json with sweeps per second for both modes, the speedup,
// and the parity gate (cached results must be bit-identical to uncached).
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "net/profiles.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<harness::SweepQuery> build_queries() {
  std::vector<harness::SweepQuery> queries;
  const sched::Collective colls[] = {
      sched::Collective::allreduce,      sched::Collective::bcast,
      sched::Collective::reduce,         sched::Collective::allgather,
      sched::Collective::reduce_scatter, sched::Collective::alltoall,
  };
  for (const sched::Collective coll : colls)
    for (i64 size = 32; size <= (i64{1} << 30); size <<= 1) {
      queries.push_back({coll, 64, size, harness::SweepQuery::Kind::bine, true});
      queries.push_back({coll, 64, size, harness::SweepQuery::Kind::binomial, false});
      queries.push_back({coll, 64, size, harness::SweepQuery::Kind::sota, false});
    }
  return queries;
}

using SweepResults = std::vector<std::pair<std::string, harness::RunResult>>;

bool identical(const SweepResults& a, const SweepResults& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first) return false;
    if (a[i].second.seconds != b[i].second.seconds) return false;  // bitwise
    if (a[i].second.global_bytes != b[i].second.global_bytes) return false;
    if (a[i].second.total_bytes != b[i].second.total_bytes) return false;
    if (a[i].second.steps != b[i].second.steps) return false;
  }
  return true;
}

}  // namespace

int main() {
  const auto queries = build_queries();
  std::printf("sweep: %zu best-variant queries (6 collectives x 26 sizes x 3 kinds) "
              "on fugaku torus 4x4x4 (64 ranks)\n",
              queries.size());

  auto run_sweep = [&](bool cached) {
    harness::Runner runner(net::fugaku_profile({4, 4, 4}));
    runner.set_schedule_cache(cached);
    // Cold cache per round: the bench times the per-sweep miss + amortize
    // pattern, so opt out of the process-wide shared cache.
    runner.use_private_schedule_cache();
    return runner.sweep(queries, /*threads=*/1);
  };

  // Parity gate first: timing means nothing if the fast path diverges.
  const SweepResults uncached_results = run_sweep(false);
  const SweepResults cached_results = run_sweep(true);
  const bool parity = identical(uncached_results, cached_results);
  if (!parity) {
    std::fprintf(stderr, "FAIL: cached sweep diverges from uncached sweep\n");
    return 1;
  }

  // Best of three rounds per mode: noise on a shared machine only ever adds
  // time, so the min is the most faithful sweep cost.
  auto time_mode = [&](bool cached) {
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const auto t0 = Clock::now();
      const SweepResults r = run_sweep(cached);
      best = std::min(best, seconds_since(t0));
      if (r.size() != queries.size()) std::abort();  // keep the work observable
    }
    return best;
  };
  const double uncached_time = time_mode(false);
  const double cached_time = time_mode(true);
  const double speedup = uncached_time / cached_time;

  std::printf("uncached: %8.2f ms per sweep (fresh generation every cell)\n",
              1e3 * uncached_time);
  std::printf("cached:   %8.2f ms per sweep (arena + ScheduleCache)\n",
              1e3 * cached_time);
  std::printf("speedup:  %8.2fx   (parity: bit-exact)\n", speedup);

  if (std::FILE* f = std::fopen("BENCH_gen.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"schedule_gen\",\n"
                 "  \"topology\": \"torus_4x4x4\",\n"
                 "  \"num_queries\": %zu,\n"
                 "  \"uncached_sweep_ms\": %.3f,\n"
                 "  \"cached_sweep_ms\": %.3f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"parity_bit_exact\": %s\n"
                 "}\n",
                 queries.size(), 1e3 * uncached_time, 1e3 * cached_time, speedup,
                 parity ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_gen.json\n");
  }
  return 0;
}
