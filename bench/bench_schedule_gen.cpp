// Before/after benchmark of the schedule-generation fast path: every cell
// regenerating its BlockSet-heavy schedule from scratch (the pre-cache
// behaviour; generation dominates sweep wall time now that simulation is
// compiled -- see BENCH_sim.json) vs the size-independent ScheduleCache +
// arena-backed BlockSets, where one cached structure serves a whole
// message-size sweep and each cell only resolves bytes and simulates.
//
// Plan: the bine/binomial/sota best-variant series of one evaluation-table
// column family -- six collectives x every power-of-two vector size from
// 32 B to 1 GiB on a Torus(4x4x4) system -- run through exp::run on one
// shard. The schedule-cache mode lives on the plan's SystemSpec (private
// cache, so each timing round pays the per-(algorithm, p) miss once and
// amortizes it across the 26 sizes, exactly as a real sweep does); the
// timed artifact is the whole engine invocation. Emits BENCH_gen.json with
// the speedup and the parity gate (cached rows must be bit-identical to
// uncached rows).
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "net/profiles.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

exp::SweepPlan build_plan(bool cached) {
  exp::SweepPlan plan;
  // One name for both modes: the cache mode lives on the SystemSpec, and the
  // parity gate compares the full canonical JSON (name included).
  plan.name = "schedule_gen";
  exp::SystemSpec spec;
  spec.profile = net::fugaku_profile({4, 4, 4});
  spec.schedule_cache = cached;
  // Cold cache per engine invocation: the bench times the per-sweep miss +
  // amortize pattern, so opt out of the process-wide shared cache.
  spec.private_cache = true;
  plan.systems = {std::move(spec)};
  plan.colls = {sched::Collective::allreduce,      sched::Collective::bcast,
                sched::Collective::reduce,         sched::Collective::allgather,
                sched::Collective::reduce_scatter, sched::Collective::alltoall};
  plan.series = {exp::Series::best_bine(/*contiguous_only=*/true),
                 exp::Series::best_binomial(), exp::Series::best_sota()};
  plan.nodes.counts = {64};
  for (i64 size = 32; size <= (i64{1} << 30); size <<= 1) plan.sizes.push_back(size);
  plan.backend = exp::Backend::simulate;
  plan.threads = 1;
  return plan;
}

bool identical(const exp::SweepResult& a, const exp::SweepResult& b) {
  // Canonical JSON covers every metric field (seconds at full %.17g
  // precision, bytes, messages, steps) in canonical row order.
  return a.to_json() == b.to_json();
}

}  // namespace

int main() {
  const size_t num_queries = 6 * 26 * 3;
  std::printf("sweep: %zu best-variant queries (6 collectives x 26 sizes x 3 kinds) "
              "on fugaku torus 4x4x4 (64 ranks)\n",
              num_queries);

  // Parity gate first: timing means nothing if the fast path diverges.
  const exp::SweepResult uncached_results = exp::run(build_plan(false));
  const exp::SweepResult cached_results = exp::run(build_plan(true));
  const bool parity = identical(uncached_results, cached_results);
  if (!parity) {
    std::fprintf(stderr, "FAIL: cached sweep diverges from uncached sweep\n");
    return 1;
  }

  // Best of three rounds per mode: noise on a shared machine only ever adds
  // time, so the min is the most faithful sweep cost. Each round is a fresh
  // engine invocation (fresh Runner, cold private cache).
  auto time_mode = [&](bool cached) {
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const auto t0 = Clock::now();
      const exp::SweepResult r = exp::run(build_plan(cached));
      best = std::min(best, seconds_since(t0));
      if (r.rows.size() != num_queries) std::abort();  // keep the work observable
    }
    return best;
  };
  const double uncached_time = time_mode(false);
  const double cached_time = time_mode(true);
  const double speedup = uncached_time / cached_time;

  std::printf("uncached: %8.2f ms per sweep (fresh generation every cell)\n",
              1e3 * uncached_time);
  std::printf("cached:   %8.2f ms per sweep (arena + ScheduleCache)\n",
              1e3 * cached_time);
  std::printf("speedup:  %8.2fx   (parity: bit-exact)\n", speedup);

  if (fault::AtomicFile out("BENCH_gen.json"); std::FILE* f = out.handle()) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"schedule_gen\",\n"
                 "  \"topology\": \"torus_4x4x4\",\n"
                 "  \"num_queries\": %zu,\n"
                 "  \"uncached_sweep_ms\": %.3f,\n"
                 "  \"cached_sweep_ms\": %.3f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"parity_bit_exact\": %s\n"
                 "}\n",
                 num_queries, 1e3 * uncached_time, 1e3 * cached_time, speedup,
                 parity ? "true" : "false");
    if (out.commit()) std::printf("wrote BENCH_gen.json\n");
  }
  return 0;
}
