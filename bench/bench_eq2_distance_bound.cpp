// Eq. 2 / Sec. 2.4.1: delta_bine(i) / delta_binomial(i) -> 2/3, which bounds
// the global-traffic reduction at 33%.
#include <cstdio>

#include "core/distance_theory.hpp"

using namespace bine;

int main() {
  std::printf("=== Eq. 2: per-step distance ratio delta_bine / delta_binomial ===\n");
  std::printf("%6s %16s %16s %8s\n", "s-i", "delta_binomial", "delta_bine", "ratio");
  const int s = 24;
  for (int step = s - 1; step >= 0; --step) {
    std::printf("%6d %16lld %16lld %8.4f\n", s - step,
                static_cast<long long>(core::delta_binomial(step, s)),
                static_cast<long long>(core::delta_bine(step, s)),
                core::distance_ratio(step, s));
  }
  std::printf("\nAsymptotic ratio = 2/3 (maximum global-traffic reduction 33%%).\n");
  return 0;
}
