// Eq. 2 / Sec. 2.4.1: delta_bine(i) / delta_binomial(i) -> 2/3, which bounds
// the global-traffic reduction at 33%.
//
// Plan: a Backend::custom sweep whose size axis is the step index (a
// pure-math metric needs no systems or Runners); the ratio and both deltas
// ride in the row's value/extra fields.
#include <cstdio>

#include "core/distance_theory.hpp"
#include "exp/sweep.hpp"

using namespace bine;

int main() {
  constexpr int s = 24;
  exp::SweepPlan plan;
  plan.name = "eq2_distance_bound";
  plan.backend = exp::Backend::custom;
  plan.nodes.counts = {s};
  for (int i = 1; i <= s; ++i) plan.sizes.push_back(i);  // s - step, ascending
  plan.metric = [](const exp::CellCtx& ctx) {
    const int step = static_cast<int>(ctx.nodes - ctx.size_bytes);
    exp::Metrics m;
    m.value = core::distance_ratio(step, static_cast<int>(ctx.nodes));
    m.extra = {static_cast<double>(core::delta_binomial(step, static_cast<int>(ctx.nodes))),
               static_cast<double>(core::delta_bine(step, static_cast<int>(ctx.nodes)))};
    return m;
  };
  const exp::SweepResult result = exp::run(plan);

  std::printf("=== Eq. 2: per-step distance ratio delta_bine / delta_binomial ===\n");
  std::printf("%6s %16s %16s %8s\n", "s-i", "delta_binomial", "delta_bine", "ratio");
  for (size_t si = 0; si < result.sizes.size(); ++si) {
    const exp::Metrics& m = result.at(0, 0, 0, si, 0);
    std::printf("%6lld %16lld %16lld %8.4f\n", static_cast<long long>(result.sizes[si]),
                static_cast<long long>(m.extra[0]), static_cast<long long>(m.extra[1]),
                m.value);
  }
  std::printf("\nAsymptotic ratio = 2/3 (maximum global-traffic reduction 33%%).\n");
  return 0;
}
