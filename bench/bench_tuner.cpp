// Autotuner benchmark: (1) tuned dispatch vs the best single fixed algorithm
// on a multi-system, multi-collective sweep -- the payoff of persisting the
// sweep winners instead of throwing them away -- and (2) sharded vs serial
// decision-table build, exercising the cross-system parallelism the sweep
// engine's planner provides (one work item per (system, collective, p)
// cell, all sharing the process-wide schedule cache).
//
// Plan: one Backend::tuned_dispatch SweepPlan per collective -- series are
// {tuned, exhaustive argmin, one single series per fixed candidate} over
// the 3-system x node-count x size grid, so the tuned/fixed/parity numbers
// all come from the same engine rows. The dispatch comparison is evaluated
// on the tuning grid PLUS off-grid midpoint sizes, so the tuned table is
// also judged between its own crossover points. Parity gate: at every grid
// size the tuned selection must equal the argmin series' winner.
//
// Emits BENCH_tune.json next to the other BENCH_* snapshots.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "coll/registry.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "net/profiles.hpp"
#include "tune/decision_table.hpp"
#include "tune/tuner.hpp"

using namespace bine;
using sched::Collective;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const std::vector<Collective> kColls = {Collective::allreduce, Collective::allgather,
                                        Collective::bcast};
const std::vector<i64> kNodes = {16, 24, 32, 48, 64};

std::vector<net::SystemProfile> systems() {
  return {net::lumi_profile(), net::leonardo_profile(), net::mn5_profile()};
}

tune::TunerOptions tuner_options(i64 threads) {
  tune::TunerOptions opts;
  opts.size_grid = harness::paper_vector_sizes(false);
  opts.threads = threads;
  return opts;
}

/// Tuning grid plus the geometric midpoint of every adjacent pair: judges
/// the table between its own crossover points too.
std::vector<i64> eval_sizes(const std::vector<i64>& grid) {
  std::vector<i64> sizes = grid;
  for (size_t i = 0; i + 1 < grid.size(); ++i)
    sizes.push_back(static_cast<i64>(
        std::llround(std::sqrt(static_cast<double>(grid[i]) *
                               static_cast<double>(grid[i + 1])))));
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

}  // namespace

int main() {
  const std::vector<net::SystemProfile> profiles = systems();
  const tune::TunerOptions opts = tuner_options(1);
  const i64 cells = static_cast<i64>(profiles.size() * kColls.size() * kNodes.size());
  std::printf("tuning workload: %zu systems x %zu collectives x %zu node counts = "
              "%lld cells, %zu-point size grid\n",
              profiles.size(), kColls.size(), kNodes.size(),
              static_cast<long long>(cells), opts.size_grid.size());

  // --- sharded vs serial table build -------------------------------------
  // One prewarm build populates the process-wide schedule cache (generation
  // is shared state; the timed builds isolate the sharding axis, not cold
  // caches). Best of 3 rounds per mode.
  (void)tune::Tuner(tuner_options(1)).build(profiles, kColls, kNodes);
  const auto time_build = [&](i64 threads) {
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const auto t0 = Clock::now();
      (void)tune::Tuner(tuner_options(threads)).build(profiles, kColls, kNodes);
      best = std::min(best, seconds_since(t0));
    }
    return best;
  };
  const double serial_s = time_build(1);
  const double sharded_s = time_build(4);
  const unsigned cores = std::thread::hardware_concurrency();
  // A single-core runner cannot demonstrate a sharding win: four workers
  // timeslice one core. Report the ratio as unmeasurable instead of claiming
  // a (noise-driven) speedup either way -- same contract as the exec bench's
  // threaded-crossover gate.
  const bool speedup_unmeasurable = cores <= 1;
  const double build_speedup = speedup_unmeasurable ? 0.0 : serial_s / sharded_s;
  if (speedup_unmeasurable)
    std::printf("table build:  serial %8.2f ms   sharded(4) %8.2f ms   "
                "speedup unmeasurable (single-core runner)\n",
                1e3 * serial_s, 1e3 * sharded_s);
  else
    std::printf("table build:  serial %8.2f ms   sharded(4) %8.2f ms   %.2fx "
                "(%u hardware threads)\n",
                1e3 * serial_s, 1e3 * sharded_s, build_speedup, cores);

  // Determinism gate: sharded and serial builds must be byte-identical.
  const tune::DecisionTable table =
      tune::Tuner(tuner_options(1)).build(profiles, kColls, kNodes);
  const tune::DecisionTable table4 =
      tune::Tuner(tuner_options(4)).build(profiles, kColls, kNodes);
  if (table.dump() != table4.dump()) {
    std::fprintf(stderr, "FAIL: sharded build diverges from serial build\n");
    return 1;
  }

  // --- tuned dispatch vs best single fixed algorithm ---------------------
  const std::vector<i64> sizes = eval_sizes(opts.size_grid);

  bool select_parity = true;
  double tuned_total = 0;
  std::string fixed_report;
  double best_fixed_total = 0;

  for (size_t ci = 0; ci < kColls.size(); ++ci) {
    const Collective coll = kColls[ci];
    // Fixed candidates must apply everywhere they are judged; the argmin
    // series ranks every tunable candidate (the engine's pow2 gate skips
    // the pow2-only ones exactly where Tuner::candidates would).
    std::vector<std::string> fixed, tunable;
    for (const auto& entry : coll::algorithms_for(coll)) {
      if (entry.specialized) continue;
      tunable.push_back(entry.name);
      if (!entry.pow2_only) fixed.push_back(entry.name);
    }

    exp::SweepPlan plan;
    plan.name = std::string("tuned_dispatch_") + to_string(coll);
    for (const auto& profile : profiles)
      plan.systems.push_back(exp::SystemSpec{profile});
    plan.colls = {coll};
    plan.series = {exp::Series::tuned(), exp::Series::best_of("argmin", tunable)};
    for (const std::string& name : fixed)
      plan.series.push_back(exp::Series::single(name));
    plan.nodes.counts = kNodes;
    plan.sizes = sizes;
    plan.backend = exp::Backend::tuned_dispatch;
    plan.table = &table;
    const exp::SweepResult result = exp::run(plan);

    double tuned_coll = 0;
    std::map<std::string, double> totals;  // per fixed candidate -> total
    for (size_t pi = 0; pi < profiles.size(); ++pi)
      for (size_t ni = 0; ni < kNodes.size(); ++ni)
        for (size_t si = 0; si < sizes.size(); ++si) {
          const exp::Metrics& tuned = result.at(pi, 0, ni, si, 0);
          tuned_coll += tuned.seconds;
          for (size_t k = 0; k < fixed.size(); ++k)
            totals[fixed[k]] += result.at(pi, 0, ni, si, 2 + k).seconds;
          // Parity gate at grid sizes: tuned selection == exhaustive argmin.
          if (std::binary_search(opts.size_grid.begin(), opts.size_grid.end(),
                                 sizes[si]) &&
              tuned.algorithm != result.at(pi, 0, ni, si, 1).algorithm)
            select_parity = false;
        }

    const auto best = std::min_element(
        totals.begin(), totals.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    std::printf("%-15s tuned %10.4f s   best fixed %-20s %10.4f s   gain %.2fx\n",
                to_string(coll), tuned_coll, best->first.c_str(), best->second,
                best->second / tuned_coll);
    fixed_report += std::string(ci ? ", " : "") + "\"" + to_string(coll) +
                    "\": \"" + best->first + "\"";
    tuned_total += tuned_coll;
    best_fixed_total += best->second;
  }
  const double dispatch_speedup = best_fixed_total / tuned_total;
  std::printf("overall: tuned %10.4f s   best-fixed-per-collective %10.4f s   "
              "gain %.2fx   (select parity: %s)\n",
              tuned_total, best_fixed_total, dispatch_speedup,
              select_parity ? "exact" : "FAILED");

  if (fault::AtomicFile out("BENCH_tune.json"); std::FILE* f = out.handle()) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"tuner\",\n"
                 "  \"systems\": %zu,\n"
                 "  \"collectives\": %zu,\n"
                 "  \"cells\": %lld,\n"
                 "  \"grid_sizes\": %zu,\n"
                 "  \"eval_sizes\": %zu,\n"
                 "  \"tuned_total_s\": %.6f,\n"
                 "  \"best_fixed_total_s\": %.6f,\n"
                 "  \"tuned_vs_best_fixed_speedup\": %.3f,\n"
                 "  \"best_fixed_algorithms\": {%s},\n"
                 "  \"select_parity_with_argmin\": %s,\n"
                 "  \"build_serial_ms\": %.3f,\n"
                 "  \"build_sharded_threads\": 4,\n"
                 "  \"build_sharded_ms\": %.3f,\n"
                 "  \"build_sharded_speedup\": %.2f,\n"
                 "  \"crossover_unmeasurable_single_core\": %s,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"sharded_equals_serial\": true\n"
                 "}\n",
                 profiles.size(), kColls.size(), static_cast<long long>(cells),
                 opts.size_grid.size(), sizes.size(), tuned_total, best_fixed_total,
                 dispatch_speedup, fixed_report.c_str(),
                 select_parity ? "true" : "false", 1e3 * serial_s, 1e3 * sharded_s,
                 build_speedup, speedup_unmeasurable ? "true" : "false", cores);
    if (out.commit()) std::printf("wrote BENCH_tune.json\n");
  }

  return (select_parity && tuned_total < best_fixed_total) ? 0 : 1;
}
