// Autotuner benchmark: (1) tuned dispatch vs the best single fixed algorithm
// on a multi-system, multi-collective sweep -- the payoff of persisting the
// sweep winners instead of throwing them away -- and (2) sharded vs serial
// decision-table build, exercising the cross-system parallelism the table
// benches never had (one work item per (system, collective, p) cell, all
// sharing the process-wide schedule cache).
//
// The dispatch comparison is evaluated on the tuning grid PLUS off-grid
// midpoint sizes, so the tuned table is also judged between its own
// crossover points. A "fixed" baseline commits to one algorithm per
// collective across every system, node count and size -- the strongest
// configuration a no-tuning deployment can pick -- and the best such
// baseline is found exhaustively. Parity gate: at every grid size the tuned
// selection must equal the exhaustive argmin over the same sweep data.
//
// Emits BENCH_tune.json next to the other BENCH_* snapshots.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "coll/registry.hpp"
#include "harness/runner.hpp"
#include "harness/tuned_runner.hpp"
#include "net/profiles.hpp"
#include "tune/decision_table.hpp"
#include "tune/tuner.hpp"

using namespace bine;
using sched::Collective;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const std::vector<Collective> kColls = {Collective::allreduce, Collective::allgather,
                                        Collective::bcast};
const std::vector<i64> kNodes = {16, 24, 32, 48, 64};

std::vector<net::SystemProfile> systems() {
  return {net::lumi_profile(), net::leonardo_profile(), net::mn5_profile()};
}

tune::TunerOptions tuner_options(i64 threads) {
  tune::TunerOptions opts;
  opts.size_grid = harness::paper_vector_sizes(false);
  opts.threads = threads;
  return opts;
}

/// Tuning grid plus the geometric midpoint of every adjacent pair: judges
/// the table between its own crossover points too.
std::vector<i64> eval_sizes(const std::vector<i64>& grid) {
  std::vector<i64> sizes = grid;
  for (size_t i = 0; i + 1 < grid.size(); ++i)
    sizes.push_back(static_cast<i64>(
        std::llround(std::sqrt(static_cast<double>(grid[i]) *
                               static_cast<double>(grid[i + 1])))));
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

}  // namespace

int main() {
  const std::vector<net::SystemProfile> profiles = systems();
  const tune::TunerOptions opts = tuner_options(1);
  const i64 cells = static_cast<i64>(profiles.size() * kColls.size() * kNodes.size());
  std::printf("tuning workload: %zu systems x %zu collectives x %zu node counts = "
              "%lld cells, %zu-point size grid\n",
              profiles.size(), kColls.size(), kNodes.size(),
              static_cast<long long>(cells), opts.size_grid.size());

  // --- sharded vs serial table build -------------------------------------
  // One prewarm build populates the process-wide schedule cache (generation
  // is shared state; the timed builds isolate the sharding axis, not cold
  // caches). Best of 3 rounds per mode.
  (void)tune::Tuner(tuner_options(1)).build(profiles, kColls, kNodes);
  const auto time_build = [&](i64 threads) {
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const auto t0 = Clock::now();
      (void)tune::Tuner(tuner_options(threads)).build(profiles, kColls, kNodes);
      best = std::min(best, seconds_since(t0));
    }
    return best;
  };
  const double serial_s = time_build(1);
  const double sharded_s = time_build(4);
  const double build_speedup = serial_s / sharded_s;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("table build:  serial %8.2f ms   sharded(4) %8.2f ms   %.2fx "
              "(%u hardware threads)\n",
              1e3 * serial_s, 1e3 * sharded_s, build_speedup, cores);

  // Determinism gate: sharded and serial builds must be byte-identical.
  const tune::DecisionTable table = tune::Tuner(tuner_options(1)).build(profiles, kColls, kNodes);
  const tune::DecisionTable table4 = tune::Tuner(tuner_options(4)).build(profiles, kColls, kNodes);
  if (table.dump() != table4.dump()) {
    std::fprintf(stderr, "FAIL: sharded build diverges from serial build\n");
    return 1;
  }

  // --- tuned dispatch vs best single fixed algorithm ---------------------
  const std::vector<i64> sizes = eval_sizes(opts.size_grid);
  std::vector<std::unique_ptr<harness::Runner>> runners;
  runners.reserve(profiles.size());
  for (const auto& profile : profiles)
    runners.push_back(std::make_unique<harness::Runner>(profile));

  bool select_parity = true;
  double tuned_total = 0;
  std::map<std::string, double> fixed_totals;  // per-coll candidate -> total
  std::string fixed_report;
  double best_fixed_total = 0;

  for (size_t ci = 0; ci < kColls.size(); ++ci) {
    const Collective coll = kColls[ci];
    // Fixed candidates must apply everywhere they are judged.
    std::vector<const coll::AlgorithmEntry*> fixed;
    for (const auto& entry : coll::algorithms_for(coll))
      if (!entry.specialized && !entry.pow2_only) fixed.push_back(&entry);

    double tuned_coll = 0;
    std::map<std::string, double> totals;
    for (size_t pi = 0; pi < profiles.size(); ++pi) {
      for (const i64 p : kNodes) {
        for (const i64 size : sizes) {
          const tune::Selection sel = tune::select(table, profiles[pi], coll, p, size);
          tuned_coll += runners[pi]->run(coll, *sel.entry, p, size).seconds;
          for (const coll::AlgorithmEntry* cand : fixed)
            totals[cand->name] += runners[pi]->run(coll, *cand, p, size).seconds;
          // Parity gate at grid sizes: tuned selection == exhaustive argmin.
          if (std::binary_search(opts.size_grid.begin(), opts.size_grid.end(), size)) {
            double best = std::numeric_limits<double>::infinity();
            std::string best_name;
            for (const coll::AlgorithmEntry* cand : tune::Tuner::candidates(coll, p)) {
              const double s = runners[pi]->run(coll, *cand, p, size).seconds;
              if (s < best) { best = s; best_name = cand->name; }
            }
            if (sel.entry->name != best_name) select_parity = false;
          }
        }
      }
    }
    const auto best = std::min_element(
        totals.begin(), totals.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    std::printf("%-15s tuned %10.4f s   best fixed %-20s %10.4f s   gain %.2fx\n",
                to_string(coll), tuned_coll, best->first.c_str(), best->second,
                best->second / tuned_coll);
    fixed_report += std::string(ci ? ", " : "") + "\"" + to_string(coll) +
                    "\": \"" + best->first + "\"";
    tuned_total += tuned_coll;
    best_fixed_total += best->second;
  }
  const double dispatch_speedup = best_fixed_total / tuned_total;
  std::printf("overall: tuned %10.4f s   best-fixed-per-collective %10.4f s   "
              "gain %.2fx   (select parity: %s)\n",
              tuned_total, best_fixed_total, dispatch_speedup,
              select_parity ? "exact" : "FAILED");

  if (std::FILE* f = std::fopen("BENCH_tune.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"tuner\",\n"
                 "  \"systems\": %zu,\n"
                 "  \"collectives\": %zu,\n"
                 "  \"cells\": %lld,\n"
                 "  \"grid_sizes\": %zu,\n"
                 "  \"eval_sizes\": %zu,\n"
                 "  \"tuned_total_s\": %.6f,\n"
                 "  \"best_fixed_total_s\": %.6f,\n"
                 "  \"tuned_vs_best_fixed_speedup\": %.3f,\n"
                 "  \"best_fixed_algorithms\": {%s},\n"
                 "  \"select_parity_with_argmin\": %s,\n"
                 "  \"build_serial_ms\": %.3f,\n"
                 "  \"build_sharded_threads\": 4,\n"
                 "  \"build_sharded_ms\": %.3f,\n"
                 "  \"build_sharded_speedup\": %.2f,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"sharded_equals_serial\": true\n"
                 "}\n",
                 profiles.size(), kColls.size(), static_cast<long long>(cells),
                 opts.size_grid.size(), sizes.size(), tuned_total, best_fixed_total,
                 dispatch_speedup, fixed_report.c_str(),
                 select_parity ? "true" : "false", 1e3 * serial_s, 1e3 * sharded_s,
                 build_speedup, cores);
    std::fclose(f);
    std::printf("wrote BENCH_tune.json\n");
  }

  return (select_parity && tuned_total < best_fixed_total) ? 0 : 1;
}
