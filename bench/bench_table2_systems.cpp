// Table 2: the system models used throughout the evaluation.
//
// Plan: the system axis every other bench plan draws from -- declared once
// as a SweepPlan and printed straight from its SystemSpecs (nothing is
// measured here; the table *is* the plan's system axis).
#include <cstdio>

#include "exp/sweep.hpp"
#include "net/profiles.hpp"

using namespace bine;

int main() {
  exp::SweepPlan plan;
  plan.name = "table2_systems";
  for (const auto& profile : net::main_profiles())
    plan.systems.push_back(exp::SystemSpec{profile});
  plan.systems.push_back(exp::SystemSpec{net::fugaku_profile({8, 8, 8})});
  plan.systems.push_back(exp::SystemSpec{net::multigpu_profile()});

  std::printf("=== Table 2: simulated system models ===\n");
  std::printf("%-10s %s\n", "System", "Model");
  for (const exp::SystemSpec& spec : plan.systems)
    std::printf("%-10s %s\n", spec.profile.name.c_str(),
                spec.profile.description.c_str());
  std::printf("\nPaper systems: LUMI (Dragonfly, Cray MPICH), Leonardo (Dragonfly+, "
              "Open MPI),\nMareNostrum 5 (2:1 fat tree, Open MPI), Fugaku (6D torus, "
              "Fujitsu MPI).\n");
  return 0;
}
