// Table 2: the system models used throughout the evaluation.
#include <cstdio>

#include "net/profiles.hpp"

using namespace bine;

int main() {
  std::printf("=== Table 2: simulated system models ===\n");
  std::printf("%-10s %s\n", "System", "Model");
  for (const auto& profile : net::main_profiles())
    std::printf("%-10s %s\n", profile.name.c_str(), profile.description.c_str());
  const auto fugaku = net::fugaku_profile({8, 8, 8});
  std::printf("%-10s %s\n", fugaku.name.c_str(), fugaku.description.c_str());
  const auto gpu = net::multigpu_profile();
  std::printf("%-10s %s\n", gpu.name.c_str(), gpu.description.c_str());
  std::printf("\nPaper systems: LUMI (Dragonfly, Cray MPICH), Leonardo (Dragonfly+, "
              "Open MPI),\nMareNostrum 5 (2:1 fat tree, Open MPI), Fugaku (6D torus, "
              "Fujitsu MPI).\n");
  return 0;
}
