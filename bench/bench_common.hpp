#pragma once

#include <cassert>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/tables.hpp"

/// Shared drivers for the table/figure benches. Each bench binary prints the
/// same rows/series the paper reports (win fractions, heatmap cells, box-plot
/// quartiles) for one system profile.
///
/// All three drivers follow the same shape: build the flat list of sweep
/// cells, fan it out through Runner::sweep (worker count from BINE_THREADS),
/// then aggregate and print strictly in cell order -- so the output is
/// byte-identical regardless of thread count.
namespace bine::bench {

using harness::Runner;
using harness::SweepQuery;

/// "Comparison with Binomial Trees" table (paper Tables 3, 4, 5): for every
/// collective, the fraction of (nodes, size) configurations where the best
/// contiguous Bine variant beats the binomial-family baseline, the
/// geometric-mean / max gains and drops, and the global-traffic reduction.
inline void run_binomial_table(Runner& runner, const std::vector<i64>& node_counts,
                               const std::vector<i64>& sizes,
                               const std::vector<i64>& large_counts_allreduce_ag = {}) {
  std::vector<SweepQuery> queries;
  for (const sched::Collective coll : coll::all_collectives()) {
    std::vector<i64> counts = node_counts;
    // Mirror the paper's Leonardo methodology: node counts beyond the user
    // cap were only measured for allreduce and allgather (Sec. 5.2.1).
    if (coll == sched::Collective::allreduce || coll == sched::Collective::allgather)
      counts.insert(counts.end(), large_counts_allreduce_ag.begin(),
                    large_counts_allreduce_ag.end());
    for (const i64 nodes : counts)
      for (const i64 size : sizes) {
        queries.push_back({coll, nodes, size, SweepQuery::Kind::bine,
                           /*contiguous_only=*/true});
        queries.push_back({coll, nodes, size, SweepQuery::Kind::binomial, false});
      }
  }
  const auto results = runner.sweep(queries);

  harness::WinLoss::print_header("Comparison with binomial trees on " +
                                 runner.profile().name + " (simulated)");
  size_t i = 0;
  for (const sched::Collective coll : coll::all_collectives()) {
    harness::WinLoss wl;
    while (i < queries.size() && queries[i].coll == coll) {
      assert(queries[i].kind == SweepQuery::Kind::bine &&
             queries[i + 1].kind == SweepQuery::Kind::binomial &&
             queries[i + 1].coll == coll);
      const auto& bine = results[i];
      const auto& binom = results[i + 1];
      wl.add(bine.second.seconds, binom.second.seconds, bine.second.global_bytes,
             binom.second.global_bytes);
      i += 2;
    }
    std::printf("%s\n", wl.row(to_string(coll)).c_str());
  }
}

/// Best-algorithm heatmap for one collective (paper Figs. 9a, 10a).
inline void run_sota_heatmap(Runner& runner, sched::Collective coll,
                             const std::vector<i64>& node_counts,
                             const std::vector<i64>& sizes) {
  std::vector<std::string> cols, rows;
  for (const i64 n : node_counts) cols.push_back(std::to_string(n));
  for (const i64 s : sizes) rows.push_back(harness::size_label(s));

  std::vector<SweepQuery> queries;
  for (const i64 size : sizes)
    for (const i64 nodes : node_counts) {
      queries.push_back({coll, nodes, size, SweepQuery::Kind::bine,
                         /*contiguous_only=*/false});
      queries.push_back({coll, nodes, size, SweepQuery::Kind::sota, false});
    }
  const auto results = runner.sweep(queries);

  std::vector<std::vector<harness::HeatCell>> cells(
      sizes.size(), std::vector<harness::HeatCell>(node_counts.size()));
  for (size_t si = 0; si < sizes.size(); ++si) {
    for (size_t ni = 0; ni < node_counts.size(); ++ni) {
      const size_t q = 2 * (si * node_counts.size() + ni);
      const auto& bine = results[q];
      const auto& sota = results[q + 1];
      harness::HeatCell& cell = cells[si][ni];
      cell.bine_best = bine.second.seconds < sota.second.seconds;
      cell.best_name = sota.first;
      cell.ratio = sota.second.seconds / bine.second.seconds;
    }
  }
  harness::print_heatmap(std::string(to_string(coll)) + " vs state of the art on " +
                             runner.profile().name + " (rows: vector size, cols: nodes)",
                         cols, rows, cells);
}

/// Box-plot summary of Bine's improvement over the best non-Bine algorithm,
/// restricted to configurations where Bine wins (paper Figs. 9b, 10b, 11a/b).
inline void run_sota_boxplots(Runner& runner, const std::vector<i64>& node_counts,
                              const std::vector<i64>& sizes,
                              const std::vector<sched::Collective>& colls) {
  std::vector<SweepQuery> queries;
  for (const sched::Collective coll : colls)
    for (const i64 nodes : node_counts)
      for (const i64 size : sizes) {
        queries.push_back({coll, nodes, size, SweepQuery::Kind::bine,
                           /*contiguous_only=*/false});
        queries.push_back({coll, nodes, size, SweepQuery::Kind::sota, false});
      }
  const auto results = runner.sweep(queries);

  harness::BoxStats::print_header("Bine improvement over best non-Bine algorithm on " +
                                      runner.profile().name +
                                      " (configurations where Bine wins)",
                                  "gain");
  size_t i = 0;
  for (const sched::Collective coll : colls) {
    std::vector<double> gains;
    i64 total = 0;
    for (size_t cell = 0; cell < node_counts.size() * sizes.size(); ++cell, i += 2) {
      const auto& bine = results[i];
      const auto& sota = results[i + 1];
      ++total;
      if (bine.second.seconds < sota.second.seconds)
        gains.push_back(100.0 * (sota.second.seconds / bine.second.seconds - 1.0));
    }
    const i64 nwins = static_cast<i64>(gains.size());
    const harness::BoxStats stats = harness::BoxStats::of(std::move(gains));
    char label[64];
    std::snprintf(label, sizeof(label), "%s (%.0f%%)", to_string(coll),
                  total ? 100.0 * static_cast<double>(nwins) / static_cast<double>(total)
                        : 0.0);
    std::printf("%s\n", stats.row(label).c_str());
  }
}

}  // namespace bine::bench
