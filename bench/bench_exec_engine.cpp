// Before/after benchmark of the compiled execution engine on a verify-heavy
// allreduce sweep: the nested reference executor (per-op schedule walk,
// per-message BlockSlot copies, one heap-allocated vector per block slot)
// vs the compiled path (flat ExecPlan pulled from the schedule cache, dense
// per-rank buffers, flat contributor bitsets -- runtime/compiled_executor.hpp).
//
// Plan: the compiled sweep is a Backend::execute_verified SweepPlan (one
// single-algorithm series per applicable allreduce algorithm); the nested
// reference loop is kept verbatim as the pre-engine oracle being timed
// against. Also profiles the executor's threaded crossover -- the vector
// size beyond which threads > 1 beats sequential -- and records it next to
// the auto-gate threshold (runtime::kExecAutoThreadBytes) in
// BENCH_exec.json, plus the shared-process-cache demonstration (a second
// system's plan resolving the same cells without a single new generation)
// and the sweep's summed stage-copy bytes (0 = the direct/fused/pair-tiling
// analysis left every delivery zero-copy).
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "coll/registry.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/executor.hpp"
#include "runtime/verify.hpp"
#include "sched/schedule_cache.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Cell {
  const coll::AlgorithmEntry* entry;
  i64 size_bytes;
};

std::vector<Cell> build_cells() {
  // Schedule structure is size-independent (the ScheduleCache invariant), so
  // verification sweeps run at small-to-medium representative sizes -- the
  // regime where per-op overheads (the reference's per-block allocations and
  // hash-map matching) dominate and an IR-level executor pays off most.
  std::vector<Cell> cells;
  for (const auto& entry : coll::algorithms_for(sched::Collective::allreduce)) {
    if (entry.specialized) continue;
    if (entry.pow2_only && !is_pow2(64)) continue;
    for (const i64 size : {i64{1024}, i64{8192}, i64{32768}})
      cells.push_back({&entry, size});
  }
  return cells;
}

std::vector<std::vector<std::uint32_t>> make_inputs(i64 p, i64 elems) {
  std::vector<std::vector<std::uint32_t>> in(static_cast<size_t>(p));
  for (i64 r = 0; r < p; ++r) {
    in[static_cast<size_t>(r)].resize(static_cast<size_t>(elems));
    for (i64 e = 0; e < elems; ++e)
      in[static_cast<size_t>(r)][static_cast<size_t>(e)] =
          static_cast<std::uint32_t>(r) * 2654435761u + static_cast<std::uint32_t>(e);
  }
  return in;
}

constexpr i64 kNodes = 64;

/// The pre-engine behaviour: generate the nested schedule, walk it with the
/// reference executor, verify.
bool run_sweep_reference(const std::vector<Cell>& cells) {
  bool all_ok = true;
  for (const Cell& c : cells) {
    coll::Config cfg;
    cfg.p = kNodes;
    cfg.elem_size = 4;
    cfg.elem_count = std::max<i64>(kNodes, c.size_bytes / cfg.elem_size);
    const sched::Schedule sch = c.entry->make(cfg);
    const auto inputs = make_inputs(cfg.p, cfg.elem_count);
    const auto res =
        runtime::execute_reference<std::uint32_t>(sch, runtime::ReduceOp::sum, inputs);
    all_ok &=
        runtime::verify<std::uint32_t>(sch, runtime::ReduceOp::sum, inputs, res).empty();
  }
  return all_ok;
}

/// The compiled path as a declarative plan: every cell executed over real
/// buffers by the compiled executor (ExecPlan from the schedule cache) and
/// checked against its MPI postcondition.
exp::SweepPlan compiled_plan(net::SystemProfile profile) {
  exp::SweepPlan plan;
  plan.name = "exec_engine_verify_sweep";
  exp::SystemSpec spec{std::move(profile)};
  // Pin the cache on regardless of BINE_SCHED_CACHE: this bench's compiled
  // timing and the shared-cache demonstration are about the cached path.
  spec.schedule_cache = true;
  plan.systems = {std::move(spec)};
  plan.colls = {sched::Collective::allreduce};
  for (const auto& entry : coll::algorithms_for(sched::Collective::allreduce)) {
    if (entry.specialized) continue;
    if (entry.pow2_only && !is_pow2(kNodes)) continue;
    plan.series.push_back(exp::Series::single(entry.name));
  }
  plan.nodes.counts = {kNodes};
  plan.sizes = {1024, 8192, 32768};
  plan.backend = exp::Backend::execute_verified;
  plan.exec_threads = 1;  // small vectors: below the auto-gate threshold anyway
  plan.threads = 1;       // timing: the engine invocation is the artifact
  return plan;
}

bool run_sweep_compiled(i64* stage_bytes_out = nullptr) {
  const exp::SweepResult r = exp::run(compiled_plan(net::fugaku_profile({4, 4, 4})));
  bool all_ok = true;
  i64 stage_bytes = 0;
  for (const exp::Row& row : r.rows) {
    all_ok &= row.m.ok;
    stage_bytes += row.m.stage_bytes;
  }
  if (stage_bytes_out) *stage_bytes_out = stage_bytes;
  return all_ok;
}

/// Bit-exactness gate: compiled result vs reference on every cell.
bool parity_gate(harness::Runner& runner, const std::vector<Cell>& cells) {
  for (const Cell& c : cells) {
    coll::Config cfg;
    cfg.p = kNodes;
    cfg.elem_size = 4;
    cfg.elem_count = std::max<i64>(kNodes, c.size_bytes / cfg.elem_size);
    const sched::Schedule sch = c.entry->make(cfg);
    const auto inputs = make_inputs(cfg.p, cfg.elem_count);
    const auto ref =
        runtime::execute_reference<std::uint32_t>(sch, runtime::ReduceOp::sum, inputs);
    const runtime::ExecPlan plan = runner.exec_plan(sched::Collective::allreduce,
                                                    *c.entry, kNodes, c.size_bytes);
    const auto got =
        runtime::execute<std::uint32_t>(plan, runtime::ReduceOp::sum, inputs);
    if (got.messages != ref.messages || got.wire_bytes != ref.wire_bytes) return false;
    for (Rank r = 0; r < sch.p; ++r)
      for (i64 b = 0; b < sch.nblocks; ++b) {
        const auto& slot =
            ref.ranks[static_cast<size_t>(r)].slots[static_cast<size_t>(b)];
        if (got.is_valid(r, b) != slot.valid) return false;
        if (!slot.valid) continue;
        const auto data = got.block(r, b);
        if (!std::equal(data.begin(), data.end(), slot.data.begin(), slot.data.end()))
          return false;
        if (!(got.contributors(r, b) == slot.contributors)) return false;
      }
  }
  return true;
}

/// Satellite: profile the executor's threaded crossover. Times the compiled
/// executor at threads = 1 vs threads = 4 across vector sizes bracketing
/// the ~1 MiB gate the ROADMAP names, and reports the smallest profiled
/// size where threading wins (or -1 when it never does -- expected on
/// 1-core containers; the JSON records hardware_threads alongside).
struct ThreadProfilePoint {
  i64 bytes;
  double sequential_ms;
  double threaded_ms;
};

std::vector<ThreadProfilePoint> profile_threaded_crossover(harness::Runner& runner) {
  std::vector<ThreadProfilePoint> points;
  const auto& entry =
      coll::find_algorithm(sched::Collective::allreduce, "recursive_doubling");
  for (const i64 bytes : {i64{1} << 16, i64{1} << 18, i64{1} << 20, i64{1} << 22,
                          i64{1} << 23}) {
    const runtime::ExecPlan plan =
        runner.exec_plan(sched::Collective::allreduce, entry, kNodes, bytes);
    const auto inputs = make_inputs(plan.p, plan.elem_count);
    auto time_exec = [&](i64 threads) {
      double best = std::numeric_limits<double>::infinity();
      for (int round = 0; round < 3; ++round) {
        const auto t0 = Clock::now();
        const auto res =
            runtime::execute<std::uint32_t>(plan, runtime::ReduceOp::sum, inputs,
                                            threads);
        best = std::min(best, seconds_since(t0));
        if (res.messages == 0) std::abort();  // keep the work observable
      }
      return 1e3 * best;
    };
    points.push_back({bytes, time_exec(1), time_exec(4)});
  }
  return points;
}

}  // namespace

int main() {
  const auto cells = build_cells();
  std::printf("sweep: %zu verify-heavy allreduce cells (%zu algorithms x 3 sizes) "
              "at 64 ranks\n",
              cells.size(), cells.size() / 3);

  harness::Runner runner(net::fugaku_profile({4, 4, 4}));
  runner.set_schedule_cache(true);

  const bool parity = parity_gate(runner, cells);
  if (!parity) {
    std::fprintf(stderr, "FAIL: compiled executor diverges from the reference\n");
    return 1;
  }

  // Best of three rounds per mode: noise on a shared machine only ever adds
  // time, so the min is the most faithful sweep cost.
  auto time_mode = [&](auto&& sweep) {
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const auto t0 = Clock::now();
      if (!sweep()) std::abort();  // a failed verification voids the timing
      best = std::min(best, seconds_since(t0));
    }
    return best;
  };
  const double reference_time = time_mode([&] { return run_sweep_reference(cells); });
  // Stage-copy accounting rides along: with direct + fused + pair-tiling
  // analysis, every registry plan executes fully zero-copy, so the sweep's
  // summed ExecPlan::stage_bytes must come back 0.
  i64 sweep_stage_bytes = -1;
  const double compiled_time =
      time_mode([&] { return run_sweep_compiled(&sweep_stage_bytes); });
  const double speedup = reference_time / compiled_time;

  // Shared-cache demonstration: a second system's plan in this process
  // resolves the same cells purely from hits (zero new generations).
  const auto before = sched::process_schedule_cache().stats();
  const exp::SweepResult second = exp::run(compiled_plan(net::lumi_profile()));
  bool second_ok = true;
  for (const exp::Row& row : second.rows) second_ok &= row.m.ok;
  const auto after = sched::process_schedule_cache().stats();
  const u64 second_hits = after.hits - before.hits;
  const u64 second_misses = after.misses - before.misses;

  // Threaded-crossover profile (drives the auto-gate default's sanity). The
  // crossover is only derivable when the machine can actually run threads in
  // parallel: on a single-core runner every threaded point loses by
  // construction, so the JSON says so explicitly instead of emitting a bare
  // -1 with no explanation.
  const std::vector<ThreadProfilePoint> profile = profile_threaded_crossover(runner);
  const unsigned cores = std::thread::hardware_concurrency();
  const bool crossover_unmeasurable = cores <= 1;
  i64 crossover = -1;
  if (!crossover_unmeasurable)
    for (const ThreadProfilePoint& pt : profile)
      if (pt.threaded_ms < pt.sequential_ms) {
        crossover = pt.bytes;
        break;
      }

  std::printf("reference: %8.2f ms per sweep (nested walk + per-slot copies)\n",
              1e3 * reference_time);
  std::printf("compiled:  %8.2f ms per sweep (cached ExecPlan + flat state)\n",
              1e3 * compiled_time);
  std::printf("speedup:   %8.2fx   (parity: bit-exact)\n", speedup);
  std::printf("stage copies: %lld bytes across the sweep (zero-copy: direct + fused "
              "+ pair tiling)\n",
              static_cast<long long>(sweep_stage_bytes));
  std::printf("second runner: %llu cache hits, %llu misses (%s)\n",
              static_cast<unsigned long long>(second_hits),
              static_cast<unsigned long long>(second_misses),
              second_ok ? "all verified" : "VERIFY FAILED");
  std::printf("threaded crossover: ");
  for (const ThreadProfilePoint& pt : profile)
    std::printf("%lldKiB %.2f/%.2fms  ", static_cast<long long>(pt.bytes >> 10),
                pt.sequential_ms, pt.threaded_ms);
  const std::string crossover_label =
      crossover_unmeasurable ? "unmeasurable (single-core runner)"
      : crossover < 0        ? "never (threading loses at every profiled size)"
                             : std::to_string(crossover) + " bytes";
  std::printf("\n  -> threads>1 wins from %s (auto gate: %lld bytes, %u hardware "
              "threads)\n",
              crossover_label.c_str(),
              static_cast<long long>(runtime::kExecAutoThreadBytes), cores);

  if (fault::AtomicFile out("BENCH_exec.json"); std::FILE* f = out.handle()) {
    std::string profile_json;
    for (size_t i = 0; i < profile.size(); ++i) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"bytes\": %lld, \"sequential_ms\": %.3f, "
                    "\"threads4_ms\": %.3f}",
                    i ? ", " : "", static_cast<long long>(profile[i].bytes),
                    profile[i].sequential_ms, profile[i].threaded_ms);
      profile_json += buf;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"exec_engine\",\n"
                 "  \"workload\": \"allreduce_verify_sweep_64_ranks\",\n"
                 "  \"num_cells\": %zu,\n"
                 "  \"reference_sweep_ms\": %.3f,\n"
                 "  \"compiled_sweep_ms\": %.3f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"parity_bit_exact\": %s,\n"
                 "  \"stage_bytes\": %lld,\n"
                 "  \"second_runner_cache_hits\": %llu,\n"
                 "  \"second_runner_cache_misses\": %llu,\n"
                 "  \"exec_thread_profile\": [%s],\n"
                 "  \"threaded_crossover_bytes_measured\": %lld,\n"
                 "  \"crossover_unmeasurable_single_core\": %s,\n"
                 "  \"threads_auto_gate_bytes\": %lld,\n"
                 "  \"hardware_threads\": %u\n"
                 "}\n",
                 cells.size(), 1e3 * reference_time, 1e3 * compiled_time, speedup,
                 parity ? "true" : "false",
                 static_cast<long long>(sweep_stage_bytes),
                 static_cast<unsigned long long>(second_hits),
                 static_cast<unsigned long long>(second_misses), profile_json.c_str(),
                 static_cast<long long>(crossover),
                 crossover_unmeasurable ? "true" : "false",
                 static_cast<long long>(runtime::kExecAutoThreadBytes), cores);
    if (out.commit()) std::printf("wrote BENCH_exec.json\n");
  }
  return (parity && second_ok && second_misses == 0 && sweep_stage_bytes == 0) ? 0 : 1;
}
