// Selection-service throughput and plan-cache benchmark.
//
// Two gates, both snapshotted to BENCH_svc.json:
//
//   * select throughput -- an in-process daemon with a dense decision table,
//     hammered by concurrent client connections (default 4) pipelining
//     batches of binary select frames. The aggregate must clear one million
//     lookups per second: the number that justifies a daemon over per-process
//     artifact loads. Hardware thread count is recorded alongside -- client
//     and server share this machine, so the figure is conservative.
//   * plan-level result cache -- a sweep job submitted twice: the first
//     executes on the sharded engine (journal armed), the second must be a
//     cache hit returning the byte-identical result stream with the engine
//     never re-running (asserted through the daemon's own stats counters).
//
// Exit 1 when either gate fails.
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "coll/registry.hpp"
#include "fault/fault.hpp"
#include "net/profiles.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "tune/decision_table.hpp"
#include "tune/json.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

constexpr const char* kSocket = "bine_svc_bench.sock";
constexpr const char* kTablePath = "bench_svc_table.json";
constexpr const char* kJournalDir = "bench_svc_journal";

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// A dense table for the served profile: every collective at a spread of
/// node counts, two size intervals each, algorithms straight from the
/// registry (so artifact round-trip never demotes).
tune::DecisionTable make_table(const net::SystemProfile& profile) {
  tune::DecisionTable table;
  table.set_profile(profile.name, tune::profile_fingerprint(profile));
  for (const sched::Collective coll : coll::all_collectives()) {
    const auto& algos = coll::algorithms_for(coll);
    const std::string& small = algos.front().name;
    const std::string& large = algos.back().name;
    for (const i64 p : {16, 64, 256, 1024}) {
      std::vector<tune::SizeInterval> intervals;
      intervals.push_back({0, 1 << 16, small});
      intervals.push_back({1 << 16, tune::kNoUpperBound, large});
      table.set_cell(tune::CellKey{profile.name, coll, p}, std::move(intervals));
    }
  }
  return table;
}

/// One connection's hammer loop: pipelined batches until the deadline, all
/// requests hitting table cells.
u64 hammer(const net::SystemProfile& profile, u64 fingerprint, double seconds,
           i64 batch_size) {
  svc::Client client = svc::Client::connect_to_unix(kSocket);
  std::vector<svc::SelectRequest> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  const std::vector<sched::Collective>& colls = coll::all_collectives();
  const i64 ps[] = {16, 64, 256, 1024};
  const i64 sizes[] = {1024, 1 << 14, 1 << 18, 1 << 22};
  for (i64 i = 0; i < batch_size; ++i) {
    svc::SelectRequest req;
    req.profile = profile.name;
    req.fingerprint = fingerprint;
    req.coll = colls[static_cast<size_t>(i) % colls.size()];
    req.p = ps[i % 4];
    req.bytes = sizes[(i / 4) % 4];
    batch.push_back(std::move(req));
  }
  u64 done = 0;
  const auto t0 = Clock::now();
  do {
    done += client.select_batch(batch).size();
  } while (seconds_since(t0) < seconds);
  return done;
}

exp::SweepPlan small_plan() {
  exp::SweepPlan plan;
  plan.name = "svc_bench_plan";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {sched::Collective::allreduce};
  plan.series = {exp::Series::best_bine(false), exp::Series::best_sota()};
  plan.nodes.counts = {16, 32};
  plan.sizes = {1024, 1 << 16};
  plan.threads = 1;
  return plan;
}

void cleanup() {
  std::remove(kTablePath);
  std::remove(kSocket);
  std::remove((std::string(kJournalDir) + "/.keep").c_str());
  // Journals are content-keyed; remove whatever this run created.
  std::remove((std::string(kJournalDir)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  unsetenv("BINE_FAULT_SPEC");
  double seconds = 2.0;
  i64 connections = 4;
  i64 batch_size = 2048;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string a = argv[i];
    if (a == "--seconds") seconds = std::atof(argv[i + 1]);
    else if (a == "--connections") connections = std::atoll(argv[i + 1]);
    else if (a == "--batch") batch_size = std::atoll(argv[i + 1]);
  }

  const net::SystemProfile lumi = net::lumi_profile();
  const u64 fingerprint = tune::profile_fingerprint(lumi);
  make_table(lumi).save(kTablePath);
  ::mkdir(kJournalDir, 0755);

  svc::ServerOptions opts;
  opts.unix_socket = kSocket;
  opts.profiles = {lumi};
  opts.table_path = kTablePath;
  opts.journal_dir = kJournalDir;
  opts.tune_on_miss = false;  // the throughput phase measures pure lookups
  svc::Server server(std::move(opts));
  server.start();

  // --- select throughput ----------------------------------------------------
  (void)hammer(lumi, fingerprint, 0.2, batch_size);  // warm-up, untimed
  std::vector<std::thread> threads;
  std::vector<u64> counts(static_cast<size_t>(connections), 0);
  const auto t0 = Clock::now();
  for (i64 c = 0; c < connections; ++c)
    threads.emplace_back([&, c] {
      counts[static_cast<size_t>(c)] =
          hammer(lumi, fingerprint, seconds, batch_size);
    });
  for (std::thread& t : threads) t.join();
  const double wall = seconds_since(t0);
  u64 total = 0;
  for (const u64 n : counts) total += n;
  const double lookups_per_sec = static_cast<double>(total) / wall;

  // --- plan-level result cache ----------------------------------------------
  svc::Client client = svc::Client::connect_to_unix(kSocket);
  const exp::SweepPlan plan = small_plan();

  const auto m0 = Clock::now();
  const svc::SweepReply miss = client.sweep(plan);
  const double plan_miss_ms = seconds_since(m0) * 1e3;

  const auto h0 = Clock::now();
  const svc::SweepReply hit = client.sweep(plan);
  const double plan_hit_ms = seconds_since(h0) * 1e3;

  const std::string stats_doc = client.stats();
  const tune::json::Value stats = tune::json::Value::parse(stats_doc);
  const auto& sweep_stats = stats.at("sweep", "sweep");
  const i64 cache_hits = sweep_stats.at("cache_hits", "cache_hits").as_i64("cache_hits");
  const i64 cache_misses =
      sweep_stats.at("cache_misses", "cache_misses").as_i64("cache_misses");

  const bool cache_identical = !miss.begin.cache_hit && hit.begin.cache_hit &&
                               hit.result_json == miss.result_json &&
                               hit.plan_fingerprint == miss.plan_fingerprint;
  const bool cache_no_rerun = cache_misses == 1 && cache_hits == 1;
  const bool throughput_ok = lookups_per_sec >= 1e6;

  server.stop();
  cleanup();

  std::printf("select: %.0f lookups/sec over %lld connections (batch %lld, %.2f s)\n",
              lookups_per_sec, static_cast<long long>(connections),
              static_cast<long long>(batch_size), wall);
  std::printf("sweep:  miss %.1f ms (executed %lld cells), hit %.1f ms\n",
              plan_miss_ms, static_cast<long long>(miss.begin.executed),
              plan_hit_ms);
  std::printf("cache:  identical bytes %s, no re-execution %s\n",
              cache_identical ? "ok" : "FAILED", cache_no_rerun ? "ok" : "FAILED");
  if (!throughput_ok)
    std::fprintf(stderr, "FAIL: %.0f lookups/sec < 1M/sec\n", lookups_per_sec);
  if (!cache_identical || !cache_no_rerun)
    std::fprintf(stderr, "FAIL: plan cache contract broken\n");

  if (fault::AtomicFile out("BENCH_svc.json"); std::FILE* f = out.handle()) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"svc\",\n"
                 "  \"connections\": %lld,\n"
                 "  \"batch\": %lld,\n"
                 "  \"seconds\": %.2f,\n"
                 "  \"lookups_per_sec\": %.0f,\n"
                 "  \"lookups_total\": %llu,\n"
                 "  \"plan_miss_ms\": %.2f,\n"
                 "  \"plan_hit_ms\": %.2f,\n"
                 "  \"plan_cache_hit_identical\": %s,\n"
                 "  \"plan_cache_no_rerun\": %s,\n"
                 "  \"hardware_threads\": %u\n"
                 "}\n",
                 static_cast<long long>(connections),
                 static_cast<long long>(batch_size), wall, lookups_per_sec,
                 static_cast<unsigned long long>(total), plan_miss_ms, plan_hit_ms,
                 cache_identical ? "true" : "false",
                 cache_no_rerun ? "true" : "false",
                 std::thread::hardware_concurrency());
    if (out.commit()) std::printf("wrote BENCH_svc.json\n");
  }
  return (throughput_ok && cache_identical && cache_no_rerun) ? 0 : 1;
}
