// Figure 9a: allreduce heatmap on LUMI -- per (nodes, vector size) cell,
// either Bine's speedup over the next-best algorithm or the letter of the
// winning state-of-the-art algorithm.
//
// Plan: exp::paper::sota_heatmap run through the sweep engine.
#include "exp/paper_plans.hpp"
#include "exp/report.hpp"
#include "net/profiles.hpp"

int main() {
  using namespace bine;
  const exp::SweepResult result = exp::run(exp::paper::sota_heatmap(
      net::lumi_profile(), sched::Collective::allreduce,
      {16, 32, 64, 128, 256, 512, 1024}, harness::paper_vector_sizes(false)));
  exp::print_sota_heatmap(result);
  return 0;
}
