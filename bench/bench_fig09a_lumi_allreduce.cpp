// Figure 9a: allreduce heatmap on LUMI -- per (nodes, vector size) cell,
// either Bine's speedup over the next-best algorithm or the letter of the
// winning state-of-the-art algorithm.
#include "bench_common.hpp"

int main() {
  bine::harness::Runner runner(bine::net::lumi_profile());
  bine::bench::run_sota_heatmap(runner, bine::sched::Collective::allreduce,
                                {16, 32, 64, 128, 256, 512, 1024},
                                bine::harness::paper_vector_sizes(false));
  return 0;
}
