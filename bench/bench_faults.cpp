// Fault-layer overhead and behaviour benchmark.
//
// The fault subsystem's contract is "pay only when you use it": a Runner
// without a fault spec (or with a trivial one) must take the exact same code
// path as a build that predates the layer -- one null check per hook. This
// bench measures that claim and snapshots it:
//
//   * healthy vs zero-spec per-schedule simulation rate (same workload, warm
//     schedule cache) -- the hook-overhead gate, must stay under 2%;
//   * bit-exact parity of every simulated time between the two (the
//     zero-fault identity contract, asserted, not just reported);
//   * a visibly degraded run (halved global bandwidth, 5% link outages) for
//     sanity: every cell must simulate no faster than its healthy twin.
//
// Emits BENCH_faults.json (atomically, like every artifact since the fault
// layer landed). Exit 1 on parity failure, overhead breach, or a degraded
// cell that got faster.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "fault/fault.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"

using namespace bine;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Cell {
  const coll::AlgorithmEntry* algo = nullptr;
  i64 size = 0;
};

// Run every cell once (warms caches) and collect the simulated seconds.
std::vector<double> sweep_once(harness::Runner& r, const std::vector<Cell>& cells) {
  std::vector<double> out;
  out.reserve(cells.size());
  for (const Cell& c : cells)
    out.push_back(r.run(sched::Collective::allreduce, *c.algo, 64, c.size).seconds);
  return out;
}

// Best-of-rounds per-schedule rate over the warm sweep (min time: noise on a
// shared machine only ever adds).
double measure_rate(harness::Runner& r, const std::vector<Cell>& cells) {
  double best = std::numeric_limits<double>::infinity();
  double checksum = 0;
  for (int round = 0; round < 5; ++round) {
    const auto t0 = Clock::now();
    for (const Cell& c : cells)
      checksum += r.run(sched::Collective::allreduce, *c.algo, 64, c.size).seconds;
    best = std::min(best, seconds_since(t0));
  }
  (void)checksum;
  return static_cast<double>(cells.size()) / best;
}

}  // namespace

int main() {
  // The overhead gate needs a controlled healthy baseline; an inherited CI
  // fault spec would degrade it and measure the wrong thing.
  unsetenv("BINE_FAULT_SPEC");

  std::vector<Cell> cells;
  for (const auto& entry : coll::algorithms_for(sched::Collective::allreduce)) {
    if (entry.specialized) continue;
    for (const i64 size : {256LL, 16384LL, 1048576LL}) cells.push_back({&entry, size});
  }
  std::printf("workload: %zu allreduce schedules on lumi, p=64\n", cells.size());

  harness::Runner healthy(net::lumi_profile());

  net::SystemProfile zero_profile = net::lumi_profile();
  zero_profile.faults = std::make_shared<fault::FaultSpec>();  // trivial -> dropped
  harness::Runner zero(std::move(zero_profile));

  net::SystemProfile degraded_profile = net::lumi_profile();
  {
    auto spec = std::make_shared<fault::FaultSpec>();
    spec->seed = 7;
    spec->degrade_global = 0.5;
    spec->degrade_local = 0.9;
    spec->link_outage_fraction = 0.05;
    degraded_profile.faults = std::move(spec);
  }
  harness::Runner degraded(std::move(degraded_profile));

  const std::vector<double> healthy_s = sweep_once(healthy, cells);
  const std::vector<double> zero_s = sweep_once(zero, cells);
  const std::vector<double> degraded_s = sweep_once(degraded, cells);

  const bool parity = healthy_s == zero_s;  // bit-exact, per the contract
  bool monotonic = true;
  double slowdown_sum = 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    monotonic = monotonic && degraded_s[i] >= healthy_s[i];
    slowdown_sum += degraded_s[i] / healthy_s[i];
  }
  const double mean_slowdown = slowdown_sum / static_cast<double>(cells.size());

  const double healthy_rate = measure_rate(healthy, cells);
  const double zero_rate = measure_rate(zero, cells);
  const double degraded_rate = measure_rate(degraded, cells);
  const double overhead_pct =
      std::max(0.0, 100.0 * (1.0 - zero_rate / healthy_rate));

  std::printf("healthy:  %10.1f schedules/sec\n", healthy_rate);
  std::printf("zero-spec:%10.1f schedules/sec (hook overhead %.2f%%)\n", zero_rate,
              overhead_pct);
  std::printf("degraded: %10.1f schedules/sec (mean simulated slowdown %.2fx)\n",
              degraded_rate, mean_slowdown);
  std::printf("parity:   %s, degraded monotonic: %s\n", parity ? "bit-exact" : "FAILED",
              monotonic ? "yes" : "FAILED");

  const bool overhead_ok = overhead_pct < 2.0;
  if (!overhead_ok)
    std::fprintf(stderr, "FAIL: zero-spec hook overhead %.2f%% >= 2%%\n", overhead_pct);

  if (fault::AtomicFile out("BENCH_faults.json"); std::FILE* f = out.handle()) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"faults\",\n"
                 "  \"system\": \"lumi\",\n"
                 "  \"collective\": \"allreduce\",\n"
                 "  \"nodes\": 64,\n"
                 "  \"num_schedules\": %zu,\n"
                 "  \"healthy_schedules_per_sec\": %.1f,\n"
                 "  \"zero_spec_schedules_per_sec\": %.1f,\n"
                 "  \"hook_overhead_pct\": %.2f,\n"
                 "  \"zero_spec_parity_bit_exact\": %s,\n"
                 "  \"degraded_schedules_per_sec\": %.1f,\n"
                 "  \"degraded_mean_slowdown\": %.3f,\n"
                 "  \"degraded_monotonic\": %s\n"
                 "}\n",
                 cells.size(), healthy_rate, zero_rate, overhead_pct,
                 parity ? "true" : "false", degraded_rate, mean_slowdown,
                 monotonic ? "true" : "false");
    if (out.commit()) std::printf("wrote BENCH_faults.json\n");
  }
  return (parity && monotonic && overhead_ok) ? 0 : 1;
}
