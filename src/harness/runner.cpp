#include "harness/runner.hpp"

#include <limits>
#include <stdexcept>

#include "harness/parallel.hpp"
#include "sched/compiled.hpp"

namespace bine::harness {

using sched::Collective;

std::vector<i64> paper_vector_sizes(bool full) {
  // 32 B, 256 B, 2 KiB, 16 KiB, 128 KiB, 1 MiB, 8 MiB, 64 MiB, 512 MiB.
  std::vector<i64> sizes = {32, 256, 2048, 16384, 131072, 1048576, 8388608};
  if (full) {
    sizes.push_back(67108864);
    sizes.push_back(536870912);
  }
  return sizes;
}

std::string size_label(i64 bytes) {
  if (bytes >= (i64{1} << 30)) return std::to_string(bytes >> 30) + " GiB";
  if (bytes >= (i64{1} << 20)) return std::to_string(bytes >> 20) + " MiB";
  if (bytes >= (i64{1} << 10)) return std::to_string(bytes >> 10) + " KiB";
  return std::to_string(bytes) + " B";
}

Runner::Runner(net::SystemProfile profile, bool spread_placement, u64 seed)
    : profile_(std::move(profile)), spread_placement_(spread_placement), seed_(seed) {}

Runner::Sized& Runner::sized_for(i64 nodes) {
  const std::scoped_lock lock(cache_mutex_);
  auto it = cache_.find(nodes);
  if (it != cache_.end()) return it->second;

  Sized sized;
  sized.topo = profile_.build(nodes);
  if (spread_placement_ && sized.topo->num_nodes() > nodes) {
    // Fragmented machine: the job lands on whichever nodes are free, spanning
    // several groups, with ranks sorted by hostname (paper Sec. 2.2/5).
    const i64 total = sized.topo->num_nodes();
    const i64 per_group = total / std::max<i64>(1, sized.topo->group_of(total - 1) + 1);
    // Production machines run highly utilized, which is what fragments jobs
    // across groups (paper: 4-64 node MN5 jobs spanned up to 8 subtrees).
    alloc::Machine machine{sized.topo->group_of(total - 1) + 1, per_group};
    alloc::SyntheticScheduler sched_gen(machine, /*busy_fraction=*/0.85,
                                        seed_ + static_cast<u64>(nodes));
    sized.placement.node_of_rank = sched_gen.sample_job(nodes).node_of_rank;
  } else {
    sized.placement = net::Placement::identity(nodes);
  }
  sized.routes = std::make_unique<net::RouteCache>(*sized.topo, sized.placement);
  return cache_.emplace(nodes, std::move(sized)).first->second;
}

RunResult Runner::run([[maybe_unused]] Collective coll, const coll::AlgorithmEntry& algo,
                      i64 nodes, i64 size_bytes) {
  coll::Config cfg;
  cfg.p = nodes;
  cfg.elem_size = 4;  // 32-bit integers, as in the paper's methodology
  cfg.elem_count = std::max<i64>(nodes, size_bytes / cfg.elem_size);
  cfg.torus_dims = torus_dims;
  const sched::Schedule sch = algo.make(cfg);
  Sized& sized = sized_for(nodes);
  // Per-worker scratch: lowering into resident arrays avoids re-mmapping the
  // SoA storage for every cell of a sweep.
  static thread_local sched::CompiledSchedule lowered;
  sched::CompiledSchedule::lower_into(sch, lowered);
  const net::SimResult sim = net::simulate(lowered, *sized.routes, profile_.cost);
  RunResult out;
  out.seconds = sim.seconds;
  out.global_bytes = sim.traffic.global_bytes;
  out.total_bytes = sim.traffic.total();
  out.steps = sim.steps;
  return out;
}

std::pair<std::string, RunResult> Runner::best_of(Collective coll,
                                                  const std::vector<std::string>& names,
                                                  i64 nodes, i64 size_bytes) {
  std::pair<std::string, RunResult> best{"", {}};
  best.second.seconds = std::numeric_limits<double>::infinity();
  for (const std::string& name : names) {
    const auto& entry = coll::find_algorithm(coll, name);
    if (entry.pow2_only && !is_pow2(nodes)) continue;
    const RunResult r = run(coll, entry, nodes, size_bytes);
    if (r.seconds < best.second.seconds) best = {name, r};
  }
  if (best.first.empty()) throw std::runtime_error("no applicable algorithm");
  return best;
}

std::pair<std::string, RunResult> Runner::best_bine(Collective coll, i64 nodes,
                                                    i64 size_bytes, bool contiguous_only) {
  std::vector<std::string> names;
  for (const auto& entry : coll::algorithms_for(coll)) {
    if (!entry.is_bine || entry.specialized) continue;
    if (contiguous_only && (entry.name == "bine_block")) continue;
    names.push_back(entry.name);
  }
  return best_of(coll, names, nodes, size_bytes);
}

std::pair<std::string, RunResult> Runner::best_binomial(Collective coll, i64 nodes,
                                                        i64 size_bytes) {
  switch (coll) {
    case Collective::bcast:
      return best_of(coll, {"binomial", "binomial_dh", "scatter_allgather"}, nodes,
                     size_bytes);
    case Collective::reduce:
      return best_of(coll, {"binomial", "binomial_dh", "rs_gather"}, nodes, size_bytes);
    case Collective::gather:
    case Collective::scatter:
      return best_of(coll, {"binomial"}, nodes, size_bytes);
    case Collective::allgather:
      return best_of(coll, {"recursive_doubling"}, nodes, size_bytes);
    case Collective::reduce_scatter:
      return best_of(coll, {"recursive_halving"}, nodes, size_bytes);
    case Collective::allreduce:
      return best_of(coll, {"recursive_doubling", "rabenseifner"}, nodes, size_bytes);
    case Collective::alltoall:
      return best_of(coll, {"bruck"}, nodes, size_bytes);
  }
  throw std::logic_error("unknown collective");
}

std::vector<std::pair<std::string, RunResult>> Runner::sweep(
    const std::vector<SweepQuery>& queries, i64 threads) {
  // Warm the per-node machine caches serially so workers only compete for
  // cells, not for building the same topology/route table under the lock.
  for (const SweepQuery& q : queries) (void)sized_for(q.nodes);

  std::vector<std::pair<std::string, RunResult>> results(queries.size());
  parallel_for(
      static_cast<i64>(queries.size()),
      [&](i64 i) {
        const SweepQuery& q = queries[static_cast<size_t>(i)];
        switch (q.kind) {
          case SweepQuery::Kind::bine:
            results[static_cast<size_t>(i)] =
                best_bine(q.coll, q.nodes, q.size_bytes, q.contiguous_only);
            break;
          case SweepQuery::Kind::binomial:
            results[static_cast<size_t>(i)] = best_binomial(q.coll, q.nodes, q.size_bytes);
            break;
          case SweepQuery::Kind::sota:
            results[static_cast<size_t>(i)] =
                best_of(q.coll, sota_names(q.coll), q.nodes, q.size_bytes);
            break;
        }
      },
      threads);
  return results;
}

std::vector<std::string> Runner::sota_names(Collective coll) const {
  std::vector<std::string> names;
  for (const auto& entry : coll::algorithms_for(coll))
    if (!entry.is_bine && !entry.specialized) names.push_back(entry.name);
  return names;
}

}  // namespace bine::harness
