#include "harness/runner.hpp"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <tuple>
#include <type_traits>

#include "core/fnv.hpp"
#include "harness/parallel.hpp"
#include "net/simulate.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/verify.hpp"
#include "sched/compiled.hpp"

namespace bine::harness {

using sched::Collective;

std::vector<i64> paper_vector_sizes(bool full) {
  // 32 B, 256 B, 2 KiB, 16 KiB, 128 KiB, 1 MiB, 8 MiB, 64 MiB, 512 MiB.
  std::vector<i64> sizes = {32, 256, 2048, 16384, 131072, 1048576, 8388608};
  if (full) {
    sizes.push_back(67108864);
    sizes.push_back(536870912);
  }
  return sizes;
}

std::string size_label(i64 bytes) {
  if (bytes >= (i64{1} << 30)) return std::to_string(bytes >> 30) + " GiB";
  if (bytes >= (i64{1} << 20)) return std::to_string(bytes >> 20) + " MiB";
  if (bytes >= (i64{1} << 10)) return std::to_string(bytes >> 10) + " KiB";
  return std::to_string(bytes) + " B";
}

namespace {

bool schedule_cache_default() {
  if (const char* env = std::getenv("BINE_SCHED_CACHE")) {
    const std::string v(env);
    if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  }
  return true;
}

/// One resident SoA scratch per worker thread, shared by the cached and
/// uncached paths (the arrays are deliberately kept large to stay above the
/// mmap threshold; two copies per thread would double that for nothing).
sched::CompiledSchedule& thread_lowered_scratch() {
  static thread_local sched::CompiledSchedule lowered;
  return lowered;
}

}  // namespace

Runner::Runner(net::SystemProfile profile, bool spread_placement, u64 seed)
    : profile_(std::move(profile)),
      spread_placement_(spread_placement),
      seed_(seed),
      use_schedule_cache_(schedule_cache_default()) {
  // Fault model: profile-attached spec wins; otherwise BINE_FAULT_SPEC lets
  // the CI fault-injection job degrade every Runner in a process without
  // touching call sites. Trivial specs are dropped here, so every fault
  // branch below keys off a single null check -- the zero-fault parity
  // contract (a trivial spec is bit-identical to no spec).
  auto spec = profile_.faults ? profile_.faults : fault::spec_from_env();
  if (spec && !spec->trivial()) {
    spec->validate();
    fault_ = std::move(spec);
  }
}

i64 Runner::effective_ranks(i64 nodes) const {
  if (!fault_ || !fault_->has_failed_ranks()) return nodes;
  const i64 p = fault_->survivor_count(nodes);
  if (p < 2)
    throw std::runtime_error("fault spec leaves fewer than 2 surviving ranks of " +
                             std::to_string(nodes));
  return p;
}

std::vector<std::string> Runner::degrade_notes() const {
  const std::scoped_lock lock(notes_mutex_);
  return degrade_notes_;
}

const coll::AlgorithmEntry& Runner::resolve_algorithm(Collective coll,
                                                      const coll::AlgorithmEntry& algo,
                                                      i64 p_effective, i64 size_bytes) {
  if (!fault_ || !fault_->has_failed_ranks()) return algo;
  if (!algo.pow2_only || is_pow2(p_effective)) return algo;
  // The algorithm cannot shrink to the surviving rank count: demote to the
  // paper's heuristic recommendation (which honours the pow2 gates) and say
  // so once per (algorithm, p) instead of letting the generator throw.
  const auto& fallback =
      coll::recommended_algorithm(coll, p_effective, std::max<i64>(size_bytes, 1));
  std::string note = std::string("fault degrade: ") + to_string(coll) + "/" + algo.name +
                     " cannot run over " + std::to_string(p_effective) +
                     " survivors; demoted to " + fallback.name;
  {
    const std::scoped_lock lock(notes_mutex_);
    if (std::find(degrade_notes_.begin(), degrade_notes_.end(), note) ==
        degrade_notes_.end())
      degrade_notes_.push_back(std::move(note));
  }
  return fallback;
}

Runner::Sized& Runner::sized_for(i64 nodes) {
  const std::scoped_lock lock(cache_mutex_);
  auto it = cache_.find(nodes);
  if (it != cache_.end()) return it->second;

  Sized sized;
  sized.topo = profile_.build(nodes);
  if (spread_placement_ && sized.topo->num_nodes() > nodes) {
    // Fragmented machine: the job lands on whichever nodes are free, spanning
    // several groups, with ranks sorted by hostname (paper Sec. 2.2/5).
    const i64 total = sized.topo->num_nodes();
    const i64 per_group = total / std::max<i64>(1, sized.topo->group_of(total - 1) + 1);
    // Production machines run highly utilized, which is what fragments jobs
    // across groups (paper: 4-64 node MN5 jobs spanned up to 8 subtrees).
    alloc::Machine machine{sized.topo->group_of(total - 1) + 1, per_group};
    alloc::SyntheticScheduler sched_gen(machine, /*busy_fraction=*/0.85,
                                        seed_ + static_cast<u64>(nodes));
    sized.placement.node_of_rank = sched_gen.sample_job(nodes).node_of_rank;
  } else {
    sized.placement = net::Placement::identity(nodes);
  }
  if (fault_ && fault_->has_failed_ranks()) {
    // Graceful degradation: failed ranks leave the job. Survivors keep their
    // nodes and renumber densely (the rank remap the shrunk communicator
    // runs on), so the machine instance has effective_ranks(nodes) ranks.
    std::vector<i64> surviving;
    surviving.reserve(sized.placement.node_of_rank.size());
    for (Rank r = 0; r < nodes; ++r)
      if (!fault_->rank_failed(r))
        surviving.push_back(sized.placement.node_of_rank[static_cast<size_t>(r)]);
    if (static_cast<i64>(surviving.size()) < 2)
      throw std::runtime_error("fault spec leaves fewer than 2 surviving ranks of " +
                               std::to_string(nodes));
    sized.placement.node_of_rank = std::move(surviving);
  }
  sized.routes = std::make_unique<net::RouteCache>(*sized.topo, sized.placement);
  if (fault_ && fault_->degrades_links()) sized.routes->degrade(*fault_);
  return cache_.emplace(nodes, std::move(sized)).first->second;
}

coll::Config Runner::cell_config(i64 nodes, i64 size_bytes, i64 elem_size) const {
  coll::Config cfg;
  cfg.p = effective_ranks(nodes);
  cfg.elem_size = elem_size;  // default 4: 32-bit ints, the paper's methodology
  cfg.elem_count = std::max<i64>(cfg.p, size_bytes / cfg.elem_size);
  cfg.torus_dims = torus_dims;
  return cfg;
}

namespace {

RunResult to_run_result(const net::SimResult& sim) {
  RunResult out;
  out.seconds = sim.seconds;
  out.global_bytes = sim.traffic.global_bytes;
  out.total_bytes = sim.traffic.total();
  out.messages = sim.traffic.messages;
  out.steps = sim.steps;
  return out;
}

}  // namespace

RunResult Runner::simulate_lowered(const sched::CompiledSchedule& lowered,
                                   Sized& sized) const {
  return to_run_result(net::simulate(lowered, *sized.routes, profile_.cost));
}

std::shared_ptr<const sched::SizeFreeSchedule> Runner::cached_entry(
    Collective coll, const coll::AlgorithmEntry& algo, const coll::Config& cfg) {
  if (!use_schedule_cache_) return nullptr;
  // Transparent view key: a hit performs no string/vector copies and takes
  // only a shared lock inside the cache. The fault epoch (spec fingerprint;
  // 0 = healthy) partitions the shared table so a changed fault model can
  // never be served entries cached under another machine state.
  const sched::ScheduleKeyView key(coll, algo.name, cfg.p, cfg.root, cfg.torus_dims,
                                   fault_ ? fault_->fingerprint() : 0);
  auto entry = sched_cache_->get(key, [&](i64 canonical_elems) {
    // Called at the cache's two canonical verification sizes on a miss.
    coll::Config build_cfg = cfg;
    build_cfg.elem_count = canonical_elems;
    return algo.make(build_cfg);
  });
  // Verification demoted this algorithm: callers use fresh generation.
  if (!entry->size_independent) return nullptr;
  return entry;
}

RunResult Runner::run(Collective coll, const coll::AlgorithmEntry& algo_in, i64 nodes,
                      i64 size_bytes) {
  const coll::Config cfg = cell_config(nodes, size_bytes);
  const coll::AlgorithmEntry& algo = resolve_algorithm(coll, algo_in, cfg.p, size_bytes);
  if (auto entry = cached_entry(coll, algo, cfg)) {
    Sized& sized = sized_for(nodes);
    // Per-worker scratch: resolving into resident arrays avoids re-mmapping
    // the bytes column for every cell of a sweep.
    sched::CompiledSchedule& lowered = thread_lowered_scratch();
    sched::SizeFreeSchedule::resolve_into(std::move(entry), cfg.elem_count,
                                          cfg.elem_size, lowered);
    return simulate_lowered(lowered, sized);
  }
  return run_uncached(coll, algo, nodes, size_bytes);
}

std::vector<RunResult> Runner::run_sizes(Collective coll,
                                         const coll::AlgorithmEntry& algo_in, i64 nodes,
                                         std::span<const i64> sizes_bytes) {
  std::vector<RunResult> out(sizes_bytes.size());
  if (sizes_bytes.empty()) return out;
  // The batched engine needs ONE schedule across the axis: fault demotion is
  // size-dependent (the heuristic recommendation keys on size), so batch only
  // when every size resolves to the same algorithm entry.
  const coll::Config cfg = cell_config(nodes, sizes_bytes[0]);
  const coll::AlgorithmEntry& resolved =
      resolve_algorithm(coll, algo_in, cfg.p, sizes_bytes[0]);
  bool uniform = true;
  for (size_t s = 1; s < sizes_bytes.size() && uniform; ++s)
    uniform = &resolve_algorithm(coll, algo_in, cfg.p, sizes_bytes[s]) == &resolved;
  if (uniform) {
    if (auto entry = cached_entry(coll, resolved, cfg)) {
      Sized& sized = sized_for(nodes);
      std::vector<i64> elem_counts(sizes_bytes.size());
      for (size_t s = 0; s < sizes_bytes.size(); ++s)
        elem_counts[s] = cell_config(nodes, sizes_bytes[s]).elem_count;
      const std::vector<net::SimResult> sims = net::simulate_sizes(
          *entry, elem_counts, cfg.elem_size, *sized.routes, profile_.cost);
      for (size_t s = 0; s < sims.size(); ++s) out[s] = to_run_result(sims[s]);
      return out;
    }
  }
  for (size_t s = 0; s < sizes_bytes.size(); ++s)
    out[s] = run(coll, algo_in, nodes, sizes_bytes[s]);
  return out;
}

std::vector<std::vector<RunResult>> Runner::run_candidates(
    Collective coll, std::span<const coll::AlgorithmEntry* const> algos, i64 nodes,
    std::span<const i64> sizes_bytes) {
  std::vector<std::vector<RunResult>> out(algos.size());
  if (sizes_bytes.empty()) return out;
  const coll::Config cfg = cell_config(nodes, sizes_bytes[0]);

  // Partition the pool: candidates with a usable size-free entry (and
  // size-uniform fault resolution, the run_sizes batching precondition) join
  // the single batched pass; the rest fall back per candidate. The entry
  // handles outlive the batched call.
  std::vector<std::shared_ptr<const sched::SizeFreeSchedule>> entries(algos.size());
  std::vector<const sched::SizeFreeSchedule*> batch(algos.size(), nullptr);
  bool any_batched = false;
  for (size_t k = 0; k < algos.size(); ++k) {
    if (algos[k] == nullptr) continue;
    const coll::AlgorithmEntry& resolved =
        resolve_algorithm(coll, *algos[k], cfg.p, sizes_bytes[0]);
    bool uniform = true;
    for (size_t s = 1; s < sizes_bytes.size() && uniform; ++s)
      uniform = &resolve_algorithm(coll, *algos[k], cfg.p, sizes_bytes[s]) == &resolved;
    if (uniform) entries[k] = cached_entry(coll, resolved, cfg);
    if (entries[k]) {
      batch[k] = entries[k].get();
      any_batched = true;
    } else {
      out[k] = run_sizes(coll, *algos[k], nodes, sizes_bytes);
    }
  }
  if (!any_batched) return out;

  Sized& sized = sized_for(nodes);
  std::vector<i64> elem_counts(sizes_bytes.size());
  for (size_t s = 0; s < sizes_bytes.size(); ++s)
    elem_counts[s] = cell_config(nodes, sizes_bytes[s]).elem_count;
  const std::vector<std::vector<net::SimResult>> sims = net::simulate_candidates(
      batch, elem_counts, cfg.elem_size, *sized.routes, profile_.cost,
      &net::process_route_memo());
  for (size_t k = 0; k < algos.size(); ++k) {
    if (batch[k] == nullptr) continue;
    out[k].resize(sims[k].size());
    for (size_t s = 0; s < sims[k].size(); ++s) out[k][s] = to_run_result(sims[k][s]);
  }
  return out;
}

runtime::ExecPlan Runner::exec_plan(Collective coll, const coll::AlgorithmEntry& algo_in,
                                    i64 nodes, i64 size_bytes, bool* used_cache,
                                    i64 elem_size) {
  const coll::Config cfg = cell_config(nodes, size_bytes, elem_size);
  const coll::AlgorithmEntry& algo = resolve_algorithm(coll, algo_in, cfg.p, size_bytes);
  if (used_cache) *used_cache = false;
  if (auto entry = cached_entry(coll, algo, cfg)) {
    if (used_cache) *used_cache = true;
    return runtime::ExecPlan::from_size_free(std::move(entry), coll, cfg.root,
                                             cfg.elem_count, cfg.elem_size);
  }
  return runtime::ExecPlan::lower(algo.make(cfg));
}

namespace {

/// Deterministic synthetic inputs for the verified path. Integral elements
/// use the full multiplicative-hash pattern (wrapping arithmetic stays
/// deterministic); floating-point elements are small exact integers, so
/// sums stay exactly representable (p * 996 << 2^24 for any realistic p)
/// and sum/min/max produce identical bits in every reduction order -- tree,
/// butterfly, fused. Products are NOT order-safe for floats (they leave the
/// exact range immediately); run_verified_impl rejects that combination.
template <typename T>
std::vector<std::vector<T>> synthetic_inputs(i64 p, i64 elems) {
  std::vector<std::vector<T>> inputs(static_cast<size_t>(p));
  for (i64 r = 0; r < p; ++r) {
    auto& in = inputs[static_cast<size_t>(r)];
    in.resize(static_cast<size_t>(elems));
    for (i64 e = 0; e < elems; ++e) {
      const std::uint32_t h =
          static_cast<std::uint32_t>(r) * 2654435761u + static_cast<std::uint32_t>(e);
      if constexpr (std::is_floating_point_v<T>)
        in[static_cast<size_t>(e)] = static_cast<T>(h % 997u);
      else
        in[static_cast<size_t>(e)] = static_cast<T>(h);
    }
  }
  return inputs;
}

/// Digest of a verified final state: layout scalars plus the raw state
/// arrays (dense data bit patterns, contributor words, validity bytes),
/// folded word-wise so digesting stays a small fraction of a verified cell.
/// Invalid slots hold value-initialized elements, so the digest is a pure
/// function of the plan and inputs.
template <typename T>
u64 state_digest(const runtime::ExecPlan& plan,
                 const runtime::CompiledExecResult<T>& res) {
  u64 h = core::kFnvOffset;
  core::fnv_mix_words(h, &plan.p, sizeof(plan.p));
  core::fnv_mix_words(h, &plan.nblocks, sizeof(plan.nblocks));
  core::fnv_mix_words(h, &plan.elems_per_rank, sizeof(plan.elems_per_rank));
  core::fnv_mix_words(h, res.valid.data(), res.valid.size());
  core::fnv_mix_words(h, res.contrib.data(), res.contrib.size() * sizeof(u64));
  core::fnv_mix_words(h, res.data.data(), res.data.size() * sizeof(T));
  return h;
}

}  // namespace

template <typename T>
VerifiedRun Runner::run_verified_impl(Collective coll, const coll::AlgorithmEntry& algo,
                                      i64 nodes, i64 size_bytes, i64 threads,
                                      runtime::ReduceOp op) {
  VerifiedRun out;
  if (std::is_floating_point_v<T> && op == runtime::ReduceOp::prod) {
    // Floating-point products are order-dependent (no input domain keeps
    // them exact), so schedule-order vs reference-order reductions would
    // diverge bit-wise and fail every correct algorithm. Reject up front
    // with an actionable error instead of a spurious data mismatch.
    out.error = "verified execution does not support ReduceOp::prod over "
                "floating-point elements (order-dependent rounding); use an "
                "integral element type";
    return out;
  }
  try {
    const runtime::ExecPlan plan = exec_plan(coll, algo, nodes, size_bytes,
                                             &out.used_cache, static_cast<i64>(sizeof(T)));
    const auto inputs = synthetic_inputs<T>(plan.p, plan.elem_count);
    // Executor injection hook: only a spec with drop/corrupt probabilities
    // is passed through; the resulting damage surfaces as a verify failure
    // or an executor throw, both reported as a not-ok VerifiedRun below.
    const fault::FaultSpec* inject =
        fault_ && fault_->has_exec_injection() ? fault_.get() : nullptr;
    const auto res = runtime::execute<T>(plan, op, inputs, threads, inject);
    out.messages = res.messages;
    out.wire_bytes = res.wire_bytes;
    out.stage_bytes = res.stage_bytes;
    out.error = runtime::verify<T>(plan, op, inputs, res);
    out.ok = out.error.empty();
    if (out.ok) out.digest = state_digest<T>(plan, res);
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  return out;
}

VerifiedRun Runner::run_verified(Collective coll, const coll::AlgorithmEntry& algo,
                                 i64 nodes, i64 size_bytes, i64 threads,
                                 runtime::ElemType elem, runtime::ReduceOp op) {
  switch (elem) {
    case runtime::ElemType::u32:
      return run_verified_impl<std::uint32_t>(coll, algo, nodes, size_bytes, threads, op);
    case runtime::ElemType::u64:
      return run_verified_impl<std::uint64_t>(coll, algo, nodes, size_bytes, threads, op);
    case runtime::ElemType::f32:
      return run_verified_impl<float>(coll, algo, nodes, size_bytes, threads, op);
    case runtime::ElemType::f64:
      return run_verified_impl<double>(coll, algo, nodes, size_bytes, threads, op);
  }
  throw std::logic_error("unknown element type");
}

std::vector<VerifiedRun> Runner::sweep_verified(const std::vector<VerifiedQuery>& queries,
                                                i64 threads, i64 exec_threads) {
  // Cells already fan out across the sweep workers; letting every worker's
  // executor also auto-thread (exec_threads == 0 at >= 1 MiB vectors) would
  // nest thread pools and oversubscribe. Only an effectively serial sweep
  // (one worker, or a single query) passes the auto default through.
  i64 workers = threads <= 0 ? default_thread_count() : threads;
  workers = std::min<i64>(workers, static_cast<i64>(queries.size()));
  if (exec_threads == 0 && workers > 1) exec_threads = 1;
  std::vector<VerifiedRun> results(queries.size());
  parallel_for(
      static_cast<i64>(queries.size()),
      [&](i64 i) {
        const VerifiedQuery& q = queries[static_cast<size_t>(i)];
        const auto& entry = coll::find_algorithm(q.coll, q.algorithm);
        results[static_cast<size_t>(i)] = run_verified(
            q.coll, entry, q.nodes, q.size_bytes, exec_threads, q.elem, q.op);
      },
      threads);
  return results;
}

void Runner::use_private_schedule_cache() {
  private_cache_ = std::make_unique<sched::ScheduleCache>();
  sched_cache_ = private_cache_.get();
}

RunResult Runner::run_uncached(Collective coll, const coll::AlgorithmEntry& algo_in,
                               i64 nodes, i64 size_bytes) {
  const coll::Config cfg = cell_config(nodes, size_bytes);
  const coll::AlgorithmEntry& algo = resolve_algorithm(coll, algo_in, cfg.p, size_bytes);
  const sched::Schedule sch = algo.make(cfg);
  Sized& sized = sized_for(nodes);
  sched::CompiledSchedule& lowered = thread_lowered_scratch();
  sched::CompiledSchedule::lower_into(sch, lowered);
  return simulate_lowered(lowered, sized);
}

std::pair<std::string, RunResult> Runner::best_of(Collective coll,
                                                  const std::vector<std::string>& names,
                                                  i64 nodes, i64 size_bytes) {
  std::pair<std::string, RunResult> best{"", {}};
  best.second.seconds = std::numeric_limits<double>::infinity();
  for (const std::string& name : names) {
    const auto& entry = coll::find_algorithm(coll, name);
    if (!applicable(entry, nodes)) continue;
    const RunResult r = run(coll, entry, nodes, size_bytes);
    if (r.seconds < best.second.seconds) best = {name, r};
  }
  if (best.first.empty()) throw std::runtime_error("no applicable algorithm");
  return best;
}

std::vector<std::string> Runner::bine_names(Collective coll, bool contiguous_only) const {
  std::vector<std::string> names;
  for (const auto& entry : coll::algorithms_for(coll)) {
    if (!entry.is_bine || entry.specialized) continue;
    if (contiguous_only && (entry.name == "bine_block")) continue;
    names.push_back(entry.name);
  }
  return names;
}

std::vector<std::string> Runner::binomial_names(Collective coll) const {
  switch (coll) {
    case Collective::bcast: return {"binomial", "binomial_dh", "scatter_allgather"};
    case Collective::reduce: return {"binomial", "binomial_dh", "rs_gather"};
    case Collective::gather:
    case Collective::scatter: return {"binomial"};
    case Collective::allgather: return {"recursive_doubling"};
    case Collective::reduce_scatter: return {"recursive_halving"};
    case Collective::allreduce: return {"recursive_doubling", "rabenseifner"};
    case Collective::alltoall: return {"bruck"};
  }
  throw std::logic_error("unknown collective");
}

std::pair<std::string, RunResult> Runner::best_bine(Collective coll, i64 nodes,
                                                    i64 size_bytes, bool contiguous_only) {
  return best_of(coll, bine_names(coll, contiguous_only), nodes, size_bytes);
}

std::pair<std::string, RunResult> Runner::best_binomial(Collective coll, i64 nodes,
                                                        i64 size_bytes) {
  return best_of(coll, binomial_names(coll), nodes, size_bytes);
}

std::vector<std::pair<std::string, RunResult>> Runner::sweep(
    const std::vector<SweepQuery>& queries, i64 threads, const CancelToken* cancel) {
  // Warm the per-node machine caches serially so workers only compete for
  // cells, not for building the same topology/route table under the lock.
  for (const SweepQuery& q : queries) (void)sized_for(q.nodes);

  const auto names_for = [&](const SweepQuery& q) {
    switch (q.kind) {
      case SweepQuery::Kind::bine: return bine_names(q.coll, q.contiguous_only);
      case SweepQuery::Kind::binomial: return binomial_names(q.coll);
      case SweepQuery::Kind::sota: return sota_names(q.coll);
    }
    throw std::logic_error("unknown sweep kind");
  };

  // Batch all queries of one (collective, nodes) cell -- every size row of
  // one table column, across the bine/binomial/sota kinds -- into a single
  // work item evaluating the union of their candidate algorithms exactly
  // once, each across the cell's whole size axis via run_sizes (ONE
  // structural pass per candidate instead of one per size). This kills the
  // generation duplication between best_bine/best_binomial (their baseline
  // families overlap with the sota set) and gives the schedule cache a
  // deterministic access pattern regardless of thread count.
  struct Cell {
    Collective coll{};
    i64 nodes = 0;
    std::vector<i64> sizes;          ///< size axis, first-use order
    std::vector<size_t> query_indices;
    std::vector<size_t> query_size;  ///< per query: index into `sizes`
    std::vector<std::string> names;  ///< union of candidates, first-use order
    /// Per query (parallel to query_indices): its candidates as indices into
    /// `names`, in the query's own selection order -- resolved once here so
    /// workers neither rescan the registry nor search names by string.
    std::vector<std::vector<size_t>> query_candidates;
  };
  std::vector<Cell> cells;
  std::map<std::pair<int, i64>, size_t> cell_index;
  for (size_t i = 0; i < queries.size(); ++i) {
    const SweepQuery& q = queries[i];
    const auto key = std::make_pair(static_cast<int>(q.coll), q.nodes);
    auto [it, inserted] = cell_index.emplace(key, cells.size());
    if (inserted) cells.push_back(Cell{q.coll, q.nodes, {}, {}, {}, {}, {}});
    Cell& cell = cells[it->second];
    cell.query_indices.push_back(i);
    auto spos = std::find(cell.sizes.begin(), cell.sizes.end(), q.size_bytes);
    if (spos == cell.sizes.end()) {
      cell.sizes.push_back(q.size_bytes);
      spos = cell.sizes.end() - 1;
    }
    cell.query_size.push_back(static_cast<size_t>(spos - cell.sizes.begin()));
    std::vector<size_t> candidates;
    for (std::string& name : names_for(q)) {
      auto pos = std::find(cell.names.begin(), cell.names.end(), name);
      if (pos == cell.names.end()) {
        cell.names.push_back(std::move(name));
        pos = cell.names.end() - 1;
      }
      candidates.push_back(static_cast<size_t>(pos - cell.names.begin()));
    }
    cell.query_candidates.push_back(std::move(candidates));
  }

  std::vector<std::pair<std::string, RunResult>> results(queries.size());
  parallel_for(
      static_cast<i64>(cells.size()),
      [&](i64 ci) {
        const Cell& cell = cells[static_cast<size_t>(ci)];
        // ONE structural pass for the whole candidate pool across the size
        // axis (run_candidates: union pair table through the process route
        // memo, shared lane tiles); empty result = skipped (rank-count gate,
        // passed as a null pool slot).
        std::vector<const coll::AlgorithmEntry*> algos(cell.names.size(), nullptr);
        for (size_t k = 0; k < cell.names.size(); ++k) {
          const auto& entry = coll::find_algorithm(cell.coll, cell.names[k]);
          if (applicable(entry, cell.nodes)) algos[k] = &entry;
        }
        const std::vector<std::vector<RunResult>> evaluated =
            run_candidates(cell.coll, algos, cell.nodes, cell.sizes);
        // Answer each query by minimizing over its own candidate list in its
        // own order -- the exact selection (and tie-breaking) best_of runs.
        for (size_t v = 0; v < cell.query_indices.size(); ++v) {
          const size_t s = cell.query_size[v];
          std::pair<std::string, RunResult> best{"", {}};
          best.second.seconds = std::numeric_limits<double>::infinity();
          for (const size_t k : cell.query_candidates[v]) {
            const auto& r = evaluated[k];
            if (!r.empty() && r[s].seconds < best.second.seconds)
              best = {cell.names[k], r[s]};
          }
          if (best.first.empty()) throw std::runtime_error("no applicable algorithm");
          results[cell.query_indices[v]] = std::move(best);
        }
      },
      threads, cancel);
  return results;
}

std::vector<std::string> Runner::sota_names(Collective coll) const {
  std::vector<std::string> names;
  for (const auto& entry : coll::algorithms_for(coll))
    if (!entry.is_bine && !entry.specialized) names.push_back(entry.name);
  return names;
}

}  // namespace bine::harness
