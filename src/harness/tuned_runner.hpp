#pragma once

#include <mutex>
#include <string>

#include "harness/runner.hpp"
#include "tune/decision_table.hpp"
#include "tune/tuner.hpp"

/// Tuned dispatch: a Runner front-end that answers "which algorithm?" from a
/// tune::DecisionTable in O(log intervals) and executes the winner through
/// the existing Runner paths (`run` for simulation, `exec_plan`-backed
/// `run_verified` for real execution). The consumer-side half of the tuning
/// subsystem: Tuner builds the artifact offline, TunedRunner serves it.
namespace bine::harness {

class TunedRunner {
 public:
  /// Throws std::runtime_error when `table` names this profile with a
  /// different fingerprint -- a stale artifact is rejected at construction,
  /// not discovered mid-dispatch. `policy` decides what a table miss does;
  /// MissPolicy::tune_on_miss tunes the missing cell with `tuner_options`
  /// (+ this runner) and merges it into the table, so the miss is paid once.
  TunedRunner(net::SystemProfile profile, tune::DecisionTable table,
              tune::MissPolicy policy = tune::MissPolicy::heuristic_default,
              tune::TunerOptions tuner_options = {});

  /// The winning algorithm for (coll, nodes, bytes). Thread-safe.
  [[nodiscard]] const coll::AlgorithmEntry& select(sched::Collective coll, i64 nodes,
                                                   i64 bytes);

  /// Tuned simulation: select + Runner::run.
  [[nodiscard]] RunResult run(sched::Collective coll, i64 nodes, i64 bytes);

  /// Tuned verified execution: select + the Runner::exec_plan/run_verified
  /// path (compiled executor over real buffers, postcondition verify).
  [[nodiscard]] VerifiedRun run_verified(sched::Collective coll, i64 nodes, i64 bytes,
                                         i64 threads = 0,
                                         runtime::ElemType elem = runtime::ElemType::u32,
                                         runtime::ReduceOp op = runtime::ReduceOp::sum);

  [[nodiscard]] const net::SystemProfile& profile() const { return profile_; }
  [[nodiscard]] const tune::DecisionTable& table() const { return table_; }
  [[nodiscard]] Runner& runner() { return runner_; }

  /// Dispatch counters: selections answered by the table vs misses (a
  /// tune-on-miss fill counts as the miss it repaired; later dispatches of
  /// that cell count as hits).
  [[nodiscard]] u64 table_hits() const { return hits_; }
  [[nodiscard]] u64 table_misses() const { return misses_; }

 private:
  net::SystemProfile profile_;
  Runner runner_;
  tune::DecisionTable table_;
  tune::MissPolicy policy_;
  tune::Tuner tuner_;
  std::mutex mutex_;  ///< guards table_ mutation + counters
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace bine::harness
