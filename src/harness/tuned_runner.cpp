#include "harness/tuned_runner.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace bine::harness {

TunedRunner::TunedRunner(net::SystemProfile profile, tune::DecisionTable table,
                         tune::MissPolicy policy, tune::TunerOptions tuner_options)
    : profile_(std::move(profile)),
      runner_(profile_, tuner_options.spread_placement, tuner_options.seed),
      table_(std::move(table)),
      policy_(policy),
      tuner_(std::move(tuner_options)) {
  // Fail-fast fingerprint check: a stale artifact must never serve, so
  // reject it here rather than on the first dispatch.
  const auto it = table_.profiles().find(profile_.name);
  if (it != table_.profiles().end() &&
      it->second != tune::profile_fingerprint(profile_))
    throw std::runtime_error("tuned dispatch: decision table was tuned for a "
                             "different '" +
                             profile_.name + "' (fingerprint mismatch); re-tune");
}

const coll::AlgorithmEntry& TunedRunner::select(sched::Collective coll, i64 nodes,
                                                i64 bytes) {
  bytes = std::max<i64>(bytes, 0);  // cells cover [0, inf); no negative probes
  const std::scoped_lock lock(mutex_);
  if (const std::string* name = table_.lookup(profile_.name, coll, nodes, bytes)) {
    ++hits_;
    return coll::find_algorithm(coll, *name);
  }
  ++misses_;
  if (policy_ == tune::MissPolicy::tune_on_miss) {
    // Tune the whole missing cell (every grid size), merge, serve: the miss
    // is paid once and later queries of any size hit the table.
    tune::DecisionTable fill;
    fill.set_profile(profile_.name, tune::profile_fingerprint(profile_));
    fill.set_cell(tune::CellKey{profile_.name, coll, nodes},
                  tuner_.tune_cell(runner_, coll, nodes));
    table_.merge(fill);
    const std::string* name = table_.lookup(profile_.name, coll, nodes, bytes);
    return coll::find_algorithm(coll, *name);
  }
  if (policy_ == tune::MissPolicy::error)
    throw std::runtime_error(std::string("tuned dispatch: no cell for ") +
                             to_string(coll) + " p=" + std::to_string(nodes) + " on '" +
                             profile_.name + "'");
  return coll::recommended_algorithm(coll, nodes, std::max<i64>(bytes, 1));
}

RunResult TunedRunner::run(sched::Collective coll, i64 nodes, i64 bytes) {
  const coll::AlgorithmEntry& algo = select(coll, nodes, bytes);
  return runner_.run(coll, algo, nodes, bytes);
}

VerifiedRun TunedRunner::run_verified(sched::Collective coll, i64 nodes, i64 bytes,
                                      i64 threads, runtime::ElemType elem,
                                      runtime::ReduceOp op) {
  const coll::AlgorithmEntry& algo = select(coll, nodes, bytes);
  return runner_.run_verified(coll, algo, nodes, bytes, threads, elem, op);
}

}  // namespace bine::harness
