#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "core/types.hpp"
#include "fault/fault.hpp"

/// Cooperative cancellation and per-cell deadlines for the sweep substrate.
///
/// Both mechanisms are *cooperative* by design: a C++ worker thread cannot be
/// preempted safely (killing it mid-cell would leak locks, tear the schedule
/// cache, and forfeit the byte-identity contract), so the engine checks a
/// flag at well-defined boundaries instead.
///
///   * CancelToken -- a shared flag `parallel_for` consults before handing
///     out each index: when it fires, in-flight work items *drain* (they
///     complete, and a journaled sweep persists them), not-yet-started items
///     never start, and the caller gets a partial-but-resumable result.
///   * Deadline / CellGuard -- a per-work-item time budget checked at
///     evaluation boundaries (between algorithm runs, between metric calls);
///     overrunning it throws fault::DeadlineExceeded, which the sweep's
///     failure discipline turns into a structured, permanently-classified
///     CellError instead of a wedged shard.
namespace bine::harness {

/// Shared cancellation flag, thread-safe, monotonic (no un-cancel): thread
/// one token through SweepPlan::cancel / Runner::sweep / parallel_for and
/// fire it from any thread (a signal-driven watchdog, a service RPC).
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A wall-clock budget. Default-constructed deadlines are unarmed and never
/// expire -- the zero-cost path every plan without cell_deadline_ms takes.
class Deadline {
 public:
  Deadline() = default;

  /// Arm a deadline `budget_ms` from now; budget_ms <= 0 = unarmed.
  [[nodiscard]] static Deadline after_ms(i64 budget_ms) {
    Deadline d;
    if (budget_ms > 0) {
      d.budget_ms_ = budget_ms;
      d.due_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
      d.armed_ = true;
    }
    return d;
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] i64 budget_ms() const noexcept { return budget_ms_; }
  [[nodiscard]] bool expired() const noexcept {
    return armed_ && std::chrono::steady_clock::now() >= due_;
  }

 private:
  std::chrono::steady_clock::time_point due_{};
  i64 budget_ms_ = 0;
  bool armed_ = false;
};

/// What one sweep work item runs under. The engine arms a fresh guard per
/// attempt (each transient retry gets the full budget again) and the
/// measurement loops call checkpoint() between evaluations; an expired
/// deadline throws fault::DeadlineExceeded, classified permanent by the
/// retry machinery (a wedged cell re-run under the same budget wedges
/// again).
struct CellGuard {
  Deadline deadline;

  void checkpoint(const char* where) const {
    if (!deadline.expired()) return;
    throw fault::DeadlineExceeded("cell exceeded its " +
                                  std::to_string(deadline.budget_ms()) +
                                  " ms deadline at " + where);
  }
};

}  // namespace bine::harness
