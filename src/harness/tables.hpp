#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

/// Report builders shared by the table/figure benches: geometric-mean
/// win/loss tables (Tables 3-5), best-algorithm heatmaps (Figs. 9a/10a) and
/// box-plot summaries (Figs. 5, 9b, 10b, 11).
namespace bine::harness {

/// Win/loss aggregation for one collective row of a Table 3-style table.
struct WinLoss {
  i64 wins = 0, losses = 0, ties = 0;
  std::vector<double> gains;       ///< bine/other - 1 where bine wins (>0)
  std::vector<double> drops;       ///< other/bine - 1 where bine loses (>0)
  std::vector<double> traffic_red; ///< 1 - bine_global/other_global

  void add(double t_bine, double t_other, i64 g_bine, i64 g_other);
  [[nodiscard]] std::string row(const std::string& name) const;
  static void print_header(const std::string& title);
};

/// Five-number summary (plus mean) for box plots.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  i64 n = 0;
  [[nodiscard]] static BoxStats of(std::vector<double> samples);
  [[nodiscard]] std::string row(const std::string& label) const;
  static void print_header(const std::string& title, const std::string& value_name);
};

/// Heatmap cell: either the best non-bine algorithm's letter, or the ratio
/// bine achieves over the next best when bine wins.
struct HeatCell {
  bool bine_best = false;
  double ratio = 1.0;        ///< next_best / bine when bine_best
  std::string best_name;     ///< winning algorithm when not bine_best
};

void print_heatmap(const std::string& title, const std::vector<std::string>& col_labels,
                   const std::vector<std::string>& row_labels,
                   const std::vector<std::vector<HeatCell>>& cells);

/// Letter codes used in the heatmaps (N = binomial family, R = ring,
/// B = bruck, S = swing, L = linear/pairwise, G = scatter-allgather, ...).
[[nodiscard]] char algorithm_letter(const std::string& name);

[[nodiscard]] double geomean(const std::vector<double>& ratios);

}  // namespace bine::harness
