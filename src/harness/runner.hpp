#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "alloc/allocation.hpp"
#include "coll/registry.hpp"
#include "net/profiles.hpp"
#include "net/route_cache.hpp"

/// Evaluation driver (the stand-in for the paper's PICO framework): runs a
/// (system, collective, algorithm, nodes, vector size) combination through
/// the simulator, caching topologies, placements, and compiled route tables
/// across the sweep. Each cell is a pure function of its inputs, so `sweep`
/// fans independent cells out over a thread pool with deterministic,
/// index-addressed results.
namespace bine::harness {

struct RunResult {
  double seconds = 0;
  i64 global_bytes = 0;
  i64 total_bytes = 0;
  size_t steps = 0;
};

/// Vector sizes used throughout Sec. 5 (bytes): 32 B ... 512 MiB. The bench
/// binaries default to a subset for runtime reasons; pass `full` for all.
[[nodiscard]] std::vector<i64> paper_vector_sizes(bool full);

/// Human-readable size ("32 B", "2 KiB", "512 MiB").
[[nodiscard]] std::string size_label(i64 bytes);

/// One cell of a best-variant sweep: which family to minimize over for a
/// (collective, nodes, size) configuration.
struct SweepQuery {
  enum class Kind {
    bine,      ///< best registered Bine variant (honours contiguous_only)
    binomial,  ///< the paper's binomial-family baseline
    sota,      ///< best non-Bine algorithm
  };
  sched::Collective coll{};
  i64 nodes = 0;
  i64 size_bytes = 0;
  Kind kind = Kind::bine;
  bool contiguous_only = false;  ///< only meaningful for Kind::bine
};

class Runner {
 public:
  /// `spread_placement`: allocate nodes through the synthetic fragmented
  /// scheduler (jobs span many groups, as observed on the real systems);
  /// otherwise ranks map to consecutive nodes.
  Runner(net::SystemProfile profile, bool spread_placement = true, u64 seed = 42);

  [[nodiscard]] const net::SystemProfile& profile() const { return profile_; }

  /// Simulate one algorithm; `size_bytes` is the collective's vector size.
  [[nodiscard]] RunResult run(sched::Collective coll, const coll::AlgorithmEntry& algo,
                              i64 nodes, i64 size_bytes);

  /// Torus shape handed to the Appendix D generators (empty = near-cubic).
  std::vector<i64> torus_dims;

  /// Best (min simulated time) over a set of algorithm names; returns the
  /// winning name alongside. Skips algorithms that reject the rank count.
  [[nodiscard]] std::pair<std::string, RunResult> best_of(
      sched::Collective coll, const std::vector<std::string>& names, i64 nodes,
      i64 size_bytes);

  /// Best over all registered Bine variants of the collective. When
  /// `contiguous_only`, restricts to the strategies that send contiguous
  /// data, matching the fair-comparison setup of Sec. 5.1.1.
  [[nodiscard]] std::pair<std::string, RunResult> best_bine(sched::Collective coll,
                                                            i64 nodes, i64 size_bytes,
                                                            bool contiguous_only);

  /// The binomial-family baseline for a collective, as the paper frames it
  /// ("Comparison with Binomial Trees"): trees for rooted collectives,
  /// recursive doubling/halving butterflies for the rootless ones, Bruck for
  /// alltoall.
  [[nodiscard]] std::pair<std::string, RunResult> best_binomial(sched::Collective coll,
                                                                i64 nodes, i64 size_bytes);

  /// All non-Bine algorithms registered for the collective.
  [[nodiscard]] std::vector<std::string> sota_names(sched::Collective coll) const;

  /// Evaluate every query, fanning the independent cells out over at most
  /// `threads` workers (<= 0 = harness::default_thread_count()). Results are
  /// index-addressed (results[i] answers queries[i]) and every cell is a
  /// pure function of its query, so the returned vector -- and anything
  /// printed from it in order -- is byte-identical for any thread count.
  [[nodiscard]] std::vector<std::pair<std::string, RunResult>> sweep(
      const std::vector<SweepQuery>& queries, i64 threads = 0);

 private:
  struct Sized {
    std::unique_ptr<net::Topology> topo;
    net::Placement placement;
    std::unique_ptr<net::RouteCache> routes;  ///< compiled per (topo, placement)
  };
  /// Thread-safe: builds (or returns) the machine instance for `nodes`. The
  /// returned reference is stable (map nodes never move).
  Sized& sized_for(i64 nodes);

  net::SystemProfile profile_;
  bool spread_placement_;
  u64 seed_;
  std::mutex cache_mutex_;
  std::map<i64, Sized> cache_;
};

}  // namespace bine::harness
