#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "alloc/allocation.hpp"
#include "coll/registry.hpp"
#include "fault/fault.hpp"
#include "harness/cancel.hpp"
#include "net/profiles.hpp"
#include "net/route_cache.hpp"
#include "runtime/exec_plan.hpp"
#include "runtime/reduction.hpp"
#include "sched/schedule_cache.hpp"

/// Evaluation driver (the stand-in for the paper's PICO framework): runs a
/// (system, collective, algorithm, nodes, vector size) combination through
/// the simulator, caching topologies, placements, compiled route tables AND
/// size-free compiled schedules across the sweep. Each cell is a pure
/// function of its inputs, so `sweep` fans independent cells out over a
/// thread pool with deterministic, index-addressed results.
///
/// The schedule cache is the process-wide sched::process_schedule_cache() by
/// default: every Runner (one per SystemProfile in the table benches) shares
/// entries, and both the simulation path (`run`) and the execution path
/// (`exec_plan`/`run_verified`) resolve from the same cached size-free IR.
namespace bine::harness {

struct RunResult {
  double seconds = 0;
  i64 global_bytes = 0;
  i64 total_bytes = 0;
  i64 messages = 0;
  size_t steps = 0;
};

/// Outcome of one verified execution (run_verified): the collective was run
/// over real buffers by the compiled executor and checked against its MPI
/// postcondition.
struct VerifiedRun {
  bool ok = false;
  std::string error;       ///< verify diagnostic or execution exception
  i64 messages = 0;
  i64 wire_bytes = 0;
  bool used_cache = false; ///< plan came from the shared size-free IR
  /// Bytes the execution copied through stage buffers (ExecPlan::stage_bytes):
  /// 0 means every delivery landed direct, fused, or through in-place tiles.
  i64 stage_bytes = 0;
  /// FNV-1a digest over the final execution state (validity bytes,
  /// contributor words, element bit patterns) plus the layout scalars.
  /// Deterministic for any thread count and identical between the cached and
  /// fresh plan paths; 0 until the run verified ok. Sweep outputs carry it so
  /// tuning/refinement stages can trust (and cross-check) verified cells.
  u64 digest = 0;
};

/// One cell of a verified-execution sweep: execute `algorithm` over real
/// buffers with the given element type and reduce op, verify, and digest.
struct VerifiedQuery {
  sched::Collective coll{};
  std::string algorithm;
  i64 nodes = 0;
  i64 size_bytes = 0;
  runtime::ElemType elem = runtime::ElemType::u32;
  runtime::ReduceOp op = runtime::ReduceOp::sum;
};

/// Vector sizes used throughout Sec. 5 (bytes): 32 B ... 512 MiB. The bench
/// binaries default to a subset for runtime reasons; pass `full` for all.
[[nodiscard]] std::vector<i64> paper_vector_sizes(bool full);

/// Human-readable size ("32 B", "2 KiB", "512 MiB").
[[nodiscard]] std::string size_label(i64 bytes);

/// One cell of a best-variant sweep: which family to minimize over for a
/// (collective, nodes, size) configuration.
struct SweepQuery {
  enum class Kind {
    bine,      ///< best registered Bine variant (honours contiguous_only)
    binomial,  ///< the paper's binomial-family baseline
    sota,      ///< best non-Bine algorithm
  };
  sched::Collective coll{};
  i64 nodes = 0;
  i64 size_bytes = 0;
  Kind kind = Kind::bine;
  bool contiguous_only = false;  ///< only meaningful for Kind::bine
};

class Runner {
 public:
  /// `spread_placement`: allocate nodes through the synthetic fragmented
  /// scheduler (jobs span many groups, as observed on the real systems);
  /// otherwise ranks map to consecutive nodes.
  Runner(net::SystemProfile profile, bool spread_placement = true, u64 seed = 42);

  [[nodiscard]] const net::SystemProfile& profile() const { return profile_; }

  /// The active fault model: the profile's spec, else one parsed from the
  /// BINE_FAULT_SPEC environment variable at construction. Null when absent
  /// OR trivial -- the fault-free path never consults the layer, which keeps
  /// it bit-identical to a build without one. Non-null implies validated.
  [[nodiscard]] const fault::FaultSpec* fault_spec() const { return fault_.get(); }

  /// Communicator size of a cell allocated `nodes` nodes: `nodes` on the
  /// healthy machine, the surviving-rank count when the fault spec marks
  /// ranks failed (graceful degradation: collectives rebuild over survivors
  /// via a dense rank remap). Throws when fewer than 2 ranks survive.
  [[nodiscard]] i64 effective_ranks(i64 nodes) const;

  /// Rank-count admission for one algorithm at `nodes` allocated nodes,
  /// evaluated against the *effective* communicator size. The gate the
  /// best-of selectors and sweeps use to skip inapplicable candidates.
  [[nodiscard]] bool applicable(const coll::AlgorithmEntry& algo, i64 nodes) const {
    return !algo.pow2_only || is_pow2(effective_ranks(nodes));
  }

  /// Degradation substitutions recorded so far: one deduplicated note per
  /// (algorithm, p) whose generator cannot shrink to the surviving rank
  /// count and was demoted to the heuristic recommendation -- the "clear
  /// report instead of a crash" contract. Empty on the healthy machine.
  [[nodiscard]] std::vector<std::string> degrade_notes() const;

  /// Simulate one algorithm; `size_bytes` is the collective's vector size.
  /// Uses the schedule cache (below) unless disabled.
  [[nodiscard]] RunResult run(sched::Collective coll, const coll::AlgorithmEntry& algo,
                              i64 nodes, i64 size_bytes);

  /// The always-fresh path: generate, lower, simulate -- no schedule cache.
  /// Retained as the parity oracle; must agree bit-exactly with `run`.
  [[nodiscard]] RunResult run_uncached(sched::Collective coll,
                                       const coll::AlgorithmEntry& algo, i64 nodes,
                                       i64 size_bytes);

  /// Simulate one algorithm across a whole size axis in a single structural
  /// pass (net::simulate_sizes): results[s] is bit-identical to
  /// run(coll, algo, nodes, sizes_bytes[s]). Falls back to per-size run()
  /// when the cell has no usable size-free entry (cache off or demoted) or
  /// when fault demotion resolves different algorithms at different sizes.
  [[nodiscard]] std::vector<RunResult> run_sizes(sched::Collective coll,
                                                 const coll::AlgorithmEntry& algo,
                                                 i64 nodes,
                                                 std::span<const i64> sizes_bytes);

  /// Simulate a whole candidate pool of one cell across the size axis in ONE
  /// structural pass (net::simulate_candidates through the process-wide
  /// net::process_route_memo()): the union of the pool's send pairs is
  /// materialized once and every candidate streams through shared lane
  /// tiles. results[k][s] is bit-identical to
  /// run(coll, *algos[k], nodes, sizes_bytes[s]); algos[k] == nullptr marks
  /// an inapplicable pool slot and yields an empty results[k]. Candidates
  /// without a usable size-free entry (cache off, demoted, or size-dependent
  /// fault demotion) fall back per candidate exactly like run_sizes.
  [[nodiscard]] std::vector<std::vector<RunResult>> run_candidates(
      sched::Collective coll, std::span<const coll::AlgorithmEntry* const> algos,
      i64 nodes, std::span<const i64> sizes_bytes);

  /// Compiled execution plan for one cell, pulled from the schedule cache
  /// when possible (so verify-heavy runs skip generation on a hit, exactly
  /// like the simulation path). Callers hand the plan to runtime::execute.
  [[nodiscard]] runtime::ExecPlan exec_plan(sched::Collective coll,
                                            const coll::AlgorithmEntry& algo, i64 nodes,
                                            i64 size_bytes, bool* used_cache = nullptr,
                                            i64 elem_size = 4);

  /// Execute one cell over deterministic synthetic inputs with the compiled
  /// executor and verify the collective's postcondition. `threads` drives the
  /// executor's phase fan-out (0 = the executor's size-gated auto default,
  /// 1 sequential). Never throws on semantic violations -- they come back as
  /// a not-ok VerifiedRun.
  /// `elem`/`op` choose the element type and reduction operator.
  /// Floating-point inputs are small exact integers, so f32/f64 sum/min/max
  /// are order-independent and bit-deterministic; float x prod has no such
  /// domain and comes back not-ok with an actionable error.
  [[nodiscard]] VerifiedRun run_verified(sched::Collective coll,
                                         const coll::AlgorithmEntry& algo, i64 nodes,
                                         i64 size_bytes, i64 threads = 0,
                                         runtime::ElemType elem = runtime::ElemType::u32,
                                         runtime::ReduceOp op = runtime::ReduceOp::sum);

  /// Verified execution as a sweep mode: evaluate every query, fanning cells
  /// out over at most `threads` workers like `sweep`, each cell executed
  /// with `exec_threads` executor threads. Results are index-addressed and
  /// byte-identical -- digests included -- for any worker count.
  [[nodiscard]] std::vector<VerifiedRun> sweep_verified(
      const std::vector<VerifiedQuery>& queries, i64 threads = 0,
      i64 exec_threads = 0);

  /// Toggle the size-independent schedule cache (default: on, unless the
  /// BINE_SCHED_CACHE environment variable is set to 0). The cached and
  /// uncached paths are bit-exact; the toggle exists for benchmarking and
  /// the parity suite.
  void set_schedule_cache(bool enabled) { use_schedule_cache_ = enabled; }
  [[nodiscard]] bool schedule_cache_enabled() const { return use_schedule_cache_; }
  [[nodiscard]] sched::ScheduleCache::Stats schedule_cache_stats() const {
    return sched_cache_->stats();
  }
  /// Detach this runner from the process-wide schedule cache onto a private
  /// one (cold-start benchmarking, stats isolation in tests).
  void use_private_schedule_cache();

  /// Torus shape handed to the Appendix D generators (empty = near-cubic).
  std::vector<i64> torus_dims;

  /// Build (or touch) the machine instance for `nodes` now. The sweep engine
  /// warms every cell's topology/route table serially before fanning work
  /// out, so workers only compete for cells, never for the build lock.
  void prewarm(i64 nodes) { (void)sized_for(nodes); }

  /// Best (min simulated time) over a set of algorithm names; returns the
  /// winning name alongside. Skips algorithms that reject the rank count.
  [[nodiscard]] std::pair<std::string, RunResult> best_of(
      sched::Collective coll, const std::vector<std::string>& names, i64 nodes,
      i64 size_bytes);

  /// Best over all registered Bine variants of the collective. When
  /// `contiguous_only`, restricts to the strategies that send contiguous
  /// data, matching the fair-comparison setup of Sec. 5.1.1.
  [[nodiscard]] std::pair<std::string, RunResult> best_bine(sched::Collective coll,
                                                            i64 nodes, i64 size_bytes,
                                                            bool contiguous_only);

  /// The binomial-family baseline for a collective, as the paper frames it
  /// ("Comparison with Binomial Trees"): trees for rooted collectives,
  /// recursive doubling/halving butterflies for the rootless ones, Bruck for
  /// alltoall.
  [[nodiscard]] std::pair<std::string, RunResult> best_binomial(sched::Collective coll,
                                                                i64 nodes, i64 size_bytes);

  /// Algorithm name lists behind the best_* selectors, exposed so the
  /// batched sweep evaluates exactly the same candidates in the same order.
  [[nodiscard]] std::vector<std::string> bine_names(sched::Collective coll,
                                                    bool contiguous_only) const;
  [[nodiscard]] std::vector<std::string> binomial_names(sched::Collective coll) const;
  /// All non-Bine algorithms registered for the collective.
  [[nodiscard]] std::vector<std::string> sota_names(sched::Collective coll) const;

  /// Evaluate every query, fanning independent *cells* out over at most
  /// `threads` workers (<= 0 = harness::default_thread_count()). All queries
  /// sharing one (collective, nodes, size) cell -- e.g. the bine / binomial /
  /// sota rows of one table column -- are batched into a single work item
  /// that evaluates each candidate algorithm exactly once, instead of once
  /// per query kind. Results are index-addressed (results[i] answers
  /// queries[i]) and every cell is a pure function of its query, so the
  /// returned vector -- and anything printed from it in order -- is
  /// byte-identical for any thread count, with or without the schedule
  /// cache.
  ///
  /// `cancel`, when given, stops new cells from starting once fired
  /// (parallel_for's drain semantics); queries whose cell never ran come
  /// back default-constructed -- an empty algorithm name marks them.
  [[nodiscard]] std::vector<std::pair<std::string, RunResult>> sweep(
      const std::vector<SweepQuery>& queries, i64 threads = 0,
      const CancelToken* cancel = nullptr);

 private:
  struct Sized {
    std::unique_ptr<net::Topology> topo;
    net::Placement placement;
    std::unique_ptr<net::RouteCache> routes;  ///< compiled per (topo, placement)
  };
  /// Thread-safe: builds (or returns) the machine instance for `nodes`. The
  /// returned reference is stable (map nodes never move).
  Sized& sized_for(i64 nodes);

  /// Simulation config for one cell (shared by cached and uncached paths).
  /// `elem_size` defaults to the paper's 32-bit integers; the typed verified
  /// path passes the element type's width instead.
  [[nodiscard]] coll::Config cell_config(i64 nodes, i64 size_bytes,
                                         i64 elem_size = 4) const;
  template <typename T>
  [[nodiscard]] VerifiedRun run_verified_impl(sched::Collective coll,
                                              const coll::AlgorithmEntry& algo,
                                              i64 nodes, i64 size_bytes, i64 threads,
                                              runtime::ReduceOp op);
  [[nodiscard]] RunResult simulate_lowered(const sched::CompiledSchedule& lowered,
                                           Sized& sized) const;

  /// Size-free entry for one cell, or nullptr when the cache is off or the
  /// entry was demoted (callers fall back to fresh generation).
  [[nodiscard]] std::shared_ptr<const sched::SizeFreeSchedule> cached_entry(
      sched::Collective coll, const coll::AlgorithmEntry& algo, const coll::Config& cfg);

  /// Graceful-degradation resolution: `algo` itself on the healthy machine
  /// or when it admits the surviving rank count; otherwise the heuristic
  /// recommendation for the cell, with a deduplicated note recorded.
  [[nodiscard]] const coll::AlgorithmEntry& resolve_algorithm(
      sched::Collective coll, const coll::AlgorithmEntry& algo, i64 p_effective,
      i64 size_bytes);

  net::SystemProfile profile_;
  bool spread_placement_;
  u64 seed_;
  std::shared_ptr<const fault::FaultSpec> fault_;  ///< null or non-trivial
  std::mutex cache_mutex_;
  std::map<i64, Sized> cache_;
  mutable std::mutex notes_mutex_;
  std::vector<std::string> degrade_notes_;
  bool use_schedule_cache_ = true;
  sched::ScheduleCache* sched_cache_ = &sched::process_schedule_cache();
  std::unique_ptr<sched::ScheduleCache> private_cache_;
};

}  // namespace bine::harness
