#include "harness/tables.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bine::harness {

double geomean(const std::vector<double>& ratios) {
  if (ratios.empty()) return 0;
  double log_sum = 0;
  for (const double r : ratios) log_sum += std::log(r + 1.0);
  return std::exp(log_sum / static_cast<double>(ratios.size())) - 1.0;
}

void WinLoss::add(double t_bine, double t_other, i64 g_bine, i64 g_other) {
  const double tie_band = 0.01;
  if (t_bine < t_other * (1 - tie_band)) {
    ++wins;
    gains.push_back(t_other / t_bine - 1.0);
  } else if (t_other < t_bine * (1 - tie_band)) {
    ++losses;
    drops.push_back(t_bine / t_other - 1.0);
  } else {
    ++ties;
  }
  if (g_other > 0)
    traffic_red.push_back(1.0 - static_cast<double>(g_bine) / static_cast<double>(g_other));
}

void WinLoss::print_header(const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("%-14s %6s %8s %8s %6s %8s %8s %10s %10s\n", "Coll.", "%Win", "AvgGain",
              "MaxGain", "%Loss", "AvgDrop", "MaxDrop", "AvgTrafRed", "MaxTrafRed");
}

std::string WinLoss::row(const std::string& name) const {
  const i64 total = wins + losses + ties;
  const double win_pct = total ? 100.0 * static_cast<double>(wins) / static_cast<double>(total) : 0;
  const double loss_pct = total ? 100.0 * static_cast<double>(losses) / static_cast<double>(total) : 0;
  const double avg_gain = 100.0 * geomean(gains);
  const double max_gain = gains.empty() ? 0 : 100.0 * *std::max_element(gains.begin(), gains.end());
  const double avg_drop = 100.0 * geomean(drops);
  const double max_drop = drops.empty() ? 0 : 100.0 * *std::max_element(drops.begin(), drops.end());
  double avg_red = 0, max_red = 0;
  if (!traffic_red.empty()) {
    for (const double t : traffic_red) avg_red += t;
    avg_red = 100.0 * avg_red / static_cast<double>(traffic_red.size());
    max_red = 100.0 * *std::max_element(traffic_red.begin(), traffic_red.end());
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-14s %5.0f%% %7.0f%% %7.0f%% %5.0f%% %7.0f%% %7.0f%% %9.0f%% %9.0f%%",
                name.c_str(), win_pct, avg_gain, max_gain, loss_pct, avg_drop, max_drop,
                avg_red, max_red);
  return buf;
}

BoxStats BoxStats::of(std::vector<double> samples) {
  BoxStats b;
  b.n = static_cast<i64>(samples.size());
  if (samples.empty()) return b;
  std::sort(samples.begin(), samples.end());
  auto q = [&](double f) {
    const double pos = f * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1 - frac) + samples[hi] * frac;
  };
  b.min = samples.front();
  b.q1 = q(0.25);
  b.median = q(0.5);
  b.q3 = q(0.75);
  b.max = samples.back();
  for (const double s : samples) b.mean += s;
  b.mean /= static_cast<double>(samples.size());
  return b;
}

void BoxStats::print_header(const std::string& title, const std::string& value_name) {
  std::printf("%s\n", title.c_str());
  std::printf("%-18s %6s %8s %8s %8s %8s %8s %8s\n", "Label", "N", "Min", "Q1", "Median",
              "Q3", "Max", ("Mean " + value_name).c_str());
}

std::string BoxStats::row(const std::string& label) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-18s %6lld %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%",
                label.c_str(), static_cast<long long>(n), min, q1, median, q3, max, mean);
  return buf;
}

char algorithm_letter(const std::string& name) {
  if (name.find("ring") != std::string::npos) return 'R';
  if (name.find("bruck") != std::string::npos) return 'B';
  if (name.find("swing") != std::string::npos) return 'S';
  if (name.find("linear") != std::string::npos || name.find("pairwise") != std::string::npos)
    return 'L';
  if (name.find("scatter_allgather") != std::string::npos ||
      name.find("rs_gather") != std::string::npos)
    return 'G';
  if (name.find("rabenseifner") != std::string::npos) return 'F';
  return 'N';  // binomial / recursive doubling / recursive halving family
}

void print_heatmap(const std::string& title, const std::vector<std::string>& col_labels,
                   const std::vector<std::string>& row_labels,
                   const std::vector<std::vector<HeatCell>>& cells) {
  std::printf("%s\n", title.c_str());
  std::printf("%-10s", "");
  for (const auto& c : col_labels) std::printf(" %8s", c.c_str());
  std::printf("\n");
  for (size_t r = 0; r < cells.size(); ++r) {
    std::printf("%-10s", row_labels[r].c_str());
    for (const HeatCell& cell : cells[r]) {
      if (cell.bine_best) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.2f", cell.ratio);
        std::printf(" %8s", buf);
      } else {
        std::printf(" %8c", algorithm_letter(cell.best_name));
      }
    }
    std::printf("\n");
  }
  std::printf("(cells: ratio = Bine speedup over next best when Bine wins; letter = "
              "best algorithm otherwise: N=binomial/butterfly, R=ring, B=bruck, "
              "S=swing, L=linear, G=scatter-gather composite, F=rabenseifner)\n");
}

}  // namespace bine::harness
