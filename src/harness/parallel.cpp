#include "harness/parallel.hpp"

#include <cstdlib>

namespace bine::harness {

i64 default_thread_count() {
  if (const char* env = std::getenv("BINE_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<i64>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<i64>(hw) : 1;
}

}  // namespace bine::harness
