#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/types.hpp"
#include "harness/cancel.hpp"

/// Deterministic fan-out for the evaluation sweeps.
///
/// Sweep cells -- (algorithm, nodes, size) simulations -- are pure functions
/// of their inputs, so they can run on any thread in any order as long as
/// each result lands in its own slot. `parallel_for` hands indices out via an
/// atomic counter and the callers write `results[i]`, which makes the final
/// result vector (and anything printed from it afterwards) byte-identical
/// regardless of thread count.
namespace bine::harness {

/// Worker count used when a sweep passes `threads <= 0`: the BINE_THREADS
/// environment variable when set to a positive integer, else
/// hardware_concurrency, never less than 1.
[[nodiscard]] i64 default_thread_count();

/// Run fn(i) for every i in [0, n) across at most `threads` workers
/// (`threads <= 0` = default_thread_count()). Each index runs exactly once;
/// ordering across indices is unspecified. The first exception thrown by any
/// fn(i) is rethrown on the calling thread after all workers join.
///
/// `cancel`, when given, is consulted before each index is handed out: a
/// fired token makes workers stop taking new indices while every fn(i)
/// already in flight runs to completion (drain semantics -- a journaled
/// sweep persists the drained cells, so the partial result is resumable).
/// Indices never handed out simply don't run; the caller distinguishes them
/// by its own per-index result slots.
template <class Fn>
void parallel_for(i64 n, Fn&& fn, i64 threads = 0,
                  const CancelToken* cancel = nullptr) {
  if (n <= 0) return;
  if (threads <= 0) threads = default_thread_count();
  threads = std::min<i64>(threads, n);
  if (threads <= 1) {
    for (i64 i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return;
      fn(i);
    }
    return;
  }

  std::atomic<i64> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::atomic_flag error_claimed = ATOMIC_FLAG_INIT;

  auto worker = [&] {
    for (;;) {
      if (cancel != nullptr && cancel->cancelled()) return;
      const i64 i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        if (!error_claimed.test_and_set()) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  try {
    for (i64 w = 0; w < threads; ++w) pool.emplace_back(worker);
  } catch (...) {
    // Thread spawn failed (e.g. EAGAIN near the process limit): stop handing
    // out work, join what started, and surface the error instead of letting
    // joinable threads unwind into std::terminate.
    failed.store(true, std::memory_order_relaxed);
    for (std::thread& th : pool) th.join();
    throw;
  }
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace bine::harness
