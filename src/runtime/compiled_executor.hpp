#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "harness/parallel.hpp"
#include "runtime/exec_plan.hpp"
#include "runtime/executor.hpp"
#include "runtime/reduction.hpp"

/// The compiled execution engine: streams a runtime::ExecPlan (flat delivery
/// IR, exec_plan.hpp) over dense per-rank buffers.
///
/// State is three flat arrays instead of p * nblocks individually allocated
/// BlockSlots: one data buffer per rank (blocks at their dense element
/// offsets), one u64 word run per block for the contributor set, one validity
/// byte per block. A step is two phases over the plan's delivery records:
///
///   1. *stage*: copy the genuinely overlapping payload tiles (sender's
///      block data + contributor words of ids whose read cell is written
///      this step -- see ExecPlan::staged_id) into a staging buffer sized
///      once from the plan's prefix sums; this realizes the pre-step
///      snapshot semantics without per-message allocation, and most plans
///      stage nothing at all (ExecPlan::stage_bytes == 0);
///   2. *apply*: walk deliveries in receiver op order, replacing slots
///      (recv) or folding them (recv_reduce) with the duplicate-contributor
///      check done wordwise on the flat bitsets.
///
/// Results are bit-identical to execute_reference (the parity suite asserts
/// buffers, contributor sets and message accounting). With `threads > 1`
/// both phases fan out over harness::parallel_for -- phase 1 over deliveries
/// (disjoint staging slices), phase 2 over receiver runs (disjoint slots) --
/// so the output is byte-identical for any thread count.
namespace bine::runtime {

/// Vector size (bytes) below which the executor's auto thread default stays
/// sequential: parallel_for spawns and joins real threads per phase, which
/// profiling shows only pays off beyond ~1 MiB vectors (see the threaded
/// crossover recorded in BENCH_exec.json; the ROADMAP's "profile and gate a
/// threads>1 default" item).
inline constexpr i64 kExecAutoThreadBytes = i64{1} << 20;

/// The executor's thread count for `threads <= 0` (auto): the harness
/// default worker count for vectors at or beyond kExecAutoThreadBytes,
/// sequential below it. Results are bit-identical either way -- the gate is
/// purely a performance decision.
[[nodiscard]] inline i64 auto_exec_threads(i64 vector_bytes) {
  return vector_bytes >= kExecAutoThreadBytes ? harness::default_thread_count() : 1;
}

/// Flip the low bit of one element's byte representation (the executor's
/// corruption injection): a single-bit payload error, type-agnostic, that the
/// postcondition verifier is guaranteed to see as a data mismatch.
template <typename T>
inline void corrupt_low_bit(T& v) noexcept {
  unsigned char b = 0;
  std::memcpy(&b, &v, 1);
  b ^= 1u;
  std::memcpy(&v, &b, 1);
}

template <typename T>
struct CompiledExecResult {
  const ExecPlan* plan = nullptr;     ///< borrowed; must outlive the result
  std::vector<T> data;                ///< p * elems_per_rank, dense block layout
  std::vector<u64> contrib;           ///< p * nblocks * words contributor bitsets
  std::vector<std::uint8_t> valid;    ///< p * nblocks
  i64 messages = 0;
  i64 wire_bytes = 0;
  i64 stage_bytes = 0;  ///< payload bytes copied through stage buffers (plan property)

  [[nodiscard]] std::span<const T> block(Rank r, i64 b) const {
    const size_t off = static_cast<size_t>(r) * static_cast<size_t>(plan->elems_per_rank) +
                       static_cast<size_t>(plan->block_off[static_cast<size_t>(b)]);
    return {data.data() + off, static_cast<size_t>(plan->block_len(b))};
  }
  [[nodiscard]] bool is_valid(Rank r, i64 b) const {
    return valid[static_cast<size_t>(r * plan->nblocks + b)] != 0;
  }
  [[nodiscard]] std::span<const u64> contributor_words(Rank r, i64 b) const {
    const size_t off =
        static_cast<size_t>((r * plan->nblocks + b) * plan->words);
    return {contrib.data() + off, static_cast<size_t>(plan->words)};
  }
  [[nodiscard]] RankSet contributors(Rank r, i64 b) const {
    return RankSet::from_words(plan->p, contributor_words(r, b));
  }
};

class CompiledExecutor {
 public:
  explicit CompiledExecutor(const ExecPlan& plan) : plan_(&plan) {}
  /// Results borrow the plan (CompiledExecResult::plan), so binding a
  /// temporary would dangle the moment the full expression ends.
  explicit CompiledExecutor(ExecPlan&&) = delete;

  /// Run the plan over the given inputs. `threads <= 0` resolves through the
  /// size-gated auto default (sequential below kExecAutoThreadBytes);
  /// `threads == 1` is fully sequential; otherwise phases fan out over
  /// harness::parallel_for. Throws std::runtime_error on semantic
  /// violations, like the reference.
  ///
  /// `faults`, when non-null with exec injection enabled, is the fault
  /// layer's delivery hook: a delivery whose seeded (step, plan index) hash
  /// samples below drop_fraction is silently discarded (the receiver's slot
  /// keeps its pre-step content -- later ops either read stale data the
  /// verifier flags or hit an invalid slot and throw), and one below
  /// corrupt_fraction lands with the low bit of its first payload element
  /// flipped. Decisions are keyed by plan indices, so injection is
  /// bit-deterministic for any thread count; harness::Runner::run_verified
  /// provably reports the damage as a not-ok VerifiedRun.
  template <typename T>
  [[nodiscard]] CompiledExecResult<T> run(ReduceOp op,
                                          std::span<const std::vector<T>> inputs,
                                          i64 threads = 0,
                                          const fault::FaultSpec* faults = nullptr) const {
    const ExecPlan& pl = *plan_;
    // Only a spec with injection probabilities takes any branch below; a
    // null/degradation-only spec leaves every step bit-identical.
    const fault::FaultSpec* inject =
        (faults != nullptr && faults->has_exec_injection()) ? faults : nullptr;
    if (threads <= 0)
      threads = auto_exec_threads(pl.elem_count * static_cast<i64>(sizeof(T)));
    if (static_cast<i64>(inputs.size()) != pl.p)
      throw std::runtime_error("executor: inputs.size() != p");
    for (const auto& in : inputs)
      if (static_cast<i64>(in.size()) < pl.elem_count)
        throw std::runtime_error("executor: input vector shorter than elem_count");

    CompiledExecResult<T> res;
    res.plan = &pl;
    res.data.assign(static_cast<size_t>(pl.p) * static_cast<size_t>(pl.elems_per_rank),
                    T{});
    res.contrib.assign(static_cast<size_t>(pl.p * pl.nblocks * pl.words), 0);
    res.valid.assign(static_cast<size_t>(pl.p * pl.nblocks), 0);
    init_state(pl, inputs, res);

    std::vector<T> stage(static_cast<size_t>(pl.max_step_elems));
    std::vector<u64> stage_contrib(
        static_cast<size_t>(pl.max_step_blocks * pl.words));

    // parallel_for spawns and joins real threads per call, so fanning a
    // phase out only pays off when the step moves enough elements to
    // amortize the spawn cost; below the grain every phase runs inline.
    constexpr i64 kParallelGrainElems = i64{1} << 15;
    bool step_parallel = false;
    const auto for_range = [&](std::uint32_t n, auto&& fn) {
      if (step_parallel && n > 1) {
        harness::parallel_for(static_cast<i64>(n), fn, threads);
      } else {
        for (i64 i = 0; i < static_cast<i64>(n); ++i) fn(i);
      }
    };

    for (size_t t = 0; t < pl.steps; ++t) {
      const std::uint32_t ob = pl.step_begin[t], oe = pl.step_begin[t + 1];
      if (ob == oe) continue;
      step_parallel =
          threads > 1 && pl.elem_prefix[pl.block_begin[oe]] -
                                 pl.elem_prefix[pl.block_begin[ob]] >=
                             kParallelGrainElems;

      // Phase 1: stage the payloads of non-direct deliveries' overlapping
      // tiles from pre-step state (direct deliveries -- and the in-place
      // tiles of partially overlapping ones -- read the sender's live buffer
      // in phase 2: their cells are untouched this step, so live ==
      // pre-step). Disjoint staging slices per delivery; exceptions
      // propagate through parallel_for exactly as a sequential throw would.
      for_range(oe - ob, [&](i64 jj) {
        const std::uint32_t j = ob + static_cast<std::uint32_t>(jj);
        if (pl.direct[j] || pl.fused[j]) return;
        const i64 sender = pl.from[j];
        const T* sdata = res.data.data() +
                         static_cast<size_t>(sender) * static_cast<size_t>(pl.elems_per_rank);
        i64 elem_off = pl.stage_elem_off[j];
        i64 block_off = pl.stage_block_off[j];
        for (std::uint32_t k = pl.block_begin[j]; k < pl.block_begin[j + 1]; ++k) {
          if (!pl.staged_id[k]) continue;  // in-place tile: validated in phase 2
          const i64 id = pl.ids[k];
          if (!res.valid[static_cast<size_t>(sender * pl.nblocks + id)])
            throw std::runtime_error("step " + std::to_string(t) + ": rank " +
                                     std::to_string(sender) + " sends invalid block " +
                                     std::to_string(id));
          const i64 len = pl.block_len(id);
          std::copy_n(sdata + pl.block_off[static_cast<size_t>(id)], len,
                      stage.data() + elem_off);
          std::copy_n(
              res.contrib.data() + static_cast<size_t>((sender * pl.nblocks + id) * pl.words),
              static_cast<size_t>(pl.words),
              stage_contrib.data() + static_cast<size_t>(block_off) * static_cast<size_t>(pl.words));
          elem_off += len;
          ++block_off;
        }
      });

      // Phase 2: apply deliveries, receiver runs in parallel, op order
      // within a run (a rank's deliveries must fold in its op order).
      const std::uint32_t rb = pl.step_run_begin[t], re = pl.step_run_begin[t + 1];
      for_range(re - rb, [&](i64 rr) {
        const std::uint32_t run = rb + static_cast<std::uint32_t>(rr);
        for (std::uint32_t j = pl.run_begin[run]; j < pl.run_begin[run + 1]; ++j) {
          if (pl.fused[j]) continue;  // applied pairwise in the fused pass
          if (inject && inject->drop_delivery(t, j)) continue;  // lost on the wire
          bool corrupt_pending = inject && inject->corrupt_delivery(t, j);
          const i64 r = pl.to[j];
          const i64 sender = pl.from[j];
          const bool is_direct = pl.direct[j] != 0;
          T* rdata = res.data.data() +
                     static_cast<size_t>(r) * static_cast<size_t>(pl.elems_per_rank);
          const T* sdata = res.data.data() +
                           static_cast<size_t>(sender) * static_cast<size_t>(pl.elems_per_rank);
          i64 elem_off = pl.stage_elem_off[j];
          i64 block_off = pl.stage_block_off[j];
          for (std::uint32_t k = pl.block_begin[j]; k < pl.block_begin[j + 1]; ++k) {
            const i64 id = pl.ids[k];
            const i64 len = pl.block_len(id);
            const size_t slot = static_cast<size_t>(r * pl.nblocks + id);
            const size_t sslot = static_cast<size_t>(sender * pl.nblocks + id);
            // In-place sources: the whole delivery (direct) or this id's
            // pair tile (non-direct, unmarked) -- either way the sender's
            // cell is untouched this step, so its live buffer IS the
            // pre-step snapshot and nothing was staged for it.
            const bool in_place = is_direct || !pl.staged_id[k];
            if (in_place && !res.valid[sslot])
              throw std::runtime_error("step " + std::to_string(t) + ": rank " +
                                       std::to_string(sender) + " sends invalid block " +
                                       std::to_string(id));
            T* dst = rdata + pl.block_off[static_cast<size_t>(id)];
            const T* src = in_place ? sdata + pl.block_off[static_cast<size_t>(id)]
                                    : stage.data() + elem_off;
            u64* dst_c = res.contrib.data() + slot * static_cast<size_t>(pl.words);
            const u64* src_c =
                in_place
                    ? res.contrib.data() + sslot * static_cast<size_t>(pl.words)
                    : stage_contrib.data() +
                          static_cast<size_t>(block_off) * static_cast<size_t>(pl.words);
            if (!pl.reduce[j]) {
              std::copy_n(src, len, dst);
              std::copy_n(src_c, static_cast<size_t>(pl.words), dst_c);
              res.valid[slot] = 1;
            } else {
              if (!res.valid[slot])
                throw std::runtime_error("step " + std::to_string(t) + ": rank " +
                                         std::to_string(r) + " reduce into invalid block " +
                                         std::to_string(id));
              for (i64 w = 0; w < pl.words; ++w)
                if (dst_c[w] & src_c[w])
                  throw std::runtime_error("step " + std::to_string(t) + ": rank " +
                                           std::to_string(r) +
                                           " would fold duplicate contributions into block " +
                                           std::to_string(id));
              reduce_into<T>(op, {dst, static_cast<size_t>(len)},
                             {src, static_cast<size_t>(len)});
              for (i64 w = 0; w < pl.words; ++w) dst_c[w] |= src_c[w];
            }
            if (corrupt_pending && len > 0) {  // one-bit payload error
              corrupt_low_bit(dst[0]);
              corrupt_pending = false;
            }
            if (!in_place) {  // stage slices hold staged tiles only
              elem_off += len;
              ++block_off;
            }
          }
        }
      });

      // Phase 2b: fused symmetric exchanges -- both directions of a mutual
      // recv_reduce pair in one pass over cells nobody else touches, so this
      // runs in parallel with itself (and is order-independent w.r.t. the
      // runs above) without staging anything.
      const std::uint32_t fb = pl.step_fused_begin[t], fe = pl.step_fused_begin[t + 1];
      for_range(fe - fb, [&](i64 pp) {
        const std::uint32_t pair = fb + static_cast<std::uint32_t>(pp);
        const std::uint32_t j1 = pl.fused_pair[2 * pair];
        const std::uint32_t j2 = pl.fused_pair[2 * pair + 1];
        // Injection keys off the pair's first delivery: dropping loses the
        // whole symmetric exchange (neither side folds), corruption lands on
        // the j1 receiver's side.
        if (inject && inject->drop_delivery(t, j1)) return;
        bool corrupt_pending = inject && inject->corrupt_delivery(t, j1);
        const i64 r = pl.to[j1];
        const i64 s = pl.to[j2];
        T* rdata = res.data.data() +
                   static_cast<size_t>(r) * static_cast<size_t>(pl.elems_per_rank);
        T* sdata = res.data.data() +
                   static_cast<size_t>(s) * static_cast<size_t>(pl.elems_per_rank);
        for (std::uint32_t k = pl.block_begin[j1]; k < pl.block_begin[j1 + 1]; ++k) {
          const i64 id = pl.ids[k];
          const i64 len = pl.block_len(id);
          const size_t rslot = static_cast<size_t>(r * pl.nblocks + id);
          const size_t sslot = static_cast<size_t>(s * pl.nblocks + id);
          for (const size_t slot : {rslot, sslot})
            if (!res.valid[slot])
              throw std::runtime_error(
                  "step " + std::to_string(t) + ": rank " +
                  std::to_string(slot == rslot ? r : s) +
                  (slot == rslot ? " reduce into invalid block " : " sends invalid block ") +
                  std::to_string(id));
          u64* rc = res.contrib.data() + rslot * static_cast<size_t>(pl.words);
          u64* sc = res.contrib.data() + sslot * static_cast<size_t>(pl.words);
          for (i64 w = 0; w < pl.words; ++w)
            if (rc[w] & sc[w])
              throw std::runtime_error("step " + std::to_string(t) + ": rank " +
                                       std::to_string(r) +
                                       " would fold duplicate contributions into block " +
                                       std::to_string(id));
          const size_t off = static_cast<size_t>(pl.block_off[static_cast<size_t>(id)]);
          reduce_symmetric<T>(op, {rdata + off, static_cast<size_t>(len)},
                              {sdata + off, static_cast<size_t>(len)});
          if (corrupt_pending && len > 0) {
            corrupt_low_bit(rdata[off]);
            corrupt_pending = false;
          }
          for (i64 w = 0; w < pl.words; ++w) {
            const u64 merged = rc[w] | sc[w];
            rc[w] = merged;
            sc[w] = merged;
          }
        }
      });
    }

    // One delivery per matched send (validate() guarantees the 1:1 pairing
    // with equal bytes), so send-side accounting falls out of the plan.
    res.messages = static_cast<i64>(pl.num_ops());
    res.wire_bytes = pl.total_wire_bytes;
    res.stage_bytes = pl.stage_bytes;
    return res;
  }

 private:
  template <typename T>
  static void init_state(const ExecPlan& pl, std::span<const std::vector<T>> inputs,
                         CompiledExecResult<T>& res) {
    using sched::Collective;
    const auto mark = [&](Rank holder, i64 id, Rank contributor) {
      const size_t slot = static_cast<size_t>(holder * pl.nblocks + id);
      res.valid[slot] = 1;
      res.contrib[slot * static_cast<size_t>(pl.words) +
                  static_cast<size_t>(contributor) / 64] |=
          u64{1} << (static_cast<size_t>(contributor) % 64);
    };
    const auto rank_data = [&](Rank r) {
      return res.data.data() +
             static_cast<size_t>(r) * static_cast<size_t>(pl.elems_per_rank);
    };
    // For per_vector space the dense layout IS the vector layout, so a
    // rank's initial holdings are one contiguous copy of (a slice of) its
    // input; for pairwise space rank r's p send blocks land contiguously at
    // block_off[r*p].
    switch (pl.coll) {
      case Collective::bcast:
      case Collective::scatter:
        std::copy_n(inputs[static_cast<size_t>(pl.root)].data(), pl.elem_count,
                    rank_data(pl.root));
        for (i64 b = 0; b < pl.nblocks; ++b) mark(pl.root, b, pl.root);
        break;
      case Collective::reduce:
      case Collective::allreduce:
      case Collective::reduce_scatter:
        for (Rank r = 0; r < pl.p; ++r) {
          std::copy_n(inputs[static_cast<size_t>(r)].data(), pl.elem_count, rank_data(r));
          for (i64 b = 0; b < pl.nblocks; ++b) mark(r, b, r);
        }
        break;
      case Collective::gather:
      case Collective::allgather:
        for (Rank r = 0; r < pl.p; ++r) {
          const i64 off = pl.block_off[static_cast<size_t>(r)];
          std::copy_n(inputs[static_cast<size_t>(r)].data() + off, pl.block_len(r),
                      rank_data(r) + off);
          mark(r, r, r);
        }
        break;
      case Collective::alltoall:
        for (Rank r = 0; r < pl.p; ++r) {
          std::copy_n(inputs[static_cast<size_t>(r)].data(), pl.elem_count,
                      rank_data(r) + pl.block_off[static_cast<size_t>(r * pl.p)]);
          for (i64 d = 0; d < pl.p; ++d) mark(r, r * pl.p + d, r);
        }
        break;
    }
  }

  const ExecPlan* plan_;
};

/// Convenience wrapper mirroring net::simulate's compiled entry point.
template <typename T>
[[nodiscard]] CompiledExecResult<T> execute(const ExecPlan& plan, ReduceOp op,
                                            std::span<const std::vector<T>> inputs,
                                            i64 threads = 0,
                                            const fault::FaultSpec* faults = nullptr) {
  return CompiledExecutor(plan).run<T>(op, inputs, threads, faults);
}

/// The result aliases the plan; a temporary plan would dangle before the
/// first accessor runs. Keep the plan in a named variable.
template <typename T>
CompiledExecResult<T> execute(ExecPlan&&, ReduceOp, std::span<const std::vector<T>>,
                              i64 = 0, const fault::FaultSpec* = nullptr) = delete;

}  // namespace bine::runtime
