#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sched/schedule.hpp"
#include "sched/schedule_cache.hpp"

/// Flat execution IR: the runtime analogue of sched::CompiledSchedule.
///
/// The executor's work is entirely delivery-driven: within a synchronized
/// step every send reads the sender's *pre-step* state, so a message's
/// payload is fully determined by (sender, block ids) -- all sends a rank
/// issues in one step read identical state, and `Schedule::validate()`
/// guarantees each send is matched by exactly one receive with the same
/// block set. `ExecPlan` therefore keeps exactly one record per *delivery*
/// (receive-type op), in the canonical step-major / receiver-grouped order
/// the nested reference executor applies them in:
///
///   * per delivery: receiving rank, sending rank, reduce flag, wire bytes,
///     and a CSR slice of expanded block ids;
///   * per block id: a dense element offset (`block_off`), so each rank's
///     state is ONE flat buffer instead of per-slot vectors, and contributor
///     sets are fixed-width bitset word runs in one flat array;
///   * per step: op and receiver-run CSR ranges, plus staging prefix sums
///     (`elem_prefix`) sized once at lowering time, so execution performs no
///     per-step allocation at all.
///
/// Columns split along the size axis exactly like CompiledSchedule's:
/// everything except byte/element arithmetic is a pure function of schedule
/// *structure*, so those columns are exposed as read-only spans. On the
/// `lower` path they point at the plan's own storage; on the
/// `from_size_free` path the delivery stream aliases the cache entry's
/// execution overlay directly and the derived structural columns alias an
/// `ExecSkeleton` -- the finalized, size-free dataflow analysis (receiver
/// runs, zero-copy direct marks, fused symmetric pairs, staging block
/// offsets) built ONCE per entry and cached on it, so a cache hit pays only
/// for the size-dependent columns (`op_bytes`, `block_off`, `elem_prefix`,
/// `stage_elem_off`). Because spans may alias `own`, an ExecPlan is movable
/// but not copyable.
///
/// Built two ways, bit-identically (the parity tests assert it):
///   * `lower(Schedule)` -- validate + flatten the nested representation
///     (the uncached oracle-side path);
///   * `from_size_free(entry, ...)` -- re-materialize from the execution
///     overlay of a cached sched::SizeFreeSchedule, which is how
///     harness::Runner's verify path skips generation entirely on a
///     schedule-cache hit.
namespace bine::runtime {

/// The size-invariant finalized structure of one delivery stream: expanded
/// block ids plus every output of the per-step dataflow analysis that does
/// not touch element counts. Cached on the schedule-cache entry
/// (SizeFreeSchedule::derived) so `from_size_free` re-runs none of it on a
/// hit -- the execution analogue of resolve_into sharing the size-invariant
/// simulation columns.
struct ExecSkeleton {
  // Expanded delivery payloads (CSR into `ids`), from the entry's ranges.
  std::vector<std::uint32_t> block_begin;
  std::vector<i64> ids;
  // Dataflow analysis outputs (see ExecPlan field docs).
  std::vector<std::uint32_t> run_begin;
  std::vector<std::uint32_t> step_run_begin;
  std::vector<std::uint8_t> direct;
  std::vector<std::uint8_t> fused;
  std::vector<std::uint32_t> fused_pair;
  std::vector<std::uint32_t> step_fused_begin;
  /// Pair-tiling mask (see ExecPlan::staged_id): one byte per `ids` entry.
  std::vector<std::uint8_t> staged_id;
  std::vector<i64> stage_block_off;
  i64 max_step_blocks = 0;

  /// The entry's skeleton, built and cached on first use (thread-safe).
  [[nodiscard]] static std::shared_ptr<const ExecSkeleton> of(
      const sched::SizeFreeSchedule& sf);
};

struct ExecPlan {
  sched::Collective coll{};
  sched::BlockSpace space = sched::BlockSpace::per_vector;
  i64 p = 0;
  i64 nblocks = 0;
  i64 elem_count = 0;
  i64 elem_size = 0;
  Rank root = 0;
  size_t steps = 0;

  // One record per delivery (recv or recv_reduce), step-major,
  // receiver-grouped, receiver op order preserved. Size-invariant: spans
  // into `own` (lower) or the cache entry / its skeleton (from_size_free).
  std::span<const std::uint32_t> step_begin;    ///< steps+1 CSR over deliveries
  std::span<const std::int32_t> to;             ///< receiving rank
  std::span<const std::int32_t> from;           ///< sending rank
  std::span<const std::uint8_t> reduce;         ///< 1 = fold with the reduce op
  std::span<const std::uint32_t> block_begin;   ///< nops+1 CSR into `ids`
  std::span<const i64> ids;                     ///< expanded logical block ids
  std::span<const std::uint32_t> run_begin;     ///< receiver-run CSR over deliveries
  std::span<const std::uint32_t> step_run_begin;///< steps+1 CSR over runs
  /// Deliveries whose read cells (sender, id) are written by no delivery of
  /// the same step: their payload IS the sender's live buffer, so the
  /// executor skips staging them (zero-copy apply). Trees, scatter/allgather
  /// composites, rings and recursive halving are direct almost everywhere;
  /// only full-vector butterfly exchanges (recursive doubling) still stage.
  std::span<const std::uint8_t> direct;
  /// Symmetric-exchange fusion: delivery pairs (j1 = r<-s, j2 = s<-r), both
  /// recv_reduce over the identical id list, whose cells no other delivery
  /// of the step touches. The executor computes `a op b` once and writes
  /// both sides (reduce_symmetric), so these -- the full-vector butterfly
  /// exchanges of recursive doubling -- never stage either. `fused[j]` marks
  /// members; `fused_pair` lists each pair once (j1 then j2), with
  /// `step_fused_begin` the steps+1 CSR in pairs.
  std::span<const std::uint8_t> fused;
  std::span<const std::uint32_t> fused_pair;
  std::span<const std::uint32_t> step_fused_begin;
  /// Pair-tiling: the per-id refinement of `direct`. For a non-direct,
  /// non-fused delivery, staged_id[k] (k indexing `ids`) marks the ids whose
  /// read cell (from, ids[k]) IS written by some delivery of the same step --
  /// only those genuinely overlapping payloads stage. Maximal runs of equal
  /// mask decompose the delivery into disjoint source/target tile pairs; the
  /// unmarked tiles read the sender's live buffer in place, exactly like a
  /// direct delivery (per-cell data, contributor words and validity bytes are
  /// disjoint per (rank, id), so in-place tiles race with nothing phase 2
  /// writes). All-zero across direct and fused deliveries.
  std::span<const std::uint8_t> staged_id;
  /// Staging offsets of non-direct deliveries (blocks within the step's
  /// stage buffer, counting only staged_id-marked ids); unused for direct
  /// and fused ones.
  std::span<const i64> stage_block_off;

  // Size-dependent columns: always materialized per plan.
  std::vector<i64> op_bytes;                ///< wire bytes (accounting)
  std::vector<i64> block_off;               ///< nblocks+1 dense element offsets
  std::vector<i64> elem_prefix;             ///< ids.size()+1 cumulative elements
  std::vector<i64> stage_elem_off;          ///< staging offsets (elements)
  i64 elems_per_rank = 0;                   ///< block_off.back()
  i64 words = 0;                            ///< u64 words per contributor set
  i64 max_step_elems = 0;                   ///< staging buffer size (elements)
  i64 max_step_blocks = 0;                  ///< staging buffer size (blocks)
  i64 total_wire_bytes = 0;
  /// Total payload bytes one execution copies through stage buffers (sum over
  /// steps of staged elements x elem_size; contributor words excluded). A
  /// static plan property: 0 means the plan executes fully zero-copy --
  /// every delivery lands direct, fused, or through in-place tiles.
  i64 stage_bytes = 0;

  ExecPlan() = default;
  ExecPlan(ExecPlan&&) noexcept = default;
  ExecPlan& operator=(ExecPlan&&) noexcept = default;
  ExecPlan(const ExecPlan&) = delete;
  ExecPlan& operator=(const ExecPlan&) = delete;

  [[nodiscard]] size_t num_ops() const noexcept { return to.size(); }
  [[nodiscard]] i64 block_len(i64 id) const noexcept {
    return block_off[static_cast<size_t>(id) + 1] - block_off[static_cast<size_t>(id)];
  }

  /// Validate `s` and flatten it. Throws std::runtime_error on coarse-mode
  /// or structurally invalid schedules (the same contract execute_reference
  /// enforces at run time).
  [[nodiscard]] static ExecPlan lower(const sched::Schedule& s);

  /// Re-materialize from a cached entry's execution overlay for a concrete
  /// vector config. `sf` must be size_independent; `coll`/`root` come from
  /// the cache key (the entry itself is keyed, not self-describing). The
  /// plan aliases the entry's columns and cached skeleton, keeping both
  /// alive through `keepalive`/`skeleton`.
  [[nodiscard]] static ExecPlan from_size_free(
      std::shared_ptr<const sched::SizeFreeSchedule> sf, sched::Collective coll,
      Rank root, i64 elem_count, i64 elem_size);

  /// Owned backing storage for the `lower` path's delivery stream
  /// (`from_size_free` aliases the cache entry instead).
  struct Storage {
    std::vector<std::uint32_t> step_begin;
    std::vector<std::int32_t> to;
    std::vector<std::int32_t> from;
    std::vector<std::uint8_t> reduce;
  } own;
  /// Structural columns' owner: `lower` builds a private skeleton,
  /// `from_size_free` shares the entry's cached one.
  std::shared_ptr<const ExecSkeleton> skeleton;
  /// Keeps the cache entry alive while delivery spans alias it.
  std::shared_ptr<const void> keepalive;

 private:
  /// Point the structural spans at `skeleton` and compute every
  /// size-dependent column (block_off, elem_prefix, staging element offsets,
  /// wire-byte totals). Requires the delivery spans and op_bytes to be set.
  void finalize_sizes();
};

}  // namespace bine::runtime
