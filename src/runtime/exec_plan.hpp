#pragma once

#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"
#include "sched/schedule_cache.hpp"

/// Flat execution IR: the runtime analogue of sched::CompiledSchedule.
///
/// The executor's work is entirely delivery-driven: within a synchronized
/// step every send reads the sender's *pre-step* state, so a message's
/// payload is fully determined by (sender, block ids) -- all sends a rank
/// issues in one step read identical state, and `Schedule::validate()`
/// guarantees each send is matched by exactly one receive with the same
/// block set. `ExecPlan` therefore keeps exactly one record per *delivery*
/// (receive-type op), in the canonical step-major / receiver-grouped order
/// the nested reference executor applies them in:
///
///   * per delivery: receiving rank, sending rank, reduce flag, wire bytes,
///     and a CSR slice of expanded block ids;
///   * per block id: a dense element offset (`block_off`), so each rank's
///     state is ONE flat buffer instead of per-slot vectors, and contributor
///     sets are fixed-width bitset word runs in one flat array;
///   * per step: op and receiver-run CSR ranges, plus staging prefix sums
///     (`elem_prefix`) sized once at lowering time, so execution performs no
///     per-step allocation at all.
///
/// Built two ways, bit-identically (the parity tests assert it):
///   * `lower(Schedule)` -- validate + flatten the nested representation
///     (the uncached oracle-side path);
///   * `from_size_free(entry, ...)` -- re-materialize from the execution
///     overlay of a cached sched::SizeFreeSchedule, which is how
///     harness::Runner's verify path skips generation entirely on a
///     schedule-cache hit.
namespace bine::runtime {

struct ExecPlan {
  sched::Collective coll{};
  sched::BlockSpace space = sched::BlockSpace::per_vector;
  i64 p = 0;
  i64 nblocks = 0;
  i64 elem_count = 0;
  i64 elem_size = 0;
  Rank root = 0;
  size_t steps = 0;

  // One record per delivery (recv or recv_reduce), step-major,
  // receiver-grouped, receiver op order preserved.
  std::vector<std::uint32_t> step_begin;    ///< steps+1 CSR over deliveries
  std::vector<std::int32_t> to;             ///< receiving rank
  std::vector<std::int32_t> from;           ///< sending rank
  std::vector<std::uint8_t> reduce;         ///< 1 = fold with the reduce op
  std::vector<i64> op_bytes;                ///< wire bytes (accounting)
  std::vector<std::uint32_t> block_begin;   ///< nops+1 CSR into `ids`
  std::vector<i64> ids;                     ///< expanded logical block ids

  // Derived at lowering time (finalize()).
  std::vector<i64> block_off;               ///< nblocks+1 dense element offsets
  std::vector<i64> elem_prefix;             ///< ids.size()+1 cumulative elements
  std::vector<std::uint32_t> run_begin;     ///< receiver-run CSR over deliveries
  std::vector<std::uint32_t> step_run_begin;///< steps+1 CSR over runs
  /// Deliveries whose read cells (sender, id) are written by no delivery of
  /// the same step: their payload IS the sender's live buffer, so the
  /// executor skips staging them (zero-copy apply). Trees, scatter/allgather
  /// composites, rings and recursive halving are direct almost everywhere;
  /// only full-vector butterfly exchanges (recursive doubling) still stage.
  std::vector<std::uint8_t> direct;
  /// Staging offsets of non-direct deliveries (elements / blocks within the
  /// step's stage buffer); unused for direct and fused ones.
  std::vector<i64> stage_elem_off;
  std::vector<i64> stage_block_off;
  /// Symmetric-exchange fusion: delivery pairs (j1 = r<-s, j2 = s<-r), both
  /// recv_reduce over the identical id list, whose cells no other delivery
  /// of the step touches. The executor computes `a op b` once and writes
  /// both sides (reduce_symmetric), so these -- the full-vector butterfly
  /// exchanges of recursive doubling -- never stage either. `fused[j]` marks
  /// members; `fused_pair` lists each pair once (j1 then j2), with
  /// `step_fused_begin` the steps+1 CSR in pairs.
  std::vector<std::uint8_t> fused;
  std::vector<std::uint32_t> fused_pair;
  std::vector<std::uint32_t> step_fused_begin;
  i64 elems_per_rank = 0;                   ///< block_off.back()
  i64 words = 0;                            ///< u64 words per contributor set
  i64 max_step_elems = 0;                   ///< staging buffer size (elements)
  i64 max_step_blocks = 0;                  ///< staging buffer size (blocks)
  i64 total_wire_bytes = 0;

  [[nodiscard]] size_t num_ops() const noexcept { return to.size(); }
  [[nodiscard]] i64 block_len(i64 id) const noexcept {
    return block_off[static_cast<size_t>(id) + 1] - block_off[static_cast<size_t>(id)];
  }

  /// Validate `s` and flatten it. Throws std::runtime_error on coarse-mode
  /// or structurally invalid schedules (the same contract execute_reference
  /// enforces at run time).
  [[nodiscard]] static ExecPlan lower(const sched::Schedule& s);

  /// Re-materialize from a cached entry's execution overlay for a concrete
  /// vector config. `sf` must be size_independent; `coll`/`root` come from
  /// the cache key (the entry itself is keyed, not self-describing).
  [[nodiscard]] static ExecPlan from_size_free(const sched::SizeFreeSchedule& sf,
                                               sched::Collective coll, Rank root,
                                               i64 elem_count, i64 elem_size);

 private:
  void finalize();
};

}  // namespace bine::runtime
