#include "runtime/exec_plan.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "sched/compiled.hpp"

namespace bine::runtime {

namespace {

/// The per-step dataflow analysis over one delivery stream: receiver runs,
/// zero-copy direct marks, fused symmetric pairs, and per-step staging block
/// offsets. Pure structure -- nothing here touches element counts -- which is
/// what makes the result cacheable per schedule entry. `block_begin`/`ids`
/// are moved into the returned skeleton.
ExecSkeleton analyze_structure(size_t steps, std::span<const std::uint32_t> step_begin,
                               std::span<const std::int32_t> to,
                               std::span<const std::int32_t> from,
                               std::span<const std::uint8_t> reduce, i64 p, i64 nblocks,
                               std::vector<std::uint32_t>&& block_begin,
                               std::vector<i64>&& ids) {
  ExecSkeleton sk;
  sk.block_begin = std::move(block_begin);
  sk.ids = std::move(ids);

  const size_t nops = to.size();
  sk.run_begin.clear();
  sk.step_run_begin.reserve(steps + 1);
  sk.step_run_begin.push_back(0);
  sk.direct.assign(nops, 0);
  sk.fused.assign(nops, 0);
  sk.step_fused_begin.reserve(steps + 1);
  sk.step_fused_begin.push_back(0);
  sk.staged_id.assign(sk.ids.size(), 0);
  sk.stage_block_off.assign(nops, 0);
  // Per-cell stamps for the zero-copy analyses below, epoch-keyed by step so
  // they are never cleared: `written` marks cells some delivery writes this
  // step, `touched`/`touch_count` count read+write touches per cell.
  const auto npos = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> written(static_cast<size_t>(p * nblocks), npos);
  std::vector<std::uint32_t> touched(static_cast<size_t>(p * nblocks), npos);
  std::vector<std::uint32_t> touch_count(static_cast<size_t>(p * nblocks), 0);
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<std::uint32_t>> by_flow;
  for (size_t t = 0; t < steps; ++t) {
    const std::uint32_t ob = step_begin[t], oe = step_begin[t + 1];
    by_flow.clear();
    for (std::uint32_t j = ob; j < oe; ++j) {
      if (j == ob || to[j] != to[j - 1]) sk.run_begin.push_back(j);
      if (reduce[j]) by_flow[{to[j], from[j]}].push_back(j);
      for (std::uint32_t k = sk.block_begin[j]; k < sk.block_begin[j + 1]; ++k) {
        const size_t wcell = static_cast<size_t>(to[j] * nblocks + sk.ids[k]);
        const size_t rcell = static_cast<size_t>(from[j] * nblocks + sk.ids[k]);
        written[wcell] = static_cast<std::uint32_t>(t);
        for (const size_t cell : {wcell, rcell}) {
          if (touched[cell] != static_cast<std::uint32_t>(t)) {
            touched[cell] = static_cast<std::uint32_t>(t);
            touch_count[cell] = 0;
          }
          ++touch_count[cell];
        }
      }
    }
    // A delivery is direct when nothing this step writes the cells it reads:
    // the sender's live buffer then IS the pre-step snapshot, so the
    // executor applies it without staging.
    for (std::uint32_t j = ob; j < oe; ++j) {
      bool is_direct = true;
      for (std::uint32_t k = sk.block_begin[j]; is_direct && k < sk.block_begin[j + 1];
           ++k)
        is_direct = written[static_cast<size_t>(from[j] * nblocks + sk.ids[k])] !=
                    static_cast<std::uint32_t>(t);
      sk.direct[j] = is_direct ? 1 : 0;
    }
    // Symmetric-exchange fusion (see header): mutual recv_reduce pairs over
    // the identical id list whose cells only the pair touches. touch_count
    // == 2 on every cell certifies exclusivity (the pair itself contributes
    // one write- and one read-touch per cell).
    for (std::uint32_t j = ob; j < oe; ++j) {
      if (!reduce[j] || sk.direct[j] || sk.fused[j] || to[j] > from[j]) continue;
      const auto fwd = by_flow.find({to[j], from[j]});
      const auto rev = by_flow.find({from[j], to[j]});
      if (fwd == by_flow.end() || rev == by_flow.end()) continue;
      if (fwd->second.size() != 1 || rev->second.size() != 1) continue;
      const std::uint32_t j2 = rev->second.front();
      if (sk.direct[j2] || sk.fused[j2]) continue;
      const std::uint32_t len = sk.block_begin[j + 1] - sk.block_begin[j];
      if (sk.block_begin[j2 + 1] - sk.block_begin[j2] != len) continue;
      if (!std::equal(sk.ids.begin() + sk.block_begin[j],
                      sk.ids.begin() + sk.block_begin[j + 1],
                      sk.ids.begin() + sk.block_begin[j2]))
        continue;
      bool exclusive = true;
      for (std::uint32_t k = sk.block_begin[j]; exclusive && k < sk.block_begin[j + 1];
           ++k)
        exclusive =
            touch_count[static_cast<size_t>(to[j] * nblocks + sk.ids[k])] == 2 &&
            touch_count[static_cast<size_t>(from[j] * nblocks + sk.ids[k])] == 2;
      if (!exclusive) continue;
      sk.fused[j] = sk.fused[j2] = 1;
      sk.fused_pair.push_back(j);
      sk.fused_pair.push_back(j2);
    }
    sk.step_fused_begin.push_back(static_cast<std::uint32_t>(sk.fused_pair.size() / 2));
    // Pair-tiling over what remains: a non-direct delivery failed the
    // whole-delivery test, but usually only part of its payload genuinely
    // overlaps this step's writes. Mark exactly the ids whose read cell is
    // written (those stage); the rest execute in place like a direct
    // delivery. Staging block offsets count only the marked ids (element
    // offsets are size-dependent and computed in finalize_sizes).
    i64 staged_blocks = 0;
    for (std::uint32_t j = ob; j < oe; ++j) {
      sk.stage_block_off[j] = staged_blocks;
      if (sk.direct[j] || sk.fused[j]) continue;
      for (std::uint32_t k = sk.block_begin[j]; k < sk.block_begin[j + 1]; ++k)
        if (written[static_cast<size_t>(from[j] * nblocks + sk.ids[k])] ==
            static_cast<std::uint32_t>(t)) {
          sk.staged_id[k] = 1;
          ++staged_blocks;
        }
    }
    sk.step_run_begin.push_back(static_cast<std::uint32_t>(sk.run_begin.size()));
    sk.max_step_blocks = std::max<i64>(sk.max_step_blocks, staged_blocks);
  }
  sk.run_begin.push_back(step_begin[steps]);
  return sk;
}

}  // namespace

std::shared_ptr<const ExecSkeleton> ExecSkeleton::of(const sched::SizeFreeSchedule& sf) {
  sched::SizeFreeSchedule::DerivedSlot& slot = *sf.derived;
  const std::scoped_lock lock(slot.mutex);
  if (slot.value)
    return std::static_pointer_cast<const ExecSkeleton>(slot.value);

  // Expand the overlay's block ranges once; every later hit reuses them.
  const size_t ops = sf.num_recv_ops();
  std::vector<std::uint32_t> block_begin;
  std::vector<i64> ids;
  block_begin.reserve(ops + 1);
  block_begin.push_back(0);
  for (size_t i = 0; i < ops; ++i) {
    const std::span<const sched::BlockRange> rs{
        sf.recv_ranges.data() + sf.recv_block_begin[i],
        sf.recv_ranges.data() + sf.recv_block_begin[i + 1]};
    for (const sched::BlockRange& br : rs)
      for (i64 k = 0; k < br.count; ++k) ids.push_back(pmod(br.begin + k, sf.nblocks));
    block_begin.push_back(static_cast<std::uint32_t>(ids.size()));
  }
  auto built = std::make_shared<const ExecSkeleton>(analyze_structure(
      sf.steps, sf.recv_step_begin, sf.recv_rank, sf.recv_peer, sf.recv_reduce, sf.p,
      sf.nblocks, std::move(block_begin), std::move(ids)));
  slot.value = built;
  return built;
}

void ExecPlan::finalize_sizes() {
  // Point structural spans at the (built or cached) skeleton.
  block_begin = skeleton->block_begin;
  ids = skeleton->ids;
  run_begin = skeleton->run_begin;
  step_run_begin = skeleton->step_run_begin;
  direct = skeleton->direct;
  fused = skeleton->fused;
  fused_pair = skeleton->fused_pair;
  step_fused_begin = skeleton->step_fused_begin;
  staged_id = skeleton->staged_id;
  stage_block_off = skeleton->stage_block_off;
  max_step_blocks = skeleton->max_step_blocks;

  // Dense element layout: block id b occupies [block_off[b], block_off[b+1])
  // of every rank's flat buffer. For per_vector space this is exactly the
  // vector's own layout; for pairwise space ids are s-major so rank s's send
  // buffer lands contiguously at offset s*elem_count.
  block_off.resize(static_cast<size_t>(nblocks) + 1);
  block_off[0] = 0;
  for (i64 b = 0; b < nblocks; ++b) {
    const i64 len = space == sched::BlockSpace::per_vector
                        ? sched::block_elems(b, elem_count, nblocks)
                        : sched::block_elems(b % p, elem_count, p);
    block_off[static_cast<size_t>(b) + 1] = block_off[static_cast<size_t>(b)] + len;
  }
  elems_per_rank = block_off[static_cast<size_t>(nblocks)];
  words = (p + 63) / 64;

  elem_prefix.resize(ids.size() + 1);
  elem_prefix[0] = 0;
  for (size_t k = 0; k < ids.size(); ++k)
    elem_prefix[k + 1] = elem_prefix[k] + block_len(ids[k]);

  total_wire_bytes = 0;
  for (const i64 b : op_bytes) total_wire_bytes += b;

  stage_elem_off.assign(num_ops(), 0);
  max_step_elems = 0;
  stage_bytes = 0;
  for (size_t t = 0; t < steps; ++t) {
    i64 staged_elems = 0;
    for (std::uint32_t j = step_begin[t]; j < step_begin[t + 1]; ++j) {
      stage_elem_off[j] = staged_elems;
      if (direct[j] || fused[j]) continue;
      for (std::uint32_t k = block_begin[j]; k < block_begin[j + 1]; ++k)
        if (staged_id[k]) staged_elems += elem_prefix[k + 1] - elem_prefix[k];
    }
    max_step_elems = std::max<i64>(max_step_elems, staged_elems);
    stage_bytes += staged_elems * elem_size;
  }
}

ExecPlan ExecPlan::lower(const sched::Schedule& s) {
  if (!s.detail)
    throw std::runtime_error("executor requires a detail-mode schedule");
  if (const std::string err = s.validate(); !err.empty())
    throw std::runtime_error("invalid schedule: " + err);

  ExecPlan plan;
  plan.coll = s.coll;
  plan.space = s.space;
  plan.p = s.p;
  plan.nblocks = s.nblocks;
  plan.elem_count = s.elem_count;
  plan.elem_size = s.elem_size;
  plan.root = s.root;
  plan.steps = s.num_steps();
  plan.own.step_begin.reserve(plan.steps + 1);
  plan.own.step_begin.push_back(0);

  std::vector<std::uint32_t> block_begin;
  std::vector<i64> ids;
  block_begin.push_back(0);
  sched::for_each_op_step_major(
      s, plan.steps,
      [&](Rank r, const sched::Op& op) {
        if (op.kind != sched::OpKind::recv && op.kind != sched::OpKind::recv_reduce)
          return;
        plan.own.to.push_back(static_cast<std::int32_t>(r));
        plan.own.from.push_back(static_cast<std::int32_t>(op.peer));
        plan.own.reduce.push_back(op.kind == sched::OpKind::recv_reduce ? 1 : 0);
        plan.op_bytes.push_back(op.bytes);
        for (const sched::BlockRange& br : op.blocks.ranges())
          for (i64 k = 0; k < br.count; ++k)
            ids.push_back(pmod(br.begin + k, s.nblocks));
        block_begin.push_back(static_cast<std::uint32_t>(ids.size()));
      },
      [&](size_t) {
        plan.own.step_begin.push_back(static_cast<std::uint32_t>(plan.own.to.size()));
      });
  plan.step_begin = plan.own.step_begin;
  plan.to = plan.own.to;
  plan.from = plan.own.from;
  plan.reduce = plan.own.reduce;
  plan.skeleton = std::make_shared<const ExecSkeleton>(
      analyze_structure(plan.steps, plan.step_begin, plan.to, plan.from, plan.reduce,
                        plan.p, plan.nblocks, std::move(block_begin), std::move(ids)));
  plan.finalize_sizes();
  return plan;
}

ExecPlan ExecPlan::from_size_free(std::shared_ptr<const sched::SizeFreeSchedule> sf,
                                  sched::Collective coll, Rank root, i64 elem_count,
                                  i64 elem_size) {
  if (!sf || !sf->size_independent)
    throw std::runtime_error("entry failed verification; use fresh generation");

  ExecPlan plan;
  plan.coll = coll;
  plan.space = sf->space;
  plan.p = sf->p;
  plan.nblocks = sf->nblocks;
  plan.elem_count = elem_count;
  plan.elem_size = elem_size;
  plan.root = root;
  plan.steps = sf->steps;
  // The delivery stream aliases the entry; the structural columns alias its
  // cached skeleton. Only op_bytes and the element arithmetic below are
  // computed per plan.
  plan.step_begin = sf->recv_step_begin;
  plan.to = sf->recv_rank;
  plan.from = sf->recv_peer;
  plan.reduce = sf->recv_reduce;
  plan.skeleton = ExecSkeleton::of(*sf);

  const i64 n = sf->space == sched::BlockSpace::pairwise ? elem_count * sf->p : elem_count;
  const size_t ops = sf->num_recv_ops();
  plan.op_bytes.resize(ops);
  for (size_t i = 0; i < ops; ++i) {
    const std::span<const sched::BlockRange> rs{
        sf->recv_ranges.data() + sf->recv_block_begin[i],
        sf->recv_ranges.data() + sf->recv_block_begin[i + 1]};
    // The same arithmetic the generator's add_exchange baked the bytes with:
    // from() verified they agree, so the cached plan is bit-exact with lower().
    plan.op_bytes[i] = sched::ranges_elem_count(rs, n, sf->nblocks) * elem_size;
  }
  plan.keepalive = std::move(sf);
  plan.finalize_sizes();
  return plan;
}

}  // namespace bine::runtime
