#pragma once

#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/reduction.hpp"
#include "sched/schedule.hpp"

/// In-process execution of a schedule over real per-rank buffers: the
/// library's substitute for an MPI job (see DESIGN.md, substitutions table).
///
/// Semantics are synchronous-step message passing: within a step, every send
/// reads the sender's *pre-step* state; all deliveries then apply together.
/// This matches the matched send/recv (sendrecv) structure of the paper's
/// algorithms, where each step is a communication round.
///
/// Besides the data itself, the executor tracks, per block, the *contributor
/// set*: which ranks' original inputs have been folded into the value. A
/// reduction that would fold the same contributor twice -- the correctness
/// hazard of Appendix C's non-power-of-two handling -- throws immediately.
///
/// Two engines implement these semantics (mirroring the simulator's split,
/// DESIGN.md):
///
///   * the *compiled* engine (runtime/compiled_executor.hpp) streams the flat
///     runtime::ExecPlan IR over dense per-rank buffers and flat contributor
///     bitset words -- the default, and the one harness::Runner drives;
///   * the nested-walking implementations in this header and
///     threaded_executor.hpp are retained as `*_reference` oracles the parity
///     suite compares against.
namespace bine::runtime {

/// Dynamic bitset over ranks, used for contributor tracking.
class RankSet {
 public:
  RankSet() = default;
  explicit RankSet(i64 p) : bits_(static_cast<size_t>((p + 63) / 64), 0), p_(p) {}

  static RankSet single(i64 p, Rank r) {
    RankSet s(p);
    s.add(r);
    return s;
  }
  static RankSet full(i64 p) {
    RankSet s(p);
    for (Rank r = 0; r < p; ++r) s.add(r);
    return s;
  }
  /// Wrap the flat word array the compiled executor tracks contributor sets
  /// in (one fixed-width run of (p+63)/64 words per block).
  static RankSet from_words(i64 p, std::span<const u64> words) {
    RankSet s(p);
    assert(words.size() == s.bits_.size());
    std::copy(words.begin(), words.end(), s.bits_.begin());
    return s;
  }

  void add(Rank r) { bits_[word(r)] |= bit(r); }
  [[nodiscard]] bool contains(Rank r) const { return (bits_[word(r)] & bit(r)) != 0; }
  [[nodiscard]] bool intersects(const RankSet& o) const {
    for (size_t i = 0; i < bits_.size(); ++i)
      if (bits_[i] & o.bits_[i]) return true;
    return false;
  }
  void merge(const RankSet& o) {
    for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= o.bits_[i];
  }
  [[nodiscard]] bool operator==(const RankSet& o) const = default;
  [[nodiscard]] i64 count() const {
    i64 n = 0;
    for (const u64 w : bits_) n += static_cast<i64>(__builtin_popcountll(w));
    return n;
  }
  [[nodiscard]] std::span<const u64> words() const { return bits_; }

 private:
  static size_t word(Rank r) { return static_cast<size_t>(r) / 64; }
  static u64 bit(Rank r) { return u64{1} << (static_cast<size_t>(r) % 64); }
  std::vector<u64> bits_;
  i64 p_ = 0;
};

/// Contents of one logical block slot at one rank.
template <typename T>
struct BlockSlot {
  std::vector<T> data;
  RankSet contributors;
  bool valid = false;
};

template <typename T>
struct RankState {
  std::vector<BlockSlot<T>> slots;  ///< indexed by logical block id
};

template <typename T>
struct ExecResult {
  std::vector<RankState<T>> ranks;
  i64 messages = 0;
  i64 wire_bytes = 0;
};

/// The block-id-to-elements mapping of one schedule: everything
/// `initial_block`/`verify` need, shared between the nested Schedule path and
/// the compiled ExecPlan path (which has no Schedule to point at).
struct BlockLayout {
  sched::BlockSpace space = sched::BlockSpace::per_vector;
  i64 p = 0;
  i64 nblocks = 0;
  i64 elem_count = 0;

  [[nodiscard]] static BlockLayout of(const sched::Schedule& s) {
    return {s.space, s.p, s.nblocks, s.elem_count};
  }

  /// Element length of logical block `id`.
  [[nodiscard]] i64 block_len(i64 id) const {
    return space == sched::BlockSpace::per_vector
               ? sched::block_elems(id, elem_count, nblocks)
               : sched::block_elems(id % p, elem_count, p);
  }
};

namespace detail {

/// Element span of logical block `id` inside rank `holder`'s input vector.
/// For per_vector space the block maps into the shared vector; for pairwise
/// space id = s*p + d maps into sender s's send buffer.
template <typename T>
std::vector<T> initial_block(const BlockLayout& l, std::span<const std::vector<T>> inputs,
                             Rank holder, i64 id) {
  using sched::block_elems;
  using sched::block_offset;
  if (l.space == sched::BlockSpace::per_vector) {
    const i64 off = block_offset(id, l.elem_count, l.nblocks);
    const i64 len = block_elems(id, l.elem_count, l.nblocks);
    const auto& in = inputs[static_cast<size_t>(holder)];
    return {in.begin() + off, in.begin() + off + len};
  }
  const i64 src = id / l.p;
  const i64 off = block_offset(id % l.p, l.elem_count, l.p);
  const i64 len = block_elems(id % l.p, l.elem_count, l.p);
  const auto& in = inputs[static_cast<size_t>(src)];
  return {in.begin() + off, in.begin() + off + len};
}

template <typename T>
std::vector<T> initial_block(const sched::Schedule& s, std::span<const std::vector<T>> inputs,
                             Rank holder, i64 id) {
  return initial_block(BlockLayout::of(s), inputs, holder, id);
}

}  // namespace detail

/// Initial per-rank block ownership for each collective (who holds which
/// blocks, with which contributor sets, before step 0).
template <typename T>
std::vector<RankState<T>> initial_state(const sched::Schedule& s,
                                        std::span<const std::vector<T>> inputs) {
  using sched::Collective;
  assert(static_cast<i64>(inputs.size()) == s.p);
  std::vector<RankState<T>> ranks(static_cast<size_t>(s.p));
  for (auto& rs : ranks) rs.slots.resize(static_cast<size_t>(s.nblocks));

  auto fill = [&](Rank holder, i64 id, Rank contributor) {
    BlockSlot<T>& slot = ranks[static_cast<size_t>(holder)].slots[static_cast<size_t>(id)];
    slot.data = detail::initial_block(s, inputs, contributor, id);
    slot.contributors = RankSet::single(s.p, contributor);
    slot.valid = true;
  };

  switch (s.coll) {
    case Collective::bcast:
    case Collective::scatter:
      // Only the root holds data (the whole vector).
      for (i64 b = 0; b < s.nblocks; ++b) fill(s.root, b, s.root);
      break;
    case Collective::reduce:
    case Collective::allreduce:
    case Collective::reduce_scatter:
      // Everyone holds a full private copy of the vector to be reduced.
      for (Rank r = 0; r < s.p; ++r)
        for (i64 b = 0; b < s.nblocks; ++b) fill(r, b, r);
      break;
    case Collective::gather:
    case Collective::allgather:
      // Rank r contributes block r.
      for (Rank r = 0; r < s.p; ++r) fill(r, r, r);
      break;
    case Collective::alltoall:
      // Rank r holds blocks (r, d) for every destination d.
      for (Rank r = 0; r < s.p; ++r)
        for (i64 d = 0; d < s.p; ++d) fill(r, r * s.p + d, r);
      break;
  }
  return ranks;
}

/// Run `schedule` over the given inputs, walking the nested representation
/// op by op. Retained as the sequential oracle for the compiled engine
/// (runtime/compiled_executor.hpp). Throws std::runtime_error on any
/// semantic violation (sending an invalid block, unmatched messages,
/// duplicated reduction contributions).
template <typename T>
ExecResult<T> execute_reference(const sched::Schedule& schedule, ReduceOp op,
                                std::span<const std::vector<T>> inputs) {
  if (!schedule.detail)
    throw std::runtime_error("executor requires a detail-mode schedule");
  if (const std::string err = schedule.validate(); !err.empty())
    throw std::runtime_error("invalid schedule: " + err);

  ExecResult<T> result;
  result.ranks = initial_state<T>(schedule, inputs);

  struct Message {
    std::vector<i64> ids;
    std::vector<BlockSlot<T>> payload;
  };

  const size_t nsteps = schedule.num_steps();
  for (size_t t = 0; t < nsteps; ++t) {
    // Phase 1: capture all sends from pre-step state. Multiple messages per
    // (from, to) pair are legal (multi-port schedules): matched in op order.
    std::unordered_map<u64, std::vector<Message>> inflight;  // key = from * p + to
    std::unordered_map<u64, size_t> consumed;
    for (Rank r = 0; r < schedule.p; ++r) {
      for (const sched::Op& opr : schedule.steps[static_cast<size_t>(r)][t].ops) {
        if (opr.kind != sched::OpKind::send) continue;
        Message msg;
        msg.ids = opr.blocks.expand(schedule.nblocks);
        for (const i64 id : msg.ids) {
          const BlockSlot<T>& slot =
              result.ranks[static_cast<size_t>(r)].slots[static_cast<size_t>(id)];
          if (!slot.valid)
            throw std::runtime_error("step " + std::to_string(t) + ": rank " +
                                     std::to_string(r) + " sends invalid block " +
                                     std::to_string(id));
          msg.payload.push_back(slot);
        }
        result.messages += 1;
        result.wire_bytes += opr.bytes;
        const u64 key = static_cast<u64>(r) * static_cast<u64>(schedule.p) +
                        static_cast<u64>(opr.peer);
        inflight[key].push_back(std::move(msg));
      }
    }

    // Phase 2: deliver into receivers.
    for (Rank r = 0; r < schedule.p; ++r) {
      for (const sched::Op& opr : schedule.steps[static_cast<size_t>(r)][t].ops) {
        if (opr.kind != sched::OpKind::recv && opr.kind != sched::OpKind::recv_reduce)
          continue;
        const u64 key = static_cast<u64>(opr.peer) * static_cast<u64>(schedule.p) +
                        static_cast<u64>(r);
        const auto it = inflight.find(key);
        const size_t already = consumed[key]++;
        if (it == inflight.end() || already >= it->second.size())
          throw std::runtime_error("step " + std::to_string(t) + ": rank " +
                                   std::to_string(r) + " expects a message from " +
                                   std::to_string(opr.peer) + " but none was sent");
        const Message& msg = it->second[already];
        for (size_t k = 0; k < msg.ids.size(); ++k) {
          const i64 id = msg.ids[k];
          BlockSlot<T>& slot =
              result.ranks[static_cast<size_t>(r)].slots[static_cast<size_t>(id)];
          const BlockSlot<T>& incoming = msg.payload[k];
          if (opr.kind == sched::OpKind::recv) {
            slot = incoming;
          } else {
            if (!slot.valid)
              throw std::runtime_error("step " + std::to_string(t) + ": rank " +
                                       std::to_string(r) + " reduce into invalid block " +
                                       std::to_string(id));
            if (slot.contributors.intersects(incoming.contributors))
              throw std::runtime_error(
                  "step " + std::to_string(t) + ": rank " + std::to_string(r) +
                  " would fold duplicate contributions into block " + std::to_string(id));
            reduce_into<T>(op, slot.data, incoming.data);
            slot.contributors.merge(incoming.contributors);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace bine::runtime
