#pragma once

#include <barrier>
#include <mutex>
#include <thread>

#include "runtime/executor.hpp"

/// Concurrent variant of the nested reference executor: one std::thread per
/// rank, stepping in lockstep through the schedule with a barrier per phase.
/// Exercises the same schedules under real concurrency (LLNL-tutorial-style
/// message passing with matched sends/receives); results must be
/// bit-identical to the sequential executor, which the tests assert. The
/// compiled engine's threaded path lives in compiled_executor.hpp (pass
/// `threads > 1`); this oracle is what it is checked against.
namespace bine::runtime {

template <typename T>
ExecResult<T> execute_threaded_reference(const sched::Schedule& schedule, ReduceOp op,
                                         std::span<const std::vector<T>> inputs) {
  if (!schedule.detail)
    throw std::runtime_error("executor requires a detail-mode schedule");
  if (const std::string err = schedule.validate(); !err.empty())
    throw std::runtime_error("invalid schedule: " + err);

  ExecResult<T> result;
  result.ranks = initial_state<T>(schedule, inputs);

  struct Message {
    std::vector<i64> ids;
    std::vector<BlockSlot<T>> payload;
  };
  // Mailboxes: box[from][to] holds the messages posted this step, consumed in
  // op order by the receiver after the mid-step barrier.
  const size_t p = static_cast<size_t>(schedule.p);
  std::vector<std::vector<std::vector<Message>>> box(
      p, std::vector<std::vector<Message>>(p));
  std::vector<std::vector<size_t>> consumed(p, std::vector<size_t>(p, 0));

  std::barrier sync(static_cast<std::ptrdiff_t>(p));
  std::mutex error_mutex;
  std::string first_error;
  std::atomic<i64> messages{0}, wire_bytes{0};

  const size_t nsteps = schedule.num_steps();
  auto worker = [&](Rank r) {
    const auto& steps = schedule.steps[static_cast<size_t>(r)];
    for (size_t t = 0; t < nsteps; ++t) {
      // Phase 1: post sends from pre-step state.
      for (const sched::Op& opr : steps[t].ops) {
        if (opr.kind != sched::OpKind::send) continue;
        Message msg;
        msg.ids = opr.blocks.expand(schedule.nblocks);
        for (const i64 id : msg.ids) {
          const BlockSlot<T>& slot =
              result.ranks[static_cast<size_t>(r)].slots[static_cast<size_t>(id)];
          if (!slot.valid) {
            const std::scoped_lock lock(error_mutex);
            if (first_error.empty())
              first_error = "rank " + std::to_string(r) + " sends invalid block " +
                            std::to_string(id);
          } else {
            msg.payload.push_back(slot);
          }
        }
        messages.fetch_add(1, std::memory_order_relaxed);
        wire_bytes.fetch_add(opr.bytes, std::memory_order_relaxed);
        box[static_cast<size_t>(r)][static_cast<size_t>(opr.peer)].push_back(
            std::move(msg));
      }
      sync.arrive_and_wait();
      // Phase 2: consume receives. On any error we record it and keep
      // stepping through the barriers so no thread is left behind.
      for (const sched::Op& opr : steps[t].ops) {
        if (opr.kind != sched::OpKind::recv && opr.kind != sched::OpKind::recv_reduce)
          continue;
        auto& queue = box[static_cast<size_t>(opr.peer)][static_cast<size_t>(r)];
        size_t& used = consumed[static_cast<size_t>(opr.peer)][static_cast<size_t>(r)];
        if (used >= queue.size()) {
          const std::scoped_lock lock(error_mutex);
          if (first_error.empty())
            first_error = "rank " + std::to_string(r) + " missing message from " +
                          std::to_string(opr.peer);
          continue;
        }
        const Message& msg = queue[used++];
        if (msg.payload.size() != msg.ids.size()) continue;  // sender already errored
        for (size_t k = 0; k < msg.ids.size(); ++k) {
          BlockSlot<T>& slot = result.ranks[static_cast<size_t>(r)]
                                   .slots[static_cast<size_t>(msg.ids[k])];
          if (opr.kind == sched::OpKind::recv) {
            slot = msg.payload[k];
          } else if (!slot.valid ||
                     slot.contributors.intersects(msg.payload[k].contributors)) {
            const std::scoped_lock lock(error_mutex);
            if (first_error.empty())
              first_error = "rank " + std::to_string(r) + " duplicate contribution on " +
                            std::to_string(msg.ids[k]);
          } else {
            reduce_into<T>(op, slot.data, msg.payload[k].data);
            slot.contributors.merge(msg.payload[k].contributors);
          }
        }
      }
      // Phase 3: reset mailboxes this rank owns before the next step.
      sync.arrive_and_wait();
      for (size_t to = 0; to < p; ++to) {
        box[static_cast<size_t>(r)][to].clear();
        consumed[static_cast<size_t>(r)][to] = 0;
      }
      sync.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(p);
  for (Rank r = 0; r < schedule.p; ++r) threads.emplace_back(worker, r);
  for (std::thread& th : threads) th.join();

  if (!first_error.empty()) throw std::runtime_error(first_error);
  result.messages = messages.load();
  result.wire_bytes = wire_bytes.load();
  return result;
}

}  // namespace bine::runtime
