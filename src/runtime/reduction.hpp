#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/types.hpp"

/// Element-wise reduction operators with MPI semantics. All operators used by
/// the collectives are associative and commutative (MPI assumes associativity
/// by default, paper Sec. 2.1), which is what allows arbitrary tree shapes.
namespace bine::runtime {

enum class ReduceOp { sum, prod, min, max, band, bor, bxor };

[[nodiscard]] constexpr const char* to_string(ReduceOp op) noexcept {
  switch (op) {
    case ReduceOp::sum: return "sum";
    case ReduceOp::prod: return "prod";
    case ReduceOp::min: return "min";
    case ReduceOp::max: return "max";
    case ReduceOp::band: return "band";
    case ReduceOp::bor: return "bor";
    case ReduceOp::bxor: return "bxor";
  }
  return "?";
}

namespace detail {
template <typename T>
[[nodiscard]] constexpr T apply_one(ReduceOp op, T a, T b) noexcept {
  switch (op) {
    case ReduceOp::sum: return static_cast<T>(a + b);
    case ReduceOp::prod: return static_cast<T>(a * b);
    case ReduceOp::min: return std::min(a, b);
    case ReduceOp::max: return std::max(a, b);
    case ReduceOp::band:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a & b);
      return a;  // bitwise ops undefined on floating point; identity
    case ReduceOp::bor:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a | b);
      return a;
    case ReduceOp::bxor:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a ^ b);
      return a;
  }
  return a;
}
}  // namespace detail

/// accumulator[i] = op(accumulator[i], incoming[i])
template <typename T>
void reduce_into(ReduceOp op, std::span<T> accumulator, std::span<const T> incoming) {
  assert(accumulator.size() == incoming.size());
  for (size_t i = 0; i < accumulator.size(); ++i)
    accumulator[i] = detail::apply_one(op, accumulator[i], incoming[i]);
}

}  // namespace bine::runtime
