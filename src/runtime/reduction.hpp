#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/types.hpp"

/// Element-wise reduction operators with MPI semantics. All operators used by
/// the collectives are associative and commutative (MPI assumes associativity
/// by default, paper Sec. 2.1), which is what allows arbitrary tree shapes.
namespace bine::runtime {

enum class ReduceOp { sum, prod, min, max, band, bor, bxor };

/// Element types the verified execution paths are parameterized over
/// (harness::Runner::run_verified / sweep_verified). The cross product with
/// ReduceOp makes verified execution a first-class sweep mode instead of a
/// u32/sum special case.
enum class ElemType { u32, u64, f32, f64 };

[[nodiscard]] constexpr const char* to_string(ElemType t) noexcept {
  switch (t) {
    case ElemType::u32: return "u32";
    case ElemType::u64: return "u64";
    case ElemType::f32: return "f32";
    case ElemType::f64: return "f64";
  }
  return "?";
}

[[nodiscard]] constexpr i64 elem_size_of(ElemType t) noexcept {
  switch (t) {
    case ElemType::u32: return 4;
    case ElemType::u64: return 8;
    case ElemType::f32: return 4;
    case ElemType::f64: return 8;
  }
  return 4;
}

[[nodiscard]] constexpr const char* to_string(ReduceOp op) noexcept {
  switch (op) {
    case ReduceOp::sum: return "sum";
    case ReduceOp::prod: return "prod";
    case ReduceOp::min: return "min";
    case ReduceOp::max: return "max";
    case ReduceOp::band: return "band";
    case ReduceOp::bor: return "bor";
    case ReduceOp::bxor: return "bxor";
  }
  return "?";
}

namespace detail {
template <typename T>
[[nodiscard]] constexpr T apply_one(ReduceOp op, T a, T b) noexcept {
  switch (op) {
    case ReduceOp::sum: return static_cast<T>(a + b);
    case ReduceOp::prod: return static_cast<T>(a * b);
    case ReduceOp::min: return std::min(a, b);
    case ReduceOp::max: return std::max(a, b);
    case ReduceOp::band:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a & b);
      return a;  // bitwise ops undefined on floating point; identity
    case ReduceOp::bor:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a | b);
      return a;
    case ReduceOp::bxor:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a ^ b);
      return a;
  }
  return a;
}
}  // namespace detail

/// accumulator[i] = op(accumulator[i], incoming[i])
///
/// The operator dispatch is hoisted out of the element loop: each case body
/// is a tight fixed-op loop the compiler can vectorize, which matters once
/// the compiled executor makes reduction the remaining per-element work of
/// large-vector execution.
template <typename T>
void reduce_into(ReduceOp op, std::span<T> accumulator, std::span<const T> incoming) {
  assert(accumulator.size() == incoming.size());
  const size_t n = accumulator.size();
  T* a = accumulator.data();
  const T* b = incoming.data();
  switch (op) {
    case ReduceOp::sum:
      for (size_t i = 0; i < n; ++i) a[i] = static_cast<T>(a[i] + b[i]);
      return;
    case ReduceOp::prod:
      for (size_t i = 0; i < n; ++i) a[i] = static_cast<T>(a[i] * b[i]);
      return;
    case ReduceOp::min:
      for (size_t i = 0; i < n; ++i) a[i] = std::min(a[i], b[i]);
      return;
    case ReduceOp::max:
      for (size_t i = 0; i < n; ++i) a[i] = std::max(a[i], b[i]);
      return;
    case ReduceOp::band:
    case ReduceOp::bor:
    case ReduceOp::bxor:
      for (size_t i = 0; i < n; ++i) a[i] = detail::apply_one(op, a[i], b[i]);
      return;
  }
}

/// a[i] = op(a[i], b[i]) and b[i] = op(b[i], a[i]) in one pass: both sides
/// of a symmetric sendrecv-reduce exchange, each with ITS OWN operand order.
/// Computing both directions (rather than one shared value) keeps the fused
/// path bit-identical to two directional reduce_into calls even where the
/// operator is not bit-commutative -- floating-point min/max ties on
/// +/-0.0, NaN operand-order propagation -- which the compiled executor's
/// parity contract requires. The fused full-vector butterfly exchanges of
/// recursive doubling run through this, eliminating their staging copy.
template <typename T>
void reduce_symmetric(ReduceOp op, std::span<T> a_span, std::span<T> b_span) {
  assert(a_span.size() == b_span.size());
  const size_t n = a_span.size();
  T* a = a_span.data();
  T* b = b_span.data();
  switch (op) {
    case ReduceOp::sum:
      for (size_t i = 0; i < n; ++i) {
        const T av = static_cast<T>(a[i] + b[i]);
        const T bv = static_cast<T>(b[i] + a[i]);
        a[i] = av;
        b[i] = bv;
      }
      return;
    case ReduceOp::prod:
      for (size_t i = 0; i < n; ++i) {
        const T av = static_cast<T>(a[i] * b[i]);
        const T bv = static_cast<T>(b[i] * a[i]);
        a[i] = av;
        b[i] = bv;
      }
      return;
    case ReduceOp::min:
      for (size_t i = 0; i < n; ++i) {
        const T av = std::min(a[i], b[i]);
        const T bv = std::min(b[i], a[i]);
        a[i] = av;
        b[i] = bv;
      }
      return;
    case ReduceOp::max:
      for (size_t i = 0; i < n; ++i) {
        const T av = std::max(a[i], b[i]);
        const T bv = std::max(b[i], a[i]);
        a[i] = av;
        b[i] = bv;
      }
      return;
    case ReduceOp::band:
    case ReduceOp::bor:
    case ReduceOp::bxor:
      for (size_t i = 0; i < n; ++i) {
        const T av = detail::apply_one(op, a[i], b[i]);
        const T bv = detail::apply_one(op, b[i], a[i]);
        a[i] = av;
        b[i] = bv;
      }
      return;
  }
}

}  // namespace bine::runtime
