#pragma once

#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/compiled_executor.hpp"
#include "runtime/exec_plan.hpp"
#include "runtime/executor.hpp"

/// Postcondition checkers: given the collective kind, the reduction operator
/// and the original inputs, verify that an execution result matches the MPI
/// semantics of that collective. Returns "" on success, else a diagnostic.
///
/// One generic checker serves both engines: the expected (holder, block,
/// data, contributors) tuples are a function of (collective, layout, root,
/// inputs) alone, and each result type supplies a slot accessor.
namespace bine::runtime {

namespace detail {

/// Reference reduction of logical block `id` across all ranks' inputs.
template <typename T>
std::vector<T> reduced_block(const BlockLayout& l, ReduceOp op,
                             std::span<const std::vector<T>> inputs, i64 id) {
  std::vector<T> acc = initial_block(l, inputs, 0, id);
  for (Rank r = 1; r < l.p; ++r) {
    const std::vector<T> next = initial_block(l, inputs, r, id);
    reduce_into<T>(op, acc, next);
  }
  return acc;
}

/// `check(holder, id, expected_data, expected_contrib)` for every slot the
/// collective's postcondition pins down; first non-empty diagnostic wins.
/// Fully-reduced expected blocks are memoized per id: allreduce checks p
/// ranks against the same p-way reduction, and recomputing it per rank made
/// verification O(p^2 n) -- the old dominant cost of a verify-heavy sweep.
template <typename T, class CheckFn>
std::string verify_slots(sched::Collective coll, const BlockLayout& l, Rank root,
                         ReduceOp op, std::span<const std::vector<T>> inputs,
                         CheckFn&& check) {
  using sched::Collective;
  const RankSet all = RankSet::full(l.p);
  std::vector<std::vector<T>> reduced_cache;
  const auto reduced = [&](i64 id) -> const std::vector<T>& {
    if (reduced_cache.empty()) reduced_cache.resize(static_cast<size_t>(l.nblocks));
    std::vector<T>& slot = reduced_cache[static_cast<size_t>(id)];
    if (slot.empty()) slot = reduced_block(l, op, inputs, id);
    return slot;
  };
  // Initial blocks are likewise memoized by id: every postcondition below
  // pins one holder per id, and bcast/allgather check the same expected
  // block at p ranks. The recorded holder guards that invariant -- a future
  // case mixing holders for one id must fail loudly, not silently compare
  // against the first holder's data.
  std::vector<std::vector<T>> initial_cache;
  std::vector<Rank> initial_holder;
  const auto initial = [&](Rank holder, i64 id) -> const std::vector<T>& {
    if (initial_cache.empty()) {
      initial_cache.resize(static_cast<size_t>(l.nblocks));
      initial_holder.assign(static_cast<size_t>(l.nblocks), -1);
    }
    std::vector<T>& slot = initial_cache[static_cast<size_t>(id)];
    if (slot.empty()) {
      slot = initial_block(l, inputs, holder, id);
      initial_holder[static_cast<size_t>(id)] = holder;
    }
    assert(initial_holder[static_cast<size_t>(id)] == holder &&
           "one holder per id is the memoization contract");
    return slot;
  };
  const RankSet root_single = RankSet::single(l.p, root);
  std::string err;
  switch (coll) {
    case Collective::bcast:
      // Every rank holds every block with the root's data.
      for (Rank r = 0; r < l.p; ++r)
        for (i64 b = 0; b < l.nblocks; ++b) {
          err = check(r, b, initial(root, b), root_single);
          if (!err.empty()) return err;
        }
      return {};
    case Collective::reduce:
      // The root holds every block fully reduced.
      for (i64 b = 0; b < l.nblocks; ++b) {
        err = check(root, b, reduced(b), all);
        if (!err.empty()) return err;
      }
      return {};
    case Collective::gather:
      // The root holds block b with rank b's contribution.
      for (i64 b = 0; b < l.nblocks; ++b) {
        err = check(root, b, initial(b, b), RankSet::single(l.p, b));
        if (!err.empty()) return err;
      }
      return {};
    case Collective::scatter:
      // Rank r ends with block r carrying the root's data.
      for (Rank r = 0; r < l.p; ++r) {
        err = check(r, r, initial(root, r), root_single);
        if (!err.empty()) return err;
      }
      return {};
    case Collective::allgather: {
      // Everyone holds block b with rank b's contribution.
      std::vector<RankSet> singles;
      singles.reserve(static_cast<size_t>(l.p));
      for (Rank b = 0; b < l.p; ++b) singles.push_back(RankSet::single(l.p, b));
      for (Rank r = 0; r < l.p; ++r)
        for (i64 b = 0; b < l.nblocks; ++b) {
          err = check(r, b, initial(b, b), singles[static_cast<size_t>(b)]);
          if (!err.empty()) return err;
        }
      return {};
    }
    case Collective::reduce_scatter:
      // Rank r holds block r fully reduced.
      for (Rank r = 0; r < l.p; ++r) {
        err = check(r, r, reduced(r), all);
        if (!err.empty()) return err;
      }
      return {};
    case Collective::allreduce:
      // Everyone holds every block fully reduced.
      for (Rank r = 0; r < l.p; ++r)
        for (i64 b = 0; b < l.nblocks; ++b) {
          err = check(r, b, reduced(b), all);
          if (!err.empty()) return err;
        }
      return {};
    case Collective::alltoall: {
      // Rank r holds block (src, r) for every src.
      std::vector<RankSet> singles;
      singles.reserve(static_cast<size_t>(l.p));
      for (Rank s = 0; s < l.p; ++s) singles.push_back(RankSet::single(l.p, s));
      for (Rank r = 0; r < l.p; ++r)
        for (Rank src = 0; src < l.p; ++src) {
          const i64 id = src * l.p + r;
          err = check(r, id, initial(src, id), singles[static_cast<size_t>(src)]);
          if (!err.empty()) return err;
        }
      return {};
    }
  }
  return "unknown collective";
}

/// The failure message is built only on mismatch: the success path of a
/// verify touches no stream machinery (it runs once per slot, p * nblocks
/// times per collective).
inline std::string slot_failure(Rank holder, i64 id, const char* what) {
  std::ostringstream err;
  err << "rank " << holder << " block " << id << " " << what;
  return err.str();
}

/// Contributor sets are compared as raw bitset words, so the compiled
/// result's flat contributor array needs no per-slot RankSet materialization.
template <typename T>
std::string slot_diagnostic(Rank holder, i64 id, bool valid, std::span<const T> data,
                            std::span<const u64> contrib_words,
                            const std::vector<T>& expected_data,
                            const RankSet& expected_contrib) {
  if (!valid) return slot_failure(holder, id, "missing");
  if (!std::equal(data.begin(), data.end(), expected_data.begin(), expected_data.end()))
    return slot_failure(holder, id, "has wrong data");
  const std::span<const u64> expected_words = expected_contrib.words();
  if (!std::equal(contrib_words.begin(), contrib_words.end(), expected_words.begin(),
                  expected_words.end()))
    return slot_failure(holder, id, "has wrong contributor set");
  return {};
}

}  // namespace detail

/// Verify the final state of a nested reference execution against s.coll.
template <typename T>
std::string verify(const sched::Schedule& s, ReduceOp op,
                   std::span<const std::vector<T>> inputs, const ExecResult<T>& res) {
  return detail::verify_slots<T>(
      s.coll, BlockLayout::of(s), s.root, op, inputs,
      [&](Rank holder, i64 id, const std::vector<T>& expected_data,
          const RankSet& expected_contrib) {
        const BlockSlot<T>& slot =
            res.ranks[static_cast<size_t>(holder)].slots[static_cast<size_t>(id)];
        return detail::slot_diagnostic<T>(holder, id, slot.valid, slot.data,
                                          slot.contributors.words(), expected_data,
                                          expected_contrib);
      });
}

/// Verify the final state of a compiled execution against plan.coll.
template <typename T>
std::string verify(const ExecPlan& plan, ReduceOp op,
                   std::span<const std::vector<T>> inputs,
                   const CompiledExecResult<T>& res) {
  const BlockLayout layout{plan.space, plan.p, plan.nblocks, plan.elem_count};
  return detail::verify_slots<T>(
      plan.coll, layout, plan.root, op, inputs,
      [&](Rank holder, i64 id, const std::vector<T>& expected_data,
          const RankSet& expected_contrib) {
        return detail::slot_diagnostic<T>(holder, id, res.is_valid(holder, id),
                                          res.block(holder, id),
                                          res.contributor_words(holder, id),
                                          expected_data, expected_contrib);
      });
}

}  // namespace bine::runtime
