#pragma once

#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/executor.hpp"

/// Postcondition checkers: given the collective kind, the reduction operator
/// and the original inputs, verify that an execution result matches the MPI
/// semantics of that collective. Returns "" on success, else a diagnostic.
namespace bine::runtime {

namespace detail {

/// Reference reduction of logical block `id` across all ranks' inputs.
template <typename T>
std::vector<T> reduced_block(const sched::Schedule& s, ReduceOp op,
                             std::span<const std::vector<T>> inputs, i64 id) {
  std::vector<T> acc = initial_block(s, inputs, 0, id);
  for (Rank r = 1; r < s.p; ++r) {
    const std::vector<T> next = initial_block(s, inputs, r, id);
    reduce_into<T>(op, acc, next);
  }
  return acc;
}

template <typename T>
std::string check_block([[maybe_unused]] const sched::Schedule& s, const ExecResult<T>& res,
                        Rank holder, i64 id, const std::vector<T>& expected_data,
                        const RankSet& expected_contrib) {
  const BlockSlot<T>& slot =
      res.ranks[static_cast<size_t>(holder)].slots[static_cast<size_t>(id)];
  std::ostringstream err;
  if (!slot.valid) {
    err << "rank " << holder << " block " << id << " missing";
    return err.str();
  }
  if (slot.data != expected_data) {
    err << "rank " << holder << " block " << id << " has wrong data";
    return err.str();
  }
  if (!(slot.contributors == expected_contrib)) {
    err << "rank " << holder << " block " << id << " has wrong contributor set";
    return err.str();
  }
  return {};
}

}  // namespace detail

/// Verify the final state of `res` against the semantics of s.coll.
template <typename T>
std::string verify(const sched::Schedule& s, ReduceOp op,
                   std::span<const std::vector<T>> inputs, const ExecResult<T>& res) {
  using detail::check_block;
  using detail::initial_block;
  using sched::Collective;

  const RankSet all = RankSet::full(s.p);
  std::string err;
  switch (s.coll) {
    case Collective::bcast:
      // Every rank holds every block with the root's data.
      for (Rank r = 0; r < s.p; ++r)
        for (i64 b = 0; b < s.nblocks; ++b) {
          err = check_block(s, res, r, b, initial_block(s, inputs, s.root, b),
                            RankSet::single(s.p, s.root));
          if (!err.empty()) return err;
        }
      return {};
    case Collective::reduce:
      // The root holds every block fully reduced.
      for (i64 b = 0; b < s.nblocks; ++b) {
        err = check_block(s, res, s.root, b, detail::reduced_block(s, op, inputs, b), all);
        if (!err.empty()) return err;
      }
      return {};
    case Collective::gather:
      // The root holds block b with rank b's contribution.
      for (i64 b = 0; b < s.nblocks; ++b) {
        err = check_block(s, res, s.root, b, initial_block(s, inputs, b, b),
                          RankSet::single(s.p, b));
        if (!err.empty()) return err;
      }
      return {};
    case Collective::scatter:
      // Rank r ends with block r carrying the root's data.
      for (Rank r = 0; r < s.p; ++r) {
        err = check_block(s, res, r, r, initial_block(s, inputs, s.root, r),
                          RankSet::single(s.p, s.root));
        if (!err.empty()) return err;
      }
      return {};
    case Collective::allgather:
      // Everyone holds block b with rank b's contribution.
      for (Rank r = 0; r < s.p; ++r)
        for (i64 b = 0; b < s.nblocks; ++b) {
          err = check_block(s, res, r, b, initial_block(s, inputs, b, b),
                            RankSet::single(s.p, b));
          if (!err.empty()) return err;
        }
      return {};
    case Collective::reduce_scatter:
      // Rank r holds block r fully reduced.
      for (Rank r = 0; r < s.p; ++r) {
        err = check_block(s, res, r, r, detail::reduced_block(s, op, inputs, r), all);
        if (!err.empty()) return err;
      }
      return {};
    case Collective::allreduce:
      // Everyone holds every block fully reduced.
      for (Rank r = 0; r < s.p; ++r)
        for (i64 b = 0; b < s.nblocks; ++b) {
          err = check_block(s, res, r, b, detail::reduced_block(s, op, inputs, b), all);
          if (!err.empty()) return err;
        }
      return {};
    case Collective::alltoall:
      // Rank r holds block (src, r) for every src.
      for (Rank r = 0; r < s.p; ++r)
        for (Rank src = 0; src < s.p; ++src) {
          const i64 id = src * s.p + r;
          err = check_block(s, res, r, id, initial_block(s, inputs, src, id),
                            RankSet::single(s.p, src));
          if (!err.empty()) return err;
        }
      return {};
  }
  return "unknown collective";
}

}  // namespace bine::runtime
