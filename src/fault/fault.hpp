#pragma once

#include <cstdio>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

/// The fault model: what the flagship systems the paper evaluates on
/// (LUMI, Leonardo, Fugaku) actually look like at scale -- degraded links,
/// dead links, failed ranks, lossy deliveries -- expressed as a single
/// deterministic, seeded spec that every layer of the stack honours:
///
///   * `net::SystemProfile::faults` carries a FaultSpec; harness::Runner
///     applies it when building a machine instance -- the RouteCache's
///     inverse-bandwidth columns are degraded per link class, sampled /
///     listed links are severed (a tiny residual bandwidth keeps simulated
///     times finite and enormous), and failed ranks are removed from the
///     placement, so collectives rebuild over the surviving-rank subset.
///   * The compiled executor takes the spec as an *injection hook*: a
///     seeded hash over (step, delivery) drops or corrupts deliveries, so
///     `Runner::run_verified` provably detects the damage (not-ok
///     VerifiedRun), never silently absorbs it.
///   * The sweep engine and tuner classify per-cell failures through
///     `classify()` -- fault::TransientError retries deterministically, a
///     bounded number of times; everything else is permanent and becomes a
///     structured error row / excluded cell instead of a process abort.
///   * Artifact emission (DecisionTable / BENCH_*.json) goes through
///     `write_file_atomic` / `AtomicFile`: write-temp-then-rename, so a
///     crash mid-write never leaves a torn file; `load_or_quarantine`-style
///     readers rename damage aside instead of failing hard.
///
/// The zero-fault path is bit-identical to a run with no spec at all: a
/// `trivial()` spec is never consulted (Runner treats it as absent), keys
/// carry fault epoch 0, and no hook branches are taken.
namespace bine::fault {

/// How a failure is treated by the self-healing sweep layers.
enum class FaultClass {
  transient,  ///< worth a bounded deterministic retry (link flap, contention)
  permanent,  ///< structural: record, exclude, degrade -- never retry
};

[[nodiscard]] constexpr const char* to_string(FaultClass c) noexcept {
  return c == FaultClass::transient ? "transient" : "permanent";
}

/// Throw this (or a subclass) from a metric backend / work item to mark the
/// failure retryable. Everything else classifies permanent.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by harness::CellGuard::checkpoint when a work item overruns its
/// SweepPlan::cell_deadline_ms budget. Deliberately NOT a TransientError: a
/// wedged cell re-run under the same budget wedges again, so the retry
/// machinery classifies it permanent and the sweep surfaces a structured
/// CellError with deadline_exceeded set instead of a stalled shard.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Is the in-flight exception a DeadlineExceeded? For tagging the CellError
/// kind inside catch (...) blocks (alongside classify_current_exception).
[[nodiscard]] bool current_exception_is_deadline() noexcept;

/// Classification table (see DESIGN.md): TransientError -> transient,
/// any other exception -> permanent.
[[nodiscard]] FaultClass classify(const std::exception& e) noexcept;

/// Classify the in-flight exception inside a catch block. Non-std::exception
/// payloads classify permanent.
[[nodiscard]] FaultClass classify_current_exception() noexcept;

/// The in-flight exception's what() (or a placeholder for non-std payloads),
/// for building structured error rows inside catch (...) blocks.
[[nodiscard]] std::string describe_current_exception();

/// Deterministic, seeded description of a degraded machine. Every field
/// defaults to "healthy"; `trivial()` specs are ignored everywhere, which is
/// what keeps the fault-free path bit-identical to a spec-free run.
struct FaultSpec {
  u64 seed = 0;

  /// Per-link-class bandwidth multipliers in (0, 1]: 0.5 = the class runs at
  /// half bandwidth. Applied to RouteCache's inverse-bandwidth columns.
  double degrade_local = 1.0;
  double degrade_global = 1.0;
  double degrade_intra_node = 1.0;

  /// Fraction of links deterministically severed: link l is dead when the
  /// seeded hash of l lands below the fraction. Independent of link class.
  double link_outage_fraction = 0.0;
  /// Explicitly severed link ids (in addition to the sampled outages).
  std::vector<i64> dead_links;
  /// Residual bandwidth (B/s) modelling a severed link: simulated times stay
  /// finite but enormous, so selection routes around the outage instead of
  /// comparing infinities.
  double dead_link_bandwidth = 1.0;

  /// Ranks considered failed: collectives over `nodes` ranks rebuild over
  /// the survivors in [0, nodes) (harness::Runner remaps the placement).
  std::vector<Rank> failed_ranks;

  /// Executor injection: per-delivery probabilities, decided by a seeded
  /// hash of (step, delivery index) -- deterministic for any thread count.
  double drop_fraction = 0.0;     ///< delivery silently discarded
  double corrupt_fraction = 0.0;  ///< low bit of the payload's first element flipped

  /// All-defaults spec: no layer consults it (the zero-fault parity contract).
  [[nodiscard]] bool trivial() const noexcept;
  /// Any link-level effect (degradation or outage)?
  [[nodiscard]] bool degrades_links() const noexcept;
  [[nodiscard]] bool has_failed_ranks() const noexcept { return !failed_ranks.empty(); }
  [[nodiscard]] bool has_exec_injection() const noexcept {
    return drop_fraction > 0 || corrupt_fraction > 0;
  }

  /// Stable content fingerprint; doubles by bit pattern. Used as the
  /// ScheduleCache fault epoch and mixed into profile fingerprints, so a
  /// changed fault model can never silently serve stale artifacts.
  [[nodiscard]] u64 fingerprint() const;

  [[nodiscard]] bool rank_failed(Rank r) const noexcept;
  /// Live ranks among [0, p), ascending.
  [[nodiscard]] std::vector<Rank> survivor_ranks(i64 p) const;
  [[nodiscard]] i64 survivor_count(i64 p) const;

  /// Seeded outage decision for one link id (explicit list OR sampled).
  [[nodiscard]] bool link_dead(i64 link) const noexcept;

  /// Seeded injection decisions for one delivery of one step.
  [[nodiscard]] bool drop_delivery(size_t step, u64 delivery) const noexcept;
  [[nodiscard]] bool corrupt_delivery(size_t step, u64 delivery) const noexcept;

  /// Throws std::invalid_argument on out-of-domain fields (factors outside
  /// (0, 1], negative fractions, negative rank ids).
  void validate() const;
};

/// Parse the BINE_FAULT_SPEC environment variable into a spec, or nullptr
/// when unset/empty. Format: comma-separated key=value pairs --
///   seed=7,degrade_global=0.5,degrade_local=0.9,degrade_intra=0.95,
///   outage=0.02,dead_bw=1,drop=0.01,corrupt=0.01,failed=0:3:5
/// (failed ranks are ':'-separated). Throws std::invalid_argument on
/// malformed input -- strict, position-bearing (every message names the
/// byte offset of the offending token, matching tune/json's error style):
/// empty pairs, empty keys or values, duplicate keys, trailing separators
/// and trailing garbage after a number are all rejected. The CI
/// fault-injection job uses this to run the whole tier-1 suite on a
/// degraded machine model.
[[nodiscard]] std::shared_ptr<const FaultSpec> spec_from_env();

/// Parse a spec string (the BINE_FAULT_SPEC syntax above); empty -> nullptr.
[[nodiscard]] std::shared_ptr<const FaultSpec> parse_spec(std::string_view text);

/// Canonical inverse of parse_spec: key=value pairs in a fixed order, only
/// for fields that differ from their defaults (an all-defaults spec is the
/// empty string, which parse_spec maps back to "no spec"). Doubles print as
/// %.17g, so parse_spec(spec_to_string(s)) reproduces s exactly and equal
/// specs serialize byte-identically -- the wire codec for fault models
/// carried on serialized sweep plans.
[[nodiscard]] std::string spec_to_string(const FaultSpec& spec);

/// Bounded deterministic retry backoff: sleeps base_ms * 2^(attempt-1)
/// milliseconds, capped at cap_ms; base_ms == 0 sleeps nothing (the default
/// everywhere results must stay time-independent).
void retry_backoff(i64 attempt, i64 base_ms, i64 cap_ms = 1000);

// --- crash-safe artifact emission -------------------------------------------

/// Write-temp-then-rename file emission: the target either keeps its old
/// content or atomically becomes the new content -- a crash mid-write can
/// never leave a torn or half-parsed artifact. Open failure leaves the
/// object false-y; commit() flushes, fsyncs and renames.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  /// Discards the temp file when not committed (the crash-simulation path
  /// the tests drive: destruction without commit leaves the target intact).
  ~AtomicFile();
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  [[nodiscard]] explicit operator bool() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::FILE* handle() noexcept { return file_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& temp_path() const noexcept { return temp_; }

  /// Flush + fsync + rename over the target. Returns false (and removes the
  /// temp file) on failure; true exactly once.
  [[nodiscard]] bool commit();

 private:
  std::string path_;
  std::string temp_;
  std::FILE* file_ = nullptr;
};

/// Atomically replace `path` with `content` (AtomicFile under the hood).
/// Throws std::runtime_error on failure.
void write_file_atomic(const std::string& path, std::string_view content);

/// Move a damaged artifact aside as `path + ".corrupt"` so the next write
/// starts clean (quarantine-on-load). Returns the quarantine path, or an
/// empty string when the rename failed.
[[nodiscard]] std::string quarantine_file(const std::string& path);

/// Remove stale AtomicFile temps ("<path>.tmp.<pid>.<n>") stranded by a
/// crash between temp write and rename. Only temps whose writer process is
/// gone are removed -- a live pid (including our own) means a concurrent
/// writer whose temp must survive; names that don't parse as pid.counter
/// are left alone. Sweep/journal startup calls this for its own artifact
/// paths so a kill-loop can never accumulate garbage. Returns the number of
/// temps removed.
i64 clean_stale_temps(const std::string& path);

}  // namespace bine::fault
