#include "fault/fault.hpp"

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace bine::fault {

namespace {

/// splitmix64 finalizer: the standard strong 64-bit mixer. All fault
/// sampling funnels through it so decisions depend only on (seed, site),
/// never on thread schedule or iteration order.
[[nodiscard]] constexpr u64 mix64(u64 x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Map a hashed site to [0, 1) and compare against a probability.
[[nodiscard]] bool hash_below(u64 h, double fraction) noexcept {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  // 53 high bits -> exactly representable uniform double in [0, 1).
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return unit < fraction;
}

[[nodiscard]] u64 double_bits(double d) noexcept {
  u64 bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// FNV-1a over a value's bytes, continuing from `h`.
template <class T>
[[nodiscard]] u64 fnv_mix(u64 h, T value) noexcept {
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  for (unsigned char b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("fault::FaultSpec: ") + what);
}

/// Position-bearing spec rejection (tune/json's error style): every message
/// names the byte offset of the offending token within the spec string.
[[noreturn]] void spec_fail(size_t at, const std::string& what) {
  throw std::invalid_argument("fault spec: " + what + " at byte " +
                              std::to_string(at));
}

/// Strict double: the whole token must be consumed, no leading/trailing
/// whitespace (strtod would silently skip it -- trailing garbage in disguise).
[[nodiscard]] double parse_double_field(std::string_view key, std::string_view text,
                                        size_t at) {
  const std::string buf(text);
  if (buf.empty() || buf.find_first_of(" \t\n\r\f\v") != std::string::npos)
    spec_fail(at, "bad number for '" + std::string(key) + "': '" + buf + "'");
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size())
    spec_fail(at + static_cast<size_t>(end - buf.c_str()),
              "trailing garbage after number for '" + std::string(key) + "': '" +
                  buf + "'");
  return v;
}

[[nodiscard]] i64 parse_int_field(std::string_view key, std::string_view text,
                                  size_t at) {
  i64 v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || text.empty())
    spec_fail(at, "bad integer for '" + std::string(key) + "': '" +
                      std::string(text) + "'");
  if (ptr != text.data() + text.size())
    spec_fail(at + static_cast<size_t>(ptr - text.data()),
              "trailing garbage after integer for '" + std::string(key) + "': '" +
                  std::string(text) + "'");
  return v;
}

}  // namespace

FaultClass classify(const std::exception& e) noexcept {
  return dynamic_cast<const TransientError*>(&e) != nullptr ? FaultClass::transient
                                                            : FaultClass::permanent;
}

FaultClass classify_current_exception() noexcept {
  try {
    throw;
  } catch (const std::exception& e) {
    return classify(e);
  } catch (...) {
    return FaultClass::permanent;
  }
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

bool current_exception_is_deadline() noexcept {
  try {
    throw;
  } catch (const DeadlineExceeded&) {
    return true;
  } catch (...) {
    return false;
  }
}

bool FaultSpec::trivial() const noexcept {
  return !degrades_links() && !has_failed_ranks() && !has_exec_injection();
}

bool FaultSpec::degrades_links() const noexcept {
  return degrade_local != 1.0 || degrade_global != 1.0 || degrade_intra_node != 1.0 ||
         link_outage_fraction > 0.0 || !dead_links.empty();
}

u64 FaultSpec::fingerprint() const {
  u64 h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = fnv_mix(h, seed);
  h = fnv_mix(h, double_bits(degrade_local));
  h = fnv_mix(h, double_bits(degrade_global));
  h = fnv_mix(h, double_bits(degrade_intra_node));
  h = fnv_mix(h, double_bits(link_outage_fraction));
  h = fnv_mix(h, double_bits(dead_link_bandwidth));
  h = fnv_mix(h, static_cast<u64>(dead_links.size()));
  for (i64 l : dead_links) h = fnv_mix(h, l);
  h = fnv_mix(h, static_cast<u64>(failed_ranks.size()));
  for (Rank r : failed_ranks) h = fnv_mix(h, r);
  h = fnv_mix(h, double_bits(drop_fraction));
  h = fnv_mix(h, double_bits(corrupt_fraction));
  // A non-trivial spec must never fingerprint to 0 (0 is the reserved
  // "no faults" epoch in ScheduleCache keys).
  if (h == 0 && !trivial()) h = 1;
  return trivial() ? 0 : h;
}

bool FaultSpec::rank_failed(Rank r) const noexcept {
  return std::find(failed_ranks.begin(), failed_ranks.end(), r) != failed_ranks.end();
}

std::vector<Rank> FaultSpec::survivor_ranks(i64 p) const {
  std::vector<Rank> out;
  out.reserve(static_cast<size_t>(p));
  for (Rank r = 0; r < p; ++r)
    if (!rank_failed(r)) out.push_back(r);
  return out;
}

i64 FaultSpec::survivor_count(i64 p) const {
  i64 n = 0;
  for (Rank r = 0; r < p; ++r)
    if (!rank_failed(r)) ++n;
  return n;
}

bool FaultSpec::link_dead(i64 link) const noexcept {
  if (std::find(dead_links.begin(), dead_links.end(), link) != dead_links.end())
    return true;
  if (link_outage_fraction <= 0.0) return false;
  const u64 h = mix64(mix64(seed ^ 0x6f75746167656c6bULL) ^ static_cast<u64>(link));
  return hash_below(h, link_outage_fraction);
}

bool FaultSpec::drop_delivery(size_t step, u64 delivery) const noexcept {
  if (drop_fraction <= 0.0) return false;
  const u64 h =
      mix64(mix64(seed ^ 0x64726f70646c7672ULL) ^ mix64(static_cast<u64>(step)) ^
            delivery);
  return hash_below(h, drop_fraction);
}

bool FaultSpec::corrupt_delivery(size_t step, u64 delivery) const noexcept {
  if (corrupt_fraction <= 0.0) return false;
  const u64 h =
      mix64(mix64(seed ^ 0x636f7272757074ULL) ^ mix64(static_cast<u64>(step)) ^
            delivery);
  return hash_below(h, corrupt_fraction);
}

void FaultSpec::validate() const {
  const auto factor_ok = [](double f) { return f > 0.0 && f <= 1.0 && std::isfinite(f); };
  require(factor_ok(degrade_local), "degrade_local must be in (0, 1]");
  require(factor_ok(degrade_global), "degrade_global must be in (0, 1]");
  require(factor_ok(degrade_intra_node), "degrade_intra must be in (0, 1]");
  require(link_outage_fraction >= 0.0 && link_outage_fraction <= 1.0 &&
              std::isfinite(link_outage_fraction),
          "outage fraction must be in [0, 1]");
  require(dead_link_bandwidth > 0.0 && std::isfinite(dead_link_bandwidth),
          "dead link bandwidth must be positive");
  require(drop_fraction >= 0.0 && drop_fraction <= 1.0 && std::isfinite(drop_fraction),
          "drop fraction must be in [0, 1]");
  require(corrupt_fraction >= 0.0 && corrupt_fraction <= 1.0 &&
              std::isfinite(corrupt_fraction),
          "corrupt fraction must be in [0, 1]");
  for (i64 l : dead_links) require(l >= 0, "dead link ids must be non-negative");
  for (Rank r : failed_ranks) require(r >= 0, "failed rank ids must be non-negative");
}

std::shared_ptr<const FaultSpec> parse_spec(std::string_view text) {
  if (text.empty()) return nullptr;
  auto spec = std::make_shared<FaultSpec>();
  std::vector<std::string> seen;
  size_t pos = 0;
  for (;;) {
    const size_t start = pos;
    const size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view pair = text.substr(start, comma - start);
    if (pair.empty())
      spec_fail(start, comma == text.size() ? "trailing ','" : "empty key=value pair");
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos)
      spec_fail(start, "expected key=value, got '" + std::string(pair) + "'");
    if (eq == 0) spec_fail(start, "empty key");
    const std::string_view key = pair.substr(0, eq);
    const std::string_view val = pair.substr(eq + 1);
    const size_t val_at = start + eq + 1;
    if (val.empty()) spec_fail(val_at, "empty value for '" + std::string(key) + "'");
    if (std::find(seen.begin(), seen.end(), key) != seen.end())
      spec_fail(start, "duplicate key '" + std::string(key) + "'");
    seen.emplace_back(key);
    if (key == "seed") {
      spec->seed = static_cast<u64>(parse_int_field(key, val, val_at));
    } else if (key == "degrade_local") {
      spec->degrade_local = parse_double_field(key, val, val_at);
    } else if (key == "degrade_global") {
      spec->degrade_global = parse_double_field(key, val, val_at);
    } else if (key == "degrade_intra") {
      spec->degrade_intra_node = parse_double_field(key, val, val_at);
    } else if (key == "outage") {
      spec->link_outage_fraction = parse_double_field(key, val, val_at);
    } else if (key == "dead_bw") {
      spec->dead_link_bandwidth = parse_double_field(key, val, val_at);
    } else if (key == "drop") {
      spec->drop_fraction = parse_double_field(key, val, val_at);
    } else if (key == "corrupt") {
      spec->corrupt_fraction = parse_double_field(key, val, val_at);
    } else if (key == "dead_links" || key == "failed") {
      auto& dst = (key == "failed") ? spec->failed_ranks : spec->dead_links;
      size_t vp = 0;
      for (;;) {
        const size_t colon = std::min(val.find(':', vp), val.size());
        const std::string_view item = val.substr(vp, colon - vp);
        if (item.empty())
          spec_fail(val_at + vp, "empty list entry for '" + std::string(key) + "'");
        dst.push_back(parse_int_field(key, item, val_at + vp));
        if (colon == val.size()) break;
        vp = colon + 1;
      }
    } else {
      spec_fail(start, "unknown key '" + std::string(key) + "'");
    }
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  spec->validate();
  return spec;
}

std::string spec_to_string(const FaultSpec& spec) {
  std::string out;
  const auto put = [&out](std::string_view key, const std::string& value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  const auto fmt_double = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  const auto put_list = [&put](std::string_view key, const auto& items) {
    std::string value;
    for (size_t i = 0; i < items.size(); ++i)
      value += (i ? ":" : "") + std::to_string(items[i]);
    put(key, value);
  };
  if (spec.seed != 0) put("seed", std::to_string(spec.seed));
  if (spec.degrade_local != 1.0) put("degrade_local", fmt_double(spec.degrade_local));
  if (spec.degrade_global != 1.0)
    put("degrade_global", fmt_double(spec.degrade_global));
  if (spec.degrade_intra_node != 1.0)
    put("degrade_intra", fmt_double(spec.degrade_intra_node));
  if (spec.link_outage_fraction != 0.0)
    put("outage", fmt_double(spec.link_outage_fraction));
  if (!spec.dead_links.empty()) put_list("dead_links", spec.dead_links);
  if (spec.dead_link_bandwidth != 1.0)
    put("dead_bw", fmt_double(spec.dead_link_bandwidth));
  if (!spec.failed_ranks.empty()) put_list("failed", spec.failed_ranks);
  if (spec.drop_fraction != 0.0) put("drop", fmt_double(spec.drop_fraction));
  if (spec.corrupt_fraction != 0.0) put("corrupt", fmt_double(spec.corrupt_fraction));
  return out;
}

std::shared_ptr<const FaultSpec> spec_from_env() {
  const char* env = std::getenv("BINE_FAULT_SPEC");
  if (env == nullptr || *env == '\0') return nullptr;
  return parse_spec(env);
}

void retry_backoff(i64 attempt, i64 base_ms, i64 cap_ms) {
  if (base_ms <= 0 || attempt <= 0) return;
  i64 delay = base_ms;
  for (i64 i = 1; i < attempt && delay < cap_ms; ++i) delay *= 2;
  std::this_thread::sleep_for(std::chrono::milliseconds(std::min(delay, cap_ms)));
}

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  // Unique per process so concurrent writers never clobber each other's temp;
  // a monotonic counter disambiguates repeated writes within one process.
  static std::atomic<u64> counter{0};
  temp_ = path_ + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
          std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  file_ = std::fopen(temp_.c_str(), "wb");
}

AtomicFile::~AtomicFile() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(temp_.c_str());
  }
}

bool AtomicFile::commit() {
  if (file_ == nullptr) return false;
  bool ok = std::fflush(file_) == 0;
  if (ok) ok = ::fsync(::fileno(file_)) == 0;
  ok = (std::fclose(file_) == 0) && ok;
  file_ = nullptr;
  if (ok) ok = std::rename(temp_.c_str(), path_.c_str()) == 0;
  if (!ok) std::remove(temp_.c_str());
  return ok;
}

void write_file_atomic(const std::string& path, std::string_view content) {
  AtomicFile out(path);
  if (!out) throw std::runtime_error("cannot open temp file for " + path);
  if (!content.empty() &&
      std::fwrite(content.data(), 1, content.size(), out.handle()) != content.size())
    throw std::runtime_error("short write to temp file for " + path);
  if (!out.commit()) throw std::runtime_error("cannot commit atomic write to " + path);
}

std::string quarantine_file(const std::string& path) {
  const std::string aside = path + ".corrupt";
  std::remove(aside.c_str());
  if (std::rename(path.c_str(), aside.c_str()) != 0) return {};
  return aside;
}

i64 clean_stale_temps(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".tmp.";
  DIR* d = ::opendir(dir.empty() ? "/" : dir.c_str());
  if (d == nullptr) return 0;
  std::vector<std::string> stale;
  while (const dirent* e = ::readdir(d)) {
    const std::string_view name = e->d_name;
    if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix)
      continue;
    // The AtomicFile naming scheme is "<path>.tmp.<pid>.<counter>"; anything
    // matching the prefix but not that shape is not ours -- leave it alone.
    const std::string_view tail = name.substr(prefix.size());
    const size_t dot = tail.find('.');
    if (dot == std::string_view::npos || dot == 0 || dot + 1 >= tail.size()) continue;
    i64 pid = 0, seq = 0;
    const std::string_view pid_sv = tail.substr(0, dot);
    const std::string_view seq_sv = tail.substr(dot + 1);
    auto pr = std::from_chars(pid_sv.data(), pid_sv.data() + pid_sv.size(), pid);
    auto sr = std::from_chars(seq_sv.data(), seq_sv.data() + seq_sv.size(), seq);
    if (pr.ec != std::errc{} || pr.ptr != pid_sv.data() + pid_sv.size() ||
        sr.ec != std::errc{} || sr.ptr != seq_sv.data() + seq_sv.size() || pid <= 0)
      continue;
    // A live writer's temp (our own process included) is in flight, not
    // stale. kill(pid, 0) probes existence: only ESRCH proves the process is
    // gone (EPERM means alive-but-not-ours).
    if (pid == static_cast<i64>(::getpid())) continue;
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) continue;
    stale.push_back((dir.empty() ? std::string("/") : dir + "/") + std::string(name));
  }
  ::closedir(d);
  i64 removed = 0;
  for (const std::string& temp : stale)
    if (std::remove(temp.c_str()) == 0) ++removed;
  return removed;
}

}  // namespace bine::fault
