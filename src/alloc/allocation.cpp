#include "alloc/allocation.hpp"

#include <algorithm>
#include <cassert>

namespace bine::alloc {

JobAllocation SyntheticScheduler::sample_job(i64 size) {
  assert(size <= machine_.num_nodes());
  const i64 total = machine_.num_nodes();
  std::vector<char> busy(static_cast<size_t>(total), 0);

  // Occupy random contiguous chunks (other jobs) until the busy fraction is
  // reached, always leaving room for this job.
  const i64 max_busy =
      std::min<i64>(static_cast<i64>(busy_fraction_ * static_cast<double>(total)),
                    total - size);
  i64 occupied = 0;
  std::uniform_int_distribution<i64> start_dist(0, total - 1);
  std::geometric_distribution<i64> len_dist(0.12);  // mean chunk ~ 8 nodes
  while (occupied < max_busy) {
    const i64 start = start_dist(rng_);
    const i64 len = std::min<i64>(1 + len_dist(rng_), max_busy - occupied);
    for (i64 k = 0; k < len; ++k) {
      char& b = busy[static_cast<size_t>((start + k) % total)];
      if (!b) {
        b = 1;
        ++occupied;
      }
    }
  }

  // Slurm-like block distribution: first `size` free nodes in node order,
  // starting from a random offset (jobs do not all start at node 0).
  JobAllocation job;
  job.node_of_rank.reserve(static_cast<size_t>(size));
  const i64 offset = start_dist(rng_);
  for (i64 k = 0; k < total && static_cast<i64>(job.node_of_rank.size()) < size; ++k) {
    const i64 node = (offset + k) % total;
    if (!busy[static_cast<size_t>(node)]) job.node_of_rank.push_back(node);
  }
  assert(static_cast<i64>(job.node_of_rank.size()) == size);
  // Ranks sorted by hostname (node id), as the paper does on real systems.
  std::sort(job.node_of_rank.begin(), job.node_of_rank.end());
  return job;
}

}  // namespace bine::alloc
