#pragma once

#include <random>
#include <vector>

#include "core/types.hpp"

/// Synthetic job allocations for the Fig. 5 study. The paper harvested two
/// weeks of Slurm data from Leonardo and LUMI; we model the salient features
/// of such allocations instead (see DESIGN.md): node names are numbered
/// consecutively across groups (so sorting by hostname = block order), the
/// scheduler walks the free list in order (Slurm block distribution), and the
/// free list is fragmented by previously running jobs.
namespace bine::alloc {

struct Machine {
  i64 num_groups = 0;
  i64 nodes_per_group = 0;
  [[nodiscard]] i64 num_nodes() const { return num_groups * nodes_per_group; }
  [[nodiscard]] i64 group_of(i64 node) const { return node / nodes_per_group; }
};

/// One job's placement: rank r runs on node_of_rank[r] (one rank per node,
/// ranks sorted by hostname as in Sec. 2.2).
struct JobAllocation {
  std::vector<i64> node_of_rank;
  /// Group of each rank on `m`.
  [[nodiscard]] std::vector<i64> groups_on(const Machine& m) const {
    std::vector<i64> g;
    g.reserve(node_of_rank.size());
    for (const i64 n : node_of_rank) g.push_back(m.group_of(n));
    return g;
  }
};

/// Generates job allocations on a machine whose free list is fragmented:
/// a fraction of nodes is already busy (in random contiguous chunks), and a
/// job of `size` nodes takes the first free nodes in node order.
class SyntheticScheduler {
 public:
  SyntheticScheduler(Machine machine, double busy_fraction, u64 seed)
      : machine_(machine), busy_fraction_(busy_fraction), rng_(seed) {}

  /// Sample one job of `size` nodes under a fresh random occupancy.
  [[nodiscard]] JobAllocation sample_job(i64 size);

 private:
  Machine machine_;
  double busy_fraction_;
  std::mt19937_64 rng_;
};

}  // namespace bine::alloc
