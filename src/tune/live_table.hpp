#pragma once

#include <memory>
#include <mutex>

#include "core/types.hpp"
#include "tune/decision_table.hpp"

namespace bine::tune {

/// A DecisionTable served concurrently while being updated: the
/// merge-under-service primitive of the selection daemon.
///
/// Readers take an immutable snapshot (one shared_ptr copy under a mutex --
/// no reader ever blocks on a merge in progress, and a snapshot stays valid
/// for as long as the caller holds it, however many installs happen
/// meanwhile). Writers copy-on-write: merge() clones the current table,
/// folds the delta in, and swaps the pointer, so a table a reader is mid-
/// dispatch through is never mutated. The generation counter ticks once per
/// install -- cheap change detection for caches keyed on table content
/// (exp::plan_fingerprint covers the dump, so a service fingerprints sweep
/// plans against the snapshot it injects, not against "the" table).
class LiveTable {
 public:
  LiveTable() : table_(std::make_shared<const DecisionTable>()) {}
  explicit LiveTable(DecisionTable initial)
      : table_(std::make_shared<const DecisionTable>(std::move(initial))) {}

  /// The current immutable table. Never null.
  [[nodiscard]] std::shared_ptr<const DecisionTable> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_;
  }

  /// Copy-on-write merge: `delta`'s cells win on overlap, fingerprints must
  /// agree where both tables name a profile (DecisionTable::merge's
  /// std::runtime_error passes through and the live table is untouched).
  void merge(const DecisionTable& delta) {
    std::lock_guard<std::mutex> lock(mu_);
    auto next = std::make_shared<DecisionTable>(*table_);
    next->merge(delta);
    table_ = std::move(next);
    ++generation_;
  }

  /// Wholesale replacement (hot reload from disk).
  void install(DecisionTable table) {
    std::lock_guard<std::mutex> lock(mu_);
    table_ = std::make_shared<const DecisionTable>(std::move(table));
    ++generation_;
  }

  /// Ticks on every merge/install; starts at 0.
  [[nodiscard]] u64 generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const DecisionTable> table_;
  u64 generation_ = 0;
};

}  // namespace bine::tune
