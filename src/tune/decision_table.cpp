#include "tune/decision_table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/fnv.hpp"
#include "fault/fault.hpp"
#include "tune/json.hpp"

namespace bine::tune {

namespace {

std::string hex_u64(u64 v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

u64 parse_hex_u64(const std::string& s, const std::string& what) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x')
    throw std::runtime_error("decision table: malformed fingerprint for " + what);
  u64 v = 0;
  for (size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<u64>(c - 'a' + 10);
    else throw std::runtime_error("decision table: malformed fingerprint for " + what);
  }
  return v;
}

void check_intervals(const CellKey& key, const std::vector<SizeInterval>& intervals) {
  const auto where = [&] {
    return std::string(to_string(key.coll)) + " p=" + std::to_string(key.p) + " on '" +
           key.profile + "'";
  };
  if (intervals.empty())
    throw std::invalid_argument("decision table: empty cell for " + where());
  if (intervals.front().lo_bytes != 0)
    throw std::invalid_argument("decision table: first interval of " + where() +
                                " must start at 0");
  for (size_t i = 0; i < intervals.size(); ++i) {
    const SizeInterval& iv = intervals[i];
    if (iv.algorithm.empty())
      throw std::invalid_argument("decision table: unnamed algorithm in " + where());
    if (iv.hi_bytes <= iv.lo_bytes)
      throw std::invalid_argument("decision table: empty interval in " + where());
    if (i + 1 < intervals.size() && intervals[i + 1].lo_bytes != iv.hi_bytes)
      throw std::invalid_argument("decision table: gap or overlap in " + where());
  }
  if (intervals.back().hi_bytes != kNoUpperBound)
    throw std::invalid_argument("decision table: last interval of " + where() +
                                " must be open-ended");
}

}  // namespace

u64 profile_fingerprint(const net::SystemProfile& profile) {
  u64 h = core::kFnvOffset;
  core::fnv_mix_string(h, profile.name);
  core::fnv_mix_string(h, profile.description);
  for (const double d :
       {profile.cost.alpha_local, profile.cost.alpha_global, profile.cost.seg_overhead,
        profile.cost.mem_bandwidth, profile.cost.reduce_bandwidth}) {
    u64 bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    core::fnv_mix_bytes(h, &bits, sizeof(bits));
  }
  // A degraded machine is a different machine: winners tuned under a fault
  // spec must never serve the healthy profile (or vice versa). Trivial/absent
  // specs contribute nothing, keeping fault-free fingerprints stable.
  if (profile.faults && !profile.faults->trivial()) {
    const u64 ffp = profile.faults->fingerprint();
    core::fnv_mix_bytes(h, &ffp, sizeof(ffp));
  }
  return h;
}

void DecisionTable::set_profile(const std::string& name, u64 fingerprint) {
  profiles_[name] = fingerprint;
}

void DecisionTable::set_cell(CellKey key, std::vector<SizeInterval> intervals) {
  check_intervals(key, intervals);
  cells_[std::move(key)] = std::move(intervals);
}

const std::vector<SizeInterval>* DecisionTable::cell(const std::string& profile,
                                                     sched::Collective coll,
                                                     i64 p) const {
  const auto it = cells_.find(CellKey{profile, coll, p});
  return it == cells_.end() ? nullptr : &it->second;
}

const std::string* DecisionTable::lookup(const std::string& profile,
                                         sched::Collective coll, i64 p,
                                         i64 bytes) const {
  const std::vector<SizeInterval>* intervals = cell(profile, coll, p);
  if (!intervals || bytes < 0) return nullptr;
  // The last interval whose lo <= bytes; coverage is a set_cell invariant,
  // so it always contains bytes.
  const auto it = std::upper_bound(
      intervals->begin(), intervals->end(), bytes,
      [](i64 b, const SizeInterval& iv) { return b < iv.lo_bytes; });
  return &std::prev(it)->algorithm;
}

void DecisionTable::merge(const DecisionTable& other) {
  for (const auto& [name, fp] : other.profiles_) {
    const auto it = profiles_.find(name);
    if (it != profiles_.end() && it->second != fp)
      throw std::runtime_error("decision table merge: profile '" + name +
                               "' fingerprint mismatch (" + hex_u64(it->second) +
                               " vs " + hex_u64(fp) + ")");
    profiles_[name] = fp;
  }
  for (const auto& [key, intervals] : other.cells_) cells_[key] = intervals;
}

std::string DecisionTable::dump() const {
  std::ostringstream out;
  out << "{\n  \"format\": \"" << kTableFormat << "\",\n  \"version\": " << kTableVersion
      << ",\n  \"profiles\": {";
  bool first = true;
  for (const auto& [name, fp] : profiles_) {
    out << (first ? "\n" : ",\n") << "    \"" << json::escape(name) << "\": \""
        << hex_u64(fp) << "\"";
    first = false;
  }
  out << (profiles_.empty() ? "},\n" : "\n  },\n") << "  \"cells\": [";
  first = true;
  for (const auto& [key, intervals] : cells_) {
    out << (first ? "\n" : ",\n") << "    {\"profile\": \"" << json::escape(key.profile)
        << "\", \"collective\": \"" << to_string(key.coll) << "\", \"p\": " << key.p
        << ", \"intervals\": [";
    for (size_t i = 0; i < intervals.size(); ++i) {
      const SizeInterval& iv = intervals[i];
      out << (i ? ", " : "") << "{\"lo\": " << iv.lo_bytes << ", \"hi\": "
          << (iv.hi_bytes == kNoUpperBound ? i64{-1} : iv.hi_bytes)
          << ", \"algorithm\": \"" << json::escape(iv.algorithm) << "\"}";
    }
    out << "]}";
    first = false;
  }
  out << (cells_.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return out.str();
}

DecisionTable DecisionTable::parse(std::string_view text, LoadReport* report) {
  const json::Value doc = json::Value::parse(text);
  const std::string& format = doc.at("format", "table").as_string("format");
  if (format != kTableFormat)
    throw std::runtime_error("decision table: unrecognized format '" + format + "'");
  const i64 version = doc.at("version", "table").as_i64("version");
  if (version != kTableVersion)
    throw std::runtime_error(
        "decision table: version mismatch (artifact v" + std::to_string(version) +
        ", this library reads v" + std::to_string(kTableVersion) +
        "); re-tune or convert the artifact");

  DecisionTable table;
  const json::Value& profiles = doc.at("profiles", "table");
  if (profiles.kind != json::Value::Kind::object)
    throw std::runtime_error("decision table: 'profiles' must be an object");
  for (const auto& [name, fp] : profiles.members)
    table.profiles_[name] = parse_hex_u64(fp.as_string("fingerprint"), name);

  LoadReport local;
  LoadReport& rep = report ? *report : local;
  for (const json::Value& cell : doc.at("cells", "table").as_array("cells")) {
    CellKey key;
    key.profile = cell.at("profile", "cell").as_string("profile");
    // Every served cell must be covered by the staleness guard: a cell whose
    // profile carries no fingerprint could never be checked against the
    // consumer's machine model, so it is rejected, not served unguarded.
    if (!table.profiles_.contains(key.profile))
      throw std::runtime_error("decision table: cell references profile '" +
                               key.profile + "' absent from the fingerprint map");
    key.coll = coll::collective_from_name(
        cell.at("collective", "cell").as_string("collective"));
    key.p = cell.at("p", "cell").as_i64("p");
    std::vector<SizeInterval> intervals;
    for (const json::Value& iv : cell.at("intervals", "cell").as_array("intervals")) {
      SizeInterval si;
      si.lo_bytes = iv.at("lo", "interval").as_i64("lo");
      const i64 hi = iv.at("hi", "interval").as_i64("hi");
      si.hi_bytes = hi == -1 ? kNoUpperBound : hi;
      si.algorithm = iv.at("algorithm", "interval").as_string("algorithm");
      // Registry drift: a table may name an algorithm this build no longer
      // registers. Serving it would throw at dispatch time; demote the
      // interval to the heuristic default instead and say so.
      if (!coll::has_algorithm(key.coll, si.algorithm)) {
        const std::string fallback =
            coll::recommended_algorithm(key.coll, key.p, std::max<i64>(si.lo_bytes, 1))
                .name;
        rep.notes.push_back("demoted unknown algorithm '" + si.algorithm + "' to '" +
                            fallback + "' for " + std::string(to_string(key.coll)) +
                            " p=" + std::to_string(key.p) + " on '" + key.profile +
                            "'");
        si.algorithm = fallback;
        ++rep.demoted_intervals;
      }
      intervals.push_back(std::move(si));
    }
    // Demotion can make adjacent intervals agree; re-coalesce so the cell
    // stays canonical (dump() round-trips bit-identically).
    std::vector<SizeInterval> merged;
    for (SizeInterval& si : intervals) {
      if (!merged.empty() && merged.back().algorithm == si.algorithm &&
          merged.back().hi_bytes == si.lo_bytes)
        merged.back().hi_bytes = si.hi_bytes;
      else
        merged.push_back(std::move(si));
    }
    try {
      table.set_cell(std::move(key), std::move(merged));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(e.what());  // structural damage = load failure
    }
    ++rep.cells;
  }
  return table;
}

void DecisionTable::save(const std::string& path) const {
  fault::write_file_atomic(path, dump());
}

DecisionTable DecisionTable::load(const std::string& path, LoadReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("decision table: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), report);
}

std::optional<DecisionTable> DecisionTable::load_or_quarantine(const std::string& path,
                                                               LoadReport* report) {
  LoadReport local;
  LoadReport& rep = report ? *report : local;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    rep.notes.push_back("no decision table at '" + path + "'");
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  try {
    return parse(buf.str(), &rep);
  } catch (const std::exception& e) {
    const std::string aside = fault::quarantine_file(path);
    rep.notes.push_back("quarantined corrupt table '" + path + "'" +
                        (aside.empty() ? std::string(" (quarantine rename failed)")
                                       : " as '" + aside + "'") +
                        ": " + e.what());
    return std::nullopt;
  }
}

Selection select(const DecisionTable& table, const net::SystemProfile& profile,
                 sched::Collective coll, i64 p, i64 bytes, MissPolicy policy) {
  const auto it = table.profiles().find(profile.name);
  if (it != table.profiles().end()) {
    const u64 expect = profile_fingerprint(profile);
    if (it->second != expect)
      throw std::runtime_error(
          "decision table: tuned for a different '" + profile.name +
          "' (fingerprint " + hex_u64(it->second) + " != " + hex_u64(expect) +
          "); the machine model changed -- re-tune");
  }
  if (const std::string* name = table.lookup(profile.name, coll, p, bytes))
    return {&coll::find_algorithm(coll, *name), true};
  if (policy == MissPolicy::error)
    throw std::runtime_error(std::string("decision table: no cell for ") +
                             to_string(coll) + " p=" + std::to_string(p) + " on '" +
                             profile.name + "'");
  // heuristic_default -- and tune_on_miss without a Tuner at hand
  // (harness::TunedRunner implements the tuning variant).
  return {&coll::recommended_algorithm(coll, p, std::max<i64>(bytes, 1)), false};
}

}  // namespace bine::tune
