#include "tune/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bine::tune::json {

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " + std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // The artifacts only ever escape control characters (ASCII), so a
          // basic one-byte decode covers them; anything else round-trips as
          // UTF-8 without escaping.
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    bool integral = true;
    if (pos < text.size() && text[pos] == '.') {
      integral = false;
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    const std::string_view tok = text.substr(start, pos - start);
    if (tok.empty() || tok == "-") fail("malformed number");
    Value v;
    v.kind = Value::Kind::number;
    if (integral) {
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v.integer);
      if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size())
        fail("integer out of range");
      v.is_integer = true;
      v.number = static_cast<double>(v.integer);
    } else {
      v.number = std::strtod(std::string(tok).c_str(), nullptr);
      // strtod saturates overflowing literals (e.g. 1e999) to +-inf; a
      // non-finite value in an artifact is damage, never a tuning result.
      if (!std::isfinite(v.number)) fail("non-finite number");
    }
    return v;
  }

  Value parse_value(int depth) {
    if (depth > 64) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    Value v;
    if (c == '{') {
      ++pos;
      v.kind = Value::Kind::object;
      skip_ws();
      if (peek() == '}') { ++pos; return v; }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        // Duplicate keys make find() order-dependent -- which copy wins would
        // be silent; our emitters never produce them, so reject outright.
        for (const auto& [k, unused] : v.members)
          if (k == key) fail("duplicate object key '" + key + "'");
        skip_ws();
        expect(':');
        v.members.emplace_back(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos;
      v.kind = Value::Kind::array;
      skip_ws();
      if (peek() == ']') { ++pos; return v; }
      for (;;) {
        v.items.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = Value::Kind::string;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) { v.kind = Value::Kind::boolean; v.boolean = true; return v; }
    if (consume_literal("false")) { v.kind = Value::Kind::boolean; return v; }
    if (consume_literal("null")) return v;
    return parse_number();
  }
};

}  // namespace

Value Value::parse(std::string_view text) {
  Parser p{text};
  Value v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage");
  return v;
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(std::string_view key, std::string_view what) const {
  const Value* v = find(key);
  if (!v)
    throw std::runtime_error("json: missing key '" + std::string(key) + "' in " +
                             std::string(what));
  return *v;
}

i64 Value::as_i64(std::string_view what) const {
  if (kind != Kind::number || !is_integer)
    throw std::runtime_error("json: " + std::string(what) + " must be an integer");
  return integer;
}

double Value::as_double(std::string_view what) const {
  if (kind != Kind::number)
    throw std::runtime_error("json: " + std::string(what) + " must be a number");
  return number;
}

const std::string& Value::as_string(std::string_view what) const {
  if (kind != Kind::string)
    throw std::runtime_error("json: " + std::string(what) + " must be a string");
  return str;
}

bool Value::as_bool(std::string_view what) const {
  if (kind != Kind::boolean)
    throw std::runtime_error("json: " + std::string(what) + " must be a boolean");
  return boolean;
}

const std::vector<Value>& Value::as_array(std::string_view what) const {
  if (kind != Kind::array)
    throw std::runtime_error("json: " + std::string(what) + " must be an array");
  return items;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace bine::tune::json
