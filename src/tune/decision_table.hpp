#pragma once

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "coll/registry.hpp"
#include "net/profiles.hpp"

/// The persisted tuning artifact: per (system profile, collective, p) cell, a
/// piecewise decomposition of the message-size axis into intervals with one
/// winning algorithm each (the crossover structure every collective-tuning
/// system from Barchet-Estefanel & Mounié onward persists). tune::Tuner
/// builds tables from sharded candidate sweeps; tune::select() and
/// harness::TunedRunner dispatch through them in O(log intervals).
///
/// Artifact format: versioned JSON (`kTableFormat`/`kTableVersion`), one
/// fingerprint per profile so a table can never silently serve winners tuned
/// for a different machine model. Loading is defensive by contract:
///
///   * format/version mismatches are rejected with a clear error (never a
///     best-effort parse of a future schema);
///   * structural damage (gaps, overlaps, unknown collectives, empty cells)
///     is rejected;
///   * algorithms that no longer exist in coll::registry are *demoted* to
///     the heuristic default for their cell -- reported via LoadReport, so
///     callers can warn -- instead of failing dispatch at runtime;
///   * consumers (select / TunedRunner) verify the profile fingerprint
///     before serving a single decision.
namespace bine::tune {

inline constexpr std::string_view kTableFormat = "bine-decision-table";
inline constexpr i64 kTableVersion = 1;

/// Exclusive upper bound of a cell's last interval ("any larger size").
/// Serialized as -1.
inline constexpr i64 kNoUpperBound = std::numeric_limits<i64>::max();

/// Stable fingerprint of the machine model a table was tuned for: profile
/// name, description (which encodes the topology shape, e.g. the Fugaku
/// sub-torus dims) and the cost-model parameters' exact bit patterns. A
/// non-trivial fault spec attached to the profile is mixed in too -- winners
/// tuned on a degraded machine must never silently serve the healthy one --
/// while fault-free profiles fingerprint exactly as before the fault layer.
[[nodiscard]] u64 profile_fingerprint(const net::SystemProfile& profile);

/// One piece of a cell's size axis: [lo_bytes, hi_bytes) -> algorithm.
struct SizeInterval {
  i64 lo_bytes = 0;              ///< inclusive
  i64 hi_bytes = kNoUpperBound;  ///< exclusive
  std::string algorithm;
  friend bool operator==(const SizeInterval&, const SizeInterval&) = default;
};

struct CellKey {
  std::string profile;
  sched::Collective coll{};
  i64 p = 0;
  friend auto operator<=>(const CellKey&, const CellKey&) = default;
};

/// What load-time validation did to a parsed table.
struct LoadReport {
  i64 cells = 0;
  i64 demoted_intervals = 0;  ///< unknown algorithms replaced by the default
  std::vector<std::string> notes;
};

class DecisionTable {
 public:
  /// Record the fingerprint of a profile this table was tuned for.
  void set_profile(const std::string& name, u64 fingerprint);

  /// Install one cell. Intervals must partition [0, kNoUpperBound) in
  /// order (first lo 0, contiguous, last hi open) with non-empty algorithm
  /// names; throws std::invalid_argument otherwise -- the coverage invariant
  /// is enforced at construction, not discovered at dispatch.
  void set_cell(CellKey key, std::vector<SizeInterval> intervals);

  [[nodiscard]] const std::map<std::string, u64>& profiles() const { return profiles_; }
  [[nodiscard]] const std::map<CellKey, std::vector<SizeInterval>>& cells() const {
    return cells_;
  }

  [[nodiscard]] const std::vector<SizeInterval>* cell(const std::string& profile,
                                                      sched::Collective coll,
                                                      i64 p) const;

  /// Winning algorithm name for (profile, coll, p, bytes): one map lookup
  /// plus an O(log intervals) binary search. nullptr on a miss (cell never
  /// tuned). Does NOT check fingerprints -- that is select()'s job, done
  /// once per consumer, not once per dispatch.
  [[nodiscard]] const std::string* lookup(const std::string& profile,
                                          sched::Collective coll, i64 p,
                                          i64 bytes) const;

  /// Merge `other` into this table: its cells win on overlap (later tuning
  /// runs refresh earlier ones); profile fingerprints must agree where both
  /// tables name the same profile (std::runtime_error otherwise).
  void merge(const DecisionTable& other);

  /// Canonical serialization: fixed field order, cells sorted by key, so
  /// equal tables dump byte-identically (the round-trip tests rely on it).
  [[nodiscard]] std::string dump() const;

  /// Parse + validate (see file comment for the contract). `report`, when
  /// given, receives demotion counts and notes.
  [[nodiscard]] static DecisionTable parse(std::string_view text,
                                           LoadReport* report = nullptr);

  /// Crash-safe save: write-temp-then-rename (fault::write_file_atomic), so
  /// a kill mid-write leaves the previous table intact, never a torn file.
  void save(const std::string& path) const;
  [[nodiscard]] static DecisionTable load(const std::string& path,
                                          LoadReport* report = nullptr);

  /// Defensive load: a file that fails to parse/validate is *quarantined* --
  /// renamed aside as `path + ".corrupt"` with a LoadReport note -- and
  /// nullopt returned, so callers fall back to tuning (tune-on-miss repairs)
  /// instead of failing hard. A missing file is also nullopt (with a note),
  /// distinguishing "no artifact yet" from damage. Only I/O errors that
  /// leave the file in place (e.g. unreadable permissions on the rename)
  /// still throw.
  [[nodiscard]] static std::optional<DecisionTable> load_or_quarantine(
      const std::string& path, LoadReport* report = nullptr);

  friend bool operator==(const DecisionTable&, const DecisionTable&) = default;

 private:
  std::map<std::string, u64> profiles_;
  std::map<CellKey, std::vector<SizeInterval>> cells_;
};

/// What a dispatcher does when the table has no cell for a query.
enum class MissPolicy {
  heuristic_default,  ///< serve coll::recommended_algorithm (the paper's rules)
  error,              ///< throw std::runtime_error
  tune_on_miss,       ///< harness::TunedRunner tunes the cell, then serves it;
                      ///< plain select() (no Tuner at hand) falls back to the
                      ///< heuristic default
};

struct Selection {
  const coll::AlgorithmEntry* entry = nullptr;
  bool from_table = false;  ///< false = heuristic fallback served the miss
};

/// Tuned dispatch: the winning algorithm for (coll, p, bytes) on `profile`.
/// Throws std::runtime_error when the table names `profile` with a different
/// fingerprint (a stale table must never silently serve), and on a miss
/// under MissPolicy::error.
[[nodiscard]] Selection select(const DecisionTable& table,
                               const net::SystemProfile& profile,
                               sched::Collective coll, i64 p, i64 bytes,
                               MissPolicy policy = MissPolicy::heuristic_default);

}  // namespace bine::tune
