#include "tune/tuner.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "harness/parallel.hpp"

namespace bine::tune {

using sched::Collective;

Tuner::Tuner(TunerOptions options) : options_(std::move(options)) {
  grid_ = options_.size_grid.empty() ? harness::paper_vector_sizes(false)
                                     : options_.size_grid;
  std::sort(grid_.begin(), grid_.end());
  grid_.erase(std::unique(grid_.begin(), grid_.end()), grid_.end());
  if (grid_.empty() || grid_.front() <= 0)
    throw std::invalid_argument("tuner: size grid must be positive");
  const bool float_elem = options_.refine_elem == runtime::ElemType::f32 ||
                          options_.refine_elem == runtime::ElemType::f64;
  if (options_.refine_top_k > 0 && float_elem &&
      options_.refine_op == runtime::ReduceOp::prod)
    throw std::invalid_argument(
        "tuner: refinement cannot verify ReduceOp::prod over floating-point "
        "elements (order-dependent rounding); pick an integral refine_elem");
}

std::vector<const coll::AlgorithmEntry*> Tuner::candidates(Collective coll, i64 p) {
  std::vector<const coll::AlgorithmEntry*> out;
  for (const auto& entry : coll::algorithms_for(coll)) {
    if (entry.specialized) continue;
    if (entry.pow2_only && !is_pow2(p)) continue;
    out.push_back(&entry);
  }
  return out;
}

std::vector<SizeInterval> Tuner::tune_cell(harness::Runner& runner, Collective coll,
                                           i64 p) const {
  const std::vector<const coll::AlgorithmEntry*> cands = candidates(coll, p);
  if (cands.empty())
    throw std::runtime_error(std::string("tuner: no applicable algorithm for ") +
                             to_string(coll) + " p=" + std::to_string(p));

  std::vector<const coll::AlgorithmEntry*> winners;
  winners.reserve(grid_.size());
  std::vector<std::pair<double, size_t>> ranked(cands.size());
  for (const i64 size : grid_) {
    // Rank every candidate by simulated time. Pure function of the cell, so
    // sharding cannot reorder anything observable.
    for (size_t k = 0; k < cands.size(); ++k)
      ranked[k] = {runner.run(coll, *cands[k], p, size).seconds, k};
    // stable_sort keeps registry order on ties -- the same tie-break
    // best_of's strict < performs.
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });

    const coll::AlgorithmEntry* winner = nullptr;
    if (options_.refine_top_k > 0) {
      // Correctness gate: the best simulated candidate that also executes
      // and verifies over real buffers wins. Verification outcomes are
      // deterministic, so this stays shard-invariant.
      const size_t k_max =
          std::min<size_t>(static_cast<size_t>(options_.refine_top_k), ranked.size());
      for (size_t k = 0; k < k_max && !winner; ++k) {
        const coll::AlgorithmEntry* cand = cands[ranked[k].second];
        const harness::VerifiedRun v =
            runner.run_verified(coll, *cand, p, size, /*threads=*/1,
                                options_.refine_elem, options_.refine_op);
        if (v.ok) winner = cand;
      }
      if (!winner)
        throw std::runtime_error(std::string("tuner: all top-") +
                                 std::to_string(k_max) + " candidates failed verified "
                                 "execution for " + to_string(coll) +
                                 " p=" + std::to_string(p) +
                                 " size=" + std::to_string(size));
    } else {
      winner = cands[ranked.front().second];
    }
    winners.push_back(winner);
  }

  // Compress per-size winners into the piecewise crossover structure: the
  // winner at grid size s governs [s, next grid size); the first interval
  // extends down to 0 and the last is open-ended.
  std::vector<SizeInterval> intervals;
  for (size_t i = 0; i < grid_.size(); ++i) {
    if (intervals.empty() || intervals.back().algorithm != winners[i]->name) {
      if (!intervals.empty()) intervals.back().hi_bytes = grid_[i];
      intervals.push_back({intervals.empty() ? 0 : grid_[i], kNoUpperBound,
                           winners[i]->name});
    }
  }
  return intervals;
}

DecisionTable Tuner::build(const std::vector<net::SystemProfile>& profiles,
                           const std::vector<Collective>& colls,
                           const std::vector<i64>& node_counts) const {
  DecisionTable table;
  for (const net::SystemProfile& profile : profiles) {
    const u64 fp = profile_fingerprint(profile);
    const auto it = table.profiles().find(profile.name);
    if (it != table.profiles().end() && it->second != fp)
      throw std::invalid_argument("tuner: duplicate profile name '" + profile.name +
                                  "' with different parameters");
    table.set_profile(profile.name, fp);
  }

  // One Runner per profile, shared by all that profile's cells and ALL
  // worker threads (Runner is sweep-grade thread-safe); every Runner shares
  // the process-wide schedule cache, so a (coll, p) pair generates once no
  // matter how many systems rank it.
  std::vector<std::unique_ptr<harness::Runner>> runners;
  runners.reserve(profiles.size());
  for (const net::SystemProfile& profile : profiles)
    runners.push_back(std::make_unique<harness::Runner>(
        profile, options_.spread_placement, options_.seed));

  struct Cell {
    size_t profile_idx;
    Collective coll;
    i64 p;
  };
  std::vector<Cell> cells;
  for (size_t pi = 0; pi < profiles.size(); ++pi)
    for (const Collective coll : colls)
      for (const i64 p : node_counts) cells.push_back({pi, coll, p});

  // The shard axis the table benches lacked: one work item per (system,
  // coll, p) cell, index-addressed results, any thread count.
  std::vector<std::vector<SizeInterval>> results(cells.size());
  harness::parallel_for(
      static_cast<i64>(cells.size()),
      [&](i64 i) {
        const Cell& cell = cells[static_cast<size_t>(i)];
        results[static_cast<size_t>(i)] =
            tune_cell(*runners[cell.profile_idx], cell.coll, cell.p);
      },
      options_.threads);

  for (size_t i = 0; i < cells.size(); ++i)
    table.set_cell(
        CellKey{profiles[cells[i].profile_idx].name, cells[i].coll, cells[i].p},
        std::move(results[i]));
  return table;
}

}  // namespace bine::tune
