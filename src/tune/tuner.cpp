#include "tune/tuner.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/fnv.hpp"
#include "exp/sweep.hpp"

namespace bine::tune {

using sched::Collective;

Tuner::Tuner(TunerOptions options) : options_(std::move(options)) {
  grid_ = options_.size_grid.empty() ? harness::paper_vector_sizes(false)
                                     : options_.size_grid;
  std::sort(grid_.begin(), grid_.end());
  grid_.erase(std::unique(grid_.begin(), grid_.end()), grid_.end());
  if (grid_.empty() || grid_.front() <= 0)
    throw std::invalid_argument("tuner: size grid must be positive");
  const bool float_elem = options_.refine_elem == runtime::ElemType::f32 ||
                          options_.refine_elem == runtime::ElemType::f64;
  if (options_.refine_top_k > 0 && float_elem &&
      options_.refine_op == runtime::ReduceOp::prod)
    throw std::invalid_argument(
        "tuner: refinement cannot verify ReduceOp::prod over floating-point "
        "elements (order-dependent rounding); pick an integral refine_elem");
}

std::vector<const coll::AlgorithmEntry*> Tuner::candidates(Collective coll, i64 p) {
  std::vector<const coll::AlgorithmEntry*> out;
  for (const auto& entry : coll::algorithms_for(coll)) {
    if (entry.specialized) continue;
    if (entry.pow2_only && !is_pow2(p)) continue;
    out.push_back(&entry);
  }
  return out;
}

const coll::AlgorithmEntry* Tuner::winner_at(
    harness::Runner& runner, Collective coll, i64 p, i64 size,
    const std::vector<const coll::AlgorithmEntry*>& cands,
    const harness::CellGuard* guard) const {
  // One candidate-batched pass for the whole pool at this size (bisection
  // midpoints land here; the initial grid batches sizes too, in tune_cell).
  if (guard != nullptr) guard->checkpoint("candidate ranking");
  const std::vector<std::vector<harness::RunResult>> evaluated =
      runner.run_candidates(coll, cands, p, std::span<const i64>(&size, 1));
  std::vector<double> seconds(cands.size());
  for (size_t k = 0; k < cands.size(); ++k) seconds[k] = evaluated[k][0].seconds;
  return pick_winner(runner, coll, p, size, cands, seconds, guard);
}

const coll::AlgorithmEntry* Tuner::pick_winner(
    harness::Runner& runner, Collective coll, i64 p, i64 size,
    const std::vector<const coll::AlgorithmEntry*>& cands,
    const std::vector<double>& seconds, const harness::CellGuard* guard) const {
  // Rank every candidate by simulated time. Pure function of the cell, so
  // sharding cannot reorder anything observable.
  std::vector<std::pair<double, size_t>> ranked(cands.size());
  for (size_t k = 0; k < cands.size(); ++k) ranked[k] = {seconds[k], k};
  // stable_sort keeps registry order on ties -- the same tie-break
  // best_of's strict < performs.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  if (options_.refine_top_k <= 0) return cands[ranked.front().second];

  // Correctness gate: the best simulated candidate that also executes and
  // verifies over real buffers wins. Verification outcomes are
  // deterministic, so this stays shard-invariant.
  const size_t k_max =
      std::min<size_t>(static_cast<size_t>(options_.refine_top_k), ranked.size());
  // Executor threads: cells are already fanned out across shard workers, so
  // nesting the executor's thread pool inside a sharded build would
  // oversubscribe (shard_width x exec_threads threads); only an explicitly
  // serial build lets the executor's size-gated auto default engage.
  const i64 exec_threads = options_.threads == 1 ? 0 : 1;
  for (size_t k = 0; k < k_max; ++k) {
    if (guard != nullptr) guard->checkpoint("verified refinement");
    const coll::AlgorithmEntry* cand = cands[ranked[k].second];
    const harness::VerifiedRun v = runner.run_verified(
        coll, *cand, p, size, exec_threads, options_.refine_elem, options_.refine_op);
    if (v.ok) return cand;
  }
  throw std::runtime_error(std::string("tuner: all top-") + std::to_string(k_max) +
                           " candidates failed verified execution for " +
                           to_string(coll) + " p=" + std::to_string(p) +
                           " size=" + std::to_string(size));
}

std::vector<SizeInterval> Tuner::tune_cell(harness::Runner& runner, Collective coll,
                                           i64 p, const harness::CellGuard* guard) const {
  const std::vector<const coll::AlgorithmEntry*> cands = candidates(coll, p);
  if (cands.empty())
    throw std::runtime_error(std::string("tuner: no applicable algorithm for ") +
                             to_string(coll) + " p=" + std::to_string(p));

  std::vector<i64> grid = grid_;
  // The initial grid is the tuner's bulk work: ONE candidate-batched pass
  // evaluates the whole (candidates x grid) matrix -- the union pair table
  // and compact slot sort amortize over the pool -- then each grid size is
  // ranked from its matrix column. Bit-identical seconds, identical winners.
  if (guard != nullptr) guard->checkpoint("candidate ranking");
  const std::vector<std::vector<harness::RunResult>> evaluated =
      runner.run_candidates(coll, cands, p, grid);
  std::vector<const coll::AlgorithmEntry*> winners;
  winners.reserve(grid.size());
  std::vector<double> seconds(cands.size());
  for (size_t gi = 0; gi < grid.size(); ++gi) {
    for (size_t k = 0; k < cands.size(); ++k) seconds[k] = evaluated[k][gi].seconds;
    winners.push_back(pick_winner(runner, coll, p, grid[gi], cands, seconds, guard));
  }

  // Adaptive refinement (bounded depth): each pass ranks the geometric
  // midpoint of every adjacent pair whose winners differ and inserts it, so
  // the crossover boundary tightens by ~sqrt per pass. Midpoint winners that
  // match neither neighbour (a third algorithm surfacing between grid
  // points) simply become new grid points, and the next pass brackets both
  // of the new crossings.
  for (i64 depth = 0; depth < options_.bisect_depth; ++depth) {
    std::vector<i64> refined_grid;
    std::vector<const coll::AlgorithmEntry*> refined_winners;
    bool inserted = false;
    for (size_t i = 0; i < grid.size(); ++i) {
      refined_grid.push_back(grid[i]);
      refined_winners.push_back(winners[i]);
      if (i + 1 >= grid.size() || winners[i] == winners[i + 1]) continue;
      const i64 mid = static_cast<i64>(std::llround(
          std::sqrt(static_cast<double>(grid[i]) * static_cast<double>(grid[i + 1]))));
      if (mid <= grid[i] || mid >= grid[i + 1]) continue;  // bracket exhausted
      refined_grid.push_back(mid);
      refined_winners.push_back(winner_at(runner, coll, p, mid, cands, guard));
      inserted = true;
    }
    grid = std::move(refined_grid);
    winners = std::move(refined_winners);
    if (!inserted) break;
  }

  // Compress per-size winners into the piecewise crossover structure: the
  // winner at grid size s governs [s, next grid size); the first interval
  // extends down to 0 and the last is open-ended.
  std::vector<SizeInterval> intervals;
  for (size_t i = 0; i < grid.size(); ++i) {
    if (intervals.empty() || intervals.back().algorithm != winners[i]->name) {
      if (!intervals.empty()) intervals.back().hi_bytes = grid[i];
      intervals.push_back({intervals.empty() ? 0 : grid[i], kNoUpperBound,
                           winners[i]->name});
    }
  }
  return intervals;
}

u64 Tuner::options_salt() const {
  u64 h = core::kFnvOffset;
  const auto mix = [&h](u64 v) { core::fnv_mix_bytes(h, &v, sizeof(v)); };
  core::fnv_mix_string(h, "bine.tuner.options.v1");
  mix(grid_.size());
  for (const i64 s : grid_) mix(static_cast<u64>(s));
  mix(static_cast<u64>(options_.refine_top_k));
  mix(static_cast<u64>(options_.bisect_depth));
  mix(static_cast<u64>(static_cast<int>(options_.refine_elem)));
  mix(static_cast<u64>(static_cast<int>(options_.refine_op)));
  return h;
}

namespace {

/// Journal payload codec for a tuned cell: one "lo<TAB>hi<TAB>algorithm"
/// line per SizeInterval. Lossless -- bounds are integers and algorithm
/// names are registry identifiers (no tabs or newlines) -- so a replayed
/// cell reproduces its intervals byte-for-byte.
std::string encode_intervals(const std::vector<SizeInterval>& intervals) {
  std::string out;
  for (const SizeInterval& iv : intervals)
    out += std::to_string(iv.lo_bytes) + "\t" + std::to_string(iv.hi_bytes) + "\t" +
           iv.algorithm + "\n";
  return out;
}

std::vector<SizeInterval> decode_intervals(std::string_view payload) {
  std::vector<SizeInterval> out;
  size_t pos = 0;
  while (pos < payload.size()) {
    const size_t line_end = payload.find('\n', pos);
    if (line_end == std::string_view::npos)
      throw std::runtime_error("tuner journal codec: unterminated line");
    const std::string_view line = payload.substr(pos, line_end - pos);
    pos = line_end + 1;
    const size_t t1 = line.find('\t');
    const size_t t2 = t1 == std::string_view::npos ? t1 : line.find('\t', t1 + 1);
    if (t2 == std::string_view::npos || t2 + 1 >= line.size())
      throw std::runtime_error("tuner journal codec: bad interval line");
    const auto parse_bound = [&](std::string_view s) {
      i64 v = 0;
      const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
      if (ec != std::errc{} || ptr != s.data() + s.size())
        throw std::runtime_error("tuner journal codec: bad interval bound");
      return v;
    };
    out.push_back({parse_bound(line.substr(0, t1)),
                   parse_bound(line.substr(t1 + 1, t2 - t1 - 1)),
                   std::string(line.substr(t2 + 1))});
  }
  if (out.empty()) throw std::runtime_error("tuner journal codec: empty cell");
  return out;
}

}  // namespace

DecisionTable Tuner::build(const std::vector<net::SystemProfile>& profiles,
                           const std::vector<Collective>& colls,
                           const std::vector<i64>& node_counts,
                           BuildReport* report) const {
  DecisionTable table;
  for (const net::SystemProfile& profile : profiles) {
    const u64 fp = profile_fingerprint(profile);
    const auto it = table.profiles().find(profile.name);
    if (it != table.profiles().end() && it->second != fp)
      throw std::invalid_argument("tuner: duplicate profile name '" + profile.name +
                                  "' with different parameters");
    table.set_profile(profile.name, fp);
  }

  // The cell enumeration and cross-system sharding now live in the sweep
  // engine's planner: a tuning run is just a plan over (systems, colls,
  // node counts) whose deduplicated (system, coll, p) work items we measure
  // with tune_cell instead of a metric backend. One Runner per profile,
  // shared by all that profile's cells and ALL worker threads (Runner is
  // sweep-grade thread-safe); every Runner shares the process-wide schedule
  // cache, so a (coll, p) pair generates once no matter how many systems
  // rank it.
  exp::SweepPlan plan;
  plan.name = "tuner_build";
  plan.systems.reserve(profiles.size());
  for (const net::SystemProfile& profile : profiles) {
    exp::SystemSpec spec;
    spec.profile = profile;
    spec.spread_placement = options_.spread_placement;
    spec.seed = options_.seed;
    plan.systems.push_back(std::move(spec));
  }
  plan.colls = colls;
  plan.nodes.counts = node_counts;
  plan.threads = options_.threads;
  // Failure discipline: tolerate_failed_cells -> isolate-and-exclude (the
  // self-healing build), else the pre-fault-layer propagate contract.
  plan.on_error = options_.tolerate_failed_cells ? exp::SweepPlan::OnError::isolate
                                                 : exp::SweepPlan::OnError::propagate;
  plan.transient_retries = options_.transient_retries;
  plan.retry_backoff_ms = options_.retry_backoff_ms;
  // Durable builds: the journal key is the build plan's fingerprint with the
  // tuner's own result-shaping knobs (grid, refinement) salted in, so a
  // differently-configured tuner -- or a changed profile set -- never
  // replays stale cells.
  plan.journal_path = options_.journal_path;
  plan.journal_salt = options_salt();
  plan.cell_deadline_ms = options_.cell_deadline_ms;
  plan.cancel = options_.cancel;
  plan.progress = options_.progress;

  const std::vector<exp::CellRef> cells = exp::enumerate_cells(plan);
  std::vector<std::vector<SizeInterval>> results(cells.size());
  exp::CellCodec codec;
  codec.encode = [&](size_t i, const exp::CellError* err) -> std::string {
    // Only finished cells journal; a failed cell re-runs fresh on resume
    // (its failure may have been environmental, and the retry costs what the
    // original attempt cost).
    return err != nullptr ? std::string() : encode_intervals(results[i]);
  };
  codec.decode = [&](size_t i, std::string_view payload) -> std::optional<exp::CellError> {
    results[i] = decode_intervals(payload);
    return std::nullopt;
  };
  exp::RunCellsReport cell_report;
  const std::vector<exp::CellFailure> failures = exp::run_cells(
      plan,
      [&](size_t i, const exp::CellRef& cell, harness::Runner& runner,
          const harness::CellGuard& guard) {
        results[i] = tune_cell(runner, cell.coll, cell.p, &guard);
      },
      &codec, &cell_report);
  if (!failures.empty() && failures.size() == cells.size())
    throw std::runtime_error("tuner: every cell failed; first: " +
                             failures.front().error.message);

  // Failed cells are excluded with a note (LoadReport-style): the table
  // simply has no entry, so consumers fall through to their MissPolicy.
  // Cancelled cells are likewise absent, but reported separately -- they are
  // not failures, and a journaled re-run picks them up.
  std::vector<bool> skip(cells.size(), false);
  for (const exp::CellFailure& f : failures) skip[f.index] = true;
  BuildReport local;
  BuildReport& rep = report ? *report : local;
  rep.replayed_cells = cell_report.replayed;
  for (std::string& note : cell_report.notes) rep.notes.push_back(std::move(note));
  for (const exp::CellFailure& f : failures) {
    ++rep.failed_cells;
    rep.notes.push_back(
        "excluded cell " + profiles[f.cell.system].name + "/" +
        std::string(to_string(f.cell.coll)) + " p=" + std::to_string(f.cell.p) +
        " after " + std::to_string(f.error.attempts) + " attempt(s): " +
        f.error.message);
  }
  for (const size_t i : cell_report.cancelled) {
    skip[i] = true;
    ++rep.cancelled_cells;
    rep.notes.push_back("cancelled cell " + profiles[cells[i].system].name + "/" +
                        std::string(to_string(cells[i].coll)) +
                        " p=" + std::to_string(cells[i].p) +
                        " (not tuned; resumable from the journal)");
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (skip[i]) continue;
    table.set_cell(CellKey{profiles[cells[i].system].name, cells[i].coll, cells[i].p},
                   std::move(results[i]));
    ++rep.cells;
  }
  return table;
}

}  // namespace bine::tune
