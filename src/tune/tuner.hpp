#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/cancel.hpp"
#include "harness/runner.hpp"
#include "tune/decision_table.hpp"

/// The tuning engine: turns the one-off candidate sweeps the table/figure
/// benches run -- and then throw away -- into persisted decision tables.
///
/// A *cell* is one (system profile, collective, p): the unit the classic
/// collective-tuning literature keys selection by, the sweep-engine
/// planner's work-item unit, and the unit this engine shards. `build`
/// declares a plan over (profiles, collectives, node counts) and lets
/// exp::run_cells enumerate, deduplicate and fan the cells out -- one
/// Runner per profile, cells of different systems running concurrently, all
/// sharing the process-wide schedule cache (generation for a (coll, p) pair
/// happens once no matter how many systems rank it). Inside a cell, every
/// candidate algorithm from coll::registry is ranked at every grid size by
/// the compiled simulator; the per-size winners are then compressed into the
/// piecewise size intervals a DecisionTable stores.
///
/// Ranking is a pure function of (profile, collective, p, grid), so tables
/// are byte-identical for any shard width -- the determinism tests assert
/// serial vs sharded equality. The optional refinement stage keeps that
/// property: it re-checks the top-K simulated candidates per size through
/// the *verified execution* path (compiled executor + postcondition verify,
/// Runner::run_verified with the configured element type / reduce op) and
/// disqualifies any that fail -- a correctness gate over real buffer
/// movement, not a wall-clock re-ranking.
namespace bine::tune {

struct TunerOptions {
  /// Message-size grid (bytes) to rank candidates on; empty = the paper's
  /// sweep sizes (harness::paper_vector_sizes(false)). Sorted + deduped at
  /// use.
  std::vector<i64> size_grid;
  /// > 0: per grid size, re-check the top-K simulated candidates through
  /// verified execution and disqualify failures. 0 = simulation ranking only.
  i64 refine_top_k = 0;
  /// Adaptive grid refinement: up to this many bisection passes between
  /// adjacent grid points whose winners differ. Each pass ranks the
  /// geometric midpoint of every crossover bracket (the same ranking --
  /// including the verified-execution gate -- the base grid uses) and
  /// inserts it into the grid, so DecisionTable crossover boundaries tighten
  /// without a denser global grid. 0 = base grid only. Deterministic: the
  /// refined grid is a pure function of the cell.
  i64 bisect_depth = 0;
  runtime::ElemType refine_elem = runtime::ElemType::u32;
  runtime::ReduceOp refine_op = runtime::ReduceOp::sum;
  /// Shard width for build(); <= 0 = harness::default_thread_count().
  i64 threads = 0;
  /// Runner knobs (must match the consumer's Runner for the table to be
  /// faithful; TunedRunner uses the same defaults).
  bool spread_placement = true;
  u64 seed = 42;
  /// Self-healing builds: a cell whose work item still throws after retries
  /// is *excluded* from the table with a BuildReport note (LoadReport-style)
  /// instead of aborting the whole build; consumers then treat the cell as
  /// never tuned (MissPolicy applies). A build where EVERY cell fails still
  /// throws. Default off: build() propagates the first failure, exactly the
  /// pre-fault-layer contract.
  bool tolerate_failed_cells = false;
  /// Bounded deterministic retry for failures classified transient
  /// (fault::TransientError), with doubling backoff (0 ms = no sleep).
  i64 transient_retries = 0;
  i64 retry_backoff_ms = 0;

  // --- durable builds --------------------------------------------------------
  /// When non-empty, build() journals every tuned cell here (exp::Journal,
  /// keyed by the build plan's fingerprint with the tuner's own grid and
  /// refinement knobs mixed in): a killed build, re-run with the same
  /// inputs, replays finished cells from the journal and produces a
  /// byte-identical DecisionTable. Failed cells are never journaled -- a
  /// resumed build retries them fresh.
  std::string journal_path;
  /// Per-cell wall-clock budget in milliseconds (0 = none), enforced
  /// cooperatively between candidate evaluations; an overrunning cell fails
  /// with fault::DeadlineExceeded under the usual failure discipline.
  i64 cell_deadline_ms = 0;
  /// Cooperative cancellation for build(): in-flight cells drain (and are
  /// journaled), unstarted cells are skipped and counted in
  /// BuildReport::cancelled_cells -- the partial table is resumable via the
  /// journal.
  const harness::CancelToken* cancel = nullptr;
  /// Progress hook: (cells done or replayed so far, total cells).
  std::function<void(size_t done, size_t total)> progress;
};

/// What build() did: cell counts plus one note per excluded cell (only ever
/// non-empty under TunerOptions::tolerate_failed_cells).
struct BuildReport {
  i64 cells = 0;          ///< cells tuned into the table
  i64 failed_cells = 0;   ///< cells excluded after exhausting retries
  i64 replayed_cells = 0; ///< cells answered from the journal (durable builds)
  i64 cancelled_cells = 0;///< cells skipped because the CancelToken fired
  std::vector<std::string> notes;
};

class Tuner {
 public:
  explicit Tuner(TunerOptions options = {});

  [[nodiscard]] const TunerOptions& options() const { return options_; }

  /// Tune every (profile, collective, p) cell and assemble the table
  /// (profiles fingerprinted, cells interval-compressed). Profile names must
  /// be unique. Cell enumeration and sharding delegate to the sweep
  /// engine's planner (exp::enumerate_cells / exp::run_cells): one work item
  /// per deduplicated cell, sharded across `options().threads`, every
  /// Runner sharing the process-wide schedule cache. `report`, when given,
  /// receives cell counts and the exclusion notes of any failed cells
  /// (see TunerOptions::tolerate_failed_cells).
  [[nodiscard]] DecisionTable build(const std::vector<net::SystemProfile>& profiles,
                                    const std::vector<sched::Collective>& colls,
                                    const std::vector<i64>& node_counts,
                                    BuildReport* report = nullptr) const;

  /// Tune one cell with a caller-provided Runner (the tune-on-miss path and
  /// build()'s per-cell work item). Deterministic; throws if no candidate
  /// applies or every refined candidate fails verification. `guard`, when
  /// given, is checkpointed between candidate evaluations so a per-cell
  /// deadline can interrupt a wedged cell.
  [[nodiscard]] std::vector<SizeInterval> tune_cell(
      harness::Runner& runner, sched::Collective coll, i64 p,
      const harness::CellGuard* guard = nullptr) const;

  /// The registry candidates a cell ranks: every non-topology-specialized
  /// algorithm whose rank-count gate admits p, in registry order.
  [[nodiscard]] static std::vector<const coll::AlgorithmEntry*> candidates(
      sched::Collective coll, i64 p);

 private:
  /// Rank every candidate at one size and return the winner (simulated
  /// argmin, refined through verified execution when configured). The whole
  /// pool is evaluated in one candidate-batched pass
  /// (harness::Runner::run_candidates).
  [[nodiscard]] const coll::AlgorithmEntry* winner_at(
      harness::Runner& runner, sched::Collective coll, i64 p, i64 size,
      const std::vector<const coll::AlgorithmEntry*>& cands,
      const harness::CellGuard* guard) const;

  /// Selection given each candidate's already-simulated seconds at one size:
  /// the stable-sort ranking and verified refinement winner_at performs,
  /// factored out so tune_cell can rank every grid size from ONE batched
  /// (candidates x grid) evaluation.
  [[nodiscard]] const coll::AlgorithmEntry* pick_winner(
      harness::Runner& runner, sched::Collective coll, i64 p, i64 size,
      const std::vector<const coll::AlgorithmEntry*>& cands,
      const std::vector<double>& seconds, const harness::CellGuard* guard) const;

  /// The tuner knobs that shape cell results, hashed into the build plan's
  /// journal_salt: a journal written by a differently-configured tuner must
  /// never replay into this one.
  [[nodiscard]] u64 options_salt() const;

  TunerOptions options_;
  std::vector<i64> grid_;  ///< normalized size_grid
};

}  // namespace bine::tune
