#pragma once

#include <vector>

#include "harness/runner.hpp"
#include "tune/decision_table.hpp"

/// The tuning engine: turns the one-off candidate sweeps the table/figure
/// benches run -- and then throw away -- into persisted decision tables.
///
/// A *cell* is one (system profile, collective, p): the unit the classic
/// collective-tuning literature keys selection by, and the unit this engine
/// shards. `build` creates one Runner per profile and fans one work item per
/// cell out over harness::parallel_for, closing the "no cross-system
/// parallelism" gap: cells of different systems run concurrently, all
/// sharing the process-wide schedule cache (generation for a (coll, p) pair
/// happens once no matter how many systems rank it). Inside a cell, every
/// candidate algorithm from coll::registry is ranked at every grid size by
/// the compiled simulator; the per-size winners are then compressed into the
/// piecewise size intervals a DecisionTable stores.
///
/// Ranking is a pure function of (profile, collective, p, grid), so tables
/// are byte-identical for any shard width -- the determinism tests assert
/// serial vs sharded equality. The optional refinement stage keeps that
/// property: it re-checks the top-K simulated candidates per size through
/// the *verified execution* path (compiled executor + postcondition verify,
/// Runner::run_verified with the configured element type / reduce op) and
/// disqualifies any that fail -- a correctness gate over real buffer
/// movement, not a wall-clock re-ranking.
namespace bine::tune {

struct TunerOptions {
  /// Message-size grid (bytes) to rank candidates on; empty = the paper's
  /// sweep sizes (harness::paper_vector_sizes(false)). Sorted + deduped at
  /// use.
  std::vector<i64> size_grid;
  /// > 0: per grid size, re-check the top-K simulated candidates through
  /// verified execution and disqualify failures. 0 = simulation ranking only.
  i64 refine_top_k = 0;
  runtime::ElemType refine_elem = runtime::ElemType::u32;
  runtime::ReduceOp refine_op = runtime::ReduceOp::sum;
  /// Shard width for build(); <= 0 = harness::default_thread_count().
  i64 threads = 0;
  /// Runner knobs (must match the consumer's Runner for the table to be
  /// faithful; TunedRunner uses the same defaults).
  bool spread_placement = true;
  u64 seed = 42;
};

class Tuner {
 public:
  explicit Tuner(TunerOptions options = {});

  [[nodiscard]] const TunerOptions& options() const { return options_; }

  /// Tune every (profile, collective, p) cell and assemble the table
  /// (profiles fingerprinted, cells interval-compressed). Profile names must
  /// be unique. One work item per cell, sharded across `options().threads`.
  [[nodiscard]] DecisionTable build(const std::vector<net::SystemProfile>& profiles,
                                    const std::vector<sched::Collective>& colls,
                                    const std::vector<i64>& node_counts) const;

  /// Tune one cell with a caller-provided Runner (the tune-on-miss path and
  /// build()'s per-cell work item). Deterministic; throws if no candidate
  /// applies or every refined candidate fails verification.
  [[nodiscard]] std::vector<SizeInterval> tune_cell(harness::Runner& runner,
                                                    sched::Collective coll,
                                                    i64 p) const;

  /// The registry candidates a cell ranks: every non-topology-specialized
  /// algorithm whose rank-count gate admits p, in registry order.
  [[nodiscard]] static std::vector<const coll::AlgorithmEntry*> candidates(
      sched::Collective coll, i64 p);

 private:
  TunerOptions options_;
  std::vector<i64> grid_;  ///< normalized size_grid
};

}  // namespace bine::tune
