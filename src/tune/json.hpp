#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/types.hpp"

/// Minimal JSON document model for the tuning artifacts (decision tables,
/// bench snapshots): objects, arrays, strings, integers, doubles, booleans,
/// null. The container bakes no JSON dependency in, and the artifact schema
/// is small and fixed, so a strict ~150-line recursive-descent parser beats
/// carrying one. Writing stays hand-formatted at the call sites (the tables
/// need a canonical field order anyway); `escape` is the shared piece.
namespace bine::tune::json {

class Value {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0;       ///< numeric value (always set for Kind::number)
  i64 integer = 0;         ///< exact value when the token was integral
  bool is_integer = false;
  std::string str;
  std::vector<Value> items;                            ///< Kind::array
  std::vector<std::pair<std::string, Value>> members;  ///< Kind::object, in order

  /// Parse one document; the whole input must be consumed. Throws
  /// std::runtime_error with a byte offset on malformed input.
  [[nodiscard]] static Value parse(std::string_view text);

  /// Object member by key, or nullptr (nullptr too when not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  // Checked accessors: throw std::runtime_error naming `what` on kind
  // mismatch, so artifact loaders produce actionable messages.
  [[nodiscard]] const Value& at(std::string_view key, std::string_view what) const;
  [[nodiscard]] i64 as_i64(std::string_view what) const;
  [[nodiscard]] double as_double(std::string_view what) const;
  [[nodiscard]] const std::string& as_string(std::string_view what) const;
  [[nodiscard]] bool as_bool(std::string_view what) const;
  [[nodiscard]] const std::vector<Value>& as_array(std::string_view what) const;
};

/// JSON string escaping for the hand-formatted writers.
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace bine::tune::json
