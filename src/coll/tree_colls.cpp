#include "coll/tree_colls.hpp"

#include <string>

#include "core/modular.hpp"

namespace bine::coll {

using core::to_physical;
using core::TreeVariant;
using sched::BlockSet;
using sched::Collective;
using sched::Schedule;

namespace {

std::string algo_name(const char* coll, TreeVariant v) {
  return std::string(coll) + "_" + to_string(v) + "_tree";
}

/// Physical block ids held by the subtree of logical rank `l` (p'-space),
/// including the blocks of the extra ranks folded onto subtree members during
/// the non-power-of-two pre-step.
BlockSet subtree_blocks(TreeVariant v, Rank l, i64 p_prime, i64 extra, Rank root, i64 p,
                        sched::ScheduleArena& arena) {
  const core::CircularInterval iv = core::subtree_interval(v, l, p_prime);
  std::vector<i64> ids;
  ids.reserve(static_cast<size_t>(2 * iv.length));
  for (i64 k = 0; k < iv.length; ++k) {
    const i64 x = pmod(iv.start + k, p_prime);
    ids.push_back(to_physical(x, root, p));
    if (x < extra) ids.push_back(to_physical(p_prime + x, root, p));
  }
  return sched::blockset_from_ids(std::move(ids), p, arena);
}

/// Single physical block of logical rank `l`.
BlockSet own_block(Rank l, Rank root, i64 p) {
  return BlockSet::single(to_physical(l, root, p));
}

}  // namespace

Schedule bcast_tree(const Config& cfg, TreeVariant v) {
  Schedule s = make_base(Collective::bcast, cfg, algo_name("bcast", v),
                         sched::BlockSpace::per_vector);
  const i64 p_prime = pow2_floor(cfg.p);
  const i64 extra = cfg.p - p_prime;
  const int sp = log2_exact(p_prime);
  const BlockSet everything = BlockSet::all(cfg.p);

  for (Rank l = 0; l < p_prime; ++l) {
    const int joined = (p_prime == 1) ? 0 : core::join_step(v, l, p_prime);
    for (int step = joined + 1; step < sp; ++step) {
      const Rank child = core::tree_partner(v, l, step, p_prime);
      s.add_exchange(static_cast<size_t>(step), to_physical(l, cfg.root, cfg.p),
                     to_physical(child, cfg.root, cfg.p), everything, false);
    }
  }
  for (i64 i = 0; i < extra; ++i)
    s.add_exchange(static_cast<size_t>(sp), to_physical(i, cfg.root, cfg.p),
                   to_physical(p_prime + i, cfg.root, cfg.p), everything, false);
  s.normalize_steps();
  return s;
}

Schedule reduce_tree(const Config& cfg, TreeVariant v) {
  Schedule s = make_base(Collective::reduce, cfg, algo_name("reduce", v),
                         sched::BlockSpace::per_vector);
  const i64 p_prime = pow2_floor(cfg.p);
  const i64 extra = cfg.p - p_prime;
  const int sp = log2_exact(p_prime);
  const BlockSet everything = BlockSet::all(cfg.p);
  const size_t pre = extra > 0 ? 1 : 0;

  for (i64 i = 0; i < extra; ++i)
    s.add_exchange(0, to_physical(p_prime + i, cfg.root, cfg.p),
                   to_physical(i, cfg.root, cfg.p), everything, true);
  // Reverse every broadcast edge: tree step st runs at output step
  // pre + (sp-1-st), child -> parent, folding with the reduction operator.
  for (Rank l = 0; l < p_prime; ++l) {
    const int joined = (p_prime == 1) ? 0 : core::join_step(v, l, p_prime);
    for (int st = joined + 1; st < sp; ++st) {
      const Rank child = core::tree_partner(v, l, st, p_prime);
      const size_t out_step = pre + static_cast<size_t>(sp - 1 - st);
      s.add_exchange(out_step, to_physical(child, cfg.root, cfg.p),
                     to_physical(l, cfg.root, cfg.p), everything, true);
    }
  }
  s.normalize_steps();
  return s;
}

Schedule gather_tree(const Config& cfg, TreeVariant v) {
  assert(v == TreeVariant::binomial_dh || v == TreeVariant::bine_dh);
  Schedule s = make_base(Collective::gather, cfg, algo_name("gather", v),
                         sched::BlockSpace::per_vector);
  const i64 p_prime = pow2_floor(cfg.p);
  const i64 extra = cfg.p - p_prime;
  const int sp = log2_exact(p_prime);
  const size_t pre = extra > 0 ? 1 : 0;

  for (i64 i = 0; i < extra; ++i)
    s.add_exchange(0, to_physical(p_prime + i, cfg.root, cfg.p),
                   to_physical(i, cfg.root, cfg.p),
                   own_block(p_prime + i, cfg.root, cfg.p), false);
  for (Rank l = 0; l < p_prime; ++l) {
    const int joined = (p_prime == 1) ? 0 : core::join_step(v, l, p_prime);
    for (int st = joined + 1; st < sp; ++st) {
      const Rank child = core::tree_partner(v, l, st, p_prime);
      const size_t out_step = pre + static_cast<size_t>(sp - 1 - st);
      s.add_exchange(out_step, to_physical(child, cfg.root, cfg.p),
                     to_physical(l, cfg.root, cfg.p),
                     subtree_blocks(v, child, p_prime, extra, cfg.root, cfg.p, s.arena()), false);
    }
  }
  s.normalize_steps();
  return s;
}

Schedule scatter_tree(const Config& cfg, TreeVariant v) {
  assert(v == TreeVariant::binomial_dh || v == TreeVariant::bine_dh);
  Schedule s = make_base(Collective::scatter, cfg, algo_name("scatter", v),
                         sched::BlockSpace::per_vector);
  const i64 p_prime = pow2_floor(cfg.p);
  const i64 extra = cfg.p - p_prime;
  const int sp = log2_exact(p_prime);

  for (Rank l = 0; l < p_prime; ++l) {
    const int joined = (p_prime == 1) ? 0 : core::join_step(v, l, p_prime);
    for (int st = joined + 1; st < sp; ++st) {
      const Rank child = core::tree_partner(v, l, st, p_prime);
      s.add_exchange(static_cast<size_t>(st), to_physical(l, cfg.root, cfg.p),
                     to_physical(child, cfg.root, cfg.p),
                     subtree_blocks(v, child, p_prime, extra, cfg.root, cfg.p, s.arena()), false);
    }
  }
  for (i64 i = 0; i < extra; ++i)
    s.add_exchange(static_cast<size_t>(sp), to_physical(i, cfg.root, cfg.p),
                   to_physical(p_prime + i, cfg.root, cfg.p),
                   own_block(p_prime + i, cfg.root, cfg.p), false);
  s.normalize_steps();
  return s;
}

namespace {

Schedule flat(Collective coll, const Config& cfg, const char* name, bool to_root,
              bool reduce, bool per_rank_blocks) {
  Schedule s = make_base(coll, cfg, name, sched::BlockSpace::per_vector);
  const BlockSet everything = BlockSet::all(cfg.p);
  size_t step = 0;
  for (Rank off = 1; off < cfg.p; ++off, ++step) {
    const Rank peer = pmod(cfg.root + off, cfg.p);
    const BlockSet blocks = per_rank_blocks ? BlockSet::single(peer) : everything;
    if (to_root)
      s.add_exchange(step, peer, cfg.root, blocks, reduce);
    else
      s.add_exchange(step, cfg.root, peer, blocks, reduce);
  }
  s.normalize_steps();
  return s;
}

}  // namespace

Schedule bcast_linear(const Config& cfg) {
  return flat(Collective::bcast, cfg, "bcast_linear", false, false, false);
}
Schedule reduce_linear(const Config& cfg) {
  return flat(Collective::reduce, cfg, "reduce_linear", true, true, false);
}
Schedule gather_linear(const Config& cfg) {
  return flat(Collective::gather, cfg, "gather_linear", true, false, true);
}
Schedule scatter_linear(const Config& cfg) {
  return flat(Collective::scatter, cfg, "scatter_linear", false, false, true);
}

}  // namespace bine::coll
