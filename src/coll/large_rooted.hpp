#pragma once

#include "coll/config.hpp"
#include "sched/schedule.hpp"

/// Large-vector rooted collectives (paper Sec. 4.5):
///   broadcast = scatter + allgather, reduce = reduce-scatter + gather.
///
/// The Bine variants pair a distance-doubling scatter (big chunks over short
/// distances first) with a distance-halving allgather, keeping transmissions
/// contiguous through the reverse(nu) position aliasing; the standard
/// variants reproduce MPICH's scatter + recursive-doubling-allgather
/// broadcast [45, 49] and the usual reduce-scatter + gather reduce.
namespace bine::coll {

/// MPICH-style large-vector broadcast: binomial_dh scatter, then
/// recursive-doubling allgather.
[[nodiscard]] sched::Schedule bcast_scatter_allgather_std(const Config& cfg);

/// Bine large-vector broadcast: distance-doubling Bine scatter (aliased,
/// contiguous) + distance-halving Bine allgather for power-of-two p;
/// falls back to bine_dh scatter + two-transmission allgather otherwise.
[[nodiscard]] sched::Schedule bcast_scatter_allgather_bine(const Config& cfg);

/// Standard large-vector reduce: recursive-halving reduce-scatter +
/// binomial_dh gather.
[[nodiscard]] sched::Schedule reduce_rs_gather_std(const Config& cfg);

/// Bine large-vector reduce: distance-doubling Bine butterfly reduce-scatter
/// + gather up the reversed distance-doubling Bine tree; the gather inverts
/// the block aliasing introduced by the reduce-scatter so every transmission
/// stays contiguous (Sec. 4.5). Power-of-two p uses aliasing; otherwise the
/// two-transmission reduce-scatter + bine_dh gather fallback.
[[nodiscard]] sched::Schedule reduce_rs_gather_bine(const Config& cfg);

}  // namespace bine::coll
