#include "coll/alltoall_colls.hpp"

#include <stdexcept>

#include "core/butterfly.hpp"
#include "core/nu.hpp"

namespace bine::coll {

using sched::BlockSet;
using sched::Collective;
using sched::Schedule;

Schedule alltoall_bruck(const Config& cfg) {
  Schedule sch =
      make_base(Collective::alltoall, cfg, "alltoall_bruck", sched::BlockSpace::pairwise);
  const i64 p = cfg.p;
  // held[r] = pairwise block ids currently stored at rank r, indexed by the
  // block's *relative destination offset* j = (dest - r0) of its origin
  // rotation: block (s, d) starts at rank s with offset (d - s) mod p and
  // advances +2^k at phase k for every set bit k of the offset.
  std::vector<std::vector<std::vector<i64>>> held(
      static_cast<size_t>(p), std::vector<std::vector<i64>>(static_cast<size_t>(p)));
  for (Rank r = 0; r < p; ++r)
    for (i64 d = 0; d < p; ++d)
      held[static_cast<size_t>(r)][static_cast<size_t>(pmod(d - r, p))].push_back(r * p + d);

  size_t step = 0;
  for (i64 dist = 1; dist < p; dist <<= 1, ++step) {
    std::vector<std::vector<i64>> moving(static_cast<size_t>(p));
    for (Rank r = 0; r < p; ++r) {
      std::vector<i64> ids;
      for (i64 j = 0; j < p; ++j) {
        if ((j & dist) == 0) continue;
        auto& cell = held[static_cast<size_t>(r)][static_cast<size_t>(j)];
        ids.insert(ids.end(), cell.begin(), cell.end());
        cell.clear();
      }
      moving[static_cast<size_t>(r)] = std::move(ids);
    }
    for (Rank r = 0; r < p; ++r) {
      if (moving[static_cast<size_t>(r)].empty()) continue;
      const Rank q = pmod(r + dist, p);
      BlockSet blocks =
          sched::blockset_from_ids(moving[static_cast<size_t>(r)], sch.nblocks, sch.arena());
      const i64 segs = blocks.block_count();  // store-and-forward packs per block
      sch.add_exchange(step, r, q, std::move(blocks), false, segs);
      for (const i64 id : moving[static_cast<size_t>(r)])
        held[static_cast<size_t>(q)][static_cast<size_t>(pmod(id % p - q, p))].push_back(id);
    }
  }
  sch.normalize_steps();
  return sch;
}

Schedule alltoall_bine(const Config& cfg) {
  if (!is_pow2(cfg.p))
    throw std::invalid_argument("alltoall_bine requires a power-of-two rank count");
  Schedule sch =
      make_base(Collective::alltoall, cfg, "alltoall_bine", sched::BlockSpace::pairwise);
  const i64 p = cfg.p;
  const int s = log2_exact(p);

  // Route plan: a block with relative destination l (l = dest - src for even
  // src, src - dest for odd src) hops at exactly the phases named by the set
  // bits of nu(l); Appendix A's identity makes the alternating-sign partial
  // sums land on the destination. Track (block id, remaining phase mask) per
  // rank.
  struct Parcel {
    i64 id;
    u64 route;  // remaining phases (bitmask over steps)
  };
  std::vector<std::vector<Parcel>> held(static_cast<size_t>(p));
  for (Rank r = 0; r < p; ++r)
    for (i64 d = 0; d < p; ++d) {
      const i64 l = pmod(r % 2 == 0 ? d - r : r - d, p);
      held[static_cast<size_t>(r)].push_back(Parcel{r * p + d, core::nu(l, p)});
    }

  for (int k = 0; k < s; ++k) {
    std::vector<std::vector<Parcel>> moving(static_cast<size_t>(p));
    for (Rank r = 0; r < p; ++r) {
      auto& mine = held[static_cast<size_t>(r)];
      std::vector<Parcel> stay;
      stay.reserve(mine.size());
      for (const Parcel& par : mine) {
        if ((par.route >> k) & 1)
          moving[static_cast<size_t>(r)].push_back(Parcel{par.id, par.route & ~(u64{1} << k)});
        else
          stay.push_back(par);
      }
      mine = std::move(stay);
    }
    for (Rank r = 0; r < p; ++r) {
      if (moving[static_cast<size_t>(r)].empty()) continue;
      const Rank q = core::butterfly_partner(core::ButterflyVariant::bine_dd, r, k, p);
      std::vector<i64> ids;
      ids.reserve(moving[static_cast<size_t>(r)].size());
      for (const Parcel& par : moving[static_cast<size_t>(r)]) ids.push_back(par.id);
      BlockSet blocks = sched::blockset_from_ids(std::move(ids), sch.nblocks, sch.arena());
      const i64 segs = blocks.block_count();
      sch.add_exchange(static_cast<size_t>(k), r, q, std::move(blocks), false, segs);
      auto& dest = held[static_cast<size_t>(q)];
      dest.insert(dest.end(), moving[static_cast<size_t>(r)].begin(),
                  moving[static_cast<size_t>(r)].end());
    }
  }
  // Every parcel must have exhausted its route at its destination.
  for (Rank r = 0; r < p; ++r)
    for ([[maybe_unused]] const Parcel& par : held[static_cast<size_t>(r)])
      assert(par.route == 0 && par.id % p == r && "bine alltoall routing failed");
  sch.normalize_steps();
  return sch;
}

Schedule alltoall_pairwise(const Config& cfg) {
  Schedule sch = make_base(Collective::alltoall, cfg, "alltoall_pairwise",
                           sched::BlockSpace::pairwise);
  for (i64 t = 1; t < cfg.p; ++t)
    for (Rank r = 0; r < cfg.p; ++r) {
      const Rank q = pmod(r + t, cfg.p);
      sch.add_exchange(static_cast<size_t>(t - 1), r, q, BlockSet::single(r * cfg.p + q),
                       false);
    }
  sch.normalize_steps();
  return sch;
}

Schedule allgather_bruck(const Config& cfg) {
  Schedule sch =
      make_base(Collective::allgather, cfg, "allgather_bruck", sched::BlockSpace::per_vector);
  const i64 p = cfg.p;
  // Rank r accumulates the circular run [r, r + have); sends it backwards to
  // r - dist, doubling `have` (capping the final partial round).
  size_t step = 0;
  i64 have = 1;
  for (i64 dist = 1; dist < p; dist <<= 1, ++step) {
    const i64 send_count = std::min(have, p - have);
    for (Rank r = 0; r < p; ++r) {
      const Rank q = pmod(r - dist, p);
      sch.add_exchange(step, r, q, BlockSet::run(r, send_count), false);
    }
    have += send_count;
  }
  sch.normalize_steps();
  return sch;
}

}  // namespace bine::coll
