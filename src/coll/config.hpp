#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "sched/schedule.hpp"

/// Shared configuration for all schedule generators.
namespace bine::coll {

struct Config {
  i64 p = 0;           ///< number of ranks (any p >= 1; power of two fast path)
  i64 elem_count = 0;  ///< vector length in elements (collective convention: see DESIGN.md)
  i64 elem_size = 4;   ///< bytes per element (paper uses 32-bit integers)
  Rank root = 0;       ///< root for rooted collectives
  /// Torus shape for the Appendix D algorithms (product must equal p);
  /// empty = derive a near-cubic factorization.
  std::vector<i64> torus_dims;
};

/// Near-cubic factorization of p for torus algorithms when no shape is given
/// (prefers three balanced power-of-two dimensions).
[[nodiscard]] inline std::vector<i64> default_torus_dims(i64 p) {
  std::vector<i64> dims;
  if (is_pow2(p)) {
    int s = log2_exact(p);
    const int ndims = s >= 3 ? 3 : (s >= 1 ? s : 1);
    for (int d = 0; d < ndims; ++d) {
      const int remaining_dims = ndims - d;
      const int share = (s + remaining_dims - 1) / remaining_dims;
      dims.push_back(i64{1} << share);
      s -= share;
    }
  } else {
    dims.push_back(p);  // fall back to a 1D ring
  }
  return dims;
}

/// Largest power of two <= p (p' of Appendix C).
[[nodiscard]] constexpr i64 pow2_floor(i64 p) noexcept {
  return i64{1} << floor_log2(p);
}

/// Fresh schedule skeleton with per-rank step vectors allocated.
[[nodiscard]] inline sched::Schedule make_base(sched::Collective coll, const Config& cfg,
                                               std::string algorithm,
                                               sched::BlockSpace space) {
  sched::Schedule s;
  s.coll = coll;
  s.algorithm = std::move(algorithm);
  s.p = cfg.p;
  s.space = space;
  s.nblocks = space == sched::BlockSpace::pairwise ? cfg.p * cfg.p : cfg.p;
  s.elem_count = cfg.elem_count;
  s.elem_size = cfg.elem_size;
  s.root = cfg.root;
  s.steps.assign(static_cast<size_t>(cfg.p), {});
  return s;
}

}  // namespace bine::coll
