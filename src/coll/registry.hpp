#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "coll/config.hpp"
#include "sched/schedule.hpp"

/// Name-indexed access to every schedule generator in the library, used by
/// the evaluation harness, the benchmarks and the sweep tests.
namespace bine::coll {

using Generator = std::function<sched::Schedule(const Config&)>;

struct AlgorithmEntry {
  sched::Collective coll;
  std::string name;        ///< e.g. "bine", "binomial", "ring", "bruck"
  Generator make;
  bool pow2_only = false;  ///< generator throws for non-power-of-two p
  bool is_bine = false;    ///< one of the paper's contributions
  /// Topology-specialized algorithms (torus, hierarchical multi-GPU) are
  /// only meaningful on their topology; generic sweeps skip them.
  bool specialized = false;
};

/// All registered algorithms for one collective.
[[nodiscard]] const std::vector<AlgorithmEntry>& algorithms_for(sched::Collective coll);

/// Lookup by (collective, name); throws std::out_of_range if absent.
[[nodiscard]] const AlgorithmEntry& find_algorithm(sched::Collective coll,
                                                   const std::string& name);

/// True when `name` is registered for `coll`. Decision-table loading uses
/// this to demote algorithms that no longer exist instead of serving them.
[[nodiscard]] bool has_algorithm(sched::Collective coll, const std::string& name);

/// Inverse of to_string(Collective); throws std::out_of_range on unknown
/// names (decision-table deserialization).
[[nodiscard]] sched::Collective collective_from_name(std::string_view name);

/// All eight collectives.
[[nodiscard]] const std::vector<sched::Collective>& all_collectives();

/// The Bine algorithm the paper's implementation would pick for a given
/// vector size (Sec. 4.4/4.5): tree / recursive-doubling variants for small
/// vectors, composed reduce-scatter + allgather/gather variants for large
/// ones, honouring the power-of-two restrictions of the permute/send
/// strategies. Returns the registry entry to call.
[[nodiscard]] const AlgorithmEntry& recommended_algorithm(sched::Collective coll, i64 p,
                                                          i64 vector_bytes);

}  // namespace bine::coll
