#pragma once

#include "coll/config.hpp"
#include "sched/schedule.hpp"

/// Butterfly-based collectives: reduce-scatter, allgather and allreduce
/// (paper Sec. 4.3 and 4.4), for both the Bine butterflies of Sec. 3 and the
/// standard recursive-doubling / recursive-halving baselines, plus Swing.
///
/// Non-power-of-two communicators use Appendix C's base technique: the last
/// p - p' ranks fold their contribution onto the first p - p' ranks before
/// the butterfly and receive their share back afterwards.
namespace bine::coll {

/// Strategies for the non-contiguous block sets produced by Bine butterflies
/// (paper Sec. 4.3.1, compared in Fig. 14).
enum class NoncontigStrategy {
  block_by_block,    ///< one transmission per block (B)
  permute,           ///< pre/post local reverse(nu) shuffle, contiguous sends (P)
  send,              ///< send contiguous as-if-permuted + one fix-up exchange (S)
  two_transmission,  ///< use the opposite butterfly; <=2 circular segments (T)
};

[[nodiscard]] constexpr const char* to_string(NoncontigStrategy s) noexcept {
  switch (s) {
    case NoncontigStrategy::block_by_block: return "block";
    case NoncontigStrategy::permute: return "permute";
    case NoncontigStrategy::send: return "send";
    case NoncontigStrategy::two_transmission: return "two_trans";
  }
  return "?";
}

/// Bine reduce-scatter: vector-halving butterfly, distance-doubling by
/// default (Sec. 4.3) or distance-halving under two_transmission.
[[nodiscard]] sched::Schedule reduce_scatter_bine(const Config& cfg, NoncontigStrategy st);

/// Bine allgather: the exact time-reversal of the reduce-scatter.
[[nodiscard]] sched::Schedule allgather_bine(const Config& cfg, NoncontigStrategy st);

/// Bine large-vector allreduce: reduce-scatter followed by allgather with the
/// permute / send fix-ups cancelled between the phases (Sec. 4.4).
[[nodiscard]] sched::Schedule allreduce_bine_large(const Config& cfg, NoncontigStrategy st);

/// Bine small-vector allreduce: recursive doubling over Bine butterflies,
/// full vector per step (Sec. 4.4).
[[nodiscard]] sched::Schedule allreduce_bine_small(const Config& cfg);

/// Standard baselines.
[[nodiscard]] sched::Schedule reduce_scatter_recursive_halving(const Config& cfg);
[[nodiscard]] sched::Schedule allgather_recursive_doubling(const Config& cfg);
[[nodiscard]] sched::Schedule allreduce_recursive_doubling(const Config& cfg);
/// Rabenseifner: recursive-halving reduce-scatter + recursive-doubling
/// allgather (the standard large-vector butterfly allreduce).
[[nodiscard]] sched::Schedule allreduce_rabenseifner(const Config& cfg);

/// Swing [17]: same peer sequence as the distance-doubling Bine butterfly but
/// always transmitting per-block (non-contiguous) data -- the contrast drawn
/// in Sec. 4.4.
[[nodiscard]] sched::Schedule reduce_scatter_swing(const Config& cfg);
[[nodiscard]] sched::Schedule allgather_swing(const Config& cfg);
[[nodiscard]] sched::Schedule allreduce_swing(const Config& cfg);

}  // namespace bine::coll
