#include "coll/ring_colls.hpp"

namespace bine::coll {

using sched::BlockSet;
using sched::Collective;
using sched::Schedule;

namespace {

/// Ring reduce-scatter steps: block b travels b+1 -> b+2 -> ... -> b,
/// accumulating contributions; at step t rank r ships block (r - 1 - t) to
/// its right neighbour. Emits into `sch` starting at `step0`.
size_t emit_ring_rs(Schedule& sch, i64 p, size_t step0) {
  for (i64 t = 0; t < p - 1; ++t)
    for (Rank r = 0; r < p; ++r)
      sch.add_exchange(step0 + static_cast<size_t>(t), r, pmod(r + 1, p),
                       BlockSet::single(pmod(r - 1 - t, p)), true);
  return step0 + static_cast<size_t>(p - 1);
}

/// Ring allgather steps: block b circulates b -> b+1 -> ...; at step t rank r
/// forwards block (r - t).
size_t emit_ring_ag(Schedule& sch, i64 p, size_t step0) {
  for (i64 t = 0; t < p - 1; ++t)
    for (Rank r = 0; r < p; ++r)
      sch.add_exchange(step0 + static_cast<size_t>(t), r, pmod(r + 1, p),
                       BlockSet::single(pmod(r - t, p)), false);
  return step0 + static_cast<size_t>(p - 1);
}

}  // namespace

Schedule allgather_ring(const Config& cfg) {
  Schedule sch =
      make_base(Collective::allgather, cfg, "allgather_ring", sched::BlockSpace::per_vector);
  emit_ring_ag(sch, cfg.p, 0);
  sch.normalize_steps();
  return sch;
}

Schedule reduce_scatter_ring(const Config& cfg) {
  Schedule sch = make_base(Collective::reduce_scatter, cfg, "reduce_scatter_ring",
                           sched::BlockSpace::per_vector);
  emit_ring_rs(sch, cfg.p, 0);
  sch.normalize_steps();
  return sch;
}

Schedule allreduce_ring(const Config& cfg) {
  Schedule sch =
      make_base(Collective::allreduce, cfg, "allreduce_ring", sched::BlockSpace::per_vector);
  const size_t mid = emit_ring_rs(sch, cfg.p, 0);
  emit_ring_ag(sch, cfg.p, mid);
  sch.normalize_steps();
  return sch;
}

}  // namespace bine::coll
