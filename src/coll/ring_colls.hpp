#pragma once

#include "coll/config.hpp"
#include "sched/schedule.hpp"

/// Ring (linear-pipeline) collectives: the classic bandwidth-optimal but
/// latency-heavy baselines the paper compares against for large vectors
/// (Sec. 5.1.2 / 5.2.2), including the NCCL-style ring allreduce used in the
/// multi-GPU comparison of Sec. 6.2. All work for any p.
namespace bine::coll {

[[nodiscard]] sched::Schedule allgather_ring(const Config& cfg);
[[nodiscard]] sched::Schedule reduce_scatter_ring(const Config& cfg);
/// Ring allreduce = ring reduce-scatter + ring allgather (2(p-1) steps).
[[nodiscard]] sched::Schedule allreduce_ring(const Config& cfg);

}  // namespace bine::coll
