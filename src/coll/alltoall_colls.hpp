#pragma once

#include "coll/config.hpp"
#include "sched/schedule.hpp"

/// Alltoall algorithms (paper Sec. 4.4) plus the Bruck-family allgather.
namespace bine::coll {

/// Bruck's logarithmic alltoall: store-and-forward along +2^k hops; any p.
[[nodiscard]] sched::Schedule alltoall_bruck(const Config& cfg);

/// Bine alltoall (Sec. 4.4): Bruck-style store-and-forward but hopping along
/// the distance-doubling Bine butterfly; a block with relative destination l
/// is routed through the steps named by the set bits of nu(l), which lands it
/// exactly on its destination (Appendix A). Power-of-two p.
[[nodiscard]] sched::Schedule alltoall_bine(const Config& cfg);

/// Pairwise-exchange linear alltoall: p-1 direct rounds; any p.
[[nodiscard]] sched::Schedule alltoall_pairwise(const Config& cfg);

/// Bruck's allgather (doubling store-and-forward, any p).
[[nodiscard]] sched::Schedule allgather_bruck(const Config& cfg);

}  // namespace bine::coll
