#pragma once

#include "coll/config.hpp"
#include "sched/schedule.hpp"

/// Hierarchical multi-GPU allreduce (paper Sec. 6.2): an intra-node
/// reduce-scatter over the fully connected GPUs of each node, an inter-node
/// Bine allreduce among GPUs with the same local index on the shard each GPU
/// owns, and an intra-node allgather to rebuild the full vector.
namespace bine::coll {

/// `gpus_per_node` GPUs per node (4 on Leonardo / MareNostrum 5). Requires
/// p % gpus_per_node == 0 and a power-of-two node count; degenerates to the
/// flat small-vector Bine allreduce when p < 2 * gpus_per_node.
[[nodiscard]] sched::Schedule allreduce_hierarchical_bine(const Config& cfg,
                                                          i64 gpus_per_node = 4);

}  // namespace bine::coll
