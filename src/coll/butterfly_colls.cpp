#include "coll/butterfly_colls.hpp"

#include <stdexcept>
#include <string>

#include "coll/bine_sets.hpp"
#include "core/block_perm.hpp"
#include "core/butterfly.hpp"
#include "core/nu.hpp"
#include "core/tree.hpp"

namespace bine::coll {

using core::butterfly_partner;
using core::ButterflyVariant;
using sched::BlockSet;
using sched::Collective;
using sched::Schedule;

namespace {

using detail::dd_sent_rel;
using detail::dh_held_rel;

/// Relative destination interval sent at step j of the *distance-halving*
/// reduce-scatter (the "Two Transmissions" strategy): the bine_dh subtree of
/// rank 0's step-j child. Circular, hence at most two memory segments.
core::CircularInterval dh_sent_interval(int j, i64 P) {
  const Rank child = core::tree_partner(core::TreeVariant::bine_dh, 0, j, P);
  return core::subtree_interval(core::TreeVariant::bine_dh, child, P);
}

/// Relative holdings *before* step i of the distance-doubling allgather
/// (time reversal of the distance-halving reduce-scatter): {0} plus the
/// subtrees attached at steps >= s - i.
core::CircularInterval dd_held_interval(int i, i64 P) {
  const int s = log2_exact(P);
  core::CircularInterval acc{0, 1};
  for (int k = s - 1; k >= s - i; --k) {
    const core::CircularInterval sub = dh_sent_interval(k, P);
    // Glue: the kept set stays a circular interval around 0.
    if (pmod(sub.start - (acc.start + acc.length), P) == 0) {
      acc.length += sub.length;
    } else {
      assert(pmod(acc.start - (sub.start + sub.length), P) == 0);
      acc.start = sub.start;
      acc.length += sub.length;
    }
  }
  return acc;
}

using detail::rel_to_dest;

/// Physical blocks carried for destination set `dests` (p'-space), folding in
/// the blocks of the extra ranks paired during the non-power-of-two pre-step.
BlockSet dest_blocks(const std::vector<i64>& dests, i64 P, i64 extra, i64 p,
                     sched::ScheduleArena& arena) {
  std::vector<i64> ids;
  ids.reserve(dests.size() * 2);
  for (const i64 x : dests) {
    ids.push_back(x);
    if (x < extra) ids.push_back(P + x);
  }
  return sched::blockset_from_ids(std::move(ids), p, arena);
}

struct Layout {
  i64 P = 0;      ///< butterfly size (pow2)
  i64 extra = 0;  ///< p - P ranks folded via pre/post steps
  int s = 0;
};

Layout layout_of(i64 p) {
  Layout lo;
  lo.P = pow2_floor(p);
  lo.extra = p - lo.P;
  lo.s = log2_exact(lo.P);
  return lo;
}

void require_pow2_for(const char* what, const Layout& lo) {
  if (lo.extra != 0)
    throw std::invalid_argument(std::string(what) +
                                " requires a power-of-two rank count (paper Sec. 4.3.1)");
}

/// Emit the reduce-scatter butterfly steps into `sch` starting at step
/// `step0`; returns the next free step index. `aliased` applies the
/// reverse(nu) position aliasing of the "Send" strategy.
size_t emit_rs_steps(Schedule& sch, const Config& cfg, const Layout& lo,
                     NoncontigStrategy st, size_t step0) {
  const bool aliased = st == NoncontigStrategy::send;
  std::vector<i64> dests;
  if (st == NoncontigStrategy::two_transmission) {
    for (int j = 0; j < lo.s; ++j) {
      const core::CircularInterval rel = dh_sent_interval(j, lo.P);
      for (Rank r = 0; r < lo.P; ++r) {
        const Rank q = butterfly_partner(ButterflyVariant::bine_dh, r, j, lo.P);
        dests.clear();
        dests.reserve(static_cast<size_t>(rel.length));
        for (i64 k = 0; k < rel.length; ++k)
          dests.push_back(rel_to_dest(r, pmod(rel.start + k, lo.P), lo.P));
        sch.add_exchange(step0 + static_cast<size_t>(j), r, q,
                         dest_blocks(dests, lo.P, lo.extra, cfg.p, sch.arena()), true);
      }
    }
    return step0 + static_cast<size_t>(lo.s);
  }
  const auto rel_by_step = dd_sent_rel(lo.P);
  for (int j = 0; j < lo.s; ++j) {
    for (Rank r = 0; r < lo.P; ++r) {
      const Rank q = butterfly_partner(ButterflyVariant::bine_dd, r, j, lo.P);
      dests.clear();
      dests.reserve(rel_by_step[static_cast<size_t>(j)].size());
      for (const i64 l : rel_by_step[static_cast<size_t>(j)])
        dests.push_back(rel_to_dest(r, l, lo.P));
      if (aliased)
        for (i64& d : dests) d = core::permuted_position(d, lo.P);
      BlockSet blocks = dest_blocks(dests, lo.P, lo.extra, cfg.p, sch.arena());
      const i64 segs =
          st == NoncontigStrategy::block_by_block ? blocks.block_count() : 1;
      sch.add_exchange(step0 + static_cast<size_t>(j), r, q, blocks, true, segs);
    }
  }
  return step0 + static_cast<size_t>(lo.s);
}

/// Emit the allgather butterfly steps (time reversal of the reduce-scatter).
size_t emit_ag_steps(Schedule& sch, const Config& cfg, const Layout& lo,
                     NoncontigStrategy st, size_t step0) {
  const bool aliased = st == NoncontigStrategy::send;
  std::vector<i64> dests;
  if (st == NoncontigStrategy::two_transmission) {
    for (int i = 0; i < lo.s; ++i) {
      const core::CircularInterval rel = dd_held_interval(i, lo.P);
      for (Rank r = 0; r < lo.P; ++r) {
        const Rank q = butterfly_partner(ButterflyVariant::bine_dd, r, i, lo.P);
        dests.clear();
        dests.reserve(static_cast<size_t>(rel.length));
        for (i64 k = 0; k < rel.length; ++k)
          dests.push_back(rel_to_dest(r, pmod(rel.start + k, lo.P), lo.P));
        sch.add_exchange(step0 + static_cast<size_t>(i), r, q,
                         dest_blocks(dests, lo.P, lo.extra, cfg.p, sch.arena()), false);
      }
    }
    return step0 + static_cast<size_t>(lo.s);
  }
  const auto rel_by_step = dh_held_rel(lo.P);
  for (int i = 0; i < lo.s; ++i) {
    for (Rank r = 0; r < lo.P; ++r) {
      const Rank q = butterfly_partner(ButterflyVariant::bine_dh, r, i, lo.P);
      dests.clear();
      dests.reserve(rel_by_step[static_cast<size_t>(i)].size());
      for (const i64 l : rel_by_step[static_cast<size_t>(i)])
        dests.push_back(rel_to_dest(r, l, lo.P));
      if (aliased)
        for (i64& d : dests) d = core::permuted_position(d, lo.P);
      BlockSet blocks = dest_blocks(dests, lo.P, lo.extra, cfg.p, sch.arena());
      const i64 segs =
          st == NoncontigStrategy::block_by_block ? blocks.block_count() : 1;
      sch.add_exchange(step0 + static_cast<size_t>(i), r, q, blocks, false, segs);
    }
  }
  return step0 + static_cast<size_t>(lo.s);
}

i64 full_vector_bytes(const Config& cfg) { return cfg.elem_count * cfg.elem_size; }

}  // namespace

Schedule reduce_scatter_bine(const Config& cfg, NoncontigStrategy st) {
  const Layout lo = layout_of(cfg.p);
  if (st == NoncontigStrategy::permute || st == NoncontigStrategy::send)
    require_pow2_for("reduce_scatter_bine permute/send", lo);
  Schedule sch = make_base(Collective::reduce_scatter, cfg,
                           std::string("reduce_scatter_bine_") + to_string(st),
                           sched::BlockSpace::per_vector);
  size_t step = 0;
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, lo.P + i, i, BlockSet::all(cfg.p), true);
  if (lo.extra > 0) ++step;
  if (st == NoncontigStrategy::permute) {
    for (Rank r = 0; r < lo.P; ++r) sch.add_local(step, r, full_vector_bytes(cfg), lo.P);
    ++step;
  }
  step = emit_rs_steps(sch, cfg, lo, st, step);
  if (st == NoncontigStrategy::send) {
    // Fix-up: rank r holds the block that belongs to reverse(nu(r)).
    for (Rank r = 0; r < lo.P; ++r) {
      const Rank t = core::permuted_position(r, lo.P);
      if (t != r) sch.add_exchange(step, r, t, BlockSet::single(t), false);
    }
    ++step;
  }
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, i, lo.P + i, BlockSet::single(lo.P + i), false);
  sch.normalize_steps();
  return sch;
}

Schedule allgather_bine(const Config& cfg, NoncontigStrategy st) {
  const Layout lo = layout_of(cfg.p);
  if (st == NoncontigStrategy::permute || st == NoncontigStrategy::send)
    require_pow2_for("allgather_bine permute/send", lo);
  Schedule sch = make_base(Collective::allgather, cfg,
                           std::string("allgather_bine_") + to_string(st),
                           sched::BlockSpace::per_vector);
  size_t step = 0;
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, lo.P + i, i, BlockSet::single(lo.P + i), false);
  if (lo.extra > 0) ++step;
  if (st == NoncontigStrategy::send) {
    // Pre-exchange: rank r seeds the butterfly with its aliased block by
    // shipping its own block to the rank that "owns" position r.
    const auto inv = core::inverse_contiguity_permutation(lo.P);
    for (Rank r = 0; r < lo.P; ++r) {
      const Rank t = inv[static_cast<size_t>(r)];
      if (t != r) sch.add_exchange(step, r, t, BlockSet::single(r), false);
    }
    ++step;
  }
  step = emit_ag_steps(sch, cfg, lo, st, step);
  if (st == NoncontigStrategy::permute) {
    for (Rank r = 0; r < lo.P; ++r) sch.add_local(step, r, full_vector_bytes(cfg), lo.P);
    ++step;
  }
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, i, lo.P + i, BlockSet::all(cfg.p), false);
  sch.normalize_steps();
  return sch;
}

Schedule allreduce_bine_large(const Config& cfg, NoncontigStrategy st) {
  const Layout lo = layout_of(cfg.p);
  if (st == NoncontigStrategy::permute || st == NoncontigStrategy::send)
    require_pow2_for("allreduce_bine_large permute/send", lo);
  Schedule sch = make_base(Collective::allreduce, cfg,
                           std::string("allreduce_bine_") + to_string(st),
                           sched::BlockSpace::per_vector);
  size_t step = 0;
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, lo.P + i, i, BlockSet::all(cfg.p), true);
  if (lo.extra > 0) ++step;
  if (st == NoncontigStrategy::permute) {
    for (Rank r = 0; r < lo.P; ++r) sch.add_local(step, r, full_vector_bytes(cfg), lo.P);
    ++step;
  }
  // Reduce-scatter phase, then allgather phase. The Send strategy's aliasing
  // cancels between the phases; the Permute strategy un-permutes at the end
  // (Sec. 4.3.1: "the subsequent collective implicitly reverses the
  // permutation").
  step = emit_rs_steps(sch, cfg, lo, st, step);
  step = emit_ag_steps(sch, cfg, lo, st, step);
  if (st == NoncontigStrategy::permute) {
    for (Rank r = 0; r < lo.P; ++r) sch.add_local(step, r, full_vector_bytes(cfg), lo.P);
    ++step;
  }
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, i, lo.P + i, BlockSet::all(cfg.p), false);
  sch.normalize_steps();
  return sch;
}

Schedule allreduce_bine_small(const Config& cfg) {
  const Layout lo = layout_of(cfg.p);
  Schedule sch = make_base(Collective::allreduce, cfg, "allreduce_bine_small",
                           sched::BlockSpace::per_vector);
  size_t step = 0;
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, lo.P + i, i, BlockSet::all(cfg.p), true);
  if (lo.extra > 0) ++step;
  for (int j = 0; j < lo.s; ++j, ++step)
    for (Rank r = 0; r < lo.P; ++r)
      sch.add_exchange(step, r, butterfly_partner(ButterflyVariant::bine_dd, r, j, lo.P),
                       BlockSet::all(cfg.p), true);
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, i, lo.P + i, BlockSet::all(cfg.p), false);
  sch.normalize_steps();
  return sch;
}

// --- Standard butterflies -----------------------------------------------------

namespace {

/// Contiguous logical-destination range kept by `r` down to level `lvl` of
/// the standard hypercube halving: {d : d >> lvl == r >> lvl}.
std::vector<i64> cube_range(Rank r, int lvl) {
  std::vector<i64> out;
  const i64 base = (r >> lvl) << lvl;
  out.reserve(static_cast<size_t>(i64{1} << lvl));
  for (i64 d = base; d < base + (i64{1} << lvl); ++d) out.push_back(d);
  return out;
}

}  // namespace

Schedule reduce_scatter_recursive_halving(const Config& cfg) {
  const Layout lo = layout_of(cfg.p);
  Schedule sch = make_base(Collective::reduce_scatter, cfg, "reduce_scatter_rhalving",
                           sched::BlockSpace::per_vector);
  size_t step = 0;
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, lo.P + i, i, BlockSet::all(cfg.p), true);
  if (lo.extra > 0) ++step;
  for (int j = 0; j < lo.s; ++j, ++step) {
    const int lvl = lo.s - 1 - j;
    for (Rank r = 0; r < lo.P; ++r) {
      const Rank q = r ^ (i64{1} << lvl);
      sch.add_exchange(step, r, q, dest_blocks(cube_range(q, lvl), lo.P, lo.extra, cfg.p, sch.arena()),
                       true);
    }
  }
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, i, lo.P + i, BlockSet::single(lo.P + i), false);
  sch.normalize_steps();
  return sch;
}

Schedule allgather_recursive_doubling(const Config& cfg) {
  const Layout lo = layout_of(cfg.p);
  Schedule sch = make_base(Collective::allgather, cfg, "allgather_rdoubling",
                           sched::BlockSpace::per_vector);
  size_t step = 0;
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, lo.P + i, i, BlockSet::single(lo.P + i), false);
  if (lo.extra > 0) ++step;
  for (int j = 0; j < lo.s; ++j, ++step)
    for (Rank r = 0; r < lo.P; ++r)
      sch.add_exchange(step, r, r ^ (i64{1} << j),
                       dest_blocks(cube_range(r, j), lo.P, lo.extra, cfg.p, sch.arena()), false);
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, i, lo.P + i, BlockSet::all(cfg.p), false);
  sch.normalize_steps();
  return sch;
}

Schedule allreduce_recursive_doubling(const Config& cfg) {
  const Layout lo = layout_of(cfg.p);
  Schedule sch = make_base(Collective::allreduce, cfg, "allreduce_rdoubling",
                           sched::BlockSpace::per_vector);
  size_t step = 0;
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, lo.P + i, i, BlockSet::all(cfg.p), true);
  if (lo.extra > 0) ++step;
  for (int j = 0; j < lo.s; ++j, ++step)
    for (Rank r = 0; r < lo.P; ++r)
      sch.add_exchange(step, r, r ^ (i64{1} << j), BlockSet::all(cfg.p), true);
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, i, lo.P + i, BlockSet::all(cfg.p), false);
  sch.normalize_steps();
  return sch;
}

Schedule allreduce_rabenseifner(const Config& cfg) {
  const Layout lo = layout_of(cfg.p);
  Schedule sch = make_base(Collective::allreduce, cfg, "allreduce_rabenseifner",
                           sched::BlockSpace::per_vector);
  size_t step = 0;
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, lo.P + i, i, BlockSet::all(cfg.p), true);
  if (lo.extra > 0) ++step;
  for (int j = 0; j < lo.s; ++j, ++step) {
    const int lvl = lo.s - 1 - j;
    for (Rank r = 0; r < lo.P; ++r) {
      const Rank q = r ^ (i64{1} << lvl);
      sch.add_exchange(step, r, q, dest_blocks(cube_range(q, lvl), lo.P, lo.extra, cfg.p, sch.arena()),
                       true);
    }
  }
  for (int j = 0; j < lo.s; ++j, ++step)
    for (Rank r = 0; r < lo.P; ++r)
      sch.add_exchange(step, r, r ^ (i64{1} << j),
                       dest_blocks(cube_range(r, j), lo.P, lo.extra, cfg.p, sch.arena()), false);
  for (i64 i = 0; i < lo.extra; ++i)
    sch.add_exchange(step, i, lo.P + i, BlockSet::all(cfg.p), false);
  sch.normalize_steps();
  return sch;
}

// --- Swing --------------------------------------------------------------------

Schedule reduce_scatter_swing(const Config& cfg) {
  Schedule s = reduce_scatter_bine(cfg, NoncontigStrategy::block_by_block);
  s.algorithm = "reduce_scatter_swing";
  return s;
}

Schedule allgather_swing(const Config& cfg) {
  Schedule s = allgather_bine(cfg, NoncontigStrategy::block_by_block);
  s.algorithm = "allgather_swing";
  return s;
}

Schedule allreduce_swing(const Config& cfg) {
  Schedule s = allreduce_bine_large(cfg, NoncontigStrategy::block_by_block);
  s.algorithm = "allreduce_swing";
  return s;
}

}  // namespace bine::coll
