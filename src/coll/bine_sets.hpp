#pragma once

#include <vector>

#include "core/nu.hpp"
#include "core/types.hpp"

/// Shared destination-set computations for Bine butterflies, used by the flat
/// butterfly collectives and their torus-optimized per-dimension variants.
///
/// In a distance-doubling Bine butterfly reduce-scatter over P = 2^s ranks,
/// rank r parts at step j with the relative destinations l whose nu(l) is
/// congruent to 2^j modulo 2^{j+1}, and keeps {l : nu(l) == 0 mod 2^{j+1}};
/// after s steps only l = 0 (its own block) remains. The allgather is the
/// exact time reversal. See DESIGN.md for the derivation.
namespace bine::coll::detail {

/// sent_rel[j] = relative destinations departing at reduce-scatter step j.
[[nodiscard]] inline std::vector<std::vector<i64>> dd_sent_rel(i64 P) {
  const int s = log2_exact(P);
  std::vector<std::vector<i64>> per_step(static_cast<size_t>(s));
  for (i64 l = 0; l < P; ++l) {
    const u64 v = core::nu(l, P);
    if (v == 0) continue;
    int j = 0;
    while (((v >> j) & 1) == 0) ++j;
    per_step[static_cast<size_t>(j)].push_back(l);
  }
  return per_step;
}

/// held_rel[i] = relative destinations a rank holds before allgather step i.
[[nodiscard]] inline std::vector<std::vector<i64>> dh_held_rel(i64 P) {
  const int s = log2_exact(P);
  std::vector<std::vector<i64>> per_step(static_cast<size_t>(s));
  for (i64 l = 0; l < P; ++l) {
    const u64 v = core::nu(l, P);
    for (int i = 0; i < s; ++i)
      if ((v & low_bits(s - i)) == 0) per_step[static_cast<size_t>(i)].push_back(l);
  }
  return per_step;
}

/// Physical destination of relative offset `l` for rank `r`: even ranks
/// extend one way, odd ranks the mirrored way (Sec. 3.1).
[[nodiscard]] constexpr i64 rel_to_dest(Rank r, i64 l, i64 P) noexcept {
  return pmod(r % 2 == 0 ? r + l : r - l, P);
}

}  // namespace bine::coll::detail
