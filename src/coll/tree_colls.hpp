#pragma once

#include "coll/config.hpp"
#include "core/tree.hpp"
#include "sched/schedule.hpp"

/// Tree-based rooted collectives: broadcast, reduce, gather, scatter
/// (paper Sec. 4.1, 4.2, 4.5) over any TreeVariant, plus flat linear
/// baselines.
///
/// Non-power-of-two communicators follow Appendix C's base technique: the
/// collective runs among the first p' = 2^floor(log2 p) logical ranks, and the
/// remaining p - p' ranks are served by one extra pre-step (reduce/gather) or
/// post-step (bcast/scatter) paired with logical ranks 0 .. p-p'-1.
namespace bine::coll {

/// Broadcast of the whole vector down a tree (small-vector algorithm of
/// Sec. 4.5 when variant == bine_dh; Fig. 1 baselines otherwise).
[[nodiscard]] sched::Schedule bcast_tree(const Config& cfg, core::TreeVariant v);

/// Reduction of the whole vector up the mirrored tree.
[[nodiscard]] sched::Schedule reduce_tree(const Config& cfg, core::TreeVariant v);

/// Gather: leaves push their blocks up the tree; each rank forwards the
/// blocks of its whole subtree (Sec. 4.1). Distance-halving variants only.
[[nodiscard]] sched::Schedule gather_tree(const Config& cfg, core::TreeVariant v);

/// Scatter: the reverse process of the gather (Sec. 4.2).
[[nodiscard]] sched::Schedule scatter_tree(const Config& cfg, core::TreeVariant v);

/// Flat baselines: the root exchanges with every rank, one per step.
[[nodiscard]] sched::Schedule bcast_linear(const Config& cfg);
[[nodiscard]] sched::Schedule reduce_linear(const Config& cfg);
[[nodiscard]] sched::Schedule gather_linear(const Config& cfg);
[[nodiscard]] sched::Schedule scatter_linear(const Config& cfg);

}  // namespace bine::coll
