#include "coll/torus_colls.hpp"

#include <numeric>
#include <stdexcept>

#include "coll/bine_sets.hpp"
#include "core/butterfly.hpp"

namespace bine::coll {

using sched::BlockSet;
using sched::Collective;
using sched::Schedule;

namespace {

/// Rank <-> coordinate bookkeeping plus the per-rank held block sets that the
/// dimension-by-dimension phases thread through the schedule.
struct TorusState {
  std::vector<i64> dims;
  i64 p = 0;
  std::vector<std::vector<i64>> held;  ///< held[r] = block ids currently at r

  explicit TorusState(const Config& cfg) {
    dims = cfg.torus_dims.empty() ? default_torus_dims(cfg.p) : cfg.torus_dims;
    p = std::accumulate(dims.begin(), dims.end(), i64{1}, std::multiplies<>());
    if (p != cfg.p)
      throw std::invalid_argument("torus dims do not multiply to the rank count");
    held.assign(static_cast<size_t>(p), {});
  }

  [[nodiscard]] i64 coord(i64 rank, size_t dim) const {
    for (size_t d = 0; d < dim; ++d) rank /= dims[d];
    return rank % dims[dim];
  }

  /// Rank reached from `rank` by setting dimension `dim` to `value`.
  [[nodiscard]] i64 with_coord(i64 rank, size_t dim, i64 value) const {
    i64 stride = 1;
    for (size_t d = 0; d < dim; ++d) stride *= dims[d];
    return rank + (value - coord(rank, dim)) * stride;
  }

  /// Partition r's held blocks by the destination coordinate along `dim`.
  [[nodiscard]] std::vector<std::vector<i64>> cells(Rank r, size_t dim) const {
    std::vector<std::vector<i64>> out(static_cast<size_t>(dims[dim]));
    for (const i64 b : held[static_cast<size_t>(r)])
      out[static_cast<size_t>(coord(b, dim))].push_back(b);
    return out;
  }
};

/// Subset filter for multi-port slices: blocks congruent to `slice` mod
/// `nslices` (nslices = 1 keeps everything).
std::vector<i64> slice_filter(const std::vector<i64>& ids, i64 slice, i64 nslices) {
  if (nslices <= 1) return ids;
  std::vector<i64> out;
  for (const i64 b : ids)
    if (b % nslices == slice) out.push_back(b);
  return out;
}

/// Ring reduce-scatter along one dimension. Mutates `st.held`.
size_t ring_rs_phase(Schedule& sch, TorusState& st, size_t dim, size_t step0, i64 slice,
                     i64 nslices, bool flip) {
  const i64 pd = st.dims[dim];
  if (pd == 1) return step0;
  std::vector<std::vector<std::vector<i64>>> cells(static_cast<size_t>(st.p));
  for (Rank r = 0; r < st.p; ++r) cells[static_cast<size_t>(r)] = st.cells(r, dim);
  for (i64 t = 0; t < pd - 1; ++t) {
    for (Rank r = 0; r < st.p; ++r) {
      const i64 j = st.coord(r, dim);
      const i64 dir = flip ? -1 : 1;
      const Rank to = st.with_coord(r, dim, pmod(j + dir, pd));
      const i64 chunk = pmod(j - dir * (1 + t), pd);
      const auto ids =
          slice_filter(cells[static_cast<size_t>(r)][static_cast<size_t>(chunk)], slice,
                       nslices);
      if (ids.empty()) continue;
      sch.add_exchange(step0 + static_cast<size_t>(t), r, to,
                       sched::blockset_from_ids(ids, sch.nblocks, sch.arena()), true);
    }
  }
  for (Rank r = 0; r < st.p; ++r) {
    if (nslices > 1) continue;  // multi-port tracks held sets per slice upstream
    st.held[static_cast<size_t>(r)] =
        cells[static_cast<size_t>(r)][static_cast<size_t>(st.coord(r, dim))];
  }
  return step0 + static_cast<size_t>(pd - 1);
}

/// Ring allgather along one dimension (inverse of ring_rs_phase).
size_t ring_ag_phase(Schedule& sch, TorusState& st, size_t dim, size_t step0, i64 slice,
                     i64 nslices, bool flip) {
  const i64 pd = st.dims[dim];
  if (pd == 1) return step0;
  // Cell i = the held set of the line member at coordinate i (phase start).
  std::vector<std::vector<i64>> cell_of(static_cast<size_t>(st.p));
  for (Rank r = 0; r < st.p; ++r) cell_of[static_cast<size_t>(r)] = st.held[static_cast<size_t>(r)];
  for (i64 t = 0; t < pd - 1; ++t) {
    for (Rank r = 0; r < st.p; ++r) {
      const i64 j = st.coord(r, dim);
      const i64 dir = flip ? -1 : 1;
      const Rank to = st.with_coord(r, dim, pmod(j + dir, pd));
      const i64 src_coord = pmod(j - dir * t, pd);
      const Rank owner = st.with_coord(r, dim, src_coord);
      const auto ids =
          slice_filter(cell_of[static_cast<size_t>(owner)], slice, nslices);
      if (ids.empty()) continue;
      sch.add_exchange(step0 + static_cast<size_t>(t), r, to,
                       sched::blockset_from_ids(ids, sch.nblocks, sch.arena()), false);
    }
  }
  for (Rank r = 0; r < st.p; ++r) {
    if (nslices > 1) continue;
    auto& mine = st.held[static_cast<size_t>(r)];
    for (i64 i = 0; i < pd; ++i) {
      if (i == st.coord(r, dim)) continue;
      const auto& other = cell_of[static_cast<size_t>(st.with_coord(r, dim, i))];
      mine.insert(mine.end(), other.begin(), other.end());
    }
  }
  return step0 + static_cast<size_t>(pd - 1);
}

/// Bine butterfly reduce-scatter along one dimension (log2(pd) steps).
size_t bine_rs_phase(Schedule& sch, TorusState& st, size_t dim, size_t step0, i64 slice,
                     i64 nslices, bool flip) {
  const i64 pd = st.dims[dim];
  if (pd == 1) return step0;
  if (!is_pow2(pd)) throw std::invalid_argument("torus bine needs power-of-two dims");
  const int s = log2_exact(pd);
  const auto rel = detail::dd_sent_rel(pd);
  std::vector<std::vector<std::vector<i64>>> cells(static_cast<size_t>(st.p));
  for (Rank r = 0; r < st.p; ++r) cells[static_cast<size_t>(r)] = st.cells(r, dim);
  for (int k = 0; k < s; ++k) {
    for (Rank r = 0; r < st.p; ++r) {
      const i64 j = flip ? pmod(-st.coord(r, dim), pd) : st.coord(r, dim);
      const i64 q_sub = core::butterfly_partner(core::ButterflyVariant::bine_dd, j,
                                                k, pd);
      const Rank to = st.with_coord(r, dim, flip ? pmod(-q_sub, pd) : q_sub);
      std::vector<i64> ids;
      for (const i64 l : rel[static_cast<size_t>(k)]) {
        const i64 v_sub = detail::rel_to_dest(j, l, pd);
        const i64 v = flip ? pmod(-v_sub, pd) : v_sub;
        const auto& cell = cells[static_cast<size_t>(r)][static_cast<size_t>(v)];
        const auto filtered = slice_filter(cell, slice, nslices);
        ids.insert(ids.end(), filtered.begin(), filtered.end());
      }
      if (ids.empty()) continue;
      sch.add_exchange(step0 + static_cast<size_t>(k), r, to,
                       sched::blockset_from_ids(std::move(ids), sch.nblocks, sch.arena()), true);
    }
  }
  for (Rank r = 0; r < st.p; ++r) {
    if (nslices > 1) continue;
    st.held[static_cast<size_t>(r)] =
        cells[static_cast<size_t>(r)][static_cast<size_t>(st.coord(r, dim))];
  }
  return step0 + static_cast<size_t>(s);
}

/// Bine butterfly allgather along one dimension (reverse of bine_rs_phase).
size_t bine_ag_phase(Schedule& sch, TorusState& st, size_t dim, size_t step0, i64 slice,
                     i64 nslices, bool flip) {
  const i64 pd = st.dims[dim];
  if (pd == 1) return step0;
  if (!is_pow2(pd)) throw std::invalid_argument("torus bine needs power-of-two dims");
  const int s = log2_exact(pd);
  const auto rel = detail::dh_held_rel(pd);
  std::vector<std::vector<i64>> cell_of(static_cast<size_t>(st.p));
  for (Rank r = 0; r < st.p; ++r) cell_of[static_cast<size_t>(r)] = st.held[static_cast<size_t>(r)];
  for (int k = 0; k < s; ++k) {
    for (Rank r = 0; r < st.p; ++r) {
      const i64 j = flip ? pmod(-st.coord(r, dim), pd) : st.coord(r, dim);
      const i64 q_sub = core::butterfly_partner(core::ButterflyVariant::bine_dh, j,
                                                k, pd);
      const Rank to = st.with_coord(r, dim, flip ? pmod(-q_sub, pd) : q_sub);
      std::vector<i64> ids;
      for (const i64 l : rel[static_cast<size_t>(k)]) {
        const i64 v_sub = detail::rel_to_dest(j, l, pd);
        const i64 v = flip ? pmod(-v_sub, pd) : v_sub;
        const Rank owner = st.with_coord(r, dim, v);
        const auto filtered = slice_filter(cell_of[static_cast<size_t>(owner)], slice,
                                           nslices);
        ids.insert(ids.end(), filtered.begin(), filtered.end());
      }
      if (ids.empty()) continue;
      sch.add_exchange(step0 + static_cast<size_t>(k), r, to,
                       sched::blockset_from_ids(std::move(ids), sch.nblocks, sch.arena()), false);
    }
  }
  for (Rank r = 0; r < st.p; ++r) {
    if (nslices > 1) continue;
    auto& mine = st.held[static_cast<size_t>(r)];
    for (i64 i = 0; i < pd; ++i) {
      if (i == st.coord(r, dim)) continue;
      const auto& other = cell_of[static_cast<size_t>(st.with_coord(r, dim, i))];
      mine.insert(mine.end(), other.begin(), other.end());
    }
  }
  return step0 + static_cast<size_t>(s);
}

using Phase = size_t (*)(Schedule&, TorusState&, size_t, size_t, i64, i64, bool);

void fill_all_blocks(TorusState& st) {
  for (Rank r = 0; r < st.p; ++r) {
    st.held[static_cast<size_t>(r)].resize(static_cast<size_t>(st.p));
    std::iota(st.held[static_cast<size_t>(r)].begin(),
              st.held[static_cast<size_t>(r)].end(), 0);
  }
}

Schedule torus_collective(const Config& cfg, Collective coll, const char* name,
                          Phase rs_phase, Phase ag_phase) {
  Schedule sch = make_base(coll, cfg, name, sched::BlockSpace::per_vector);
  TorusState st(cfg);
  size_t step = 0;
  if (coll == Collective::reduce_scatter || coll == Collective::allreduce) {
    fill_all_blocks(st);
    for (size_t d = 0; d < st.dims.size(); ++d)
      step = rs_phase(sch, st, d, step, 0, 1, false);
  }
  if (coll == Collective::allgather) {
    // Allgather starts from single blocks: held[r] = {r}.
    for (Rank r = 0; r < st.p; ++r) st.held[static_cast<size_t>(r)] = {r};
  }
  if (coll == Collective::allgather || coll == Collective::allreduce) {
    for (size_t d = st.dims.size(); d-- > 0;)
      step = ag_phase(sch, st, d, step, 0, 1, false);
  }
  sch.normalize_steps();
  return sch;
}

}  // namespace

Schedule reduce_scatter_bucket(const Config& cfg) {
  return torus_collective(cfg, Collective::reduce_scatter, "reduce_scatter_bucket",
                          ring_rs_phase, ring_ag_phase);
}
Schedule allgather_bucket(const Config& cfg) {
  return torus_collective(cfg, Collective::allgather, "allgather_bucket", ring_rs_phase,
                          ring_ag_phase);
}
Schedule allreduce_bucket(const Config& cfg) {
  return torus_collective(cfg, Collective::allreduce, "allreduce_bucket", ring_rs_phase,
                          ring_ag_phase);
}
Schedule reduce_scatter_torus_bine(const Config& cfg) {
  return torus_collective(cfg, Collective::reduce_scatter, "reduce_scatter_bine_torus",
                          bine_rs_phase, bine_ag_phase);
}
Schedule allgather_torus_bine(const Config& cfg) {
  return torus_collective(cfg, Collective::allgather, "allgather_bine_torus",
                          bine_rs_phase, bine_ag_phase);
}
Schedule allreduce_torus_bine(const Config& cfg) {
  return torus_collective(cfg, Collective::allreduce, "allreduce_bine_torus",
                          bine_rs_phase, bine_ag_phase);
}

Schedule allreduce_torus_bine_multiport(const Config& cfg) {
  Schedule sch = make_base(Collective::allreduce, cfg, "allreduce_bine_torus_multiport",
                           sched::BlockSpace::per_vector);
  TorusState proto(cfg);
  const i64 D = static_cast<i64>(proto.dims.size());
  const i64 nslices = 2 * D;
  // 2D concurrent sub-collectives: slice c starts at dimension c % D and uses
  // the mirrored direction for c >= D, so every step drives a different NIC
  // (Appendix D.4). Each runs on the blocks congruent to c mod 2D.
  for (i64 c = 0; c < nslices; ++c) {
    TorusState st(cfg);
    fill_all_blocks(st);
    // Restrict held sets to this slice so phase bookkeeping stays per-slice.
    for (Rank r = 0; r < st.p; ++r)
      st.held[static_cast<size_t>(r)] =
          slice_filter(st.held[static_cast<size_t>(r)], c, nslices);
    const bool flip = c >= D;
    size_t step = 0;
    for (i64 d = 0; d < D; ++d)
      step = bine_rs_phase(sch, st, static_cast<size_t>((c + d) % D), step, 0, 1, flip);
    for (i64 d = D; d-- > 0;)
      step = bine_ag_phase(sch, st, static_cast<size_t>((c + d) % D), step, 0, 1, flip);
  }
  sch.normalize_steps();
  return sch;
}

}  // namespace bine::coll
