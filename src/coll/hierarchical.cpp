#include "coll/hierarchical.hpp"

#include <stdexcept>

#include "coll/bine_sets.hpp"
#include "coll/butterfly_colls.hpp"
#include "core/butterfly.hpp"

namespace bine::coll {

using sched::BlockSet;
using sched::Collective;
using sched::Schedule;

Schedule allreduce_hierarchical_bine(const Config& cfg, i64 gpus_per_node) {
  const i64 G = gpus_per_node;
  if (cfg.p < 2 * G || cfg.p % G != 0) return allreduce_bine_small(cfg);
  const i64 nodes = cfg.p / G;
  if (!is_pow2(nodes))
    throw std::invalid_argument("hierarchical allreduce needs a power-of-two node count");

  Schedule sch = make_base(Collective::allreduce, cfg, "allreduce_bine_hierarchical",
                           sched::BlockSpace::per_vector);
  const i64 shard = cfg.p / G;  // blocks per local-index shard
  auto shard_of = [&](i64 local) { return BlockSet::run(local * shard, shard); };
  auto node_of = [&](Rank r) { return r / G; };
  auto local_of = [&](Rank r) { return r % G; };

  // Phase 1 -- intra-node reduce-scatter: each GPU exchanges concurrently
  // with the other G-1 GPUs of its node, collecting its own shard.
  for (Rank r = 0; r < cfg.p; ++r)
    for (i64 l = 0; l < G; ++l) {
      if (l == local_of(r)) continue;
      sch.add_exchange(0, r, node_of(r) * G + l, shard_of(l), true);
    }

  // Phase 2 -- inter-node Bine allreduce (reduce-scatter + allgather) among
  // the GPUs sharing a local index, on that shard only.
  const int s = log2_exact(nodes);
  const auto sent = detail::dd_sent_rel(nodes);
  const auto held = detail::dh_held_rel(nodes);
  auto cell = [&](i64 local, i64 node) {
    // Split the shard of `local` into one contiguous cell per node.
    const i64 base = local * shard;
    const i64 per = shard / nodes, extra = shard % nodes;
    const i64 begin = base + node * per + std::min(node, extra);
    return BlockSet::run(begin, per + (node < extra ? 1 : 0));
  };
  size_t step = 1;
  for (int k = 0; k < s; ++k, ++step)
    for (Rank r = 0; r < cfg.p; ++r) {
      const i64 j = node_of(r), l = local_of(r);
      const i64 q = core::butterfly_partner(core::ButterflyVariant::bine_dd, j, k, nodes);
      std::vector<i64> ids;
      for (const i64 rel : sent[static_cast<size_t>(k)])
        for (const i64 b : cell(l, detail::rel_to_dest(j, rel, nodes)).expand(cfg.p))
          ids.push_back(b);
      if (ids.empty()) continue;
      sch.add_exchange(step, r, q * G + l,
                       sched::blockset_from_ids(std::move(ids), cfg.p, sch.arena()), true);
    }
  for (int k = 0; k < s; ++k, ++step)
    for (Rank r = 0; r < cfg.p; ++r) {
      const i64 j = node_of(r), l = local_of(r);
      const i64 q = core::butterfly_partner(core::ButterflyVariant::bine_dh, j, k, nodes);
      std::vector<i64> ids;
      for (const i64 rel : held[static_cast<size_t>(k)])
        for (const i64 b : cell(l, detail::rel_to_dest(j, rel, nodes)).expand(cfg.p))
          ids.push_back(b);
      if (ids.empty()) continue;
      sch.add_exchange(step, r, q * G + l,
                       sched::blockset_from_ids(std::move(ids), cfg.p, sch.arena()), false);
    }

  // Phase 3 -- intra-node allgather: every GPU rebroadcasts its reduced shard
  // to its node peers.
  for (Rank r = 0; r < cfg.p; ++r)
    for (i64 l = 0; l < G; ++l) {
      if (l == local_of(r)) continue;
      sch.add_exchange(step, r, node_of(r) * G + l, shard_of(local_of(r)), false);
    }
  sch.normalize_steps();
  return sch;
}

}  // namespace bine::coll
