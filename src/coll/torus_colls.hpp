#pragma once

#include "coll/config.hpp"
#include "sched/schedule.hpp"

/// Torus-optimized collectives (Appendix D and Sec. 5.4).
///
/// Ranks are treated as coordinates of a multidimensional torus; the
/// collective is applied dimension by dimension so every transmission crosses
/// a single torus hop. `bucket` uses per-dimension rings (Jain & Sabharwal
/// [32], Fugaku's Trinaryx-like linear-step baseline); `torus_bine` uses
/// per-dimension Bine butterflies (logarithmic steps); the multi-port variant
/// runs 2D concurrent sub-collectives, one per NIC/direction, each on
/// 1/(2D) of the vector (Appendix D.4).
namespace bine::coll {

[[nodiscard]] sched::Schedule reduce_scatter_bucket(const Config& cfg);
[[nodiscard]] sched::Schedule allgather_bucket(const Config& cfg);
[[nodiscard]] sched::Schedule allreduce_bucket(const Config& cfg);

/// Per-dimension Bine reduce-scatter / allgather / allreduce. Every torus
/// dimension must be a power of two (Appendix D.3 discusses the rest).
[[nodiscard]] sched::Schedule reduce_scatter_torus_bine(const Config& cfg);
[[nodiscard]] sched::Schedule allgather_torus_bine(const Config& cfg);
[[nodiscard]] sched::Schedule allreduce_torus_bine(const Config& cfg);

/// Multi-port allreduce: 2D concurrent dimension-rotated Bine allreduces,
/// each on a 1/(2D) slice (Appendix D.4, the uTofu implementation of
/// Sec. 5.4.1).
[[nodiscard]] sched::Schedule allreduce_torus_bine_multiport(const Config& cfg);

}  // namespace bine::coll
