#include "coll/large_rooted.hpp"

#include "coll/butterfly_colls.hpp"
#include "coll/compose.hpp"
#include "coll/tree_colls.hpp"
#include "core/block_perm.hpp"
#include "core/butterfly.hpp"
#include "core/modular.hpp"
#include "core/nu.hpp"
#include "core/tree.hpp"

namespace bine::coll {

using core::to_physical;
using sched::BlockSet;
using sched::Collective;
using sched::Schedule;

Schedule bcast_scatter_allgather_std(const Config& cfg) {
  return sequence(Collective::bcast, "bcast_scatter_allgather_std", scatter_tree(cfg, core::TreeVariant::binomial_dh),
                  allgather_recursive_doubling(cfg));
}

Schedule reduce_rs_gather_std(const Config& cfg) {
  return sequence(Collective::reduce, "reduce_rs_gather_std",
                  reduce_scatter_recursive_halving(cfg),
                  gather_tree(cfg, core::TreeVariant::binomial_dh));
}

namespace {

/// Physical, aliased block set for a logical destination list: the block of
/// logical destination d is phys(reverse(nu(d))). The reverse(nu) aliasing
/// maps dd-subtrees (and the halving sets derived from them) onto contiguous
/// runs, which is what keeps every transmission contiguous (Fig. 8).
BlockSet aliased_blocks(const std::vector<i64>& logical_dests, Rank root, i64 p,
                        sched::ScheduleArena& arena) {
  std::vector<i64> ids;
  ids.reserve(logical_dests.size());
  for (const i64 d : logical_dests)
    ids.push_back(to_physical(core::permuted_position(d, p), root, p));
  return sched::blockset_from_ids(std::move(ids), p, arena);
}

i64 rel_dest(Rank l, i64 rel, i64 p) { return pmod(l % 2 == 0 ? l + rel : l - rel, p); }

/// Aliased distance-halving Bine allgather steps in logical (root-rotated)
/// space, starting from "logical rank l holds block phys(pi(l))".
void emit_aliased_dh_allgather(Schedule& sch, const Config& cfg, size_t step0) {
  const i64 P = cfg.p;
  const int s = log2_exact(P);
  for (int i = 0; i < s; ++i) {
    for (Rank l = 0; l < P; ++l) {
      const Rank q = core::butterfly_partner(core::ButterflyVariant::bine_dh, l, i, P);
      std::vector<i64> dests;
      for (i64 rel = 0; rel < P; ++rel)
        if ((core::nu(rel, P) & low_bits(s - i)) == 0) dests.push_back(rel_dest(l, rel, P));
      sch.add_exchange(step0 + static_cast<size_t>(i), to_physical(l, cfg.root, P),
                       to_physical(q, cfg.root, P), aliased_blocks(dests, cfg.root, P, sch.arena()),
                       false);
    }
  }
}

/// Aliased distance-doubling Bine reduce-scatter steps in logical space;
/// ends with "logical rank l holds block phys(pi(l))" fully reduced.
void emit_aliased_dd_reduce_scatter(Schedule& sch, const Config& cfg, size_t step0) {
  const i64 P = cfg.p;
  const int s = log2_exact(P);
  for (int j = 0; j < s; ++j) {
    for (Rank l = 0; l < P; ++l) {
      const Rank q = core::butterfly_partner(core::ButterflyVariant::bine_dd, l, j, P);
      std::vector<i64> dests;
      for (i64 rel = 0; rel < P; ++rel) {
        const u64 v = core::nu(rel, P);
        if ((v & low_bits(j)) == 0 && ((v >> j) & 1)) dests.push_back(rel_dest(l, rel, P));
      }
      sch.add_exchange(step0 + static_cast<size_t>(j), to_physical(l, cfg.root, P),
                       to_physical(q, cfg.root, P), aliased_blocks(dests, cfg.root, P, sch.arena()),
                       true);
    }
  }
}

}  // namespace

Schedule bcast_scatter_allgather_bine(const Config& cfg) {
  if (!is_pow2(cfg.p)) {
    // Appendix C fallback: contiguous without aliasing.
    return sequence(Collective::bcast, "bcast_scatter_allgather_bine",
                    scatter_tree(cfg, core::TreeVariant::bine_dh),
                    allgather_bine(cfg, NoncontigStrategy::two_transmission));
  }
  Schedule sch = make_base(Collective::bcast, cfg, "bcast_scatter_allgather_bine",
                           sched::BlockSpace::per_vector);
  const i64 P = cfg.p;
  const int s = log2_exact(P);
  // Phase 1: scatter down the distance-doubling Bine tree. Parent l ships to
  // child c the (aliased) blocks of c's whole subtree; the aliasing turns the
  // non-contiguous dd-subtrees into contiguous runs.
  for (Rank l = 0; l < P; ++l) {
    const int joined = core::join_step(core::TreeVariant::bine_dd, l, P);
    for (int st = joined + 1; st < s; ++st) {
      const Rank c = core::tree_partner(core::TreeVariant::bine_dd, l, st, P);
      sch.add_exchange(static_cast<size_t>(st), to_physical(l, cfg.root, P),
                       to_physical(c, cfg.root, P),
                       aliased_blocks(core::dd_subtree_members(c, P), cfg.root, P, sch.arena()), false);
    }
  }
  // Phase 2: distance-halving Bine allgather over the aliased layout.
  emit_aliased_dh_allgather(sch, cfg, static_cast<size_t>(s));
  sch.normalize_steps();
  return sch;
}

Schedule reduce_rs_gather_bine(const Config& cfg) {
  if (!is_pow2(cfg.p)) {
    return sequence(Collective::reduce, "reduce_rs_gather_bine",
                    reduce_scatter_bine(cfg, NoncontigStrategy::two_transmission),
                    gather_tree(cfg, core::TreeVariant::bine_dh));
  }
  Schedule sch = make_base(Collective::reduce, cfg, "reduce_rs_gather_bine",
                           sched::BlockSpace::per_vector);
  const i64 P = cfg.p;
  const int s = log2_exact(P);
  // Phase 1: aliased distance-doubling Bine reduce-scatter.
  emit_aliased_dd_reduce_scatter(sch, cfg, 0);
  // Phase 2: gather up the reversed distance-doubling Bine tree (distances
  // halve in gather order); child c ships the aliased blocks of its subtree,
  // undoing the reduce-scatter's aliasing at the root (Sec. 4.5).
  for (Rank l = 0; l < P; ++l) {
    const int joined = core::join_step(core::TreeVariant::bine_dd, l, P);
    for (int st = joined + 1; st < s; ++st) {
      const Rank c = core::tree_partner(core::TreeVariant::bine_dd, l, st, P);
      const size_t out_step = static_cast<size_t>(s) + static_cast<size_t>(s - 1 - st);
      sch.add_exchange(out_step, to_physical(c, cfg.root, P), to_physical(l, cfg.root, P),
                       aliased_blocks(core::dd_subtree_members(c, P), cfg.root, P, sch.arena()), false);
    }
  }
  sch.normalize_steps();
  return sch;
}

}  // namespace bine::coll
