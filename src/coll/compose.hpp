#pragma once

#include <string>

#include "sched/schedule.hpp"

/// Sequencing of schedule phases: run `a`'s steps, then `b`'s. Used by the
/// large-vector composites (bcast = scatter + allgather, reduce =
/// reduce-scatter + gather, allreduce = reduce-scatter + allgather).
namespace bine::coll {

[[nodiscard]] inline sched::Schedule sequence(sched::Collective coll, std::string name,
                                              const sched::Schedule& a,
                                              const sched::Schedule& b) {
  assert(a.p == b.p && a.nblocks == b.nblocks && a.space == b.space);
  sched::Schedule out = a;
  out.coll = coll;
  out.algorithm = std::move(name);
  // b's ops carry BlockSets pointing into b's arena; keep it alive.
  out.retain_arena_of(b);
  const size_t offset = out.num_steps();
  for (Rank r = 0; r < out.p; ++r) {
    auto& dst = out.steps[static_cast<size_t>(r)];
    const auto& src = b.steps[static_cast<size_t>(r)];
    dst.resize(offset + src.size());
    for (size_t t = 0; t < src.size(); ++t) dst[offset + t] = src[t];
  }
  out.normalize_steps();
  return out;
}

}  // namespace bine::coll
