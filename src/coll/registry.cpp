#include "coll/registry.hpp"

#include <map>
#include <stdexcept>

#include "coll/alltoall_colls.hpp"
#include "coll/butterfly_colls.hpp"
#include "coll/hierarchical.hpp"
#include "coll/large_rooted.hpp"
#include "coll/ring_colls.hpp"
#include "coll/torus_colls.hpp"
#include "coll/tree_colls.hpp"
#include "core/tree.hpp"

namespace bine::coll {

using sched::Collective;

namespace {

std::map<Collective, std::vector<AlgorithmEntry>> build_registry() {
  using core::TreeVariant;
  std::map<Collective, std::vector<AlgorithmEntry>> reg;

  auto tree = [](Collective c, TreeVariant v) {
    return [c, v](const Config& cfg) {
      switch (c) {
        case Collective::bcast: return bcast_tree(cfg, v);
        case Collective::reduce: return reduce_tree(cfg, v);
        case Collective::gather: return gather_tree(cfg, v);
        default: return scatter_tree(cfg, v);
      }
    };
  };

  reg[Collective::bcast] = {
      {Collective::bcast, "binomial", tree(Collective::bcast, TreeVariant::binomial_dd)},
      {Collective::bcast, "binomial_dh", tree(Collective::bcast, TreeVariant::binomial_dh)},
      {Collective::bcast, "bine", tree(Collective::bcast, TreeVariant::bine_dh), false, true},
      {Collective::bcast, "scatter_allgather", bcast_scatter_allgather_std},
      {Collective::bcast, "bine_scatter_allgather", bcast_scatter_allgather_bine, false,
       true},
      {Collective::bcast, "linear", bcast_linear},
  };
  reg[Collective::reduce] = {
      {Collective::reduce, "binomial", tree(Collective::reduce, TreeVariant::binomial_dd)},
      {Collective::reduce, "binomial_dh", tree(Collective::reduce, TreeVariant::binomial_dh)},
      {Collective::reduce, "bine", tree(Collective::reduce, TreeVariant::bine_dh), false,
       true},
      {Collective::reduce, "rs_gather", reduce_rs_gather_std},
      {Collective::reduce, "bine_rs_gather", reduce_rs_gather_bine, false, true},
      {Collective::reduce, "linear", reduce_linear},
  };
  reg[Collective::gather] = {
      {Collective::gather, "binomial", tree(Collective::gather, TreeVariant::binomial_dh)},
      {Collective::gather, "bine", tree(Collective::gather, TreeVariant::bine_dh), false,
       true},
      {Collective::gather, "linear", gather_linear},
  };
  reg[Collective::scatter] = {
      {Collective::scatter, "binomial", tree(Collective::scatter, TreeVariant::binomial_dh)},
      {Collective::scatter, "bine", tree(Collective::scatter, TreeVariant::bine_dh), false,
       true},
      {Collective::scatter, "linear", scatter_linear},
  };

  auto ag_bine = [](NoncontigStrategy st) {
    return [st](const Config& cfg) { return allgather_bine(cfg, st); };
  };
  reg[Collective::allgather] = {
      {Collective::allgather, "recursive_doubling", allgather_recursive_doubling},
      {Collective::allgather, "ring", allgather_ring},
      {Collective::allgather, "bruck", allgather_bruck},
      {Collective::allgather, "swing", allgather_swing},
      {Collective::allgather, "bine_block", ag_bine(NoncontigStrategy::block_by_block),
       false, true},
      {Collective::allgather, "bine_permute", ag_bine(NoncontigStrategy::permute), true,
       true},
      {Collective::allgather, "bine_send", ag_bine(NoncontigStrategy::send), true, true},
      {Collective::allgather, "bine_two_trans",
       ag_bine(NoncontigStrategy::two_transmission), false, true},
      {Collective::allgather, "bucket", allgather_bucket, false, false, true},
      {Collective::allgather, "bine_torus", allgather_torus_bine, true, true, true},
  };

  auto rs_bine = [](NoncontigStrategy st) {
    return [st](const Config& cfg) { return reduce_scatter_bine(cfg, st); };
  };
  reg[Collective::reduce_scatter] = {
      {Collective::reduce_scatter, "recursive_halving", reduce_scatter_recursive_halving},
      {Collective::reduce_scatter, "ring", reduce_scatter_ring},
      {Collective::reduce_scatter, "swing", reduce_scatter_swing},
      {Collective::reduce_scatter, "bine_block", rs_bine(NoncontigStrategy::block_by_block),
       false, true},
      {Collective::reduce_scatter, "bine_permute", rs_bine(NoncontigStrategy::permute),
       true, true},
      {Collective::reduce_scatter, "bine_send", rs_bine(NoncontigStrategy::send), true,
       true},
      {Collective::reduce_scatter, "bine_two_trans",
       rs_bine(NoncontigStrategy::two_transmission), false, true},
      {Collective::reduce_scatter, "bucket", reduce_scatter_bucket, false, false, true},
      {Collective::reduce_scatter, "bine_torus", reduce_scatter_torus_bine, true, true,
       true},
  };

  auto ar_bine = [](NoncontigStrategy st) {
    return [st](const Config& cfg) { return allreduce_bine_large(cfg, st); };
  };
  reg[Collective::allreduce] = {
      {Collective::allreduce, "recursive_doubling", allreduce_recursive_doubling},
      {Collective::allreduce, "rabenseifner", allreduce_rabenseifner},
      {Collective::allreduce, "ring", allreduce_ring},
      {Collective::allreduce, "swing", allreduce_swing},
      {Collective::allreduce, "bine_small", allreduce_bine_small, false, true},
      {Collective::allreduce, "bine_block", ar_bine(NoncontigStrategy::block_by_block),
       false, true},
      {Collective::allreduce, "bine_permute", ar_bine(NoncontigStrategy::permute), true,
       true},
      {Collective::allreduce, "bine_send", ar_bine(NoncontigStrategy::send), true, true},
      {Collective::allreduce, "bine_two_trans",
       ar_bine(NoncontigStrategy::two_transmission), false, true},
      {Collective::allreduce, "bucket", allreduce_bucket, false, false, true},
      {Collective::allreduce, "bine_torus", allreduce_torus_bine, true, true, true},
      {Collective::allreduce, "bine_torus_multiport", allreduce_torus_bine_multiport,
       true, true, true},
      {Collective::allreduce, "bine_hierarchical",
       [](const Config& cfg) { return allreduce_hierarchical_bine(cfg); }, true, true,
       true},
  };

  reg[Collective::alltoall] = {
      {Collective::alltoall, "bruck", alltoall_bruck},
      {Collective::alltoall, "pairwise", alltoall_pairwise},
      {Collective::alltoall, "bine", alltoall_bine, true, true},
  };
  return reg;
}

const std::map<Collective, std::vector<AlgorithmEntry>>& registry() {
  static const auto reg = build_registry();
  return reg;
}

}  // namespace

const std::vector<AlgorithmEntry>& algorithms_for(Collective coll) {
  return registry().at(coll);
}

const AlgorithmEntry& find_algorithm(Collective coll, const std::string& name) {
  for (const AlgorithmEntry& e : algorithms_for(coll))
    if (e.name == name) return e;
  throw std::out_of_range(std::string("no algorithm '") + name + "' for " +
                          to_string(coll));
}

bool has_algorithm(Collective coll, const std::string& name) {
  for (const AlgorithmEntry& e : algorithms_for(coll))
    if (e.name == name) return true;
  return false;
}

Collective collective_from_name(std::string_view name) {
  for (const Collective coll : all_collectives())
    if (name == to_string(coll)) return coll;
  throw std::out_of_range("unknown collective '" + std::string(name) + "'");
}

const AlgorithmEntry& recommended_algorithm(Collective coll, i64 p, i64 vector_bytes) {
  // The paper's small/large switch point sits in the tens of KiB on the
  // evaluated systems; the exact threshold is a tuning knob.
  const bool small = vector_bytes <= (i64{64} << 10);
  const bool pow2 = is_pow2(p);
  switch (coll) {
    case Collective::bcast:
      return find_algorithm(coll, small ? "bine" : "bine_scatter_allgather");
    case Collective::reduce:
      return find_algorithm(coll, small || !pow2 ? "bine" : "bine_rs_gather");
    case Collective::gather:
    case Collective::scatter:
      return find_algorithm(coll, "bine");
    case Collective::allgather:
      return find_algorithm(coll, pow2 ? (small ? "bine_permute" : "bine_send")
                                       : "bine_two_trans");
    case Collective::reduce_scatter:
      return find_algorithm(coll, pow2 ? (small ? "bine_permute" : "bine_send")
                                       : "bine_two_trans");
    case Collective::allreduce:
      if (small) return find_algorithm(coll, "bine_small");
      return find_algorithm(coll, pow2 ? "bine_send" : "bine_two_trans");
    case Collective::alltoall:
      return find_algorithm(coll, pow2 ? "bine" : "bruck");
  }
  throw std::out_of_range("unknown collective");
}

const std::vector<Collective>& all_collectives() {
  static const std::vector<Collective> all = {
      Collective::bcast,         Collective::reduce,    Collective::gather,
      Collective::scatter,       Collective::allgather, Collective::reduce_scatter,
      Collective::allreduce,     Collective::alltoall,
  };
  return all;
}

}  // namespace bine::coll
