#include "net/simulate.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace bine::net {

// --- reference engine (naive oracle) -------------------------------------------

TrafficStats measure_traffic_reference(const sched::Schedule& sch, const Topology& topo,
                                       const Placement& pl) {
  TrafficStats stats;
  std::vector<i64> path;
  for (Rank r = 0; r < sch.p; ++r) {
    for (const auto& step : sch.steps[static_cast<size_t>(r)]) {
      for (const sched::Op& op : step.ops) {
        if (op.kind != sched::OpKind::send) continue;
        ++stats.messages;
        path.clear();
        topo.route(pl.node_of_rank[static_cast<size_t>(r)],
                   pl.node_of_rank[static_cast<size_t>(op.peer)], path);
        for (const i64 link : path) {
          switch (topo.links()[static_cast<size_t>(link)].cls) {
            case LinkClass::local: stats.local_bytes += op.bytes; break;
            case LinkClass::global: stats.global_bytes += op.bytes; break;
            case LinkClass::intra_node: stats.intra_node_bytes += op.bytes; break;
          }
        }
      }
    }
  }
  return stats;
}

SimResult simulate_reference(const sched::Schedule& sch, const Topology& topo,
                             const Placement& pl, const CostParams& cp) {
  SimResult result;
  result.traffic = measure_traffic_reference(sch, topo, pl);
  result.steps = sch.num_steps();

  std::vector<i64> path;
  // Reused per step: link id -> accumulated bytes (sparse).
  std::unordered_map<i64, i64> link_bytes;

  for (size_t t = 0; t < result.steps; ++t) {
    link_bytes.clear();
    double max_rank_overhead = 0;
    for (Rank r = 0; r < sch.p; ++r) {
      const auto& rank_steps = sch.steps[static_cast<size_t>(r)];
      if (t >= rank_steps.size()) continue;  // ragged rank: idle this step
      double overhead = 0;
      for (const sched::Op& op : rank_steps[t].ops) {
        switch (op.kind) {
          case sched::OpKind::send: {
            path.clear();
            topo.route(pl.node_of_rank[static_cast<size_t>(r)],
                       pl.node_of_rank[static_cast<size_t>(op.peer)], path);
            bool crosses_global = false;
            for (const i64 link : path) {
              link_bytes[link] += op.bytes;
              crosses_global |=
                  topo.links()[static_cast<size_t>(link)].cls == LinkClass::global;
            }
            overhead += (crosses_global ? cp.alpha_global : cp.alpha_local) +
                        static_cast<double>(std::max<i64>(0, op.segments - 1)) *
                            cp.seg_overhead;
            break;
          }
          case sched::OpKind::recv:
            break;  // latency accounted on the sender side
          case sched::OpKind::recv_reduce:
            overhead += static_cast<double>(op.bytes) / cp.reduce_bandwidth;
            break;
          case sched::OpKind::local_perm:
            overhead += static_cast<double>(op.bytes) / cp.mem_bandwidth +
                        static_cast<double>(std::max<i64>(0, op.segments - 1)) *
                            cp.seg_overhead;
            break;
        }
      }
      max_rank_overhead = std::max(max_rank_overhead, overhead);
    }
    double max_link_time = 0;
    for (const auto& [link, bytes] : link_bytes)
      max_link_time =
          std::max(max_link_time, static_cast<double>(bytes) /
                                      topo.links()[static_cast<size_t>(link)].bandwidth);
    result.seconds += max_link_time + max_rank_overhead;
  }
  return result;
}

// --- compiled engine -----------------------------------------------------------

namespace {

/// Exact per-class accounting of one send via the cache's hop counts.
inline void accumulate_send(TrafficStats& stats, const RouteCache::ClassHops& h, i64 b) {
  ++stats.messages;
  stats.local_bytes += static_cast<i64>(h.local) * b;
  stats.global_bytes += static_cast<i64>(h.global) * b;
  stats.intra_node_bytes += static_cast<i64>(h.intra_node) * b;
}

}  // namespace

TrafficStats measure_traffic(const sched::CompiledSchedule& cs, const RouteCache& rc) {
  assert(cs.p == rc.num_ranks());
  TrafficStats stats;
  for (size_t i = 0; i < cs.num_ops(); ++i) {
    if (cs.kind[i] != sched::OpKind::send) continue;
    accumulate_send(stats, rc.hops(cs.rank[i], cs.peer[i]), cs.bytes[i]);
  }
  return stats;
}

SimResult simulate(const sched::CompiledSchedule& cs, const RouteCache& rc,
                   const CostParams& cp) {
  assert(cs.p == rc.num_ranks());
  SimResult result;
  result.steps = cs.steps;

  // Dense per-link byte accumulators. On small link arrays (torus-sized) the
  // per-step reduction scans and clears every link -- no bookkeeping in the
  // send loop; on large fabrics (a dragonfly has thousands of links, a step
  // touches few) only the touched links are visited and reset. Both orders
  // produce the same max. The scratch persists per thread: every step
  // restores the accumulators to zero, so reuse across calls never leaks
  // bytes between simulations.
  // Capacity cap: a sweep mixing large-fabric cells (dragonfly: thousands of
  // links) with small ones (torus) must not pin the high-water allocation per
  // worker thread forever, so once a small simulation follows a large one the
  // scratch is released and reallocated at the small size.
  constexpr size_t kLinkScratchCapEntries = size_t{1} << 16;
  const size_t num_links = static_cast<size_t>(rc.num_links());
  const bool dense_links = num_links <= 1024;
  static thread_local std::vector<i64> link_bytes;
  static thread_local std::vector<i64> touched;
  if (link_bytes.capacity() > kLinkScratchCapEntries && num_links <= kLinkScratchCapEntries) {
    std::vector<i64>().swap(link_bytes);
    std::vector<i64>().swap(touched);
  }
  if (link_bytes.size() < num_links) link_bytes.resize(num_links, 0);
  touched.clear();

  const double inv_reduce_bw = 1.0 / cp.reduce_bandwidth;
  const double inv_mem_bw = 1.0 / cp.mem_bandwidth;
  const double* inv_bw = rc.inv_bandwidth().data();
  const sched::OpKind* kind = cs.kind.data();
  const std::int32_t* rank = cs.rank.data();
  const std::int32_t* peer = cs.peer.data();
  const i64* bytes = cs.bytes.data();
  const std::int32_t* extra_segs = cs.extra_segments.data();

  for (size_t t = 0; t < cs.steps; ++t) {
    double max_rank_overhead = 0;
    double overhead = 0;
    std::int32_t cur_rank = -1;
    for (std::uint32_t i = cs.step_begin[t]; i < cs.step_begin[t + 1]; ++i) {
      if (rank[i] != cur_rank) {  // ops are rank-grouped within a step
        max_rank_overhead = std::max(max_rank_overhead, overhead);
        overhead = 0;
        cur_rank = rank[i];
      }
      const i64 b = bytes[i];
      switch (kind[i]) {
        case sched::OpKind::send: {
          const RouteCache::ClassHops& h = rc.hops(cur_rank, peer[i]);
          accumulate_send(result.traffic, h, b);
          if (dense_links) {
            for (const i64 link : rc.path(cur_rank, peer[i]))
              link_bytes[static_cast<size_t>(link)] += b;
          } else {
            for (const i64 link : rc.path(cur_rank, peer[i])) {
              if (link_bytes[static_cast<size_t>(link)] == 0) touched.push_back(link);
              link_bytes[static_cast<size_t>(link)] += b;
            }
          }
          overhead += (h.global > 0 ? cp.alpha_global : cp.alpha_local) +
                      static_cast<double>(extra_segs[i]) * cp.seg_overhead;
          break;
        }
        case sched::OpKind::recv:
          break;  // latency accounted on the sender side
        case sched::OpKind::recv_reduce:
          overhead += static_cast<double>(b) * inv_reduce_bw;
          break;
        case sched::OpKind::local_perm:
          overhead += static_cast<double>(b) * inv_mem_bw +
                      static_cast<double>(extra_segs[i]) * cp.seg_overhead;
          break;
      }
    }
    max_rank_overhead = std::max(max_rank_overhead, overhead);

    double max_link_time = 0;
    if (dense_links) {
      i64* lb = link_bytes.data();
      double m0 = 0, m1 = 0;
      size_t l = 0;
      for (; l + 1 < num_links; l += 2) {
        m0 = std::max(m0, static_cast<double>(lb[l]) * inv_bw[l]);
        m1 = std::max(m1, static_cast<double>(lb[l + 1]) * inv_bw[l + 1]);
      }
      for (; l < num_links; ++l) m0 = std::max(m0, static_cast<double>(lb[l]) * inv_bw[l]);
      max_link_time = std::max(m0, m1);
      std::fill_n(lb, num_links, i64{0});
    } else {
      for (const i64 link : touched) {
        max_link_time = std::max(max_link_time,
                                 static_cast<double>(link_bytes[static_cast<size_t>(link)]) *
                                     inv_bw[link]);
        link_bytes[static_cast<size_t>(link)] = 0;
      }
      touched.clear();
    }
    result.seconds += max_link_time + max_rank_overhead;
  }
  return result;
}

// --- size-batched compiled engine ----------------------------------------------

namespace {

/// Per-thread scratch arena for simulate_sizes. Sweeps call the batched engine
/// once per (cell, candidate) from long-lived pool threads, so reusing the
/// vectors turns ~15 heap round-trips per call into plain resizes. trim()
/// mirrors the scalar engine's cap so one huge schedule doesn't pin memory.
struct BatchScratch {
  std::vector<i64> full_bytes, base, rem;          // per-size geometry, padded
  std::vector<i64> bytes;                          // bytes[i*P + s], op-major
  std::vector<std::uint32_t> slot_of_link;         // link id -> compact slot
  std::vector<i64> table_links;                    // first-touch link ids
  std::vector<std::uint32_t> order, perm;          // provisional -> sorted slot
  std::vector<double> slot_inv_bw;
  std::vector<std::uint32_t> pair_index;           // rank*p + peer -> pair id
  std::vector<size_t> pair_keys;                   // entries to reset after use
  std::vector<std::uint32_t> pair_route_off, pair_route_len;
  std::vector<RouteCache::ClassHops> pair_hops;
  std::vector<double> pair_alpha;
  std::vector<std::uint32_t> route_off, route_len, route_links;
  std::vector<double> op_const;
  std::vector<RouteCache::ClassHops> hops;
  std::vector<i64> acc;                            // W-wide accumulator tiles
  std::vector<std::uint32_t> touch_epoch, touched;
  std::vector<double> seconds;
  std::vector<i64> local_b, global_b, intra_b;

  void trim() {
    // Release capacity pinned by an earlier outsized schedule once a small
    // call shows the arena no longer needs it. A call that used the space it
    // holds keeps it -- freeing hot scratch would re-fault it next call.
    constexpr size_t kCapBytes = size_t{1} << 23;
    const auto shrink = [](auto& v) {
      if (v.capacity() * sizeof(v[0]) > kCapBytes && v.size() * sizeof(v[0]) <= kCapBytes / 2)
        std::decay_t<decltype(v)>().swap(v);
    };
    shrink(bytes);
    shrink(acc);
    shrink(route_links);
    shrink(slot_of_link);
    shrink(pair_index);
  }
};

/// Everything the streaming pass reads, hoisted so the fixed-width template
/// below stays a pure loop nest.
struct StreamCtx {
  const sched::SizeFreeSchedule* sf;
  const i64* bytes;  ///< op-major rows, stride `stride`, zero in pad lanes
  size_t stride;
  const std::uint32_t* route_off;  ///< per-op segment into route_links
  const std::uint32_t* route_len;
  const std::uint32_t* route_links;
  const double* op_const;
  const RouteCache::ClassHops* hops;
  const double* slot_inv_bw;
  double inv_reduce_bw = 0;
  double inv_mem_bw = 0;
  i64* acc;                   ///< num_slots tiles of W, zeroed by the caller
  std::uint32_t* touch_epoch;  ///< num_slots, reset to kNoSlot by the caller
  std::vector<std::uint32_t>* touched;
  double* seconds;  ///< outputs, written at [off, off+W)
  i64* local_b;
  i64* global_b;
  i64* intra_b;
};

/// One pass over the op stream for lanes [off, off+W) of the padded size
/// axis. W is a compile-time width so every inner loop is a fixed-size tile
/// the autovectorizer turns into straight vector code; the accumulators live
/// on the stack. Lanes never mix -- each size's FP adds and maxes run in
/// exactly the scalar engine's order, so results stay bitwise identical; the
/// zero pad lanes compute harmless finite garbage that is never read.
template <size_t W>
void stream_ops(const StreamCtx& cx, size_t off) {
  const sched::SizeFreeSchedule& sf = *cx.sf;
  const sched::OpKind* kind = sf.kind.data();
  const std::int32_t* rank = sf.rank.data();
  double sec[W] = {};
  i64 lb[W] = {}, gb[W] = {}, ib2[W] = {};
  for (size_t t = 0; t < sf.steps; ++t) {
    double ov[W] = {}, max_ov[W] = {}, max_link[W] = {};
    cx.touched->clear();
    std::int32_t cur_rank = -1;
    for (std::uint32_t i = sf.step_begin[t]; i < sf.step_begin[t + 1]; ++i) {
      if (rank[i] != cur_rank) {  // ops are rank-grouped within a step
        for (size_t s = 0; s < W; ++s) max_ov[s] = std::max(max_ov[s], ov[s]);
        for (size_t s = 0; s < W; ++s) ov[s] = 0.0;
        cur_rank = rank[i];
      }
      const i64* b = cx.bytes + static_cast<size_t>(i) * cx.stride + off;
      switch (kind[i]) {
        case sched::OpKind::send: {
          const RouteCache::ClassHops& h = cx.hops[i];
          // Skipping a zero-hop class skips i64 adds of zero: exact.
          if (h.local) {
            const i64 m = h.local;
            for (size_t s = 0; s < W; ++s) lb[s] += m * b[s];
          }
          if (h.global) {
            const i64 m = h.global;
            for (size_t s = 0; s < W; ++s) gb[s] += m * b[s];
          }
          if (h.intra_node) {
            const i64 m = h.intra_node;
            for (size_t s = 0; s < W; ++s) ib2[s] += m * b[s];
          }
          const std::uint32_t ru0 = cx.route_off[i];
          for (std::uint32_t u = ru0; u < ru0 + cx.route_len[i]; ++u) {
            const std::uint32_t slot = cx.route_links[u];
            if (cx.touch_epoch[slot] != static_cast<std::uint32_t>(t)) {
              cx.touch_epoch[slot] = static_cast<std::uint32_t>(t);
              cx.touched->push_back(slot);
            }
            i64* a = cx.acc + static_cast<size_t>(slot) * W;
            for (size_t s = 0; s < W; ++s) a[s] += b[s];
          }
          const double c = cx.op_const[i];
          for (size_t s = 0; s < W; ++s) ov[s] += c;
          break;
        }
        case sched::OpKind::recv:
          break;  // latency accounted on the sender side
        case sched::OpKind::recv_reduce:
          for (size_t s = 0; s < W; ++s)
            ov[s] += static_cast<double>(b[s]) * cx.inv_reduce_bw;
          break;
        case sched::OpKind::local_perm: {
          const double c = cx.op_const[i];
          for (size_t s = 0; s < W; ++s)
            ov[s] += static_cast<double>(b[s]) * cx.inv_mem_bw + c;
          break;
        }
      }
    }
    for (size_t s = 0; s < W; ++s) max_ov[s] = std::max(max_ov[s], ov[s]);

    // Strided max-reduce: each touched slot's tile is contiguous in s, so the
    // scan is W-wide vector max ops. Loads are non-negative finite, so any
    // reduction order yields the scalar engine's max bitwise.
    for (const std::uint32_t slot : *cx.touched) {
      const double ib = cx.slot_inv_bw[slot];
      i64* a = cx.acc + static_cast<size_t>(slot) * W;
      for (size_t s = 0; s < W; ++s)
        max_link[s] = std::max(max_link[s], static_cast<double>(a[s]) * ib);
      for (size_t s = 0; s < W; ++s) a[s] = 0;
    }
    for (size_t s = 0; s < W; ++s) sec[s] += max_link[s] + max_ov[s];
  }
  for (size_t s = 0; s < W; ++s) cx.seconds[off + s] = sec[s];
  for (size_t s = 0; s < W; ++s) cx.local_b[off + s] = lb[s];
  for (size_t s = 0; s < W; ++s) cx.global_b[off + s] = gb[s];
  for (size_t s = 0; s < W; ++s) cx.intra_b[off + s] = ib2[s];
}

/// Wire-byte rows bytes[i*P + s], materialized once per cell.
/// ranges_elem_count(rs, n, B) decomposes exactly as C*(n/B) + R(n%B): C is
/// the total covered block count and R(rem) sums, over the *unwrapped*
/// sub-runs [lo, hi) each range splits into, the ids below rem:
/// max(0, min(hi, rem) - lo). All-i64, so each row holds precisely what
/// resolve_into would bake per size; pad lanes (base = rem = 0) come out 0.
/// One walk over the ranges builds the row in place in W-wide tiles -- the
/// sub-runs are never materialized.
template <size_t W>
void build_byte_rows(const sched::SizeFreeSchedule& sf, i64 elem_size,
                     const i64* full_bytes, const i64* base, const i64* rem, size_t P,
                     i64* bytes) {
  const i64 B = sf.nblocks;
  const size_t nops = sf.num_ops();
  const sched::OpKind* kind = sf.kind.data();
  for (size_t i = 0; i < nops; ++i) {
    // Plain recvs never read their row (latency is the sender's): skip the
    // materialization and leave whatever is there -- it is dead scratch.
    if (kind[i] == sched::OpKind::recv) continue;
    i64* row = bytes + i * P;
    if (sf.full_vector[i]) {
      std::copy(full_bytes, full_bytes + P, row);
      continue;
    }
    i64 c = 0;
    for (std::uint32_t r = sf.block_begin[i]; r < sf.block_begin[i + 1]; ++r)
      c += sf.ranges[r].count;
    for (size_t k = 0; k < P; k += W) {
      i64* rw = row + k;
      const i64* rm = rem + k;
      for (size_t s = 0; s < W; ++s) rw[s] = c * base[k + s];
      for (std::uint32_t r = sf.block_begin[i]; r < sf.block_begin[i + 1]; ++r) {
        const sched::BlockRange& br = sf.ranges[r];
        const i64 head = std::min(br.count, B - br.begin);
        const i64 lo = br.begin, hi = br.begin + head;
        for (size_t s = 0; s < W; ++s)
          rw[s] += std::max<i64>(0, std::min(hi, rm[s]) - lo);
        const i64 tail = br.count - head;  // wrapped part, restarting at block 0
        if (tail > 0)
          for (size_t s = 0; s < W; ++s) rw[s] += std::min(tail, rm[s]);
      }
      for (size_t s = 0; s < W; ++s) rw[s] *= elem_size;
    }
  }
}

}  // namespace

std::vector<SimResult> simulate_sizes(const sched::SizeFreeSchedule& sf,
                                      std::span<const i64> elem_counts, i64 elem_size,
                                      const RouteCache& rc, const CostParams& cp) {
  assert(sf.size_independent && "demoted entries must fall back to fresh generation");
  assert(sf.p == rc.num_ranks());
  const size_t S = elem_counts.size();
  std::vector<SimResult> results(S);
  if (S == 0) return results;

  const size_t nops = sf.num_ops();
  const i64 B = sf.nblocks;
  const sched::OpKind* kind = sf.kind.data();
  const std::int32_t* rank = sf.rank.data();
  const std::int32_t* peer = sf.peer.data();
  const std::int32_t* extra_segs = sf.extra_segments.data();

  static thread_local BatchScratch sc;

  // Pad the size axis to a fixed lane width so every inner loop below is a
  // compile-time-size tile. Pad lanes carry zero geometry: their bytes rows
  // are zero and their outputs are discarded.
  const size_t W = S <= 2 ? 2 : S <= 4 ? 4 : 8;
  const size_t P = (S + W - 1) / W * W;

  // Per-size vector geometry (the arithmetic resolve_into runs per entry).
  sc.full_bytes.assign(P, 0);
  sc.base.assign(P, 0);
  sc.rem.assign(P, 0);
  for (size_t s = 0; s < S; ++s) {
    const i64 n = sf.space == sched::BlockSpace::pairwise ? elem_counts[s] * sf.p
                                                          : elem_counts[s];
    sc.full_bytes[s] = n * elem_size;
    sc.base[s] = n / B;
    sc.rem[s] = n % B;
  }

  sc.bytes.resize(nops * P);
  switch (W) {
    case 2:
      build_byte_rows<2>(sf, elem_size, sc.full_bytes.data(), sc.base.data(),
                         sc.rem.data(), P, sc.bytes.data());
      break;
    case 4:
      build_byte_rows<4>(sf, elem_size, sc.full_bytes.data(), sc.base.data(),
                         sc.rem.data(), P, sc.bytes.data());
      break;
    default:
      build_byte_rows<8>(sf, elem_size, sc.full_bytes.data(), sc.base.data(),
                         sc.rem.data(), P, sc.bytes.data());
      break;
  }

  // --- compact link table + flattened per-send route CSR --------------------
  // Routes are memoized per ordered (rank, peer) pair: a schedule touches
  // O(p log p) pairs but repeats each across many steps (ring repeats its p
  // neighbor pairs p-1 times), so the path walk, compact-slot assignment, and
  // hop/alpha lookups run once per pair. Each send then just references its
  // pair's slot segment -- the shared segments also keep the streaming pass's
  // route reads small and cache-hot. Slots are assigned in first-touch order
  // and re-sorted below. The overhead constants reproduce the scalar engine's
  // expressions term for term so the FP accumulation matches it bitwise.
  constexpr std::uint32_t kNoSlot = 0xffffffffu;
  sc.slot_of_link.assign(static_cast<size_t>(rc.num_links()), kNoSlot);
  sc.table_links.clear();
  // pair_index is kept all-kNoSlot between calls (touched entries are reset
  // after the pass below), so reuse skips the O(p^2) clear.
  const size_t np = static_cast<size_t>(sf.p);
  if (sc.pair_index.size() < np * np) sc.pair_index.assign(np * np, kNoSlot);
  sc.pair_keys.clear();
  sc.pair_route_off.clear();
  sc.pair_route_len.clear();
  sc.pair_hops.clear();
  sc.pair_alpha.clear();
  sc.route_off.resize(nops);   // only sends are read; stale elsewhere is fine
  sc.route_len.resize(nops);
  sc.route_links.clear();
  sc.op_const.resize(nops);    // send alpha+segments / perm segments
  sc.hops.resize(nops);
  i64 messages = 0;  // = send count: size-independent, so counted here once
  for (size_t i = 0; i < nops; ++i) {
    switch (kind[i]) {
      case sched::OpKind::send: {
        ++messages;
        const size_t key = static_cast<size_t>(rank[i]) * np + static_cast<size_t>(peer[i]);
        std::uint32_t& pid = sc.pair_index[key];
        if (pid == kNoSlot) {
          pid = static_cast<std::uint32_t>(sc.pair_route_off.size());
          sc.pair_keys.push_back(key);
          const std::span<const i64> path = rc.path(rank[i], peer[i]);
          sc.pair_route_off.push_back(static_cast<std::uint32_t>(sc.route_links.size()));
          sc.pair_route_len.push_back(static_cast<std::uint32_t>(path.size()));
          for (const i64 link : path) {
            std::uint32_t& slot = sc.slot_of_link[static_cast<size_t>(link)];
            if (slot == kNoSlot) {
              slot = static_cast<std::uint32_t>(sc.table_links.size());
              sc.table_links.push_back(link);
            }
            sc.route_links.push_back(slot);
          }
          const RouteCache::ClassHops& h = rc.hops(rank[i], peer[i]);
          sc.pair_hops.push_back(h);
          sc.pair_alpha.push_back(h.global > 0 ? cp.alpha_global : cp.alpha_local);
        }
        sc.route_off[i] = sc.pair_route_off[pid];
        sc.route_len[i] = sc.pair_route_len[pid];
        sc.hops[i] = sc.pair_hops[pid];
        sc.op_const[i] = sc.pair_alpha[pid] +
                         static_cast<double>(extra_segs[i]) * cp.seg_overhead;
        break;
      }
      case sched::OpKind::local_perm:
        sc.op_const[i] = static_cast<double>(extra_segs[i]) * cp.seg_overhead;
        break;
      default:
        break;
    }
  }
  // Restore the all-kNoSlot invariant for the next call on this thread.
  for (const size_t key : sc.pair_keys) sc.pair_index[key] = kNoSlot;

  // Re-sort the slots by (LinkClass, id): the class partition keeps
  // fault-degradation rescaling a contiguous column multiply per class (rc's
  // inverse bandwidths already carry the degradation -- harness::Runner
  // degrades the route cache exactly once at build). Only the CSR entries
  // need remapping, one contiguous pass.
  const size_t num_slots = sc.table_links.size();
  const std::span<const LinkClass> link_class = rc.link_class();
  sc.order.resize(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot)
    sc.order[slot] = static_cast<std::uint32_t>(slot);
  std::sort(sc.order.begin(), sc.order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const i64 la = sc.table_links[a], lb = sc.table_links[b];
    const LinkClass ca = link_class[static_cast<size_t>(la)];
    const LinkClass cb = link_class[static_cast<size_t>(lb)];
    if (ca != cb) return ca < cb;
    return la < lb;
  });
  sc.perm.resize(num_slots);
  sc.slot_inv_bw.resize(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot) {
    sc.perm[sc.order[slot]] = static_cast<std::uint32_t>(slot);
    sc.slot_inv_bw[slot] =
        rc.inv_bandwidth()[static_cast<size_t>(sc.table_links[sc.order[slot]])];
  }
  for (std::uint32_t& slot : sc.route_links) slot = sc.perm[slot];

  // --- op-stream passes, size axis innermost in W-wide lanes ----------------
  sc.touched.clear();
  sc.touched.reserve(num_slots);
  sc.seconds.resize(P);
  sc.local_b.resize(P);
  sc.global_b.resize(P);
  sc.intra_b.resize(P);
  StreamCtx cx;
  cx.sf = &sf;
  cx.bytes = sc.bytes.data();
  cx.stride = P;
  cx.route_off = sc.route_off.data();
  cx.route_len = sc.route_len.data();
  cx.route_links = sc.route_links.data();
  cx.op_const = sc.op_const.data();
  cx.hops = sc.hops.data();
  cx.slot_inv_bw = sc.slot_inv_bw.data();
  cx.inv_reduce_bw = 1.0 / cp.reduce_bandwidth;
  cx.inv_mem_bw = 1.0 / cp.mem_bandwidth;
  cx.touched = &sc.touched;
  cx.seconds = sc.seconds.data();
  cx.local_b = sc.local_b.data();
  cx.global_b = sc.global_b.data();
  cx.intra_b = sc.intra_b.data();
  const auto run_chunks = [&](auto width) {
    constexpr size_t kW = decltype(width)::value;
    for (size_t off = 0; off < P; off += kW) {
      sc.acc.assign(num_slots * kW, 0);  // accumulator tiles, one per slot
      sc.touch_epoch.assign(num_slots, kNoSlot);
      cx.acc = sc.acc.data();
      cx.touch_epoch = sc.touch_epoch.data();
      stream_ops<kW>(cx, off);
    }
  };
  switch (W) {
    case 2: run_chunks(std::integral_constant<size_t, 2>{}); break;
    case 4: run_chunks(std::integral_constant<size_t, 4>{}); break;
    default: run_chunks(std::integral_constant<size_t, 8>{}); break;
  }

  for (size_t s = 0; s < S; ++s) {
    results[s].seconds = sc.seconds[s];
    results[s].steps = sf.steps;
    results[s].traffic = {sc.local_b[s], sc.global_b[s], sc.intra_b[s], messages};
  }
  sc.trim();
  return results;
}

// --- Schedule-level conveniences -----------------------------------------------

namespace {

/// Ordered rank pairs the cost model will query for `cs`: the (rank, peer)
/// of every send. A schedule touches O(p log p) of the p^2 pairs, so scoping
/// the route build to this list is what makes the one-off conveniences cheap
/// on large rank counts (sweeps keep the eager build; see harness::Runner).
std::vector<std::pair<Rank, Rank>> send_pairs(const sched::CompiledSchedule& cs) {
  std::vector<std::pair<Rank, Rank>> pairs;
  pairs.reserve(cs.num_ops());
  for (size_t i = 0; i < cs.num_ops(); ++i)
    if (cs.kind[i] == sched::OpKind::send) pairs.emplace_back(cs.rank[i], cs.peer[i]);
  return pairs;  // RouteCache's scoped constructor sorts and dedups
}

}  // namespace

TrafficStats measure_traffic(const sched::Schedule& sch, const Topology& topo,
                             const Placement& pl) {
  const sched::CompiledSchedule cs = sched::CompiledSchedule::lower(sch);
  return measure_traffic(cs, RouteCache(topo, pl, send_pairs(cs)));
}

SimResult simulate(const sched::Schedule& sch, const Topology& topo, const Placement& pl,
                   const CostParams& cp) {
  const sched::CompiledSchedule cs = sched::CompiledSchedule::lower(sch);
  return simulate(cs, RouteCache(topo, pl, send_pairs(cs)), cp);
}

i64 inter_group_bytes(const sched::Schedule& sch, std::span<const i64> group_of_rank) {
  i64 total = 0;
  for (Rank r = 0; r < sch.p; ++r)
    for (const auto& step : sch.steps[static_cast<size_t>(r)])
      for (const sched::Op& op : step.ops)
        if (op.kind == sched::OpKind::send &&
            group_of_rank[static_cast<size_t>(r)] !=
                group_of_rank[static_cast<size_t>(op.peer)])
          total += op.bytes;
  return total;
}

}  // namespace bine::net
