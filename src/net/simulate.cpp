#include "net/simulate.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace bine::net {

// --- reference engine (naive oracle) -------------------------------------------

TrafficStats measure_traffic_reference(const sched::Schedule& sch, const Topology& topo,
                                       const Placement& pl) {
  TrafficStats stats;
  std::vector<i64> path;
  for (Rank r = 0; r < sch.p; ++r) {
    for (const auto& step : sch.steps[static_cast<size_t>(r)]) {
      for (const sched::Op& op : step.ops) {
        if (op.kind != sched::OpKind::send) continue;
        ++stats.messages;
        path.clear();
        topo.route(pl.node_of_rank[static_cast<size_t>(r)],
                   pl.node_of_rank[static_cast<size_t>(op.peer)], path);
        for (const i64 link : path) {
          switch (topo.links()[static_cast<size_t>(link)].cls) {
            case LinkClass::local: stats.local_bytes += op.bytes; break;
            case LinkClass::global: stats.global_bytes += op.bytes; break;
            case LinkClass::intra_node: stats.intra_node_bytes += op.bytes; break;
          }
        }
      }
    }
  }
  return stats;
}

SimResult simulate_reference(const sched::Schedule& sch, const Topology& topo,
                             const Placement& pl, const CostParams& cp) {
  SimResult result;
  result.traffic = measure_traffic_reference(sch, topo, pl);
  result.steps = sch.num_steps();

  std::vector<i64> path;
  // Reused per step: link id -> accumulated bytes (sparse).
  std::unordered_map<i64, i64> link_bytes;

  for (size_t t = 0; t < result.steps; ++t) {
    link_bytes.clear();
    double max_rank_overhead = 0;
    for (Rank r = 0; r < sch.p; ++r) {
      const auto& rank_steps = sch.steps[static_cast<size_t>(r)];
      if (t >= rank_steps.size()) continue;  // ragged rank: idle this step
      double overhead = 0;
      for (const sched::Op& op : rank_steps[t].ops) {
        switch (op.kind) {
          case sched::OpKind::send: {
            path.clear();
            topo.route(pl.node_of_rank[static_cast<size_t>(r)],
                       pl.node_of_rank[static_cast<size_t>(op.peer)], path);
            bool crosses_global = false;
            for (const i64 link : path) {
              link_bytes[link] += op.bytes;
              crosses_global |=
                  topo.links()[static_cast<size_t>(link)].cls == LinkClass::global;
            }
            overhead += (crosses_global ? cp.alpha_global : cp.alpha_local) +
                        static_cast<double>(std::max<i64>(0, op.segments - 1)) *
                            cp.seg_overhead;
            break;
          }
          case sched::OpKind::recv:
            break;  // latency accounted on the sender side
          case sched::OpKind::recv_reduce:
            overhead += static_cast<double>(op.bytes) / cp.reduce_bandwidth;
            break;
          case sched::OpKind::local_perm:
            overhead += static_cast<double>(op.bytes) / cp.mem_bandwidth +
                        static_cast<double>(std::max<i64>(0, op.segments - 1)) *
                            cp.seg_overhead;
            break;
        }
      }
      max_rank_overhead = std::max(max_rank_overhead, overhead);
    }
    double max_link_time = 0;
    for (const auto& [link, bytes] : link_bytes)
      max_link_time =
          std::max(max_link_time, static_cast<double>(bytes) /
                                      topo.links()[static_cast<size_t>(link)].bandwidth);
    result.seconds += max_link_time + max_rank_overhead;
  }
  return result;
}

// --- compiled engine -----------------------------------------------------------

namespace {

/// Exact per-class accounting of one send via the cache's hop counts.
inline void accumulate_send(TrafficStats& stats, const RouteCache::ClassHops& h, i64 b) {
  ++stats.messages;
  stats.local_bytes += static_cast<i64>(h.local) * b;
  stats.global_bytes += static_cast<i64>(h.global) * b;
  stats.intra_node_bytes += static_cast<i64>(h.intra_node) * b;
}

}  // namespace

TrafficStats measure_traffic(const sched::CompiledSchedule& cs, const RouteCache& rc) {
  assert(cs.p == rc.num_ranks());
  TrafficStats stats;
  for (size_t i = 0; i < cs.num_ops(); ++i) {
    if (cs.kind[i] != sched::OpKind::send) continue;
    accumulate_send(stats, rc.hops(cs.rank[i], cs.peer[i]), cs.bytes[i]);
  }
  return stats;
}

SimResult simulate(const sched::CompiledSchedule& cs, const RouteCache& rc,
                   const CostParams& cp) {
  assert(cs.p == rc.num_ranks());
  SimResult result;
  result.steps = cs.steps;

  // Dense per-link byte accumulators. On small link arrays (torus-sized) the
  // per-step reduction scans and clears every link -- no bookkeeping in the
  // send loop; on large fabrics (a dragonfly has thousands of links, a step
  // touches few) only the touched links are visited and reset. Both orders
  // produce the same max. The scratch persists per thread: every step
  // restores the accumulators to zero, so reuse across calls never leaks
  // bytes between simulations.
  const size_t num_links = static_cast<size_t>(rc.num_links());
  const bool dense_links = num_links <= 1024;
  static thread_local std::vector<i64> link_bytes;
  static thread_local std::vector<i64> touched;
  if (link_bytes.size() < num_links) link_bytes.resize(num_links, 0);
  touched.clear();

  const double inv_reduce_bw = 1.0 / cp.reduce_bandwidth;
  const double inv_mem_bw = 1.0 / cp.mem_bandwidth;
  const double* inv_bw = rc.inv_bandwidth().data();
  const sched::OpKind* kind = cs.kind.data();
  const std::int32_t* rank = cs.rank.data();
  const std::int32_t* peer = cs.peer.data();
  const i64* bytes = cs.bytes.data();
  const std::int32_t* extra_segs = cs.extra_segments.data();

  for (size_t t = 0; t < cs.steps; ++t) {
    double max_rank_overhead = 0;
    double overhead = 0;
    std::int32_t cur_rank = -1;
    for (std::uint32_t i = cs.step_begin[t]; i < cs.step_begin[t + 1]; ++i) {
      if (rank[i] != cur_rank) {  // ops are rank-grouped within a step
        max_rank_overhead = std::max(max_rank_overhead, overhead);
        overhead = 0;
        cur_rank = rank[i];
      }
      const i64 b = bytes[i];
      switch (kind[i]) {
        case sched::OpKind::send: {
          const RouteCache::ClassHops& h = rc.hops(cur_rank, peer[i]);
          accumulate_send(result.traffic, h, b);
          if (dense_links) {
            for (const i64 link : rc.path(cur_rank, peer[i]))
              link_bytes[static_cast<size_t>(link)] += b;
          } else {
            for (const i64 link : rc.path(cur_rank, peer[i])) {
              if (link_bytes[static_cast<size_t>(link)] == 0) touched.push_back(link);
              link_bytes[static_cast<size_t>(link)] += b;
            }
          }
          overhead += (h.global > 0 ? cp.alpha_global : cp.alpha_local) +
                      static_cast<double>(extra_segs[i]) * cp.seg_overhead;
          break;
        }
        case sched::OpKind::recv:
          break;  // latency accounted on the sender side
        case sched::OpKind::recv_reduce:
          overhead += static_cast<double>(b) * inv_reduce_bw;
          break;
        case sched::OpKind::local_perm:
          overhead += static_cast<double>(b) * inv_mem_bw +
                      static_cast<double>(extra_segs[i]) * cp.seg_overhead;
          break;
      }
    }
    max_rank_overhead = std::max(max_rank_overhead, overhead);

    double max_link_time = 0;
    if (dense_links) {
      i64* lb = link_bytes.data();
      double m0 = 0, m1 = 0;
      size_t l = 0;
      for (; l + 1 < num_links; l += 2) {
        m0 = std::max(m0, static_cast<double>(lb[l]) * inv_bw[l]);
        m1 = std::max(m1, static_cast<double>(lb[l + 1]) * inv_bw[l + 1]);
      }
      for (; l < num_links; ++l) m0 = std::max(m0, static_cast<double>(lb[l]) * inv_bw[l]);
      max_link_time = std::max(m0, m1);
      std::fill_n(lb, num_links, i64{0});
    } else {
      for (const i64 link : touched) {
        max_link_time = std::max(max_link_time,
                                 static_cast<double>(link_bytes[static_cast<size_t>(link)]) *
                                     inv_bw[link]);
        link_bytes[static_cast<size_t>(link)] = 0;
      }
      touched.clear();
    }
    result.seconds += max_link_time + max_rank_overhead;
  }
  return result;
}

// --- Schedule-level conveniences -----------------------------------------------

namespace {

/// Ordered rank pairs the cost model will query for `cs`: the (rank, peer)
/// of every send. A schedule touches O(p log p) of the p^2 pairs, so scoping
/// the route build to this list is what makes the one-off conveniences cheap
/// on large rank counts (sweeps keep the eager build; see harness::Runner).
std::vector<std::pair<Rank, Rank>> send_pairs(const sched::CompiledSchedule& cs) {
  std::vector<std::pair<Rank, Rank>> pairs;
  pairs.reserve(cs.num_ops());
  for (size_t i = 0; i < cs.num_ops(); ++i)
    if (cs.kind[i] == sched::OpKind::send) pairs.emplace_back(cs.rank[i], cs.peer[i]);
  return pairs;  // RouteCache's scoped constructor sorts and dedups
}

}  // namespace

TrafficStats measure_traffic(const sched::Schedule& sch, const Topology& topo,
                             const Placement& pl) {
  const sched::CompiledSchedule cs = sched::CompiledSchedule::lower(sch);
  return measure_traffic(cs, RouteCache(topo, pl, send_pairs(cs)));
}

SimResult simulate(const sched::Schedule& sch, const Topology& topo, const Placement& pl,
                   const CostParams& cp) {
  const sched::CompiledSchedule cs = sched::CompiledSchedule::lower(sch);
  return simulate(cs, RouteCache(topo, pl, send_pairs(cs)), cp);
}

i64 inter_group_bytes(const sched::Schedule& sch, std::span<const i64> group_of_rank) {
  i64 total = 0;
  for (Rank r = 0; r < sch.p; ++r)
    for (const auto& step : sch.steps[static_cast<size_t>(r)])
      for (const sched::Op& op : step.ops)
        if (op.kind == sched::OpKind::send &&
            group_of_rank[static_cast<size_t>(r)] !=
                group_of_rank[static_cast<size_t>(op.peer)])
          total += op.bytes;
  return total;
}

}  // namespace bine::net
