#include "net/simulate.hpp"

#include <algorithm>
#include <unordered_map>

namespace bine::net {

TrafficStats measure_traffic(const sched::Schedule& sch, const Topology& topo,
                             const Placement& pl) {
  TrafficStats stats;
  std::vector<i64> path;
  for (Rank r = 0; r < sch.p; ++r) {
    for (const auto& step : sch.steps[static_cast<size_t>(r)]) {
      for (const sched::Op& op : step.ops) {
        if (op.kind != sched::OpKind::send) continue;
        ++stats.messages;
        path.clear();
        topo.route(pl.node_of_rank[static_cast<size_t>(r)],
                   pl.node_of_rank[static_cast<size_t>(op.peer)], path);
        for (const i64 link : path) {
          switch (topo.links()[static_cast<size_t>(link)].cls) {
            case LinkClass::local: stats.local_bytes += op.bytes; break;
            case LinkClass::global: stats.global_bytes += op.bytes; break;
            case LinkClass::intra_node: stats.intra_node_bytes += op.bytes; break;
          }
        }
      }
    }
  }
  return stats;
}

i64 inter_group_bytes(const sched::Schedule& sch, std::span<const i64> group_of_rank) {
  i64 total = 0;
  for (Rank r = 0; r < sch.p; ++r)
    for (const auto& step : sch.steps[static_cast<size_t>(r)])
      for (const sched::Op& op : step.ops)
        if (op.kind == sched::OpKind::send &&
            group_of_rank[static_cast<size_t>(r)] !=
                group_of_rank[static_cast<size_t>(op.peer)])
          total += op.bytes;
  return total;
}

SimResult simulate(const sched::Schedule& sch, const Topology& topo, const Placement& pl,
                   const CostParams& cp) {
  SimResult result;
  result.traffic = measure_traffic(sch, topo, pl);
  result.steps = sch.num_steps();

  std::vector<i64> path;
  // Reused per step: link id -> accumulated bytes (sparse).
  std::unordered_map<i64, i64> link_bytes;

  for (size_t t = 0; t < sch.num_steps(); ++t) {
    link_bytes.clear();
    double max_rank_overhead = 0;
    for (Rank r = 0; r < sch.p; ++r) {
      double overhead = 0;
      for (const sched::Op& op : sch.steps[static_cast<size_t>(r)][t].ops) {
        switch (op.kind) {
          case sched::OpKind::send: {
            path.clear();
            topo.route(pl.node_of_rank[static_cast<size_t>(r)],
                       pl.node_of_rank[static_cast<size_t>(op.peer)], path);
            bool crosses_global = false;
            for (const i64 link : path) {
              link_bytes[link] += op.bytes;
              crosses_global |=
                  topo.links()[static_cast<size_t>(link)].cls == LinkClass::global;
            }
            overhead += (crosses_global ? cp.alpha_global : cp.alpha_local) +
                        static_cast<double>(std::max<i64>(0, op.segments - 1)) *
                            cp.seg_overhead;
            break;
          }
          case sched::OpKind::recv:
            break;  // latency accounted on the sender side
          case sched::OpKind::recv_reduce:
            overhead += static_cast<double>(op.bytes) / cp.reduce_bandwidth;
            break;
          case sched::OpKind::local_perm:
            overhead += static_cast<double>(op.bytes) / cp.mem_bandwidth +
                        static_cast<double>(std::max<i64>(0, op.segments - 1)) *
                            cp.seg_overhead;
            break;
        }
      }
      max_rank_overhead = std::max(max_rank_overhead, overhead);
    }
    double max_link_time = 0;
    for (const auto& [link, bytes] : link_bytes)
      max_link_time =
          std::max(max_link_time, static_cast<double>(bytes) /
                                      topo.links()[static_cast<size_t>(link)].bandwidth);
    result.seconds += max_link_time + max_rank_overhead;
  }
  return result;
}

}  // namespace bine::net
