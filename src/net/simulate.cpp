#include "net/simulate.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace bine::net {

// --- reference engine (naive oracle) -------------------------------------------

TrafficStats measure_traffic_reference(const sched::Schedule& sch, const Topology& topo,
                                       const Placement& pl) {
  TrafficStats stats;
  std::vector<i64> path;
  for (Rank r = 0; r < sch.p; ++r) {
    for (const auto& step : sch.steps[static_cast<size_t>(r)]) {
      for (const sched::Op& op : step.ops) {
        if (op.kind != sched::OpKind::send) continue;
        ++stats.messages;
        path.clear();
        topo.route(pl.node_of_rank[static_cast<size_t>(r)],
                   pl.node_of_rank[static_cast<size_t>(op.peer)], path);
        for (const i64 link : path) {
          switch (topo.links()[static_cast<size_t>(link)].cls) {
            case LinkClass::local: stats.local_bytes += op.bytes; break;
            case LinkClass::global: stats.global_bytes += op.bytes; break;
            case LinkClass::intra_node: stats.intra_node_bytes += op.bytes; break;
          }
        }
      }
    }
  }
  return stats;
}

SimResult simulate_reference(const sched::Schedule& sch, const Topology& topo,
                             const Placement& pl, const CostParams& cp) {
  SimResult result;
  result.traffic = measure_traffic_reference(sch, topo, pl);
  result.steps = sch.num_steps();

  std::vector<i64> path;
  // Reused per step: link id -> accumulated bytes (sparse).
  std::unordered_map<i64, i64> link_bytes;

  for (size_t t = 0; t < result.steps; ++t) {
    link_bytes.clear();
    double max_rank_overhead = 0;
    for (Rank r = 0; r < sch.p; ++r) {
      const auto& rank_steps = sch.steps[static_cast<size_t>(r)];
      if (t >= rank_steps.size()) continue;  // ragged rank: idle this step
      double overhead = 0;
      for (const sched::Op& op : rank_steps[t].ops) {
        switch (op.kind) {
          case sched::OpKind::send: {
            path.clear();
            topo.route(pl.node_of_rank[static_cast<size_t>(r)],
                       pl.node_of_rank[static_cast<size_t>(op.peer)], path);
            bool crosses_global = false;
            for (const i64 link : path) {
              link_bytes[link] += op.bytes;
              crosses_global |=
                  topo.links()[static_cast<size_t>(link)].cls == LinkClass::global;
            }
            overhead += (crosses_global ? cp.alpha_global : cp.alpha_local) +
                        static_cast<double>(std::max<i64>(0, op.segments - 1)) *
                            cp.seg_overhead;
            break;
          }
          case sched::OpKind::recv:
            break;  // latency accounted on the sender side
          case sched::OpKind::recv_reduce:
            overhead += static_cast<double>(op.bytes) / cp.reduce_bandwidth;
            break;
          case sched::OpKind::local_perm:
            overhead += static_cast<double>(op.bytes) / cp.mem_bandwidth +
                        static_cast<double>(std::max<i64>(0, op.segments - 1)) *
                            cp.seg_overhead;
            break;
        }
      }
      max_rank_overhead = std::max(max_rank_overhead, overhead);
    }
    double max_link_time = 0;
    for (const auto& [link, bytes] : link_bytes)
      max_link_time =
          std::max(max_link_time, static_cast<double>(bytes) /
                                      topo.links()[static_cast<size_t>(link)].bandwidth);
    result.seconds += max_link_time + max_rank_overhead;
  }
  return result;
}

// --- compiled engine -----------------------------------------------------------

namespace {

/// Exact per-class accounting of one send via the cache's hop counts.
inline void accumulate_send(TrafficStats& stats, const RouteCache::ClassHops& h, i64 b) {
  ++stats.messages;
  stats.local_bytes += static_cast<i64>(h.local) * b;
  stats.global_bytes += static_cast<i64>(h.global) * b;
  stats.intra_node_bytes += static_cast<i64>(h.intra_node) * b;
}

}  // namespace

TrafficStats measure_traffic(const sched::CompiledSchedule& cs, const RouteCache& rc) {
  assert(cs.p == rc.num_ranks());
  TrafficStats stats;
  for (size_t i = 0; i < cs.num_ops(); ++i) {
    if (cs.kind[i] != sched::OpKind::send) continue;
    accumulate_send(stats, rc.hops(cs.rank[i], cs.peer[i]), cs.bytes[i]);
  }
  return stats;
}

SimResult simulate(const sched::CompiledSchedule& cs, const RouteCache& rc,
                   const CostParams& cp) {
  assert(cs.p == rc.num_ranks());
  SimResult result;
  result.steps = cs.steps;

  // Dense per-link byte accumulators. On small link arrays (torus-sized) the
  // per-step reduction scans and clears every link -- no bookkeeping in the
  // send loop; on large fabrics (a dragonfly has thousands of links, a step
  // touches few) only the touched links are visited and reset. Both orders
  // produce the same max. The scratch persists per thread: every step
  // restores the accumulators to zero, so reuse across calls never leaks
  // bytes between simulations.
  // Capacity cap: a sweep mixing large-fabric cells (dragonfly: thousands of
  // links) with small ones (torus) must not pin the high-water allocation per
  // worker thread forever, so once a small simulation follows a large one the
  // scratch is released and reallocated at the small size.
  constexpr size_t kLinkScratchCapEntries = size_t{1} << 16;
  const size_t num_links = static_cast<size_t>(rc.num_links());
  const bool dense_links = num_links <= 1024;
  static thread_local std::vector<i64> link_bytes;
  static thread_local std::vector<i64> touched;
  if (link_bytes.capacity() > kLinkScratchCapEntries && num_links <= kLinkScratchCapEntries) {
    std::vector<i64>().swap(link_bytes);
    std::vector<i64>().swap(touched);
  }
  if (link_bytes.size() < num_links) link_bytes.resize(num_links, 0);
  touched.clear();

  const double inv_reduce_bw = 1.0 / cp.reduce_bandwidth;
  const double inv_mem_bw = 1.0 / cp.mem_bandwidth;
  const double* inv_bw = rc.inv_bandwidth().data();
  const sched::OpKind* kind = cs.kind.data();
  const std::int32_t* rank = cs.rank.data();
  const std::int32_t* peer = cs.peer.data();
  const i64* bytes = cs.bytes.data();
  const std::int32_t* extra_segs = cs.extra_segments.data();

  for (size_t t = 0; t < cs.steps; ++t) {
    double max_rank_overhead = 0;
    double overhead = 0;
    std::int32_t cur_rank = -1;
    for (std::uint32_t i = cs.step_begin[t]; i < cs.step_begin[t + 1]; ++i) {
      if (rank[i] != cur_rank) {  // ops are rank-grouped within a step
        max_rank_overhead = std::max(max_rank_overhead, overhead);
        overhead = 0;
        cur_rank = rank[i];
      }
      const i64 b = bytes[i];
      switch (kind[i]) {
        case sched::OpKind::send: {
          const RouteCache::ClassHops& h = rc.hops(cur_rank, peer[i]);
          accumulate_send(result.traffic, h, b);
          if (dense_links) {
            for (const i64 link : rc.path(cur_rank, peer[i]))
              link_bytes[static_cast<size_t>(link)] += b;
          } else {
            for (const i64 link : rc.path(cur_rank, peer[i])) {
              if (link_bytes[static_cast<size_t>(link)] == 0) touched.push_back(link);
              link_bytes[static_cast<size_t>(link)] += b;
            }
          }
          overhead += (h.global > 0 ? cp.alpha_global : cp.alpha_local) +
                      static_cast<double>(extra_segs[i]) * cp.seg_overhead;
          break;
        }
        case sched::OpKind::recv:
          break;  // latency accounted on the sender side
        case sched::OpKind::recv_reduce:
          overhead += static_cast<double>(b) * inv_reduce_bw;
          break;
        case sched::OpKind::local_perm:
          overhead += static_cast<double>(b) * inv_mem_bw +
                      static_cast<double>(extra_segs[i]) * cp.seg_overhead;
          break;
      }
    }
    max_rank_overhead = std::max(max_rank_overhead, overhead);

    double max_link_time = 0;
    if (dense_links) {
      i64* lb = link_bytes.data();
      double m0 = 0, m1 = 0;
      size_t l = 0;
      for (; l + 1 < num_links; l += 2) {
        m0 = std::max(m0, static_cast<double>(lb[l]) * inv_bw[l]);
        m1 = std::max(m1, static_cast<double>(lb[l + 1]) * inv_bw[l + 1]);
      }
      for (; l < num_links; ++l) m0 = std::max(m0, static_cast<double>(lb[l]) * inv_bw[l]);
      max_link_time = std::max(m0, m1);
      std::fill_n(lb, num_links, i64{0});
    } else {
      for (const i64 link : touched) {
        max_link_time = std::max(max_link_time,
                                 static_cast<double>(link_bytes[static_cast<size_t>(link)]) *
                                     inv_bw[link]);
        link_bytes[static_cast<size_t>(link)] = 0;
      }
      touched.clear();
    }
    result.seconds += max_link_time + max_rank_overhead;
  }
  return result;
}

// --- size-batched compiled engine ----------------------------------------------

namespace {

/// Per-thread scratch arena for simulate_sizes. Sweeps call the batched engine
/// once per (cell, candidate) from long-lived pool threads, so reusing the
/// vectors turns ~15 heap round-trips per call into plain resizes. trim()
/// mirrors the scalar engine's cap so one huge schedule doesn't pin memory.
struct BatchScratch {
  std::vector<i64> full_bytes, base, rem;          // per-size geometry, padded
  std::vector<i64> bytes;                          // bytes[i*P + s], op-major
  std::vector<std::uint32_t> slot_of_link;         // link id -> compact slot
  std::vector<i64> table_links;                    // first-touch link ids
  std::vector<std::uint32_t> order, perm;          // provisional -> sorted slot
  std::vector<double> slot_inv_bw;
  std::vector<std::uint32_t> pair_index;           // rank*p + peer -> pair id
  std::vector<size_t> pair_keys;                   // entries to reset after use
  std::vector<std::uint32_t> pair_route_off, pair_route_len;
  std::vector<RouteCache::ClassHops> pair_hops;
  std::vector<double> pair_alpha;
  std::vector<std::uint32_t> route_off, route_len, route_links;
  std::vector<double> op_const;
  std::vector<RouteCache::ClassHops> hops;
  std::vector<i64> acc;                            // W-wide accumulator tiles
  std::vector<std::uint32_t> touch_epoch, touched;
  std::vector<double> seconds;
  std::vector<i64> local_b, global_b, intra_b;

  void trim() {
    // Release capacity pinned by an earlier outsized schedule once a small
    // call shows the arena no longer needs it. A call that used the space it
    // holds keeps it -- freeing hot scratch would re-fault it next call.
    constexpr size_t kCapBytes = size_t{1} << 23;
    const auto shrink = [](auto& v) {
      if (v.capacity() * sizeof(v[0]) > kCapBytes && v.size() * sizeof(v[0]) <= kCapBytes / 2)
        std::decay_t<decltype(v)>().swap(v);
    };
    shrink(bytes);
    shrink(acc);
    shrink(route_links);
    shrink(slot_of_link);
    shrink(pair_index);
  }
};

/// Everything the streaming pass reads, hoisted so the fixed-width template
/// below stays a pure loop nest.
struct StreamCtx {
  const sched::SizeFreeSchedule* sf;
  const i64* bytes;  ///< op-major rows, stride `stride`, zero in pad lanes
  size_t stride;
  const std::uint32_t* route_off;  ///< per-op segment into route_links
  const std::uint32_t* route_len;
  const std::uint32_t* route_links;
  const double* op_const;
  const RouteCache::ClassHops* hops;
  const double* slot_inv_bw;
  double inv_reduce_bw = 0;
  double inv_mem_bw = 0;
  i64* acc;                   ///< num_slots tiles of W, zeroed by the caller
  std::uint32_t* touch_epoch;  ///< num_slots, reset to kNoSlot by the caller
  /// Epoch of step t is epoch_base + t. simulate_sizes resets touch_epoch
  /// per chunk and leaves this 0; the candidate-batched engine keeps one
  /// running base across every (candidate, chunk) of a cell so the O(slots)
  /// reset happens once per cell, not once per candidate.
  std::uint32_t epoch_base = 0;
  std::vector<std::uint32_t>* touched;
  double* seconds;  ///< outputs, written at [off, off+W)
  i64* local_b;
  i64* global_b;
  i64* intra_b;
};

/// One pass over the op stream for lanes [off, off+W) of the padded size
/// axis. W is a compile-time width so every inner loop is a fixed-size tile
/// the autovectorizer turns into straight vector code; the accumulators live
/// on the stack. Lanes never mix -- each size's FP adds and maxes run in
/// exactly the scalar engine's order, so results stay bitwise identical; the
/// zero pad lanes compute harmless finite garbage that is never read.
template <size_t W>
void stream_ops(const StreamCtx& cx, size_t off) {
  const sched::SizeFreeSchedule& sf = *cx.sf;
  const sched::OpKind* kind = sf.kind.data();
  const std::int32_t* rank = sf.rank.data();
  double sec[W] = {};
  i64 lb[W] = {}, gb[W] = {}, ib2[W] = {};
  for (size_t t = 0; t < sf.steps; ++t) {
    double ov[W] = {}, max_ov[W] = {}, max_link[W] = {};
    cx.touched->clear();
    std::int32_t cur_rank = -1;
    for (std::uint32_t i = sf.step_begin[t]; i < sf.step_begin[t + 1]; ++i) {
      if (rank[i] != cur_rank) {  // ops are rank-grouped within a step
        for (size_t s = 0; s < W; ++s) max_ov[s] = std::max(max_ov[s], ov[s]);
        for (size_t s = 0; s < W; ++s) ov[s] = 0.0;
        cur_rank = rank[i];
      }
      const i64* b = cx.bytes + static_cast<size_t>(i) * cx.stride + off;
      switch (kind[i]) {
        case sched::OpKind::send: {
          const RouteCache::ClassHops& h = cx.hops[i];
          // Skipping a zero-hop class skips i64 adds of zero: exact.
          if (h.local) {
            const i64 m = h.local;
            for (size_t s = 0; s < W; ++s) lb[s] += m * b[s];
          }
          if (h.global) {
            const i64 m = h.global;
            for (size_t s = 0; s < W; ++s) gb[s] += m * b[s];
          }
          if (h.intra_node) {
            const i64 m = h.intra_node;
            for (size_t s = 0; s < W; ++s) ib2[s] += m * b[s];
          }
          const std::uint32_t ru0 = cx.route_off[i];
          const std::uint32_t epoch = cx.epoch_base + static_cast<std::uint32_t>(t);
          for (std::uint32_t u = ru0; u < ru0 + cx.route_len[i]; ++u) {
            const std::uint32_t slot = cx.route_links[u];
            if (cx.touch_epoch[slot] != epoch) {
              cx.touch_epoch[slot] = epoch;
              cx.touched->push_back(slot);
            }
            i64* a = cx.acc + static_cast<size_t>(slot) * W;
            for (size_t s = 0; s < W; ++s) a[s] += b[s];
          }
          const double c = cx.op_const[i];
          for (size_t s = 0; s < W; ++s) ov[s] += c;
          break;
        }
        case sched::OpKind::recv:
          break;  // latency accounted on the sender side
        case sched::OpKind::recv_reduce:
          for (size_t s = 0; s < W; ++s)
            ov[s] += static_cast<double>(b[s]) * cx.inv_reduce_bw;
          break;
        case sched::OpKind::local_perm: {
          const double c = cx.op_const[i];
          for (size_t s = 0; s < W; ++s)
            ov[s] += static_cast<double>(b[s]) * cx.inv_mem_bw + c;
          break;
        }
      }
    }
    for (size_t s = 0; s < W; ++s) max_ov[s] = std::max(max_ov[s], ov[s]);

    // Strided max-reduce: each touched slot's tile is contiguous in s, so the
    // scan is W-wide vector max ops. Loads are non-negative finite, so any
    // reduction order yields the scalar engine's max bitwise.
    for (const std::uint32_t slot : *cx.touched) {
      const double ib = cx.slot_inv_bw[slot];
      i64* a = cx.acc + static_cast<size_t>(slot) * W;
      for (size_t s = 0; s < W; ++s)
        max_link[s] = std::max(max_link[s], static_cast<double>(a[s]) * ib);
      for (size_t s = 0; s < W; ++s) a[s] = 0;
    }
    for (size_t s = 0; s < W; ++s) sec[s] += max_link[s] + max_ov[s];
  }
  for (size_t s = 0; s < W; ++s) cx.seconds[off + s] = sec[s];
  for (size_t s = 0; s < W; ++s) cx.local_b[off + s] = lb[s];
  for (size_t s = 0; s < W; ++s) cx.global_b[off + s] = gb[s];
  for (size_t s = 0; s < W; ++s) cx.intra_b[off + s] = ib2[s];
}

/// Wire-byte rows bytes[i*P + s], materialized once per cell.
/// ranges_elem_count(rs, n, B) decomposes exactly as C*(n/B) + R(n%B): C is
/// the total covered block count and R(rem) sums, over the *unwrapped*
/// sub-runs [lo, hi) each range splits into, the ids below rem:
/// max(0, min(hi, rem) - lo). All-i64, so each row holds precisely what
/// resolve_into would bake per size; pad lanes (base = rem = 0) come out 0.
/// One walk over the ranges builds the row in place in W-wide tiles -- the
/// sub-runs are never materialized.
template <size_t W>
void build_byte_rows(const sched::SizeFreeSchedule& sf, i64 elem_size,
                     const i64* full_bytes, const i64* base, const i64* rem, size_t P,
                     i64* bytes) {
  const i64 B = sf.nblocks;
  const size_t nops = sf.num_ops();
  const sched::OpKind* kind = sf.kind.data();
  for (size_t i = 0; i < nops; ++i) {
    // Plain recvs never read their row (latency is the sender's): skip the
    // materialization and leave whatever is there -- it is dead scratch.
    if (kind[i] == sched::OpKind::recv) continue;
    i64* row = bytes + i * P;
    if (sf.full_vector[i]) {
      std::copy(full_bytes, full_bytes + P, row);
      continue;
    }
    i64 c = 0;
    for (std::uint32_t r = sf.block_begin[i]; r < sf.block_begin[i + 1]; ++r)
      c += sf.ranges[r].count;
    for (size_t k = 0; k < P; k += W) {
      i64* rw = row + k;
      const i64* rm = rem + k;
      for (size_t s = 0; s < W; ++s) rw[s] = c * base[k + s];
      for (std::uint32_t r = sf.block_begin[i]; r < sf.block_begin[i + 1]; ++r) {
        const sched::BlockRange& br = sf.ranges[r];
        const i64 head = std::min(br.count, B - br.begin);
        const i64 lo = br.begin, hi = br.begin + head;
        for (size_t s = 0; s < W; ++s)
          rw[s] += std::max<i64>(0, std::min(hi, rm[s]) - lo);
        const i64 tail = br.count - head;  // wrapped part, restarting at block 0
        if (tail > 0)
          for (size_t s = 0; s < W; ++s) rw[s] += std::min(tail, rm[s]);
      }
      for (size_t s = 0; s < W; ++s) rw[s] *= elem_size;
    }
  }
}

}  // namespace

std::vector<SimResult> simulate_sizes(const sched::SizeFreeSchedule& sf,
                                      std::span<const i64> elem_counts, i64 elem_size,
                                      const RouteCache& rc, const CostParams& cp) {
  assert(sf.size_independent && "demoted entries must fall back to fresh generation");
  assert(sf.p == rc.num_ranks());
  const size_t S = elem_counts.size();
  std::vector<SimResult> results(S);
  if (S == 0) return results;

  const size_t nops = sf.num_ops();
  const i64 B = sf.nblocks;
  const sched::OpKind* kind = sf.kind.data();
  const std::int32_t* rank = sf.rank.data();
  const std::int32_t* peer = sf.peer.data();
  const std::int32_t* extra_segs = sf.extra_segments.data();

  static thread_local BatchScratch sc;

  // Pad the size axis to a fixed lane width so every inner loop below is a
  // compile-time-size tile. Pad lanes carry zero geometry: their bytes rows
  // are zero and their outputs are discarded.
  const size_t W = S <= 2 ? 2 : S <= 4 ? 4 : 8;
  const size_t P = (S + W - 1) / W * W;

  // Per-size vector geometry (the arithmetic resolve_into runs per entry).
  sc.full_bytes.assign(P, 0);
  sc.base.assign(P, 0);
  sc.rem.assign(P, 0);
  for (size_t s = 0; s < S; ++s) {
    const i64 n = sf.space == sched::BlockSpace::pairwise ? elem_counts[s] * sf.p
                                                          : elem_counts[s];
    sc.full_bytes[s] = n * elem_size;
    sc.base[s] = n / B;
    sc.rem[s] = n % B;
  }

  sc.bytes.resize(nops * P);
  switch (W) {
    case 2:
      build_byte_rows<2>(sf, elem_size, sc.full_bytes.data(), sc.base.data(),
                         sc.rem.data(), P, sc.bytes.data());
      break;
    case 4:
      build_byte_rows<4>(sf, elem_size, sc.full_bytes.data(), sc.base.data(),
                         sc.rem.data(), P, sc.bytes.data());
      break;
    default:
      build_byte_rows<8>(sf, elem_size, sc.full_bytes.data(), sc.base.data(),
                         sc.rem.data(), P, sc.bytes.data());
      break;
  }

  // --- compact link table + flattened per-send route CSR --------------------
  // Routes are memoized per ordered (rank, peer) pair: a schedule touches
  // O(p log p) pairs but repeats each across many steps (ring repeats its p
  // neighbor pairs p-1 times), so the path walk, compact-slot assignment, and
  // hop/alpha lookups run once per pair. Each send then just references its
  // pair's slot segment -- the shared segments also keep the streaming pass's
  // route reads small and cache-hot. Slots are assigned in first-touch order
  // and re-sorted below. The overhead constants reproduce the scalar engine's
  // expressions term for term so the FP accumulation matches it bitwise.
  constexpr std::uint32_t kNoSlot = 0xffffffffu;
  sc.slot_of_link.assign(static_cast<size_t>(rc.num_links()), kNoSlot);
  sc.table_links.clear();
  // pair_index is kept all-kNoSlot between calls (touched entries are reset
  // after the pass below), so reuse skips the O(p^2) clear.
  const size_t np = static_cast<size_t>(sf.p);
  if (sc.pair_index.size() < np * np) sc.pair_index.assign(np * np, kNoSlot);
  sc.pair_keys.clear();
  sc.pair_route_off.clear();
  sc.pair_route_len.clear();
  sc.pair_hops.clear();
  sc.pair_alpha.clear();
  sc.route_off.resize(nops);   // only sends are read; stale elsewhere is fine
  sc.route_len.resize(nops);
  sc.route_links.clear();
  sc.op_const.resize(nops);    // send alpha+segments / perm segments
  sc.hops.resize(nops);
  i64 messages = 0;  // = send count: size-independent, so counted here once
  for (size_t i = 0; i < nops; ++i) {
    switch (kind[i]) {
      case sched::OpKind::send: {
        ++messages;
        const size_t key = static_cast<size_t>(rank[i]) * np + static_cast<size_t>(peer[i]);
        std::uint32_t& pid = sc.pair_index[key];
        if (pid == kNoSlot) {
          pid = static_cast<std::uint32_t>(sc.pair_route_off.size());
          sc.pair_keys.push_back(key);
          const std::span<const i64> path = rc.path(rank[i], peer[i]);
          sc.pair_route_off.push_back(static_cast<std::uint32_t>(sc.route_links.size()));
          sc.pair_route_len.push_back(static_cast<std::uint32_t>(path.size()));
          for (const i64 link : path) {
            std::uint32_t& slot = sc.slot_of_link[static_cast<size_t>(link)];
            if (slot == kNoSlot) {
              slot = static_cast<std::uint32_t>(sc.table_links.size());
              sc.table_links.push_back(link);
            }
            sc.route_links.push_back(slot);
          }
          const RouteCache::ClassHops& h = rc.hops(rank[i], peer[i]);
          sc.pair_hops.push_back(h);
          sc.pair_alpha.push_back(h.global > 0 ? cp.alpha_global : cp.alpha_local);
        }
        sc.route_off[i] = sc.pair_route_off[pid];
        sc.route_len[i] = sc.pair_route_len[pid];
        sc.hops[i] = sc.pair_hops[pid];
        sc.op_const[i] = sc.pair_alpha[pid] +
                         static_cast<double>(extra_segs[i]) * cp.seg_overhead;
        break;
      }
      case sched::OpKind::local_perm:
        sc.op_const[i] = static_cast<double>(extra_segs[i]) * cp.seg_overhead;
        break;
      default:
        break;
    }
  }
  // Restore the all-kNoSlot invariant for the next call on this thread.
  for (const size_t key : sc.pair_keys) sc.pair_index[key] = kNoSlot;

  // Re-sort the slots by (LinkClass, id): the class partition keeps
  // fault-degradation rescaling a contiguous column multiply per class (rc's
  // inverse bandwidths already carry the degradation -- harness::Runner
  // degrades the route cache exactly once at build). Only the CSR entries
  // need remapping, one contiguous pass.
  const size_t num_slots = sc.table_links.size();
  const std::span<const LinkClass> link_class = rc.link_class();
  sc.order.resize(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot)
    sc.order[slot] = static_cast<std::uint32_t>(slot);
  std::sort(sc.order.begin(), sc.order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const i64 la = sc.table_links[a], lb = sc.table_links[b];
    const LinkClass ca = link_class[static_cast<size_t>(la)];
    const LinkClass cb = link_class[static_cast<size_t>(lb)];
    if (ca != cb) return ca < cb;
    return la < lb;
  });
  sc.perm.resize(num_slots);
  sc.slot_inv_bw.resize(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot) {
    sc.perm[sc.order[slot]] = static_cast<std::uint32_t>(slot);
    sc.slot_inv_bw[slot] =
        rc.inv_bandwidth()[static_cast<size_t>(sc.table_links[sc.order[slot]])];
  }
  for (std::uint32_t& slot : sc.route_links) slot = sc.perm[slot];

  // --- op-stream passes, size axis innermost in W-wide lanes ----------------
  sc.touched.clear();
  sc.touched.reserve(num_slots);
  sc.seconds.resize(P);
  sc.local_b.resize(P);
  sc.global_b.resize(P);
  sc.intra_b.resize(P);
  StreamCtx cx;
  cx.sf = &sf;
  cx.bytes = sc.bytes.data();
  cx.stride = P;
  cx.route_off = sc.route_off.data();
  cx.route_len = sc.route_len.data();
  cx.route_links = sc.route_links.data();
  cx.op_const = sc.op_const.data();
  cx.hops = sc.hops.data();
  cx.slot_inv_bw = sc.slot_inv_bw.data();
  cx.inv_reduce_bw = 1.0 / cp.reduce_bandwidth;
  cx.inv_mem_bw = 1.0 / cp.mem_bandwidth;
  cx.touched = &sc.touched;
  cx.seconds = sc.seconds.data();
  cx.local_b = sc.local_b.data();
  cx.global_b = sc.global_b.data();
  cx.intra_b = sc.intra_b.data();
  const auto run_chunks = [&](auto width) {
    constexpr size_t kW = decltype(width)::value;
    for (size_t off = 0; off < P; off += kW) {
      sc.acc.assign(num_slots * kW, 0);  // accumulator tiles, one per slot
      sc.touch_epoch.assign(num_slots, kNoSlot);
      cx.acc = sc.acc.data();
      cx.touch_epoch = sc.touch_epoch.data();
      stream_ops<kW>(cx, off);
    }
  };
  switch (W) {
    case 2: run_chunks(std::integral_constant<size_t, 2>{}); break;
    case 4: run_chunks(std::integral_constant<size_t, 4>{}); break;
    default: run_chunks(std::integral_constant<size_t, 8>{}); break;
  }

  for (size_t s = 0; s < S; ++s) {
    results[s].seconds = sc.seconds[s];
    results[s].steps = sf.steps;
    results[s].traffic = {sc.local_b[s], sc.global_b[s], sc.intra_b[s], messages};
  }
  sc.trim();
  return results;
}

// --- candidate-batched compiled engine ------------------------------------------

namespace {

/// Per-thread scratch for simulate_candidates, separate from BatchScratch so
/// the candidate path never evicts the per-schedule path's warm arenas (the
/// fallback mixes both in one sweep). Same capacity-cap discipline.
/// One pre-decoded op of the fused candidate stream, emitted by the union
/// pass. recv ops are dropped at emission (they carry no cost -- a rank
/// group of only recvs folds a harmless max(max_ov, 0)), the rank-group
/// boundary is a precomputed flag, and kind/full-vector/range-span/extra
/// live in one sequential array, so the stream loads one struct instead of
/// six scattered per-op columns and never branches on recvs.
struct COp {
  std::uint32_t flags;         // kind (2 bits) | boundary
  std::uint32_t aux;           // send: candidate-local pair id
  std::uint32_t row;           // candidate-local byte-row id
  std::int32_t extra;          // extra_segments[i]
};
constexpr std::uint32_t kCOpKind = 3u;      // send=0, recv_reduce=1, local_perm=2
constexpr std::uint32_t kCOpBoundary = 4u;  // first op of a rank group

/// One distinct byte row of a candidate: the content class of an op's block
/// ranges. Schedules are SPMD-symmetric -- across ranks and steps the same
/// few block shapes recur (a ring's p^2-ish sends carry only ~p distinct
/// single-block shapes) -- so resolving bytes per distinct row instead of
/// per op collapses the dominant per-op work of the stream.
struct RowSpec {
  std::uint32_t kind;          // kRowFull / kRowSingle / kRowSpan
  std::uint32_t rbegin, rend;  // single: {begin, count}; span: range span
};
constexpr std::uint32_t kRowFull = 0;    // full-vector row
constexpr std::uint32_t kRowSingle = 1;  // one range, inlined (32-bit fields)
constexpr std::uint32_t kRowSpan = 2;    // walk sf.ranges[rbegin, rend)

struct CandScratch {
  std::vector<i64> full_bytes, base, rem;  // per-size geometry, padded
  std::vector<std::uint32_t> pair_index;   // rank*p + peer -> union pair id
  std::vector<size_t> pair_keys;           // union pairs, first-touch order
  std::vector<i64> rowvals;                // evaluated rows, current candidate
  PairRouteMemo::Rows rows;                // resolved rows, scope-slot ids
  std::vector<std::uint32_t> slot_of_link; // memo-less direct resolution only
  std::vector<std::uint32_t> slot_map;     // scope slot -> provisional local slot
  std::vector<std::uint32_t> scope_used;   // distinct scope slots, first-touch
  std::vector<i64> table_links;            // per provisional local slot
  std::vector<std::uint32_t> order, perm;  // provisional -> class-sorted slot
  std::vector<double> slot_inv_bw;
  std::vector<std::uint32_t> pair_slots;   // union-pair CSR in sorted local slots
  std::vector<double> pair_alpha;
  std::vector<RouteCache::ClassHops> pair_hops;
  std::vector<std::uint32_t> cand_pids;    // per candidate: its union pids, flat
  std::vector<std::uint32_t> cslot_of;     // union local slot -> candidate slot
  std::vector<std::uint32_t> cslot_ids;    // candidate slots, first-touch order
  std::vector<std::uint32_t> cpair_route_off, cpair_route_len;
  std::vector<double> cpair_alpha;
  std::vector<RouteCache::ClassHops> cpair_hops;
  std::vector<std::uint32_t> croute_slots; // candidate pair CSR, candidate slots
  std::vector<double> ib_c;                // per candidate slot, 1/bandwidth
  std::vector<i64> acc;
  std::vector<double> seconds;
  std::vector<i64> local_b, global_b, intra_b;

  void trim() {
    constexpr size_t kCapBytes = size_t{1} << 23;
    const auto shrink = [](auto& v) {
      if (v.capacity() * sizeof(v[0]) > kCapBytes && v.size() * sizeof(v[0]) <= kCapBytes / 2)
        std::decay_t<decltype(v)>().swap(v);
    };
    shrink(rowvals);
    shrink(acc);
    shrink(pair_slots);
    shrink(croute_slots);
    shrink(cand_pids);
    shrink(pair_index);
    shrink(slot_map);
    shrink(slot_of_link);
    shrink(rows.route_slots);
    shrink(rows.slot_link);
  }

  [[nodiscard]] size_t resident_bytes() const {
    const auto cap = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
    return cap(full_bytes) + cap(base) + cap(rem) + cap(pair_index) +
           cap(pair_keys) + cap(rowvals) + cap(rows.route_off) +
           cap(rows.route_len) + cap(rows.route_slots) + cap(rows.hops) +
           cap(rows.crosses_global) + cap(rows.slot_link) + cap(slot_of_link) +
           cap(slot_map) + cap(scope_used) + cap(table_links) + cap(order) +
           cap(perm) + cap(slot_inv_bw) + cap(pair_slots) + cap(pair_alpha) +
           cap(pair_hops) + cap(cand_pids) + cap(cslot_of) +
           cap(cslot_ids) + cap(cpair_route_off) + cap(cpair_route_len) +
           cap(cpair_alpha) + cap(cpair_hops) + cap(croute_slots) + cap(ib_c) +
           cap(acc) + cap(seconds) + cap(local_b) + cap(global_b) + cap(intra_b);
  }
};

/// Inputs of the fused candidate stream: pair-level route/latency tables
/// shared by the whole pool, plus the per-candidate byte geometry. Unlike
/// StreamCtx there is no op-major bytes array and no per-op route table --
/// ops reach the pair rows through pid_of_op and resolve their wire bytes
/// from the block ranges as they stream.
struct CandStreamCtx {
  const sched::SizeFreeSchedule* sf;
  const COp* cops;                     ///< this candidate's compacted ops
  const std::uint32_t* cstep;          ///< steps+1 offsets into cops
  const RowSpec* rowspec;              ///< this candidate's distinct byte rows
  std::uint32_t nrows = 0;
  i64* rows;                           ///< evaluated rows, nrows tiles of W
  const std::uint32_t* pair_route_off; ///< per local pair, into route_slots
  const std::uint32_t* pair_route_len;
  const std::uint32_t* route_slots;    ///< candidate pair CSR, candidate slots
  const double* pair_alpha;            ///< per candidate-local pair
  const RouteCache::ClassHops* pair_hops;
  size_t num_slots = 0;                ///< candidate slots (ever touched)
  const double* slot_inv_bw;           ///< per candidate slot
  const i64* full_bytes;  ///< per-size geometry, padded to the window grid
  const i64* base;
  const i64* rem;
  i64 elem_size = 0;
  double seg_overhead = 0;
  double inv_reduce_bw = 0;
  double inv_mem_bw = 0;
  i64* acc;               ///< num_slots tiles of W, zeroed by the caller
  double* seconds;        ///< outputs, written at [off, off+W)
  i64* local_b;
  i64* global_b;
  i64* intra_b;
};

/// Fused per-candidate pass for the W size lanes at window offset `off`:
/// one walk over the op stream does byte resolution, latency constants, link
/// accumulation and the per-step reductions together, with every per-lane
/// accumulator in a fixed-size stack tile the autovectorizer turns into
/// straight vector code. Versus materialize-then-stream this removes the
/// op-major bytes array round-trip (written and re-read once per candidate
/// -- pure memory traffic that dominates large schedules) and the per-op
/// route/const tables; and because W covers the whole practical size axis
/// (up to 32 lanes per window, vs 8 in stream_ops), the op arrays, block
/// ranges, route CSR and epoch bookkeeping are touched once per op where
/// the per-candidate loop re-walks them chunk after chunk. The arithmetic
/// itself is unchanged: byte rows are the exact i64 expressions
/// build_byte_rows evaluates (same per-lane sequence), the op constant is
/// the same double expression the table pass precomputed, and each lane's
/// FP accumulation order is exactly stream_ops' order -- lanes never mix --
/// so results stay bitwise identical to simulate_sizes.
template <size_t W>
void stream_candidate(const CandStreamCtx& cx, size_t off) {
  const sched::SizeFreeSchedule& sf = *cx.sf;
  const sched::BlockRange* ranges = sf.ranges.data();
  const i64 B = sf.nblocks;
  const i64* full_bytes = cx.full_bytes + off;
  const i64* base = cx.base + off;
  const i64* rem = cx.rem + off;
  const i64 elem_size = cx.elem_size;
  // Hoist every context field into a local: accumulator stores through acc
  // would otherwise force the compiler to re-load same-typed context members
  // (they could alias an i64 behind the struct) on every op.
  const COp* const cops = cx.cops;
  const std::uint32_t* const cstep = cx.cstep;
  const std::uint32_t* const pair_route_off = cx.pair_route_off;
  const std::uint32_t* const pair_route_len = cx.pair_route_len;
  const std::uint32_t* const route_slots = cx.route_slots;
  const double* const pair_alpha = cx.pair_alpha;
  const RouteCache::ClassHops* const pair_hops = cx.pair_hops;
  const size_t num_slots = cx.num_slots;
  const double* const slot_inv_bw = cx.slot_inv_bw;
  const double seg_overhead = cx.seg_overhead;
  const double inv_reduce_bw = cx.inv_reduce_bw;
  const double inv_mem_bw = cx.inv_mem_bw;
  i64* const acc = cx.acc;
  // Wire bytes of a compacted op for this window, in build_byte_rows' exact
  // i64 sequence: C*(n/B) plus the unwrapped sub-run clamps, then *elem_size.
  const auto eval_row = [&](const RowSpec& o, i64* b) {
    if (o.kind == kRowFull) {
      for (size_t s = 0; s < W; ++s) b[s] = full_bytes[s];
      return;
    }
    if (o.kind == kRowSingle) {  // range inlined in the spec: no arena loads
      const i64 lo = o.rbegin, cnt = o.rend;
      const i64 head = std::min(cnt, B - lo);
      const i64 hi = lo + head;
      const i64 tail = cnt - head;  // wrapped part, restarting at block 0
      for (size_t s = 0; s < W; ++s)
        b[s] = cnt * base[s] + std::max<i64>(0, std::min(hi, rem[s]) - lo);
      if (tail > 0)
        for (size_t s = 0; s < W; ++s) b[s] += std::min(tail, rem[s]);
      for (size_t s = 0; s < W; ++s) b[s] *= elem_size;
      return;
    }
    // Range span: one fused walk accumulates the count total and the clamp
    // terms together (i64 addition reassociates exactly, so folding
    // build_byte_rows' two passes into one cannot change the row).
    i64 c = 0;
    i64 cl[W] = {};
    for (std::uint32_t r = o.rbegin; r < o.rend; ++r) {
      const sched::BlockRange& br = ranges[r];
      c += br.count;
      const i64 head = std::min(br.count, B - br.begin);
      const i64 lo = br.begin, hi = br.begin + head;
      for (size_t s = 0; s < W; ++s)
        cl[s] += std::max<i64>(0, std::min(hi, rem[s]) - lo);
      const i64 tail = br.count - head;  // wrapped part, restarting at block 0
      if (tail > 0)
        for (size_t s = 0; s < W; ++s) cl[s] += std::min(tail, rem[s]);
    }
    for (size_t s = 0; s < W; ++s) b[s] = (c * base[s] + cl[s]) * elem_size;
  };

  // Evaluate the candidate's distinct byte rows for this window: the only
  // place the block ranges are touched. Everything after streams row loads.
  i64* const rows = cx.rows;
  for (std::uint32_t r = 0; r < cx.nrows; ++r)
    eval_row(cx.rowspec[r], rows + static_cast<size_t>(r) * W);

  double sec[W] = {};
  i64 lb[W] = {}, gb[W] = {}, ib2[W] = {};
  for (size_t t = 0; t < sf.steps; ++t) {
    double ov[W] = {}, max_ov[W] = {}, max_link[W] = {};
    for (std::uint32_t j = cstep[t]; j < cstep[t + 1]; ++j) {
      const COp& o = cops[j];
      if (o.flags & kCOpBoundary) {  // first op of a rank group: flush
        for (size_t s = 0; s < W; ++s) max_ov[s] = std::max(max_ov[s], ov[s]);
        for (size_t s = 0; s < W; ++s) ov[s] = 0.0;
      }
      const i64* b = rows + static_cast<size_t>(o.row) * W;
      switch (o.flags & kCOpKind) {
        case 0: {  // send
          const std::uint32_t pid = o.aux;
          const RouteCache::ClassHops& h = pair_hops[pid];
          // Skipping a zero-hop class skips i64 adds of zero: exact.
          if (h.local) {
            const i64 m = h.local;
            for (size_t s = 0; s < W; ++s) lb[s] += m * b[s];
          }
          if (h.global) {
            const i64 m = h.global;
            for (size_t s = 0; s < W; ++s) gb[s] += m * b[s];
          }
          if (h.intra_node) {
            const i64 m = h.intra_node;
            for (size_t s = 0; s < W; ++s) ib2[s] += m * b[s];
          }
          const std::uint32_t ru0 = pair_route_off[pid];
          for (std::uint32_t u = ru0; u < ru0 + pair_route_len[pid]; ++u) {
            const std::uint32_t slot = route_slots[u];
            i64* a = acc + static_cast<size_t>(slot) * W;
            for (size_t s = 0; s < W; ++s) a[s] += b[s];
          }
          const double c = pair_alpha[pid] +
                           static_cast<double>(o.extra) * seg_overhead;
          for (size_t s = 0; s < W; ++s) ov[s] += c;
          break;
        }
        case 1:  // recv_reduce
          for (size_t s = 0; s < W; ++s)
            ov[s] += static_cast<double>(b[s]) * inv_reduce_bw;
          break;
        default: {  // local_perm
const double c = static_cast<double>(o.extra) * seg_overhead;
          for (size_t s = 0; s < W; ++s)
            ov[s] += static_cast<double>(b[s]) * inv_mem_bw + c;
          break;
        }
      }
    }
    for (size_t s = 0; s < W; ++s) max_ov[s] = std::max(max_ov[s], ov[s]);

    // Dense max-reduce over the candidate's slot table: every slot this
    // candidate ever sends through is scanned each step, sequentially and
    // branch-free. That removes the per-visit touch bookkeeping from the
    // send loop above and the gather through a touched list here. A slot
    // idle this step holds 0, contributing +0.0 to a max over non-negative
    // finite terms -- bitwise the same result as the oracle's touched-only
    // reduce (the scalar engine's dense-links path rests on the same
    // argument). The clear restores the tiles to zero for the next step.
    for (size_t slot = 0; slot < num_slots; ++slot) {
      const double ib = slot_inv_bw[slot];
      i64* a = acc + slot * W;
      for (size_t s = 0; s < W; ++s)
        max_link[s] = std::max(max_link[s], static_cast<double>(a[s]) * ib);
      for (size_t s = 0; s < W; ++s) a[s] = 0;
    }
    for (size_t s = 0; s < W; ++s) sec[s] += max_link[s] + max_ov[s];
  }
  for (size_t s = 0; s < W; ++s) cx.seconds[off + s] = sec[s];
  for (size_t s = 0; s < W; ++s) cx.local_b[off + s] = lb[s];
  for (size_t s = 0; s < W; ++s) cx.global_b[off + s] = gb[s];
  for (size_t s = 0; s < W; ++s) cx.intra_b[off + s] = ib2[s];
}

CandScratch& thread_cand_scratch() {
  static thread_local CandScratch sc;
  return sc;
}

/// Memo-less Rows construction: the exact layout PairRouteMemo::resolve
/// copies out, built directly from `rc` with a private first-touch slot
/// table. Keeps simulate_candidates self-contained when no memo is given
/// (and gives the parity suite a memo-independent batched engine).
void resolve_pairs_direct(const RouteCache& rc, std::span<const size_t> pair_keys,
                          std::vector<std::uint32_t>& slot_of_link,
                          PairRouteMemo::Rows& out) {
  constexpr std::uint32_t kNoSlot = 0xffffffffu;
  const size_t np = static_cast<size_t>(rc.num_ranks());
  const size_t n = pair_keys.size();
  out.route_off.resize(n);
  out.route_len.resize(n);
  out.hops.resize(n);
  out.crosses_global.resize(n);
  out.route_slots.clear();
  out.slot_link.clear();
  slot_of_link.assign(static_cast<size_t>(rc.num_links()), kNoSlot);
  for (size_t i = 0; i < n; ++i) {
    const Rank src = static_cast<Rank>(pair_keys[i] / np);
    const Rank dst = static_cast<Rank>(pair_keys[i] % np);
    const std::span<const i64> path = rc.path(src, dst);
    out.route_off[i] = static_cast<std::uint32_t>(out.route_slots.size());
    out.route_len[i] = static_cast<std::uint32_t>(path.size());
    for (const i64 link : path) {
      std::uint32_t& slot = slot_of_link[static_cast<size_t>(link)];
      if (slot == kNoSlot) {
        slot = static_cast<std::uint32_t>(out.slot_link.size());
        out.slot_link.push_back(link);
      }
      out.route_slots.push_back(slot);
    }
    const RouteCache::ClassHops& h = rc.hops(src, dst);
    out.hops[i] = h;
    out.crosses_global[i] = h.global > 0 ? 1 : 0;
  }
}

/// Size- and profile-independent compile of one schedule for the candidate
/// stream: the compact op arena, the interned distinct byte rows, and a
/// dense schedule-local pair numbering (pair_keys maps local pid back to
/// rank*p + peer for the caller's union/route resolution). Everything here
/// is a pure function of the schedule structure -- no topology, placement,
/// size or cost parameter enters -- so it is built once per cached schedule
/// and memoized on the entry's derived slot (the simulator analogue of
/// runtime::ExecSkeleton::of). Without this, the per-op walk with content
/// hashing re-runs on every simulate_candidates call and dominates pools
/// whose size axis fits one window.
struct CandCompiled {
  std::vector<COp> cops;
  std::vector<std::uint32_t> cstep;  ///< steps+1 op offsets
  std::vector<RowSpec> rowspec;      ///< distinct byte rows, dedup'd by content
  std::vector<size_t> pair_keys;     ///< local pid -> rank*p + peer, first touch
  i64 messages = 0;
};

std::shared_ptr<const CandCompiled> compiled_for(const sched::SizeFreeSchedule& sf) {
  sched::SizeFreeSchedule::DerivedSlot& slot = *sf.sim_derived;
  const std::scoped_lock lock(slot.mutex);
  if (slot.value) return std::static_pointer_cast<const CandCompiled>(slot.value);

  constexpr std::uint32_t kNoPair = 0xffffffffu;
  auto cc = std::make_shared<CandCompiled>();
  const size_t np = static_cast<size_t>(sf.p);
  std::vector<std::uint32_t> pair_of(np * np, kNoPair);
  // Byte-row dedup: an open-addressing table over content hashes. Schedules
  // are SPMD-symmetric -- across ranks and steps the same few block shapes
  // recur -- so the distinct-row count is orders of magnitude below the op
  // count, and the stream resolves bytes once per row instead of per op.
  std::vector<std::uint64_t> row_hash;
  std::vector<std::uint32_t> row_map(2048, 0);
  size_t row_cap = row_map.size();
  const auto reseed = [&]() {
    std::fill(row_map.begin(), row_map.end(), 0u);
    const size_t mask = row_cap - 1;
    for (size_t r = 0; r < row_hash.size(); ++r) {
      size_t idx = static_cast<size_t>(row_hash[r]) & mask;
      while (row_map[idx] != 0) idx = (idx + 1) & mask;
      row_map[idx] = static_cast<std::uint32_t>(r) + 1;
    }
  };
  const auto intern_row = [&](const RowSpec& spec, std::uint64_t h) {
    const size_t mask = row_cap - 1;
    size_t idx = static_cast<size_t>(h) & mask;
    while (row_map[idx] != 0) {
      const size_t r = row_map[idx] - 1;
      if (row_hash[r] == h) {
        const RowSpec& have = cc->rowspec[r];
        const bool eq =
            have.kind == spec.kind &&
            (spec.kind == kRowFull ||
             (spec.kind == kRowSingle
                  ? have.rbegin == spec.rbegin && have.rend == spec.rend
                  : have.rend - have.rbegin == spec.rend - spec.rbegin &&
                        std::equal(sf.ranges.data() + have.rbegin,
                                   sf.ranges.data() + have.rend,
                                   sf.ranges.data() + spec.rbegin)));
        if (eq) return static_cast<std::uint32_t>(r);
      }
      idx = (idx + 1) & mask;
    }
    row_map[idx] = static_cast<std::uint32_t>(cc->rowspec.size()) + 1;
    cc->rowspec.push_back(spec);
    row_hash.push_back(h);
    const std::uint32_t rid = static_cast<std::uint32_t>(cc->rowspec.size() - 1);
    if (cc->rowspec.size() * 2 > row_cap) {
      row_cap *= 4;
      row_map.assign(row_cap, 0);
      reseed();
    }
    return rid;
  };

  cc->cops.reserve(sf.num_ops());
  for (size_t t = 0; t < sf.steps; ++t) {
    cc->cstep.push_back(static_cast<std::uint32_t>(cc->cops.size()));
    std::int32_t last_rank = -1;  // ranks are non-negative
    for (std::uint32_t i = sf.step_begin[t]; i < sf.step_begin[t + 1]; ++i) {
      if (sf.kind[i] == sched::OpKind::recv) continue;
      COp o;
      o.flags = sf.rank[i] != last_rank ? kCOpBoundary : 0u;
      last_rank = sf.rank[i];
      o.aux = 0;
      switch (sf.kind[i]) {
        case sched::OpKind::send: {
          ++cc->messages;
          const size_t key = static_cast<size_t>(sf.rank[i]) * np +
                             static_cast<size_t>(sf.peer[i]);
          std::uint32_t& pid = pair_of[key];
          if (pid == kNoPair) {
            pid = static_cast<std::uint32_t>(cc->pair_keys.size());
            cc->pair_keys.push_back(key);
          }
          o.aux = pid;
          break;
        }
        case sched::OpKind::recv_reduce:
          o.flags |= 1u;
          break;
        case sched::OpKind::local_perm:
          o.flags |= 2u;
          break;
        default:
          break;
      }
      // Intern this op's byte-row content. A mixing hash over the range
      // content (or a tag for full-vector rows) keys the table; single
      // 32-bit-representable ranges are inlined in the spec so their rows
      // evaluate without touching the ranges arena.
      RowSpec spec;
      std::uint64_t h;
      const std::uint32_t r0 = sf.block_begin[i], r1 = sf.block_begin[i + 1];
      if (sf.full_vector[i]) {
        spec = {kRowFull, 0, 0};
        h = 0x9e3779b97f4a7c15ull;
      } else if (r1 == r0 + 1 && sf.ranges[r0].begin >= 0 &&
                 sf.ranges[r0].begin <= 0xffffffffll && sf.ranges[r0].count >= 0 &&
                 sf.ranges[r0].count <= 0xffffffffll) {
        spec = {kRowSingle, static_cast<std::uint32_t>(sf.ranges[r0].begin),
                static_cast<std::uint32_t>(sf.ranges[r0].count)};
        h = (static_cast<std::uint64_t>(spec.rbegin) << 32) | spec.rend;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
      } else {
        spec = {kRowSpan, r0, r1};
        h = 14695981039346656037ull;
        for (std::uint32_t r = r0; r < r1; ++r) {
          h = (h ^ static_cast<std::uint64_t>(sf.ranges[r].begin)) *
              1099511628211ull;
          h = (h ^ static_cast<std::uint64_t>(sf.ranges[r].count)) *
              1099511628211ull;
        }
      }
      o.row = intern_row(spec, h);
      o.extra = sf.extra_segments[i];
      cc->cops.push_back(o);
    }
  }
  cc->cstep.push_back(static_cast<std::uint32_t>(cc->cops.size()));
  slot.value = cc;
  return cc;
}

}  // namespace

std::vector<std::vector<SimResult>> simulate_candidates(
    std::span<const sched::SizeFreeSchedule* const> candidates,
    std::span<const i64> elem_counts, i64 elem_size, const RouteCache& rc,
    const CostParams& cp, PairRouteMemo* memo) {
  const size_t C = candidates.size();
  const size_t S = elem_counts.size();
  std::vector<std::vector<SimResult>> results(C);
  size_t live = 0;
  for (const sched::SizeFreeSchedule* sf : candidates) {
    if (sf == nullptr) continue;
    assert(sf->size_independent && "demoted entries must fall back to fresh generation");
    assert(sf->p == rc.num_ranks());
    ++live;
  }
  if (S == 0 || live == 0) return results;

  constexpr std::uint32_t kNoSlot = 0xffffffffu;
  CandScratch& sc = thread_cand_scratch();
  const size_t np = static_cast<size_t>(rc.num_ranks());

  // Window width: one register-tiled window covers the whole size axis for
  // every practical grid (tuner grids and sweep plans are <= 32 sizes), so
  // the op stream is walked once per candidate; longer axes fall back to
  // 32-lane windows.
  const size_t W = S <= 2 ? 2 : S <= 4 ? 4 : S <= 8 ? 8 : S <= 16 ? 16 : 32;
  const size_t P = (S + W - 1) / W * W;

  // --- per-schedule compiled forms + union of the pool's send pairs ---------
  // Each candidate's compact op stream (recvs dropped, rank-group boundaries
  // folded into flags, byte rows dedup'd, pairs densely numbered) comes from
  // the schedule's cached CandCompiled -- built once per schedule process-
  // wide, so this loop only unions the pair keys: candidate-local pid k maps
  // to union pid cand_pids[cp_off[c] + k]. pair_index entries stay assigned
  // until the end of the call (all-kNoSlot invariant restored at the bottom,
  // as in simulate_sizes); resizing down keeps the invariant (the dropped
  // tail is all-kNoSlot) while letting trim() release a huge cell's p^2
  // table once small cells follow.
  if (sc.pair_index.size() < np * np)
    sc.pair_index.assign(np * np, kNoSlot);
  else
    sc.pair_index.resize(np * np);
  std::vector<std::shared_ptr<const CandCompiled>> comp(C);
  std::vector<size_t> cp_off(C + 1, 0);  // cand_pids segment per candidate
  sc.pair_keys.clear();
  sc.cand_pids.clear();
  for (size_t c = 0; c < C; ++c) {
    cp_off[c] = sc.cand_pids.size();
    if (candidates[c] == nullptr) continue;
    comp[c] = compiled_for(*candidates[c]);
    for (const size_t key : comp[c]->pair_keys) {
      std::uint32_t& pid = sc.pair_index[key];
      if (pid == kNoSlot) {
        pid = static_cast<std::uint32_t>(sc.pair_keys.size());
        sc.pair_keys.push_back(key);
      }
      sc.cand_pids.push_back(pid);
    }
  }
  cp_off[C] = sc.cand_pids.size();

  // --- route rows: through the memo (cross-cell reuse) or walked directly ---
  if (memo != nullptr)
    memo->resolve(rc, sc.pair_keys, sc.rows);
  else
    resolve_pairs_direct(rc, sc.pair_keys, sc.slot_of_link, sc.rows);

  // --- call-local compact slot table over the union, sorted by class --------
  // Scope slots are sparse for this call (and numbered by global insertion
  // order); remap to a dense table sorted by (LinkClass, link id) -- the same
  // layout simulate_sizes builds, deterministic for any memo state because
  // the sort keys are link ids, not slot numbers.
  if (sc.slot_map.size() < sc.rows.num_scope_slots())
    sc.slot_map.resize(sc.rows.num_scope_slots(), kNoSlot);
  sc.scope_used.clear();
  sc.table_links.clear();
  for (const std::uint32_t v : sc.rows.route_slots) {
    if (sc.slot_map[v] == kNoSlot) {
      sc.slot_map[v] = static_cast<std::uint32_t>(sc.scope_used.size());
      sc.scope_used.push_back(v);
      sc.table_links.push_back(sc.rows.slot_link[v]);
    }
  }
  const size_t num_slots = sc.scope_used.size();
  const std::span<const LinkClass> link_class = rc.link_class();
  sc.order.resize(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot)
    sc.order[slot] = static_cast<std::uint32_t>(slot);
  std::sort(sc.order.begin(), sc.order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const i64 la = sc.table_links[a], lb = sc.table_links[b];
    const LinkClass ca = link_class[static_cast<size_t>(la)];
    const LinkClass cb = link_class[static_cast<size_t>(lb)];
    if (ca != cb) return ca < cb;
    return la < lb;
  });
  sc.perm.resize(num_slots);
  sc.slot_inv_bw.resize(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot) {
    sc.perm[sc.order[slot]] = static_cast<std::uint32_t>(slot);
    sc.slot_inv_bw[slot] =
        rc.inv_bandwidth()[static_cast<size_t>(sc.table_links[sc.order[slot]])];
  }
  // Union-pair CSR in sorted local slots, shared by every candidate's ops.
  sc.pair_slots.resize(sc.rows.route_slots.size());
  for (size_t u = 0; u < sc.rows.route_slots.size(); ++u)
    sc.pair_slots[u] = sc.perm[sc.slot_map[sc.rows.route_slots[u]]];
  // Restore slot_map's all-kNoSlot invariant for the next call.
  for (const std::uint32_t v : sc.scope_used) sc.slot_map[v] = kNoSlot;

  sc.pair_alpha.resize(sc.pair_keys.size());
  sc.pair_hops.resize(sc.pair_keys.size());
  for (size_t pid = 0; pid < sc.pair_keys.size(); ++pid) {
    sc.pair_alpha[pid] = sc.rows.crosses_global[pid] ? cp.alpha_global : cp.alpha_local;
    sc.pair_hops[pid] = sc.rows.hops[pid];
  }

  // Candidate-slot remap table over the union's local slots; all-kNoSlot
  // between candidates (reset through cslot_ids below). Growing with resize
  // preserves the invariant for entries carried over from earlier calls.
  if (sc.cslot_of.size() < num_slots) sc.cslot_of.resize(num_slots, kNoSlot);

  CandStreamCtx cx;
  cx.elem_size = elem_size;
  cx.seg_overhead = cp.seg_overhead;
  cx.inv_reduce_bw = 1.0 / cp.reduce_bandwidth;
  cx.inv_mem_bw = 1.0 / cp.mem_bandwidth;

  for (size_t c = 0; c < C; ++c) {
    if (candidates[c] == nullptr) continue;
    const sched::SizeFreeSchedule& sf = *candidates[c];
    const i64 B = sf.nblocks;

    // Per-size geometry: inherently per candidate (block space and nblocks
    // shape it), same expressions as simulate_sizes. Everything else the
    // fused stream needs -- byte rows, route rows, latency constants -- is
    // resolved from the shared union tables as it streams.
    sc.full_bytes.assign(P, 0);
    sc.base.assign(P, 0);
    sc.rem.assign(P, 0);
    for (size_t s = 0; s < S; ++s) {
      const i64 n = sf.space == sched::BlockSpace::pairwise ? elem_counts[s] * sf.p
                                                            : elem_counts[s];
      sc.full_bytes[s] = n * elem_size;
      sc.base[s] = n / B;
      sc.rem[s] = n % B;
    }

    // Candidate-local pair/slot tables: copy this candidate's rows out of the
    // shared union, renumbering pairs and slots into dense [0, n) ranges.
    // Cost is O(pairs x route length) -- pair counts are orders of magnitude
    // below op counts -- and it buys the stream a branch-free inner loop:
    // no touch bookkeeping per route visit, and a sequential max-reduce over
    // exactly the slots this candidate can touch.
    const size_t npairs_c = cp_off[c + 1] - cp_off[c];
    sc.cpair_route_off.resize(npairs_c);
    sc.cpair_route_len.resize(npairs_c);
    sc.cpair_alpha.resize(npairs_c);
    sc.cpair_hops.resize(npairs_c);
    sc.croute_slots.clear();
    sc.cslot_ids.clear();
    sc.ib_c.clear();
    for (size_t k = 0; k < npairs_c; ++k) {
      const std::uint32_t pid = sc.cand_pids[cp_off[c] + k];
      sc.cpair_route_off[k] = static_cast<std::uint32_t>(sc.croute_slots.size());
      sc.cpair_route_len[k] = sc.rows.route_len[pid];
      sc.cpair_alpha[k] = sc.pair_alpha[pid];
      sc.cpair_hops[k] = sc.pair_hops[pid];
      const std::uint32_t u0 = sc.rows.route_off[pid];
      for (std::uint32_t u = u0; u < u0 + sc.rows.route_len[pid]; ++u) {
        const std::uint32_t us = sc.pair_slots[u];
        std::uint32_t& cslot = sc.cslot_of[us];
        if (cslot == kNoSlot) {
          cslot = static_cast<std::uint32_t>(sc.cslot_ids.size());
          sc.cslot_ids.push_back(us);
          sc.ib_c.push_back(sc.slot_inv_bw[us]);
        }
        sc.croute_slots.push_back(cslot);
      }
    }
    const size_t n_c = sc.cslot_ids.size();
    // Restore cslot_of's all-kNoSlot invariant for the next candidate.
    for (const std::uint32_t us : sc.cslot_ids) sc.cslot_of[us] = kNoSlot;
    sc.acc.assign(n_c * W, 0);  // accumulator tiles; each step clears its own

    sc.seconds.resize(P);
    sc.local_b.resize(P);
    sc.global_b.resize(P);
    sc.intra_b.resize(P);
    const size_t nrows_c = comp[c]->rowspec.size();
    sc.rowvals.resize(nrows_c * W);
    cx.sf = &sf;
    cx.cops = comp[c]->cops.data();
    cx.cstep = comp[c]->cstep.data();
    cx.rowspec = comp[c]->rowspec.data();
    cx.nrows = static_cast<std::uint32_t>(nrows_c);
    cx.rows = sc.rowvals.data();
    cx.pair_route_off = sc.cpair_route_off.data();
    cx.pair_route_len = sc.cpair_route_len.data();
    cx.route_slots = sc.croute_slots.data();
    cx.pair_alpha = sc.cpair_alpha.data();
    cx.pair_hops = sc.cpair_hops.data();
    cx.num_slots = n_c;
    cx.slot_inv_bw = sc.ib_c.data();
    cx.acc = sc.acc.data();
    cx.full_bytes = sc.full_bytes.data();
    cx.base = sc.base.data();
    cx.rem = sc.rem.data();
    cx.seconds = sc.seconds.data();
    cx.local_b = sc.local_b.data();
    cx.global_b = sc.global_b.data();
    cx.intra_b = sc.intra_b.data();
    const auto run_windows = [&](auto width) {
      constexpr size_t kW = decltype(width)::value;
      for (size_t off = 0; off < P; off += kW) stream_candidate<kW>(cx, off);
    };
    switch (W) {
      case 2: run_windows(std::integral_constant<size_t, 2>{}); break;
      case 4: run_windows(std::integral_constant<size_t, 4>{}); break;
      case 8: run_windows(std::integral_constant<size_t, 8>{}); break;
      case 16: run_windows(std::integral_constant<size_t, 16>{}); break;
      default: run_windows(std::integral_constant<size_t, 32>{}); break;
    }

    results[c].resize(S);
    for (size_t s = 0; s < S; ++s) {
      results[c][s].seconds = sc.seconds[s];
      results[c][s].steps = sf.steps;
      results[c][s].traffic = {sc.local_b[s], sc.global_b[s], sc.intra_b[s],
                               comp[c]->messages};
    }
  }

  // Restore pair_index's all-kNoSlot invariant for the next call.
  for (const size_t key : sc.pair_keys) sc.pair_index[key] = kNoSlot;
  sc.trim();
  return results;
}

/// Testing hook (satellite: scratch-arena hygiene): resident capacity of this
/// thread's candidate-batched scratch, so the trim regression test can
/// observe that a huge cell's spike is released once small cells follow.
size_t candidate_scratch_resident_bytes() {
  return thread_cand_scratch().resident_bytes();
}

// --- Schedule-level conveniences -----------------------------------------------

namespace {

/// Ordered rank pairs the cost model will query for `cs`: the (rank, peer)
/// of every send. A schedule touches O(p log p) of the p^2 pairs, so scoping
/// the route build to this list is what makes the one-off conveniences cheap
/// on large rank counts (sweeps keep the eager build; see harness::Runner).
std::vector<std::pair<Rank, Rank>> send_pairs(const sched::CompiledSchedule& cs) {
  std::vector<std::pair<Rank, Rank>> pairs;
  pairs.reserve(cs.num_ops());
  for (size_t i = 0; i < cs.num_ops(); ++i)
    if (cs.kind[i] == sched::OpKind::send) pairs.emplace_back(cs.rank[i], cs.peer[i]);
  return pairs;  // RouteCache's scoped constructor sorts and dedups
}

}  // namespace

TrafficStats measure_traffic(const sched::Schedule& sch, const Topology& topo,
                             const Placement& pl) {
  const sched::CompiledSchedule cs = sched::CompiledSchedule::lower(sch);
  return measure_traffic(cs, RouteCache(topo, pl, send_pairs(cs)));
}

SimResult simulate(const sched::Schedule& sch, const Topology& topo, const Placement& pl,
                   const CostParams& cp) {
  const sched::CompiledSchedule cs = sched::CompiledSchedule::lower(sch);
  return simulate(cs, RouteCache(topo, pl, send_pairs(cs)), cp);
}

i64 inter_group_bytes(const sched::Schedule& sch, std::span<const i64> group_of_rank) {
  i64 total = 0;
  for (Rank r = 0; r < sch.p; ++r)
    for (const auto& step : sch.steps[static_cast<size_t>(r)])
      for (const sched::Op& op : step.ops)
        if (op.kind == sched::OpKind::send &&
            group_of_rank[static_cast<size_t>(r)] !=
                group_of_rank[static_cast<size_t>(op.peer)])
          total += op.bytes;
  return total;
}

}  // namespace bine::net
