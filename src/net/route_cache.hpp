#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "net/topology.hpp"

namespace bine::fault {
struct FaultSpec;
}

/// Compiled routing tables: the hot-path replacement for per-message virtual
/// `Topology::route()` calls.
///
/// A `RouteCache` is built once per (Topology, Placement) and reused across
/// every schedule simulated on that pair -- exactly the access pattern of the
/// evaluation sweeps, where one machine instance hosts hundreds of
/// (algorithm, vector size) schedule simulations. The virtual `route()`
/// method remains the single source of truth for minimal paths; the cache
/// only materializes its answers:
///
///   * a CSR-packed table of link paths for every ordered rank pair, keyed by
///     the (src node, dst node) the placement assigns to the pair;
///   * per-pair link-class hop counts (local/global/intra-node), which make
///     exact traffic accounting O(1) per message instead of O(path);
///   * flat per-link `LinkClass` and inverse-bandwidth arrays, so the
///     simulator's inner loop multiplies instead of dividing and never
///     touches the `Link` structs through the topology.
///
/// Two build modes:
///
///   * *eager* (the 2-arg constructor): every ordered rank pair is routed up
///     front. The right choice for sweeps, where one cache serves hundreds
///     of schedules and the hot path must stay branch-free.
///   * *scoped* (the pair-list constructor): only the listed pairs are
///     routed and stored -- time AND memory are O(#pairs), with a sorted
///     pair table looked up by binary search on access (unlisted pairs
///     assert in debug builds). A schedule touches O(p log p) of the p^2
///     pairs, so the one-off `measure_traffic`/`simulate` conveniences
///     scope the build to the schedule's send pairs and skip almost the
///     entire eager cost -- including the quadratic table allocation -- on
///     large rank counts.
namespace bine::net {

/// Rank -> node placement. Identity (one rank per node, block order) unless
/// an allocation says otherwise.
struct Placement {
  std::vector<i64> node_of_rank;
  [[nodiscard]] static Placement identity(i64 p) {
    Placement pl;
    pl.node_of_rank.resize(static_cast<size_t>(p));
    for (i64 r = 0; r < p; ++r) pl.node_of_rank[static_cast<size_t>(r)] = r;
    return pl;
  }
};

class RouteCache {
 public:
  /// Number of links of each class on one rank pair's path.
  struct ClassHops {
    std::int32_t local = 0;
    std::int32_t global = 0;
    std::int32_t intra_node = 0;
  };

  /// Eager build: routes all p^2 ordered pairs.
  RouteCache(const Topology& topo, const Placement& pl);

  /// Scoped build: routes only the ordered (src, dst) pairs in `pairs`
  /// (duplicates tolerated). Accessing an unlisted pair is undefined
  /// (asserts in debug builds).
  RouteCache(const Topology& topo, const Placement& pl,
             std::span<const std::pair<Rank, Rank>> pairs);

  [[nodiscard]] i64 num_ranks() const noexcept { return p_; }
  [[nodiscard]] i64 num_links() const noexcept {
    return static_cast<i64>(inv_bandwidth_.size());
  }

  /// True when (src, dst) was routed at build time (always, for eager).
  [[nodiscard]] bool routed(Rank src, Rank dst) const noexcept {
    return !scoped_ || scoped_index(src, dst) != kNotRouted;
  }

  /// Link ids of the minimal route between the nodes hosting `src` and `dst`
  /// (empty when they share a node).
  [[nodiscard]] std::span<const i64> path(Rank src, Rank dst) const noexcept {
    const size_t k = pair(src, dst);
    return {links_.data() + offsets_[k], links_.data() + offsets_[k + 1]};
  }

  [[nodiscard]] const ClassHops& hops(Rank src, Rank dst) const noexcept {
    return hops_[pair(src, dst)];
  }

  [[nodiscard]] bool crosses_global(Rank src, Rank dst) const noexcept {
    return hops(src, dst).global > 0;
  }

  /// 1 / link bandwidth, indexed by link id (multiplying beats dividing in
  /// the per-step link-time reduction).
  [[nodiscard]] std::span<const double> inv_bandwidth() const noexcept {
    return inv_bandwidth_;
  }

  [[nodiscard]] std::span<const LinkClass> link_class() const noexcept {
    return link_class_;
  }

  /// Apply a fault spec to the compiled inverse-bandwidth column: each link's
  /// class degradation factor divides its bandwidth, and dead links (listed
  /// or seeded-sampled) drop to the spec's residual dead_link_bandwidth --
  /// simulated times over them become finite but enormous, so selection
  /// routes around the outage. Idempotence is NOT guaranteed; callers apply
  /// it exactly once, right after the build (harness::Runner does).
  /// Invalidates the cached signature() below.
  void degrade(const fault::FaultSpec& spec);

  /// Content fingerprint of the compiled tables: two caches agree iff their
  /// routed pairs, per-pair paths/hops, and per-link class/bandwidth columns
  /// (degradation included) are identical -- i.e. they describe the same
  /// (Topology, Placement, fault_epoch). This is the scope key of
  /// net::PairRouteMemo, which lets every Runner built on the same machine
  /// state share one memoized route-row table. Computed lazily on first use
  /// (a word-wise FNV over the flat arrays, O(stored paths) once) and cached;
  /// concurrent first calls race benignly to the same value. Never 0.
  [[nodiscard]] u64 signature() const noexcept;

 private:
  static constexpr size_t kNotRouted = static_cast<size_t>(-1);

  /// Slot of (src, dst) in offsets_/hops_: direct src*p + dst for eager,
  /// binary search over the sorted pair table for scoped.
  [[nodiscard]] size_t pair(Rank src, Rank dst) const noexcept {
    assert(src >= 0 && src < p_ && dst >= 0 && dst < p_);
    if (!scoped_)
      return static_cast<size_t>(src) * static_cast<size_t>(p_) +
             static_cast<size_t>(dst);
    const size_t k = scoped_index(src, dst);
    assert(k != kNotRouted && "pair outside this scoped RouteCache's build");
    return k;
  }

  [[nodiscard]] size_t scoped_index(Rank src, Rank dst) const noexcept {
    const std::pair<Rank, Rank> key{src, dst};
    const auto it = std::lower_bound(scoped_keys_.begin(), scoped_keys_.end(), key);
    if (it == scoped_keys_.end() || *it != key) return kNotRouted;
    return static_cast<size_t>(it - scoped_keys_.begin());
  }

  void route_one(const Topology& topo, const Placement& pl, Rank s, Rank d,
                 std::vector<i64>& path_scratch);

  i64 p_ = 0;
  std::vector<size_t> offsets_;  ///< CSR offsets, one slot per stored pair + 1
  std::vector<i64> links_;       ///< concatenated per-pair link ids
  std::vector<ClassHops> hops_;  ///< per stored pair
  std::vector<double> inv_bandwidth_;  ///< per link id
  std::vector<LinkClass> link_class_;  ///< per link id
  /// Scoped build? (An explicit flag: a scoped build with an empty pair
  /// list -- a schedule with no sends -- must not masquerade as eager.)
  bool scoped_ = false;
  /// Sorted distinct pairs of a scoped build; slots follow this table.
  std::vector<std::pair<Rank, Rank>> scoped_keys_;
  /// Cached signature(); 0 = not yet computed (degrade() resets it).
  mutable std::atomic<u64> signature_{0};
};

}  // namespace bine::net
