#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/simulate.hpp"
#include "net/topology.hpp"

namespace bine::fault {
struct FaultSpec;
}

/// Parameter sets approximating the four systems of Table 2. Absolute
/// numbers are indicative; what the reproduction needs is the *structure*:
/// oversubscription ratios, locality tiers, and per-direction torus links.
namespace bine::net {

struct SystemProfile {
  std::string name;         ///< "lumi", "leonardo", "mn5", "fugaku", "multigpu"
  std::string description;  ///< topology summary printed by bench_table2
  CostParams cost;
  /// Build a topology instance sized for >= `nodes` endpoints.
  std::function<std::unique_ptr<Topology>(i64 nodes)> build;
  /// Factory arguments of the named constructor that produced this profile
  /// (the fugaku sub-torus dims; empty for the fixed-shape profiles). The
  /// `build` lambda cannot travel over a wire, so profile_by_name(name, dims)
  /// is how a serialized plan reconstructs the machine model exactly.
  std::vector<i64> dims;
  /// Optional fault model (fault/fault.hpp): degraded/dead links, failed
  /// ranks, lossy deliveries. Null or trivial = the healthy machine, and the
  /// evaluation pipeline is bit-identical to a profile without the field.
  /// harness::Runner honours it when building machine instances; a
  /// non-trivial spec is mixed into tune::profile_fingerprint so decision
  /// tables tuned on a degraded model never serve the healthy one.
  std::shared_ptr<const fault::FaultSpec> faults;
};

/// LUMI: Slingshot Dragonfly, 24 groups x 124 nodes; 200 Gb/s NICs;
/// sparse global links between group pairs.
[[nodiscard]] SystemProfile lumi_profile();

/// Leonardo: InfiniBand HDR Dragonfly+, 23 groups x 180 nodes (modelled as a
/// Dragonfly with a wider but still tapered global tier).
[[nodiscard]] SystemProfile leonardo_profile();

/// MareNostrum 5: 2:1 oversubscribed fat tree, 160-node full-bandwidth
/// subtrees, InfiniBand NDR200.
[[nodiscard]] SystemProfile mn5_profile();

/// Fugaku: Tofu-D 6D torus; jobs see a 3D sub-torus; 6.8 GB/s per link and
/// one NIC per direction. `dims` chooses the job sub-torus.
[[nodiscard]] SystemProfile fugaku_profile(std::vector<i64> dims);

/// Multi-GPU cluster (Sec. 6.2): 4 GPUs/node, fast all-to-all NVLink inside
/// the node, 200 Gb/s NIC per GPU across nodes.
[[nodiscard]] SystemProfile multigpu_profile();

/// The profiles evaluated by the table/figure benches, in paper order.
[[nodiscard]] std::vector<SystemProfile> main_profiles();

/// Reconstruct a named profile: "lumi", "leonardo", "mn5", "multigpu", or
/// "fugaku" (which requires non-empty `fugaku_dims`; the other names reject
/// dims). The reconstruction is exact -- name, description and cost
/// parameters match the factory above bit-for-bit, so
/// tune::profile_fingerprint agrees across processes. This is what lets a
/// serialized exp::SweepPlan (whose SystemProfile::build lambda cannot
/// travel) name its machine models over the wire. Throws
/// std::invalid_argument on unknown names or bad dims.
[[nodiscard]] SystemProfile profile_by_name(std::string_view name,
                                            const std::vector<i64>& fugaku_dims = {});

}  // namespace bine::net
