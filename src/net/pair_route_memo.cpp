#include "net/pair_route_memo.hpp"

#include <cassert>
#include <mutex>

namespace bine::net {

namespace {
constexpr std::uint32_t kNone = 0xffffffffu;
}  // namespace

/// One (Topology, Placement, fault_epoch) partition: append-only row and
/// slot tables under a reader-writer lock. Readers copy; writers append --
/// existing rows and slot assignments never change, so a row copied under
/// any lock generation stays valid forever.
struct PairRouteMemo::Scope {
  std::shared_mutex mutex;
  i64 p = 0;
  std::vector<std::uint32_t> row_of_pair;  ///< src * p + dst -> row id
  std::vector<std::uint32_t> row_off, row_len;  ///< per row, CSR into row_slots
  std::vector<std::uint32_t> row_slots;
  std::vector<RouteCache::ClassHops> row_hops;
  std::vector<std::uint8_t> row_global;
  std::vector<std::uint32_t> slot_of_link;  ///< link id -> scope slot
  std::vector<i64> slot_link;               ///< scope slot -> link id
};

std::shared_ptr<PairRouteMemo::Scope> PairRouteMemo::scope_for(const RouteCache& rc) {
  const u64 key = rc.signature();
  {
    std::shared_lock lock(mutex_);
    if (const auto it = scopes_.find(key); it != scopes_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = scopes_.try_emplace(key);
  if (inserted) {
    it->second = std::make_shared<Scope>();
    Scope& s = *it->second;
    s.p = rc.num_ranks();
    const size_t np = static_cast<size_t>(s.p);
    s.row_of_pair.assign(np * np, kNone);
    s.slot_of_link.assign(static_cast<size_t>(rc.num_links()), kNone);
    bytes_.fetch_add((np * np + s.slot_of_link.size()) * sizeof(std::uint32_t),
                     std::memory_order_relaxed);
  }
  return it->second;
}

void PairRouteMemo::resolve(const RouteCache& rc, std::span<const size_t> pair_keys,
                            Rows& out) {
  const std::shared_ptr<Scope> scope_ptr = scope_for(rc);
  Scope& scope = *scope_ptr;
  assert(scope.p == rc.num_ranks());
  const size_t np = static_cast<size_t>(scope.p);

  const size_t n = pair_keys.size();
  out.route_off.resize(n);
  out.route_len.resize(n);
  out.hops.resize(n);
  out.crosses_global.resize(n);
  out.route_slots.clear();

  // Pass 1 (shared): note which pairs the scope lacks. The common steady
  // state -- every pair known -- ends here with zero writer contention.
  size_t missing = 0;
  {
    std::shared_lock lock(scope.mutex);
    for (const size_t key : pair_keys)
      if (scope.row_of_pair[key] == kNone) ++missing;
  }

  // Pass 2 (exclusive, only when needed): walk and append the unknown pairs.
  // Re-check under the writer lock -- another resolver may have inserted
  // them between passes.
  if (missing > 0) {
    u64 inserted = 0, added_bytes = 0;
    std::unique_lock lock(scope.mutex);
    for (const size_t key : pair_keys) {
      if (scope.row_of_pair[key] != kNone) continue;
      const Rank src = static_cast<Rank>(key / np);
      const Rank dst = static_cast<Rank>(key % np);
      scope.row_of_pair[key] = static_cast<std::uint32_t>(scope.row_off.size());
      const std::span<const i64> path = rc.path(src, dst);
      scope.row_off.push_back(static_cast<std::uint32_t>(scope.row_slots.size()));
      scope.row_len.push_back(static_cast<std::uint32_t>(path.size()));
      for (const i64 link : path) {
        std::uint32_t& slot = scope.slot_of_link[static_cast<size_t>(link)];
        if (slot == kNone) {
          slot = static_cast<std::uint32_t>(scope.slot_link.size());
          scope.slot_link.push_back(link);
          added_bytes += sizeof(i64);
        }
        scope.row_slots.push_back(slot);
      }
      const RouteCache::ClassHops& h = rc.hops(src, dst);
      scope.row_hops.push_back(h);
      scope.row_global.push_back(h.global > 0 ? 1 : 0);
      ++inserted;
      added_bytes += path.size() * sizeof(std::uint32_t) + 2 * sizeof(std::uint32_t) +
                     sizeof(RouteCache::ClassHops) + 1;
    }
    misses_.fetch_add(inserted, std::memory_order_relaxed);
    bytes_.fetch_add(added_bytes, std::memory_order_relaxed);
    // `missing` counted under the shared lock; pairs another thread inserted
    // in between are hits after all.
    missing = static_cast<size_t>(inserted);
  }
  hits_.fetch_add(n - missing, std::memory_order_relaxed);

  // Pass 3 (shared): copy every row -- and the slot table, which may have
  // grown in pass 2 -- into the caller's scratch.
  {
    std::shared_lock lock(scope.mutex);
    for (size_t i = 0; i < n; ++i) {
      const std::uint32_t row = scope.row_of_pair[pair_keys[i]];
      const std::uint32_t off = scope.row_off[row];
      const std::uint32_t len = scope.row_len[row];
      out.route_off[i] = static_cast<std::uint32_t>(out.route_slots.size());
      out.route_len[i] = len;
      out.route_slots.insert(out.route_slots.end(), scope.row_slots.begin() + off,
                             scope.row_slots.begin() + off + len);
      out.hops[i] = scope.row_hops[row];
      out.crosses_global[i] = scope.row_global[row];
    }
    out.slot_link.assign(scope.slot_link.begin(), scope.slot_link.end());
  }
}

PairRouteMemo::Stats PairRouteMemo::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  std::shared_lock lock(mutex_);
  s.scopes = scopes_.size();
  return s;
}

void PairRouteMemo::clear() {
  std::unique_lock lock(mutex_);
  scopes_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
}

PairRouteMemo& process_route_memo() {
  static PairRouteMemo memo;
  return memo;
}

}  // namespace bine::net
