#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

/// Link-level network models for the four system classes of the paper's
/// evaluation (Table 2): oversubscribed fat tree, Dragonfly, Dragonfly+,
/// and N-dimensional torus, plus a multi-GPU node fabric (Sec. 6.2).
///
/// Links are *directed* (full duplex cables become two links); every link has
/// a class used for the paper's headline metric (bytes over global links) and
/// a bandwidth used by the cost model. Routing is minimal, as assumed in
/// Sec. 5.1.1.
namespace bine::net {

enum class LinkClass {
  local,       ///< intra-group / intra-subtree / torus mesh links
  global,      ///< inter-group, uplink, or otherwise oversubscribed links
  intra_node,  ///< GPU-to-GPU links inside one node
};

struct Link {
  LinkClass cls = LinkClass::local;
  double bandwidth = 0;  ///< bytes per second
};

/// A network topology over `num_nodes` endpoints.
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] i64 num_nodes() const { return num_nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Append the link ids of the minimal route from node `src` to node `dst`
  /// (empty when src == dst).
  virtual void route(i64 src, i64 dst, std::vector<i64>& out) const = 0;

  /// Group/locality domain of a node: ranks in different groups communicate
  /// over global links. Used for the inter-group traffic metric and Fig. 5.
  [[nodiscard]] virtual i64 group_of(i64 node) const = 0;

 protected:
  explicit Topology(i64 nodes) : num_nodes_(nodes) {}
  i64 add_link(LinkClass cls, double bandwidth) {
    links_.push_back(Link{cls, bandwidth});
    return static_cast<i64>(links_.size()) - 1;
  }

 private:
  i64 num_nodes_ = 0;
  std::vector<Link> links_;
};

/// Two-level fat tree with `nodes_per_leaf` nodes under each leaf switch and
/// an `oversub`:1 taper: each leaf has nodes_per_leaf/oversub uplinks into a
/// non-blocking core (MareNostrum 5 style, Fig. 1's 2:1 example).
class FatTree final : public Topology {
 public:
  FatTree(i64 num_leaves, i64 nodes_per_leaf, i64 oversub, double link_bw);
  [[nodiscard]] std::string name() const override { return "fat_tree"; }
  void route(i64 src, i64 dst, std::vector<i64>& out) const override;
  [[nodiscard]] i64 group_of(i64 node) const override { return node / nodes_per_leaf_; }

 private:
  i64 nodes_per_leaf_, uplinks_per_leaf_;
  std::vector<i64> access_up_, access_down_;  // node <-> leaf switch
  std::vector<std::vector<i64>> up_, down_;   // [leaf][k] uplink / downlink ids
};

/// Dragonfly: fully connected groups of `nodes_per_group`, every pair of
/// groups joined by `links_per_pair` parallel global links (LUMI style).
/// Dragonfly+ (Leonardo) uses the same inter-group structure with a fat-tree
/// group fabric; we model the group fabric as non-blocking in both cases and
/// differentiate via parameters (see DESIGN.md substitutions).
class Dragonfly final : public Topology {
 public:
  Dragonfly(i64 num_groups, i64 nodes_per_group, i64 links_per_pair, double local_bw,
            double global_bw, std::string flavour = "dragonfly");
  [[nodiscard]] std::string name() const override { return flavour_; }
  void route(i64 src, i64 dst, std::vector<i64>& out) const override;
  [[nodiscard]] i64 group_of(i64 node) const override { return node / nodes_per_group_; }

 private:
  [[nodiscard]] i64 pair_index(i64 ga, i64 gb) const;
  i64 num_groups_, nodes_per_group_, links_per_pair_;
  std::string flavour_;
  std::vector<i64> inject_, eject_;             // per-node access links (local)
  std::vector<std::vector<i64>> global_;        // [unordered group pair][k] directed pairs
};

/// N-dimensional torus with one directed link per node per direction
/// (Fugaku style; each direction maps to its own NIC, Appendix D.4).
/// Dimension-ordered minimal routing.
class Torus final : public Topology {
 public:
  Torus(std::vector<i64> dims, double link_bw);
  [[nodiscard]] std::string name() const override { return "torus"; }
  void route(i64 src, i64 dst, std::vector<i64>& out) const override;
  /// Torus has no oversubscribed "global" tier; every link is a mesh link
  /// (the paper: "on a torus, all links can be considered oversubscribed").
  [[nodiscard]] i64 group_of(i64 node) const override { return node; }

  [[nodiscard]] const std::vector<i64>& dims() const { return dims_; }
  [[nodiscard]] std::vector<i64> coords_of(i64 node) const;
  [[nodiscard]] i64 node_at(const std::vector<i64>& coords) const;

 private:
  [[nodiscard]] i64 link_id(i64 node, size_t dim, int dir) const;
  std::vector<i64> dims_;
  i64 links_per_node_ = 0;
};

/// Multi-GPU fabric: `gpus_per_node` all-to-all connected GPUs per node
/// (NVLink-like), nodes joined through per-GPU NICs into a non-blocking
/// inter-node network with per-pair shared capacity (Sec. 6.2).
class MultiGpu final : public Topology {
 public:
  MultiGpu(i64 num_nodes, i64 gpus_per_node, double nvlink_bw, double nic_bw);
  [[nodiscard]] std::string name() const override { return "multigpu"; }
  void route(i64 src, i64 dst, std::vector<i64>& out) const override;
  [[nodiscard]] i64 group_of(i64 gpu) const override { return gpu / gpus_per_node_; }

 private:
  i64 gpus_per_node_;
  std::vector<i64> nvlink_out_, nic_up_, nic_down_;  // per-GPU
};

}  // namespace bine::net
