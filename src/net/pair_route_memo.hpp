#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "net/route_cache.hpp"

/// Profile-scoped memoization of compiled per-(rank, peer) route rows: the
/// candidate-batched simulator's cross-cell structure cache.
///
/// `net::simulate_sizes` already memoizes routes per ordered pair *within*
/// one call, but every candidate of a cell -- and every cell of a sweep --
/// rebuilds that table from scratch, walking `RouteCache::path` and
/// reassigning compact link slots per candidate. The candidates of one
/// collective overwhelmingly reuse the same pairs (every butterfly shares
/// the ring's neighbor pairs and the trees' ancestor pairs), so the memo
/// lifts the pair walk to process scope the way
/// `sched::process_schedule_cache()` lifts schedule generation.
///
/// Scoping: rows are only valid for the (Topology, Placement, fault_epoch)
/// they were walked under, so the memo partitions its table by
/// `RouteCache::signature()` -- a content fingerprint over the compiled
/// route/bandwidth columns, which is exactly that triple (degradation
/// included; see route_cache.hpp). A Runner whose fault spec degrades links
/// gets a different scope than a healthy Runner on the same profile, and two
/// Runners built on identical machine state (the table benches build one per
/// profile, the tuner one per build round) share one scope: the second
/// starts hot.
///
/// Each scope owns a stable compact link-slot table (link id -> scope slot,
/// first-touch order, append-only) and per-pair rows: the pair's path as
/// scope-slot ids (CSR), its per-class hop counts, and whether it crosses a
/// global link. Callers copy rows out under a shared lock into call-local
/// scratch (`Rows`) and remap scope slots to their own sorted compact table;
/// nothing retains pointers into the scope, so scopes never dangle and rows
/// survive the RouteCache that seeded them. Slot *numbering* depends on
/// insertion order and is therefore thread-schedule-dependent -- harmless,
/// because the simulator's per-step link reduction is a max over
/// non-negative finite terms (order-independent bitwise) and byte
/// accumulation is exact i64: results never observe slot order.
namespace bine::net {

class PairRouteMemo {
 public:
  /// Call-local copy of the resolved rows for one pair list, in list order.
  /// Slot ids are *scope* slots: dense in [0, num_scope_slots) but sparse for
  /// any one call (other cells' pairs own the gaps); `slot_link` maps them
  /// back to link ids for bandwidth/class lookups.
  struct Rows {
    std::vector<std::uint32_t> route_off, route_len;  ///< per pair, CSR
    std::vector<std::uint32_t> route_slots;           ///< scope-slot ids
    std::vector<RouteCache::ClassHops> hops;          ///< per pair
    std::vector<std::uint8_t> crosses_global;         ///< per pair
    std::vector<i64> slot_link;  ///< scope slot -> link id (full table copy)
    [[nodiscard]] size_t num_scope_slots() const noexcept { return slot_link.size(); }
  };

  /// Resolve rows for `pair_keys` (ordered-pair keys `src * p + dst`,
  /// deduplicated by the caller) against the scope of `rc`, copying them into
  /// `out` in key order. Unknown pairs are walked via `rc.path` under the
  /// scope's writer lock and memoized; known pairs are copied under a shared
  /// lock. Thread-safe; concurrent resolvers of one scope contend only when
  /// one of them is inserting.
  void resolve(const RouteCache& rc, std::span<const size_t> pair_keys, Rows& out);

  struct Stats {
    u64 hits = 0;    ///< pairs served from a scope
    u64 misses = 0;  ///< pairs walked and inserted
    u64 scopes = 0;  ///< distinct (Topology, Placement, fault_epoch) seen
    u64 bytes = 0;   ///< approximate resident bytes of memoized rows
  };
  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Scope;
  [[nodiscard]] std::shared_ptr<Scope> scope_for(const RouteCache& rc);

  mutable std::shared_mutex mutex_;
  std::map<u64, std::shared_ptr<Scope>> scopes_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> bytes_{0};
};

/// The process-wide memo instance. Rows are pure functions of the scope key,
/// so every Runner shares one table -- sweeps, tuner builds, and the service
/// daemon's tune-on-miss all warm each other. `harness::Runner`'s batched
/// candidate path uses this instance; `PairRouteMemo` itself stays
/// instantiable for isolation in tests.
[[nodiscard]] PairRouteMemo& process_route_memo();

}  // namespace bine::net
