#include "net/route_cache.hpp"

#include "fault/fault.hpp"

namespace bine::net {

namespace {

void compile_links(const Topology& topo, std::vector<double>& inv_bandwidth,
                   std::vector<LinkClass>& link_class) {
  const auto& links = topo.links();
  inv_bandwidth.reserve(links.size());
  link_class.reserve(links.size());
  for (const Link& l : links) {
    inv_bandwidth.push_back(1.0 / l.bandwidth);
    link_class.push_back(l.cls);
  }
}

}  // namespace

void RouteCache::route_one(const Topology& topo, const Placement& pl, Rank s, Rank d,
                           std::vector<i64>& path_scratch) {
  path_scratch.clear();
  topo.route(pl.node_of_rank[static_cast<size_t>(s)],
             pl.node_of_rank[static_cast<size_t>(d)], path_scratch);
  ClassHops h;
  for (const i64 link : path_scratch) {
    switch (link_class_[static_cast<size_t>(link)]) {
      case LinkClass::local: ++h.local; break;
      case LinkClass::global: ++h.global; break;
      case LinkClass::intra_node: ++h.intra_node; break;
    }
  }
  links_.insert(links_.end(), path_scratch.begin(), path_scratch.end());
  offsets_.push_back(links_.size());
  hops_.push_back(h);
}

RouteCache::RouteCache(const Topology& topo, const Placement& pl)
    : p_(static_cast<i64>(pl.node_of_rank.size())) {
  compile_links(topo, inv_bandwidth_, link_class_);

  const size_t pairs = static_cast<size_t>(p_) * static_cast<size_t>(p_);
  offsets_.reserve(pairs + 1);
  offsets_.push_back(0);
  hops_.reserve(pairs);

  // Single pass over the virtual router, appending each pair's path into the
  // CSR arrays. The scratch vector is reused so route() never reallocates
  // after warm-up.
  std::vector<i64> path;
  for (Rank s = 0; s < p_; ++s)
    for (Rank d = 0; d < p_; ++d) route_one(topo, pl, s, d, path);
}

RouteCache::RouteCache(const Topology& topo, const Placement& pl,
                       std::span<const std::pair<Rank, Rank>> pairs)
    : p_(static_cast<i64>(pl.node_of_rank.size())), scoped_(true) {
  compile_links(topo, inv_bandwidth_, link_class_);

  // Slots follow the sorted distinct pair table; everything -- routing time,
  // CSR storage, hop table -- is O(#pairs), never O(p^2).
  scoped_keys_.assign(pairs.begin(), pairs.end());
  std::sort(scoped_keys_.begin(), scoped_keys_.end());
  scoped_keys_.erase(std::unique(scoped_keys_.begin(), scoped_keys_.end()),
                     scoped_keys_.end());

  offsets_.reserve(scoped_keys_.size() + 1);
  offsets_.push_back(0);
  hops_.reserve(scoped_keys_.size());
  std::vector<i64> path;
  for (const auto& [s, d] : scoped_keys_) {
    assert(s >= 0 && s < p_ && d >= 0 && d < p_);
    route_one(topo, pl, s, d, path);
  }
}

void RouteCache::degrade(const fault::FaultSpec& spec) {
  for (size_t l = 0; l < inv_bandwidth_.size(); ++l) {
    if (spec.link_dead(static_cast<i64>(l))) {
      inv_bandwidth_[l] = 1.0 / spec.dead_link_bandwidth;
      continue;
    }
    double factor = 1.0;
    switch (link_class_[l]) {
      case LinkClass::local: factor = spec.degrade_local; break;
      case LinkClass::global: factor = spec.degrade_global; break;
      case LinkClass::intra_node: factor = spec.degrade_intra_node; break;
    }
    // bw' = bw * factor, stored inverted: inv' = inv / factor.
    if (factor != 1.0) inv_bandwidth_[l] /= factor;
  }
}

}  // namespace bine::net
