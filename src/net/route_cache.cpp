#include "net/route_cache.hpp"

#include "core/fnv.hpp"
#include "fault/fault.hpp"

namespace bine::net {

namespace {

void compile_links(const Topology& topo, std::vector<double>& inv_bandwidth,
                   std::vector<LinkClass>& link_class) {
  const auto& links = topo.links();
  inv_bandwidth.reserve(links.size());
  link_class.reserve(links.size());
  for (const Link& l : links) {
    inv_bandwidth.push_back(1.0 / l.bandwidth);
    link_class.push_back(l.cls);
  }
}

}  // namespace

void RouteCache::route_one(const Topology& topo, const Placement& pl, Rank s, Rank d,
                           std::vector<i64>& path_scratch) {
  path_scratch.clear();
  topo.route(pl.node_of_rank[static_cast<size_t>(s)],
             pl.node_of_rank[static_cast<size_t>(d)], path_scratch);
  ClassHops h;
  for (const i64 link : path_scratch) {
    switch (link_class_[static_cast<size_t>(link)]) {
      case LinkClass::local: ++h.local; break;
      case LinkClass::global: ++h.global; break;
      case LinkClass::intra_node: ++h.intra_node; break;
    }
  }
  links_.insert(links_.end(), path_scratch.begin(), path_scratch.end());
  offsets_.push_back(links_.size());
  hops_.push_back(h);
}

RouteCache::RouteCache(const Topology& topo, const Placement& pl)
    : p_(static_cast<i64>(pl.node_of_rank.size())) {
  compile_links(topo, inv_bandwidth_, link_class_);

  const size_t pairs = static_cast<size_t>(p_) * static_cast<size_t>(p_);
  offsets_.reserve(pairs + 1);
  offsets_.push_back(0);
  hops_.reserve(pairs);

  // Single pass over the virtual router, appending each pair's path into the
  // CSR arrays. The scratch vector is reused so route() never reallocates
  // after warm-up.
  std::vector<i64> path;
  for (Rank s = 0; s < p_; ++s)
    for (Rank d = 0; d < p_; ++d) route_one(topo, pl, s, d, path);
}

RouteCache::RouteCache(const Topology& topo, const Placement& pl,
                       std::span<const std::pair<Rank, Rank>> pairs)
    : p_(static_cast<i64>(pl.node_of_rank.size())), scoped_(true) {
  compile_links(topo, inv_bandwidth_, link_class_);

  // Slots follow the sorted distinct pair table; everything -- routing time,
  // CSR storage, hop table -- is O(#pairs), never O(p^2).
  scoped_keys_.assign(pairs.begin(), pairs.end());
  std::sort(scoped_keys_.begin(), scoped_keys_.end());
  scoped_keys_.erase(std::unique(scoped_keys_.begin(), scoped_keys_.end()),
                     scoped_keys_.end());

  offsets_.reserve(scoped_keys_.size() + 1);
  offsets_.push_back(0);
  hops_.reserve(scoped_keys_.size());
  std::vector<i64> path;
  for (const auto& [s, d] : scoped_keys_) {
    assert(s >= 0 && s < p_ && d >= 0 && d < p_);
    route_one(topo, pl, s, d, path);
  }
}

void RouteCache::degrade(const fault::FaultSpec& spec) {
  for (size_t l = 0; l < inv_bandwidth_.size(); ++l) {
    if (spec.link_dead(static_cast<i64>(l))) {
      inv_bandwidth_[l] = 1.0 / spec.dead_link_bandwidth;
      continue;
    }
    double factor = 1.0;
    switch (link_class_[l]) {
      case LinkClass::local: factor = spec.degrade_local; break;
      case LinkClass::global: factor = spec.degrade_global; break;
      case LinkClass::intra_node: factor = spec.degrade_intra_node; break;
    }
    // bw' = bw * factor, stored inverted: inv' = inv / factor.
    if (factor != 1.0) inv_bandwidth_[l] /= factor;
  }
  signature_.store(0, std::memory_order_relaxed);
}

u64 RouteCache::signature() const noexcept {
  if (const u64 cached = signature_.load(std::memory_order_relaxed); cached != 0)
    return cached;
  // Fold every compiled column: the memoized route rows are a pure function
  // of exactly this content, so agreement here is agreement on what the memo
  // would store. Word-wise FNV keeps the one-time cost a fraction of the
  // eager build that produced the arrays.
  u64 h = core::kFnvOffset;
  core::fnv_mix_string(h, "bine.route_cache.v1");
  const auto mix = [&h](const auto& v) {
    const u64 n = v.size();
    core::fnv_mix_words(h, &n, sizeof(n));
    core::fnv_mix_words(h, v.data(), v.size() * sizeof(v[0]));
  };
  const u64 head[2] = {static_cast<u64>(p_), scoped_ ? u64{1} : u64{0}};
  core::fnv_mix_words(h, head, sizeof(head));
  mix(offsets_);
  mix(links_);
  mix(hops_);
  mix(inv_bandwidth_);
  mix(link_class_);
  mix(scoped_keys_);
  if (h == 0) h = 1;  // 0 is the not-yet-computed sentinel
  // Concurrent first calls compute the same value; whichever store lands
  // last is identical.
  signature_.store(h, std::memory_order_relaxed);
  return h;
}

}  // namespace bine::net
