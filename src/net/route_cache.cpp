#include "net/route_cache.hpp"

namespace bine::net {

RouteCache::RouteCache(const Topology& topo, const Placement& pl)
    : p_(static_cast<i64>(pl.node_of_rank.size())) {
  const auto& links = topo.links();
  inv_bandwidth_.reserve(links.size());
  link_class_.reserve(links.size());
  for (const Link& l : links) {
    inv_bandwidth_.push_back(1.0 / l.bandwidth);
    link_class_.push_back(l.cls);
  }

  const size_t pairs = static_cast<size_t>(p_) * static_cast<size_t>(p_);
  offsets_.reserve(pairs + 1);
  offsets_.push_back(0);
  hops_.reserve(pairs);

  // Single pass over the virtual router, appending each pair's path into the
  // CSR arrays. The scratch vector is reused so route() never reallocates
  // after warm-up.
  std::vector<i64> path;
  for (Rank s = 0; s < p_; ++s)
    for (Rank d = 0; d < p_; ++d) {
      path.clear();
      topo.route(pl.node_of_rank[static_cast<size_t>(s)],
                 pl.node_of_rank[static_cast<size_t>(d)], path);
      ClassHops h;
      for (const i64 link : path) {
        switch (link_class_[static_cast<size_t>(link)]) {
          case LinkClass::local: ++h.local; break;
          case LinkClass::global: ++h.global; break;
          case LinkClass::intra_node: ++h.intra_node; break;
        }
      }
      links_.insert(links_.end(), path.begin(), path.end());
      offsets_.push_back(links_.size());
      hops_.push_back(h);
    }
}

}  // namespace bine::net
