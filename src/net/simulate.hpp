#pragma once

#include <span>
#include <vector>

#include "net/pair_route_memo.hpp"
#include "net/route_cache.hpp"
#include "net/topology.hpp"
#include "sched/compiled.hpp"
#include "sched/schedule.hpp"
#include "sched/schedule_cache.hpp"

/// Laying a schedule onto a topology: exact per-link-class traffic accounting
/// (the paper's headline metric) and an alpha-beta-gamma cost model with
/// per-step link contention for the what-wins-where comparisons.
///
/// Traffic is exact; time is modeled -- see DESIGN.md's substitutions table
/// for why this preserves the paper's qualitative results.
///
/// Two engines implement the model:
///
///   * The *compiled* engine -- the default and the one the evaluation
///     harness uses -- consumes a `sched::CompiledSchedule` (flat SoA op
///     stream, sched/compiled.hpp) plus a `RouteCache` (CSR link paths per
///     rank pair, net/route_cache.hpp). It computes traffic and time in a
///     single pass with dense per-link byte accumulators and a touched-link
///     list, never calling the virtual `Topology::route()`.
///   * The *reference* engine (`*_reference`) is the retained naive
///     implementation: per-op virtual routing and a per-step hash map. It is
///     the oracle the parity tests and `bench_sim_engine` compare against;
///     don't use it in sweeps.
///
/// The `Schedule`-taking overloads lower + build a cache per call, which is
/// convenient for one-off measurements; sweeps should build the
/// `RouteCache` once per (Topology, Placement) and lower each schedule once
/// (see harness::Runner). `CompiledSchedule`'s columns are spans that may
/// alias a shared ScheduleCache entry (only the bytes column is
/// materialized per size) -- the engines below are agnostic to which
/// backing they read. DESIGN.md describes the full three-layer pipeline,
/// including the runtime executor's sibling IR (runtime::ExecPlan).
namespace bine::net {

struct TrafficStats {
  i64 local_bytes = 0;
  i64 global_bytes = 0;
  i64 intra_node_bytes = 0;
  i64 messages = 0;
  [[nodiscard]] i64 total() const { return local_bytes + global_bytes + intra_node_bytes; }
};

/// Exact per-class byte counts of `sch` routed over `topo` under `pl`.
[[nodiscard]] TrafficStats measure_traffic(const sched::Schedule& sch, const Topology& topo,
                                           const Placement& pl);

/// Compiled fast path: O(1) per message via the cache's per-pair hop counts.
[[nodiscard]] TrafficStats measure_traffic(const sched::CompiledSchedule& cs,
                                           const RouteCache& rc);

/// Bytes crossing group boundaries (no routing needed): the metric of Fig. 5
/// and of the "Traffic Red." columns when groups have single logical pipes.
[[nodiscard]] i64 inter_group_bytes(const sched::Schedule& sch,
                                    std::span<const i64> group_of_rank);

/// Cost-model knobs; per-link bandwidths come from the topology.
struct CostParams {
  double alpha_local = 1.5e-6;    ///< per-message latency, intra-group (s)
  double alpha_global = 4.0e-6;   ///< per-message latency crossing global links (s)
  double seg_overhead = 0.7e-6;   ///< per extra memory segment (pack/unpack, rendezvous)
  double mem_bandwidth = 40e9;    ///< local permute/copy bandwidth (B/s)
  double reduce_bandwidth = 25e9; ///< reduction throughput (B/s)
};

struct SimResult {
  double seconds = 0;
  TrafficStats traffic;
  size_t steps = 0;
};

/// Synchronous-step simulation: each step costs
///   max over links (bytes on link / bandwidth)
/// + max over ranks  (sum of message alphas + segment overheads
///                    + reduce bytes / reduce bw + permute bytes / mem bw).
/// Total time is the sum over steps. Traffic stats fall out of the same pass.
[[nodiscard]] SimResult simulate(const sched::Schedule& sch, const Topology& topo,
                                 const Placement& pl, const CostParams& cp);

/// Compiled fast path over pre-lowered IR and pre-built routes.
[[nodiscard]] SimResult simulate(const sched::CompiledSchedule& cs, const RouteCache& rc,
                                 const CostParams& cp);

/// Size-batched compiled engine: one structural pass per cell across the
/// whole size axis. Walks the cached size-free op stream ONCE, materializing
/// per-op wire-byte *coefficients* (the closed form of `ranges_elem_count`:
/// bytes_i(n) = C_i * (n / nblocks) + R_i(n % nblocks), all-i64) and a
/// flattened per-send route CSR over a compact link table (unique touched
/// links, gathered inverse bandwidths, partitioned by LinkClass), then
/// streams every element count through size-major accumulator tiles -- the
/// per-link scan and max-reduce amortize across the axis and vectorize.
///
/// Result [s] is bit-identical to
///   simulate(resolve(sf, elem_counts[s], elem_size), rc, cp)
/// -- the per-size oracle the parity suite loops: byte resolution runs the
/// same integer arithmetic, per-rank overheads accumulate in the same FP
/// order (ops outer, sizes inner, flushed at rank boundaries), and per-step
/// maxima reduce over non-negative finite terms, where max is
/// order-independent bitwise. `sf` must be size_independent.
[[nodiscard]] std::vector<SimResult> simulate_sizes(const sched::SizeFreeSchedule& sf,
                                                    std::span<const i64> elem_counts,
                                                    i64 elem_size, const RouteCache& rc,
                                                    const CostParams& cp);

/// Candidate-batched compiled engine: one structural pass per *cell* across
/// a whole candidate pool AND the size axis -- the (cell x candidates x
/// sizes) lift of simulate_sizes' (schedule x sizes) design. The union of
/// every candidate's send pairs is materialized once (through `memo` when
/// given: pair walks then amortize across cells, Runners, and tuner rounds;
/// self-contained when null), one compact link table sorted by LinkClass
/// serves all candidates, and the per-step accumulator tiles are zeroed once
/// per cell -- a running touch epoch replaces the per-candidate reset. Each
/// candidate then streams through the same lane-tile inner loops as
/// simulate_sizes.
///
/// result[c][s] is bit-identical to simulate_sizes(*candidates[c], ...)[s]
/// (the parity suite loops exactly that): per-candidate byte resolution and
/// FP accumulation order are untouched, and the shared slot table only
/// renumbers accumulator indices -- the per-step link reduction is a max
/// over non-negative finite terms, order-independent bitwise. Null entries
/// in `candidates` (inapplicable pool slots) yield empty result vectors.
/// Every non-null candidate must be size_independent with p matching `rc`.
[[nodiscard]] std::vector<std::vector<SimResult>> simulate_candidates(
    std::span<const sched::SizeFreeSchedule* const> candidates,
    std::span<const i64> elem_counts, i64 elem_size, const RouteCache& rc,
    const CostParams& cp, PairRouteMemo* memo = nullptr);

/// Resident capacity (bytes) of the calling thread's candidate-batched
/// scratch arena. Testing hook for the capacity-cap trim: a huge cell
/// followed by small cells must release the spike.
[[nodiscard]] size_t candidate_scratch_resident_bytes();

/// Naive oracles (virtual routing per op, hash-map accumulators), retained
/// verbatim for the parity suite and the before/after benchmark.
[[nodiscard]] TrafficStats measure_traffic_reference(const sched::Schedule& sch,
                                                     const Topology& topo,
                                                     const Placement& pl);
[[nodiscard]] SimResult simulate_reference(const sched::Schedule& sch, const Topology& topo,
                                           const Placement& pl, const CostParams& cp);

}  // namespace bine::net
