#pragma once

#include <span>
#include <vector>

#include "net/topology.hpp"
#include "sched/schedule.hpp"

/// Laying a schedule onto a topology: exact per-link-class traffic accounting
/// (the paper's headline metric) and an alpha-beta-gamma cost model with
/// per-step link contention for the what-wins-where comparisons.
///
/// Traffic is exact; time is modeled -- see DESIGN.md's substitutions table
/// for why this preserves the paper's qualitative results.
namespace bine::net {

/// Rank -> node placement. Identity (one rank per node, block order) unless
/// an allocation says otherwise.
struct Placement {
  std::vector<i64> node_of_rank;
  [[nodiscard]] static Placement identity(i64 p) {
    Placement pl;
    pl.node_of_rank.resize(static_cast<size_t>(p));
    for (i64 r = 0; r < p; ++r) pl.node_of_rank[static_cast<size_t>(r)] = r;
    return pl;
  }
};

struct TrafficStats {
  i64 local_bytes = 0;
  i64 global_bytes = 0;
  i64 intra_node_bytes = 0;
  i64 messages = 0;
  [[nodiscard]] i64 total() const { return local_bytes + global_bytes + intra_node_bytes; }
};

/// Exact per-class byte counts of `sch` routed over `topo` under `pl`.
[[nodiscard]] TrafficStats measure_traffic(const sched::Schedule& sch, const Topology& topo,
                                           const Placement& pl);

/// Bytes crossing group boundaries (no routing needed): the metric of Fig. 5
/// and of the "Traffic Red." columns when groups have single logical pipes.
[[nodiscard]] i64 inter_group_bytes(const sched::Schedule& sch,
                                    std::span<const i64> group_of_rank);

/// Cost-model knobs; per-link bandwidths come from the topology.
struct CostParams {
  double alpha_local = 1.5e-6;    ///< per-message latency, intra-group (s)
  double alpha_global = 4.0e-6;   ///< per-message latency crossing global links (s)
  double seg_overhead = 0.7e-6;   ///< per extra memory segment (pack/unpack, rendezvous)
  double mem_bandwidth = 40e9;    ///< local permute/copy bandwidth (B/s)
  double reduce_bandwidth = 25e9; ///< reduction throughput (B/s)
};

struct SimResult {
  double seconds = 0;
  TrafficStats traffic;
  size_t steps = 0;
};

/// Synchronous-step simulation: each step costs
///   max over links (bytes on link / bandwidth)
/// + max over ranks  (sum of message alphas + segment overheads
///                    + reduce bytes / reduce bw + permute bytes / mem bw).
/// Total time is the sum over steps.
[[nodiscard]] SimResult simulate(const sched::Schedule& sch, const Topology& topo,
                                 const Placement& pl, const CostParams& cp);

}  // namespace bine::net
