#include "net/topology.hpp"

#include <cassert>

namespace bine::net {

// --- FatTree -------------------------------------------------------------------

FatTree::FatTree(i64 num_leaves, i64 nodes_per_leaf, i64 oversub, double link_bw)
    : Topology(num_leaves * nodes_per_leaf),
      nodes_per_leaf_(nodes_per_leaf),
      uplinks_per_leaf_(std::max<i64>(1, nodes_per_leaf / oversub)) {
  access_up_.resize(static_cast<size_t>(num_nodes()));
  access_down_.resize(static_cast<size_t>(num_nodes()));
  for (i64 n = 0; n < num_nodes(); ++n) {
    access_up_[static_cast<size_t>(n)] = add_link(LinkClass::local, link_bw);
    access_down_[static_cast<size_t>(n)] = add_link(LinkClass::local, link_bw);
  }
  up_.resize(static_cast<size_t>(num_leaves));
  down_.resize(static_cast<size_t>(num_leaves));
  for (i64 l = 0; l < num_leaves; ++l)
    for (i64 k = 0; k < uplinks_per_leaf_; ++k) {
      up_[static_cast<size_t>(l)].push_back(add_link(LinkClass::global, link_bw));
      down_[static_cast<size_t>(l)].push_back(add_link(LinkClass::global, link_bw));
    }
}

void FatTree::route(i64 src, i64 dst, std::vector<i64>& out) const {
  if (src == dst) return;
  out.push_back(access_up_[static_cast<size_t>(src)]);
  const i64 src_leaf = src / nodes_per_leaf_, dst_leaf = dst / nodes_per_leaf_;
  if (src_leaf != dst_leaf) {
    // Spread flows over the parallel uplinks deterministically by flow hash.
    const i64 h = (src * 31 + dst) % uplinks_per_leaf_;
    out.push_back(up_[static_cast<size_t>(src_leaf)][static_cast<size_t>(h)]);
    out.push_back(down_[static_cast<size_t>(dst_leaf)][static_cast<size_t>(h)]);
  }
  out.push_back(access_down_[static_cast<size_t>(dst)]);
}

// --- Dragonfly -----------------------------------------------------------------

Dragonfly::Dragonfly(i64 num_groups, i64 nodes_per_group, i64 links_per_pair,
                     double local_bw, double global_bw, std::string flavour)
    : Topology(num_groups * nodes_per_group),
      num_groups_(num_groups),
      nodes_per_group_(nodes_per_group),
      links_per_pair_(links_per_pair),
      flavour_(std::move(flavour)) {
  inject_.resize(static_cast<size_t>(num_nodes()));
  eject_.resize(static_cast<size_t>(num_nodes()));
  for (i64 n = 0; n < num_nodes(); ++n) {
    inject_[static_cast<size_t>(n)] = add_link(LinkClass::local, local_bw);
    eject_[static_cast<size_t>(n)] = add_link(LinkClass::local, local_bw);
  }
  const i64 pairs = num_groups_ * (num_groups_ - 1) / 2;
  global_.resize(static_cast<size_t>(2 * pairs));  // directed: 2 per pair
  for (i64 pr = 0; pr < 2 * pairs; ++pr)
    for (i64 k = 0; k < links_per_pair_; ++k)
      global_[static_cast<size_t>(pr)].push_back(add_link(LinkClass::global, global_bw));
}

i64 Dragonfly::pair_index(i64 ga, i64 gb) const {
  assert(ga != gb);
  const i64 a = std::min(ga, gb), b = std::max(ga, gb);
  const i64 undirected = a * num_groups_ - a * (a + 1) / 2 + (b - a - 1);
  return 2 * undirected + (ga < gb ? 0 : 1);
}

void Dragonfly::route(i64 src, i64 dst, std::vector<i64>& out) const {
  if (src == dst) return;
  out.push_back(inject_[static_cast<size_t>(src)]);
  const i64 gs = group_of(src), gd = group_of(dst);
  if (gs != gd) {
    const auto& bundle = global_[static_cast<size_t>(pair_index(gs, gd))];
    out.push_back(bundle[static_cast<size_t>((src * 31 + dst) % links_per_pair_)]);
  }
  out.push_back(eject_[static_cast<size_t>(dst)]);
}

// --- Torus ---------------------------------------------------------------------

Torus::Torus(std::vector<i64> dims, double link_bw)
    : Topology([&dims] {
        i64 n = 1;
        for (const i64 d : dims) n *= d;
        return n;
      }()),
      dims_(std::move(dims)),
      links_per_node_(static_cast<i64>(2 * dims_.size())) {
  for (i64 n = 0; n < num_nodes(); ++n)
    for (i64 l = 0; l < links_per_node_; ++l) add_link(LinkClass::local, link_bw);
}

std::vector<i64> Torus::coords_of(i64 node) const {
  std::vector<i64> c(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    c[d] = node % dims_[d];
    node /= dims_[d];
  }
  return c;
}

i64 Torus::node_at(const std::vector<i64>& coords) const {
  i64 node = 0;
  for (size_t d = dims_.size(); d-- > 0;) node = node * dims_[d] + coords[d];
  return node;
}

i64 Torus::link_id(i64 node, size_t dim, int dir) const {
  return node * links_per_node_ + static_cast<i64>(2 * dim) + (dir > 0 ? 0 : 1);
}

void Torus::route(i64 src, i64 dst, std::vector<i64>& out) const {
  // Dimension-ordered minimal routing with wrap-around.
  std::vector<i64> cur = coords_of(src);
  const std::vector<i64> goal = coords_of(dst);
  for (size_t d = 0; d < dims_.size(); ++d) {
    const i64 size = dims_[d];
    i64 fwd = pmod(goal[d] - cur[d], size);
    const i64 bwd = size - fwd;
    const int dir = (fwd != 0 && fwd <= bwd) ? +1 : -1;
    i64 hops = std::min(fwd, bwd);
    while (hops-- > 0) {
      out.push_back(link_id(node_at(cur), d, dir));
      cur[d] = pmod(cur[d] + dir, size);
    }
  }
  assert(cur == goal);
}

// --- MultiGpu ------------------------------------------------------------------

MultiGpu::MultiGpu(i64 nodes, i64 gpus_per_node, double nvlink_bw, double nic_bw)
    : Topology(nodes * gpus_per_node), gpus_per_node_(gpus_per_node) {
  for (i64 g = 0; g < num_nodes(); ++g) {
    nvlink_out_.push_back(add_link(LinkClass::intra_node, nvlink_bw));
    nic_up_.push_back(add_link(LinkClass::global, nic_bw));
    nic_down_.push_back(add_link(LinkClass::global, nic_bw));
  }
}

void MultiGpu::route(i64 src, i64 dst, std::vector<i64>& out) const {
  if (src == dst) return;
  if (group_of(src) == group_of(dst)) {
    out.push_back(nvlink_out_[static_cast<size_t>(src)]);
    return;
  }
  out.push_back(nic_up_[static_cast<size_t>(src)]);
  out.push_back(nic_down_[static_cast<size_t>(dst)]);
}

}  // namespace bine::net
