#include "net/profiles.hpp"

#include <stdexcept>

namespace bine::net {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Production machines are much larger than the jobs we simulate; a job is
/// scattered across the whole machine by the scheduler (paper: 16-1024 node
/// jobs spanned 1-21 groups on LUMI). Build at least the production group
/// count, growing only when a job would not fit.
i64 groups_for(i64 nodes, i64 per_group, i64 production_groups) {
  return std::max(production_groups, ceil_div(nodes, per_group));
}
}  // namespace

SystemProfile lumi_profile() {
  SystemProfile p;
  p.name = "lumi";
  p.description = "Dragonfly (Slingshot 11), 124 nodes/group, 25 GB/s NIC, "
                  "2x25 GB/s global links per group pair";
  p.cost = CostParams{};
  p.cost.alpha_local = 1.8e-6;
  p.cost.alpha_global = 4.0e-6;
  p.build = [](i64 nodes) {
    const i64 per_group = 124;
    return std::make_unique<Dragonfly>(groups_for(nodes, per_group, 24), per_group,
                                       /*links_per_pair=*/2, 25 * kGiB, 25 * kGiB,
                                       "dragonfly");
  };
  return p;
}

SystemProfile leonardo_profile() {
  SystemProfile p;
  p.name = "leonardo";
  p.description = "Dragonfly+ (InfiniBand HDR), 180 nodes/group, 2x25 GB/s NIC, "
                  "4x25 GB/s global links per group pair";
  p.cost = CostParams{};
  p.cost.alpha_local = 1.5e-6;
  p.cost.alpha_global = 3.5e-6;
  p.build = [](i64 nodes) {
    const i64 per_group = 180;
    return std::make_unique<Dragonfly>(groups_for(nodes, per_group, 23), per_group,
                                       /*links_per_pair=*/4, 25 * kGiB, 25 * kGiB,
                                       "dragonfly_plus");
  };
  return p;
}

SystemProfile mn5_profile() {
  SystemProfile p;
  p.name = "mn5";
  p.description = "2:1 oversubscribed fat tree (InfiniBand NDR200), "
                  "160-node subtrees, 25 GB/s links";
  p.cost = CostParams{};
  p.cost.alpha_local = 1.5e-6;
  p.cost.alpha_global = 3.0e-6;
  p.build = [](i64 nodes) {
    // Jobs up to 64 nodes spanned as many as 8 subtrees on the real system,
    // so give the scheduler a wide machine to scatter over.
    const i64 per_leaf = 160;
    return std::make_unique<FatTree>(groups_for(nodes, per_leaf, 8), per_leaf,
                                     /*oversub=*/2, 25 * kGiB);
  };
  return p;
}

SystemProfile fugaku_profile(std::vector<i64> dims) {
  SystemProfile p;
  p.name = "fugaku";
  p.dims = dims;
  std::string d;
  for (size_t i = 0; i < dims.size(); ++i)
    d += (i ? "x" : "") + std::to_string(dims[i]);
  p.description = "Tofu-D torus " + d + ", 6.8 GB/s per directed link, one NIC "
                  "per direction";
  p.cost = CostParams{};
  p.cost.alpha_local = 1.0e-6;
  p.cost.alpha_global = 1.0e-6;  // no separate global tier on a torus
  p.build = [dims](i64 nodes) {
    i64 capacity = 1;
    for (const i64 x : dims) capacity *= x;
    assert(capacity >= nodes && "requested sub-torus smaller than the job");
    (void)nodes;
    return std::make_unique<Torus>(dims, 6.8e9);
  };
  return p;
}

SystemProfile multigpu_profile() {
  SystemProfile p;
  p.name = "multigpu";
  p.description = "4 GPUs/node, 150 GB/s all-to-all NVLink intra-node, "
                  "25 GB/s NIC per GPU inter-node";
  p.cost = CostParams{};
  p.cost.alpha_local = 5.0e-6;  // GPU launch overheads dominate small messages
  p.cost.alpha_global = 7.0e-6;
  p.cost.reduce_bandwidth = 300e9;  // on-GPU reductions are fast
  p.cost.mem_bandwidth = 900e9;
  p.build = [](i64 gpus) {
    const i64 per_node = 4;
    return std::make_unique<MultiGpu>(ceil_div(gpus, per_node), per_node, 150 * kGiB,
                                      25 * kGiB);
  };
  return p;
}

std::vector<SystemProfile> main_profiles() {
  return {lumi_profile(), leonardo_profile(), mn5_profile()};
}

SystemProfile profile_by_name(std::string_view name,
                              const std::vector<i64>& fugaku_dims) {
  if (name == "fugaku") {
    if (fugaku_dims.empty())
      throw std::invalid_argument("net: profile \"fugaku\" requires sub-torus dims");
    for (const i64 d : fugaku_dims)
      if (d < 1)
        throw std::invalid_argument("net: fugaku sub-torus dims must be >= 1");
    return fugaku_profile(fugaku_dims);
  }
  if (!fugaku_dims.empty())
    throw std::invalid_argument("net: only \"fugaku\" takes sub-torus dims, not \"" +
                                std::string(name) + "\"");
  if (name == "lumi") return lumi_profile();
  if (name == "leonardo") return leonardo_profile();
  if (name == "mn5") return mn5_profile();
  if (name == "multigpu") return multigpu_profile();
  throw std::invalid_argument("net: unknown profile name \"" + std::string(name) +
                              "\"");
}

}  // namespace bine::net
