#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sched/blocks.hpp"

/// The schedule intermediate representation.
///
/// Every collective algorithm in this library -- Bine or baseline -- is a
/// *schedule generator*: a pure function producing, for each rank, a sequence
/// of synchronized steps of send/recv/local operations over logical blocks.
/// One schedule serves two consumers:
///   * runtime::Executor runs it over real buffers and verifies semantics;
///   * net::simulate lays it onto a topology model for traffic/time -- via
///     sched::CompiledSchedule (compiled.hpp), which lowers the nested
///     representation below into flat structure-of-arrays form once per
///     simulation. This type stays optimized for *generation* (per-rank
///     append, BlockSet bookkeeping); the IR is what the hot loop consumes.
///
/// Size independence: the *structure* of every schedule -- steps, peers,
/// block sets, segment counts -- is a pure function of (algorithm, p, root,
/// torus_dims). `elem_count`/`elem_size` only scale the per-op byte counts,
/// via `bytes_of`'s block arithmetic. sched::ScheduleCache (schedule_cache.hpp)
/// exploits this invariant: one cached structure serves every message size of
/// a sweep, with bytes re-resolved per size by the same arithmetic. Keep
/// generators size-oblivious (never branch on elem_count): the cache
/// cross-checks structure at two widely separated canonical sizes and
/// demotes mismatches to the uncached path, but a branch that only triggers
/// beyond the large probe (~256 MiB vectors) would defeat it.
///
/// Block-range storage lives in a per-schedule ScheduleArena (blocks.hpp):
/// `Op::blocks` values point into it (or hold tiny sets inline), so the
/// schedule must not outlive its arena -- which `arena_` guarantees for the
/// normal value-semantics usage, including splicing via coll::sequence
/// (which retains the donor arena).
namespace bine::sched {

enum class Collective {
  bcast,
  reduce,
  gather,
  scatter,
  allgather,
  reduce_scatter,
  allreduce,
  alltoall,
};

[[nodiscard]] constexpr const char* to_string(Collective c) noexcept {
  switch (c) {
    case Collective::bcast: return "bcast";
    case Collective::reduce: return "reduce";
    case Collective::gather: return "gather";
    case Collective::scatter: return "scatter";
    case Collective::allgather: return "allgather";
    case Collective::reduce_scatter: return "reduce_scatter";
    case Collective::allreduce: return "allreduce";
    case Collective::alltoall: return "alltoall";
  }
  return "?";
}

/// How logical block ids map onto data.
enum class BlockSpace {
  /// B blocks shared across ranks: block b always means element range b of
  /// *the* vector (bcast/reduce/scatter/gather/allgather/... semantics).
  per_vector,
  /// p*p blocks: id s*p + d is the data rank s sends to rank d (alltoall).
  pairwise,
};

enum class OpKind {
  send,        ///< transmit blocks to `peer`
  recv,        ///< receive blocks from `peer`, replacing slot contents
  recv_reduce, ///< receive blocks from `peer`, folding into slots with the op
  local_perm,  ///< local buffer shuffle (costs memory bandwidth, moves no bytes on wires)
};

/// One operation of one rank within one step.
struct Op {
  OpKind kind = OpKind::send;
  Rank peer = -1;      ///< counterpart rank (unused for local_perm)
  BlockSet blocks;     ///< logical block ids (empty in coarse mode)
  i64 bytes = 0;       ///< wire bytes (local_perm: bytes shuffled in memory)
  i64 segments = 1;    ///< contiguous memory segments touched by this op
};

/// All ops a rank performs in one synchronized step. Sends and receives in
/// the same step proceed concurrently (sendrecv exchange).
struct RankStep {
  std::vector<Op> ops;
};

struct Schedule {
  Collective coll{};
  std::string algorithm;  ///< generator name, e.g. "bine_dh_tree"
  i64 p = 0;              ///< number of ranks
  i64 nblocks = 0;        ///< number of logical blocks (p*p for pairwise)
  BlockSpace space = BlockSpace::per_vector;
  i64 elem_count = 0;     ///< vector length (elements, per the collective's convention)
  i64 elem_size = 4;      ///< bytes per element
  Rank root = 0;          ///< for rooted collectives
  bool detail = true;     ///< block-accurate ops (required by the executor)
  /// steps[rank][step]
  std::vector<std::vector<RankStep>> steps;

  /// Number of synchronized steps: the max over ranks, so a ragged schedule
  /// (one that missed normalize_steps()) can never be silently
  /// under-simulated. validate() still rejects ragged schedules outright;
  /// consumers that index steps[r][t] must bound t by steps[r].size().
  [[nodiscard]] size_t num_steps() const noexcept {
    size_t n = 0;
    for (const auto& rank_steps : steps) n = std::max(n, rank_steps.size());
    return n;
  }

  /// Bytes covered by a block set under this schedule's vector config.
  [[nodiscard]] i64 bytes_of(const BlockSet& set) const {
    return set.elem_count(total_elems(), nblocks) * elem_size;
  }

  /// Total elements across the block space (pairwise: p vectors of elem_count).
  [[nodiscard]] i64 total_elems() const noexcept {
    return space == BlockSpace::pairwise ? elem_count * p : elem_count;
  }

  /// Append a matched send/recv pair at `step` (growing step vectors as
  /// needed). `segments` overrides the memory-contiguity estimate derived
  /// from the block set (-1 = derive): strategies that pack (Permute/Send)
  /// force 1, strategies that issue per-block sends force the block count.
  void add_exchange(size_t step, Rank from, Rank to, BlockSet blocks, bool reduce,
                    i64 segments = -1);

  /// Append a one-sided op (local_perm).
  void add_local(size_t step, Rank r, i64 bytes_moved, i64 segs);

  /// Ensure all ranks have the same number of steps (pad with empty).
  void normalize_steps();

  /// Sum of wire bytes over all sends.
  [[nodiscard]] i64 total_wire_bytes() const;

  /// Structural validation: every send has a matching recv in the same step
  /// with the same blocks/bytes, peers are in range, block ids valid.
  /// Returns an empty string when valid, else a description of the problem.
  [[nodiscard]] std::string validate() const;

  /// Arena backing this schedule's BlockSet range storage (created lazily;
  /// shared so copies of the schedule keep the spans alive).
  [[nodiscard]] ScheduleArena& arena() {
    if (!arena_) arena_ = std::make_shared<ScheduleArena>();
    return *arena_;
  }
  [[nodiscard]] std::shared_ptr<const ScheduleArena> arena_handle() const {
    return arena_;
  }
  /// Keep `donor`'s arena alive: required before splicing its ops in.
  /// Rebases this schedule onto a fresh arena that retains both the previous
  /// one and the donor's, so an arena shared with another schedule (e.g.
  /// after copy) is never mutated and retention edges always point from
  /// newer arenas to older ones -- no cycles, no unbounded growth of a
  /// long-lived base schedule's arena.
  void retain_arena_of(const Schedule& donor) {
    auto fresh = std::make_shared<ScheduleArena>();
    fresh->retain(std::move(arena_));
    fresh->retain(donor.arena_);
    arena_ = std::move(fresh);
  }

 private:
  std::shared_ptr<ScheduleArena> arena_;
};

}  // namespace bine::sched
