#include "sched/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace bine::sched {

BlockSet blockset_from_ids(std::vector<i64> ids, i64 B, ScheduleArena& arena) {
  if (ids.empty()) return {};
  std::sort(ids.begin(), ids.end());
  assert(std::adjacent_find(ids.begin(), ids.end()) == ids.end() && "ids must be distinct");

  // Coalesce into a per-thread scratch; the final ranges are interned into
  // the arena (or stored inline) so this function allocates only while the
  // scratch warms up.
  static thread_local std::vector<BlockRange> scratch;
  scratch.clear();
  BlockRange cur{ids.front(), 1};
  for (size_t k = 1; k < ids.size(); ++k) {
    if (ids[k] == cur.begin + cur.count) {
      ++cur.count;
    } else {
      scratch.push_back(cur);
      cur = BlockRange{ids[k], 1};
    }
  }
  scratch.push_back(cur);
  // Join circularly: a run ending at B-1 glues onto a run starting at 0,
  // forming one wrapped range (begin + count > B). Sorted input means the
  // 0-run can only be first and the B-ending run only last.
  if (scratch.size() > 1 && scratch.front().begin == 0 &&
      scratch.back().begin + scratch.back().count == B) {
    scratch.back().count += scratch.front().count;
    scratch.erase(scratch.begin());
  }
  return BlockSet::from_ranges(scratch, arena);
}

void Schedule::add_exchange(size_t step, Rank from, Rank to, BlockSet blocks, bool reduce,
                            i64 segments) {
  assert(from != to && from >= 0 && from < p && to >= 0 && to < p);
  for (auto& rank_steps : steps)
    if (rank_steps.size() <= step) rank_steps.resize(step + 1);
  const i64 nbytes = bytes_of(blocks);
  const i64 segs =
      segments > 0 ? segments : std::max<i64>(1, blocks.memory_segments(nblocks));
  Op send{OpKind::send, to, blocks, nbytes, segs};
  Op recv{reduce ? OpKind::recv_reduce : OpKind::recv, from, std::move(blocks), nbytes, segs};
  steps[static_cast<size_t>(from)][step].ops.push_back(std::move(send));
  steps[static_cast<size_t>(to)][step].ops.push_back(std::move(recv));
}

void Schedule::add_local(size_t step, Rank r, i64 bytes_moved, i64 segs) {
  assert(r >= 0 && r < p);
  for (auto& rank_steps : steps)
    if (rank_steps.size() <= step) rank_steps.resize(step + 1);
  steps[static_cast<size_t>(r)][step].ops.push_back(
      Op{OpKind::local_perm, -1, {}, bytes_moved, segs});
}

void Schedule::normalize_steps() {
  size_t max_steps = 0;
  for (const auto& rank_steps : steps) max_steps = std::max(max_steps, rank_steps.size());
  for (auto& rank_steps : steps) rank_steps.resize(max_steps);
}

i64 Schedule::total_wire_bytes() const {
  i64 total = 0;
  for (const auto& rank_steps : steps)
    for (const RankStep& st : rank_steps)
      for (const Op& op : st.ops)
        if (op.kind == OpKind::send) total += op.bytes;
  return total;
}

std::string Schedule::validate() const {
  std::ostringstream err;
  if (static_cast<i64>(steps.size()) != p) return "steps.size() != p";
  const size_t nsteps = num_steps();
  for (const auto& rank_steps : steps)
    if (rank_steps.size() != nsteps) return "ragged step counts; call normalize_steps()";

  for (size_t t = 0; t < nsteps; ++t) {
    // Pair up sends and receives within the step, keyed by (from, to). More
    // than one message per pair per step is allowed (multi-port schedules);
    // the k-th send matches the k-th recv in op order.
    std::map<std::pair<Rank, Rank>, std::vector<const Op*>> sends, recvs;
    for (Rank r = 0; r < p; ++r) {
      for (const Op& op : steps[static_cast<size_t>(r)][t].ops) {
        if (op.kind == OpKind::local_perm) continue;
        if (op.peer < 0 || op.peer >= p || op.peer == r) {
          err << "step " << t << " rank " << r << ": bad peer " << op.peer;
          return err.str();
        }
        if (detail) {
          for (const i64 b : op.blocks.expand(nblocks))
            if (b < 0 || b >= nblocks) {
              err << "step " << t << " rank " << r << ": block id " << b << " out of range";
              return err.str();
            }
        }
        auto& side = (op.kind == OpKind::send) ? sends : recvs;
        const auto key = (op.kind == OpKind::send) ? std::make_pair(r, op.peer)
                                                   : std::make_pair(op.peer, r);
        side[key].push_back(&op);
      }
    }
    if (sends.size() != recvs.size()) {
      err << "step " << t << ": " << sends.size() << " send flows vs " << recvs.size()
          << " recv flows";
      return err.str();
    }
    for (const auto& [key, send_ops] : sends) {
      const auto it = recvs.find(key);
      if (it == recvs.end() || it->second.size() != send_ops.size()) {
        err << "step " << t << ": unmatched messages " << key.first << "->" << key.second;
        return err.str();
      }
      for (size_t k = 0; k < send_ops.size(); ++k) {
        const Op* send_op = send_ops[k];
        const Op* recv_op = it->second[k];
        if (recv_op->bytes != send_op->bytes) {
          err << "step " << t << ": byte mismatch on " << key.first << "->" << key.second;
          return err.str();
        }
        if (detail) {
          auto a = send_op->blocks.expand(nblocks);
          auto b = recv_op->blocks.expand(nblocks);
          std::sort(a.begin(), a.end());
          std::sort(b.begin(), b.end());
          if (a != b) {
            err << "step " << t << ": block mismatch on " << key.first << "->" << key.second;
            return err.str();
          }
        }
      }
    }
  }
  return {};
}

}  // namespace bine::sched
