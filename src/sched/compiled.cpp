#include "sched/compiled.hpp"

#include <algorithm>

namespace bine::sched {

void CompiledSchedule::lower_into(const Schedule& s, CompiledSchedule& out) {
  out.p = s.p;
  out.steps = s.num_steps();

  // Size pass reads only the per-step vector headers; plain recvs are
  // dropped during the fill, so this is an upper bound trimmed afterwards.
  size_t total_ops = 0;
  for (const auto& rank_steps : s.steps)
    for (const RankStep& st : rank_steps) total_ops += st.ops.size();
  out.kind.resize(total_ops);
  out.rank.resize(total_ops);
  out.peer.resize(total_ops);
  out.bytes.resize(total_ops);
  out.extra_segments.resize(total_ops);
  out.step_begin.clear();
  out.step_begin.reserve(out.steps + 1);
  out.step_begin.push_back(0);

  // Step-major fill via the shared lowering-order visitor: the traversal
  // order IS the output order, so every array is written sequentially with
  // one cursor. Rank grouping and per-rank op order are what the engine's
  // overhead accumulator and the float-level parity with the reference
  // engine rely on.
  std::uint32_t i = 0;
  for_each_lowered_op(
      s, out.steps,
      [&](Rank r, const Op& op) {
        out.kind[i] = op.kind;
        out.rank[i] = static_cast<std::int32_t>(r);
        out.peer[i] = static_cast<std::int32_t>(op.peer);
        out.bytes[i] = op.bytes;
        out.extra_segments[i] = lowered_extra_segments(op);
        ++i;
      },
      [&](size_t) { out.step_begin.push_back(i); });
  out.kind.resize(i);
  out.rank.resize(i);
  out.peer.resize(i);
  out.bytes.resize(i);
  out.extra_segments.resize(i);
}

CompiledSchedule CompiledSchedule::lower(const Schedule& s) {
  CompiledSchedule out;
  lower_into(s, out);
  return out;
}

}  // namespace bine::sched
