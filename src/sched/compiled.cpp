#include "sched/compiled.hpp"

#include <algorithm>

namespace bine::sched {

void CompiledSchedule::lower_into(const Schedule& s, CompiledSchedule& out) {
  out.p = s.p;
  out.steps = s.num_steps();

  // Size pass reads only the per-step vector headers; plain recvs are
  // dropped during the fill, so this is an upper bound trimmed afterwards.
  size_t total_ops = 0;
  for (const auto& rank_steps : s.steps)
    for (const RankStep& st : rank_steps) total_ops += st.ops.size();
  out.kind.resize(total_ops);
  out.rank.resize(total_ops);
  out.peer.resize(total_ops);
  out.bytes.resize(total_ops);
  out.extra_segments.resize(total_ops);
  out.step_begin.clear();
  out.step_begin.reserve(out.steps + 1);
  out.step_begin.push_back(0);

  // Step-major fill: the traversal order IS the output order, so every array
  // is written sequentially with one cursor. Iterating ranks in increasing
  // order inside a step keeps ops grouped by rank and in original per-rank
  // op order -- the engine's overhead accumulator and the float-level parity
  // with the reference engine both rely on this.
  std::uint32_t i = 0;
  for (size_t t = 0; t < out.steps; ++t) {
    for (Rank r = 0; r < s.p; ++r) {
      const auto& rank_steps = s.steps[static_cast<size_t>(r)];
      if (t >= rank_steps.size()) continue;  // ragged rank: no ops this step
      for (const Op& op : rank_steps[t].ops) {
        if (op.kind == OpKind::recv) continue;  // cost-free in the model
        out.kind[i] = op.kind;
        out.rank[i] = static_cast<std::int32_t>(r);
        out.peer[i] = static_cast<std::int32_t>(op.peer);
        out.bytes[i] = op.bytes;
        out.extra_segments[i] =
            static_cast<std::int32_t>(std::max<i64>(0, op.segments - 1));
        ++i;
      }
    }
    out.step_begin.push_back(i);
  }
  out.kind.resize(i);
  out.rank.resize(i);
  out.peer.resize(i);
  out.bytes.resize(i);
  out.extra_segments.resize(i);
}

CompiledSchedule CompiledSchedule::lower(const Schedule& s) {
  CompiledSchedule out;
  lower_into(s, out);
  return out;
}

}  // namespace bine::sched
