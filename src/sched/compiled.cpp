#include "sched/compiled.hpp"

#include <algorithm>

namespace bine::sched {

void CompiledSchedule::lower_into(const Schedule& s, CompiledSchedule& out) {
  out.p = s.p;
  out.steps = s.num_steps();
  out.keepalive.reset();

  // Size pass reads only the per-step vector headers; plain recvs are
  // dropped during the fill, so this is an upper bound trimmed afterwards.
  size_t total_ops = 0;
  for (const auto& rank_steps : s.steps)
    for (const RankStep& st : rank_steps) total_ops += st.ops.size();
  out.own.kind.resize(total_ops);
  out.own.rank.resize(total_ops);
  out.own.peer.resize(total_ops);
  out.own.bytes.resize(total_ops);
  out.own.extra_segments.resize(total_ops);
  out.own.step_begin.clear();
  out.own.step_begin.reserve(out.steps + 1);
  out.own.step_begin.push_back(0);

  // Step-major fill via the shared lowering-order visitor: the traversal
  // order IS the output order, so every array is written sequentially with
  // one cursor. Rank grouping and per-rank op order are what the engine's
  // overhead accumulator and the float-level parity with the reference
  // engine rely on.
  std::uint32_t i = 0;
  for_each_lowered_op(
      s, out.steps,
      [&](Rank r, const Op& op) {
        out.own.kind[i] = op.kind;
        out.own.rank[i] = static_cast<std::int32_t>(r);
        out.own.peer[i] = static_cast<std::int32_t>(op.peer);
        out.own.bytes[i] = op.bytes;
        out.own.extra_segments[i] = lowered_extra_segments(op);
        ++i;
      },
      [&](size_t) { out.own.step_begin.push_back(i); });
  out.own.kind.resize(i);
  out.own.rank.resize(i);
  out.own.peer.resize(i);
  out.own.bytes.resize(i);
  out.own.extra_segments.resize(i);

  out.step_begin = out.own.step_begin;
  out.kind = out.own.kind;
  out.rank = out.own.rank;
  out.peer = out.own.peer;
  out.bytes = out.own.bytes;
  out.extra_segments = out.own.extra_segments;
}

CompiledSchedule CompiledSchedule::lower(const Schedule& s) {
  CompiledSchedule out;
  lower_into(s, out);
  return out;
}

}  // namespace bine::sched
