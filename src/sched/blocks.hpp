#pragma once

#include <algorithm>
#include <vector>

#include "core/types.hpp"

/// Block bookkeeping for collective schedules.
///
/// A collective on a vector of `n` elements over `B` blocks assigns block `b`
/// the contiguous element range [offset(b), offset(b+1)), with sizes differing
/// by at most one element (the usual MPI convention for non-divisible counts).
namespace bine::sched {

/// First element of block `b` when `n` elements are split into `B` blocks.
[[nodiscard]] constexpr i64 block_offset(i64 b, i64 n, i64 B) noexcept {
  assert(b >= 0 && b <= B && B > 0);
  const i64 base = n / B, extra = n % B;
  return b * base + (b < extra ? b : extra);
}

/// Number of elements in block `b`.
[[nodiscard]] constexpr i64 block_elems(i64 b, i64 n, i64 B) noexcept {
  return block_offset(b + 1, n, B) - block_offset(b, n, B);
}

/// A circular run of `count` consecutive block ids starting at `begin`
/// (indices taken mod B). count in [0, B].
struct BlockRange {
  i64 begin = 0;
  i64 count = 0;
};

/// An ordered set of disjoint circular block ranges.
struct BlockSet {
  std::vector<BlockRange> ranges;

  [[nodiscard]] static BlockSet single(i64 block) { return BlockSet{{{block, 1}}}; }
  [[nodiscard]] static BlockSet run(i64 begin, i64 count) { return BlockSet{{{begin, count}}}; }
  [[nodiscard]] static BlockSet all(i64 B) { return BlockSet{{{0, B}}}; }

  [[nodiscard]] i64 block_count() const noexcept {
    i64 total = 0;
    for (const BlockRange& r : ranges) total += r.count;
    return total;
  }

  [[nodiscard]] bool empty() const noexcept { return block_count() == 0; }

  /// Number of contiguous *memory* segments the set occupies when blocks are
  /// laid out in id order: a circular run that wraps past B-1 splits in two
  /// (this is exactly the paper's "Two Transmissions" effect, Sec. 4.3.1).
  [[nodiscard]] i64 memory_segments(i64 B) const noexcept {
    i64 segs = 0;
    for (const BlockRange& r : ranges) {
      if (r.count == 0) continue;
      segs += (r.begin + r.count > B) ? 2 : 1;
    }
    return segs;
  }

  /// Materialize the block ids in range order.
  [[nodiscard]] std::vector<i64> expand(i64 B) const {
    std::vector<i64> ids;
    ids.reserve(static_cast<size_t>(block_count()));
    for (const BlockRange& r : ranges)
      for (i64 k = 0; k < r.count; ++k) ids.push_back(pmod(r.begin + k, B));
    return ids;
  }

  /// Total elements covered when `n` elements are split into `B` blocks.
  /// O(#ranges), not O(#blocks).
  [[nodiscard]] i64 elem_count(i64 n, i64 B) const {
    i64 total = 0;
    for (const BlockRange& r : ranges) {
      const i64 head = std::min(r.count, B - r.begin);
      total += block_offset(r.begin + head, n, B) - block_offset(r.begin, n, B);
      const i64 tail = r.count - head;  // wrapped part, restarting at block 0
      if (tail > 0) total += block_offset(tail, n, B);
    }
    return total;
  }
};

/// Build a BlockSet from an arbitrary list of distinct ids: sorts them and
/// coalesces consecutive runs, joining circularly across the B-1/0 boundary.
[[nodiscard]] BlockSet blockset_from_ids(std::vector<i64> ids, i64 B);

}  // namespace bine::sched
