#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "core/types.hpp"

/// Block bookkeeping for collective schedules.
///
/// A collective on a vector of `n` elements over `B` blocks assigns block `b`
/// the contiguous element range [offset(b), offset(b+1)), with sizes differing
/// by at most one element (the usual MPI convention for non-divisible counts).
///
/// Storage model: a `BlockSet` is a *value* of at most two inline
/// `BlockRange`s -- which covers every single/run/all literal and every
/// circularly-merged pair -- or, for larger sets, a span into a
/// `ScheduleArena` owned by the schedule under construction. Copying a
/// BlockSet never allocates: schedule generation used to perform one heap
/// allocation per op (the per-op `std::vector<BlockRange>`); with the arena
/// it performs O(1) allocations per *schedule* (amortized chunk growth).
namespace bine::sched {

/// First element of block `b` when `n` elements are split into `B` blocks.
[[nodiscard]] constexpr i64 block_offset(i64 b, i64 n, i64 B) noexcept {
  assert(b >= 0 && b <= B && B > 0);
  const i64 base = n / B, extra = n % B;
  return b * base + (b < extra ? b : extra);
}

/// Number of elements in block `b`.
[[nodiscard]] constexpr i64 block_elems(i64 b, i64 n, i64 B) noexcept {
  return block_offset(b + 1, n, B) - block_offset(b, n, B);
}

/// A circular run of `count` consecutive block ids starting at `begin`
/// (indices taken mod B). count in [0, B]. A run with begin + count > B
/// wraps past B-1 (the paper's "Two Transmissions" effect, Sec. 4.3.1).
struct BlockRange {
  i64 begin = 0;
  i64 count = 0;
  friend bool operator==(const BlockRange&, const BlockRange&) = default;
};

/// Bump allocator backing BlockSet range storage for one schedule build.
///
/// Spans handed out by `alloc`/`intern` are stable for the arena's lifetime:
/// storage grows by whole chunks (doubling, never relocating), so a
/// `BlockSet` captured into an `Op` stays valid while the owning `Schedule`
/// (which holds the arena via shared_ptr) is alive. `retain` lets a schedule
/// that splices ops from another schedule (coll::sequence) keep that donor's
/// arena alive without re-interning every range.
class ScheduleArena {
 public:
  ScheduleArena() = default;
  ScheduleArena(const ScheduleArena&) = delete;
  ScheduleArena& operator=(const ScheduleArena&) = delete;

  /// Uninitialized stable storage for `n` ranges.
  [[nodiscard]] BlockRange* alloc(size_t n) {
    if (n == 0) return nullptr;
    if (cap_ - used_ < n) grow(n);
    BlockRange* out = chunks_.back().get() + used_;
    used_ += n;
    total_ += n;
    return out;
  }

  /// Copy `rs` into the arena; the returned span never moves.
  [[nodiscard]] std::span<const BlockRange> intern(std::span<const BlockRange> rs) {
    BlockRange* dst = alloc(rs.size());
    std::copy(rs.begin(), rs.end(), dst);
    return {dst, rs.size()};
  }

  /// Keep `dep` alive as long as this arena: used when ops referencing
  /// another schedule's arena are spliced into a schedule using this one.
  void retain(std::shared_ptr<const ScheduleArena> dep) {
    if (dep && dep.get() != this) retained_.push_back(std::move(dep));
  }

  /// Total ranges ever allocated (diagnostics / tests).
  [[nodiscard]] size_t ranges_allocated() const noexcept { return total_; }
  /// Number of chunk allocations performed (tests assert this stays O(log n)).
  [[nodiscard]] size_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  void grow(size_t n) {
    const size_t cap = std::max(n, chunks_.empty() ? kMinChunk : cap_ * 2);
    chunks_.push_back(std::make_unique<BlockRange[]>(cap));
    cap_ = cap;
    used_ = 0;
  }

  static constexpr size_t kMinChunk = 512;
  std::vector<std::unique_ptr<BlockRange[]>> chunks_;
  size_t cap_ = 0;   ///< capacity of the last chunk
  size_t used_ = 0;  ///< ranges used in the last chunk
  size_t total_ = 0;
  std::vector<std::shared_ptr<const ScheduleArena>> retained_;
};

/// Total elements covered by `rs` when `n` elements are split into `B`
/// blocks. O(#ranges). Shared by BlockSet::elem_count and the ScheduleCache's
/// per-size byte resolution, so cached schedules reproduce generation's byte
/// arithmetic bit-exactly.
[[nodiscard]] inline i64 ranges_elem_count(std::span<const BlockRange> rs, i64 n,
                                           i64 B) noexcept {
  i64 total = 0;
  for (const BlockRange& r : rs) {
    const i64 head = std::min(r.count, B - r.begin);
    total += block_offset(r.begin + head, n, B) - block_offset(r.begin, n, B);
    const i64 tail = r.count - head;  // wrapped part, restarting at block 0
    if (tail > 0) total += block_offset(tail, n, B);
  }
  return total;
}

/// An ordered set of disjoint circular block ranges (see storage model above).
class BlockSet {
 public:
  BlockSet() = default;

  [[nodiscard]] static BlockSet single(i64 block) noexcept {
    return BlockSet(BlockRange{block, 1});
  }
  [[nodiscard]] static BlockSet run(i64 begin, i64 count) noexcept {
    return BlockSet(BlockRange{begin, count});
  }
  [[nodiscard]] static BlockSet all(i64 B) noexcept { return BlockSet(BlockRange{0, B}); }

  /// Wrap `rs`: inline when it fits, else an arena-interned copy.
  [[nodiscard]] static BlockSet from_ranges(std::span<const BlockRange> rs,
                                            ScheduleArena& arena) {
    BlockSet out;
    out.size_ = static_cast<i64>(rs.size());
    if (rs.size() <= kInline) {
      std::copy(rs.begin(), rs.end(), out.inline_);
    } else {
      out.ext_ = arena.intern(rs).data();
    }
    return out;
  }

  [[nodiscard]] std::span<const BlockRange> ranges() const noexcept {
    return {ext_ ? ext_ : inline_, static_cast<size_t>(size_)};
  }

  [[nodiscard]] i64 block_count() const noexcept {
    i64 total = 0;
    for (const BlockRange& r : ranges()) total += r.count;
    return total;
  }

  [[nodiscard]] bool empty() const noexcept { return block_count() == 0; }

  /// Number of contiguous *memory* segments the set occupies when blocks are
  /// laid out in id order: a circular run that wraps past B-1 splits in two.
  [[nodiscard]] i64 memory_segments(i64 B) const noexcept {
    i64 segs = 0;
    for (const BlockRange& r : ranges()) {
      if (r.count == 0) continue;
      segs += (r.begin + r.count > B && r.count < B) ? 2 : 1;
    }
    return segs;
  }

  /// Materialize the block ids in range order.
  [[nodiscard]] std::vector<i64> expand(i64 B) const {
    std::vector<i64> ids;
    ids.reserve(static_cast<size_t>(block_count()));
    for (const BlockRange& r : ranges())
      for (i64 k = 0; k < r.count; ++k) ids.push_back(pmod(r.begin + k, B));
    return ids;
  }

  /// Total elements covered when `n` elements are split into `B` blocks.
  /// O(#ranges), not O(#blocks).
  [[nodiscard]] i64 elem_count(i64 n, i64 B) const {
    return ranges_elem_count(ranges(), n, B);
  }

 private:
  explicit BlockSet(BlockRange r) noexcept : size_(1) { inline_[0] = r; }

  static constexpr size_t kInline = 2;
  const BlockRange* ext_ = nullptr;  ///< arena-backed when size_ > kInline
  BlockRange inline_[kInline]{};
  i64 size_ = 0;
};

/// Build a BlockSet from an arbitrary list of distinct ids: sorts them and
/// coalesces consecutive runs, joining circularly across the B-1/0 boundary
/// (a sorted run ending at B-1 and one starting at 0 become one wrapped
/// range). Ranges that don't fit inline are interned into `arena`, which must
/// outlive the returned set (generators pass their schedule's arena).
[[nodiscard]] BlockSet blockset_from_ids(std::vector<i64> ids, i64 B,
                                         ScheduleArena& arena);

}  // namespace bine::sched
