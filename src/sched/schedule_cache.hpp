#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sched/compiled.hpp"
#include "sched/schedule.hpp"

/// Size-independent schedule memoization: the generation fast path.
///
/// Schedule *structure* -- steps, peers, block sets, segment counts -- is a
/// pure function of (algorithm, collective, p, root, torus_dims); message
/// size only scales per-op byte counts through `Schedule::bytes_of`'s block
/// arithmetic (see the invariant note in schedule.hpp). The evaluation grids
/// exploit none of that when every (collective, algorithm, nodes, size) cell
/// regenerates its BlockSet-heavy schedule from scratch, and with the
/// simulator compiled (PR 1) generation dominates sweep wall time.
///
/// `SizeFreeSchedule` is the memoized artifact: CompiledSchedule's flat SoA
/// op stream with the byte column *abstracted* -- each op instead carries its
/// block ranges (CSR into one owned array) or a full-vector marker, so
/// `resolve_into` can materialize the concrete CompiledSchedule for any
/// (elem_count, elem_size) by computing the bytes column alone (every
/// size-invariant column is shared by span with the resolved schedule; see
/// compiled.hpp). One cached entry therefore serves an entire message-size
/// sweep.
///
/// Beyond the simulation columns, the entry carries an *execution overlay*:
/// every receive-type op (plain recvs included -- the simulation stream drops
/// them) with its block ranges, in the canonical step-major/receiver order.
/// runtime::ExecPlan::from_size_free consumes it, which is how the runtime
/// executor and the verification harness run off the same cached artifact as
/// the simulator (DESIGN.md has the full pipeline).
///
/// Safety over faith, two layers:
///
///   * `from()` verifies that re-deriving every op's bytes from its blocks
///     reproduces the generator's baked bytes exactly; any op that fails
///     (e.g. a coarse-mode schedule carrying bytes without blocks, or a
///     local op moving something other than the full vector) marks the
///     entry `size_independent = false`.
///   * `ScheduleCache::get` builds the schedule at TWO canonical element
///     counts -- one tiny, one ~256 MiB-vector sized, chosen with different
///     divisibility patterns -- and demotes the entry unless the resulting
///     size-free structures are identical. A generator whose *structure*
///     branches on elem_count (a size-threshold algorithm switch, a
///     parity-dependent segmentation) is caught unless it branches only
///     beyond the large probe.
///
/// Demoted entries make callers (harness::Runner) fall back to fresh
/// generation for that algorithm. For entries that pass, resolution at any
/// size runs the *same* integer arithmetic `add_exchange` would, so cached
/// and uncached paths are bit-exact -- which the parity tests assert.
namespace bine::sched {

/// Size-independent compiled form of one schedule (see file comment).
struct SizeFreeSchedule {
  i64 p = 0;
  i64 nblocks = 0;
  BlockSpace space = BlockSpace::per_vector;
  size_t steps = 0;
  /// False when build-time verification failed; resolve_into must not be
  /// used (callers fall back to fresh generation).
  bool size_independent = true;

  /// CSR over the op arrays: ops of step t are [step_begin[t], step_begin[t+1]).
  std::vector<std::uint32_t> step_begin;

  // One entry per op, in CompiledSchedule order (plain recvs dropped).
  std::vector<OpKind> kind;
  std::vector<std::int32_t> rank;
  std::vector<std::int32_t> peer;
  std::vector<std::int32_t> extra_segments;

  /// Byte resolution: op i covers ranges [block_begin[i], block_begin[i+1])
  /// of `ranges` -- an owned copy, so entries outlive generator arenas --
  /// unless full_vector[i], in which case it covers the whole vector
  /// (the only byte pattern local_perm ops use).
  std::vector<std::uint32_t> block_begin;
  std::vector<BlockRange> ranges;
  std::vector<std::uint8_t> full_vector;

  // --- execution overlay ---------------------------------------------------
  // Every receive-type op (recv AND recv_reduce), canonical step-major /
  // receiver-grouped order with the receiver's op order preserved -- the
  // ordering the reference executor's delivery semantics depend on. Plain
  // recvs exist only here; recv_reduce ops appear both here and in the
  // simulation stream above.
  std::vector<std::uint32_t> recv_step_begin;  ///< CSR per step
  std::vector<std::int32_t> recv_rank;         ///< receiving rank
  std::vector<std::int32_t> recv_peer;         ///< sending rank
  std::vector<std::uint8_t> recv_reduce;       ///< 1 = recv_reduce
  std::vector<std::uint32_t> recv_block_begin; ///< CSR into recv_ranges
  std::vector<BlockRange> recv_ranges;

  /// Type-erased slot for derived artifacts a higher layer caches on the
  /// entry (runtime::ExecPlan's finalized skeleton -- the execution analogue
  /// of resolve_into's span sharing). Built once under the slot mutex on
  /// first use, then shared by every later hit; the sched layer stays
  /// runtime-agnostic. Held by unique_ptr so the entry remains movable;
  /// mutable because entries are only ever reached as shared_ptr<const>.
  struct DerivedSlot {
    std::mutex mutex;
    std::shared_ptr<const void> value;
  };
  mutable std::unique_ptr<DerivedSlot> derived = std::make_unique<DerivedSlot>();
  /// Second derived slot, used by the simulator's candidate-batched engine
  /// for its compiled op/byte-row form (net::simulate_candidates). Separate
  /// from `derived` so the runtime skeleton and the simulation compile can
  /// both live on one entry without evicting each other.
  mutable std::unique_ptr<DerivedSlot> sim_derived = std::make_unique<DerivedSlot>();

  [[nodiscard]] size_t num_ops() const noexcept { return kind.size(); }
  [[nodiscard]] size_t num_recv_ops() const noexcept { return recv_rank.size(); }

  /// Compile `s` into size-free form, verifying byte resolvability against
  /// the bytes `s` was generated with.
  [[nodiscard]] static SizeFreeSchedule from(const Schedule& s);

  /// True when `a` and `b` describe the identical structure (everything but
  /// the sizes they were built at).
  [[nodiscard]] static bool same_structure(const SizeFreeSchedule& a,
                                           const SizeFreeSchedule& b);

  /// Materialize the CompiledSchedule for a concrete vector config, reusing
  /// `out`'s byte-column capacity. Only the bytes column is computed; every
  /// size-invariant column is shared by span with `self`, which `out` keeps
  /// alive (hence the shared handle rather than a plain `this` call).
  /// Requires size_independent.
  static void resolve_into(std::shared_ptr<const SizeFreeSchedule> self,
                           i64 elem_count, i64 elem_size, CompiledSchedule& out);
};

/// Key of one memoized schedule: the registry algorithm name plus every
/// Config knob that shapes structure. elem_count/elem_size are deliberately
/// absent -- that is the point of the cache. `fault_epoch` partitions the
/// table by fault model (fault::FaultSpec::fingerprint(); 0 = healthy): a
/// Runner whose fault spec changes -- or two Runners with different specs in
/// one process -- can never be served a schedule cached under another
/// machine state, and the fault-free key is unchanged.
struct ScheduleKey {
  Collective coll{};
  std::string algorithm;
  i64 p = 0;
  Rank root = 0;
  std::vector<i64> torus_dims;
  u64 fault_epoch = 0;
};

/// Non-owning view of a ScheduleKey, so the cache hit path can look an entry
/// up straight from a Runner's (name, config) without materializing the
/// string/vector copies a ScheduleKey costs. Only a miss pays for the owned
/// key.
struct ScheduleKeyView {
  Collective coll{};
  std::string_view algorithm;
  i64 p = 0;
  Rank root = 0;
  std::span<const i64> torus_dims;
  u64 fault_epoch = 0;

  ScheduleKeyView() = default;
  ScheduleKeyView(Collective c, std::string_view algo, i64 ranks, Rank rt,
                  std::span<const i64> dims, u64 epoch = 0)
      : coll(c), algorithm(algo), p(ranks), root(rt), torus_dims(dims),
        fault_epoch(epoch) {}
  ScheduleKeyView(const ScheduleKey& k)  // NOLINT(google-explicit-constructor)
      : coll(k.coll), algorithm(k.algorithm), p(k.p), root(k.root),
        torus_dims(k.torus_dims), fault_epoch(k.fault_epoch) {}

  [[nodiscard]] ScheduleKey materialize() const {
    return {coll, std::string(algorithm), p, root,
            std::vector<i64>(torus_dims.begin(), torus_dims.end()), fault_epoch};
  }
};

/// Transparent strict-weak order over ScheduleKey/ScheduleKeyView mixes:
/// lookups with a view never construct a key.
struct ScheduleKeyLess {
  using is_transparent = void;
  [[nodiscard]] static bool less(const ScheduleKeyView& a, const ScheduleKeyView& b) {
    if (a.coll != b.coll) return a.coll < b.coll;
    if (a.p != b.p) return a.p < b.p;
    if (a.root != b.root) return a.root < b.root;
    if (a.fault_epoch != b.fault_epoch) return a.fault_epoch < b.fault_epoch;
    if (const int c = a.algorithm.compare(b.algorithm); c != 0) return c < 0;
    return std::lexicographical_compare(a.torus_dims.begin(), a.torus_dims.end(),
                                        b.torus_dims.begin(), b.torus_dims.end());
  }
  template <class A, class B>
  [[nodiscard]] bool operator()(const A& a, const B& b) const {
    return less(ScheduleKeyView(a), ScheduleKeyView(b));
  }
};

[[nodiscard]] inline bool operator<(const ScheduleKey& a, const ScheduleKey& b) {
  return ScheduleKeyLess::less(a, b);
}

/// Thread-safe memo table. Concurrent misses on the same key may both run
/// `build` (outside the lock, so workers never serialize on generation); the
/// generators are pure functions of the key, so whichever entry lands first
/// is identical to the loser's -- sweep output stays deterministic for any
/// BINE_THREADS. Hits take only a shared lock (reads never contend with each
/// other) and hit/miss counters are atomics, so the steady-state sweep path
/// is copy- and contention-free.
class ScheduleCache {
 public:
  /// Generator hook: build the schedule with the given elem_count (every
  /// other config knob fixed by the key). Called twice on a miss, at the two
  /// canonical verification sizes.
  using Builder = std::function<Schedule(i64 elem_count)>;

  /// The cached entry for `key`, building (and verifying) it on first use.
  /// Exceptions from `build` propagate and cache nothing.
  [[nodiscard]] std::shared_ptr<const SizeFreeSchedule> get(const ScheduleKeyView& key,
                                                            const Builder& build);
  [[nodiscard]] std::shared_ptr<const SizeFreeSchedule> get(const ScheduleKey& key,
                                                            const Builder& build) {
    return get(ScheduleKeyView(key), build);
  }

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
  };
  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  mutable std::shared_mutex mutex_;
  std::map<ScheduleKey, std::shared_ptr<const SizeFreeSchedule>, ScheduleKeyLess>
      entries_;
  mutable std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
};

/// The process-wide cache instance. Schedule structure is a pure function of
/// the key -- no Runner-, profile- or topology-specific state leaks into it --
/// so every Runner (and the table benches' many Runners) shares one table:
/// the second Runner in a process starts hot. Runners use this instance by
/// default; `Runner::use_private_schedule_cache()` opts a runner out (cold
/// per-instance timing, test isolation).
[[nodiscard]] ScheduleCache& process_schedule_cache();

}  // namespace bine::sched
