#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/compiled.hpp"
#include "sched/schedule.hpp"

/// Size-independent schedule memoization: the generation fast path.
///
/// Schedule *structure* -- steps, peers, block sets, segment counts -- is a
/// pure function of (algorithm, collective, p, root, torus_dims); message
/// size only scales per-op byte counts through `Schedule::bytes_of`'s block
/// arithmetic (see the invariant note in schedule.hpp). The evaluation grids
/// exploit none of that when every (collective, algorithm, nodes, size) cell
/// regenerates its BlockSet-heavy schedule from scratch, and with the
/// simulator compiled (PR 1) generation dominates sweep wall time.
///
/// `SizeFreeSchedule` is the memoized artifact: CompiledSchedule's flat SoA
/// op stream with the byte column *abstracted* -- each op instead carries its
/// block ranges (CSR into one owned array) or a full-vector marker, so
/// `resolve_into` can materialize the concrete CompiledSchedule for any
/// (elem_count, elem_size) in one linear pass. One cached entry therefore
/// serves an entire message-size sweep.
///
/// Safety over faith, two layers:
///
///   * `from()` verifies that re-deriving every op's bytes from its blocks
///     reproduces the generator's baked bytes exactly; any op that fails
///     (e.g. a coarse-mode schedule carrying bytes without blocks, or a
///     local op moving something other than the full vector) marks the
///     entry `size_independent = false`.
///   * `ScheduleCache::get` builds the schedule at TWO canonical element
///     counts -- one tiny, one ~256 MiB-vector sized, chosen with different
///     divisibility patterns -- and demotes the entry unless the resulting
///     size-free structures are identical. A generator whose *structure*
///     branches on elem_count (a size-threshold algorithm switch, a
///     parity-dependent segmentation) is caught unless it branches only
///     beyond the large probe.
///
/// Demoted entries make callers (harness::Runner) fall back to fresh
/// generation for that algorithm. For entries that pass, resolution at any
/// size runs the *same* integer arithmetic `add_exchange` would, so cached
/// and uncached paths are bit-exact -- which the parity tests assert.
namespace bine::sched {

/// Size-independent compiled form of one schedule (see file comment).
struct SizeFreeSchedule {
  i64 p = 0;
  i64 nblocks = 0;
  BlockSpace space = BlockSpace::per_vector;
  size_t steps = 0;
  /// False when build-time verification failed; resolve_into must not be
  /// used (callers fall back to fresh generation).
  bool size_independent = true;

  /// CSR over the op arrays: ops of step t are [step_begin[t], step_begin[t+1]).
  std::vector<std::uint32_t> step_begin;

  // One entry per op, in CompiledSchedule order (plain recvs dropped).
  std::vector<OpKind> kind;
  std::vector<std::int32_t> rank;
  std::vector<std::int32_t> peer;
  std::vector<std::int32_t> extra_segments;

  /// Byte resolution: op i covers ranges [block_begin[i], block_begin[i+1])
  /// of `ranges` -- an owned copy, so entries outlive generator arenas --
  /// unless full_vector[i], in which case it covers the whole vector
  /// (the only byte pattern local_perm ops use).
  std::vector<std::uint32_t> block_begin;
  std::vector<BlockRange> ranges;
  std::vector<std::uint8_t> full_vector;

  [[nodiscard]] size_t num_ops() const noexcept { return kind.size(); }

  /// Compile `s` into size-free form, verifying byte resolvability against
  /// the bytes `s` was generated with.
  [[nodiscard]] static SizeFreeSchedule from(const Schedule& s);

  /// True when `a` and `b` describe the identical structure (everything but
  /// the sizes they were built at).
  [[nodiscard]] static bool same_structure(const SizeFreeSchedule& a,
                                           const SizeFreeSchedule& b);

  /// Materialize the CompiledSchedule for a concrete vector config, reusing
  /// `out`'s array capacity (same contract as CompiledSchedule::lower_into).
  /// Requires size_independent.
  void resolve_into(i64 elem_count, i64 elem_size, CompiledSchedule& out) const;
};

/// Key of one memoized schedule: the registry algorithm name plus every
/// Config knob that shapes structure. elem_count/elem_size are deliberately
/// absent -- that is the point of the cache.
struct ScheduleKey {
  Collective coll{};
  std::string algorithm;
  i64 p = 0;
  Rank root = 0;
  std::vector<i64> torus_dims;

  friend bool operator<(const ScheduleKey& a, const ScheduleKey& b) {
    if (a.coll != b.coll) return a.coll < b.coll;
    if (a.p != b.p) return a.p < b.p;
    if (a.root != b.root) return a.root < b.root;
    if (a.algorithm != b.algorithm) return a.algorithm < b.algorithm;
    return a.torus_dims < b.torus_dims;
  }
};

/// Thread-safe memo table. Concurrent misses on the same key may both run
/// `build` (outside the lock, so workers never serialize on generation); the
/// generators are pure functions of the key, so whichever entry lands first
/// is identical to the loser's -- sweep output stays deterministic for any
/// BINE_THREADS.
class ScheduleCache {
 public:
  /// Generator hook: build the schedule with the given elem_count (every
  /// other config knob fixed by the key). Called twice on a miss, at the two
  /// canonical verification sizes.
  using Builder = std::function<Schedule(i64 elem_count)>;

  /// The cached entry for `key`, building (and verifying) it on first use.
  /// Exceptions from `build` propagate and cache nothing.
  [[nodiscard]] std::shared_ptr<const SizeFreeSchedule> get(const ScheduleKey& key,
                                                            const Builder& build);

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
  };
  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<ScheduleKey, std::shared_ptr<const SizeFreeSchedule>> entries_;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace bine::sched
