#include "sched/schedule_cache.hpp"

#include <algorithm>

namespace bine::sched {

SizeFreeSchedule SizeFreeSchedule::from(const Schedule& s) {
  SizeFreeSchedule out;
  out.p = s.p;
  out.nblocks = s.nblocks;
  out.space = s.space;
  out.steps = s.num_steps();

  size_t total_ops = 0;
  for (const auto& rank_steps : s.steps)
    for (const RankStep& st : rank_steps) total_ops += st.ops.size();
  out.kind.reserve(total_ops);
  out.rank.reserve(total_ops);
  out.peer.reserve(total_ops);
  out.extra_segments.reserve(total_ops);
  out.block_begin.reserve(total_ops + 1);
  out.full_vector.reserve(total_ops);
  out.step_begin.reserve(out.steps + 1);
  out.step_begin.push_back(0);
  out.block_begin.push_back(0);

  const i64 n = s.total_elems();

  // Shared lowering-order visitor (compiled.hpp): the resolved IR must be
  // indistinguishable from a fresh lower().
  for_each_lowered_op(
      s, out.steps,
      [&](Rank r, const Op& op) {
        out.kind.push_back(op.kind);
        out.rank.push_back(static_cast<std::int32_t>(r));
        out.peer.push_back(static_cast<std::int32_t>(op.peer));
        out.extra_segments.push_back(lowered_extra_segments(op));

        // Byte resolvability check (see header): blocks must reproduce the
        // baked bytes, or the op must move the full vector (local_perm).
        const auto rs = op.blocks.ranges();
        const i64 from_blocks = ranges_elem_count(rs, n, s.nblocks) * s.elem_size;
        bool full = false;
        if (op.kind == OpKind::local_perm && rs.empty() && op.bytes == n * s.elem_size &&
            op.bytes != 0) {
          full = true;
        } else if (from_blocks != op.bytes) {
          out.size_independent = false;
        }
        out.full_vector.push_back(full ? 1 : 0);
        out.ranges.insert(out.ranges.end(), rs.begin(), rs.end());
        out.block_begin.push_back(static_cast<std::uint32_t>(out.ranges.size()));
      },
      [&](size_t) { out.step_begin.push_back(static_cast<std::uint32_t>(out.kind.size())); });
  return out;
}

void SizeFreeSchedule::resolve_into(i64 elem_count, i64 elem_size,
                                    CompiledSchedule& out) const {
  assert(size_independent && "entry failed verification; use fresh generation");
  out.p = p;
  out.steps = steps;
  out.step_begin.assign(step_begin.begin(), step_begin.end());
  out.kind.assign(kind.begin(), kind.end());
  out.rank.assign(rank.begin(), rank.end());
  out.peer.assign(peer.begin(), peer.end());
  out.extra_segments.assign(extra_segments.begin(), extra_segments.end());

  const i64 n = space == BlockSpace::pairwise ? elem_count * p : elem_count;
  const i64 full_bytes = n * elem_size;
  const size_t ops = num_ops();
  out.bytes.resize(ops);
  for (size_t i = 0; i < ops; ++i) {
    if (full_vector[i]) {
      out.bytes[i] = full_bytes;
    } else {
      const std::span<const BlockRange> rs{ranges.data() + block_begin[i],
                                           ranges.data() + block_begin[i + 1]};
      out.bytes[i] = ranges_elem_count(rs, n, nblocks) * elem_size;
    }
  }
}

bool SizeFreeSchedule::same_structure(const SizeFreeSchedule& a,
                                      const SizeFreeSchedule& b) {
  return a.p == b.p && a.nblocks == b.nblocks && a.space == b.space &&
         a.steps == b.steps && a.step_begin == b.step_begin && a.kind == b.kind &&
         a.rank == b.rank && a.peer == b.peer &&
         a.extra_segments == b.extra_segments && a.block_begin == b.block_begin &&
         a.ranges == b.ranges && a.full_vector == b.full_vector;
}

std::shared_ptr<const SizeFreeSchedule> ScheduleCache::get(const ScheduleKey& key,
                                                           const Builder& build) {
  {
    const std::scoped_lock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Build outside the lock: generation is the expensive part and a pure
  // function of the key, so racing builders produce identical entries.
  //
  // Two canonical probes (see header): the smallest elem_count callers ever
  // resolve (harness::Runner clamps to p, one element per block -- probing
  // below the resolvable range would verify nothing, above it would miss
  // small-vector structure branches) and a ~256 MiB-of-int32 vector with a
  // non-divisible remainder pattern that keeps the byte-resolvability check
  // discriminating. Generation cost doesn't depend on elem_count, so the
  // second probe costs one extra generation per miss -- amortized across
  // every size of the sweep.
  const i64 small_probe = std::max<i64>(1, key.p);
  const i64 large_probe = (i64{1} << 26) + 5 * key.p + 2;
  SizeFreeSchedule entry = SizeFreeSchedule::from(build(small_probe));
  if (entry.size_independent) {
    const SizeFreeSchedule probe = SizeFreeSchedule::from(build(large_probe));
    if (!probe.size_independent || !SizeFreeSchedule::same_structure(entry, probe))
      entry.size_independent = false;
  }
  auto built = std::make_shared<const SizeFreeSchedule>(std::move(entry));
  const std::scoped_lock lock(mutex_);
  ++misses_;
  const auto [it, inserted] = entries_.emplace(key, std::move(built));
  return it->second;
}

ScheduleCache::Stats ScheduleCache::stats() const {
  const std::scoped_lock lock(mutex_);
  return {hits_, misses_};
}

void ScheduleCache::clear() {
  const std::scoped_lock lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace bine::sched
