#include "sched/schedule_cache.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace bine::sched {

SizeFreeSchedule SizeFreeSchedule::from(const Schedule& s) {
  SizeFreeSchedule out;
  out.p = s.p;
  out.nblocks = s.nblocks;
  out.space = s.space;
  out.steps = s.num_steps();

  size_t total_ops = 0;
  for (const auto& rank_steps : s.steps)
    for (const RankStep& st : rank_steps) total_ops += st.ops.size();
  out.kind.reserve(total_ops);
  out.rank.reserve(total_ops);
  out.peer.reserve(total_ops);
  out.extra_segments.reserve(total_ops);
  out.block_begin.reserve(total_ops + 1);
  out.full_vector.reserve(total_ops);
  out.step_begin.reserve(out.steps + 1);
  out.step_begin.push_back(0);
  out.block_begin.push_back(0);
  out.recv_step_begin.reserve(out.steps + 1);
  out.recv_step_begin.push_back(0);
  out.recv_block_begin.push_back(0);

  const i64 n = s.total_elems();

  // Byte resolvability check (see header): blocks must reproduce the baked
  // bytes, or the op must move the full vector (local_perm). Applied to the
  // simulation stream AND the execution overlay, so a schedule that resolves
  // for the cost model but not for the executor can never be cached.
  const auto resolvable = [&](const Op& op, bool* full) {
    const auto rs = op.blocks.ranges();
    const i64 from_blocks = ranges_elem_count(rs, n, s.nblocks) * s.elem_size;
    if (op.kind == OpKind::local_perm && rs.empty() && op.bytes == n * s.elem_size &&
        op.bytes != 0) {
      if (full) *full = true;
      return true;
    }
    return from_blocks == op.bytes;
  };

  // Shared canonical-order visitor (compiled.hpp): the resolved IR must be
  // indistinguishable from a fresh lower(), and the execution overlay must
  // replay the reference executor's delivery order.
  for_each_op_step_major(
      s, out.steps,
      [&](Rank r, const Op& op) {
        const bool is_recv_kind =
            op.kind == OpKind::recv || op.kind == OpKind::recv_reduce;
        if (is_recv_kind) {
          out.recv_rank.push_back(static_cast<std::int32_t>(r));
          out.recv_peer.push_back(static_cast<std::int32_t>(op.peer));
          out.recv_reduce.push_back(op.kind == OpKind::recv_reduce ? 1 : 0);
          const auto rs = op.blocks.ranges();
          out.recv_ranges.insert(out.recv_ranges.end(), rs.begin(), rs.end());
          out.recv_block_begin.push_back(
              static_cast<std::uint32_t>(out.recv_ranges.size()));
          if (!resolvable(op, nullptr)) out.size_independent = false;
        }
        if (op.kind == OpKind::recv) return;  // dropped from the simulation stream

        out.kind.push_back(op.kind);
        out.rank.push_back(static_cast<std::int32_t>(r));
        out.peer.push_back(static_cast<std::int32_t>(op.peer));
        out.extra_segments.push_back(lowered_extra_segments(op));

        const auto rs = op.blocks.ranges();
        bool full = false;
        if (!resolvable(op, &full)) out.size_independent = false;
        out.full_vector.push_back(full ? 1 : 0);
        out.ranges.insert(out.ranges.end(), rs.begin(), rs.end());
        out.block_begin.push_back(static_cast<std::uint32_t>(out.ranges.size()));
      },
      [&](size_t) {
        out.step_begin.push_back(static_cast<std::uint32_t>(out.kind.size()));
        out.recv_step_begin.push_back(static_cast<std::uint32_t>(out.recv_rank.size()));
      });
  return out;
}

void SizeFreeSchedule::resolve_into(std::shared_ptr<const SizeFreeSchedule> self,
                                    i64 elem_count, i64 elem_size,
                                    CompiledSchedule& out) {
  assert(self);
  assert(self->size_independent && "entry failed verification; use fresh generation");
  out.p = self->p;
  out.steps = self->steps;

  // Size-invariant columns are shared straight from the entry: a resolve
  // touches only the bytes column.
  out.step_begin = self->step_begin;
  out.kind = self->kind;
  out.rank = self->rank;
  out.peer = self->peer;
  out.extra_segments = self->extra_segments;

  const i64 n = self->space == BlockSpace::pairwise ? elem_count * self->p : elem_count;
  const i64 full_bytes = n * elem_size;
  const size_t ops = self->num_ops();
  out.own.bytes.resize(ops);
  for (size_t i = 0; i < ops; ++i) {
    if (self->full_vector[i]) {
      out.own.bytes[i] = full_bytes;
    } else {
      const std::span<const BlockRange> rs{
          self->ranges.data() + self->block_begin[i],
          self->ranges.data() + self->block_begin[i + 1]};
      out.own.bytes[i] = ranges_elem_count(rs, n, self->nblocks) * elem_size;
    }
  }
  out.bytes = out.own.bytes;
  out.keepalive = std::move(self);
}

bool SizeFreeSchedule::same_structure(const SizeFreeSchedule& a,
                                      const SizeFreeSchedule& b) {
  return a.p == b.p && a.nblocks == b.nblocks && a.space == b.space &&
         a.steps == b.steps && a.step_begin == b.step_begin && a.kind == b.kind &&
         a.rank == b.rank && a.peer == b.peer &&
         a.extra_segments == b.extra_segments && a.block_begin == b.block_begin &&
         a.ranges == b.ranges && a.full_vector == b.full_vector &&
         a.recv_step_begin == b.recv_step_begin && a.recv_rank == b.recv_rank &&
         a.recv_peer == b.recv_peer && a.recv_reduce == b.recv_reduce &&
         a.recv_block_begin == b.recv_block_begin && a.recv_ranges == b.recv_ranges;
}

std::shared_ptr<const SizeFreeSchedule> ScheduleCache::get(const ScheduleKeyView& key,
                                                           const Builder& build) {
  {
    const std::shared_lock lock(mutex_);
    const auto it = entries_.find(key);  // transparent: no ScheduleKey built
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Build outside the lock: generation is the expensive part and a pure
  // function of the key, so racing builders produce identical entries.
  //
  // Two canonical probes (see header): the smallest elem_count callers ever
  // resolve (harness::Runner clamps to p, one element per block -- probing
  // below the resolvable range would verify nothing, above it would miss
  // small-vector structure branches) and a ~256 MiB-of-int32 vector with a
  // non-divisible remainder pattern that keeps the byte-resolvability check
  // discriminating. Generation cost doesn't depend on elem_count, so the
  // second probe costs one extra generation per miss -- amortized across
  // every size of the sweep.
  const i64 small_probe = std::max<i64>(1, key.p);
  const i64 large_probe = (i64{1} << 26) + 5 * key.p + 2;
  SizeFreeSchedule entry = SizeFreeSchedule::from(build(small_probe));
  if (entry.size_independent) {
    const SizeFreeSchedule probe = SizeFreeSchedule::from(build(large_probe));
    if (!probe.size_independent || !SizeFreeSchedule::same_structure(entry, probe))
      entry.size_independent = false;
  }
  auto built = std::make_shared<const SizeFreeSchedule>(std::move(entry));
  const std::unique_lock lock(mutex_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  const auto [it, inserted] = entries_.emplace(key.materialize(), std::move(built));
  return it->second;
}

ScheduleCache::Stats ScheduleCache::stats() const {
  return {hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed)};
}

void ScheduleCache::clear() {
  const std::unique_lock lock(mutex_);
  entries_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

ScheduleCache& process_schedule_cache() {
  static ScheduleCache cache;
  return cache;
}

}  // namespace bine::sched
