#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sched/schedule.hpp"

/// Flat schedule IR for the simulator hot path.
///
/// `Schedule` is built for generation and execution: per-rank vectors of
/// steps of `Op`s carrying full `BlockSet`s. The cost model needs none of
/// that structure -- only (step, rank, kind, peer, bytes, segments) -- so
/// `CompiledSchedule::lower()` flattens the nested representation once into
/// contiguous structure-of-arrays storage the simulator streams through:
///
///   * ops are sorted by (step, rank, original op order) and indexed by a
///     per-step CSR range, so one pass over a step touches memory linearly;
///   * `extra_segments` pre-computes max(0, segments - 1), the only form the
///     cost model ever uses;
///   * plain `recv` ops are dropped entirely: the cost model charges message
///     latency on the sender side and a recv moves no wire bytes, so they
///     would only dilute the op stream (recv_reduce is kept -- it costs
///     reduction bandwidth);
///   * ragged schedules (ranks with differing step counts) lower correctly:
///     missing trailing steps contribute no ops.
///
/// Column storage is exposed as read-only spans. On the `lower`/`lower_into`
/// path they point at the schedule's own arrays (`own`); on the
/// `SizeFreeSchedule::resolve_into` path every size-invariant column aliases
/// the shared cache entry directly (kept alive via `keepalive`) and only the
/// `bytes` column -- the one thing message size changes -- is materialized.
/// That makes a cache-hit resolve O(bytes column), not O(all columns).
///
/// Because the spans may alias `own`, a CompiledSchedule is movable but not
/// copyable (a copy would leave the new spans aliasing the old storage).
///
/// Lowering costs one traversal of the schedule and is amortized across the
/// simulator's per-step work; `net::simulate`/`net::measure_traffic` consume
/// this IR together with a `net::RouteCache` (see route_cache.hpp).
///
/// Sweeps rarely call `lower` at all any more: sched::ScheduleCache
/// (schedule_cache.hpp) memoizes the size-independent part of this IR per
/// (algorithm, collective, p, knobs) and re-materializes the `bytes` column
/// per message size, skipping generation and lowering for every cache hit.
/// The runtime executor consumes the same cached artifact through its own
/// flat IR, runtime::ExecPlan (runtime/exec_plan.hpp) -- see DESIGN.md for
/// the full pipeline.
namespace bine::sched {

struct CompiledSchedule {
  i64 p = 0;
  size_t steps = 0;

  /// CSR over the op arrays: ops of step t are [step_begin[t], step_begin[t+1]).
  std::span<const std::uint32_t> step_begin;

  // One entry per op, sorted by (step, issuing rank, op order within rank).
  std::span<const OpKind> kind;
  std::span<const std::int32_t> rank;   ///< issuing rank
  std::span<const std::int32_t> peer;   ///< peer rank (-1 for local_perm)
  std::span<const i64> bytes;           ///< wire bytes (local_perm: bytes moved)
  std::span<const std::int32_t> extra_segments;  ///< max(0, segments - 1)

  CompiledSchedule() = default;
  CompiledSchedule(CompiledSchedule&&) noexcept = default;
  CompiledSchedule& operator=(CompiledSchedule&&) noexcept = default;
  CompiledSchedule(const CompiledSchedule&) = delete;
  CompiledSchedule& operator=(const CompiledSchedule&) = delete;

  [[nodiscard]] size_t num_ops() const noexcept { return kind.size(); }

  /// Flatten `s` into SoA form. Pure; does not require normalized steps.
  [[nodiscard]] static CompiledSchedule lower(const Schedule& s);

  /// Flatten `s` into `out`, reusing out's array capacity. Sweeps lower one
  /// schedule per simulation, and for large schedules the SoA arrays cross
  /// glibc's mmap threshold -- re-allocating them per cell costs more kernel
  /// page-fault time than the lowering itself. Keep one scratch
  /// CompiledSchedule per worker and the arrays stay resident.
  static void lower_into(const Schedule& s, CompiledSchedule& out);

  /// Owned backing storage. `lower_into` fills every array; `resolve_into`
  /// fills only `bytes` (the rest alias the cache entry through `keepalive`).
  struct Storage {
    std::vector<std::uint32_t> step_begin;
    std::vector<OpKind> kind;
    std::vector<std::int32_t> rank;
    std::vector<std::int32_t> peer;
    std::vector<i64> bytes;
    std::vector<std::int32_t> extra_segments;
  } own;
  /// Keeps span targets alive when columns alias a shared cache entry.
  std::shared_ptr<const void> keepalive;
};

/// Visit every op of `s` in the canonical flat order: step-major, ranks
/// increasing within a step, original per-rank op order, ragged ranks
/// contributing nothing past their last step. Calls `op(rank, o)` per op and
/// `step_end(t)` after each step. This is the one definition of IR order,
/// shared by the simulation lowering below and the execution-overlay build in
/// SizeFreeSchedule::from / runtime::ExecPlan::lower.
template <class OpFn, class StepEndFn>
void for_each_op_step_major(const Schedule& s, size_t steps, OpFn&& op,
                            StepEndFn&& step_end) {
  for (size_t t = 0; t < steps; ++t) {
    for (Rank r = 0; r < s.p; ++r) {
      const auto& rank_steps = s.steps[static_cast<size_t>(r)];
      if (t >= rank_steps.size()) continue;
      for (const Op& o : rank_steps[t].ops) op(r, o);
    }
    step_end(t);
  }
}

/// The simulation lowering order: the canonical order above with plain recvs
/// dropped (cost-free in the model). SizeFreeSchedule::from routes ops
/// through the same filter so its cached IR is indistinguishable from a
/// fresh lower.
template <class OpFn, class StepEndFn>
void for_each_lowered_op(const Schedule& s, size_t steps, OpFn&& op,
                         StepEndFn&& step_end) {
  for_each_op_step_major(
      s, steps,
      [&](Rank r, const Op& o) {
        if (o.kind == OpKind::recv) return;
        op(r, o);
      },
      step_end);
}

/// The `extra_segments` column's formula, in one place for the same reason.
[[nodiscard]] inline std::int32_t lowered_extra_segments(const Op& op) noexcept {
  return static_cast<std::int32_t>(std::max<i64>(0, op.segments - 1));
}

}  // namespace bine::sched
