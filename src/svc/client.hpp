#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "svc/proto.hpp"
#include "svc/socket.hpp"

namespace bine::exp {
struct SweepPlan;
}

/// Client side of the selection service: one connection, blocking calls,
/// strict request/response ordering (the server's contract). Pipelining is
/// explicit -- select_batch() writes every request in one send and then
/// drains the replies -- because that is the shape that reaches a million
/// lookups per second; per-call select() pays a round trip each.
///
/// Not thread-safe: one Client per thread (connections are cheap; the
/// server is thread-per-connection anyway).
namespace bine::svc {

/// An `error` frame surfaced as an exception, structured code attached.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(to_string(code)) + ": " + message),
        code_(code) {}
  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// A sweep job's full response.
struct SweepReply {
  SweepBegin begin;
  std::string result_json;   ///< the exp::SweepResult::to_json() bytes
  u64 plan_fingerprint = 0;  ///< the server's cache key (sweep_end payload)
};

class Client {
 public:
  [[nodiscard]] static Client connect_to_unix(const std::string& path);
  [[nodiscard]] static Client connect_to_tcp(u16 port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// One lookup, one round trip. Throws ServiceError on an error frame,
  /// std::runtime_error on transport failure.
  [[nodiscard]] SelectReply select(const SelectRequest& req);

  /// Pipelined lookups: all requests in one send, replies drained in order.
  /// Throws ServiceError on the first error reply.
  [[nodiscard]] std::vector<SelectReply> select_batch(
      const std::vector<SelectRequest>& reqs);

  /// Submit a plan (serialized through exp::plan_to_json) and collect the
  /// streamed result. Blocks for the whole job on a cache miss.
  [[nodiscard]] SweepReply sweep(const exp::SweepPlan& plan);
  /// Same, for an already-serialized plan document.
  [[nodiscard]] SweepReply sweep_json(std::string_view plan_json);

  /// The server's stats document (JSON).
  [[nodiscard]] std::string stats();

  /// Ask the server to shut down (it drains and exits its wait()).
  void shutdown_server();

 private:
  explicit Client(Fd fd) : fd_(std::move(fd)) {}

  struct OwnedFrame {
    MsgType type{};
    std::string payload;
  };
  /// Block until one complete frame arrives. Throws on EOF / transport
  /// errors / malformed framing.
  [[nodiscard]] OwnedFrame read_frame();
  /// read_frame, unwrapping `error` frames into ServiceError and checking
  /// the expected type.
  [[nodiscard]] OwnedFrame expect(MsgType type);
  void send_frame(MsgType type, std::string_view payload);

  Fd fd_;
  std::string inbuf_;
};

}  // namespace bine::svc
