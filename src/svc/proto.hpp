#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/types.hpp"
#include "sched/schedule.hpp"

/// Wire protocol of the selection service: length-prefixed binary frames over
/// a byte stream (Unix-domain or TCP-loopback socket).
///
///   frame   := u32 length (LE, = 1 + |payload|) | u8 type | payload
///
/// Integers are little-endian, strings are u16 length + raw bytes. The hot
/// request (select) is fully binary -- ~40 bytes each way, no parsing beyond
/// bounds-checked field reads -- which is what makes a million lookups per
/// second through a socket realistic. The cold requests carry JSON payloads
/// (a canonical exp::SweepPlan in, a SweepResult/stats document out) framed
/// the same way.
///
/// Request/response state machine (per connection, strictly ordered):
///
///   select   -> select_ok | error
///   sweep    -> sweep_begin, sweep_data*, sweep_end | error
///   stats    -> stats_ok | error
///   shutdown -> shutdown_ok (then the server closes)
///
/// Clients may pipeline: the server drains every complete frame in its read
/// buffer and answers them in order with one gathered write (the batching
/// that amortizes syscalls under load). Errors are per-request -- an error
/// frame answers the offending request and the connection stays usable --
/// except `bad_frame`, after which the stream is unsynchronized and the
/// server closes it.
///
/// This header is pure byte codec -- no sockets -- so every encoder/decoder
/// is unit-testable in process.
namespace bine::svc {

/// One byte of frame type. Requests < 0x80, responses >= 0x80.
enum class MsgType : u8 {
  select = 0x01,
  sweep = 0x02,
  stats = 0x03,
  shutdown = 0x04,

  select_ok = 0x81,
  sweep_begin = 0x82,
  sweep_data = 0x83,
  sweep_end = 0x84,
  stats_ok = 0x85,
  shutdown_ok = 0x86,
  error = 0xff,
};
[[nodiscard]] const char* to_string(MsgType t);

/// Structured error codes carried on `error` frames.
enum class ErrorCode : u16 {
  bad_frame = 1,          ///< unparseable frame; the server closes the stream
  unknown_profile = 2,    ///< select named a profile the server does not load
  stale_fingerprint = 3,  ///< profile known, but the client's fingerprint differs
  unknown_collective = 4,
  bad_plan = 5,           ///< sweep payload failed plan_from_json / validation
  internal = 6,           ///< server-side exception (message carries what())
  shutting_down = 7,      ///< request arrived/ran during shutdown drain
};
[[nodiscard]] const char* to_string(ErrorCode c);

/// Frames above this are rejected as bad_frame: large enough for any result
/// stream chunk or plan, small enough that a garbage length prefix cannot
/// make a reader allocate gigabytes.
inline constexpr size_t kMaxFrameBytes = size_t{64} << 20;

/// Malformed bytes (truncated fields, bad tags, oversize frames). The
/// server maps it to ErrorCode::bad_frame; the client surfaces it.
class ProtoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// --- framing ---------------------------------------------------------------

/// Append one complete frame (length prefix included) to `out`.
void put_frame(std::string& out, MsgType type, std::string_view payload);

struct FrameView {
  MsgType type{};
  std::string_view payload;  ///< points into the caller's buffer
};

/// Parse the first complete frame of `buf`. Returns nullopt when the buffer
/// holds only a partial frame (read more); on success sets `consumed` to the
/// frame's full encoded size. Throws ProtoError on an oversize or zero
/// length prefix.
[[nodiscard]] std::optional<FrameView> peek_frame(std::string_view buf,
                                                  size_t& consumed);

/// --- payload codecs --------------------------------------------------------

struct SelectRequest {
  std::string profile;
  u64 fingerprint = 0;  ///< tune::profile_fingerprint the client tuned against
  sched::Collective coll{};
  i64 p = 0;
  i64 bytes = 0;
};
[[nodiscard]] std::string encode_select(const SelectRequest& req);
[[nodiscard]] SelectRequest decode_select(std::string_view payload);

struct SelectReply {
  std::string algorithm;
  bool from_table = false;  ///< false = heuristic fallback answered a miss
};
[[nodiscard]] std::string encode_select_ok(const SelectReply& rep);
[[nodiscard]] SelectReply decode_select_ok(std::string_view payload);
/// Append a complete select_ok frame straight into `out` -- the server's hot
/// path, one reply per lookup: no intermediate payload string, no
/// per-reply allocation beyond the batch buffer's amortized growth.
void put_select_ok_frame(std::string& out, std::string_view algorithm,
                         bool from_table);

/// First frame of a sweep response: what the job cost the server.
struct SweepBegin {
  bool cache_hit = false;  ///< answered from the plan-level result cache
  i64 replayed = 0;        ///< cells answered from the job's journal
  i64 executed = 0;        ///< cells measured for this reply
};
[[nodiscard]] std::string encode_sweep_begin(const SweepBegin& b);
[[nodiscard]] SweepBegin decode_sweep_begin(std::string_view payload);

/// sweep_end payload: the plan fingerprint the result was cached under.
[[nodiscard]] std::string encode_sweep_end(u64 plan_fingerprint);
[[nodiscard]] u64 decode_sweep_end(std::string_view payload);

struct ErrorFrame {
  ErrorCode code{};
  std::string message;
};
[[nodiscard]] std::string encode_error(ErrorCode code, std::string_view message);
[[nodiscard]] ErrorFrame decode_error(std::string_view payload);

}  // namespace bine::svc
