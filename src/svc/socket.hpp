#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "core/types.hpp"

/// Thin POSIX socket wrapper for the selection service: RAII file
/// descriptors, Unix-domain and TCP-loopback listeners/connectors, and the
/// two transfer shapes the protocol needs (drain-what-arrived reads, send-
/// everything writes). No framing knowledge here -- that is svc/proto.hpp --
/// and no threads; the server owns concurrency.
namespace bine::svc {

/// Owning file descriptor. Move-only; close() is idempotent.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();
  /// Half-close the read side (shutdown(SHUT_RD)): in-flight writes still
  /// drain, but blocked accept()/recv() calls wake with EOF -- the server's
  /// graceful-stop lever.
  void shutdown_read();

 private:
  int fd_ = -1;
};

/// Listen on a Unix-domain socket at `path` (an existing socket file is
/// unlinked first -- stale from a killed daemon). Throws std::runtime_error
/// with errno text on failure.
[[nodiscard]] Fd listen_unix(const std::string& path, int backlog = 64);

/// Listen on 127.0.0.1:`port` (port 0 = kernel-assigned; `bound_port`
/// receives the actual port either way).
[[nodiscard]] Fd listen_tcp_loopback(u16 port, u16* bound_port = nullptr);

[[nodiscard]] Fd connect_unix(const std::string& path);
[[nodiscard]] Fd connect_tcp_loopback(u16 port);

/// Accept one connection; an invalid Fd means the listener was shut down or
/// closed (graceful stop), any other failure throws.
[[nodiscard]] Fd accept_one(const Fd& listener);

/// Write all of `data` (retrying short writes / EINTR). Returns false when
/// the peer is gone (EPIPE / ECONNRESET); throws on other errors.
bool send_all(const Fd& fd, std::string_view data);

/// One recv() of whatever is available, appended to `buf`. Returns false on
/// orderly EOF; throws on errors (EINTR retried).
bool recv_some(const Fd& fd, std::string& buf);

}  // namespace bine::svc
