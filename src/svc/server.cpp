#include "svc/server.hpp"

#include <dirent.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "coll/registry.hpp"
#include "exp/plan_codec.hpp"
#include "fault/fault.hpp"
#include "net/pair_route_memo.hpp"
#include "sched/schedule_cache.hpp"

namespace bine::svc {

namespace {

std::string hex16(u64 v) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (int shift = 60; shift >= 0; shift -= 4)
    s += digits[(v >> shift) & 0xf];
  return s;
}

void touch_file(const std::string& path) {
  if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fputs("stalled\n", f);
    std::fflush(f);
    std::fclose(f);
  }
}

/// Does the plan dispatch through a decision table (so the server must
/// inject its live snapshot before running/fingerprinting)?
bool plan_uses_table(const exp::SweepPlan& plan) {
  if (plan.backend == exp::Backend::tuned_dispatch) return true;
  for (const exp::Series& s : plan.series)
    if (s.pick == exp::Series::Pick::tuned) return true;
  return false;
}

/// Stream `data` as sweep_data frames of bounded size: a multi-megabyte
/// result JSON must not become one frame near kMaxFrameBytes.
void put_sweep_data(std::string& out, std::string_view data) {
  constexpr size_t kChunk = 256 * 1024;
  for (size_t off = 0; off < data.size(); off += kChunk)
    put_frame(out, MsgType::sweep_data, data.substr(off, kChunk));
  if (data.empty()) put_frame(out, MsgType::sweep_data, data);
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), tuner_(opts_.tuner) {}

Server::~Server() { stop(); }

bool Server::stopping() const {
  std::lock_guard<std::mutex> lock(stop_mu_);
  return stop_requested_;
}

i64 Server::startup_clean_temps() const {
  i64 removed = 0;
  if (!opts_.table_path.empty())
    removed += fault::clean_stale_temps(opts_.table_path);
  if (opts_.journal_dir.empty()) return removed;
  // Every "<name>.tmp.<pid>.<n>" in the journal directory is a potential
  // stranded AtomicFile temp; derive the artifact names and let
  // clean_stale_temps apply its live-writer probe per artifact.
  DIR* d = ::opendir(opts_.journal_dir.c_str());
  if (d == nullptr) return removed;
  std::set<std::string> targets;
  while (const dirent* e = ::readdir(d)) {
    const std::string_view name = e->d_name;
    const size_t tmp = name.rfind(".tmp.");
    if (tmp == std::string_view::npos || tmp == 0) continue;
    targets.insert(opts_.journal_dir + "/" + std::string(name.substr(0, tmp)));
  }
  ::closedir(d);
  for (const std::string& target : targets)
    removed += fault::clean_stale_temps(target);
  return removed;
}

void Server::start() {
  if (started_) throw std::runtime_error("svc: server already started");
  if (opts_.unix_socket.empty() && !opts_.tcp_port)
    throw std::invalid_argument("svc: no listener configured");
  if (opts_.profiles.empty())
    throw std::invalid_argument("svc: no profiles to serve");

  counters_.stale_temps_cleaned.store(startup_clean_temps(),
                                      std::memory_order_relaxed);

  for (net::SystemProfile& p : opts_.profiles) {
    auto entry = std::make_unique<ProfileEntry>();
    entry->fingerprint = tune::profile_fingerprint(p);
    entry->profile = p;
    if (!profiles_.emplace(p.name, std::move(entry)).second)
      throw std::invalid_argument("svc: duplicate profile name \"" + p.name + "\"");
  }

  if (!opts_.table_path.empty()) {
    tune::LoadReport report;
    if (std::optional<tune::DecisionTable> table =
            tune::DecisionTable::load_or_quarantine(opts_.table_path, &report)) {
      // A stale artifact must never silently serve: a same-named profile
      // tuned for a different machine model is a hard startup error, not a
      // quiet mis-selection.
      for (const auto& [name, fp] : table->profiles()) {
        const auto it = profiles_.find(name);
        if (it != profiles_.end() && it->second->fingerprint != fp)
          throw std::runtime_error(
              "svc: table artifact " + opts_.table_path + " was tuned for a "
              "different \"" + name + "\" (fingerprint mismatch)");
      }
      live_.install(*std::move(table));
    }
  }

  if (!opts_.unix_socket.empty()) unix_listener_ = listen_unix(opts_.unix_socket);
  if (opts_.tcp_port) tcp_listener_ = listen_tcp_loopback(*opts_.tcp_port, &tcp_port_);

  started_ = true;
  if (unix_listener_.valid())
    accept_threads_.emplace_back([this] { accept_loop(&unix_listener_); });
  if (tcp_listener_.valid())
    accept_threads_.emplace_back([this] { accept_loop(&tcp_listener_); });
}

void Server::accept_loop(Fd* listener) {
  for (;;) {
    Fd conn;
    try {
      conn = accept_one(*listener);
    } catch (...) {
      return;
    }
    if (!conn.valid()) return;
    counters_.connections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.emplace_back();
    Connection* c = &conns_.back();
    c->fd = std::move(conn);
    c->thread = std::thread([this, c] { serve_connection(c); });
  }
}

void Server::serve_connection(Connection* conn) {
  std::string inbuf, out;
  for (;;) {
    size_t pos = 0;
    bool close = false;
    std::shared_ptr<const tune::DecisionTable> batch_table;
    for (;;) {
      size_t consumed = 0;
      std::optional<FrameView> frame;
      try {
        frame = peek_frame(std::string_view(inbuf).substr(pos), consumed);
      } catch (const ProtoError& e) {
        counters_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        put_frame(out, MsgType::error,
                  encode_error(ErrorCode::bad_frame, e.what()));
        close = true;
        break;
      }
      if (!frame) break;
      pos += consumed;
      if (!handle_frame(*frame, batch_table, out)) {
        close = true;
        break;
      }
    }
    inbuf.erase(0, pos);
    // The whole drained batch answers with one gathered write: under
    // pipelined load this is what amortizes the syscall per lookup away.
    if (!out.empty()) {
      if (!send_all(conn->fd, out)) break;
      out.clear();
    }
    if (close) break;
    if (!recv_some(conn->fd, inbuf)) break;
  }
  conn->fd.close();
}

bool Server::handle_frame(const FrameView& frame,
                          std::shared_ptr<const tune::DecisionTable>& batch_table,
                          std::string& out) {
  try {
    switch (frame.type) {
      case MsgType::select:
        handle_select(frame.payload, batch_table, out);
        return true;
      case MsgType::sweep:
        handle_sweep(frame.payload, out);
        return true;
      case MsgType::stats:
        if (stopping()) {
          put_frame(out, MsgType::error,
                    encode_error(ErrorCode::shutting_down, "server is draining"));
        } else {
          put_frame(out, MsgType::stats_ok, stats_json());
        }
        return true;
      case MsgType::shutdown:
        put_frame(out, MsgType::shutdown_ok, {});
        request_stop();
        return true;
      default:
        counters_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        put_frame(out, MsgType::error,
                  encode_error(ErrorCode::bad_frame, "unexpected frame type"));
        return false;
    }
  } catch (const ProtoError& e) {
    counters_.bad_frames.fetch_add(1, std::memory_order_relaxed);
    put_frame(out, MsgType::error, encode_error(ErrorCode::bad_frame, e.what()));
    return false;
  } catch (const std::exception& e) {
    put_frame(out, MsgType::error, encode_error(ErrorCode::internal, e.what()));
    return true;
  }
}

void Server::handle_select(std::string_view payload,
                           std::shared_ptr<const tune::DecisionTable>& batch_table,
                           std::string& out) {
  counters_.select_requests.fetch_add(1, std::memory_order_relaxed);
  const SelectRequest req = decode_select(payload);

  const auto it = profiles_.find(req.profile);
  if (it == profiles_.end()) {
    counters_.unknown_profile.fetch_add(1, std::memory_order_relaxed);
    put_frame(out, MsgType::error,
              encode_error(ErrorCode::unknown_profile,
                           "profile \"" + req.profile + "\" is not served"));
    return;
  }
  ProfileEntry& entry = *it->second;
  if (req.fingerprint != entry.fingerprint) {
    counters_.stale_rejected.fetch_add(1, std::memory_order_relaxed);
    put_frame(out, MsgType::error,
              encode_error(ErrorCode::stale_fingerprint,
                           "profile \"" + req.profile +
                               "\" fingerprint mismatch: client has a stale "
                               "machine model"));
    return;
  }
  if (req.p < 1 || req.bytes < 0) {
    put_frame(out, MsgType::error,
              encode_error(ErrorCode::bad_frame, "select: p < 1 or bytes < 0"));
    return;
  }

  if (!batch_table) batch_table = live_.snapshot();
  if (const std::string* algo =
          batch_table->lookup(req.profile, req.coll, req.p, req.bytes)) {
    counters_.select_hits.fetch_add(1, std::memory_order_relaxed);
    put_select_ok_frame(out, *algo, true);
    return;
  }

  counters_.select_misses.fetch_add(1, std::memory_order_relaxed);
  const SelectReply rep = tune_miss(entry, req.coll, req.p, req.bytes);
  // The miss path may have merged a fresh cell; later selects in this batch
  // should see it.
  batch_table = live_.snapshot();
  put_frame(out, MsgType::select_ok, encode_select_ok(rep));
}

SelectReply Server::tune_miss(ProfileEntry& entry, sched::Collective coll, i64 p,
                              i64 bytes) {
  const std::string& name = entry.profile.name;
  if (opts_.tune_on_miss && !stopping()) {
    const tune::CellKey key{name, coll, p};
    std::unique_lock<std::mutex> lock(miss_mu_);
    bool winner = false;
    for (;;) {
      // Re-check under the lock each round: the in-flight build we waited on
      // (or one that finished between our snapshot and here) may have merged
      // our cell already.
      if (const std::string* algo =
              live_.snapshot()->lookup(name, coll, p, bytes))
        return SelectReply{*algo, true};
      if (stopping()) break;
      if (miss_inflight_.insert(key).second) {
        winner = true;
        break;
      }
      miss_cv_.wait(lock);
    }
    if (winner) {
      lock.unlock();
      bool built = false;
      try {
        std::lock_guard<std::mutex> tune_lock(entry.tune_mu);
        if (!entry.runner)
          entry.runner = std::make_unique<harness::Runner>(
              entry.profile, opts_.tuner.spread_placement, opts_.tuner.seed);
        std::vector<tune::SizeInterval> intervals =
            tuner_.tune_cell(*entry.runner, coll, p);
        tune::DecisionTable delta;
        delta.set_profile(name, entry.fingerprint);
        delta.set_cell(tune::CellKey{name, coll, p}, std::move(intervals));
        live_.merge(delta);
        built = true;
      } catch (...) {
        counters_.tune_failures.fetch_add(1, std::memory_order_relaxed);
      }
      if (built) {
        counters_.tune_builds.fetch_add(1, std::memory_order_relaxed);
        persist_table();
      }
      lock.lock();
      miss_inflight_.erase(key);
      miss_cv_.notify_all();
      if (built)
        if (const std::string* algo =
                live_.snapshot()->lookup(name, coll, p, bytes))
          return SelectReply{*algo, true};
    }
  }
  // Tuning off, draining, or the build failed: the paper's heuristic rules
  // still answer -- a selection service degrades, it does not refuse.
  return SelectReply{coll::recommended_algorithm(coll, p, bytes).name, false};
}

void Server::persist_table() {
  if (opts_.table_path.empty()) return;
  std::lock_guard<std::mutex> lock(table_io_mu_);
  live_.snapshot()->save(opts_.table_path);
}

void Server::handle_sweep(std::string_view payload, std::string& out) {
  counters_.sweep_jobs.fetch_add(1, std::memory_order_relaxed);
  if (stopping()) {
    put_frame(out, MsgType::error,
              encode_error(ErrorCode::shutting_down, "server is draining"));
    return;
  }

  exp::SweepPlan plan;
  try {
    plan = exp::plan_from_json(payload);
  } catch (const std::exception& e) {
    put_frame(out, MsgType::error, encode_error(ErrorCode::bad_plan, e.what()));
    return;
  }

  // Tuned plans dispatch through THIS server's table: inject the snapshot
  // before fingerprinting, so the cache key covers the exact table content
  // the job would run against (a later merge changes the fingerprint, and a
  // resubmission correctly re-executes instead of serving stale winners).
  std::shared_ptr<const tune::DecisionTable> table;
  if (plan_uses_table(plan)) {
    table = live_.snapshot();
    plan.table = table.get();
  }
  const u64 fp = exp::plan_fingerprint(plan);

  std::shared_ptr<const std::string> cached;
  {
    std::unique_lock<std::mutex> lock(plan_mu_);
    bool counted_wait = false;
    for (;;) {
      const auto it = plan_cache_.find(fp);
      if (it != plan_cache_.end()) {
        cached = it->second;
        break;
      }
      if (stopping()) {
        put_frame(out, MsgType::error,
                  encode_error(ErrorCode::shutting_down, "server is draining"));
        return;
      }
      if (plan_inflight_.insert(fp).second) break;
      if (!counted_wait) {
        counters_.coalesced_jobs.fetch_add(1, std::memory_order_relaxed);
        counted_wait = true;
      }
      plan_cv_.wait(lock);
    }
  }

  if (cached) {
    counters_.plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
    SweepBegin begin;
    begin.cache_hit = true;
    put_frame(out, MsgType::sweep_begin, encode_sweep_begin(begin));
    put_sweep_data(out, *cached);
    put_frame(out, MsgType::sweep_end, encode_sweep_end(fp));
    return;
  }

  SweepBegin begin;
  std::string json;
  bool ok = false;
  std::string error;
  try {
    ok = execute_plan(std::move(plan), fp, begin, json);
  } catch (const std::exception& e) {
    error = e.what();
  }

  std::shared_ptr<const std::string> result;
  if (ok) result = std::make_shared<const std::string>(std::move(json));
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    if (ok) plan_cache_[fp] = result;
    plan_inflight_.erase(fp);
    plan_cv_.notify_all();
  }

  if (!ok) {
    put_frame(out, MsgType::error,
              error.empty()
                  ? encode_error(ErrorCode::shutting_down,
                                 "job cancelled by shutdown (journal keeps it "
                                 "resumable)")
                  : encode_error(ErrorCode::internal, error));
    return;
  }
  put_frame(out, MsgType::sweep_begin, encode_sweep_begin(begin));
  put_sweep_data(out, *result);
  put_frame(out, MsgType::sweep_end, encode_sweep_end(fp));
}

bool Server::execute_plan(exp::SweepPlan plan, u64 fp, SweepBegin& begin,
                          std::string& json) {
  plan.cancel = &cancel_;
  if (opts_.job_threads > 0) plan.threads = opts_.job_threads;
  if (!opts_.journal_dir.empty()) {
    plan.journal_path = opts_.journal_dir + "/plan_" + hex16(fp) + ".bj";
    if (opts_.stall_after_cells > 0) {
      const std::string marker = plan.journal_path + ".stalled";
      const i64 stall = opts_.stall_after_cells;
      plan.progress = [marker, stall](size_t done, size_t total) {
        if (static_cast<i64>(done) == stall && done < total) {
          touch_file(marker);
          for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
        }
      };
    }
  }

  const size_t total_cells = exp::enumerate_cells(plan).size();
  exp::SweepResult result = exp::run(plan);
  if (result.cancelled) return false;

  begin.cache_hit = false;
  if (plan.journal_path.empty()) {
    begin.replayed = 0;
    begin.executed = static_cast<i64>(total_cells);
  } else {
    begin.replayed = result.journal.replayed;
    begin.executed = result.journal.executed;
  }
  counters_.journal_replayed.fetch_add(result.journal.replayed,
                                       std::memory_order_relaxed);
  counters_.journal_executed.fetch_add(result.journal.executed,
                                       std::memory_order_relaxed);
  counters_.journal_dropped.fetch_add(result.journal.dropped_records,
                                      std::memory_order_relaxed);
  counters_.plan_cache_misses.fetch_add(1, std::memory_order_relaxed);
  json = result.to_json();
  return true;
}

ServerStats Server::stats_snapshot() const {
  ServerStats s;
  s.connections = counters_.connections.load(std::memory_order_relaxed);
  s.bad_frames = counters_.bad_frames.load(std::memory_order_relaxed);
  s.select_requests = counters_.select_requests.load(std::memory_order_relaxed);
  s.select_hits = counters_.select_hits.load(std::memory_order_relaxed);
  s.select_misses = counters_.select_misses.load(std::memory_order_relaxed);
  s.tune_builds = counters_.tune_builds.load(std::memory_order_relaxed);
  s.tune_failures = counters_.tune_failures.load(std::memory_order_relaxed);
  s.stale_rejected = counters_.stale_rejected.load(std::memory_order_relaxed);
  s.unknown_profile = counters_.unknown_profile.load(std::memory_order_relaxed);
  s.sweep_jobs = counters_.sweep_jobs.load(std::memory_order_relaxed);
  s.plan_cache_hits = counters_.plan_cache_hits.load(std::memory_order_relaxed);
  s.plan_cache_misses =
      counters_.plan_cache_misses.load(std::memory_order_relaxed);
  s.coalesced_jobs = counters_.coalesced_jobs.load(std::memory_order_relaxed);
  s.journal_replayed = counters_.journal_replayed.load(std::memory_order_relaxed);
  s.journal_executed = counters_.journal_executed.load(std::memory_order_relaxed);
  s.journal_dropped = counters_.journal_dropped.load(std::memory_order_relaxed);
  s.stale_temps_cleaned =
      counters_.stale_temps_cleaned.load(std::memory_order_relaxed);
  s.table_generation = live_.generation();
  s.table_cells = static_cast<i64>(live_.snapshot()->cells().size());
  const sched::ScheduleCache::Stats cache = sched::process_schedule_cache().stats();
  s.schedule_cache_hits = cache.hits;
  s.schedule_cache_misses = cache.misses;
  const net::PairRouteMemo::Stats memo = net::process_route_memo().stats();
  s.route_memo_hits = memo.hits;
  s.route_memo_misses = memo.misses;
  s.route_memo_scopes = memo.scopes;
  s.route_memo_bytes = memo.bytes;
  return s;
}

std::string Server::stats_json() const {
  const ServerStats s = stats_snapshot();
  std::string out;
  out += "{\n";
  out += "  \"format\": \"bine-svc-stats\",\n";
  out += "  \"version\": 1,\n";
  out += "  \"connections\": " + std::to_string(s.connections) + ",\n";
  out += "  \"bad_frames\": " + std::to_string(s.bad_frames) + ",\n";
  out += "  \"select\": {\n";
  out += "    \"requests\": " + std::to_string(s.select_requests) + ",\n";
  out += "    \"hits\": " + std::to_string(s.select_hits) + ",\n";
  out += "    \"misses\": " + std::to_string(s.select_misses) + ",\n";
  out += "    \"tune_builds\": " + std::to_string(s.tune_builds) + ",\n";
  out += "    \"tune_failures\": " + std::to_string(s.tune_failures) + ",\n";
  out += "    \"stale_rejected\": " + std::to_string(s.stale_rejected) + ",\n";
  out += "    \"unknown_profile\": " + std::to_string(s.unknown_profile) + "\n";
  out += "  },\n";
  out += "  \"sweep\": {\n";
  out += "    \"jobs\": " + std::to_string(s.sweep_jobs) + ",\n";
  out += "    \"cache_hits\": " + std::to_string(s.plan_cache_hits) + ",\n";
  out += "    \"cache_misses\": " + std::to_string(s.plan_cache_misses) + ",\n";
  out += "    \"coalesced\": " + std::to_string(s.coalesced_jobs) + ",\n";
  out += "    \"journal_replayed\": " + std::to_string(s.journal_replayed) + ",\n";
  out += "    \"journal_executed\": " + std::to_string(s.journal_executed) + ",\n";
  out += "    \"journal_dropped\": " + std::to_string(s.journal_dropped) + "\n";
  out += "  },\n";
  out += "  \"table\": {\n";
  out += "    \"generation\": " + std::to_string(s.table_generation) + ",\n";
  out += "    \"cells\": " + std::to_string(s.table_cells) + "\n";
  out += "  },\n";
  out += "  \"schedule_cache\": {\n";
  out += "    \"hits\": " + std::to_string(s.schedule_cache_hits) + ",\n";
  out += "    \"misses\": " + std::to_string(s.schedule_cache_misses) + "\n";
  out += "  },\n";
  out += "  \"route_memo\": {\n";
  out += "    \"hits\": " + std::to_string(s.route_memo_hits) + ",\n";
  out += "    \"misses\": " + std::to_string(s.route_memo_misses) + ",\n";
  out += "    \"scopes\": " + std::to_string(s.route_memo_scopes) + ",\n";
  out += "    \"bytes\": " + std::to_string(s.route_memo_bytes) + "\n";
  out += "  },\n";
  out += "  \"stale_temps_cleaned\": " + std::to_string(s.stale_temps_cleaned) +
         "\n";
  out += "}\n";
  return out;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void Server::request_stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  stop_requested_ = true;
  stop_cv_.notify_all();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stop_requested_ = true;
    stopped_ = true;
    stop_cv_.notify_all();
  }
  // Drain order: cancel running jobs first (in-flight cells complete and
  // journal; unstarted ones never run), then wake every blocked accept and
  // recv, then join.
  cancel_.cancel();
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    plan_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(miss_mu_);
    miss_cv_.notify_all();
  }
  unix_listener_.shutdown_read();
  tcp_listener_.shutdown_read();
  unix_listener_.close();
  tcp_listener_.close();
  for (std::thread& t : accept_threads_)
    if (t.joinable()) t.join();
  accept_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Connection& c : conns_) c.fd.shutdown_read();
  }
  for (;;) {
    Connection* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = &conns_.front();
    }
    if (conn->thread.joinable()) conn->thread.join();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.pop_front();
  }
  if (started_ && !opts_.unix_socket.empty())
    std::remove(opts_.unix_socket.c_str());
}

}  // namespace bine::svc
