#include "svc/socket.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace bine::svc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("svc: " + what + ": " + std::strerror(errno));
}

void make_unix_addr(const std::string& path, sockaddr_un& addr) {
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("svc: unix socket path too long: " + path);
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

}  // namespace

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Fd::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

Fd listen_unix(const std::string& path, int backlog) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket(AF_UNIX)");
  sockaddr_un addr;
  make_unix_addr(path, addr);
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("bind(" + path + ")");
  if (::listen(fd.get(), backlog) != 0) fail("listen(" + path + ")");
  return fd;
}

Fd listen_tcp_loopback(u16 port, u16* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(fd.get(), 64) != 0) fail("listen(tcp)");
  if (bound_port) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) != 0)
      fail("getsockname");
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

Fd connect_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket(AF_UNIX)");
  sockaddr_un addr;
  make_unix_addr(path, addr);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("connect(" + path + ")");
  return fd;
}

Fd connect_tcp_loopback(u16 port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("connect(127.0.0.1:" + std::to_string(port) + ")");
  // Batched request/response traffic: never trade latency for Nagle
  // coalescing on the reply write.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Fd accept_one(const Fd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      Fd conn(fd);
      const int one = 1;
      ::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EINTR) continue;
    // EOF-like conditions after shutdown_read()/close() of the listener.
    if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED) return Fd();
    fail("accept");
  }
}

bool send_all(const Fd& fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd.get(), data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      fail("send");
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool recv_some(const Fd& fd, std::string& buf) {
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.append(chunk, static_cast<size_t>(n));
      return true;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return false;
    fail("recv");
  }
}

}  // namespace bine::svc
