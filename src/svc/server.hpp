#pragma once

#include <atomic>
#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep.hpp"
#include "harness/cancel.hpp"
#include "harness/runner.hpp"
#include "svc/proto.hpp"
#include "svc/socket.hpp"
#include "tune/live_table.hpp"
#include "tune/tuner.hpp"

/// The selection daemon: a long-lived process serving decision-table lookups
/// and sweep jobs over a socket, so tuned dispatch costs one round trip
/// instead of one artifact load per client process.
///
///   * select -- O(log intervals) lookup against an immutable table snapshot
///     (tune::LiveTable), lock-light: the per-batch cost is one shared_ptr
///     copy. Misses tune-on-miss through tune::Tuner with *single-flight*
///     coalescing (concurrent misses of one cell fund exactly one build),
///     merge into the live table, and persist crash-safely.
///   * sweep -- a serialized exp::SweepPlan executed on the sharded engine
///     with the journal armed, the result streamed back and cached at plan
///     granularity: resubmitting a plan is a cache hit returning the
///     identical byte stream; a killed job resumes from its journal on the
///     next submission. Concurrent submissions of one plan coalesce
///     (single-flight again).
///   * stats -- service counters as JSON (select/sweep/cache/journal/
///     schedule-cache), the observability satellite.
///
/// Shutdown is cooperative drain: stop() fires the CancelToken every running
/// job threads through exp::run, wakes every blocked accept/recv, answers
/// in-flight requests (jobs interrupted mid-run reply `shutting_down`; their
/// journals make the work resumable), and joins every thread before
/// returning.
namespace bine::svc {

struct ServerOptions {
  /// Unix-domain listener path; empty = none. At least one listener required.
  std::string unix_socket;
  /// Also listen on 127.0.0.1:<tcp_port>; 0 = kernel-assigned (tcp_port()
  /// reports it). nullopt = no TCP listener.
  std::optional<u16> tcp_port;

  /// Machine models served; select requests must name one of these AND match
  /// its fingerprint. Tables are keyed by profile name, so names must be
  /// unique.
  std::vector<net::SystemProfile> profiles;

  /// Decision-table artifact: loaded at startup (quarantined when damaged,
  /// missing = start empty) and re-persisted after every tune-on-miss merge.
  /// Empty = in-memory table only.
  std::string table_path;
  /// Directory for sweep-job journals (one `plan_<fp>.bj` per plan
  /// fingerprint). Empty = jobs run unjournaled (still cached in memory).
  std::string journal_dir;

  /// Tuner for tune-on-miss cell builds (grid/refinement knobs; its
  /// spread_placement/seed configure the per-profile Runners).
  tune::TunerOptions tuner;
  /// false = misses answer coll::recommended_algorithm instead of tuning.
  bool tune_on_miss = true;

  /// Shard width for sweep jobs; <= 0 = the plan's own `threads` knob.
  i64 job_threads = 0;

  /// Fault-injection hook for the kill-resume CI job: a sweep job stalls
  /// forever after this many cells complete, after touching
  /// `<journal>.stalled` -- a deterministic window for kill -9. 0 = off.
  i64 stall_after_cells = 0;
};

/// Monotonic service counters (stats_snapshot / the `stats` request).
struct ServerStats {
  u64 connections = 0;        ///< accepted over the server's lifetime
  u64 bad_frames = 0;         ///< connections dropped on unparseable bytes

  u64 select_requests = 0;
  u64 select_hits = 0;        ///< answered from the table
  u64 select_misses = 0;      ///< cell absent at request time
  u64 tune_builds = 0;        ///< tune-on-miss cells built (post-coalescing)
  u64 tune_failures = 0;      ///< builds that threw (heuristic served instead)
  u64 stale_rejected = 0;     ///< fingerprint-mismatch rejections
  u64 unknown_profile = 0;

  u64 sweep_jobs = 0;         ///< sweep requests accepted
  u64 plan_cache_hits = 0;
  u64 plan_cache_misses = 0;  ///< plans actually executed
  u64 coalesced_jobs = 0;     ///< submissions that waited on an identical in-flight plan

  // Journal activity of executed jobs, summed.
  i64 journal_replayed = 0;
  i64 journal_executed = 0;
  i64 journal_dropped = 0;

  i64 stale_temps_cleaned = 0;  ///< AtomicFile temps removed at startup
  u64 table_generation = 0;     ///< LiveTable generation at snapshot time
  i64 table_cells = 0;
  u64 schedule_cache_hits = 0;   ///< process-wide sched::ScheduleCache
  u64 schedule_cache_misses = 0;
  u64 route_memo_hits = 0;       ///< process-wide net::PairRouteMemo
  u64 route_memo_misses = 0;     ///< pair rows walked and memoized
  u64 route_memo_scopes = 0;     ///< distinct (Topology, Placement, fault_epoch)
  u64 route_memo_bytes = 0;      ///< approximate resident bytes of memoized rows
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Clean stale temps, load the table artifact, bind listeners, spawn the
  /// accept threads. Throws std::runtime_error / std::invalid_argument on
  /// bad options or bind failure.
  void start();

  /// Graceful drain (idempotent): cancel running jobs, wake and join every
  /// thread. Safe from any thread except a connection thread.
  void stop();

  /// Block until stop() is called or a client sends `shutdown`. The caller
  /// (the daemon main) then runs stop().
  void wait();

  /// Make wait() return without draining (what a `shutdown` frame does; also
  /// the signal-watcher hook of the daemon binary). Async-signal-UNSAFE --
  /// call from a thread, not a handler.
  void request_stop();

  [[nodiscard]] bool stopping() const;

  /// The bound TCP port (after start(); 0 when no TCP listener).
  [[nodiscard]] u16 tcp_port() const { return tcp_port_; }
  [[nodiscard]] const std::string& unix_socket() const {
    return opts_.unix_socket;
  }

  [[nodiscard]] ServerStats stats_snapshot() const;
  /// The current served table (test access).
  [[nodiscard]] std::shared_ptr<const tune::DecisionTable> table() const {
    return live_.snapshot();
  }

  /// The stats request's JSON document (also what `stats_snapshot` prints):
  /// canonical field order, parseable with tune::json.
  [[nodiscard]] std::string stats_json() const;

 private:
  struct ProfileEntry {
    net::SystemProfile profile;
    u64 fingerprint = 0;
    std::mutex tune_mu;  ///< serializes the (rare) tune-on-miss Runner use
    std::unique_ptr<harness::Runner> runner;  ///< lazy; guarded by tune_mu
  };

  struct Connection {
    Fd fd;
    std::thread thread;
  };

  void accept_loop(Fd* listener);
  void serve_connection(Connection* conn);
  /// Handle one request frame, appending response frame(s) to `out`.
  /// `batch_table` caches the LiveTable snapshot across one drained batch
  /// (fetched lazily on the first select), so a thousand pipelined lookups
  /// pay the snapshot mutex once. Returns false when the connection must
  /// close (bad_frame).
  bool handle_frame(const FrameView& frame,
                    std::shared_ptr<const tune::DecisionTable>& batch_table,
                    std::string& out);

  void handle_select(std::string_view payload,
                     std::shared_ptr<const tune::DecisionTable>& batch_table,
                     std::string& out);
  void handle_sweep(std::string_view payload, std::string& out);

  /// Tune-on-miss with single-flight coalescing; returns the winning
  /// algorithm (from the merged table, or the heuristic on build failure)
  /// and whether it came from the table.
  SelectReply tune_miss(ProfileEntry& entry, sched::Collective coll, i64 p,
                        i64 bytes);

  /// Run one sweep plan (journal armed, cancel threaded), cache + persist.
  /// Fills `begin`/`json`; returns false when the job was cancelled by
  /// shutdown (nothing cached).
  bool execute_plan(exp::SweepPlan plan, u64 fp, SweepBegin& begin,
                    std::string& json);

  void persist_table();
  i64 startup_clean_temps() const;

  ServerOptions opts_;
  tune::Tuner tuner_;
  tune::LiveTable live_;
  std::map<std::string, std::unique_ptr<ProfileEntry>> profiles_;

  Fd unix_listener_;
  Fd tcp_listener_;
  u16 tcp_port_ = 0;
  std::vector<std::thread> accept_threads_;

  mutable std::mutex conns_mu_;
  std::list<Connection> conns_;

  // Single-flight tune-on-miss.
  std::mutex miss_mu_;
  std::condition_variable miss_cv_;
  std::set<tune::CellKey> miss_inflight_;

  // Plan-level result cache + single-flight job coalescing.
  std::mutex plan_mu_;
  std::condition_variable plan_cv_;
  std::map<u64, std::shared_ptr<const std::string>> plan_cache_;
  std::set<u64> plan_inflight_;

  std::mutex table_io_mu_;  ///< serializes table artifact writes

  harness::CancelToken cancel_;
  mutable std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;  ///< wait() returns
  bool stopped_ = false;         ///< stop() ran to completion
  bool started_ = false;

  /// Lock-free counters: the select hot path must not serialize on a stats
  /// mutex. stats_snapshot() reads them relaxed (monotonic, approximate
  /// cross-field consistency is all the stats request promises).
  struct Counters {
    std::atomic<u64> connections{0}, bad_frames{0};
    std::atomic<u64> select_requests{0}, select_hits{0}, select_misses{0};
    std::atomic<u64> tune_builds{0}, tune_failures{0}, stale_rejected{0},
        unknown_profile{0};
    std::atomic<u64> sweep_jobs{0}, plan_cache_hits{0}, plan_cache_misses{0},
        coalesced_jobs{0};
    std::atomic<i64> journal_replayed{0}, journal_executed{0}, journal_dropped{0};
    std::atomic<i64> stale_temps_cleaned{0};
  };
  Counters counters_;
};

}  // namespace bine::svc
