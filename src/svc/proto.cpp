#include "svc/proto.hpp"

#include <array>

namespace bine::svc {

namespace {

void put_u16(std::string& out, u16 v) {
  out += static_cast<char>(v & 0xff);
  out += static_cast<char>((v >> 8) & 0xff);
}

void put_u64(std::string& out, u64 v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u32(std::string& out, u32 v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_string(std::string& out, std::string_view s) {
  if (s.size() > 0xffff) throw ProtoError("svc: string field over 64 KiB");
  put_u16(out, static_cast<u16>(s.size()));
  out += s;
}

/// Bounds-checked field reader over one frame payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  u8 get_u8() { return take(1)[0]; }

  u16 get_u16() {
    const auto b = take(2);
    return static_cast<u16>(b[0] | (b[1] << 8));
  }

  u64 get_u64() {
    const auto b = take(8);
    u64 v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }

  i64 get_i64() { return static_cast<i64>(get_u64()); }

  std::string get_string() {
    const u16 len = get_u16();
    const std::string_view s = data_.substr(pos_, len);
    if (s.size() != len) throw ProtoError("svc: truncated string field");
    pos_ += len;
    return std::string(s);
  }

  void done() const {
    if (pos_ != data_.size()) throw ProtoError("svc: trailing payload bytes");
  }

 private:
  /// Next n raw bytes as unsigned values.
  std::array<u8, 8> take(size_t n) {
    if (data_.size() - pos_ < n) throw ProtoError("svc: truncated payload");
    std::array<u8, 8> b{};
    for (size_t i = 0; i < n; ++i)
      b[i] = static_cast<u8>(data_[pos_ + i]);
    pos_ += n;
    return b;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

sched::Collective coll_from_u8(u8 v) {
  if (v > static_cast<u8>(sched::Collective::alltoall))
    throw ProtoError("svc: collective tag out of range");
  return static_cast<sched::Collective>(v);
}

}  // namespace

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::select: return "select";
    case MsgType::sweep: return "sweep";
    case MsgType::stats: return "stats";
    case MsgType::shutdown: return "shutdown";
    case MsgType::select_ok: return "select_ok";
    case MsgType::sweep_begin: return "sweep_begin";
    case MsgType::sweep_data: return "sweep_data";
    case MsgType::sweep_end: return "sweep_end";
    case MsgType::stats_ok: return "stats_ok";
    case MsgType::shutdown_ok: return "shutdown_ok";
    case MsgType::error: return "error";
  }
  return "?";
}

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::bad_frame: return "bad_frame";
    case ErrorCode::unknown_profile: return "unknown_profile";
    case ErrorCode::stale_fingerprint: return "stale_fingerprint";
    case ErrorCode::unknown_collective: return "unknown_collective";
    case ErrorCode::bad_plan: return "bad_plan";
    case ErrorCode::internal: return "internal";
    case ErrorCode::shutting_down: return "shutting_down";
  }
  return "?";
}

void put_frame(std::string& out, MsgType type, std::string_view payload) {
  if (payload.size() + 1 > kMaxFrameBytes)
    throw ProtoError("svc: frame over kMaxFrameBytes");
  put_u32(out, static_cast<u32>(payload.size() + 1));
  out += static_cast<char>(type);
  out += payload;
}

std::optional<FrameView> peek_frame(std::string_view buf, size_t& consumed) {
  if (buf.size() < 4) return std::nullopt;
  u32 len = 0;
  for (int i = 3; i >= 0; --i)
    len = (len << 8) | static_cast<u8>(buf[static_cast<size_t>(i)]);
  if (len == 0) throw ProtoError("svc: zero-length frame");
  if (len > kMaxFrameBytes) throw ProtoError("svc: frame length over kMaxFrameBytes");
  if (buf.size() - 4 < len) return std::nullopt;
  FrameView f;
  f.type = static_cast<MsgType>(static_cast<u8>(buf[4]));
  f.payload = buf.substr(5, len - 1);
  consumed = 4 + static_cast<size_t>(len);
  return f;
}

std::string encode_select(const SelectRequest& req) {
  std::string out;
  put_string(out, req.profile);
  put_u64(out, req.fingerprint);
  out += static_cast<char>(static_cast<u8>(req.coll));
  put_u64(out, static_cast<u64>(req.p));
  put_u64(out, static_cast<u64>(req.bytes));
  return out;
}

SelectRequest decode_select(std::string_view payload) {
  Cursor c(payload);
  SelectRequest req;
  req.profile = c.get_string();
  req.fingerprint = c.get_u64();
  req.coll = coll_from_u8(c.get_u8());
  req.p = c.get_i64();
  req.bytes = c.get_i64();
  c.done();
  return req;
}

std::string encode_select_ok(const SelectReply& rep) {
  std::string out;
  put_string(out, rep.algorithm);
  out += static_cast<char>(rep.from_table ? 1 : 0);
  return out;
}

void put_select_ok_frame(std::string& out, std::string_view algorithm,
                         bool from_table) {
  if (algorithm.size() > 0xffff) throw ProtoError("svc: algorithm name over 64 KiB");
  // length = type(1) + strlen(2) + name + flag(1)
  put_u32(out, static_cast<u32>(algorithm.size() + 4));
  out += static_cast<char>(MsgType::select_ok);
  put_u16(out, static_cast<u16>(algorithm.size()));
  out += algorithm;
  out += static_cast<char>(from_table ? 1 : 0);
}

SelectReply decode_select_ok(std::string_view payload) {
  Cursor c(payload);
  SelectReply rep;
  rep.algorithm = c.get_string();
  rep.from_table = c.get_u8() != 0;
  c.done();
  return rep;
}

std::string encode_sweep_begin(const SweepBegin& b) {
  std::string out;
  out += static_cast<char>(b.cache_hit ? 1 : 0);
  put_u64(out, static_cast<u64>(b.replayed));
  put_u64(out, static_cast<u64>(b.executed));
  return out;
}

SweepBegin decode_sweep_begin(std::string_view payload) {
  Cursor c(payload);
  SweepBegin b;
  b.cache_hit = c.get_u8() != 0;
  b.replayed = c.get_i64();
  b.executed = c.get_i64();
  c.done();
  return b;
}

std::string encode_sweep_end(u64 plan_fingerprint) {
  std::string out;
  put_u64(out, plan_fingerprint);
  return out;
}

u64 decode_sweep_end(std::string_view payload) {
  Cursor c(payload);
  const u64 fp = c.get_u64();
  c.done();
  return fp;
}

std::string encode_error(ErrorCode code, std::string_view message) {
  std::string out;
  put_u16(out, static_cast<u16>(code));
  put_string(out, message);
  return out;
}

ErrorFrame decode_error(std::string_view payload) {
  Cursor c(payload);
  ErrorFrame e;
  e.code = static_cast<ErrorCode>(c.get_u16());
  e.message = c.get_string();
  c.done();
  return e;
}

}  // namespace bine::svc
