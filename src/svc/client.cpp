#include "svc/client.hpp"

#include <stdexcept>

#include "exp/plan_codec.hpp"

namespace bine::svc {

Client Client::connect_to_unix(const std::string& path) {
  return Client(connect_unix(path));
}

Client Client::connect_to_tcp(u16 port) {
  return Client(connect_tcp_loopback(port));
}

void Client::send_frame(MsgType type, std::string_view payload) {
  std::string out;
  put_frame(out, type, payload);
  if (!send_all(fd_, out))
    throw std::runtime_error("svc: server closed the connection mid-send");
}

Client::OwnedFrame Client::read_frame() {
  for (;;) {
    size_t consumed = 0;
    if (const std::optional<FrameView> f = peek_frame(inbuf_, consumed)) {
      OwnedFrame frame{f->type, std::string(f->payload)};
      inbuf_.erase(0, consumed);
      return frame;
    }
    if (!recv_some(fd_, inbuf_))
      throw std::runtime_error("svc: connection closed mid-response");
  }
}

Client::OwnedFrame Client::expect(MsgType type) {
  OwnedFrame frame = read_frame();
  if (frame.type == MsgType::error) {
    const ErrorFrame e = decode_error(frame.payload);
    throw ServiceError(e.code, e.message);
  }
  if (frame.type != type)
    throw std::runtime_error(std::string("svc: expected ") + to_string(type) +
                             " frame, got " + to_string(frame.type));
  return frame;
}

SelectReply Client::select(const SelectRequest& req) {
  send_frame(MsgType::select, encode_select(req));
  return decode_select_ok(expect(MsgType::select_ok).payload);
}

std::vector<SelectReply> Client::select_batch(
    const std::vector<SelectRequest>& reqs) {
  std::string out;
  for (const SelectRequest& req : reqs)
    put_frame(out, MsgType::select, encode_select(req));
  if (!out.empty() && !send_all(fd_, out))
    throw std::runtime_error("svc: server closed the connection mid-send");
  std::vector<SelectReply> replies;
  replies.reserve(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i)
    replies.push_back(decode_select_ok(expect(MsgType::select_ok).payload));
  return replies;
}

SweepReply Client::sweep(const exp::SweepPlan& plan) {
  return sweep_json(exp::plan_to_json(plan));
}

SweepReply Client::sweep_json(std::string_view plan_json) {
  send_frame(MsgType::sweep, plan_json);
  SweepReply reply;
  reply.begin = decode_sweep_begin(expect(MsgType::sweep_begin).payload);
  for (;;) {
    OwnedFrame frame = read_frame();
    if (frame.type == MsgType::error) {
      const ErrorFrame e = decode_error(frame.payload);
      throw ServiceError(e.code, e.message);
    }
    if (frame.type == MsgType::sweep_end) {
      reply.plan_fingerprint = decode_sweep_end(frame.payload);
      return reply;
    }
    if (frame.type != MsgType::sweep_data)
      throw std::runtime_error(std::string("svc: unexpected ") +
                               to_string(frame.type) + " inside a sweep stream");
    reply.result_json += frame.payload;
  }
}

std::string Client::stats() {
  send_frame(MsgType::stats, {});
  return expect(MsgType::stats_ok).payload;
}

void Client::shutdown_server() {
  send_frame(MsgType::shutdown, {});
  (void)expect(MsgType::shutdown_ok);
}

}  // namespace bine::svc
