#pragma once

#include "core/types.hpp"

/// Modular (circular) distance between rank identifiers (paper Sec. 2.2).
namespace bine::core {

/// d(r, q) = min((r - q) mod p, (q - r) mod p): the minimum distance along
/// the circle 0, 1, ..., p-1. Bine trees minimize this quantity instead of
/// the plain |r - q| used by standard binomial trees.
[[nodiscard]] constexpr i64 modular_distance(Rank r, Rank q, i64 p) noexcept {
  const i64 a = pmod(r - q, p);
  const i64 b = pmod(q - r, p);
  return a < b ? a : b;
}

/// Signed modular displacement from r to q, normalized into (-p/2, p/2].
/// Positive means q lies "to the right" of r on the circle.
[[nodiscard]] constexpr i64 modular_displacement(Rank r, Rank q, i64 p) noexcept {
  i64 d = pmod(q - r, p);
  if (d > p / 2) d -= p;
  return d;
}

/// Logical rotation used to re-root trees: rank `r` in the tree rooted at
/// `root` plays the role of rank (r - root) mod p in the tree rooted at 0
/// (paper Sec. 2.2: "we apply a logical rotation by subtracting t").
[[nodiscard]] constexpr Rank to_logical(Rank r, Rank root, i64 p) noexcept {
  return pmod(r - root, p);
}

/// Inverse of `to_logical`.
[[nodiscard]] constexpr Rank to_physical(Rank logical, Rank root, i64 p) noexcept {
  return pmod(logical + root, p);
}

}  // namespace bine::core
