#pragma once

#include <cstring>
#include <string_view>

#include "core/types.hpp"

/// Shared FNV-1a hashing primitives. Two folds over the same constants:
/// byte-wise (canonical FNV-1a; used for fingerprints over short strings and
/// scalars, where exact byte framing matters more than speed) and word-wise
/// (8 bytes per multiply; used for digests over megabyte-scale state arrays,
/// where a byte-wise fold would dominate the work being digested). The two
/// folds produce different values by design -- they hash different domains --
/// but both must never drift from these shared constants.
namespace bine::core {

inline constexpr u64 kFnvOffset = 1469598103934665603ull;
inline constexpr u64 kFnvPrime = 1099511628211ull;

/// Canonical byte-at-a-time FNV-1a fold.
inline void fnv_mix_bytes(u64& h, const void* data, size_t nbytes) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < nbytes; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

/// NUL-terminated string fold (the terminator keeps "ab","c" != "a","bc").
inline void fnv_mix_string(u64& h, std::string_view s) {
  fnv_mix_bytes(h, s.data(), s.size());
  const char sep = '\0';
  fnv_mix_bytes(h, &sep, 1);
}

/// u64-word-at-a-time fold (tail bytes zero-padded): one multiply per 8
/// bytes, for digesting large flat arrays.
inline void fnv_mix_words(u64& h, const void* data, size_t nbytes) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  size_t i = 0;
  for (; i + 8 <= nbytes; i += 8) {
    u64 word;
    std::memcpy(&word, bytes + i, 8);
    h = (h ^ word) * kFnvPrime;
  }
  if (i < nbytes) {
    u64 word = 0;
    std::memcpy(&word, bytes + i, nbytes - i);
    h = (h ^ word) * kFnvPrime;
  }
}

}  // namespace bine::core
