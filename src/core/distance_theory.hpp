#pragma once

#include "core/negabinary.hpp"
#include "core/types.hpp"

/// Closed-form step distances and the 2/3 locality bound of paper Sec. 2.4.1.
namespace bine::core {

/// delta_binomial(i) = 2^{s-i-1}: modular distance between communicating
/// ranks at step i of a distance-halving binomial tree.
[[nodiscard]] constexpr i64 delta_binomial(int step, int s) noexcept {
  assert(step >= 0 && step < s);
  return i64{1} << (s - step - 1);
}

/// delta_bine(i) = |sum_{j=0}^{s-i-1} (-2)^j| = |1/3 - (-2)^{s-i}/3|:
/// modular distance between communicating ranks at step i of a
/// distance-halving Bine tree.
[[nodiscard]] constexpr i64 delta_bine(int step, int s) noexcept {
  assert(step >= 0 && step < s);
  const i64 v = negabinary_ones_value(s - step);
  return v < 0 ? -v : v;
}

/// Eq. 2: delta_bine / delta_binomial -> 2/3, i.e. communicating ranks sit at
/// a ~33% shorter modular distance, which bounds the global-traffic reduction.
[[nodiscard]] constexpr double distance_ratio(int step, int s) noexcept {
  return static_cast<double>(delta_bine(step, s)) /
         static_cast<double>(delta_binomial(step, s));
}

/// The asymptotic bound from Sec. 2.4.1: Bine reduces global-link traffic by
/// at most 33% (ratio 2/3).
inline constexpr double kMaxTrafficReduction = 1.0 / 3.0;

}  // namespace bine::core
