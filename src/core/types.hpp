#pragma once

#include <cassert>
#include <cstdint>

/// Common integral aliases and small bit utilities shared across the library.
namespace bine {

using i64 = std::int64_t;
using u64 = std::uint64_t;
// Narrow fixed-width aliases for wire formats (svc framing) and compact
// tables; arithmetic stays in i64/u64.
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;

/// Rank identifier inside a communicator of `p` ranks. Signed so that
/// intermediate arithmetic (r - p, rotations) stays natural.
using Rank = i64;

/// True iff `x` is a positive power of two.
[[nodiscard]] constexpr bool is_pow2(i64 x) noexcept {
  return x > 0 && (static_cast<u64>(x) & (static_cast<u64>(x) - 1)) == 0;
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr int floor_log2(i64 x) noexcept {
  assert(x >= 1);
  int k = 0;
  while (x > 1) {
    x >>= 1;
    ++k;
  }
  return k;
}

/// log2(x) for x an exact power of two.
[[nodiscard]] constexpr int log2_exact(i64 x) noexcept {
  assert(is_pow2(x));
  return floor_log2(x);
}

/// Mathematical (always non-negative) modulo: pmod(-2, 8) == 6.
[[nodiscard]] constexpr i64 pmod(i64 a, i64 m) noexcept {
  assert(m > 0);
  const i64 r = a % m;
  return r < 0 ? r + m : r;
}

/// Bit mask with the `n` least significant bits set (n in [0, 63]).
[[nodiscard]] constexpr u64 low_bits(int n) noexcept {
  assert(n >= 0 && n < 64);
  return (u64{1} << n) - 1;
}

/// ceil(a / b) for non-negative a, positive b.
[[nodiscard]] constexpr i64 ceil_div(i64 a, i64 b) noexcept {
  assert(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

}  // namespace bine
