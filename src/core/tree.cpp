#include "core/tree.hpp"

#include <stdexcept>

namespace bine::core {

Tree build_tree(TreeVariant v, i64 p, Rank root) {
  assert(is_pow2(p) && root >= 0 && root < p);
  Tree t;
  t.variant = v;
  t.p = p;
  t.s = log2_exact(p);
  t.root = root;
  t.parent.assign(static_cast<size_t>(p), -1);
  t.joined_at.assign(static_cast<size_t>(p), -1);
  t.children.assign(static_cast<size_t>(p), {});

  for (Rank logical = 0; logical < p; ++logical) {
    const Rank physical = to_physical(logical, root, p);
    const int joined = join_step(v, logical, p);
    t.joined_at[static_cast<size_t>(physical)] = joined;
    // A rank forwards the data at every step after it joined (the root from
    // step 0), reaching its child for that step.
    for (int step = joined + 1; step < t.s; ++step) {
      const Rank child_logical = tree_partner(v, logical, step, p);
      assert(join_step(v, child_logical, p) == step &&
             "a tree child must join exactly at the step its parent reaches it");
      const Rank child_physical = to_physical(child_logical, root, p);
      t.children[static_cast<size_t>(physical)].emplace_back(step, child_physical);
      t.parent[static_cast<size_t>(child_physical)] = physical;
    }
  }
  return t;
}

namespace {

/// Merge `parts` into a single circular interval. Any merge order may leave
/// temporary gaps (the root accumulates child subtrees out of positional
/// order), so scan repeatedly, gluing adjacent pairs, until one remains.
CircularInterval glue_intervals(std::vector<CircularInterval> parts, i64 p) {
  while (parts.size() > 1) {
    bool merged = false;
    for (size_t a = 0; a < parts.size() && !merged; ++a) {
      for (size_t b = 0; b < parts.size() && !merged; ++b) {
        if (a == b) continue;
        if (pmod(parts[b].start - (parts[a].start + parts[a].length), p) == 0) {
          parts[a].length += parts[b].length;
          parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(b));
          merged = true;
        }
      }
    }
    if (!merged) throw std::logic_error("subtree_interval: non-contiguous subtree");
  }
  assert(parts.size() == 1 && parts.front().length <= p);
  return parts.front();
}

/// Recursive helper: circular interval spanned by the subtree of `r`, whose
/// children sit at steps (joined, s). Bine DH / binomial DH subtrees stay
/// contiguous (paper Sec. 2.3.3 and App. D.2).
CircularInterval subtree_interval_rec(TreeVariant v, Rank r, int joined, i64 p) {
  const int s = log2_exact(p);
  std::vector<CircularInterval> parts{{r, 1}};
  for (int step = joined + 1; step < s; ++step) {
    const Rank child = tree_partner(v, r, step, p);
    parts.push_back(subtree_interval_rec(v, child, step, p));
  }
  return glue_intervals(std::move(parts), p);
}

void dd_collect(Rank r, int joined, i64 p, std::vector<Rank>& out) {
  out.push_back(r);
  const int s = log2_exact(p);
  for (int step = joined + 1; step < s; ++step)
    dd_collect(tree_partner(TreeVariant::bine_dd, r, step, p), step, p, out);
}

}  // namespace

CircularInterval subtree_interval(TreeVariant v, Rank r, i64 p) {
  assert((v == TreeVariant::binomial_dh || v == TreeVariant::bine_dh) &&
         "only distance-halving subtrees are circular intervals");
  return subtree_interval_rec(v, r, join_step(v, r, p), p);
}

std::vector<Rank> dd_subtree_members(Rank r, i64 p) {
  std::vector<Rank> out;
  dd_collect(r, join_step(TreeVariant::bine_dd, r, p), p, out);
  return out;
}

}  // namespace bine::core
