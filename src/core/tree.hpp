#pragma once

#include <optional>
#include <vector>

#include "core/modular.hpp"
#include "core/negabinary.hpp"
#include "core/nu.hpp"
#include "core/types.hpp"

/// Uniform interface over the four tree constructions compared in the paper:
/// distance-doubling / distance-halving binomial trees (the Open MPI / MPICH
/// baselines of Fig. 1) and distance-halving / distance-doubling Bine trees
/// (Sec. 2 and Sec. 3.2).
///
/// All primitives work in *logical* rank space (tree rooted at 0); re-rooting
/// at t is the rotation r -> (r - t) mod p (Sec. 2.2). `p` must be a power of
/// two here; non-power-of-two communicators are handled one level up
/// (coll/nonpow2, Appendix C).
namespace bine::core {

enum class TreeVariant {
  binomial_dd,  ///< distance-doubling binomial (Open MPI style)
  binomial_dh,  ///< distance-halving binomial (MPICH style)
  bine_dh,      ///< distance-halving Bine tree (paper Sec. 2)
  bine_dd,      ///< distance-doubling Bine tree (paper Sec. 3.2)
};

[[nodiscard]] constexpr const char* to_string(TreeVariant v) noexcept {
  switch (v) {
    case TreeVariant::binomial_dd: return "binomial_dd";
    case TreeVariant::binomial_dh: return "binomial_dh";
    case TreeVariant::bine_dh: return "bine_dh";
    case TreeVariant::bine_dd: return "bine_dd";
  }
  return "?";
}

/// Step at which logical rank `r` receives the data from its parent in a
/// broadcast (-1 for the root, which holds the data from the start).
/// Steps are numbered 0 .. s-1 with s = log2(p).
[[nodiscard]] constexpr int join_step(TreeVariant v, Rank r, i64 p) noexcept {
  assert(is_pow2(p) && r >= 0 && r < p);
  if (r == 0) return -1;
  const int s = log2_exact(p);
  switch (v) {
    case TreeVariant::binomial_dd:
      // Rank r first appears when the doubling front passes it: 2^i <= r.
      return floor_log2(r);
    case TreeVariant::binomial_dh: {
      // Rank r = odd * 2^k receives at step s-1-k (first split reaches p/2).
      int k = 0;
      while (((r >> k) & 1) == 0) ++k;
      return s - 1 - k;
    }
    case TreeVariant::bine_dh:
      // Paper Sec. 2.3.2: i = s - u, u = length of the identical-LSB run.
      return s - equal_lsb_run(rank2nb(r, p), s);
    case TreeVariant::bine_dd:
      // Paper Sec. 3.2.2: position of the highest set bit of nu(r).
      return floor_log2(static_cast<i64>(nu(r, p)));
  }
  return -1;
}

/// Child of logical rank `r` at step `step` in a broadcast tree, i.e. the rank
/// `r` forwards the data to at that step. Only meaningful when
/// join_step(r) < step (the rank already holds the data). The relation is an
/// involution on the pair: child's partner at the same step is `r`.
[[nodiscard]] constexpr Rank tree_partner(TreeVariant v, Rank r, int step, i64 p) noexcept {
  assert(is_pow2(p) && r >= 0 && r < p);
  const int s = log2_exact(p);
  assert(step >= 0 && step < s);
  switch (v) {
    case TreeVariant::binomial_dd:
      return r ^ (i64{1} << step);
    case TreeVariant::binomial_dh:
      return r ^ (i64{1} << (s - 1 - step));
    case TreeVariant::bine_dh:
      // Eq. 1: flip the least significant s-step negabinary bits.
      return nb2rank(rank2nb(r, p) ^ low_bits(s - step), p);
    case TreeVariant::bine_dd: {
      // Eq. 5 (Appendix A): distance sum_{k<=step} (-2)^k, sign by parity.
      const i64 d = negabinary_ones_value(step + 1);
      return pmod(r % 2 == 0 ? r + d : r - d, p);
    }
  }
  return -1;
}

/// Modular distance between partners at `step`; delta_bine(i) vs
/// delta_binomial(i) from Sec. 2.4.1.
[[nodiscard]] constexpr i64 step_distance(TreeVariant v, Rank r, int step, i64 p) noexcept {
  return modular_distance(r, tree_partner(v, r, step, p), p);
}

/// A fully materialized broadcast tree over physical ranks (root may be any
/// rank; construction rotates logical rank 0 onto it). O(p log p).
struct Tree {
  TreeVariant variant{};
  i64 p = 0;
  int s = 0;
  Rank root = 0;
  std::vector<Rank> parent;    ///< parent[r] over physical ranks; -1 for root
  std::vector<int> joined_at;  ///< join_step over physical ranks; -1 for root
  /// children[r] = (step, child) pairs ordered by step.
  std::vector<std::vector<std::pair<int, Rank>>> children;
};

[[nodiscard]] Tree build_tree(TreeVariant v, i64 p, Rank root);

/// Contiguous circular interval of ranks [start, start + length) mod p.
struct CircularInterval {
  Rank start = 0;
  i64 length = 0;
  [[nodiscard]] bool contains(Rank r, i64 p) const noexcept {
    return pmod(r - start, p) < length;
  }
};

/// The set of logical ranks in the broadcast subtree rooted at `r`
/// (everything that receives the data through `r`). For binomial_dh and
/// bine_dh subtrees this is a contiguous circular interval (paper Sec. 2.3.3
/// / Appendix D.2); throws if contiguity is violated. Not applicable to
/// bine_dd (non-contiguous, Sec. 3.2.3 -- use `dd_subtree_members`) nor to
/// binomial_dd (strided subtrees).
[[nodiscard]] CircularInterval subtree_interval(TreeVariant v, Rank r, i64 p);

/// Membership test for distance-doubling Bine subtrees (Sec. 3.2.3): q is in
/// the subtree rooted at r iff nu(q) and nu(r) share the join_step(r)+1 least
/// significant bits. The root's subtree is the whole communicator.
[[nodiscard]] constexpr bool dd_subtree_contains(Rank r, Rank q, i64 p) noexcept {
  if (r == 0) return true;
  const int keep = join_step(TreeVariant::bine_dd, r, p) + 1;
  return (nu(q, p) & low_bits(keep)) == (nu(r, p) & low_bits(keep));
}

/// Materialized list of the logical ranks in the bine_dd subtree rooted at r.
[[nodiscard]] std::vector<Rank> dd_subtree_members(Rank r, i64 p);

}  // namespace bine::core
