#pragma once

#include "core/negabinary.hpp"
#include "core/types.hpp"

/// Butterfly (all-ranks-exchange-every-step) communication patterns: the
/// standard recursive-doubling / recursive-halving baselines and the Bine
/// butterflies of paper Sec. 3.
///
/// A butterfly on p = 2^s ranks runs s steps; at every step each rank
/// exchanges data with exactly one partner, and the partner relation is a
/// perfect matching (partner(partner(r)) == r).
namespace bine::core {

enum class ButterflyVariant {
  recursive_doubling,  ///< r ^ 2^step (standard, distance-doubling)
  recursive_halving,   ///< r ^ 2^{s-1-step} (standard, distance-halving)
  bine_dh,             ///< Eq. 4: distance-halving Bine butterfly
  bine_dd,             ///< Eq. 5: distance-doubling Bine butterfly
  swing,               ///< Swing [17]: same peer sequence as bine_dd
};

[[nodiscard]] constexpr const char* to_string(ButterflyVariant v) noexcept {
  switch (v) {
    case ButterflyVariant::recursive_doubling: return "recursive_doubling";
    case ButterflyVariant::recursive_halving: return "recursive_halving";
    case ButterflyVariant::bine_dh: return "bine_dh";
    case ButterflyVariant::bine_dd: return "bine_dd";
    case ButterflyVariant::swing: return "swing";
  }
  return "?";
}

/// Partner of rank `r` at `step` (0-based, step < log2(p)).
[[nodiscard]] constexpr Rank butterfly_partner(ButterflyVariant v, Rank r, int step,
                                               i64 p) noexcept {
  assert(is_pow2(p) && r >= 0 && r < p);
  const int s = log2_exact(p);
  assert(step >= 0 && step < s);
  switch (v) {
    case ButterflyVariant::recursive_doubling:
      return r ^ (i64{1} << step);
    case ButterflyVariant::recursive_halving:
      return r ^ (i64{1} << (s - 1 - step));
    case ButterflyVariant::bine_dh: {
      // Eq. 4: distance (1 - (-2)^{s-step}) / 3 == sum_{k<s-step} (-2)^k,
      // added for even ranks and subtracted for odd ranks. The signed value
      // may be negative; the modulo wraps it back onto the circle.
      const i64 d = negabinary_ones_value(s - step);
      return pmod(r % 2 == 0 ? r + d : r - d, p);
    }
    case ButterflyVariant::bine_dd:
    case ButterflyVariant::swing: {
      // Eq. 5 / Swing's rho(step): sum_{k<=step} (-2)^k.
      const i64 d = negabinary_ones_value(step + 1);
      return pmod(r % 2 == 0 ? r + d : r - d, p);
    }
  }
  return -1;
}

}  // namespace bine::core
