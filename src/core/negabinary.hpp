#pragma once

#include "core/types.hpp"

/// Negabinary (base -2) encoding of rank identifiers -- the arithmetic core of
/// Bine trees (paper Sec. 2.3.1, Table 1).
///
/// A negabinary string b_{s-1} ... b_1 b_0 denotes sum_j b_j * (-2)^j. Unlike
/// binary, s bits cover a *signed* contiguous range: exactly the 2^s integers
/// in [lo(s), m(s)], where m(s) sets all even positions (positive powers) and
/// lo(s) sets all odd positions (negative powers). This range is a complete
/// residue system mod 2^s, which is what makes `rank2nb`/`nb2rank` bijective
/// on a communicator of p = 2^s ranks.
namespace bine::core {

/// Mask with ones in all odd bit positions (0b...10101010). The classic O(1)
/// binary <-> negabinary conversion is a masked add/subtract with this value,
/// matching the paper's claim that both conversions need only "bit masking and
/// an addition or subtraction".
inline constexpr u64 kOddPositions = 0xAAAA'AAAA'AAAA'AAAAull;

/// Encode a (possibly negative) integer into its negabinary bit pattern.
[[nodiscard]] constexpr u64 to_negabinary(i64 value) noexcept {
  return (static_cast<u64>(value) + kOddPositions) ^ kOddPositions;
}

/// Decode a negabinary bit pattern back to the integer it denotes.
/// Patterns restricted to the low s bits decode to sum_{j<s} b_j (-2)^j.
[[nodiscard]] constexpr i64 from_negabinary(u64 bits) noexcept {
  return static_cast<i64>((bits ^ kOddPositions) - kOddPositions);
}

/// Largest value representable in `s` negabinary bits: ones at all even
/// positions below s (e.g. m(6) = 010101_{-2} = 21, paper Sec. 2.3.1).
[[nodiscard]] constexpr i64 max_on_bits(int s) noexcept {
  return static_cast<i64>(~kOddPositions & low_bits(s));
}

/// Smallest (most negative) value representable in `s` negabinary bits:
/// ones at all odd positions below s (e.g. lo(3) = 010_{-2} = -2).
[[nodiscard]] constexpr i64 min_on_bits(int s) noexcept {
  return from_negabinary(kOddPositions & low_bits(s));
}

/// rank2nb(r, p) -- negabinary representation of rank `r` in a communicator of
/// `p` ranks (p a power of two). Ranks in [0, m] use their own value; ranks
/// above m (those "to the left of rank 0" on the circle) use r - p
/// (paper Sec. 2.3.1: rank2nb(6, 8) = 010_{-2} since 6 - 8 = -2).
[[nodiscard]] constexpr u64 rank2nb(Rank r, i64 p) noexcept {
  assert(is_pow2(p) && r >= 0 && r < p);
  const int s = log2_exact(p);
  const i64 value = r <= max_on_bits(s) ? r : r - p;
  const u64 nb = to_negabinary(value);
  assert((nb & ~low_bits(s)) == 0 && "value must fit in s negabinary bits");
  return nb;
}

/// nb2rank(nb, p) -- inverse of rank2nb: decode `nb` (low log2(p) bits) and
/// reduce modulo p back onto the rank circle.
[[nodiscard]] constexpr Rank nb2rank(u64 nb, i64 p) noexcept {
  assert(is_pow2(p));
  const int s = log2_exact(p);
  return pmod(from_negabinary(nb & low_bits(s)), p);
}

/// Number of consecutive least-significant bits of `nb` that are all equal,
/// counted within an s-bit window (paper Sec. 2.3.2: u = 3 for 1000, u = 2
/// for 1011). Determines the step at which a rank joins a distance-halving
/// Bine tree: i = s - u.
[[nodiscard]] constexpr int equal_lsb_run(u64 nb, int s) noexcept {
  assert(s >= 1);
  const u64 first = nb & 1;
  int run = 1;
  while (run < s && ((nb >> run) & 1) == first) ++run;
  return run;
}

/// Sum_{k=0}^{j} (-2)^k = (1 - (-2)^{j+1}) / 3: the (always odd) modular
/// distance between partners at step j of a distance-doubling Bine
/// tree/butterfly (paper Eq. 5 and Appendix A).
[[nodiscard]] constexpr i64 negabinary_ones_value(int count) noexcept {
  assert(count >= 0 && count < 62);
  return from_negabinary(low_bits(count));
}

}  // namespace bine::core
