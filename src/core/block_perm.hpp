#pragma once

#include <vector>

#include "core/nu.hpp"
#include "core/types.hpp"

/// Block permutations that turn the non-contiguous transmissions of
/// distance-doubling Bine butterflies into contiguous ones
/// (paper Sec. 4.3.1 "Permute"/"Send" strategies, Fig. 8).
namespace bine::core {

/// Destination position of block `i` under the contiguity permutation:
/// reverse(nu(i)). All blocks belonging to a bine_dd subtree share their
/// least-significant nu bits (Sec. 3.2.3); after bit reversal they share
/// *most*-significant bits instead, i.e. they are contiguous in memory.
[[nodiscard]] constexpr i64 permuted_position(i64 block, i64 p) noexcept {
  const int s = log2_exact(p);
  return static_cast<i64>(reverse_bits(nu(block, p), s));
}

/// Full permutation vector: result[i] = destination position of block i.
/// A bijection on [0, p) (verified by tests).
[[nodiscard]] inline std::vector<i64> contiguity_permutation(i64 p) {
  std::vector<i64> perm(static_cast<size_t>(p));
  for (i64 i = 0; i < p; ++i) perm[static_cast<size_t>(i)] = permuted_position(i, p);
  return perm;
}

/// Inverse permutation: result[permuted_position(i)] = i.
[[nodiscard]] inline std::vector<i64> inverse_contiguity_permutation(i64 p) {
  std::vector<i64> inv(static_cast<size_t>(p));
  for (i64 i = 0; i < p; ++i) inv[static_cast<size_t>(permuted_position(i, p))] = i;
  return inv;
}

/// Final exchange peer for the "Send" strategy (Sec. 4.3.1): after skipping
/// the permutation, rank r holds the block that belongs to
/// reverse(nu(r)) and ships it there in one extra step.
[[nodiscard]] constexpr Rank send_strategy_peer(Rank r, i64 p) noexcept {
  return permuted_position(r, p);
}

}  // namespace bine::core
