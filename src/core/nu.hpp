#pragma once

#include "core/negabinary.hpp"
#include "core/types.hpp"

/// The nu(r, p) representation that drives distance-doubling Bine trees and
/// butterflies (paper Sec. 3.2.1 and Appendix A).
///
/// Each rank r is first mapped to a negabinary string h(r, p):
///   h(r, p) = rank2nb(p - r, p)  if r is even (h(0, p) = 0),
///   h(r, p) = rank2nb(r, p)      if r is odd,
/// and then nu(r, p) = h ^ (h >> 1). The bits of nu(r, p) encode exactly the
/// steps through which the data travels from the root to r, which is what
/// makes the distance-doubling construction "operate as the standard binomial
/// tree algorithm, but using nu(r) instead of r".
namespace bine::core {

/// h(r, p) from Sec. 3.2.1.
[[nodiscard]] constexpr u64 h_repr(Rank r, i64 p) noexcept {
  assert(is_pow2(p) && r >= 0 && r < p);
  if (r == 0) return 0;
  if (r % 2 == 1) return rank2nb(r, p);
  return rank2nb(p - r, p);
}

/// nu(r, p) = h(r, p) ^ (h(r, p) >> 1). A bijection from [0, p) onto [0, p).
[[nodiscard]] constexpr u64 nu(Rank r, i64 p) noexcept {
  const u64 h = h_repr(r, p);
  return h ^ (h >> 1);
}

/// Inverse of the Gray-style transform x -> x ^ (x >> 1).
[[nodiscard]] constexpr u64 gray_decode(u64 g) noexcept {
  u64 b = g;
  for (int shift = 1; shift < 64; shift <<= 1) b ^= b >> shift;
  return b;
}

/// Inverse of `nu`: the rank whose nu-representation equals `bits`.
[[nodiscard]] constexpr Rank nu_inverse(u64 bits, i64 p) noexcept {
  assert(is_pow2(p));
  const int s = log2_exact(p);
  const u64 h = gray_decode(bits) & low_bits(s);
  if (h == 0) return 0;
  const Rank candidate = nb2rank(h, p);
  // h() encodes odd ranks directly and even ranks via p - r; both candidates
  // share parity (p is even), so exactly one branch applies.
  if (candidate % 2 == 1) return candidate;
  return pmod(p - candidate, p);
}

/// Bit-reversal of the low `s` bits of `v` (used by the reverse(nu(i)) block
/// permutation of Fig. 8 and by the "send" strategy of Sec. 4.3.1).
[[nodiscard]] constexpr u64 reverse_bits(u64 v, int s) noexcept {
  u64 out = 0;
  for (int j = 0; j < s; ++j)
    if ((v >> j) & 1) out |= u64{1} << (s - 1 - j);
  return out;
}

}  // namespace bine::core
