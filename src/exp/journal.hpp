#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

/// The durable-execution substrate: an append-only, fsync-per-record,
/// per-record-checksummed cell journal.
///
/// A journaled sweep appends one record per completed (system, collective, p)
/// work item, keyed by the cell's coordinates and guarded by the owning
/// plan's fingerprint in the header. A run killed at ANY byte boundary --
/// SIGKILL mid-record included -- resumes by replaying the valid record
/// prefix and re-executing only what is missing; because every cell is a
/// pure function of its plan coordinates, the resumed result is
/// byte-identical to an uninterrupted run.
///
/// On-disk layout (plain text, newline-framed):
///
///   binejournal 1 0x<16-hex plan fingerprint>\n
///   cell <key> <payload_bytes> 0x<16-hex FNV-1a of payload>\n
///   <payload bytes>\n
///   ... more records ...
///
/// Damage discipline mirrors tune::DecisionTable::load_or_quarantine: a
/// journal written for a different plan fingerprint is quarantined whole
/// (*.corrupt) and the run starts fresh; a record failing its checksum is
/// dropped (framing intact -> later records survive); a torn tail (framing
/// broken -- the SIGKILL case) drops everything from the tear on. Whenever
/// anything was dropped, the damaged file is quarantined aside and the
/// surviving records are rewritten clean before appending resumes, so damage
/// never compounds across kill-resume cycles.
namespace bine::exp {

class Journal {
 public:
  /// What open() found on disk.
  struct OpenReport {
    i64 replayable = 0;        ///< valid records loaded for replay
    i64 dropped = 0;           ///< records discarded (checksum failure / torn tail)
    bool quarantined = false;  ///< damaged/stale bytes moved aside as *.corrupt
    std::vector<std::string> notes;
  };

  /// Open (or create) the journal at `path` for a plan with this
  /// fingerprint. Never throws on damage -- damaged or stale content is
  /// quarantined and reported, and the returned journal is always writable.
  /// Stale AtomicFile temps for `path` (a previous incarnation killed
  /// mid-rewrite) are cleaned first. Returns nullptr only when the file
  /// cannot be opened for appending at all (the caller degrades to
  /// journal-off execution).
  [[nodiscard]] static std::unique_ptr<Journal> open(std::string path, u64 fingerprint,
                                                     OpenReport* report = nullptr);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] u64 fingerprint() const noexcept { return fingerprint_; }
  [[nodiscard]] size_t records() const noexcept { return records_.size(); }

  /// The replayable payload for `key`, or nullptr. Reflects the state found
  /// at open(); records appended by this handle are not re-read (the engine
  /// resolves replays before executing anything).
  [[nodiscard]] const std::string* lookup(std::string_view key) const;

  /// Append one completed cell: the record is written, flushed and fsync'd
  /// before returning, so a kill after append() can never lose the cell.
  /// Thread-safe (records never interleave). Returns false on I/O failure --
  /// journaling degrades to best-effort rather than failing the sweep.
  [[nodiscard]] bool append(std::string_view key, std::string_view payload);

  /// The FNV-1a checksum record frames carry (exposed for tests).
  [[nodiscard]] static u64 checksum(std::string_view payload) noexcept;

 private:
  Journal() = default;

  std::string path_;
  u64 fingerprint_ = 0;
  std::map<std::string, std::string, std::less<>> records_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace bine::exp
