#pragma once

#include "exp/sweep.hpp"

/// Result-table formatters: the paper's report shapes (win/loss tables,
/// best-algorithm heatmaps, box-plot summaries) rendered from a SweepResult.
/// These replace the private driver loops bench_common.hpp used to hold --
/// the harness::tables row builders (WinLoss, BoxStats, print_heatmap) stay
/// the building blocks; what moved here is the plan-aware aggregation.
///
/// Every formatter walks rows strictly in the result's canonical order, so
/// the printed output is byte-identical regardless of the shard width the
/// sweep ran with.
namespace bine::exp {

/// "Comparison with Binomial Trees" table (paper Tables 3, 4, 5). Expects a
/// single-system result whose series are {best bine (contiguous), best
/// binomial}: per collective, win fractions, geometric-mean/max gains and
/// drops, and the global-traffic reduction.
void print_binomial_table(const SweepResult& result);

/// Best-algorithm heatmap for one collective (paper Figs. 9a, 10a). Expects
/// a single-system, single-collective result with series {best bine, best
/// sota}; rows are vector sizes, columns node counts.
void print_sota_heatmap(const SweepResult& result);

/// Box-plot summary of Bine's improvement over the best non-Bine algorithm,
/// restricted to configurations where Bine wins (paper Figs. 9b, 10b,
/// 11a/b). Expects a single-system result with series {best bine, best
/// sota}.
void print_sota_boxplots(const SweepResult& result);

}  // namespace bine::exp
