#include "exp/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>

#include "fault/fault.hpp"
#include "harness/parallel.hpp"
#include "tune/json.hpp"

namespace bine::exp {

// --- plan vocabulary ---------------------------------------------------------

Series Series::best_bine(bool contiguous_only, std::string label) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::best;
  s.family = Family::bine;
  s.contiguous_only = contiguous_only;
  return s;
}

Series Series::best_binomial(std::string label) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::best;
  s.family = Family::binomial;
  return s;
}

Series Series::best_sota(std::string label) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::best;
  s.family = Family::sota;
  return s;
}

Series Series::best_of(std::string label, std::vector<std::string> names) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::best;
  s.family = Family::list;
  s.algorithms = std::move(names);
  return s;
}

Series Series::single(std::string algorithm) {
  Series s;
  s.label = algorithm;
  s.pick = Pick::single;
  s.family = Family::list;
  s.algorithms = {std::move(algorithm)};
  return s;
}

Series Series::tuned(std::string label) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::tuned;
  return s;
}

std::vector<i64> NodeAxis::counts_for(Collective coll) const {
  std::vector<i64> out = counts;
  if (std::find(extra_colls.begin(), extra_colls.end(), coll) != extra_colls.end())
    out.insert(out.end(), extra_counts.begin(), extra_counts.end());
  return out;
}

const char* to_string(Backend b) {
  switch (b) {
    case Backend::simulate: return "simulate";
    case Backend::traffic: return "traffic";
    case Backend::execute_verified: return "execute_verified";
    case Backend::tuned_dispatch: return "tuned_dispatch";
    case Backend::custom: return "custom";
  }
  return "?";
}

// --- plan validation + compilation -------------------------------------------

namespace {

void validate(const SweepPlan& plan) {
  if (plan.backend == Backend::custom) {
    if (!plan.metric)
      throw std::invalid_argument("exp: Backend::custom requires plan.metric");
    return;  // empty axes become placeholder slots
  }
  if (plan.systems.empty()) throw std::invalid_argument("exp: plan.systems is empty");
  if (plan.colls.empty()) throw std::invalid_argument("exp: plan.colls is empty");
  if (plan.series.empty()) throw std::invalid_argument("exp: plan.series is empty");
  if (plan.nodes.counts.empty())
    throw std::invalid_argument("exp: plan.nodes.counts is empty");
  if (plan.sizes.empty()) throw std::invalid_argument("exp: plan.sizes is empty");
  for (const Series& s : plan.series) {
    if (s.pick == Series::Pick::tuned) {
      if (plan.backend != Backend::tuned_dispatch)
        throw std::invalid_argument(
            "exp: tuned series require Backend::tuned_dispatch");
      if (!plan.table)
        throw std::invalid_argument("exp: tuned series require plan.table");
    }
    if (s.pick == Series::Pick::single &&
        (s.family != Series::Family::list || s.algorithms.size() != 1))
      throw std::invalid_argument(
          "exp: single series need exactly one explicit algorithm");
    if (s.family == Series::Family::list && s.pick == Series::Pick::best &&
        s.algorithms.empty())
      throw std::invalid_argument("exp: best-of series has no candidates");
    if (plan.backend == Backend::execute_verified && s.pick != Series::Pick::single)
      throw std::invalid_argument(
          "exp: Backend::execute_verified supports single-algorithm series only");
  }
}

/// Effective axes: for Backend::custom, an empty axis collapses to one
/// placeholder slot the metric interprets.
struct Axes {
  size_t num_systems = 1;
  std::vector<Collective> colls;          ///< placeholder entry when plan has none
  bool placeholder_colls = false;
  std::vector<std::vector<i64>> coll_nodes;
  size_t num_series = 1;
  std::vector<i64> sizes;
  [[nodiscard]] size_t block_rows() const { return sizes.size() * num_series; }
};

Axes effective_axes(const SweepPlan& plan) {
  // Only Backend::custom collapses empty axes to placeholder slots; for the
  // built-in backends an empty axis means zero cells (run() rejects it, and
  // enumerate_cells callers like tune::Tuner get the empty enumeration).
  const bool ph = plan.backend == Backend::custom;
  Axes ax;
  ax.num_systems = plan.systems.size();
  if (plan.systems.empty() && ph) ax.num_systems = 1;
  if (plan.colls.empty()) {
    if (ph) {
      ax.colls = {Collective{}};
      ax.placeholder_colls = true;
    }
  } else {
    ax.colls = plan.colls;
  }
  for (const Collective coll : ax.colls) {
    std::vector<i64> counts = plan.nodes.counts_for(coll);
    if (counts.empty() && ph) counts = {0};
    ax.coll_nodes.push_back(std::move(counts));
  }
  ax.num_series = plan.series.size();
  if (plan.series.empty() && ph) ax.num_series = 1;
  ax.sizes = plan.sizes;
  if (plan.sizes.empty() && ph) ax.sizes = {0};
  return ax;
}

/// One deduplicated work item plus every (row-block offset) it answers: the
/// same (system, coll, p) cell can appear more than once (duplicate node
/// counts, repeated collectives) but is measured exactly once.
struct Item {
  CellRef cell;
  std::vector<size_t> row_begins;
};

std::vector<Item> compile_items(const Axes& ax) {
  std::vector<Item> items;
  std::map<std::tuple<size_t, int, i64>, size_t> index;
  size_t row = 0;
  for (size_t sys = 0; sys < ax.num_systems; ++sys) {
    for (size_t ci = 0; ci < ax.colls.size(); ++ci) {
      for (const i64 p : ax.coll_nodes[ci]) {
        const auto key = std::make_tuple(sys, static_cast<int>(ax.colls[ci]), p);
        auto [it, inserted] = index.emplace(key, items.size());
        if (inserted) items.push_back({CellRef{sys, ax.colls[ci], p}, {}});
        items[it->second].row_begins.push_back(row);
        row += ax.block_rows();
      }
    }
  }
  return items;
}

/// Candidate algorithm names of one series at one cell, in selection order.
std::vector<std::string> series_names(const Series& s, harness::Runner* runner,
                                      Collective coll) {
  switch (s.family) {
    case Series::Family::list: return s.algorithms;
    case Series::Family::bine: return runner->bine_names(coll, s.contiguous_only);
    case Series::Family::binomial: return runner->binomial_names(coll);
    case Series::Family::sota: return runner->sota_names(coll);
  }
  throw std::logic_error("unknown series family");
}

Metrics from_run(const std::string& name, const harness::RunResult& r) {
  Metrics m;
  m.algorithm = name;
  m.seconds = r.seconds;
  m.global_bytes = r.global_bytes;
  m.total_bytes = r.total_bytes;
  m.messages = r.messages;
  m.steps = r.steps;
  return m;
}

/// Measure one (system, coll, p) cell: every size x series block entry, the
/// union of candidate algorithms evaluated exactly once per size.
/// `exec_threads` is the resolved executor fan-out for verified cells (the
/// caller accounts for the sweep's own shard width -- see run()).
void measure_cell(const SweepPlan& plan, const Axes& ax, const Item& item,
                  harness::Runner* runner, i64 exec_threads,
                  std::vector<Metrics>& block) {
  const CellRef& cell = item.cell;
  block.resize(ax.block_rows());

  if (plan.backend == Backend::custom) {
    for (size_t si = 0; si < ax.sizes.size(); ++si)
      for (size_t k = 0; k < ax.num_series; ++k) {
        CellCtx ctx;
        ctx.plan = &plan;
        ctx.runner = runner;
        ctx.system = cell.system;
        ctx.coll = cell.coll;
        ctx.nodes = cell.p;
        ctx.size_bytes = ax.sizes[si];
        ctx.series = k;
        block[si * ax.num_series + k] = plan.metric(ctx);
      }
    return;
  }

  // Resolve every series' candidates once per cell, then build the union in
  // first-use order (the PR 2 sweep batching: the bine/binomial/sota rows of
  // one cell overlap heavily, and each union member is measured once).
  std::vector<std::string> names;
  std::vector<std::vector<size_t>> cands(plan.series.size());
  for (size_t k = 0; k < plan.series.size(); ++k) {
    if (plan.series[k].pick == Series::Pick::tuned) continue;
    for (std::string& name : series_names(plan.series[k], runner, cell.coll)) {
      auto pos = std::find(names.begin(), names.end(), name);
      if (pos == names.end()) {
        names.push_back(std::move(name));
        pos = names.end() - 1;
      }
      cands[k].push_back(static_cast<size_t>(pos - names.begin()));
    }
  }

  const bool verified = plan.backend == Backend::execute_verified;
  std::vector<std::optional<harness::RunResult>> eval(names.size());
  std::vector<std::optional<harness::VerifiedRun>> veval(verified ? names.size() : 0);

  for (size_t si = 0; si < ax.sizes.size(); ++si) {
    const i64 size = ax.sizes[si];
    for (size_t n = 0; n < names.size(); ++n) {
      eval[n].reset();
      if (verified) veval[n].reset();
      const auto& entry = coll::find_algorithm(cell.coll, names[n]);
      if (!runner->applicable(entry, cell.p)) continue;
      if (verified)
        veval[n] = runner->run_verified(cell.coll, entry, cell.p, size, exec_threads,
                                        plan.elem, plan.op);
      else
        eval[n] = runner->run(cell.coll, entry, cell.p, size);
    }

    for (size_t k = 0; k < plan.series.size(); ++k) {
      const Series& s = plan.series[k];
      Metrics m;
      switch (s.pick) {
        case Series::Pick::best: {
          // The exact selection (and tie-break) Runner::best_of performs:
          // strict <, candidates in the series' own order.
          double best = std::numeric_limits<double>::infinity();
          size_t best_n = names.size();
          for (const size_t n : cands[k])
            if (eval[n] && eval[n]->seconds < best) {
              best = eval[n]->seconds;
              best_n = n;
            }
          if (best_n == names.size())
            throw std::runtime_error("no applicable algorithm");
          m = from_run(names[best_n], *eval[best_n]);
          break;
        }
        case Series::Pick::single: {
          const size_t n = cands[k].front();
          m.algorithm = names[n];
          if (verified) {
            if (!veval[n]) {
              m.skipped = true;
            } else {
              const harness::VerifiedRun& v = *veval[n];
              m.ok = v.ok;
              m.error = v.error;
              m.messages = v.messages;
              m.wire_bytes = v.wire_bytes;
              m.digest = v.digest;
              m.used_cache = v.used_cache;
            }
          } else if (!eval[n]) {
            m.skipped = true;
          } else {
            m = from_run(names[n], *eval[n]);
          }
          break;
        }
        case Series::Pick::tuned: {
          const tune::Selection sel =
              tune::select(*plan.table, plan.systems[cell.system].profile, cell.coll,
                           cell.p, size, plan.miss_policy);
          // Reuse the union evaluation when another series already measured
          // the selected algorithm at this size (bench_tuner's plans pair
          // tuned with an exhaustive argmin series, so this is the common
          // case); fall back to a direct run on a miss.
          const auto pos = std::find(names.begin(), names.end(), sel.entry->name);
          if (pos != names.end() && eval[static_cast<size_t>(pos - names.begin())]) {
            m = from_run(sel.entry->name,
                         *eval[static_cast<size_t>(pos - names.begin())]);
          } else {
            m = from_run(sel.entry->name,
                         runner->run(cell.coll, *sel.entry, cell.p, size));
          }
          m.from_table = sel.from_table;
          break;
        }
      }
      block[si * ax.num_series + k] = std::move(m);
    }
  }
}

/// The failure discipline shared by run() and run_cells(): run `body` with
/// bounded deterministic retry for transient failures; on a surviving
/// failure, either rethrow (OnError::propagate) or return the structured
/// CellError (OnError::isolate). nullopt = success.
std::optional<CellError> run_guarded(const SweepPlan& plan, const std::string& system,
                                     const CellRef& cell,
                                     const std::function<void()>& body) {
  for (i64 attempt = 1;; ++attempt) {
    try {
      body();
      return std::nullopt;
    } catch (...) {
      const bool transient = fault::classify_current_exception() ==
                             fault::FaultClass::transient;
      if (transient && attempt <= plan.transient_retries) {
        fault::retry_backoff(attempt, plan.retry_backoff_ms);
        continue;
      }
      if (plan.on_error == SweepPlan::OnError::propagate) throw;
      CellError err;
      err.system = system;
      err.coll = cell.coll;
      err.nodes = cell.p;
      err.message = fault::describe_current_exception();
      err.attempts = attempt;
      err.transient = transient;
      return err;
    }
  }
}

}  // namespace

// --- engine ------------------------------------------------------------------

std::vector<std::unique_ptr<harness::Runner>> make_runners(const SweepPlan& plan) {
  std::vector<std::unique_ptr<harness::Runner>> runners;
  runners.reserve(plan.systems.size());
  for (const SystemSpec& spec : plan.systems) {
    auto r = std::make_unique<harness::Runner>(spec.profile, spec.spread_placement,
                                               spec.seed);
    r->torus_dims = spec.torus_dims;
    if (spec.private_cache) r->use_private_schedule_cache();
    if (spec.schedule_cache) r->set_schedule_cache(*spec.schedule_cache);
    runners.push_back(std::move(r));
  }
  return runners;
}

std::vector<CellRef> enumerate_cells(const SweepPlan& plan) {
  const Axes ax = effective_axes(plan);
  std::vector<CellRef> cells;
  for (const Item& item : compile_items(ax)) cells.push_back(item.cell);
  return cells;
}

std::vector<CellFailure> run_cells(
    const SweepPlan& plan,
    const std::function<void(size_t, const CellRef&, harness::Runner&)>& fn) {
  if (plan.systems.empty())
    throw std::invalid_argument(
        "exp: run_cells requires at least one system (the callback binds a Runner)");
  const std::vector<CellRef> cells = enumerate_cells(plan);
  const auto runners = make_runners(plan);
  // Warm the per-node machine instances serially so workers only compete for
  // cells, not for building the same topology/route table under a lock. A
  // cell whose instance cannot build (e.g. too few surviving ranks under a
  // fault spec) fails again inside its guarded work item, where the plan's
  // failure discipline applies -- warming must not preempt that.
  for (const CellRef& cell : cells) {
    try {
      runners[cell.system]->prewarm(cell.p);
    } catch (...) {
    }
  }
  std::vector<std::optional<CellError>> errors(cells.size());
  harness::parallel_for(
      static_cast<i64>(cells.size()),
      [&](i64 i) {
        const CellRef& cell = cells[static_cast<size_t>(i)];
        errors[static_cast<size_t>(i)] = run_guarded(
            plan, plan.systems[cell.system].profile.name, cell,
            [&] { fn(static_cast<size_t>(i), cell, *runners[cell.system]); });
      },
      plan.threads);
  // Index-addressed error slots -> deterministic cell order for any shard
  // width (empty under OnError::propagate: the first failure rethrew above).
  std::vector<CellFailure> failures;
  for (size_t i = 0; i < cells.size(); ++i)
    if (errors[i]) failures.push_back({i, cells[i], std::move(*errors[i])});
  return failures;
}

SweepResult run(const SweepPlan& plan) {
  validate(plan);
  const Axes ax = effective_axes(plan);
  const std::vector<Item> items = compile_items(ax);
  const auto runners = make_runners(plan);
  if (!runners.empty())
    for (const Item& item : items) {
      try {
        runners[item.cell.system]->prewarm(item.cell.p);
      } catch (...) {
        // Rediscovered inside the guarded work item (see run_cells).
      }
    }

  // Executor threads for verified cells: when the sweep itself fans cells
  // out across more than one worker, each cell's executor stays sequential
  // (nesting thread pools oversubscribes); a sweep that is effectively
  // serial -- one worker, or a single cell -- passes the executor's
  // size-gated auto default (exec_threads == 0) through.
  i64 exec_threads = plan.exec_threads;
  if (exec_threads == 0) {
    const i64 shard = plan.threads <= 0 ? harness::default_thread_count() : plan.threads;
    if (std::min<i64>(shard, static_cast<i64>(items.size())) > 1) exec_threads = 1;
  }

  // One work item per deduplicated (system, coll, p) cell -- the cross-system
  // fan-out axis -- each writing only its own block. Failures follow the
  // plan's discipline (run_guarded): a cell that dies under OnError::isolate
  // fills its block with failed rows and records a structured error instead
  // of aborting the sweep.
  std::vector<std::vector<Metrics>> blocks(items.size());
  std::vector<std::optional<CellError>> cell_errors(items.size());
  harness::parallel_for(
      static_cast<i64>(items.size()),
      [&](i64 i) {
        const Item& item = items[static_cast<size_t>(i)];
        harness::Runner* runner =
            runners.empty() ? nullptr : runners[item.cell.system].get();
        const std::string system =
            plan.systems.empty() ? "" : plan.systems[item.cell.system].profile.name;
        cell_errors[static_cast<size_t>(i)] =
            run_guarded(plan, system, item.cell, [&] {
              measure_cell(plan, ax, item, runner, exec_threads,
                           blocks[static_cast<size_t>(i)]);
            });
        if (cell_errors[static_cast<size_t>(i)]) {
          auto& block = blocks[static_cast<size_t>(i)];
          block.assign(ax.block_rows(), Metrics{});
          for (Metrics& m : block) {
            m.failed = true;
            m.error = cell_errors[static_cast<size_t>(i)]->message;
          }
        }
      },
      plan.threads);

  // Assemble the canonical row table (duplicated cells share one block).
  SweepResult res;
  res.plan_name = plan.name;
  res.backend = plan.backend;
  if (plan.systems.empty()) {
    res.system_names = {""};
  } else {
    for (const SystemSpec& spec : plan.systems)
      res.system_names.push_back(spec.profile.name);
  }
  res.colls = ax.colls;
  if (ax.placeholder_colls) res.colls.clear();
  if (plan.series.empty()) {
    res.series_labels = {""};
  } else {
    for (const Series& s : plan.series) res.series_labels.push_back(s.label);
  }
  res.coll_nodes = ax.coll_nodes;
  res.sizes = ax.sizes;

  size_t total_rows = 0;
  for (const Item& item : items) total_rows += item.row_begins.size() * ax.block_rows();
  res.rows.resize(total_rows);
  for (size_t i = 0; i < items.size(); ++i) {
    const Item& item = items[i];
    for (const size_t begin : item.row_begins)
      for (size_t si = 0; si < ax.sizes.size(); ++si)
        for (size_t k = 0; k < ax.num_series; ++k) {
          Row& row = res.rows[begin + si * ax.num_series + k];
          row.system = item.cell.system;
          row.coll = item.cell.coll;
          row.nodes = item.cell.p;
          row.size_bytes = ax.sizes[si];
          row.series = k;
          row.m = blocks[i][si * ax.num_series + k];
        }
  }
  // Item order = deterministic first-occurrence cell order for any shard
  // width; empty on clean runs and under OnError::propagate.
  for (auto& err : cell_errors)
    if (err) res.errors.push_back(std::move(*err));
  return res;
}

// --- result table ------------------------------------------------------------

size_t SweepResult::row_index(size_t system, size_t coll_idx, size_t node_idx,
                              size_t size_idx, size_t series_idx) const {
  const size_t S = sizes.size();
  const size_t K = series_labels.size();
  size_t per_system = 0;
  for (const auto& counts : coll_nodes) per_system += counts.size() * S * K;
  size_t idx = system * per_system;
  for (size_t c = 0; c < coll_idx; ++c) idx += coll_nodes[c].size() * S * K;
  idx += (node_idx * S + size_idx) * K + series_idx;
  return idx;
}

const Metrics& SweepResult::at(size_t system, size_t coll_idx, size_t node_idx,
                               size_t size_idx, size_t series_idx) const {
  return rows[row_index(system, coll_idx, node_idx, size_idx, series_idx)].m;
}

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_i64(std::string& out, i64 v) { out += std::to_string(v); }

}  // namespace

std::string SweepResult::to_json() const {
  std::string out;
  out.reserve(256 + rows.size() * 160);
  out += "{\n  \"plan\": \"" + tune::json::escape(plan_name) + "\",\n";
  out += "  \"backend\": \"" + std::string(to_string(backend)) + "\",\n";
  out += "  \"systems\": [";
  for (size_t i = 0; i < system_names.size(); ++i)
    out += std::string(i ? ", " : "") + "\"" + tune::json::escape(system_names[i]) + "\"";
  out += "],\n  \"series\": [";
  for (size_t i = 0; i < series_labels.size(); ++i)
    out += std::string(i ? ", " : "") + "\"" + tune::json::escape(series_labels[i]) + "\"";
  out += "],\n  \"sizes\": [";
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i) out += ", ";
    append_i64(out, sizes[i]);
  }
  out += "],\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += "    {\"system\": \"" + tune::json::escape(system_names[r.system]) + "\"";
    out += ", \"coll\": \"";
    out += colls.empty() ? "" : to_string(r.coll);
    out += "\"";
    out += ", \"series\": \"" + tune::json::escape(series_labels[r.series]) + "\"";
    out += ", \"nodes\": ";
    append_i64(out, r.nodes);
    out += ", \"size_bytes\": ";
    append_i64(out, r.size_bytes);
    if (r.m.failed) {
      out += ", \"failed\": true";
      out += ", \"error\": \"" + tune::json::escape(r.m.error) + "\"";
    } else if (r.m.skipped) {
      out += ", \"skipped\": true";
    } else if (backend == Backend::execute_verified) {
      out += ", \"algorithm\": \"" + tune::json::escape(r.m.algorithm) + "\"";
      out += std::string(", \"ok\": ") + (r.m.ok ? "true" : "false");
      if (!r.m.ok) out += ", \"error\": \"" + tune::json::escape(r.m.error) + "\"";
      out += ", \"messages\": ";
      append_i64(out, r.m.messages);
      out += ", \"wire_bytes\": ";
      append_i64(out, r.m.wire_bytes);
      char hex[24];
      std::snprintf(hex, sizeof(hex), "0x%016llx",
                    static_cast<unsigned long long>(r.m.digest));
      out += ", \"digest\": \"" + std::string(hex) + "\"";
      out += std::string(", \"used_cache\": ") + (r.m.used_cache ? "true" : "false");
    } else if (backend == Backend::custom) {
      if (!r.m.algorithm.empty())
        out += ", \"algorithm\": \"" + tune::json::escape(r.m.algorithm) + "\"";
      out += ", \"value\": ";
      append_double(out, r.m.value);
      if (!r.m.extra.empty()) {
        out += ", \"extra\": [";
        for (size_t e = 0; e < r.m.extra.size(); ++e) {
          if (e) out += ", ";
          append_double(out, r.m.extra[e]);
        }
        out += "]";
      }
    } else {
      out += ", \"algorithm\": \"" + tune::json::escape(r.m.algorithm) + "\"";
      out += ", \"seconds\": ";
      append_double(out, r.m.seconds);
      out += ", \"global_bytes\": ";
      append_i64(out, r.m.global_bytes);
      out += ", \"total_bytes\": ";
      append_i64(out, r.m.total_bytes);
      out += ", \"messages\": ";
      append_i64(out, r.m.messages);
      out += ", \"steps\": ";
      append_i64(out, static_cast<i64>(r.m.steps));
      if (backend == Backend::tuned_dispatch)
        out += std::string(", \"from_table\": ") + (r.m.from_table ? "true" : "false");
    }
    out += i + 1 < rows.size() ? "},\n" : "}\n";
  }
  out += "  ]";
  // The errors array only exists when failures were isolated, so a clean
  // run's output is byte-identical to the pre-fault-layer format.
  if (!errors.empty()) {
    out += ",\n  \"errors\": [\n";
    for (size_t i = 0; i < errors.size(); ++i) {
      const CellError& e = errors[i];
      out += "    {\"system\": \"" + tune::json::escape(e.system) + "\"";
      out += ", \"coll\": \"";
      out += to_string(e.coll);
      out += "\"";
      out += ", \"nodes\": ";
      append_i64(out, e.nodes);
      out += ", \"message\": \"" + tune::json::escape(e.message) + "\"";
      out += ", \"attempts\": ";
      append_i64(out, e.attempts);
      out += std::string(", \"transient\": ") + (e.transient ? "true" : "false");
      out += i + 1 < errors.size() ? "},\n" : "}\n";
    }
    out += "  ]";
  }
  out += "\n}\n";
  return out;
}

void SweepResult::save_json(const std::string& path) const {
  fault::write_file_atomic(path, to_json());
}

}  // namespace bine::exp
