#include "exp/sweep.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "core/fnv.hpp"
#include "exp/journal.hpp"
#include "fault/fault.hpp"
#include "harness/parallel.hpp"
#include "tune/json.hpp"

namespace bine::exp {

// --- plan vocabulary ---------------------------------------------------------

Series Series::best_bine(bool contiguous_only, std::string label) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::best;
  s.family = Family::bine;
  s.contiguous_only = contiguous_only;
  return s;
}

Series Series::best_binomial(std::string label) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::best;
  s.family = Family::binomial;
  return s;
}

Series Series::best_sota(std::string label) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::best;
  s.family = Family::sota;
  return s;
}

Series Series::best_of(std::string label, std::vector<std::string> names) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::best;
  s.family = Family::list;
  s.algorithms = std::move(names);
  return s;
}

Series Series::single(std::string algorithm) {
  Series s;
  s.label = algorithm;
  s.pick = Pick::single;
  s.family = Family::list;
  s.algorithms = {std::move(algorithm)};
  return s;
}

Series Series::tuned(std::string label) {
  Series s;
  s.label = std::move(label);
  s.pick = Pick::tuned;
  return s;
}

std::vector<i64> NodeAxis::counts_for(Collective coll) const {
  std::vector<i64> out = counts;
  if (std::find(extra_colls.begin(), extra_colls.end(), coll) != extra_colls.end())
    out.insert(out.end(), extra_counts.begin(), extra_counts.end());
  return out;
}

const char* to_string(Backend b) {
  switch (b) {
    case Backend::simulate: return "simulate";
    case Backend::traffic: return "traffic";
    case Backend::execute_verified: return "execute_verified";
    case Backend::tuned_dispatch: return "tuned_dispatch";
    case Backend::custom: return "custom";
  }
  return "?";
}

Backend backend_from_string(std::string_view name) {
  for (const Backend b : {Backend::simulate, Backend::traffic,
                          Backend::execute_verified, Backend::tuned_dispatch,
                          Backend::custom})
    if (name == to_string(b)) return b;
  throw std::invalid_argument("exp: unknown backend \"" + std::string(name) + "\"");
}

// --- plan validation + compilation -------------------------------------------

namespace {

void validate(const SweepPlan& plan) {
  if (plan.backend == Backend::custom) {
    if (!plan.metric)
      throw std::invalid_argument("exp: Backend::custom requires plan.metric");
    if (!plan.journal_path.empty())
      throw std::invalid_argument(
          "exp: Backend::custom plans cannot journal (an opaque metric cannot "
          "be fingerprinted, so replay safety cannot be proven)");
    return;  // empty axes become placeholder slots
  }
  if (plan.systems.empty()) throw std::invalid_argument("exp: plan.systems is empty");
  if (plan.colls.empty()) throw std::invalid_argument("exp: plan.colls is empty");
  if (plan.series.empty()) throw std::invalid_argument("exp: plan.series is empty");
  if (plan.nodes.counts.empty())
    throw std::invalid_argument("exp: plan.nodes.counts is empty");
  if (plan.sizes.empty()) throw std::invalid_argument("exp: plan.sizes is empty");
  for (const Series& s : plan.series) {
    if (s.pick == Series::Pick::tuned) {
      if (plan.backend != Backend::tuned_dispatch)
        throw std::invalid_argument(
            "exp: tuned series require Backend::tuned_dispatch");
      if (!plan.table)
        throw std::invalid_argument("exp: tuned series require plan.table");
    }
    if (s.pick == Series::Pick::single &&
        (s.family != Series::Family::list || s.algorithms.size() != 1))
      throw std::invalid_argument(
          "exp: single series need exactly one explicit algorithm");
    if (s.family == Series::Family::list && s.pick == Series::Pick::best &&
        s.algorithms.empty())
      throw std::invalid_argument("exp: best-of series has no candidates");
    if (plan.backend == Backend::execute_verified && s.pick != Series::Pick::single)
      throw std::invalid_argument(
          "exp: Backend::execute_verified supports single-algorithm series only");
  }
}

/// Effective axes: for Backend::custom, an empty axis collapses to one
/// placeholder slot the metric interprets.
struct Axes {
  size_t num_systems = 1;
  std::vector<Collective> colls;          ///< placeholder entry when plan has none
  bool placeholder_colls = false;
  std::vector<std::vector<i64>> coll_nodes;
  size_t num_series = 1;
  std::vector<i64> sizes;
  [[nodiscard]] size_t block_rows() const { return sizes.size() * num_series; }
};

Axes effective_axes(const SweepPlan& plan) {
  // Only Backend::custom collapses empty axes to placeholder slots; for the
  // built-in backends an empty axis means zero cells (run() rejects it, and
  // enumerate_cells callers like tune::Tuner get the empty enumeration).
  const bool ph = plan.backend == Backend::custom;
  Axes ax;
  ax.num_systems = plan.systems.size();
  if (plan.systems.empty() && ph) ax.num_systems = 1;
  if (plan.colls.empty()) {
    if (ph) {
      ax.colls = {Collective{}};
      ax.placeholder_colls = true;
    }
  } else {
    ax.colls = plan.colls;
  }
  for (const Collective coll : ax.colls) {
    std::vector<i64> counts = plan.nodes.counts_for(coll);
    if (counts.empty() && ph) counts = {0};
    ax.coll_nodes.push_back(std::move(counts));
  }
  ax.num_series = plan.series.size();
  if (plan.series.empty() && ph) ax.num_series = 1;
  ax.sizes = plan.sizes;
  if (plan.sizes.empty() && ph) ax.sizes = {0};
  return ax;
}

/// One deduplicated work item plus every (row-block offset) it answers: the
/// same (system, coll, p) cell can appear more than once (duplicate node
/// counts, repeated collectives) but is measured exactly once.
struct Item {
  CellRef cell;
  std::vector<size_t> row_begins;
};

std::vector<Item> compile_items(const Axes& ax) {
  std::vector<Item> items;
  std::map<std::tuple<size_t, int, i64>, size_t> index;
  size_t row = 0;
  for (size_t sys = 0; sys < ax.num_systems; ++sys) {
    for (size_t ci = 0; ci < ax.colls.size(); ++ci) {
      for (const i64 p : ax.coll_nodes[ci]) {
        const auto key = std::make_tuple(sys, static_cast<int>(ax.colls[ci]), p);
        auto [it, inserted] = index.emplace(key, items.size());
        if (inserted) items.push_back({CellRef{sys, ax.colls[ci], p}, {}});
        items[it->second].row_begins.push_back(row);
        row += ax.block_rows();
      }
    }
  }
  return items;
}

/// Candidate algorithm names of one series at one cell, in selection order.
std::vector<std::string> series_names(const Series& s, harness::Runner* runner,
                                      Collective coll) {
  switch (s.family) {
    case Series::Family::list: return s.algorithms;
    case Series::Family::bine: return runner->bine_names(coll, s.contiguous_only);
    case Series::Family::binomial: return runner->binomial_names(coll);
    case Series::Family::sota: return runner->sota_names(coll);
  }
  throw std::logic_error("unknown series family");
}

Metrics from_run(const std::string& name, const harness::RunResult& r) {
  Metrics m;
  m.algorithm = name;
  m.seconds = r.seconds;
  m.global_bytes = r.global_bytes;
  m.total_bytes = r.total_bytes;
  m.messages = r.messages;
  m.steps = r.steps;
  return m;
}

/// Measure one (system, coll, p) cell: every size x series block entry, the
/// union of candidate algorithms evaluated exactly once per size.
/// `exec_threads` is the resolved executor fan-out for verified cells (the
/// caller accounts for the sweep's own shard width -- see run()). The guard
/// is checkpointed between evaluations -- the cooperative deadline boundary.
void measure_cell(const SweepPlan& plan, const Axes& ax, const Item& item,
                  harness::Runner* runner, i64 exec_threads,
                  const harness::CellGuard& guard, std::vector<Metrics>& block) {
  const CellRef& cell = item.cell;
  block.resize(ax.block_rows());

  if (plan.backend == Backend::custom) {
    for (size_t si = 0; si < ax.sizes.size(); ++si)
      for (size_t k = 0; k < ax.num_series; ++k) {
        guard.checkpoint("custom metric evaluation");
        CellCtx ctx;
        ctx.plan = &plan;
        ctx.runner = runner;
        ctx.system = cell.system;
        ctx.coll = cell.coll;
        ctx.nodes = cell.p;
        ctx.size_bytes = ax.sizes[si];
        ctx.series = k;
        ctx.guard = &guard;
        block[si * ax.num_series + k] = plan.metric(ctx);
      }
    return;
  }

  // Resolve every series' candidates once per cell, then build the union in
  // first-use order (the PR 2 sweep batching: the bine/binomial/sota rows of
  // one cell overlap heavily, and each union member is measured once).
  std::vector<std::string> names;
  std::vector<std::vector<size_t>> cands(plan.series.size());
  for (size_t k = 0; k < plan.series.size(); ++k) {
    if (plan.series[k].pick == Series::Pick::tuned) continue;
    for (std::string& name : series_names(plan.series[k], runner, cell.coll)) {
      auto pos = std::find(names.begin(), names.end(), name);
      if (pos == names.end()) {
        names.push_back(std::move(name));
        pos = names.end() - 1;
      }
      cands[k].push_back(static_cast<size_t>(pos - names.begin()));
    }
  }

  const bool verified = plan.backend == Backend::execute_verified;
  std::vector<std::optional<harness::RunResult>> eval(names.size());
  std::vector<std::optional<harness::VerifiedRun>> veval(verified ? names.size() : 0);

  // Simulation backends hand the cell's WHOLE candidate pool and size axis
  // to the batched engine in one call: Runner::run_candidates makes one
  // structural pass per cell (union pair table through the process route
  // memo, shared lane tiles) -- bit-identical to looping run_sizes per
  // candidate, which was itself bit-identical to the per-size path.
  // Verified execution stays per-size (real buffers scale with the vector).
  std::vector<std::vector<harness::RunResult>> eval_sizes;
  if (!verified) {
    guard.checkpoint("algorithm evaluation");
    std::vector<const coll::AlgorithmEntry*> algos(names.size(), nullptr);
    for (size_t n = 0; n < names.size(); ++n) {
      const auto& entry = coll::find_algorithm(cell.coll, names[n]);
      if (runner->applicable(entry, cell.p)) algos[n] = &entry;
    }
    eval_sizes = runner->run_candidates(cell.coll, algos, cell.p, ax.sizes);
  }

  for (size_t si = 0; si < ax.sizes.size(); ++si) {
    const i64 size = ax.sizes[si];
    for (size_t n = 0; n < names.size(); ++n) {
      eval[n].reset();
      if (verified) {
        veval[n].reset();
        guard.checkpoint("algorithm evaluation");
        const auto& entry = coll::find_algorithm(cell.coll, names[n]);
        if (!runner->applicable(entry, cell.p)) continue;
        veval[n] = runner->run_verified(cell.coll, entry, cell.p, size, exec_threads,
                                        plan.elem, plan.op);
      } else if (!eval_sizes[n].empty()) {
        eval[n] = eval_sizes[n][si];
      }
    }

    for (size_t k = 0; k < plan.series.size(); ++k) {
      const Series& s = plan.series[k];
      Metrics m;
      switch (s.pick) {
        case Series::Pick::best: {
          // The exact selection (and tie-break) Runner::best_of performs:
          // strict <, candidates in the series' own order.
          double best = std::numeric_limits<double>::infinity();
          size_t best_n = names.size();
          for (const size_t n : cands[k])
            if (eval[n] && eval[n]->seconds < best) {
              best = eval[n]->seconds;
              best_n = n;
            }
          if (best_n == names.size())
            throw std::runtime_error("no applicable algorithm");
          m = from_run(names[best_n], *eval[best_n]);
          break;
        }
        case Series::Pick::single: {
          const size_t n = cands[k].front();
          m.algorithm = names[n];
          if (verified) {
            if (!veval[n]) {
              m.skipped = true;
            } else {
              const harness::VerifiedRun& v = *veval[n];
              m.ok = v.ok;
              m.error = v.error;
              m.messages = v.messages;
              m.wire_bytes = v.wire_bytes;
              m.stage_bytes = v.stage_bytes;
              m.digest = v.digest;
              m.used_cache = v.used_cache;
            }
          } else if (!eval[n]) {
            m.skipped = true;
          } else {
            m = from_run(names[n], *eval[n]);
          }
          break;
        }
        case Series::Pick::tuned: {
          const tune::Selection sel =
              tune::select(*plan.table, plan.systems[cell.system].profile, cell.coll,
                           cell.p, size, plan.miss_policy);
          // Reuse the union evaluation when another series already measured
          // the selected algorithm at this size (bench_tuner's plans pair
          // tuned with an exhaustive argmin series, so this is the common
          // case); fall back to a direct run on a miss.
          const auto pos = std::find(names.begin(), names.end(), sel.entry->name);
          if (pos != names.end() && eval[static_cast<size_t>(pos - names.begin())]) {
            m = from_run(sel.entry->name,
                         *eval[static_cast<size_t>(pos - names.begin())]);
          } else {
            m = from_run(sel.entry->name,
                         runner->run(cell.coll, *sel.entry, cell.p, size));
          }
          m.from_table = sel.from_table;
          break;
        }
      }
      block[si * ax.num_series + k] = std::move(m);
    }
  }
}

/// The failure discipline shared by run() and run_cells(): run `body` with
/// bounded deterministic retry for transient failures; on a surviving
/// failure, either rethrow (OnError::propagate) or return the structured
/// CellError (OnError::isolate). nullopt = success. Each attempt runs under
/// a freshly armed deadline guard -- a retried cell gets the full
/// cell_deadline_ms budget again, and DeadlineExceeded itself classifies
/// permanent (re-running a wedged cell under the same budget wedges again).
std::optional<CellError> run_guarded(
    const SweepPlan& plan, const std::string& system, const CellRef& cell,
    const std::function<void(const harness::CellGuard&)>& body) {
  for (i64 attempt = 1;; ++attempt) {
    try {
      const harness::CellGuard guard{harness::Deadline::after_ms(plan.cell_deadline_ms)};
      body(guard);
      return std::nullopt;
    } catch (...) {
      const bool transient = fault::classify_current_exception() ==
                             fault::FaultClass::transient;
      if (transient && attempt <= plan.transient_retries) {
        fault::retry_backoff(attempt, plan.retry_backoff_ms);
        continue;
      }
      if (plan.on_error == SweepPlan::OnError::propagate) throw;
      CellError err;
      err.system = system;
      err.coll = cell.coll;
      err.nodes = cell.p;
      err.message = fault::describe_current_exception();
      err.attempts = attempt;
      err.transient = transient;
      err.deadline_exceeded = fault::current_exception_is_deadline();
      return err;
    }
  }
}

// --- journal payload codec for Metrics blocks --------------------------------
//
// Byte-identical resume requires a LOSSLESS round trip: doubles travel as
// their 64-bit patterns (16 hex chars), never through printf/strtod, and
// strings escape the framing characters (backslash, tab, newline). A cell
// payload is either "b1 ok <rows>" followed by one tab-separated row per
// block entry, or "b1 err" carrying the structured CellError (so replaying a
// journaled failure reproduces the same failed rows, attempts included).

void esc_field(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

std::string unesc_field(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) throw std::runtime_error("journal codec: dangling escape");
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default: throw std::runtime_error("journal codec: bad escape");
    }
  }
  return out;
}

void put_hex64(std::string& out, u64 v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  out += buf;
}

[[nodiscard]] u64 get_hex64(std::string_view s) {
  if (s.size() != 16) throw std::runtime_error("journal codec: bad hex field");
  u64 v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<u64>(c - 'a' + 10);
    else
      throw std::runtime_error("journal codec: bad hex field");
  }
  return v;
}

void put_double_bits(std::string& out, double d) {
  u64 bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  put_hex64(out, bits);
}

[[nodiscard]] double get_double_bits(std::string_view s) {
  const u64 bits = get_hex64(s);
  double d = 0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

[[nodiscard]] i64 get_i64(std::string_view s) {
  i64 v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw std::runtime_error("journal codec: bad integer field");
  return v;
}

std::vector<std::string_view> split_view(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t pos = 0;
  for (;;) {
    const size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
}

constexpr size_t kRowFields = 13;

void encode_metrics_row(std::string& out, const Metrics& m) {
  esc_field(out, m.algorithm);
  out += '\t';
  put_double_bits(out, m.seconds);
  out += '\t';
  out += std::to_string(m.global_bytes);
  out += '\t';
  out += std::to_string(m.total_bytes);
  out += '\t';
  out += std::to_string(m.messages);
  out += '\t';
  out += std::to_string(m.steps);
  out += '\t';
  const unsigned flags = (m.skipped ? 1u : 0u) | (m.failed ? 2u : 0u) |
                         (m.ok ? 4u : 0u) | (m.used_cache ? 8u : 0u) |
                         (m.from_table ? 16u : 0u) | (m.cancelled ? 32u : 0u);
  out += std::to_string(flags);
  out += '\t';
  esc_field(out, m.error);
  out += '\t';
  out += std::to_string(m.wire_bytes);
  out += '\t';
  out += std::to_string(m.stage_bytes);
  out += '\t';
  put_hex64(out, m.digest);
  out += '\t';
  put_double_bits(out, m.value);
  out += '\t';
  for (size_t e = 0; e < m.extra.size(); ++e) {
    if (e) out += ' ';
    put_double_bits(out, m.extra[e]);
  }
  out += '\n';
}

[[nodiscard]] Metrics decode_metrics_row(std::string_view line) {
  const std::vector<std::string_view> f = split_view(line, '\t');
  if (f.size() != kRowFields)
    throw std::runtime_error("journal codec: bad row field count");
  Metrics m;
  m.algorithm = unesc_field(f[0]);
  m.seconds = get_double_bits(f[1]);
  m.global_bytes = get_i64(f[2]);
  m.total_bytes = get_i64(f[3]);
  m.messages = get_i64(f[4]);
  m.steps = static_cast<size_t>(get_i64(f[5]));
  const auto flags = static_cast<unsigned>(get_i64(f[6]));
  m.skipped = (flags & 1u) != 0;
  m.failed = (flags & 2u) != 0;
  m.ok = (flags & 4u) != 0;
  m.used_cache = (flags & 8u) != 0;
  m.from_table = (flags & 16u) != 0;
  m.cancelled = (flags & 32u) != 0;
  m.error = unesc_field(f[7]);
  m.wire_bytes = get_i64(f[8]);
  m.stage_bytes = get_i64(f[9]);
  m.digest = get_hex64(f[10]);
  m.value = get_double_bits(f[11]);
  if (!f[12].empty())
    for (const std::string_view e : split_view(f[12], ' '))
      m.extra.push_back(get_double_bits(e));
  return m;
}

std::string encode_metrics_block(const std::vector<Metrics>& block,
                                 const CellError* err) {
  std::string out;
  if (err != nullptr) {
    out += "b1 err\t" + std::to_string(err->attempts) + "\t";
    out += err->transient ? '1' : '0';
    out += '\t';
    out += err->deadline_exceeded ? '1' : '0';
    out += '\t';
    esc_field(out, err->message);
    out += '\n';
    return out;
  }
  out.reserve(16 + block.size() * 96);
  out += "b1 ok " + std::to_string(block.size()) + "\n";
  for (const Metrics& m : block) encode_metrics_row(out, m);
  return out;
}

/// Replay one journaled cell payload: fills `block` (exactly expected_rows
/// rows) for a success, or returns the partial CellError (coordinates are
/// the caller's) for a journaled failure. Throws on any mismatch, which the
/// engine treats as "re-execute fresh".
[[nodiscard]] std::optional<CellError> decode_metrics_block(
    std::string_view payload, size_t expected_rows, std::vector<Metrics>& block) {
  const size_t line_end = payload.find('\n');
  if (line_end == std::string_view::npos)
    throw std::runtime_error("journal codec: missing block header");
  const std::string_view head = payload.substr(0, line_end);
  if (head.substr(0, 6) == "b1 ok ") {
    if (get_i64(head.substr(6)) != static_cast<i64>(expected_rows))
      throw std::runtime_error("journal codec: block row count mismatch");
    block.clear();
    block.reserve(expected_rows);
    size_t pos = line_end + 1;
    for (size_t r = 0; r < expected_rows; ++r) {
      const size_t next = payload.find('\n', pos);
      if (next == std::string_view::npos)
        throw std::runtime_error("journal codec: truncated block");
      block.push_back(decode_metrics_row(payload.substr(pos, next - pos)));
      pos = next + 1;
    }
    if (pos != payload.size())
      throw std::runtime_error("journal codec: trailing bytes after block");
    return std::nullopt;
  }
  const std::vector<std::string_view> f = split_view(head, '\t');
  if (f.size() != 5 || f[0] != "b1 err")
    throw std::runtime_error("journal codec: bad block header");
  CellError err;
  err.attempts = get_i64(f[1]);
  err.transient = f[2] == "1";
  err.deadline_exceeded = f[3] == "1";
  err.message = unesc_field(f[4]);
  return err;
}

// --- the shared execution engine ---------------------------------------------

/// Outcome of execute_cells: per-cell error slots plus how each cell was
/// satisfied (replayed from the journal / executed / neither = cancelled).
struct ExecOutcome {
  std::vector<std::optional<CellError>> errors;
  std::vector<char> replayed;
  std::vector<char> ran;
  SweepResult::JournalStats stats;
  std::vector<std::string> notes;
};

/// The single execution path under run() and run_cells(): open the journal
/// and resolve replays (serially -- workers never touch the record map),
/// prewarm only the cells that will actually run, then fan the rest out
/// under the plan's failure discipline, journaling and reporting progress as
/// each work item completes. Cancellation stops unstarted cells via
/// parallel_for's drain semantics; those cells end with neither `replayed`
/// nor `ran` set.
ExecOutcome execute_cells(
    const SweepPlan& plan, const std::vector<CellRef>& cells,
    const std::vector<std::unique_ptr<harness::Runner>>& runners,
    const CellCodec* codec,
    const std::function<void(size_t, const CellRef&, harness::Runner*,
                             const harness::CellGuard&)>& fn) {
  const size_t n = cells.size();
  ExecOutcome out;
  out.errors.resize(n);
  out.replayed.assign(n, 0);
  out.ran.assign(n, 0);

  std::unique_ptr<Journal> journal;
  if (!plan.journal_path.empty()) {
    if (codec == nullptr || !codec->encode || !codec->decode)
      throw std::logic_error("exp: journaled execution requires a cell codec");
    Journal::OpenReport jrep;
    journal = Journal::open(plan.journal_path, plan_fingerprint(plan), &jrep);
    out.stats.dropped_records = jrep.dropped;
    for (std::string& note : jrep.notes) out.notes.push_back(std::move(note));
  }

  if (journal) {
    for (size_t i = 0; i < n; ++i) {
      const std::string* payload = journal->lookup(cell_key(cells[i]));
      if (payload == nullptr) continue;
      try {
        out.errors[i] = codec->decode(i, *payload);
        out.replayed[i] = 1;
      } catch (...) {
        // The checksum already vouched for these bytes, so a decode failure
        // is schema drift, not disk damage: re-execute the cell fresh.
        out.notes.push_back("journal payload for " + cell_key(cells[i]) +
                            " failed to decode (" +
                            fault::describe_current_exception() + "); re-executing");
      }
    }
  }

  // Warm the per-node machine instances serially so workers only compete for
  // cells, not for building the same topology/route table under a lock --
  // and only for cells that will actually run: replayed cells must not pay
  // the topology build. A cell whose instance cannot build fails again
  // inside its guarded work item, where the plan's failure discipline
  // applies -- warming must not preempt that.
  if (!runners.empty())
    for (size_t i = 0; i < n; ++i) {
      if (out.replayed[i]) continue;
      try {
        runners[cells[i].system]->prewarm(cells[i].p);
      } catch (...) {
      }
    }

  std::mutex sink_mutex;  // serializes journal appends and the progress hook
  size_t done = 0;
  bool append_failed = false;
  for (size_t i = 0; i < n; ++i)
    if (out.replayed[i] && plan.progress) plan.progress(++done, n);
  if (!plan.progress)
    for (size_t i = 0; i < n; ++i) done += out.replayed[i] ? 1u : 0u;

  harness::parallel_for(
      static_cast<i64>(n),
      [&](i64 idx) {
        const size_t i = static_cast<size_t>(idx);
        if (out.replayed[i]) return;
        const CellRef& cell = cells[i];
        harness::Runner* runner =
            runners.empty() ? nullptr : runners[cell.system].get();
        const std::string system =
            plan.systems.empty() ? "" : plan.systems[cell.system].profile.name;
        out.errors[i] = run_guarded(
            plan, system, cell,
            [&](const harness::CellGuard& guard) { fn(i, cell, runner, guard); });
        out.ran[i] = 1;
        std::lock_guard<std::mutex> lock(sink_mutex);
        if (journal) {
          const std::string payload =
              codec->encode(i, out.errors[i] ? &*out.errors[i] : nullptr);
          if (!payload.empty() && !journal->append(cell_key(cell), payload))
            append_failed = true;
        }
        ++done;
        if (plan.progress) plan.progress(done, n);
      },
      plan.threads, plan.cancel);

  if (append_failed)
    out.notes.push_back("journal " + plan.journal_path +
                        ": append failed; resume coverage is partial");
  for (size_t i = 0; i < n; ++i) {
    out.stats.replayed += out.replayed[i] ? 1 : 0;
    out.stats.executed += out.ran[i] ? 1 : 0;
  }
  return out;
}

}  // namespace

// --- engine ------------------------------------------------------------------

std::vector<std::unique_ptr<harness::Runner>> make_runners(const SweepPlan& plan) {
  std::vector<std::unique_ptr<harness::Runner>> runners;
  runners.reserve(plan.systems.size());
  for (const SystemSpec& spec : plan.systems) {
    auto r = std::make_unique<harness::Runner>(spec.profile, spec.spread_placement,
                                               spec.seed);
    r->torus_dims = spec.torus_dims;
    if (spec.private_cache) r->use_private_schedule_cache();
    if (spec.schedule_cache) r->set_schedule_cache(*spec.schedule_cache);
    runners.push_back(std::move(r));
  }
  return runners;
}

std::vector<CellRef> enumerate_cells(const SweepPlan& plan) {
  const Axes ax = effective_axes(plan);
  std::vector<CellRef> cells;
  for (const Item& item : compile_items(ax)) cells.push_back(item.cell);
  return cells;
}

std::string cell_key(const CellRef& cell) {
  return "s" + std::to_string(cell.system) + "." +
         std::string(to_string(cell.coll)) + ".p" + std::to_string(cell.p);
}

u64 plan_fingerprint(const SweepPlan& plan) {
  u64 h = core::kFnvOffset;
  const auto mix = [&h](u64 v) { core::fnv_mix_bytes(h, &v, sizeof(v)); };
  const auto mix_str = [&h](std::string_view s) { core::fnv_mix_string(h, s); };
  mix_str("bine.sweep.plan.v1");
  mix_str(plan.name);
  mix(plan.systems.size());
  for (const SystemSpec& s : plan.systems) {
    // profile_fingerprint covers the machine model, fault spec included.
    mix(tune::profile_fingerprint(s.profile));
    mix(s.spread_placement ? 1u : 0u);
    mix(s.seed);
    mix(s.torus_dims.size());
    for (const i64 d : s.torus_dims) mix(static_cast<u64>(d));
    mix(s.schedule_cache ? (*s.schedule_cache ? 2u : 1u) : 0u);
    mix(s.private_cache ? 1u : 0u);
  }
  mix(plan.colls.size());
  for (const Collective c : plan.colls) mix(static_cast<u64>(static_cast<int>(c)));
  mix(plan.series.size());
  for (const Series& s : plan.series) {
    mix_str(s.label);
    mix(static_cast<u64>(static_cast<int>(s.pick)));
    mix(static_cast<u64>(static_cast<int>(s.family)));
    mix(s.contiguous_only ? 1u : 0u);
    mix(s.algorithms.size());
    for (const std::string& a : s.algorithms) mix_str(a);
  }
  mix(plan.nodes.counts.size());
  for (const i64 p : plan.nodes.counts) mix(static_cast<u64>(p));
  mix(plan.nodes.extra_counts.size());
  for (const i64 p : plan.nodes.extra_counts) mix(static_cast<u64>(p));
  mix(plan.nodes.extra_colls.size());
  for (const Collective c : plan.nodes.extra_colls)
    mix(static_cast<u64>(static_cast<int>(c)));
  mix(plan.sizes.size());
  for (const i64 s : plan.sizes) mix(static_cast<u64>(s));
  mix(static_cast<u64>(static_cast<int>(plan.backend)));
  mix(static_cast<u64>(static_cast<int>(plan.elem)));
  mix(static_cast<u64>(static_cast<int>(plan.op)));
  mix(static_cast<u64>(plan.exec_threads));
  mix(static_cast<u64>(static_cast<int>(plan.miss_policy)));
  // tuned_dispatch results depend on the table's content, so hash its
  // canonical serialization -- a retuned table must never replay stale rows.
  if (plan.table != nullptr) mix_str(plan.table->dump());
  mix(plan.journal_salt);
  return h;
}

std::vector<CellFailure> run_cells(
    const SweepPlan& plan,
    const std::function<void(size_t, const CellRef&, harness::Runner&,
                             const harness::CellGuard&)>& fn,
    const CellCodec* codec, RunCellsReport* report) {
  if (plan.systems.empty())
    throw std::invalid_argument(
        "exp: run_cells requires at least one system (the callback binds a Runner)");
  const std::vector<CellRef> cells = enumerate_cells(plan);
  const auto runners = make_runners(plan);
  ExecOutcome out = execute_cells(
      plan, cells, runners, codec,
      [&](size_t i, const CellRef& cell, harness::Runner* runner,
          const harness::CellGuard& guard) { fn(i, cell, *runner, guard); });
  // Index-addressed error slots -> deterministic cell order for any shard
  // width (empty under OnError::propagate: the first failure rethrew above).
  std::vector<CellFailure> failures;
  for (size_t i = 0; i < cells.size(); ++i)
    if (out.errors[i]) failures.push_back({i, cells[i], std::move(*out.errors[i])});
  if (report != nullptr) {
    report->executed = out.stats.executed;
    report->replayed = out.stats.replayed;
    report->journal_dropped = out.stats.dropped_records;
    report->cancelled.clear();
    for (size_t i = 0; i < cells.size(); ++i)
      if (!out.replayed[i] && !out.ran[i]) report->cancelled.push_back(i);
    report->notes = std::move(out.notes);
  }
  return failures;
}

SweepResult run(const SweepPlan& plan) {
  validate(plan);
  const Axes ax = effective_axes(plan);
  const std::vector<Item> items = compile_items(ax);
  const auto runners = make_runners(plan);

  // Executor threads for verified cells: when the sweep itself fans cells
  // out across more than one worker, each cell's executor stays sequential
  // (nesting thread pools oversubscribes); a sweep that is effectively
  // serial -- one worker, or a single cell -- passes the executor's
  // size-gated auto default (exec_threads == 0) through.
  i64 exec_threads = plan.exec_threads;
  if (exec_threads == 0) {
    const i64 shard = plan.threads <= 0 ? harness::default_thread_count() : plan.threads;
    if (std::min<i64>(shard, static_cast<i64>(items.size())) > 1) exec_threads = 1;
  }

  std::vector<CellRef> cells;
  cells.reserve(items.size());
  for (const Item& item : items) cells.push_back(item.cell);

  // The journal codec over Metrics blocks: failures journal the structured
  // CellError (so a replayed failure reproduces the same failed rows,
  // attempts included), successes journal the full block bit-exactly.
  std::vector<std::vector<Metrics>> blocks(items.size());
  CellCodec codec;
  codec.encode = [&](size_t i, const CellError* err) {
    return encode_metrics_block(blocks[i], err);
  };
  codec.decode = [&](size_t i, std::string_view payload) -> std::optional<CellError> {
    std::optional<CellError> err =
        decode_metrics_block(payload, ax.block_rows(), blocks[i]);
    if (err) {
      err->system = plan.systems.empty() ? "" : plan.systems[cells[i].system].profile.name;
      err->coll = cells[i].coll;
      err->nodes = cells[i].p;
      // A failure journaled under OnError::isolate must not replay into a
      // propagate run as a quiet error row: throwing here sends the cell
      // back to fresh execution, where the (deterministic) failure recurs
      // and propagates like it always did.
      if (plan.on_error == SweepPlan::OnError::propagate)
        throw std::runtime_error("journaled failure under OnError::propagate");
    }
    return err;
  };

  // One work item per deduplicated (system, coll, p) cell -- the cross-system
  // fan-out axis -- each writing only its own block. Failures follow the
  // plan's discipline (run_guarded): a cell that dies under OnError::isolate
  // fills its block with failed rows and records a structured error instead
  // of aborting the sweep.
  ExecOutcome out = execute_cells(
      plan, cells, runners, plan.journal_path.empty() ? nullptr : &codec,
      [&](size_t i, const CellRef&, harness::Runner* runner,
          const harness::CellGuard& guard) {
        measure_cell(plan, ax, items[i], runner, exec_threads, guard, blocks[i]);
      });

  // Assemble the canonical row table (duplicated cells share one block).
  SweepResult res;
  // JournalStats are a durable-layer observable only: a journal-off run
  // reports all-zero so its result stays indistinguishable from pre-journal
  // engine output.
  if (!plan.journal_path.empty()) res.journal = out.stats;
  for (size_t i = 0; i < items.size(); ++i) {
    if (out.errors[i]) {
      blocks[i].assign(ax.block_rows(), Metrics{});
      for (Metrics& m : blocks[i]) {
        m.failed = true;
        m.error = out.errors[i]->message;
      }
    } else if (!out.replayed[i] && !out.ran[i]) {
      // Cancelled before it started: marked, never journaled -- a resumed
      // run re-executes exactly these cells.
      res.cancelled = true;
      blocks[i].assign(ax.block_rows(), Metrics{});
      for (Metrics& m : blocks[i]) m.cancelled = true;
    }
  }
  res.plan_name = plan.name;
  res.backend = plan.backend;
  if (plan.systems.empty()) {
    res.system_names = {""};
  } else {
    for (const SystemSpec& spec : plan.systems)
      res.system_names.push_back(spec.profile.name);
  }
  res.colls = ax.colls;
  if (ax.placeholder_colls) res.colls.clear();
  if (plan.series.empty()) {
    res.series_labels = {""};
  } else {
    for (const Series& s : plan.series) res.series_labels.push_back(s.label);
  }
  res.coll_nodes = ax.coll_nodes;
  res.sizes = ax.sizes;

  size_t total_rows = 0;
  for (const Item& item : items) total_rows += item.row_begins.size() * ax.block_rows();
  res.rows.resize(total_rows);
  for (size_t i = 0; i < items.size(); ++i) {
    const Item& item = items[i];
    for (const size_t begin : item.row_begins)
      for (size_t si = 0; si < ax.sizes.size(); ++si)
        for (size_t k = 0; k < ax.num_series; ++k) {
          Row& row = res.rows[begin + si * ax.num_series + k];
          row.system = item.cell.system;
          row.coll = item.cell.coll;
          row.nodes = item.cell.p;
          row.size_bytes = ax.sizes[si];
          row.series = k;
          row.m = blocks[i][si * ax.num_series + k];
        }
  }
  // Item order = deterministic first-occurrence cell order for any shard
  // width; empty on clean runs and under OnError::propagate.
  for (auto& err : out.errors)
    if (err) res.errors.push_back(std::move(*err));
  return res;
}

// --- result table ------------------------------------------------------------

size_t SweepResult::row_index(size_t system, size_t coll_idx, size_t node_idx,
                              size_t size_idx, size_t series_idx) const {
  const size_t S = sizes.size();
  const size_t K = series_labels.size();
  size_t per_system = 0;
  for (const auto& counts : coll_nodes) per_system += counts.size() * S * K;
  size_t idx = system * per_system;
  for (size_t c = 0; c < coll_idx; ++c) idx += coll_nodes[c].size() * S * K;
  idx += (node_idx * S + size_idx) * K + series_idx;
  return idx;
}

const Metrics& SweepResult::at(size_t system, size_t coll_idx, size_t node_idx,
                               size_t size_idx, size_t series_idx) const {
  return rows[row_index(system, coll_idx, node_idx, size_idx, series_idx)].m;
}

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_i64(std::string& out, i64 v) { out += std::to_string(v); }

}  // namespace

std::string SweepResult::to_json() const {
  std::string out;
  out.reserve(256 + rows.size() * 160);
  out += "{\n  \"plan\": \"" + tune::json::escape(plan_name) + "\",\n";
  out += "  \"backend\": \"" + std::string(to_string(backend)) + "\",\n";
  out += "  \"systems\": [";
  for (size_t i = 0; i < system_names.size(); ++i)
    out += std::string(i ? ", " : "") + "\"" + tune::json::escape(system_names[i]) + "\"";
  out += "],\n  \"series\": [";
  for (size_t i = 0; i < series_labels.size(); ++i)
    out += std::string(i ? ", " : "") + "\"" + tune::json::escape(series_labels[i]) + "\"";
  out += "],\n  \"sizes\": [";
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i) out += ", ";
    append_i64(out, sizes[i]);
  }
  out += "],\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += "    {\"system\": \"" + tune::json::escape(system_names[r.system]) + "\"";
    out += ", \"coll\": \"";
    out += colls.empty() ? "" : to_string(r.coll);
    out += "\"";
    out += ", \"series\": \"" + tune::json::escape(series_labels[r.series]) + "\"";
    out += ", \"nodes\": ";
    append_i64(out, r.nodes);
    out += ", \"size_bytes\": ";
    append_i64(out, r.size_bytes);
    if (r.m.failed) {
      out += ", \"failed\": true";
      out += ", \"error\": \"" + tune::json::escape(r.m.error) + "\"";
    } else if (r.m.cancelled) {
      out += ", \"cancelled\": true";
    } else if (r.m.skipped) {
      out += ", \"skipped\": true";
    } else if (backend == Backend::execute_verified) {
      out += ", \"algorithm\": \"" + tune::json::escape(r.m.algorithm) + "\"";
      out += std::string(", \"ok\": ") + (r.m.ok ? "true" : "false");
      if (!r.m.ok) out += ", \"error\": \"" + tune::json::escape(r.m.error) + "\"";
      out += ", \"messages\": ";
      append_i64(out, r.m.messages);
      out += ", \"wire_bytes\": ";
      append_i64(out, r.m.wire_bytes);
      out += ", \"stage_bytes\": ";
      append_i64(out, r.m.stage_bytes);
      char hex[24];
      std::snprintf(hex, sizeof(hex), "0x%016llx",
                    static_cast<unsigned long long>(r.m.digest));
      out += ", \"digest\": \"" + std::string(hex) + "\"";
      out += std::string(", \"used_cache\": ") + (r.m.used_cache ? "true" : "false");
    } else if (backend == Backend::custom) {
      if (!r.m.algorithm.empty())
        out += ", \"algorithm\": \"" + tune::json::escape(r.m.algorithm) + "\"";
      out += ", \"value\": ";
      append_double(out, r.m.value);
      if (!r.m.extra.empty()) {
        out += ", \"extra\": [";
        for (size_t e = 0; e < r.m.extra.size(); ++e) {
          if (e) out += ", ";
          append_double(out, r.m.extra[e]);
        }
        out += "]";
      }
    } else {
      out += ", \"algorithm\": \"" + tune::json::escape(r.m.algorithm) + "\"";
      out += ", \"seconds\": ";
      append_double(out, r.m.seconds);
      out += ", \"global_bytes\": ";
      append_i64(out, r.m.global_bytes);
      out += ", \"total_bytes\": ";
      append_i64(out, r.m.total_bytes);
      out += ", \"messages\": ";
      append_i64(out, r.m.messages);
      out += ", \"steps\": ";
      append_i64(out, static_cast<i64>(r.m.steps));
      if (backend == Backend::tuned_dispatch)
        out += std::string(", \"from_table\": ") + (r.m.from_table ? "true" : "false");
    }
    out += i + 1 < rows.size() ? "},\n" : "}\n";
  }
  out += "  ]";
  // The errors array only exists when failures were isolated, so a clean
  // run's output is byte-identical to the pre-fault-layer format.
  if (!errors.empty()) {
    out += ",\n  \"errors\": [\n";
    for (size_t i = 0; i < errors.size(); ++i) {
      const CellError& e = errors[i];
      out += "    {\"system\": \"" + tune::json::escape(e.system) + "\"";
      out += ", \"coll\": \"";
      out += to_string(e.coll);
      out += "\"";
      out += ", \"nodes\": ";
      append_i64(out, e.nodes);
      out += ", \"message\": \"" + tune::json::escape(e.message) + "\"";
      out += ", \"attempts\": ";
      append_i64(out, e.attempts);
      out += std::string(", \"transient\": ") + (e.transient ? "true" : "false");
      // Emitted only when set, so pre-deadline-layer output stays
      // byte-identical.
      if (e.deadline_exceeded) out += ", \"deadline\": true";
      out += i + 1 < errors.size() ? "},\n" : "}\n";
    }
    out += "  ]";
  }
  // Only a cancelled (partial) result carries the marker: clean, resumed and
  // journal-off runs all serialize byte-identically.
  if (cancelled) out += ",\n  \"cancelled\": true";
  out += "\n}\n";
  return out;
}

void SweepResult::save_json(const std::string& path) const {
  // Reclaim temps stranded by a kill between temp write and rename in a
  // previous incarnation of this artifact's writer, then write atomically.
  (void)fault::clean_stale_temps(path);
  fault::write_file_atomic(path, to_json());
}

}  // namespace bine::exp
