#include "exp/journal.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstring>

#include "core/fnv.hpp"
#include "fault/fault.hpp"

namespace bine::exp {

namespace {

constexpr std::string_view kMagic = "binejournal";
constexpr i64 kVersion = 1;

std::string hex16(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// "0x<16 hex>" -> value; false on any deviation.
bool parse_hex16(std::string_view s, u64& out) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x') return false;
  u64 v = 0;
  for (const char c : s.substr(2)) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<u64>(c - 'a' + 10);
    else
      return false;
  }
  out = v;
  return true;
}

bool parse_size(std::string_view s, size_t& out) {
  if (s.empty()) return false;
  size_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<size_t>(c - '0');
  }
  out = v;
  return true;
}

std::string header_line(u64 fingerprint) {
  return std::string(kMagic) + " " + std::to_string(kVersion) + " " +
         hex16(fingerprint) + "\n";
}

std::string record_frame(std::string_view key, std::string_view payload) {
  std::string out = "cell ";
  out += key;
  out += " " + std::to_string(payload.size()) + " " + hex16(Journal::checksum(payload)) +
         "\n";
  out += payload;
  out += "\n";
  return out;
}

/// What parsing the on-disk bytes recovered.
struct Parsed {
  bool header_ok = false;
  u64 fingerprint = 0;
  std::map<std::string, std::string, std::less<>> records;
  i64 dropped = 0;   ///< checksum-failing records + the torn tail (if any)
  bool clean = true; ///< the bytes are exactly a valid journal
  std::string note;  ///< first damage, with its byte offset
};

Parsed parse_journal(const std::string& content) {
  Parsed out;
  const size_t header_end = content.find('\n');
  if (header_end == std::string::npos) {
    out.clean = false;
    out.note = "unrecognized journal header";
    return out;
  }
  {
    const std::string_view line(content.data(), header_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    u64 fp = 0;
    if (sp2 == std::string_view::npos || line.substr(0, sp1) != kMagic ||
        line.substr(sp1 + 1, sp2 - sp1 - 1) != std::to_string(kVersion) ||
        !parse_hex16(line.substr(sp2 + 1), fp)) {
      out.clean = false;
      out.note = "unrecognized journal header";
      return out;
    }
    out.header_ok = true;
    out.fingerprint = fp;
  }

  size_t pos = header_end + 1;
  while (pos < content.size()) {
    const size_t record_at = pos;
    const size_t line_end = content.find('\n', pos);
    bool framed = false;
    std::string_view key;
    size_t payload_bytes = 0;
    u64 sum = 0;
    if (line_end != std::string::npos) {
      const std::string_view line(content.data() + pos, line_end - pos);
      const size_t sp1 = line.find(' ');
      const size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      const size_t sp3 = sp2 == std::string_view::npos ? sp2 : line.find(' ', sp2 + 1);
      if (sp3 != std::string_view::npos && line.substr(0, sp1) == "cell" &&
          sp1 + 1 < sp2 && parse_size(line.substr(sp2 + 1, sp3 - sp2 - 1), payload_bytes) &&
          parse_hex16(line.substr(sp3 + 1), sum) &&
          line_end + 1 + payload_bytes < content.size() &&
          content[line_end + 1 + payload_bytes] == '\n') {
        key = line.substr(sp1 + 1, sp2 - sp1 - 1);
        framed = true;
      }
    }
    if (!framed) {
      // Torn tail (the SIGKILL-mid-append case): nothing after the tear can
      // be trusted to be record-aligned, so the rest is dropped whole.
      out.clean = false;
      ++out.dropped;
      if (out.note.empty())
        out.note = "torn journal tail at byte " + std::to_string(record_at);
      break;
    }
    const std::string_view payload(content.data() + line_end + 1, payload_bytes);
    pos = line_end + 1 + payload_bytes + 1;
    if (Journal::checksum(payload) != sum) {
      // Framing is intact, so only this record is lost; later records (and
      // their cells) survive the bit flip.
      out.clean = false;
      ++out.dropped;
      if (out.note.empty())
        out.note = "checksum mismatch in journal record at byte " +
                   std::to_string(record_at);
      continue;
    }
    out.records[std::string(key)] = std::string(payload);
  }
  return out;
}

}  // namespace

u64 Journal::checksum(std::string_view payload) noexcept {
  u64 h = core::kFnvOffset;
  core::fnv_mix_bytes(h, payload.data(), payload.size());
  return h;
}

std::unique_ptr<Journal> Journal::open(std::string path, u64 fingerprint,
                                       OpenReport* report) {
  OpenReport local;
  OpenReport& rep = report ? *report : local;
  rep = OpenReport{};

  // A previous incarnation killed between temp write and rename strands a
  // *.tmp; reclaim our own artifact's garbage before touching anything.
  (void)fault::clean_stale_temps(path);

  std::string content;
  bool exists = false;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    exists = true;
    char buf[1 << 16];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, got);
    std::fclose(f);
  }

  auto journal = std::unique_ptr<Journal>(new Journal());
  journal->path_ = path;
  journal->fingerprint_ = fingerprint;

  bool rewrite = !exists;  // fresh file: just the header
  if (exists && content.empty()) {
    rewrite = true;  // zero-byte artifact: adopt it silently
  } else if (exists) {
    Parsed parsed = parse_journal(content);
    if (parsed.header_ok && parsed.fingerprint != fingerprint) {
      // A journal for a DIFFERENT plan: replaying it would violate the
      // byte-identity contract. Quarantine whole and start fresh.
      rep.quarantined = !fault::quarantine_file(path).empty();
      rep.notes.push_back("journal " + path + " belongs to plan fingerprint " +
                          hex16(parsed.fingerprint) + ", expected " + hex16(fingerprint) +
                          "; quarantined");
      rewrite = true;
    } else if (!parsed.header_ok) {
      rep.quarantined = !fault::quarantine_file(path).empty();
      rep.notes.push_back("journal " + path + ": " + parsed.note + "; quarantined");
      rewrite = true;
    } else {
      journal->records_ = std::move(parsed.records);
      rep.replayable = static_cast<i64>(journal->records_.size());
      rep.dropped = parsed.dropped;
      if (!parsed.clean) {
        // Damage found: move the damaged bytes aside and rewrite the valid
        // prefix clean, so the next kill-resume cycle starts from a
        // well-formed file (load_or_quarantine's discipline).
        rep.quarantined = !fault::quarantine_file(path).empty();
        rep.notes.push_back("journal " + path + ": " + parsed.note + "; dropped " +
                            std::to_string(parsed.dropped) +
                            " record(s), quarantined damaged bytes");
        rewrite = true;
      }
    }
  }

  if (rewrite) {
    fault::AtomicFile clean(path);
    if (!clean) {
      rep.notes.push_back("journal " + path + ": cannot open for writing");
      return nullptr;
    }
    std::string fresh = header_line(fingerprint);
    for (const auto& [key, payload] : journal->records_)
      fresh += record_frame(key, payload);
    if (std::fwrite(fresh.data(), 1, fresh.size(), clean.handle()) != fresh.size() ||
        !clean.commit()) {
      rep.notes.push_back("journal " + path + ": cannot rewrite");
      return nullptr;
    }
  }

  journal->file_ = std::fopen(path.c_str(), "ab");
  if (journal->file_ == nullptr) {
    rep.notes.push_back("journal " + path + ": cannot open for appending");
    return nullptr;
  }
  return journal;
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

const std::string* Journal::lookup(std::string_view key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

bool Journal::append(std::string_view key, std::string_view payload) {
  if (file_ == nullptr) return false;
  const std::string frame = record_frame(key, payload);
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) return false;
  if (std::fflush(file_) != 0) return false;
  // The durability point: after this the record survives SIGKILL and power
  // loss; a kill mid-append leaves a torn tail the next open() drops.
  // fdatasync, not fsync: POSIX guarantees it flushes the data plus the
  // metadata needed to read it back (the new file size), and skipping the
  // mtime flush roughly halves the per-record cost.
  return ::fdatasync(::fileno(file_)) == 0;
}

}  // namespace bine::exp
