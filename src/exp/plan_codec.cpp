#include "exp/plan_codec.hpp"

#include <set>
#include <stdexcept>
#include <utility>

#include "coll/registry.hpp"
#include "fault/fault.hpp"
#include "net/profiles.hpp"
#include "tune/decision_table.hpp"
#include "tune/json.hpp"

namespace bine::exp {

namespace {

using tune::json::Value;
using tune::json::escape;

// --- enum spellings ---------------------------------------------------------

const char* to_string(Series::Pick p) {
  switch (p) {
    case Series::Pick::best: return "best";
    case Series::Pick::single: return "single";
    case Series::Pick::tuned: return "tuned";
  }
  return "?";
}

Series::Pick pick_from_string(std::string_view s) {
  if (s == "best") return Series::Pick::best;
  if (s == "single") return Series::Pick::single;
  if (s == "tuned") return Series::Pick::tuned;
  throw std::invalid_argument("plan: unknown series pick \"" + std::string(s) + "\"");
}

const char* to_string(Series::Family f) {
  switch (f) {
    case Series::Family::list: return "list";
    case Series::Family::bine: return "bine";
    case Series::Family::binomial: return "binomial";
    case Series::Family::sota: return "sota";
  }
  return "?";
}

Series::Family family_from_string(std::string_view s) {
  if (s == "list") return Series::Family::list;
  if (s == "bine") return Series::Family::bine;
  if (s == "binomial") return Series::Family::binomial;
  if (s == "sota") return Series::Family::sota;
  throw std::invalid_argument("plan: unknown series family \"" + std::string(s) +
                              "\"");
}

const char* to_string(tune::MissPolicy p) {
  switch (p) {
    case tune::MissPolicy::heuristic_default: return "heuristic_default";
    case tune::MissPolicy::error: return "error";
    case tune::MissPolicy::tune_on_miss: return "tune_on_miss";
  }
  return "?";
}

tune::MissPolicy miss_policy_from_string(std::string_view s) {
  if (s == "heuristic_default") return tune::MissPolicy::heuristic_default;
  if (s == "error") return tune::MissPolicy::error;
  if (s == "tune_on_miss") return tune::MissPolicy::tune_on_miss;
  throw std::invalid_argument("plan: unknown miss_policy \"" + std::string(s) + "\"");
}

const char* to_string(SweepPlan::OnError e) {
  switch (e) {
    case SweepPlan::OnError::propagate: return "propagate";
    case SweepPlan::OnError::isolate: return "isolate";
  }
  return "?";
}

SweepPlan::OnError on_error_from_string(std::string_view s) {
  if (s == "propagate") return SweepPlan::OnError::propagate;
  if (s == "isolate") return SweepPlan::OnError::isolate;
  throw std::invalid_argument("plan: unknown on_error \"" + std::string(s) + "\"");
}

runtime::ElemType elem_from_string(std::string_view s) {
  for (const auto t : {runtime::ElemType::u32, runtime::ElemType::u64,
                       runtime::ElemType::f32, runtime::ElemType::f64})
    if (s == runtime::to_string(t)) return t;
  throw std::invalid_argument("plan: unknown elem type \"" + std::string(s) + "\"");
}

runtime::ReduceOp op_from_string(std::string_view s) {
  for (const auto o :
       {runtime::ReduceOp::sum, runtime::ReduceOp::prod, runtime::ReduceOp::min,
        runtime::ReduceOp::max, runtime::ReduceOp::band, runtime::ReduceOp::bor,
        runtime::ReduceOp::bxor})
    if (s == runtime::to_string(o)) return o;
  throw std::invalid_argument("plan: unknown reduce op \"" + std::string(s) + "\"");
}

// --- canonical writers ------------------------------------------------------

void put_i64_array(std::string& out, const std::vector<i64>& xs) {
  out += '[';
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(xs[i]);
  }
  out += ']';
}

void put_string_array(std::string& out, const std::vector<std::string>& xs) {
  out += '[';
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    out += '"';
    out += escape(xs[i]);
    out += '"';
  }
  out += ']';
}

void put_coll_array(std::string& out, const std::vector<Collective>& xs) {
  out += '[';
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    out += '"';
    out += sched::to_string(xs[i]);
    out += '"';
  }
  out += ']';
}

std::string hex_u64(u64 v) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 60; shift >= 0; shift -= 4)
    s += digits[(v >> shift) & 0xf];
  return s;
}

u64 u64_from_hex(std::string_view s, std::string_view what) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x')
    throw std::invalid_argument("plan: " + std::string(what) +
                                " must be an \"0x\" + 16-hex-digit string");
  u64 v = 0;
  for (size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    u64 d;
    if (c >= '0' && c <= '9') d = static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<u64>(c - 'a' + 10);
    else
      throw std::invalid_argument("plan: " + std::string(what) +
                                  " has a non-hex digit");
    v = (v << 4) | d;
  }
  return v;
}

// --- strict-parse helpers ---------------------------------------------------

/// Reject members outside the schema: hand-rolled strict mode on top of the
/// permissive tune::json reader, so typo'd knobs fail loudly instead of
/// silently running a different experiment than the author wrote.
void check_keys(const Value& obj, std::string_view what,
                std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, _] : obj.members) {
    bool ok = false;
    for (const auto a : allowed)
      if (key == a) { ok = true; break; }
    if (!ok)
      throw std::invalid_argument("plan: unknown key \"" + key + "\" in " +
                                  std::string(what));
  }
}

std::vector<i64> get_i64_array(const Value& v, std::string_view what) {
  std::vector<i64> out;
  for (const auto& item : v.as_array(what)) out.push_back(item.as_i64(what));
  return out;
}

std::vector<std::string> get_string_array(const Value& v, std::string_view what) {
  std::vector<std::string> out;
  for (const auto& item : v.as_array(what)) out.push_back(item.as_string(what));
  return out;
}

std::vector<Collective> get_coll_array(const Value& v, std::string_view what) {
  std::vector<Collective> out;
  for (const auto& item : v.as_array(what)) {
    try {
      out.push_back(coll::collective_from_name(item.as_string(what)));
    } catch (const std::out_of_range& e) {
      throw std::invalid_argument("plan: " + std::string(what) + ": " + e.what());
    }
  }
  return out;
}

i64 get_i64_or(const Value& obj, std::string_view key, i64 fallback) {
  const Value* v = obj.find(key);
  return v ? v->as_i64(key) : fallback;
}

}  // namespace

std::string plan_to_json(const SweepPlan& plan) {
  if (plan.backend == Backend::custom || plan.metric)
    throw std::invalid_argument(
        "plan: Backend::custom / metric-bearing plans are not serializable "
        "(the metric is an opaque function)");

  std::string out;
  out.reserve(1024);
  out += "{\n";
  out += "  \"format\": \"";
  out += kPlanFormat;
  out += "\",\n";
  out += "  \"version\": " + std::to_string(kPlanVersion) + ",\n";
  out += "  \"name\": \"" + escape(plan.name) + "\",\n";

  out += "  \"systems\": [";
  for (size_t i = 0; i < plan.systems.size(); ++i) {
    const SystemSpec& sys = plan.systems[i];
    // Prove the profile really is the named factory's output before letting
    // its *name* stand in for it on the wire: a hand-tweaked cost model that
    // serialized by name would deserialize into a different machine and
    // silently produce different cells.
    {
      net::SystemProfile rebuilt =
          net::profile_by_name(sys.profile.name, sys.profile.dims);
      rebuilt.faults = sys.profile.faults;
      if (tune::profile_fingerprint(rebuilt) !=
          tune::profile_fingerprint(sys.profile))
        throw std::invalid_argument(
            "plan: system \"" + sys.profile.name +
            "\" is not the named factory profile (fingerprint mismatch); only "
            "profile_by_name-reconstructible profiles serialize");
    }
    out += i ? ",\n    {\n" : "\n    {\n";
    out += "      \"profile\": \"" + escape(sys.profile.name) + "\",\n";
    if (!sys.profile.dims.empty()) {
      out += "      \"dims\": ";
      put_i64_array(out, sys.profile.dims);
      out += ",\n";
    }
    if (sys.profile.faults) {
      const std::string spec = fault::spec_to_string(*sys.profile.faults);
      if (!spec.empty())
        out += "      \"faults\": \"" + escape(spec) + "\",\n";
    }
    out += std::string("      \"spread_placement\": ") +
           (sys.spread_placement ? "true" : "false") + ",\n";
    out += "      \"seed\": " + std::to_string(sys.seed) + ",\n";
    if (!sys.torus_dims.empty()) {
      out += "      \"torus_dims\": ";
      put_i64_array(out, sys.torus_dims);
      out += ",\n";
    }
    out += "      \"schedule_cache\": \"";
    out += !sys.schedule_cache ? "default" : (*sys.schedule_cache ? "on" : "off");
    out += "\",\n";
    out += std::string("      \"private_cache\": ") +
           (sys.private_cache ? "true" : "false") + "\n";
    out += "    }";
  }
  out += plan.systems.empty() ? "],\n" : "\n  ],\n";

  out += "  \"colls\": ";
  put_coll_array(out, plan.colls);
  out += ",\n";

  out += "  \"series\": [";
  for (size_t i = 0; i < plan.series.size(); ++i) {
    const Series& s = plan.series[i];
    out += i ? ",\n    {\n" : "\n    {\n";
    out += "      \"label\": \"" + escape(s.label) + "\",\n";
    out += std::string("      \"pick\": \"") + to_string(s.pick) + "\",\n";
    out += std::string("      \"family\": \"") + to_string(s.family) + "\"";
    if (s.contiguous_only) out += ",\n      \"contiguous_only\": true";
    if (!s.algorithms.empty()) {
      out += ",\n      \"algorithms\": ";
      put_string_array(out, s.algorithms);
    }
    out += "\n    }";
  }
  out += plan.series.empty() ? "],\n" : "\n  ],\n";

  out += "  \"nodes\": {\n";
  out += "    \"counts\": ";
  put_i64_array(out, plan.nodes.counts);
  if (!plan.nodes.extra_counts.empty() || !plan.nodes.extra_colls.empty()) {
    out += ",\n    \"extra_counts\": ";
    put_i64_array(out, plan.nodes.extra_counts);
    out += ",\n    \"extra_colls\": ";
    put_coll_array(out, plan.nodes.extra_colls);
  }
  out += "\n  },\n";

  out += "  \"sizes\": ";
  put_i64_array(out, plan.sizes);
  out += ",\n";

  out += std::string("  \"backend\": \"") + to_string(plan.backend) + "\",\n";
  out += std::string("  \"elem\": \"") + runtime::to_string(plan.elem) + "\",\n";
  out += std::string("  \"op\": \"") + runtime::to_string(plan.op) + "\",\n";
  out += "  \"exec_threads\": " + std::to_string(plan.exec_threads) + ",\n";
  out += std::string("  \"miss_policy\": \"") + to_string(plan.miss_policy) +
         "\",\n";
  out += "  \"threads\": " + std::to_string(plan.threads) + ",\n";
  out += std::string("  \"on_error\": \"") + to_string(plan.on_error) + "\",\n";
  out += "  \"transient_retries\": " + std::to_string(plan.transient_retries) +
         ",\n";
  out += "  \"retry_backoff_ms\": " + std::to_string(plan.retry_backoff_ms) +
         ",\n";
  out += "  \"journal_salt\": \"" + hex_u64(plan.journal_salt) + "\",\n";
  out += "  \"cell_deadline_ms\": " + std::to_string(plan.cell_deadline_ms) +
         "\n";
  out += "}\n";
  return out;
}

SweepPlan plan_from_json(std::string_view text) {
  const Value doc = Value::parse(text);
  if (doc.kind != Value::Kind::object)
    throw std::invalid_argument("plan: document is not a JSON object");

  // Duplicate keys would make "last one wins" schema drift invisible; the
  // tune::json reader keeps members in order, so police them here.
  {
    std::set<std::string_view> seen;
    for (const auto& [key, _] : doc.members)
      if (!seen.insert(key).second)
        throw std::invalid_argument("plan: duplicate key \"" + key + "\"");
  }
  check_keys(doc, "plan",
             {"format", "version", "name", "systems", "colls", "series", "nodes",
              "sizes", "backend", "elem", "op", "exec_threads", "miss_policy",
              "threads", "on_error", "transient_retries", "retry_backoff_ms",
              "journal_salt", "cell_deadline_ms"});

  if (doc.at("format", "format").as_string("format") != kPlanFormat)
    throw std::invalid_argument("plan: not a " + std::string(kPlanFormat) +
                                " document");
  if (doc.at("version", "version").as_i64("version") != kPlanVersion)
    throw std::invalid_argument(
        "plan: unsupported version " +
        std::to_string(doc.at("version", "version").as_i64("version")));

  SweepPlan plan;
  plan.name = doc.at("name", "name").as_string("name");

  for (const auto& sv : doc.at("systems", "systems").as_array("systems")) {
    if (sv.kind != Value::Kind::object)
      throw std::invalid_argument("plan: systems entries must be objects");
    check_keys(sv, "system",
               {"profile", "dims", "faults", "spread_placement", "seed",
                "torus_dims", "schedule_cache", "private_cache"});
    SystemSpec sys;
    const std::string& pname = sv.at("profile", "profile").as_string("profile");
    std::vector<i64> dims;
    if (const Value* d = sv.find("dims")) dims = get_i64_array(*d, "dims");
    sys.profile = net::profile_by_name(pname, dims);
    if (const Value* f = sv.find("faults")) {
      const std::string& spec = f->as_string("faults");
      std::shared_ptr<const fault::FaultSpec> parsed = fault::parse_spec(spec);
      // Canonical form only: a non-canonical spelling would still parse, but
      // then dump != input and equal plans could serialize differently.
      if (!parsed || fault::spec_to_string(*parsed) != spec)
        throw std::invalid_argument("plan: fault spec \"" + spec +
                                    "\" is not in canonical spec_to_string form");
      sys.profile.faults = std::move(parsed);
    }
    const Value& sp = sv.at("spread_placement", "spread_placement");
    sys.spread_placement = sp.as_bool("spread_placement");
    const i64 seed = sv.at("seed", "seed").as_i64("seed");
    sys.seed = static_cast<u64>(seed);
    if (const Value* t = sv.find("torus_dims"))
      sys.torus_dims = get_i64_array(*t, "torus_dims");
    const std::string& sc =
        sv.at("schedule_cache", "schedule_cache").as_string("schedule_cache");
    if (sc == "default") sys.schedule_cache.reset();
    else if (sc == "on") sys.schedule_cache = true;
    else if (sc == "off") sys.schedule_cache = false;
    else
      throw std::invalid_argument("plan: schedule_cache must be "
                                  "\"default\"|\"on\"|\"off\", got \"" + sc + "\"");
    sys.private_cache = sv.at("private_cache", "private_cache").as_bool("private_cache");
    plan.systems.push_back(std::move(sys));
  }

  plan.colls = get_coll_array(doc.at("colls", "colls"), "colls");

  for (const auto& sv : doc.at("series", "series").as_array("series")) {
    if (sv.kind != Value::Kind::object)
      throw std::invalid_argument("plan: series entries must be objects");
    check_keys(sv, "series",
               {"label", "pick", "family", "contiguous_only", "algorithms"});
    Series s;
    s.label = sv.at("label", "label").as_string("label");
    s.pick = pick_from_string(sv.at("pick", "pick").as_string("pick"));
    s.family = family_from_string(sv.at("family", "family").as_string("family"));
    if (const Value* c = sv.find("contiguous_only")) {
      if (!c->as_bool("contiguous_only"))
        throw std::invalid_argument(
            "plan: contiguous_only is only serialized when true");
      s.contiguous_only = true;
    }
    if (const Value* a = sv.find("algorithms")) {
      s.algorithms = get_string_array(*a, "algorithms");
      if (s.algorithms.empty())
        throw std::invalid_argument(
            "plan: algorithms is only serialized when non-empty");
    }
    plan.series.push_back(std::move(s));
  }

  {
    const Value& nodes = doc.at("nodes", "nodes");
    if (nodes.kind != Value::Kind::object)
      throw std::invalid_argument("plan: nodes must be an object");
    check_keys(nodes, "nodes", {"counts", "extra_counts", "extra_colls"});
    plan.nodes.counts = get_i64_array(nodes.at("counts", "counts"), "counts");
    const Value* ec = nodes.find("extra_counts");
    const Value* el = nodes.find("extra_colls");
    if (!!ec != !!el)
      throw std::invalid_argument(
          "plan: extra_counts and extra_colls travel together");
    if (ec) {
      plan.nodes.extra_counts = get_i64_array(*ec, "extra_counts");
      plan.nodes.extra_colls = get_coll_array(*el, "extra_colls");
      if (plan.nodes.extra_counts.empty() && plan.nodes.extra_colls.empty())
        throw std::invalid_argument(
            "plan: extra_counts/extra_colls are only serialized when used");
    }
  }

  plan.sizes = get_i64_array(doc.at("sizes", "sizes"), "sizes");

  plan.backend =
      backend_from_string(doc.at("backend", "backend").as_string("backend"));
  if (plan.backend == Backend::custom)
    throw std::invalid_argument("plan: backend \"custom\" is not serializable");
  plan.elem = elem_from_string(doc.at("elem", "elem").as_string("elem"));
  plan.op = op_from_string(doc.at("op", "op").as_string("op"));
  plan.exec_threads = get_i64_or(doc, "exec_threads", 0);
  plan.miss_policy = miss_policy_from_string(
      doc.at("miss_policy", "miss_policy").as_string("miss_policy"));
  plan.threads = get_i64_or(doc, "threads", 0);
  plan.on_error =
      on_error_from_string(doc.at("on_error", "on_error").as_string("on_error"));
  plan.transient_retries = get_i64_or(doc, "transient_retries", 0);
  plan.retry_backoff_ms = get_i64_or(doc, "retry_backoff_ms", 0);
  plan.journal_salt = u64_from_hex(
      doc.at("journal_salt", "journal_salt").as_string("journal_salt"),
      "journal_salt");
  plan.cell_deadline_ms = get_i64_or(doc, "cell_deadline_ms", 0);
  return plan;
}

}  // namespace bine::exp
