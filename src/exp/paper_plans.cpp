#include "exp/paper_plans.hpp"

#include "coll/registry.hpp"

namespace bine::exp::paper {

SweepPlan binomial_table(net::SystemProfile profile, std::vector<i64> node_counts,
                         std::vector<i64> sizes,
                         std::vector<i64> large_counts_allreduce_ag) {
  SweepPlan plan;
  plan.name = "binomial_table_" + profile.name;
  plan.systems = {SystemSpec{std::move(profile)}};
  plan.colls = coll::all_collectives();
  plan.series = {Series::best_bine(/*contiguous_only=*/true), Series::best_binomial()};
  plan.nodes.counts = std::move(node_counts);
  plan.nodes.extra_counts = std::move(large_counts_allreduce_ag);
  plan.nodes.extra_colls = {Collective::allreduce, Collective::allgather};
  plan.sizes = std::move(sizes);
  plan.backend = Backend::simulate;
  return plan;
}

SweepPlan sota_heatmap(net::SystemProfile profile, Collective coll,
                       std::vector<i64> node_counts, std::vector<i64> sizes) {
  SweepPlan plan;
  plan.name = "sota_heatmap_" + std::string(to_string(coll)) + "_" + profile.name;
  plan.systems = {SystemSpec{std::move(profile)}};
  plan.colls = {coll};
  plan.series = {Series::best_bine(/*contiguous_only=*/false), Series::best_sota()};
  plan.nodes.counts = std::move(node_counts);
  plan.sizes = std::move(sizes);
  plan.backend = Backend::simulate;
  return plan;
}

SweepPlan sota_boxplots(net::SystemProfile profile, std::vector<i64> node_counts,
                        std::vector<i64> sizes, std::vector<Collective> colls) {
  SweepPlan plan;
  plan.name = "sota_boxplots_" + profile.name;
  plan.systems = {SystemSpec{std::move(profile)}};
  plan.colls = std::move(colls);
  plan.series = {Series::best_bine(/*contiguous_only=*/false), Series::best_sota()};
  plan.nodes.counts = std::move(node_counts);
  plan.sizes = std::move(sizes);
  plan.backend = Backend::simulate;
  return plan;
}

}  // namespace bine::exp::paper
