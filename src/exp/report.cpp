#include "exp/report.hpp"

#include <cstdio>

#include "harness/tables.hpp"

namespace bine::exp {

void print_binomial_table(const SweepResult& result) {
  harness::WinLoss::print_header("Comparison with binomial trees on " +
                                 result.system_names.at(0) + " (simulated)");
  for (size_t ci = 0; ci < result.colls.size(); ++ci) {
    harness::WinLoss wl;
    for (size_t ni = 0; ni < result.coll_nodes[ci].size(); ++ni)
      for (size_t si = 0; si < result.sizes.size(); ++si) {
        const Metrics& bine = result.at(0, ci, ni, si, 0);
        const Metrics& binom = result.at(0, ci, ni, si, 1);
        wl.add(bine.seconds, binom.seconds, bine.global_bytes, binom.global_bytes);
      }
    std::printf("%s\n", wl.row(to_string(result.colls[ci])).c_str());
  }
}

void print_sota_heatmap(const SweepResult& result) {
  std::vector<std::string> cols, rows;
  for (const i64 n : result.coll_nodes.at(0)) cols.push_back(std::to_string(n));
  for (const i64 s : result.sizes) rows.push_back(harness::size_label(s));

  std::vector<std::vector<harness::HeatCell>> cells(
      result.sizes.size(),
      std::vector<harness::HeatCell>(result.coll_nodes[0].size()));
  for (size_t si = 0; si < result.sizes.size(); ++si)
    for (size_t ni = 0; ni < result.coll_nodes[0].size(); ++ni) {
      const Metrics& bine = result.at(0, 0, ni, si, 0);
      const Metrics& sota = result.at(0, 0, ni, si, 1);
      harness::HeatCell& cell = cells[si][ni];
      cell.bine_best = bine.seconds < sota.seconds;
      cell.best_name = sota.algorithm;
      cell.ratio = sota.seconds / bine.seconds;
    }
  harness::print_heatmap(std::string(to_string(result.colls.at(0))) +
                             " vs state of the art on " + result.system_names.at(0) +
                             " (rows: vector size, cols: nodes)",
                         cols, rows, cells);
}

void print_sota_boxplots(const SweepResult& result) {
  harness::BoxStats::print_header("Bine improvement over best non-Bine algorithm on " +
                                      result.system_names.at(0) +
                                      " (configurations where Bine wins)",
                                  "gain");
  for (size_t ci = 0; ci < result.colls.size(); ++ci) {
    std::vector<double> gains;
    i64 total = 0;
    for (size_t ni = 0; ni < result.coll_nodes[ci].size(); ++ni)
      for (size_t si = 0; si < result.sizes.size(); ++si) {
        const Metrics& bine = result.at(0, ci, ni, si, 0);
        const Metrics& sota = result.at(0, ci, ni, si, 1);
        ++total;
        if (bine.seconds < sota.seconds)
          gains.push_back(100.0 * (sota.seconds / bine.seconds - 1.0));
      }
    const i64 nwins = static_cast<i64>(gains.size());
    const harness::BoxStats stats = harness::BoxStats::of(std::move(gains));
    char label[64];
    std::snprintf(label, sizeof(label), "%s (%.0f%%)", to_string(result.colls[ci]),
                  total ? 100.0 * static_cast<double>(nwins) / static_cast<double>(total)
                        : 0.0);
    std::printf("%s\n", stats.row(label).c_str());
  }
}

}  // namespace bine::exp
