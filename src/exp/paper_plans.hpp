#pragma once

#include "exp/sweep.hpp"

/// The canonical experiment plans behind the paper's tables and figures: one
/// declarative SweepPlan per report, shared by the bench drivers (which run
/// and format them) and bench_sweep_engine (which times the engine on them).
/// Each ported bench names its plan here instead of hand-rolling loops.
namespace bine::exp::paper {

/// Tables 3/4/5: best contiguous Bine vs the binomial-family baseline over
/// every collective. `large_counts_allreduce_ag` extends the node counts for
/// allreduce/allgather only (the Leonardo methodology, Sec. 5.2.1).
[[nodiscard]] SweepPlan binomial_table(net::SystemProfile profile,
                                       std::vector<i64> node_counts,
                                       std::vector<i64> sizes,
                                       std::vector<i64> large_counts_allreduce_ag = {});

/// Figs. 9a/10a: best Bine vs best non-Bine algorithm per (nodes, size) cell
/// of one collective.
[[nodiscard]] SweepPlan sota_heatmap(net::SystemProfile profile, Collective coll,
                                     std::vector<i64> node_counts,
                                     std::vector<i64> sizes);

/// Figs. 9b/10b/11a/b: Bine's improvement over the best non-Bine algorithm
/// across collectives.
[[nodiscard]] SweepPlan sota_boxplots(net::SystemProfile profile,
                                      std::vector<i64> node_counts,
                                      std::vector<i64> sizes,
                                      std::vector<Collective> colls);

}  // namespace bine::exp::paper
