#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/cancel.hpp"
#include "harness/runner.hpp"
#include "tune/decision_table.hpp"

/// The declarative sweep engine: the single execution substrate behind every
/// table/figure/micro bench and the tuner (the separation of experiment
/// *plan* from measurement *backend* that classic collective-tuning systems
/// and cross-system benchmark harnesses converge on).
///
/// A SweepPlan names the paper's evaluation axes -- systems x collectives x
/// series (algorithm selectors, including `tuned`) x node counts x message
/// sizes -- and a metric backend. The planner compiles the plan into
/// deduplicated work items, one per (system, collective, p) cell: the same
/// shard unit tune::Tuner keys by, so cells of different systems run
/// concurrently over harness::parallel_for with every Runner sharing the
/// process-wide schedule cache. Inside a cell, the union of all series'
/// candidate algorithms is evaluated exactly once per message size (the
/// PR 2 sweep batching), and every series is answered from those shared
/// evaluations.
///
/// Every cell is a pure function of its plan coordinates, so the resulting
/// SweepResult table -- rows in canonical system > collective > nodes >
/// size > series order -- is byte-identical for any shard width, with or
/// without the schedule cache. The golden parity suite asserts the ported
/// bench drivers emit bit-identical metrics to the pre-refactor loops.
namespace bine::exp {

using sched::Collective;

/// One system under evaluation: the machine model plus the Runner knobs the
/// old drivers set by hand (fragmented vs identity placement, torus shape,
/// schedule-cache mode).
struct SystemSpec {
  SystemSpec() = default;
  explicit SystemSpec(net::SystemProfile p) : profile(std::move(p)) {}

  net::SystemProfile profile;
  bool spread_placement = true;  ///< synthetic fragmented scheduler (Sec. 2.2)
  u64 seed = 42;
  std::vector<i64> torus_dims;   ///< Runner::torus_dims (Appendix D generators)
  /// Schedule-cache override; unset = the Runner default (BINE_SCHED_CACHE).
  std::optional<bool> schedule_cache;
  /// Detach from the process-wide cache (cold-start benchmarking).
  bool private_cache = false;
};

/// One output series per cell: which algorithm(s) it evaluates and how the
/// row's winner is picked. The family selectors mirror the paper's framing
/// (best Bine variant / binomial-family baseline / best non-Bine algorithm);
/// explicit lists cover the specialized drivers; `tuned` dispatches through
/// a tune::DecisionTable.
struct Series {
  enum class Pick {
    best,    ///< min simulated seconds over the candidates (strict <, list order)
    single,  ///< exactly one algorithm; skipped when inapplicable at p
    tuned,   ///< tune::select() through the plan's decision table
  };
  enum class Family {
    list,      ///< the explicit `algorithms` vector
    bine,      ///< Runner::bine_names (honours contiguous_only)
    binomial,  ///< Runner::binomial_names
    sota,      ///< Runner::sota_names (all non-Bine)
  };
  std::string label;
  Pick pick = Pick::best;
  Family family = Family::list;
  bool contiguous_only = false;         ///< Family::bine only
  std::vector<std::string> algorithms;  ///< Family::list candidates

  [[nodiscard]] static Series best_bine(bool contiguous_only, std::string label = "bine");
  [[nodiscard]] static Series best_binomial(std::string label = "binomial");
  [[nodiscard]] static Series best_sota(std::string label = "sota");
  [[nodiscard]] static Series best_of(std::string label, std::vector<std::string> names);
  [[nodiscard]] static Series single(std::string algorithm);
  [[nodiscard]] static Series tuned(std::string label = "tuned");
};

/// Node-count axis. `extra_counts` extends the base list for the collectives
/// in `extra_colls` only -- the paper's Leonardo methodology, where node
/// counts beyond the user cap were measured for allreduce/allgather alone.
struct NodeAxis {
  std::vector<i64> counts;
  std::vector<i64> extra_counts;
  std::vector<Collective> extra_colls;
  [[nodiscard]] std::vector<i64> counts_for(Collective coll) const;
};

/// Metric backend a plan's cells are measured under.
enum class Backend {
  simulate,          ///< compiled simulator (Runner::run): seconds + traffic
  traffic,           ///< traffic accounting only (same engine; semantic marker)
  execute_verified,  ///< compiled executor over real buffers + postcondition verify
  tuned_dispatch,    ///< tune::select() per cell, winner simulated
  custom,            ///< plan.metric() -- pluggable backend for the oddball axes
};
[[nodiscard]] const char* to_string(Backend b);
/// Inverse of to_string(Backend); throws std::invalid_argument on unknown
/// names (the plan codec's wire schema).
[[nodiscard]] Backend backend_from_string(std::string_view name);

/// One row's measurements. Which fields are meaningful depends on the
/// backend; `skipped` marks a single-algorithm series whose algorithm
/// rejects the cell's rank count (e.g. pow2-only strategies at non-pow2 p).
struct Metrics {
  std::string algorithm;  ///< winning / selected / evaluated algorithm
  double seconds = 0;
  i64 global_bytes = 0;
  i64 total_bytes = 0;
  i64 messages = 0;
  size_t steps = 0;
  bool skipped = false;
  /// The cell's work item threw and the plan isolates failures
  /// (SweepPlan::OnError::isolate): every row of the cell's block carries
  /// failed=true plus the message in `error`, and the result stays partial
  /// instead of the whole sweep aborting.
  bool failed = false;
  /// The cell never ran: the plan's CancelToken fired before this cell was
  /// handed out. A journaled plan re-run with the same journal fills these
  /// rows in (resume).
  bool cancelled = false;
  // Backend::execute_verified
  bool ok = false;
  std::string error;
  i64 wire_bytes = 0;
  /// Bytes copied through the executor's stage buffers (0 = fully zero-copy:
  /// every delivery landed direct, fused, or through in-place tiles).
  i64 stage_bytes = 0;
  u64 digest = 0;
  bool used_cache = false;
  // Backend::tuned_dispatch
  bool from_table = false;
  // Backend::custom
  double value = 0;
  std::vector<double> extra;
};

struct Row {
  size_t system = 0;
  Collective coll{};
  i64 nodes = 0;
  i64 size_bytes = 0;
  size_t series = 0;
  Metrics m;
};

struct SweepPlan;

/// Context handed to a Backend::custom metric: the plan coordinates plus the
/// cell's Runner (nullptr when the plan declares no systems -- pure-math
/// sweeps like the Eq. 2 distance-bound table).
struct CellCtx {
  const SweepPlan* plan = nullptr;
  harness::Runner* runner = nullptr;
  size_t system = 0;
  Collective coll{};
  i64 nodes = 0;
  i64 size_bytes = 0;
  size_t series = 0;
  /// The work item's deadline guard (never null inside a metric call): a
  /// long-running custom metric should checkpoint() at its own internal
  /// boundaries so SweepPlan::cell_deadline_ms can interrupt it.
  const harness::CellGuard* guard = nullptr;
};

struct SweepPlan {
  std::string name;
  std::vector<SystemSpec> systems;
  std::vector<Collective> colls;
  std::vector<Series> series;
  NodeAxis nodes;
  std::vector<i64> sizes;
  Backend backend = Backend::simulate;

  /// Backend::custom measurement. For custom plans, empty systems / colls /
  /// series / nodes / sizes axes are each treated as a single placeholder
  /// slot (the metric interprets the coordinates); the built-in backends
  /// require every axis to be populated.
  std::function<Metrics(const CellCtx&)> metric;

  // Backend::execute_verified knobs.
  runtime::ElemType elem = runtime::ElemType::u32;
  runtime::ReduceOp op = runtime::ReduceOp::sum;
  i64 exec_threads = 0;  ///< 0 = the executor's size-gated auto default

  // Backend::tuned_dispatch knobs.
  const tune::DecisionTable* table = nullptr;
  tune::MissPolicy miss_policy = tune::MissPolicy::heuristic_default;

  i64 threads = 0;  ///< shard width; <= 0 = harness::default_thread_count()

  /// What an exception escaping one work item does to the sweep.
  enum class OnError {
    propagate,  ///< rethrow after join (the pre-fault-layer behavior)
    isolate,    ///< structured error rows: the cell's block marks failed,
                ///< the rest of the sweep completes, SweepResult::errors
                ///< records the ErrorReport
  };
  OnError on_error = OnError::propagate;
  /// Bounded deterministic retry for failures classified transient
  /// (fault::TransientError): up to this many re-runs of the work item
  /// before the failure counts. Permanent failures never retry.
  i64 transient_retries = 0;
  /// Backoff base (milliseconds) between transient retries, doubling per
  /// attempt (fault::retry_backoff). 0 = no sleeping -- the default, so
  /// deterministic-output plans stay time-independent.
  i64 retry_backoff_ms = 0;

  // --- durable execution -----------------------------------------------------
  /// When non-empty, the engine journals every completed work item to this
  /// append-only, fsync'd, checksummed file (exp::Journal) keyed by
  /// plan_fingerprint(): a killed run, re-executed with the same plan and
  /// journal path, replays the journaled cells instead of re-measuring them,
  /// and the resumed SweepResult is byte-identical to an uninterrupted run.
  /// Damaged journal tails are dropped and quarantined on open. Empty =
  /// journaling off, bit-identical to the journal-free engine. Rejected
  /// (std::invalid_argument) for Backend::custom in run() -- an opaque
  /// metric cannot be fingerprinted, so replay safety cannot be proven
  /// (run_cells callers own that proof via journal_salt).
  std::string journal_path;
  /// Extra state mixed into plan_fingerprint(), for callers whose cell
  /// results depend on knobs outside the plan (tune::Tuner mixes its
  /// grid/refinement options so a changed tuner never replays stale cells).
  u64 journal_salt = 0;
  /// Per-cell wall-clock budget in milliseconds (0 = none), enforced
  /// cooperatively at evaluation boundaries (harness::CellGuard): an
  /// overrunning cell fails with fault::DeadlineExceeded -- classified
  /// permanent, folded into the OnError::isolate/retry machinery, and marked
  /// deadline_exceeded on its CellError. Each retry attempt re-arms the full
  /// budget.
  i64 cell_deadline_ms = 0;
  /// Cooperative cancellation: once fired, in-flight cells drain to
  /// completion (and are journaled), unstarted cells never run and their
  /// rows come back cancelled, and the result carries cancelled=true --
  /// partial but resumable via the journal.
  const harness::CancelToken* cancel = nullptr;
  /// Progress hook, called (serialized) as each work item completes or
  /// replays, with (items done so far, total items). The hook runs on worker
  /// threads -- keep it cheap and reentrancy-free.
  std::function<void(size_t done, size_t total)> progress;
};

/// Structured report of one isolated work-item failure: which (system, coll,
/// p) cell died, with what message, after how many attempts.
struct CellError {
  std::string system;
  Collective coll{};
  i64 nodes = 0;
  std::string message;
  i64 attempts = 1;       ///< total tries, transient retries included
  bool transient = false; ///< classification of the final failure
  /// The failure was the cell overrunning SweepPlan::cell_deadline_ms
  /// (fault::DeadlineExceeded) -- its own error kind, so operators can tell
  /// a stalled cell from a crashed one.
  bool deadline_exceeded = false;
};

/// The deterministic, stably-ordered result table: rows in canonical
/// system > collective > nodes > size > series order, plus the axis labels
/// the formatters print from.
struct SweepResult {
  std::string plan_name;
  Backend backend = Backend::simulate;
  std::vector<std::string> system_names;
  std::vector<Collective> colls;
  std::vector<std::string> series_labels;
  std::vector<std::vector<i64>> coll_nodes;  ///< per collective (NodeAxis applied)
  std::vector<i64> sizes;
  std::vector<Row> rows;
  /// Isolated work-item failures in deterministic work-item order; empty on
  /// a clean run (and always empty under OnError::propagate), so fault-free
  /// JSON output is byte-identical to the pre-fault-layer format.
  std::vector<CellError> errors;
  /// The plan's CancelToken fired before every cell ran: the result is
  /// partial (unstarted cells' rows carry Metrics::cancelled) but resumable
  /// when the plan journals.
  bool cancelled = false;
  /// What the durable-execution layer did (only ever non-zero for journaled
  /// plans). Never serialized: to_json() must stay byte-identical across
  /// fresh, resumed and journal-off runs.
  struct JournalStats {
    i64 replayed = 0;         ///< cells answered from the journal
    i64 executed = 0;         ///< cells measured by this run
    i64 dropped_records = 0;  ///< damaged journal records discarded on open
  };
  JournalStats journal;

  /// Index of a row by axis position (coll_nodes[coll_idx][node_idx]).
  [[nodiscard]] size_t row_index(size_t system, size_t coll_idx, size_t node_idx,
                                 size_t size_idx, size_t series_idx) const;
  [[nodiscard]] const Metrics& at(size_t system, size_t coll_idx, size_t node_idx,
                                  size_t size_idx, size_t series_idx) const;

  /// Canonical JSON emission (fixed field order, %.17g doubles): equal
  /// results serialize byte-identically for any shard width. Failed rows
  /// carry `"failed": true` plus the error; isolated failures add a
  /// top-level `"errors"` array (absent when the run was clean).
  [[nodiscard]] std::string to_json() const;
  /// Crash-safe emission: write-temp-then-rename (fault::write_file_atomic),
  /// so a kill mid-write never leaves a torn artifact.
  void save_json(const std::string& path) const;
};

/// Compile the plan, shard its work items, measure every cell. Throws
/// std::invalid_argument on a malformed plan (empty axis outside
/// Backend::custom, tuned series without a table, best-series with no
/// applicable candidate is a std::runtime_error at run time).
[[nodiscard]] SweepResult run(const SweepPlan& plan);

/// One deduplicated work item: the (system, collective, p) cell -- the unit
/// the planner shards and the unit tune::Tuner keys decision tables by.
struct CellRef {
  size_t system = 0;
  Collective coll{};
  i64 p = 0;
};

/// The plan's deduplicated cells in first-occurrence (system > collective >
/// nodes) order. Exposed so other engines (tune::Tuner) enumerate and shard
/// exactly like run() does.
[[nodiscard]] std::vector<CellRef> enumerate_cells(const SweepPlan& plan);

/// One Runner per SystemSpec, knobs applied, in axis order. All share the
/// process-wide schedule cache unless a spec opts out.
[[nodiscard]] std::vector<std::unique_ptr<harness::Runner>> make_runners(
    const SweepPlan& plan);

/// One failed work item of run_cells: the cell index (enumerate_cells
/// order), its coordinates, and the structured error.
struct CellFailure {
  size_t index = 0;
  CellRef cell;
  CellError error;
};

/// Stable fingerprint of everything that determines a plan's cell RESULTS --
/// systems (profile fingerprints + Runner knobs), collectives, series, node
/// axis, sizes, backend and its knobs, journal_salt -- and nothing that only
/// determines HOW they are computed (shard width, failure discipline,
/// deadlines, cancellation, journal path, progress hooks). This is the
/// exp::Journal key: a resumed run replays a journaled cell exactly when it
/// would have computed the same bytes. Backend::custom plans hash without
/// the opaque metric (which is why run() refuses to journal them).
[[nodiscard]] u64 plan_fingerprint(const SweepPlan& plan);

/// The journal key of one cell: "s<system>.<coll>.p<nodes>".
[[nodiscard]] std::string cell_key(const CellRef& cell);

/// Caller-supplied payload codec for journaled run_cells: `encode` turns
/// cell i's completed outcome (err != nullptr when the cell failed under
/// OnError::isolate) into a journal payload -- return an empty string to
/// journal nothing for that cell (e.g. failures that should re-run on
/// resume). `decode` replays a journaled payload into the caller's own
/// result slot for cell i and returns the journaled failure, if any; a
/// throw from decode marks the payload stale and the cell re-executes
/// fresh.
struct CellCodec {
  std::function<std::string(size_t, const CellError*)> encode;
  std::function<std::optional<CellError>(size_t, std::string_view)> decode;
};

/// What one run_cells invocation did (journal replay and cancellation are
/// invisible in the return value alone).
struct RunCellsReport {
  i64 executed = 0;               ///< cells measured by this run
  i64 replayed = 0;               ///< cells answered from the journal
  i64 journal_dropped = 0;        ///< damaged journal records discarded on open
  std::vector<size_t> cancelled;  ///< cell indices that never ran (ascending)
  std::vector<std::string> notes; ///< journal quarantine / degradation notes
};

/// Fan `fn` out over the plan's deduplicated cells with the planner's
/// sharding (one work item per cell, index-addressed, any thread count).
/// `fn(cell_index, cell, runner, guard)` must write results only to its own
/// index, and should guard.checkpoint() at its own evaluation boundaries so
/// plan.cell_deadline_ms can interrupt it. Failure discipline follows the
/// plan: transient failures retry up to plan.transient_retries; under
/// OnError::isolate surviving failures come back as the (deterministically
/// ordered) return value with the other cells completed, under
/// OnError::propagate the first one rethrows after join (and the returned
/// vector is always empty).
///
/// Durable execution: with plan.journal_path set (which requires `codec`),
/// journaled cells replay through codec->decode instead of running, and
/// completed cells are appended through codec->encode -- fsync'd before the
/// next cell can observe them. Cancellation (plan.cancel) drains in-flight
/// cells and reports unstarted ones in report->cancelled.
std::vector<CellFailure> run_cells(
    const SweepPlan& plan,
    const std::function<void(size_t, const CellRef&, harness::Runner&,
                             const harness::CellGuard&)>& fn,
    const CellCodec* codec = nullptr, RunCellsReport* report = nullptr);

}  // namespace bine::exp
