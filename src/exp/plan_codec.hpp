#pragma once

#include <string>
#include <string_view>

#include "exp/sweep.hpp"

/// Canonical JSON codec for exp::SweepPlan: the wire request schema of the
/// selection service's sweep jobs, and a standalone save/replay format for
/// plans.
///
/// The codec covers the *declarative* subset of a plan -- every field that
/// shapes cell results (systems, collectives, series, axes, backend knobs,
/// journal_salt) plus the portable execution knobs (shard width, failure
/// discipline, deadlines). It deliberately excludes what cannot or must not
/// travel:
///
///   * `metric` (Backend::custom) -- an opaque function; serialization throws.
///   * `table` -- tuned series serialize, but the decision table itself stays
///     with the consumer: a service injects its own live table before running
///     (and plan_fingerprint then covers that table's content).
///   * `journal_path`, `cancel`, `progress` -- host-local execution plumbing;
///     the executing side owns them.
///
/// Systems serialize by *profile name* (net::profile_by_name) because a
/// SystemProfile's build lambda cannot travel: serialization verifies the
/// profile actually is the named factory's output (fingerprint match) and
/// throws otherwise. Fault specs ride along in the BINE_FAULT_SPEC syntax
/// (fault::spec_to_string).
///
/// The emission is canonical -- fixed field order, fixed 2-space indentation,
/// %.17g-free (every number in the schema is integral; doubles only appear
/// inside fault spec strings) -- so parse(dump(plan)) -> dump is
/// byte-identical, equal plans serialize byte-identically, and
/// plan_fingerprint survives the round trip. Parsing is strict in the
/// tune/json style: format/version checked first, unknown keys, wrong types,
/// out-of-domain values and trailing garbage all rejected with actionable
/// errors.
namespace bine::exp {

inline constexpr std::string_view kPlanFormat = "bine-sweep-plan";
inline constexpr i64 kPlanVersion = 1;

/// Serialize the plan. Throws std::invalid_argument for plans outside the
/// serializable subset: Backend::custom / a set `metric`, or a system whose
/// profile is not a named factory profile (profile_by_name cannot rebuild
/// it).
[[nodiscard]] std::string plan_to_json(const SweepPlan& plan);

/// Parse + validate a serialized plan. The result carries null `table` /
/// `metric` / `cancel` / `progress` and an empty `journal_path`; a consumer
/// running tuned series injects its table first. Throws std::runtime_error
/// (tune/json parse errors pass through) or std::invalid_argument on
/// malformed input.
[[nodiscard]] SweepPlan plan_from_json(std::string_view text);

}  // namespace bine::exp
