// The selection daemon: load decision-table artifacts, serve select lookups
// and sweep jobs over a Unix-domain (and optionally TCP-loopback) socket
// until told to stop.
//
//   bine_svcd --socket /run/bine.sock [--tcp PORT] [--table tables.json]
//             [--journal-dir DIR] [--profiles lumi,leonardo,mn5]
//             [--fugaku-dims AxBxC] [--no-tune-on-miss] [--job-threads N]
//             [--stall-after K] [--port-file PATH]
//
// SIGINT/SIGTERM and the protocol's `shutdown` request both trigger the same
// graceful drain: running sweep jobs are cancelled cooperatively (their
// journals keep them resumable), blocked connections are woken, every thread
// is joined, and the socket file is removed. --stall-after K is the CI
// fault-injection hook: the first executed sweep job wedges forever after K
// cells, having touched `<journal>.stalled` -- a deterministic kill -9
// window for the kill-resume integration job. --port-file writes the bound
// TCP port (for --tcp 0) so scripts can find a kernel-assigned port.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/profiles.hpp"
#include "svc/server.hpp"

using namespace bine;

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 's';
  // write(2) is async-signal-safe; the watcher thread does the real work.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<i64> parse_dims(const std::string& s) {
  std::vector<i64> dims;
  for (const std::string& d : split(s, 'x')) dims.push_back(std::atoll(d.c_str()));
  return dims;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [--tcp PORT] [--table PATH] [--journal-dir DIR]\n"
      "          [--profiles a,b,c] [--fugaku-dims AxBxC] [--no-tune-on-miss]\n"
      "          [--job-threads N] [--stall-after K] [--port-file PATH]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  svc::ServerOptions opts;
  std::string profile_names = "lumi,leonardo,mn5";
  std::string fugaku_dims = "8x8x8";
  std::string port_file;
  bool tcp = false;
  long tcp_port = 0;

  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      if (std::strcmp(argv[i], name) != 0) return static_cast<const char*>(nullptr);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      return static_cast<const char*>(argv[++i]);
    };
    if (const char* v = arg("--socket")) opts.unix_socket = v;
    else if (const char* v = arg("--tcp")) { tcp = true; tcp_port = std::atol(v); }
    else if (const char* v = arg("--table")) opts.table_path = v;
    else if (const char* v = arg("--journal-dir")) opts.journal_dir = v;
    else if (const char* v = arg("--profiles")) profile_names = v;
    else if (const char* v = arg("--fugaku-dims")) fugaku_dims = v;
    else if (const char* v = arg("--job-threads")) opts.job_threads = std::atoll(v);
    else if (const char* v = arg("--stall-after")) opts.stall_after_cells = std::atoll(v);
    else if (const char* v = arg("--port-file")) port_file = v;
    else if (std::strcmp(argv[i], "--no-tune-on-miss") == 0) opts.tune_on_miss = false;
    else return usage(argv[0]);
  }
  if (opts.unix_socket.empty() && !tcp) return usage(argv[0]);
  if (tcp) {
    if (tcp_port < 0 || tcp_port > 0xffff) return usage(argv[0]);
    opts.tcp_port = static_cast<u16>(tcp_port);
  }

  try {
    for (const std::string& name : split(profile_names, ','))
      opts.profiles.push_back(net::profile_by_name(
          name, name == "fugaku" ? parse_dims(fugaku_dims) : std::vector<i64>{}));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bine_svcd: %s\n", e.what());
    return 2;
  }

  svc::Server server(std::move(opts));
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bine_svcd: %s\n", e.what());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "bine_svcd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);
  std::thread watcher([&server] {
    char byte;
    if (::read(g_signal_pipe[0], &byte, 1) > 0 && byte == 's')
      server.request_stop();
  });

  if (!server.unix_socket().empty())
    std::printf("bine_svcd: serving on %s\n", server.unix_socket().c_str());
  if (server.tcp_port() != 0) {
    std::printf("bine_svcd: serving on 127.0.0.1:%u\n", server.tcp_port());
    if (!port_file.empty())
      if (std::FILE* f = std::fopen(port_file.c_str(), "wb")) {
        std::fprintf(f, "%u\n", server.tcp_port());
        std::fclose(f);
      }
  }
  std::fflush(stdout);

  server.wait();
  std::printf("bine_svcd: draining\n");
  std::fflush(stdout);
  server.stop();

  // Unblock the watcher if shutdown came over the protocol, not a signal.
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
  watcher.join();
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  std::printf("bine_svcd: stopped\n");
  return 0;
}
