// Client CLI for the selection daemon.
//
//   bine_svc select   <conn> --profile NAME [--fugaku-dims AxBxC]
//                     --coll NAME --p N --bytes N
//   bine_svc sweep    <conn> --plan FILE [--out FILE]
//   bine_svc stats    <conn>
//   bine_svc shutdown <conn>
//   bine_svc hammer   <conn> --profile NAME --seconds S [--batch B]
//
//   <conn> := --socket PATH | --tcp PORT
//
// `select` computes the profile fingerprint locally (net::profile_by_name +
// tune::profile_fingerprint) -- the staleness handshake: a client built
// against a different machine model gets a structured stale_fingerprint
// error, never a silently wrong algorithm. `hammer` is the concurrency
// driver of the CI service-integration job: one connection of pipelined
// select batches, printing achieved lookups/sec (run several in parallel).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "net/profiles.hpp"
#include "svc/client.hpp"
#include "tune/decision_table.hpp"

using namespace bine;

namespace {

struct Args {
  std::string socket;
  long tcp = -1;
  std::string profile = "lumi";
  std::string fugaku_dims = "8x8x8";
  std::string coll = "allreduce";
  i64 p = 64;
  i64 bytes = 1 << 20;
  std::string plan_file;
  std::string out_file;
  double seconds = 2.0;
  i64 batch = 1024;
};

std::vector<i64> parse_dims(const std::string& s) {
  std::vector<i64> dims;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i)
    if (i == s.size() || s[i] == 'x') {
      if (i > start) dims.push_back(std::atoll(s.substr(start, i - start).c_str()));
      start = i + 1;
    }
  return dims;
}

svc::Client connect(const Args& a) {
  if (!a.socket.empty()) return svc::Client::connect_to_unix(a.socket);
  if (a.tcp >= 0) return svc::Client::connect_to_tcp(static_cast<u16>(a.tcp));
  throw std::runtime_error("no --socket or --tcp given");
}

svc::SelectRequest make_request(const Args& a) {
  const net::SystemProfile profile = net::profile_by_name(
      a.profile, a.profile == "fugaku" ? parse_dims(a.fugaku_dims)
                                       : std::vector<i64>{});
  svc::SelectRequest req;
  req.profile = profile.name;
  req.fingerprint = tune::profile_fingerprint(profile);
  req.coll = coll::collective_from_name(a.coll);
  req.p = a.p;
  req.bytes = a.bytes;
  return req;
}

int cmd_select(const Args& a) {
  svc::Client client = connect(a);
  const svc::SelectReply rep = client.select(make_request(a));
  std::printf("%s %s\n", rep.algorithm.c_str(),
              rep.from_table ? "(table)" : "(heuristic)");
  return 0;
}

int cmd_sweep(const Args& a) {
  std::ifstream in(a.plan_file);
  if (!in) {
    std::fprintf(stderr, "bine_svc: cannot read %s\n", a.plan_file.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  svc::Client client = connect(a);
  const svc::SweepReply reply = client.sweep_json(buf.str());
  std::fprintf(stderr, "sweep: %s, %lld replayed, %lld executed, fp %016llx\n",
               reply.begin.cache_hit ? "cache hit" : "executed",
               static_cast<long long>(reply.begin.replayed),
               static_cast<long long>(reply.begin.executed),
               static_cast<unsigned long long>(reply.plan_fingerprint));
  if (a.out_file.empty()) {
    std::fwrite(reply.result_json.data(), 1, reply.result_json.size(), stdout);
  } else {
    std::ofstream out(a.out_file, std::ios::binary | std::ios::trunc);
    out << reply.result_json;
    if (!out) {
      std::fprintf(stderr, "bine_svc: cannot write %s\n", a.out_file.c_str());
      return 1;
    }
  }
  return 0;
}

int cmd_stats(const Args& a) {
  svc::Client client = connect(a);
  const std::string stats = client.stats();
  std::fwrite(stats.data(), 1, stats.size(), stdout);
  return 0;
}

int cmd_shutdown(const Args& a) {
  svc::Client client = connect(a);
  client.shutdown_server();
  std::printf("shutdown acknowledged\n");
  return 0;
}

int cmd_hammer(const Args& a) {
  svc::Client client = connect(a);
  const svc::SelectRequest req = make_request(a);
  // Prime once: a tune-on-miss build must not sit inside the timed loop.
  (void)client.select(req);
  std::vector<svc::SelectRequest> batch(static_cast<size_t>(a.batch), req);
  const auto t0 = std::chrono::steady_clock::now();
  u64 done = 0;
  double elapsed = 0;
  for (;;) {
    const std::vector<svc::SelectReply> replies = client.select_batch(batch);
    done += replies.size();
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
    if (elapsed >= a.seconds) break;
  }
  std::printf("%.0f lookups/sec (%llu lookups in %.2f s)\n",
              static_cast<double>(done) / elapsed,
              static_cast<unsigned long long>(done), elapsed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s select|sweep|stats|shutdown|hammer "
                 "(--socket PATH | --tcp PORT) [options]\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  Args a;
  for (int i = 2; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      if (std::strcmp(argv[i], name) != 0) return static_cast<const char*>(nullptr);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      return static_cast<const char*>(argv[++i]);
    };
    if (const char* v = arg("--socket")) a.socket = v;
    else if (const char* v = arg("--tcp")) a.tcp = std::atol(v);
    else if (const char* v = arg("--profile")) a.profile = v;
    else if (const char* v = arg("--fugaku-dims")) a.fugaku_dims = v;
    else if (const char* v = arg("--coll")) a.coll = v;
    else if (const char* v = arg("--p")) a.p = std::atoll(v);
    else if (const char* v = arg("--bytes")) a.bytes = std::atoll(v);
    else if (const char* v = arg("--plan")) a.plan_file = v;
    else if (const char* v = arg("--out")) a.out_file = v;
    else if (const char* v = arg("--seconds")) a.seconds = std::atof(v);
    else if (const char* v = arg("--batch")) a.batch = std::atoll(v);
    else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }

  try {
    if (cmd == "select") return cmd_select(a);
    if (cmd == "sweep") return cmd_sweep(a);
    if (cmd == "stats") return cmd_stats(a);
    if (cmd == "shutdown") return cmd_shutdown(a);
    if (cmd == "hammer") return cmd_hammer(a);
  } catch (const svc::ServiceError& e) {
    std::fprintf(stderr, "bine_svc: service error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bine_svc: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  return 2;
}
