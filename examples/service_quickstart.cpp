// Service quickstart: spin up an in-process selection daemon, ask it which
// algorithm to run, submit a sweep job, and watch the plan-level cache turn
// the resubmission into a byte-identical replay.
//
// In production the server side lives in the bine_svcd binary and clients
// connect from other processes (see tools/bine_svc.cpp); everything below
// works identically over that boundary -- the in-process setup just makes
// the example self-contained.
#include <cstdio>

#include "exp/sweep.hpp"
#include "net/profiles.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "tune/decision_table.hpp"

using namespace bine;

int main() {
  // 1. Start a daemon serving the LUMI machine model on a Unix socket.
  //    No table artifact: the table starts empty and fills tune-on-miss.
  const char* socket_path = "service_quickstart.sock";
  svc::ServerOptions opts;
  opts.unix_socket = socket_path;
  opts.profiles = {net::lumi_profile()};
  opts.tuner.size_grid = {1 << 10, 1 << 20};  // small tune grid: this is a demo
  svc::Server server(std::move(opts));
  server.start();
  std::printf("daemon serving on %s\n", socket_path);

  // 2. Connect and ask for an algorithm. The fingerprint in the request is
  //    the staleness handshake: it must match the server's machine model.
  svc::Client client = svc::Client::connect_to_unix(socket_path);
  svc::SelectRequest req;
  req.profile = "lumi";
  req.fingerprint = tune::profile_fingerprint(net::lumi_profile());
  req.coll = sched::Collective::allreduce;
  req.p = 16;
  req.bytes = 1 << 20;

  // First ask misses (empty table) -> the daemon tunes the cell, merges it
  // into the live table, and answers from the merged result.
  const svc::SelectReply first = client.select(req);
  std::printf("allreduce @ p=16, 1 MiB: %s (%s)\n", first.algorithm.c_str(),
              first.from_table ? "tuned on miss" : "heuristic");

  // Second ask is a pure table hit -- this path sustains >1M lookups/sec.
  const svc::SelectReply second = client.select(req);
  std::printf("asked again:              %s (%s)\n", second.algorithm.c_str(),
              second.from_table ? "table hit" : "heuristic");

  // 3. Submit a sweep job: the full exp::SweepPlan goes over the wire.
  exp::SweepPlan plan;
  plan.name = "quickstart_sweep";
  plan.systems = {exp::SystemSpec{net::lumi_profile()}};
  plan.colls = {sched::Collective::allreduce};
  plan.series = {exp::Series::best_bine(false), exp::Series::best_sota()};
  plan.nodes.counts = {16, 32};
  plan.sizes = {1 << 10, 1 << 20};

  const svc::SweepReply run1 = client.sweep(plan);
  std::printf("sweep #1: executed %lld cells, %zu bytes of results\n",
              static_cast<long long>(run1.begin.executed),
              run1.result_json.size());

  // Resubmitting the identical plan never re-executes: the daemon caches
  // results by plan fingerprint and streams back the same bytes.
  const svc::SweepReply run2 = client.sweep(plan);
  std::printf("sweep #2: %s, byte-identical: %s\n",
              run2.begin.cache_hit ? "cache hit" : "executed",
              run2.result_json == run1.result_json ? "yes" : "NO");

  // 4. Service counters -- one JSON document per `stats` request.
  std::printf("\nstats:\n%s", client.stats().c_str());

  server.stop();
  std::remove(socket_path);
  return 0;
}
