// Playground: run every registered algorithm of every collective on small
// rank counts through the compiled executor and print a verification status.
// A compact demonstration that the whole registry is executable and correct.
#include <cstdio>
#include <vector>

#include "coll/registry.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/verify.hpp"

using namespace bine;

int main() {
  for (const sched::Collective coll : coll::all_collectives()) {
    std::printf("%s:\n", to_string(coll));
    for (const auto& entry : coll::algorithms_for(coll)) {
      for (const i64 p : {8, 12}) {
        if (entry.pow2_only && !is_pow2(p)) continue;
        coll::Config cfg;
        cfg.p = p;
        cfg.elem_count = 2 * p + 3;
        cfg.elem_size = 8;
        const sched::Schedule sch = entry.make(cfg);
        std::vector<std::vector<u64>> inputs(static_cast<size_t>(p));
        for (i64 r = 0; r < p; ++r) {
          inputs[static_cast<size_t>(r)].resize(static_cast<size_t>(cfg.elem_count));
          for (i64 e = 0; e < cfg.elem_count; ++e)
            inputs[static_cast<size_t>(r)][static_cast<size_t>(e)] =
                static_cast<u64>(r * 1009 + e);
        }
        const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
        const auto exec = runtime::execute<u64>(plan, runtime::ReduceOp::sum, inputs);
        const std::string err =
            runtime::verify<u64>(plan, runtime::ReduceOp::sum, inputs, exec);
        std::printf("  %-28s p=%-3lld steps=%-3zu wire=%-8lld %s\n", entry.name.c_str(),
                    static_cast<long long>(p), sch.num_steps(),
                    static_cast<long long>(sch.total_wire_bytes()),
                    err.empty() ? "OK" : err.c_str());
      }
    }
  }
  return 0;
}
