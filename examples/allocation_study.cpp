// Allocation study (the Fig. 5 methodology as a library): sample synthetic
// scheduler allocations and report how Bine's inter-group traffic reduction
// depends on how fragmented the job is.
#include <cstdio>
#include <vector>

#include "alloc/allocation.hpp"
#include "coll/tree_colls.hpp"
#include "core/tree.hpp"
#include "harness/tables.hpp"
#include "net/simulate.hpp"

using namespace bine;

int main() {
  const alloc::Machine machine{16, 128};
  std::printf("Inter-group traffic reduction of a 256-node tree allreduce on a "
              "%lldx%lld machine, by scheduler fragmentation:\n",
              static_cast<long long>(machine.num_groups),
              static_cast<long long>(machine.nodes_per_group));
  harness::BoxStats::print_header("", "red.");
  for (const double busy : {0.0, 0.2, 0.4, 0.6}) {
    alloc::SyntheticScheduler scheduler(machine, busy, /*seed=*/11);
    std::vector<double> reductions;
    for (int j = 0; j < 30; ++j) {
      const auto job = scheduler.sample_job(256);
      const auto groups = job.groups_on(machine);
      coll::Config cfg;
      cfg.p = 256;
      cfg.elem_count = 1 << 14;
      const i64 bine =
          net::inter_group_bytes(coll::bcast_tree(cfg, core::TreeVariant::bine_dh), groups);
      const i64 binom = net::inter_group_bytes(
          coll::bcast_tree(cfg, core::TreeVariant::binomial_dh), groups);
      if (binom > 0)
        reductions.push_back(100.0 *
                             (1.0 - static_cast<double>(bine) / static_cast<double>(binom)));
    }
    const auto st = harness::BoxStats::of(std::move(reductions));
    char label[32];
    std::snprintf(label, sizeof(label), "busy=%.0f%%", busy * 100);
    std::printf("%s\n", st.row(label).c_str());
  }
  std::printf("\nDense machines fragment jobs across more groups, which is where "
              "Bine's locality pays off (paper Sec. 2.4.2).\n");
  return 0;
}
