// Quickstart: build a Bine tree, run a Bine allreduce on 16 simulated ranks,
// verify the result, and compare global-link traffic against the binomial
// baseline on an oversubscribed fat tree.
#include <cstdio>
#include <vector>

#include "coll/registry.hpp"
#include "core/tree.hpp"
#include "net/simulate.hpp"
#include "net/topology.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/verify.hpp"

using namespace bine;

int main() {
  // 1. Inspect the distance-halving Bine tree of Fig. 3 (8 ranks, root 0).
  const core::Tree tree = core::build_tree(core::TreeVariant::bine_dh, 8, 0);
  std::printf("Distance-halving Bine tree on 8 ranks (root 0):\n");
  for (Rank r = 0; r < 8; ++r) {
    std::printf("  rank %lld: joins at step %d, children:", static_cast<long long>(r),
                tree.joined_at[static_cast<size_t>(r)]);
    for (const auto& [step, child] : tree.children[static_cast<size_t>(r)])
      std::printf(" %lld@step%d", static_cast<long long>(child), step);
    std::printf("\n");
  }

  // 2. Run a Bine allreduce over real buffers with the compiled executor.
  coll::Config cfg;
  cfg.p = 16;
  cfg.elem_count = 64;
  cfg.elem_size = 8;
  const sched::Schedule sch =
      coll::find_algorithm(sched::Collective::allreduce, "bine_send").make(cfg);

  std::vector<std::vector<u64>> inputs(16);
  for (i64 r = 0; r < 16; ++r) {
    inputs[static_cast<size_t>(r)].resize(64);
    for (i64 e = 0; e < 64; ++e)
      inputs[static_cast<size_t>(r)][static_cast<size_t>(e)] = static_cast<u64>(r + e);
  }
  const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
  const auto result = runtime::execute<u64>(plan, runtime::ReduceOp::sum, inputs);
  const std::string err = runtime::verify<u64>(plan, runtime::ReduceOp::sum, inputs, result);
  std::printf("\nBine allreduce on 16 ranks: %s (%lld messages, %lld wire bytes)\n",
              err.empty() ? "verified OK" : err.c_str(),
              static_cast<long long>(result.messages),
              static_cast<long long>(result.wire_bytes));

  // 3. Compare global-link traffic vs the standard butterfly on a 2:1 fat tree.
  net::FatTree topo(/*num_leaves=*/4, /*nodes_per_leaf=*/4, /*oversub=*/2, 25e9);
  const net::Placement pl = net::Placement::identity(16);
  const auto bine_traffic = net::measure_traffic(sch, topo, pl);
  const auto std_traffic = net::measure_traffic(
      coll::find_algorithm(sched::Collective::allreduce, "rabenseifner").make(cfg), topo,
      pl);
  std::printf("Global-link bytes: bine=%lld, binomial butterfly=%lld (%.0f%% reduction)\n",
              static_cast<long long>(bine_traffic.global_bytes),
              static_cast<long long>(std_traffic.global_bytes),
              100.0 * (1.0 - static_cast<double>(bine_traffic.global_bytes) /
                                 static_cast<double>(std_traffic.global_bytes)));
  return 0;
}
