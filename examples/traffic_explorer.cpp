// Traffic explorer: compare every registered algorithm for one collective on
// one system profile, printing simulated time and per-class traffic.
//
// Usage: traffic_explorer [collective] [nodes] [size_bytes] [system]
//   e.g.  traffic_explorer allreduce 256 1048576 lumi
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/runner.hpp"

using namespace bine;

int main(int argc, char** argv) {
  const std::string coll_name = argc > 1 ? argv[1] : "allreduce";
  const i64 nodes = argc > 2 ? std::atoll(argv[2]) : 256;
  const i64 size = argc > 3 ? std::atoll(argv[3]) : (1 << 20);
  const std::string system = argc > 4 ? argv[4] : "lumi";

  sched::Collective coll = sched::Collective::allreduce;
  for (const sched::Collective c : coll::all_collectives())
    if (coll_name == to_string(c)) coll = c;

  net::SystemProfile profile = net::lumi_profile();
  if (system == "leonardo") profile = net::leonardo_profile();
  if (system == "mn5") profile = net::mn5_profile();

  harness::Runner runner(profile);
  std::printf("%s on %s, %lld nodes, %s vectors\n", to_string(coll),
              profile.name.c_str(), static_cast<long long>(nodes),
              harness::size_label(size).c_str());
  std::printf("%-22s %12s %14s %14s %8s\n", "algorithm", "time (us)", "global bytes",
              "local bytes", "steps");
  for (const auto& entry : coll::algorithms_for(coll)) {
    if (entry.pow2_only && !is_pow2(nodes)) continue;
    if (entry.specialized) continue;
    const harness::RunResult r = runner.run(coll, entry, nodes, size);
    std::printf("%-22s %12.1f %14lld %14lld %8zu\n", entry.name.c_str(),
                r.seconds * 1e6, static_cast<long long>(r.global_bytes),
                static_cast<long long>(r.total_bytes - r.global_bytes), r.steps);
  }
  return 0;
}
