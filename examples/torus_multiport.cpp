// Torus demo (Appendix D): run the single-port and multi-port torus Bine
// allreduce on a 4x4x4 torus, verify correctness over real buffers, and show
// the per-direction link utilization benefit of multi-port scheduling.
#include <cstdio>
#include <vector>

#include "coll/torus_colls.hpp"
#include "net/simulate.hpp"
#include "net/topology.hpp"
#include "runtime/compiled_executor.hpp"
#include "runtime/verify.hpp"

using namespace bine;

int main() {
  coll::Config cfg;
  cfg.p = 64;
  cfg.torus_dims = {4, 4, 4};
  // Large vector: multi-port wins in the bandwidth-bound regime (small
  // vectors are alpha-dominated and pay for the extra per-step messages).
  cfg.elem_count = 1 << 19;
  cfg.elem_size = 8;

  std::vector<std::vector<u64>> inputs(64);
  for (i64 r = 0; r < 64; ++r) {
    inputs[static_cast<size_t>(r)].resize(static_cast<size_t>(cfg.elem_count));
    for (i64 e = 0; e < cfg.elem_count; ++e)
      inputs[static_cast<size_t>(r)][static_cast<size_t>(e)] =
          static_cast<u64>(r * 131 + e);
  }

  net::Torus topo({4, 4, 4}, 6.8e9);
  const net::Placement pl = net::Placement::identity(64);
  const net::CostParams cost{};

  for (const bool multiport : {false, true}) {
    const sched::Schedule sch = multiport ? coll::allreduce_torus_bine_multiport(cfg)
                                          : coll::allreduce_torus_bine(cfg);
    const runtime::ExecPlan plan = runtime::ExecPlan::lower(sch);
    const auto exec = runtime::execute<u64>(plan, runtime::ReduceOp::sum, inputs);
    const std::string err =
        runtime::verify<u64>(plan, runtime::ReduceOp::sum, inputs, exec);
    const auto sim = net::simulate(sch, topo, pl, cost);
    std::printf("%-28s: %s, steps=%zu, simulated time=%.1f us\n", sch.algorithm.c_str(),
                err.empty() ? "verified OK" : err.c_str(), sim.steps, sim.seconds * 1e6);
  }
  std::printf("\nThe multi-port variant drives all 2D NICs concurrently "
              "(Appendix D.4), cutting the serialized phase time.\n");
  return 0;
}
