// Tuned-dispatch quickstart: build a decision table for two systems, persist
// it, reload it, and dispatch allreduce through harness::TunedRunner.
//
//   build/tuned_allreduce
//
// The flow mirrors a production deployment: an offline tuning run produces a
// versioned *.tune.json artifact; services load it at startup and every
// (collective, nodes, bytes) query resolves to the winning algorithm in
// O(log intervals), falling back to the paper's heuristic rules for cells
// the table never tuned.
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "harness/tuned_runner.hpp"
#include "net/profiles.hpp"
#include "tune/decision_table.hpp"
#include "tune/tuner.hpp"

using namespace bine;
using sched::Collective;

int main() {
  // 1. Tune: rank every registry candidate per (system, collective, p) cell
  // across a size grid, sharded over the available cores.
  tune::TunerOptions opts;
  opts.size_grid = {256, 4096, 65536, 1048576, 16777216};
  opts.refine_top_k = 2;  // gate the top simulated candidates through
                          // verified execution (compiled executor + verify)
  const std::vector<net::SystemProfile> profiles = {net::lumi_profile(),
                                                    net::fugaku_profile({4, 4, 4})};
  const tune::DecisionTable built = tune::Tuner(opts).build(
      profiles, {Collective::allreduce}, {16, 32, 64});

  // 2. Persist + reload the artifact (versioned, fingerprinted JSON).
  built.save("allreduce.tune.json");
  const tune::DecisionTable table = tune::DecisionTable::load("allreduce.tune.json");
  std::printf("tuned %zu cells for %zu profiles -> allreduce.tune.json\n\n",
              table.cells().size(), table.profiles().size());

  // 3. Dispatch: table hits in O(log intervals), heuristic default on miss.
  for (const auto& profile : profiles) {
    harness::TunedRunner runner(profile, table);
    std::printf("%s:\n", profile.name.c_str());
    for (const i64 bytes : {i64{1024}, i64{262144}, i64{33554432}}) {
      const auto& algo = runner.select(Collective::allreduce, 64, bytes);
      const harness::RunResult r = runner.run(Collective::allreduce, 64, bytes);
      std::printf("  allreduce %9lld B on 64 nodes -> %-18s %.3f ms simulated\n",
                  static_cast<long long>(bytes), algo.name.c_str(), 1e3 * r.seconds);
    }
    // p=20 was never tuned: the miss policy serves the paper's heuristic.
    const auto& fallback = runner.select(Collective::allreduce, 20, 65536);
    std::printf("  allreduce untuned p=20          -> %-18s (heuristic fallback; "
                "%llu hits, %llu misses)\n\n",
                fallback.name.c_str(),
                static_cast<unsigned long long>(runner.table_hits()),
                static_cast<unsigned long long>(runner.table_misses()));
  }
  return 0;
}
