// Compiled simulation engine tests: route-cache vs virtual route()
// equivalence, flat-IR lowering invariants, compiled-vs-reference parity of
// TrafficStats/SimResult across all four topology families, ragged-schedule
// safety, and thread-count determinism of the parallel sweep runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "coll/registry.hpp"
#include "harness/parallel.hpp"
#include "harness/runner.hpp"
#include "net/profiles.hpp"
#include "net/route_cache.hpp"
#include "net/simulate.hpp"
#include "net/topology.hpp"
#include "sched/compiled.hpp"

using namespace bine;

namespace {

std::vector<std::unique_ptr<net::Topology>> small_topologies() {
  std::vector<std::unique_ptr<net::Topology>> topos;
  topos.push_back(std::make_unique<net::FatTree>(4, 8, 2, 25e9));
  topos.push_back(std::make_unique<net::Dragonfly>(4, 8, 2, 25e9, 25e9));
  topos.push_back(std::make_unique<net::Torus>(std::vector<i64>{4, 4, 2}, 6.8e9));
  topos.push_back(std::make_unique<net::MultiGpu>(8, 4, 150e9, 25e9));
  return topos;  // all 32 endpoints
}

/// A placement that scrambles ranks over the nodes so rank pair != node pair.
net::Placement scrambled_placement(i64 p) {
  net::Placement pl;
  pl.node_of_rank.resize(static_cast<size_t>(p));
  for (i64 r = 0; r < p; ++r)
    pl.node_of_rank[static_cast<size_t>(r)] = (r * 13 + 5) % p;  // 13 coprime to 32
  return pl;
}

}  // namespace

TEST(RouteCache, MatchesVirtualRouteForAllPairs) {
  for (const auto& topo : small_topologies()) {
    for (const bool scramble : {false, true}) {
      const net::Placement pl = scramble ? scrambled_placement(topo->num_nodes())
                                         : net::Placement::identity(topo->num_nodes());
      const net::RouteCache rc(*topo, pl);
      ASSERT_EQ(rc.num_ranks(), topo->num_nodes());
      ASSERT_EQ(rc.num_links(), static_cast<i64>(topo->links().size()));
      std::vector<i64> path;
      for (Rank s = 0; s < rc.num_ranks(); ++s)
        for (Rank d = 0; d < rc.num_ranks(); ++d) {
          path.clear();
          topo->route(pl.node_of_rank[static_cast<size_t>(s)],
                      pl.node_of_rank[static_cast<size_t>(d)], path);
          const auto cached = rc.path(s, d);
          ASSERT_EQ(std::vector<i64>(cached.begin(), cached.end()), path)
              << topo->name() << " pair " << s << "->" << d;
          net::RouteCache::ClassHops expect;
          bool crosses = false;
          for (const i64 link : path) {
            switch (topo->links()[static_cast<size_t>(link)].cls) {
              case net::LinkClass::local: ++expect.local; break;
              case net::LinkClass::global: ++expect.global; crosses = true; break;
              case net::LinkClass::intra_node: ++expect.intra_node; break;
            }
          }
          const auto& h = rc.hops(s, d);
          EXPECT_EQ(h.local, expect.local);
          EXPECT_EQ(h.global, expect.global);
          EXPECT_EQ(h.intra_node, expect.intra_node);
          EXPECT_EQ(rc.crosses_global(s, d), crosses);
        }
      for (size_t l = 0; l < topo->links().size(); ++l) {
        EXPECT_EQ(rc.link_class()[l], topo->links()[l].cls);
        EXPECT_DOUBLE_EQ(rc.inv_bandwidth()[l], 1.0 / topo->links()[l].bandwidth);
      }
    }
  }
}

TEST(CompiledSchedule, LoweringPreservesOpsInStepRankOrder) {
  coll::Config cfg;
  cfg.p = 16;
  cfg.elem_count = 1024;
  const sched::Schedule sch =
      coll::find_algorithm(sched::Collective::allreduce, "rabenseifner").make(cfg);
  const sched::CompiledSchedule cs = sched::CompiledSchedule::lower(sch);

  EXPECT_EQ(cs.p, sch.p);
  EXPECT_EQ(cs.steps, sch.num_steps());
  ASSERT_EQ(cs.step_begin.size(), cs.steps + 1);
  EXPECT_EQ(cs.step_begin.front(), 0u);
  EXPECT_EQ(cs.step_begin.back(), cs.num_ops());

  // Plain recvs are cost-free in the model and dropped at lowering time;
  // everything else must survive.
  size_t total_costed_ops = 0;
  for (const auto& rank_steps : sch.steps)
    for (const auto& st : rank_steps)
      for (const auto& op : st.ops)
        if (op.kind != sched::OpKind::recv) ++total_costed_ops;
  EXPECT_EQ(cs.num_ops(), total_costed_ops);

  // Within each step, ops must be grouped by non-decreasing rank and mirror
  // the original per-rank op order (the engine's overhead accumulator and
  // float-parity with the reference depend on this).
  auto costed_ops_of = [&](std::int32_t r, size_t t) {
    std::vector<const sched::Op*> ops;
    for (const sched::Op& op : sch.steps[static_cast<size_t>(r)][t].ops)
      if (op.kind != sched::OpKind::recv) ops.push_back(&op);
    return ops;
  };
  for (size_t t = 0; t < cs.steps; ++t) {
    ASSERT_LE(cs.step_begin[t], cs.step_begin[t + 1]);
    std::int32_t prev_rank = -1;
    std::vector<const sched::Op*> rank_ops;
    size_t op_in_rank = 0;
    for (std::uint32_t i = cs.step_begin[t]; i < cs.step_begin[t + 1]; ++i) {
      ASSERT_GE(cs.rank[i], prev_rank);
      if (cs.rank[i] != prev_rank) {
        rank_ops = costed_ops_of(cs.rank[i], t);
        op_in_rank = 0;
      }
      ASSERT_LT(op_in_rank, rank_ops.size());
      const sched::Op& op = *rank_ops[op_in_rank];
      EXPECT_EQ(cs.kind[i], op.kind);
      EXPECT_EQ(cs.peer[i], op.peer);
      EXPECT_EQ(cs.bytes[i], op.bytes);
      EXPECT_EQ(cs.extra_segments[i], std::max<i64>(0, op.segments - 1));
      prev_rank = cs.rank[i];
      ++op_in_rank;
    }
  }

  // lower_into into a dirty scratch (previously holding a bigger schedule)
  // must produce exactly the same IR as a fresh lower().
  sched::CompiledSchedule scratch = sched::CompiledSchedule::lower(sch);
  coll::Config small;
  small.p = 8;
  small.elem_count = 64;
  const sched::Schedule sch2 =
      coll::find_algorithm(sched::Collective::allreduce, "recursive_doubling").make(small);
  sched::CompiledSchedule::lower_into(sch2, scratch);
  const sched::CompiledSchedule fresh = sched::CompiledSchedule::lower(sch2);
  EXPECT_EQ(scratch.p, fresh.p);
  EXPECT_EQ(scratch.steps, fresh.steps);
  const auto same = [](auto a, auto b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  };
  EXPECT_TRUE(same(scratch.step_begin, fresh.step_begin));
  EXPECT_TRUE(same(scratch.kind, fresh.kind));
  EXPECT_TRUE(same(scratch.rank, fresh.rank));
  EXPECT_TRUE(same(scratch.peer, fresh.peer));
  EXPECT_TRUE(same(scratch.bytes, fresh.bytes));
  EXPECT_TRUE(same(scratch.extra_segments, fresh.extra_segments));
}

TEST(SimEngine, CompiledMatchesReferenceAcrossTopologies) {
  const struct {
    sched::Collective coll;
    const char* name;
  } cases[] = {
      {sched::Collective::allreduce, "recursive_doubling"},
      {sched::Collective::allreduce, "rabenseifner"},
      {sched::Collective::allreduce, "ring"},
      {sched::Collective::bcast, "binomial"},
      {sched::Collective::bcast, "bine"},
      {sched::Collective::reduce_scatter, "recursive_halving"},
      {sched::Collective::allgather, "bruck"},
      {sched::Collective::alltoall, "bruck"},
      {sched::Collective::alltoall, "pairwise"},
  };
  net::CostParams cp;
  for (const auto& topo : small_topologies()) {
    for (const bool scramble : {false, true}) {
      const net::Placement pl = scramble ? scrambled_placement(topo->num_nodes())
                                         : net::Placement::identity(topo->num_nodes());
      const net::RouteCache rc(*topo, pl);
      for (const auto& c : cases) {
        coll::Config cfg;
        cfg.p = topo->num_nodes();
        cfg.elem_count = 3 * cfg.p;  // non-divisible block sizes included
        const sched::Schedule sch = coll::find_algorithm(c.coll, c.name).make(cfg);
        const sched::CompiledSchedule cs = sched::CompiledSchedule::lower(sch);
        SCOPED_TRACE(std::string(topo->name()) + "/" + c.name +
                     (scramble ? "/scrambled" : "/identity"));

        const net::TrafficStats ref_traffic = net::measure_traffic_reference(sch, *topo, pl);
        const net::TrafficStats fast_traffic = net::measure_traffic(cs, rc);
        EXPECT_EQ(fast_traffic.local_bytes, ref_traffic.local_bytes);
        EXPECT_EQ(fast_traffic.global_bytes, ref_traffic.global_bytes);
        EXPECT_EQ(fast_traffic.intra_node_bytes, ref_traffic.intra_node_bytes);
        EXPECT_EQ(fast_traffic.messages, ref_traffic.messages);

        const net::SimResult ref = net::simulate_reference(sch, *topo, pl, cp);
        const net::SimResult fast = net::simulate(cs, rc, cp);
        EXPECT_EQ(fast.steps, ref.steps);
        EXPECT_EQ(fast.traffic.local_bytes, ref.traffic.local_bytes);
        EXPECT_EQ(fast.traffic.global_bytes, ref.traffic.global_bytes);
        EXPECT_EQ(fast.traffic.intra_node_bytes, ref.traffic.intra_node_bytes);
        EXPECT_EQ(fast.traffic.messages, ref.traffic.messages);
        EXPECT_NEAR(fast.seconds, ref.seconds, std::abs(ref.seconds) * 1e-12);

        // The Schedule-level conveniences are the compiled engine.
        const net::SimResult conv = net::simulate(sch, *topo, pl, cp);
        EXPECT_EQ(conv.seconds, fast.seconds);
        EXPECT_EQ(conv.traffic.global_bytes, fast.traffic.global_bytes);
      }
    }
  }
}

TEST(SimEngine, RaggedScheduleIsNotUnderSimulated) {
  // Rank 0 sends in steps 0 and 1; the schedule is left ragged on purpose
  // (rank 2 never grows past step 0's vector)...
  sched::Schedule sch;
  sch.coll = sched::Collective::bcast;
  sch.algorithm = "ragged_test";
  sch.p = 3;
  sch.nblocks = 3;
  sch.elem_count = 300;
  sch.steps.assign(3, {});
  sch.add_exchange(0, 0, 1, sched::BlockSet::all(3), false);
  sch.add_exchange(1, 0, 2, sched::BlockSet::all(3), false);
  sch.steps[2].resize(1);  // re-raggedify rank 2: one step vs two elsewhere

  // ...num_steps() must still see both steps, and both engines must count
  // both sends.
  EXPECT_EQ(sch.num_steps(), 2u);
  net::Torus topo({3}, 10e9);
  const net::Placement pl = net::Placement::identity(3);
  const net::CostParams cp;
  const net::SimResult ref = net::simulate_reference(sch, topo, pl, cp);
  const net::SimResult fast =
      net::simulate(sched::CompiledSchedule::lower(sch), net::RouteCache(topo, pl), cp);
  EXPECT_EQ(ref.traffic.messages, 2);
  EXPECT_EQ(fast.traffic.messages, 2);
  EXPECT_EQ(fast.steps, 2u);
  EXPECT_NEAR(fast.seconds, ref.seconds, std::abs(ref.seconds) * 1e-12);
}

TEST(SweepRunner, ResultsAreBitIdenticalAcrossThreadCounts) {
  std::vector<harness::SweepQuery> queries;
  for (const sched::Collective coll :
       {sched::Collective::allreduce, sched::Collective::bcast, sched::Collective::alltoall})
    for (const i64 size : {256, 16384, 1048576}) {
      queries.push_back({coll, 64, size, harness::SweepQuery::Kind::bine, true});
      queries.push_back({coll, 64, size, harness::SweepQuery::Kind::binomial, false});
      queries.push_back({coll, 64, size, harness::SweepQuery::Kind::sota, false});
    }

  std::vector<std::vector<std::pair<std::string, harness::RunResult>>> all;
  for (const i64 threads : {1, 2, 5}) {
    harness::Runner runner(net::fugaku_profile({4, 4, 4}));
    all.push_back(runner.sweep(queries, threads));
  }
  for (size_t v = 1; v < all.size(); ++v) {
    ASSERT_EQ(all[v].size(), all[0].size());
    for (size_t i = 0; i < all[0].size(); ++i) {
      EXPECT_EQ(all[v][i].first, all[0][i].first) << "query " << i;
      // Bitwise-equal doubles: same cells must run the same arithmetic
      // regardless of which worker executes them.
      EXPECT_EQ(all[v][i].second.seconds, all[0][i].second.seconds) << "query " << i;
      EXPECT_EQ(all[v][i].second.global_bytes, all[0][i].second.global_bytes);
      EXPECT_EQ(all[v][i].second.total_bytes, all[0][i].second.total_bytes);
      EXPECT_EQ(all[v][i].second.steps, all[0][i].second.steps);
    }
  }
}

TEST(ParallelFor, CoversEveryIndexOnceAndPropagatesExceptions) {
  std::vector<std::atomic<int>> hits(257);
  harness::parallel_for(257, [&](i64 i) { ++hits[static_cast<size_t>(i)]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  EXPECT_THROW(
      harness::parallel_for(
          64, [&](i64 i) { if (i == 13) throw std::runtime_error("boom"); }, 4),
      std::runtime_error);
}
